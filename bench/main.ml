(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper through
   Icoe.Harness_registry (real workloads + hardware-model pricing),
   printing paper reference values alongside and timing each harness's
   real wall clock next to its simulated seconds.

   Part 2 runs Bechamel microbenchmarks — real wall-clock time of the core
   computational kernels of each activity on this machine — one Test.make
   per reproduced table/figure's dominant kernel, plus par/* variants
   sized to exercise the Icoe_par.Pool domain pool — and writes the
   results plus a metrics-registry snapshot to BENCH_<id>.json, so
   successive commits leave a machine-readable perf trajectory behind.

   Flags: --micro-only skips part 1 (the CI smoke run); --alloc-smoke
   runs only the allocation-budget check (Gc.minor_words delta per
   steady-state iteration of each zero-alloc kernel against fixed word
   budgets, exit 1 over budget) and exits. The id comes from
   the BENCH_ID environment variable when set (CI passes the commit sha),
   otherwise the Unix timestamp. ICOE_DOMAINS sets the pool size (recorded
   in the JSON payload); ICOE_METRICS=0 disables the metrics registry for
   overhead comparisons; ICOE_GC_MINOR_HEAP / ICOE_GC_SPACE_OVERHEAD
   feed Gc.set at startup (echoed in the header). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks of the real kernels                          *)
(* ------------------------------------------------------------------ *)

let bench_spmv =
  (* hypre/Table 4 inner kernel *)
  let a = Linalg.Csr.laplacian_2d 64 64 in
  let x = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
  let y = Array.make 4096 0.0 in
  Test.make ~name:"table4/spmv-64x64" (Staged.stage (fun () -> Linalg.Csr.spmv_into a x y))

let bench_amg_vcycle =
  let a = Linalg.Csr.laplacian_2d 32 32 in
  let amg = Hypre.Boomeramg.setup a in
  let b = Array.make 1024 1.0 in
  let x = Array.make 1024 0.0 in
  Test.make ~name:"fig8/amg-vcycle-32x32"
    (Staged.stage (fun () ->
         Array.fill x 0 1024 0.0;
         Hypre.Boomeramg.v_cycle amg b x))

let bench_pa_apply =
  let mesh = Mfem.Mesh.create ~nx:8 ~ny:8 ~p:4 () in
  let basis = Mfem.Basis.create 4 in
  let pa = Mfem.Diffusion.Pa.setup mesh basis in
  let n = Mfem.Mesh.num_dofs mesh in
  let u = Array.init n (fun i -> sin (float_of_int i)) in
  let y = Array.make n 0.0 in
  Test.make ~name:"table4/pa-apply-p4" (Staged.stage (fun () -> Mfem.Diffusion.Pa.apply pa u y))

let bench_sw4_step =
  let g = Sw4.Grid.create ~nx:64 ~ny:64 ~h:100.0 in
  Sw4.Grid.homogeneous g ~rho:2500.0 ~vp:5000.0 ~vs:2500.0;
  let solver = Sw4.Solver.create g in
  Test.make ~name:"sw4/leapfrog-64x64" (Staged.stage (fun () -> Sw4.Solver.step solver))

let bench_md_forces =
  let rng = Icoe_util.Rng.create 3 in
  let p = Ddcmd.Particles.create ~n:125 ~box:6.5 in
  Ddcmd.Particles.lattice_init p;
  Ddcmd.Particles.thermalize p ~rng ~temp:0.7;
  let e = Ddcmd.Engine.create ~dt:0.004 ~potential:(Ddcmd.Potential.lennard_jones ()) p in
  Test.make ~name:"md/forces-125" (Staged.stage (fun () -> Ddcmd.Engine.compute_forces e))

let bench_reaction_kernel =
  (* the zero-alloc stack-program form of the ionic derivative — what
     Monodomain.reaction_step runs per cell *)
  let module Fbuf = Icoe_util.Fbuf in
  let kernel = Cardioid.Ionic.compile_kernel Cardioid.Ionic.Rational_folded in
  let env = Fbuf.of_array (Cardioid.Ionic.initial_state ()) in
  let out = Fbuf.create Cardioid.Ionic.n_state in
  let stack = Fbuf.create kernel.Cardioid.Ionic.depth in
  Test.make ~name:"cardioid/reaction-cell"
    (Staged.stage (fun () ->
         for d = 0 to Cardioid.Ionic.n_state - 1 do
           Cardioid.Melodee.exec_program_into kernel.Cardioid.Ionic.progs.(d)
             ~env ~env_off:0 ~stack ~stack_off:0 ~out ~out_off:d
         done))

let bench_fft =
  let rng = Icoe_util.Rng.create 4 in
  let a = Array.init 2048 (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  Test.make ~name:"fig9/fft-1024" (Staged.stage (fun () -> ignore (Fftlib.Fft.dft a)))

let bench_bfs =
  let rng = Icoe_util.Rng.create 5 in
  let g = Havoq.Graph.rmat ~rng ~scale:10 () in
  Test.make ~name:"table2/bfs-hybrid-1k" (Staged.stage (fun () -> ignore (Havoq.Bfs.hybrid g ~src:0)))

let bench_lda_estep =
  let rng = Icoe_util.Rng.create 6 in
  let corpus = Lda.Corpus.generate ~ndocs:10 ~rng () in
  let m = Lda.Vem.init ~rng ~k:6 ~vocab:corpus.Lda.Corpus.vocab () in
  let stats = Icoe_util.Fbuf.create (6 * corpus.Lda.Corpus.vocab) in
  let elogb = Lda.Vem.elog_beta m in
  Test.make ~name:"fig2/lda-estep-doc"
    (Staged.stage (fun () ->
         ignore (Lda.Vem.e_step_doc m elogb corpus.Lda.Corpus.docs.(0) stats)))

let bench_rate_matrix =
  let model = Cretin.Atomic.ladder 20 in
  let cond = { Cretin.Ratematrix.te = 10.0; ne = 1e21; radiation = 0.0 } in
  Test.make ~name:"cretin/zone-solve-20"
    (Staged.stage (fun () -> ignore (Cretin.Ratematrix.solve_direct model cond)))

let bench_cleverleaf =
  let sim = Samrai.Cleverleaf.create ~nx:32 ~ny:32 ~lx:1.0 ~ly:1.0 () in
  Samrai.Cleverleaf.init sim (fun ~x ~y:_ ->
      if x < 0.5 then (1.0, 0.0, 0.0, 1.0) else (0.125, 0.0, 0.0, 0.1));
  Test.make ~name:"table5/cleverleaf-step-32x32"
    (Staged.stage (fun () -> ignore (Samrai.Cleverleaf.step sim)))

let bench_mlp =
  let rng = Icoe_util.Rng.create 7 in
  let m = Dlearn.Mlp.create ~rng [| 12; 16; 4 |] in
  let x = Array.init 12 (fun i -> float_of_int i /. 12.0) in
  Test.make ~name:"fig3/mlp-backward"
    (Staged.stage (fun () ->
         ignore (Dlearn.Mlp.backward m x ~label:1);
         Dlearn.Mlp.zero_grads m))

let bench_paradyn =
  let rng = Icoe_util.Rng.create 8 in
  let inputs =
    List.map
      (fun a -> (a, Array.init 512 (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0)))
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
  in
  let p = Paradyn.Passes.dse (Paradyn.Passes.slnsp Paradyn.Ir.paradyn_kernel) in
  Test.make ~name:"fig6/fused-kernel-512" (Staged.stage (fun () -> ignore (Paradyn.Interp.run p ~inputs)))

let bench_topopt_apply =
  let t = Opt.Topopt.create ~nx:32 ~ny:32 () in
  let u = Array.init 1024 (fun i -> float_of_int (i mod 13)) in
  let y = Array.make 1024 0.0 in
  Test.make ~name:"opt/matrix-free-apply-32x32" (Staged.stage (fun () -> Opt.Topopt.apply t u y))

(* par/* benchmarks: the same engine kernels at sizes where the domain
   pool engages (all of these clear the serial-fallback thresholds), so
   the BENCH trajectory shows the wall-clock effect of ICOE_DOMAINS. *)

let bench_par_spmv =
  let a = Linalg.Csr.laplacian_2d 256 256 in
  let n = 256 * 256 in
  let x = Array.init n (fun i -> float_of_int (i mod 7)) in
  let y = Array.make n 0.0 in
  Test.make ~name:"par/spmv-256x256"
    (Staged.stage (fun () -> Linalg.Csr.spmv_into a x y))

let bench_par_sw4_rhs =
  let g = Sw4.Grid.create ~nx:128 ~ny:128 ~h:100.0 in
  Sw4.Grid.homogeneous g ~rho:2500.0 ~vp:5000.0 ~vs:2500.0;
  let solver = Sw4.Solver.create g in
  Test.make ~name:"par/sw4-step-128x128"
    (Staged.stage (fun () -> Sw4.Solver.step solver))

let bench_par_reaction =
  let m = Cardioid.Monodomain.create ~nx:64 ~ny:64 () in
  Test.make ~name:"par/cardioid-reaction-64x64"
    (Staged.stage (fun () -> Cardioid.Monodomain.reaction_step m))

let bench_par_md_forces =
  let rng = Icoe_util.Rng.create 9 in
  let p = Ddcmd.Particles.create ~n:1000 ~box:13.0 in
  Ddcmd.Particles.lattice_init p;
  Ddcmd.Particles.thermalize p ~rng ~temp:0.7;
  let e = Ddcmd.Engine.create ~dt:0.004 ~potential:(Ddcmd.Potential.lennard_jones ()) p in
  Test.make ~name:"par/md-forces-1000"
    (Staged.stage (fun () -> Ddcmd.Engine.compute_forces e))

let bench_par_lda_estep =
  let rng = Icoe_util.Rng.create 10 in
  let corpus = Lda.Corpus.generate ~ndocs:32 ~rng () in
  let m = Lda.Vem.init ~rng ~k:6 ~vocab:corpus.Lda.Corpus.vocab () in
  let elogb = Lda.Vem.elog_beta m in
  let stats = Icoe_util.Fbuf.create (6 * corpus.Lda.Corpus.vocab) in
  Test.make ~name:"par/lda-estep-32docs"
    (Staged.stage (fun () ->
         Icoe_util.Fbuf.fill stats 0.0;
         ignore (Lda.Vem.e_step_docs m elogb corpus.Lda.Corpus.docs stats)))

(* fault/* benchmarks: the resilience layer's hot paths — drawing a full
   seeded fault schedule, driving the checkpoint/restart loop over a
   trivial engine, and a bounded-retry cycle with deterministic jitter. *)

let bench_fault_plan =
  Test.make ~name:"fault/plan-generate"
    (Staged.stage (fun () ->
         ignore
           (Icoe_fault.Plan.generate ~seed:42 Icoe_fault.Plan.default_config)))

let bench_fault_checkpoint =
  let plan =
    Icoe_fault.Plan.for_run (Icoe_fault.Plan.spec 42) ~ideal_s:100.0 ~nodes:16
  in
  Test.make ~name:"fault/checkpoint-driver-100"
    (Staged.stage (fun () ->
         ignore
           (Icoe_fault.Checkpoint.run ~plan ~step_cost_s:1.0
              ~checkpoint_cost_s:0.25 ~interval:10 ~steps:100
              ~snapshot:(fun () -> ())
              ~restore:ignore ~step:ignore ())))

let bench_fault_retry =
  Test.make ~name:"fault/retry-giveup"
    (Staged.stage (fun () ->
         let rng = Icoe_util.Rng.create 3 in
         ignore
           (Icoe_fault.Retry.run ~rng ~charge:ignore (fun ~attempt:_ ->
                Error ()))))

(** Run every microbenchmark; returns (kernel name, ns/run estimate)
    newest last, printing the table as it goes. *)
let microbenchmarks () =
  let tests =
    [
      bench_spmv; bench_amg_vcycle; bench_pa_apply; bench_sw4_step;
      bench_md_forces; bench_reaction_kernel; bench_fft; bench_bfs;
      bench_lda_estep; bench_rate_matrix; bench_cleverleaf; bench_mlp;
      bench_paradyn; bench_topopt_apply; bench_par_spmv; bench_par_sw4_rhs;
      bench_par_reaction; bench_par_md_forces; bench_par_lda_estep;
      bench_fault_plan; bench_fault_checkpoint; bench_fault_retry;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let analyze = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  Fmt.pr "@.== Bechamel microbenchmarks (real wall time on this machine) ==@.";
  Fmt.pr "%-32s %14s@." "kernel" "ns/run";
  Fmt.pr "%s@." (String.make 48 '-');
  let out = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test |> Hashtbl.to_seq |> List.of_seq
      in
      List.iter
        (fun (name, raw) ->
          let est =
            match Analyze.one analyze Instance.monotonic_clock raw with
            | ols -> (
                match Analyze.OLS.estimates ols with
                | Some [ est ] -> Some est
                | _ -> None)
            | exception _ -> None
          in
          (match est with
          | Some e -> Fmt.pr "%-32s %14.1f@." name e
          | None -> Fmt.pr "%-32s %14s@." name "n/a");
          out := (name, est) :: !out)
        results)
    tests;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* BENCH_<id>.json emission                                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Seeded resilience runs for the trajectory: always emitted (also under
   --micro-only, which CI uses), so every BENCH_<id>.json carries the
   fault-injection acceptance numbers. Deterministic for the fixed
   seed. *)
let fault_rows () =
  let spec = Icoe_fault.Plan.spec 42 in
  List.map
    (fun (id, run) ->
      let _plan, interval, (rep : Icoe_fault.Checkpoint.report), identical =
        run spec
      in
      (id, interval, rep, identical))
    [
      ("sw4", Icoe.Harness_sw4.resilience_run);
      ("cardioid", Icoe.Harness_cardioid.resilience_run);
    ]

(* Overlap-scheduler model evaluations for the trajectory: always
   emitted (also under --micro-only, which CI uses), with overlap forced
   on so every BENCH_<id>.json records the critical-path numbers
   regardless of the ICOE_OVERLAP setting of the surrounding run.
   Deterministic: pure cost-model arithmetic, no RNG. *)
let overlap_rows () =
  let sw4 =
    let m =
      Sw4.Scenario.production_step_model ~overlap:true Hwsim.Node.sierra
        ~nodes:256 ~grid_points:26.0e9
    in
    ("sw4", m.Sw4.Scenario.serial_s, m.Sw4.Scenario.overlapped_s)
  in
  let md id scen =
    let m = Ddcmd.Perf.ddcmd_step_model ~overlap:true scen in
    (id, m.Ddcmd.Perf.serial_s, m.Ddcmd.Perf.overlapped_s)
  in
  let kavg =
    let m =
      Dlearn.Distributed.kavg_round_model ~overlap:true ~learners:8 ~k:8
        ~batch:16 [| 12; 16; 4 |]
    in
    ( "kavg",
      m.Dlearn.Distributed.serial_round_s,
      m.Dlearn.Distributed.overlapped_round_s )
  in
  [
    sw4;
    md "ddcmd-1gpu" Ddcmd.Perf.One_gpu;
    md "ddcmd-4gpu" Ddcmd.Perf.Four_gpu;
    md "ddcmd-mummi" Ddcmd.Perf.Mummi;
    kavg;
  ]

(* Critical-path blame rows for the trajectory: per-phase makespan
   attribution of the three overlap-wired models, overlap forced on
   (same evaluations as [overlap_rows]). Deterministic: pure cost-model
   arithmetic. Blame seconds sum to each model's overlapped makespan, so
   any model change that moves where the time goes shows up in the
   regression gate even when the makespan itself barely moves. *)
let blame_rows () =
  let analyze id dag =
    let a = Icoe_obs.Prof.analyze ~overlap:true dag in
    List.map
      (fun (b : Icoe_obs.Prof.blame) -> (id, b.key, b.seconds, b.share))
      a.Icoe_obs.Prof.phase_blame
  in
  let sw4 =
    let m =
      Sw4.Scenario.production_step_model ~overlap:true Hwsim.Node.sierra
        ~nodes:256 ~grid_points:26.0e9
    in
    analyze "sw4" m.Sw4.Scenario.dag
  in
  let md =
    let m = Ddcmd.Perf.ddcmd_step_model ~overlap:true Ddcmd.Perf.Four_gpu in
    analyze "ddcmd-4gpu" m.Ddcmd.Perf.dag
  in
  let kavg =
    let m =
      Dlearn.Distributed.kavg_round_model ~overlap:true ~learners:8 ~k:8
        ~batch:16 [| 12; 16; 4 |]
    in
    analyze "kavg" m.Dlearn.Distributed.dag
  in
  sw4 @ md @ kavg

(* Service-simulation rows for the trajectory: always emitted (also
   under --micro-only, which CI uses), so every BENCH_<id>.json records
   the per-policy throughput/latency numbers of the multi-tenant
   machine-as-a-service study. Deterministic: fixed seed, simulated
   time, no pool involvement. *)
let service_rows () =
  let nodes = 256 in
  let machine = Icoe_svc.Catalog.machine ~nodes () in
  let classes = Icoe_svc.Catalog.default machine in
  let zipf_s = 1.1 in
  let cap = Icoe_svc.Workload.capacity ~classes ~zipf_s ~nodes in
  let jobs =
    Icoe_svc.Workload.generate ~rng:(Icoe_util.Rng.create 77) ~classes ~zipf_s
      ~arrivals:(Icoe_svc.Workload.Poisson (0.9 *. cap)) ~horizon:8_000.0 ()
  in
  List.map
    (fun pol -> Icoe_svc.Cluster.simulate ~nodes ~classes pol jobs)
    [
      Icoe_svc.Cluster.Fcfs;
      Icoe_svc.Cluster.Easy_backfill;
      Icoe_svc.Cluster.Sjf_quota 0.5;
      Icoe_svc.Cluster.Partition 0.5;
    ]

(* Topology rows for the trajectory: the KAVG round re-priced across the
   machine zoo's interconnects, contiguous vs scattered placement
   (mirrors the topo harness). Always emitted; deterministic: pure
   cost-model arithmetic, no RNG. On flat Sierra both placements price
   identically; on the hierarchical machines a scattered 512+-node gang
   is strictly slower — CI asserts both from the JSON. *)
let topology_rows () =
  let sizes = [| 256; 512; 128; 16 |] in
  List.concat_map
    (fun (m : Hwsim.Node.machine) ->
      let topo = m.Hwsim.Node.topology in
      List.map
        (fun nodes ->
          let round p =
            (Dlearn.Distributed.kavg_round_model ~overlap:true ~topology:topo
               ~placement:p ~learners:nodes ~k:8 ~batch:32 sizes)
              .Dlearn.Distributed.round_s
          in
          let c = round Hwsim.Topology.Contiguous
          and r = round Hwsim.Topology.Random_spread in
          let hops =
            Hwsim.Topology.hops topo
              ~level:
                (Hwsim.Topology.crossing topo ~nodes
                   Hwsim.Topology.Random_spread)
          in
          (m.Hwsim.Node.node.Hwsim.Node.name, nodes, c, r, r /. c, hops))
        [ 64; 512; 4096 ])
    [ Hwsim.Node.sierra; Hwsim.Node.frontier; Hwsim.Node.grace_hopper ]

(* Tuner rows for the trajectory: one exhaustive work-split tuning per
   machine x kernel over the default lattice (mirrors the tune
   harness). Always emitted; deterministic: pure cost-model search, the
   only RNG mode is not used here. CI asserts tuned <= default and
   speedup >= 1 on every row from the JSON. *)
let tuner_rows () = Icoe.Harness_tune.bench_rows ()

let write_bench_json ~harnesses ~faults ~overlap ~blame ~service ~topology
    ~tuner kernels =
  let id =
    match Sys.getenv_opt "BENCH_ID" with
    | Some s when s <> "" -> s
    | _ -> string_of_int (int_of_float (Unix.time ()))
  in
  let file = Fmt.str "BENCH_%s.json" id in
  let buf = Buffer.create 4096 in
  Fmt.kstr (Buffer.add_string buf)
    "{\n  \"id\": \"%s\",\n  \"icoe_domains\": %d,\n  \"harnesses\": [\n"
    (json_escape id)
    (Icoe_par.Pool.size (Icoe_par.Pool.get ()));
  List.iteri
    (fun i (hid, wall_ns, simulated_s, overlap_eff) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Fmt.kstr (Buffer.add_string buf)
        "    {\"id\": \"%s\", \"wall_ns\": %.17g, \"simulated_s\": %.17g, \
         \"overlap_efficiency\": %.17g}"
        (json_escape hid) wall_ns simulated_s overlap_eff)
    harnesses;
  Buffer.add_string buf "\n  ],\n  \"overlap\": [\n";
  List.iteri
    (fun i (oid, serial_s, overlapped_s) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Fmt.kstr (Buffer.add_string buf)
        "    {\"id\": \"%s\", \"serial_s\": %.17g, \"overlapped_s\": %.17g, \
         \"efficiency\": %.17g}"
        (json_escape oid) serial_s overlapped_s
        (if serial_s > 0.0 then overlapped_s /. serial_s else 1.0))
    overlap;
  Buffer.add_string buf "\n  ],\n  \"blame\": [\n";
  List.iteri
    (fun i (bid, phase, seconds, share) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Fmt.kstr (Buffer.add_string buf)
        "    {\"id\": \"%s\", \"phase\": \"%s\", \"seconds\": %.17g, \
         \"share\": %.17g}"
        (json_escape bid) (json_escape phase) seconds share)
    blame;
  Buffer.add_string buf "\n  ],\n  \"service\": [\n";
  List.iteri
    (fun i (m : Icoe_svc.Cluster.metrics) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Fmt.kstr (Buffer.add_string buf)
        "    {\"policy\": \"%s\", \"nodes\": %d, \"submitted\": %d, \
         \"completed\": %d, \"jobs_per_s\": %.17g, \"utilization\": %.17g, \
         \"wait_p50_s\": %.17g, \"wait_p90_s\": %.17g, \"wait_p99_s\": \
         %.17g, \"turn_p50_s\": %.17g, \"turn_p90_s\": %.17g, \
         \"turn_p99_s\": %.17g}"
        (json_escape m.Icoe_svc.Cluster.policy)
        m.Icoe_svc.Cluster.nodes m.Icoe_svc.Cluster.submitted
        m.Icoe_svc.Cluster.completed m.Icoe_svc.Cluster.jobs_per_s
        m.Icoe_svc.Cluster.utilization m.Icoe_svc.Cluster.wait_p50
        m.Icoe_svc.Cluster.wait_p90 m.Icoe_svc.Cluster.wait_p99
        m.Icoe_svc.Cluster.turn_p50 m.Icoe_svc.Cluster.turn_p90
        m.Icoe_svc.Cluster.turn_p99)
    service;
  Buffer.add_string buf "\n  ],\n  \"topology\": [\n";
  List.iteri
    (fun i (machine, nodes, contig_s, random_s, penalty, hops) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Fmt.kstr (Buffer.add_string buf)
        "    {\"machine\": \"%s\", \"nodes\": %d, \"contiguous_step_s\": \
         %.17g, \"random_step_s\": %.17g, \"penalty\": %.17g, \"hops\": %d}"
        (json_escape machine) nodes contig_s random_s penalty hops)
    topology;
  Buffer.add_string buf "\n  ],\n  \"tuner\": [\n";
  List.iteri
    (fun i (r : Icoe.Harness_tune.row) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Fmt.kstr (Buffer.add_string buf)
        "    {\"kernel\": \"%s\", \"machine\": \"%s\", \"default_s\": %.17g, \
         \"tuned_s\": %.17g, \"split\": %.17g, \"comm\": \"%s\", \
         \"speedup\": %.17g, \"evaluations\": %d, \"mode\": \"%s\"}"
        (json_escape r.Icoe.Harness_tune.kernel)
        (json_escape r.Icoe.Harness_tune.machine)
        r.Icoe.Harness_tune.default_s r.Icoe.Harness_tune.tuned_s
        r.Icoe.Harness_tune.split
        (json_escape r.Icoe.Harness_tune.comm)
        r.Icoe.Harness_tune.speedup r.Icoe.Harness_tune.evaluations
        (json_escape r.Icoe.Harness_tune.mode))
    tuner;
  Buffer.add_string buf "\n  ],\n  \"kernels\": [\n";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_string buf ",\n";
      match ns with
      | Some v when Float.is_finite v ->
          Fmt.kstr (Buffer.add_string buf)
            "    {\"name\": \"%s\", \"ns_per_run\": %.17g}" (json_escape name) v
      | _ ->
          Fmt.kstr (Buffer.add_string buf)
            "    {\"name\": \"%s\", \"ns_per_run\": null}" (json_escape name))
    kernels;
  Buffer.add_string buf "\n  ],\n  \"faults\": [\n";
  List.iteri
    (fun i (fid, interval, (rep : Icoe_fault.Checkpoint.report), identical) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Fmt.kstr (Buffer.add_string buf)
        "    {\"id\": \"%s\", \"seed\": 42, \"interval\": %d, \"injected\": \
         %d, \"recovered\": %d, \"checkpoints\": %d, \"ideal_s\": %.17g, \
         \"achieved_s\": %.17g, \"inflation\": %.17g, \
         \"checkpoint_overhead_s\": %.17g, \"lost_work_s\": %.17g, \
         \"identical\": %b}"
        (json_escape fid) interval rep.Icoe_fault.Checkpoint.injected
        rep.Icoe_fault.Checkpoint.recovered
        rep.Icoe_fault.Checkpoint.checkpoints rep.Icoe_fault.Checkpoint.ideal_s
        rep.Icoe_fault.Checkpoint.achieved_s
        (Icoe_fault.Checkpoint.inflation rep)
        rep.Icoe_fault.Checkpoint.checkpoint_overhead_s
        rep.Icoe_fault.Checkpoint.lost_work_s identical)
    faults;
  (* the kernels above ran the instrumented engines, so the registry
     snapshot records how much work each benchmark did (V-cycles, pair
     interactions, BFS edges, ...) alongside how long it took *)
  Buffer.add_string buf "\n  ],\n  \"registry\": ";
  Buffer.add_string buf (String.trim (Icoe_obs.Metrics.to_json ()));
  Buffer.add_string buf "\n}\n";
  (match open_out file with
  | oc ->
      Buffer.output_buffer oc buf;
      close_out oc
  | exception Sys_error msg -> Fmt.epr "cannot write %s: %s@." file msg);
  Fmt.pr "@.bench: wrote %d kernel records to %s@." (List.length kernels) file

(* Part 1: every harness through the registry, timing the real wall
   clock of each run next to the simulated seconds its traces account
   for. Returns (id, wall_ns, simulated_s, overlap_efficiency) rows for
   the JSON payload; the efficiency comes from the harness's
   overlap_efficiency gauge (1.0 when the harness recorded none, e.g.
   under ICOE_OVERLAP=0 or with the registry disabled). *)
let run_harnesses () =
  let rows_and_traces =
    List.map
      (fun (h : Icoe.Harness.t) ->
        let t0 = Unix.gettimeofday () in
        let o = h.run () in
        let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        print_string o.Icoe.Harness.report;
        let overlap_eff =
          match
            Icoe_obs.Metrics.value
              ~labels:[ ("harness", h.id) ]
              "overlap_efficiency"
          with
          | Some v when v > 0.0 -> v
          | _ -> 1.0
        in
        ( (h.id, wall_ns, Icoe.Harness.simulated_seconds o, overlap_eff),
          o.Icoe.Harness.traces ))
      Icoe.Harness_registry.all
  in
  let rows = List.map fst rows_and_traces in
  (* the instrumented harnesses recorded span traces: show where the
     simulated time went, per device and per phase *)
  print_string
    (Icoe.Harness.rollup_report (List.concat_map snd rows_and_traces));
  Fmt.pr "@.== Harness wall clock (ICOE_DOMAINS=%d) ==@."
    (Icoe_par.Pool.size (Icoe_par.Pool.get ()));
  Fmt.pr "%-12s %14s %14s %9s@." "harness" "wall ms" "simulated s" "overlap";
  Fmt.pr "%s@." (String.make 52 '-');
  List.iter
    (fun (id, wall_ns, sim_s, overlap_eff) ->
      Fmt.pr "%-12s %14.2f %14.3f %9.3f@." id (wall_ns /. 1e6) sim_s
        overlap_eff)
    rows;
  rows

(* --alloc-smoke: the zero-allocation budget gate. After a short warmup
   (scratch arenas sized, cell lists built, stack programs compiled), one
   steady-state iteration of each migrated SoA kernel must allocate
   (nearly) nothing on the minor heap. The serial paths execute the exact
   pooled chunk bodies, so they bound the kernel-body allocation with a
   tight budget; the pooled paths add only bounded task-dispatch
   overhead and get a looser one. Exits non-zero on any violation. *)
let alloc_smoke () =
  let failures = ref 0 in
  let measure name ~budget f =
    for _ = 1 to 3 do
      f ()
    done;
    let iters = 10 in
    let before = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    let per = (Gc.minor_words () -. before) /. float_of_int iters in
    let ok = per <= budget in
    if not ok then incr failures;
    Fmt.pr "alloc-smoke %-26s %10.1f words/iter (budget %7.0f) %s@." name per
      budget
      (if ok then "ok" else "FAIL")
  in
  let seq_budget = 64.0 and par_budget = 32768.0 in
  (* sw4 stencil *)
  let g = Sw4.Grid.create ~nx:64 ~ny:64 ~h:100.0 in
  Sw4.Grid.homogeneous g ~rho:2500.0 ~vp:5000.0 ~vs:2500.0;
  let scr = Sw4.Elastic.make_scratch g in
  let n = 64 * 64 in
  let ux = Icoe_util.Fbuf.init n (fun i -> 1e-4 *. sin (float_of_int i)) in
  let uy = Icoe_util.Fbuf.init n (fun i -> 1e-4 *. cos (float_of_int i)) in
  let ax = Icoe_util.Fbuf.create n and ay = Icoe_util.Fbuf.create n in
  measure "sw4/acceleration-seq" ~budget:seq_budget (fun () ->
      Sw4.Elastic.acceleration_seq g scr ~ux ~uy ~ax ~ay);
  measure "sw4/acceleration-par" ~budget:par_budget (fun () ->
      Sw4.Elastic.acceleration g scr ~ux ~uy ~ax ~ay);
  (* ddcMD forces *)
  let rng = Icoe_util.Rng.create 3 in
  let p = Ddcmd.Particles.create ~n:1000 ~box:10.5 in
  Ddcmd.Particles.lattice_init p;
  Ddcmd.Particles.thermalize p ~rng ~temp:0.7;
  let e =
    Ddcmd.Engine.create ~dt:0.004
      ~potential:(Ddcmd.Potential.lennard_jones ()) p
  in
  measure "md/compute-forces-seq" ~budget:seq_budget (fun () ->
      Ddcmd.Engine.compute_forces_seq e);
  measure "md/compute-forces-par" ~budget:par_budget (fun () ->
      Ddcmd.Engine.compute_forces e);
  (* Cardioid reaction *)
  let m = Cardioid.Monodomain.create ~nx:64 ~ny:64 () in
  Cardioid.Monodomain.stimulate m ~ilo:0 ~ihi:3 ~jlo:0 ~jhi:63 ~amplitude:60.0;
  measure "cardioid/reaction-seq" ~budget:seq_budget (fun () ->
      Cardioid.Monodomain.reaction_step_seq m);
  measure "cardioid/reaction-par" ~budget:par_budget (fun () ->
      Cardioid.Monodomain.reaction_step m);
  (* CSR SpMV *)
  let a = Linalg.Csr.laplacian_2d 64 64 in
  let x = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
  let y = Array.make 4096 0.0 in
  measure "linalg/spmv-seq" ~budget:seq_budget (fun () ->
      Linalg.Csr.spmv_seq_into a x y);
  measure "linalg/spmv-par" ~budget:par_budget (fun () ->
      Linalg.Csr.spmv_into a x y);
  (* LDA E-step *)
  let rng = Icoe_util.Rng.create 6 in
  let corpus = Lda.Corpus.generate ~ndocs:16 ~rng () in
  let lm = Lda.Vem.init ~rng ~k:6 ~vocab:corpus.Lda.Corpus.vocab () in
  let elogb = Lda.Vem.elog_beta lm in
  let stats = Icoe_util.Fbuf.create (6 * corpus.Lda.Corpus.vocab) in
  measure "lda/e-step-doc" ~budget:seq_budget (fun () ->
      ignore (Lda.Vem.e_step_doc lm elogb corpus.Lda.Corpus.docs.(0) stats));
  measure "lda/e-step-docs-par" ~budget:par_budget (fun () ->
      ignore (Lda.Vem.e_step_docs lm elogb corpus.Lda.Corpus.docs stats));
  if !failures > 0 then begin
    Fmt.pr "alloc-smoke: %d kernel(s) over budget@." !failures;
    exit 1
  end;
  Fmt.pr "alloc-smoke: all kernels within budget@."

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let micro_only = List.mem "--micro-only" args in
  (* GC tuning knobs (ICOE_GC_MINOR_HEAP / ICOE_GC_SPACE_OVERHEAD):
     applied before any benchmark runs, reported in the header so a
     BENCH trajectory row can be traced back to its GC configuration. *)
  let gc = Icoe_util.Gctune.apply_env () in
  Fmt.pr "bench: gc %s@." (Icoe_util.Gctune.describe gc);
  if List.mem "--alloc-smoke" args then begin
    alloc_smoke ();
    exit 0
  end;
  let harnesses =
    if micro_only then []
    else begin
      Fmt.pr "==========================================================@.";
      Fmt.pr " iCoE reproduction: every table and figure of the paper@.";
      Fmt.pr "==========================================================@.@.";
      run_harnesses ()
    end
  in
  Icoe_obs.Metrics.reset ();
  let kernels = microbenchmarks () in
  let faults = fault_rows () in
  let overlap = overlap_rows () in
  let blame = blame_rows () in
  let service = service_rows () in
  let topology = topology_rows () in
  let tuner = tuner_rows () in
  write_bench_json ~harnesses ~faults ~overlap ~blame ~service ~topology ~tuner
    kernels
