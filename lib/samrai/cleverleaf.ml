(** CleverLeaf: the 2D compressible-Euler mini-app used to assess the
    SAMRAI port (Table 5). Ideal gas, conservative finite volumes with a
    local Lax-Friedrichs (Rusanov) flux on the patch hierarchy's level 0.

    Fields: rho, mx, my (momenta), e (total energy density). The solver is
    deliberately structured as per-patch kernels over interior boxes — the
    RAJA-backend shape of the real port — so one step has a well-defined
    flop/byte volume for device pricing. *)

let gamma_gas = 1.4

let fields = [ "rho"; "mx"; "my"; "e" ]

type t = {
  hier : Hierarchy.t;
  dx : float;
  dy : float;
  mutable time : float;
  mutable steps : int;
}

let create ?(patches = 4) ~nx ~ny ~lx ~ly () =
  let domain = Box.make ~ilo:0 ~jlo:0 ~ihi:(nx - 1) ~jhi:(ny - 1) in
  let hier = Hierarchy.create ~ghosts:1 ~patches_per_level:patches ~fields domain in
  {
    hier;
    dx = lx /. float_of_int nx;
    dy = ly /. float_of_int ny;
    time = 0.0;
    steps = 0;
  }

let m_steps =
  Icoe_obs.Metrics.counter ~help:"Hydro steps taken" "cleverleaf_steps_total"

let m_dt = Icoe_obs.Metrics.gauge ~help:"CFL timestep of the last step" "cleverleaf_dt"

let m_patch_updates =
  Icoe_obs.Metrics.counter ~help:"Patch updates (patches x steps)"
    "cleverleaf_patch_updates_total"

let pressure ~rho ~mx ~my ~e =
  let u = mx /. rho and v = my /. rho in
  (gamma_gas -. 1.0) *. (e -. (0.5 *. rho *. ((u *. u) +. (v *. v))))

(** Initialize with a primitive-variable function of cell-center coords. *)
let init t f =
  List.iter
    (fun p ->
      Patch.iter_interior p (fun ~i ~j ->
          let x = (float_of_int i +. 0.5) *. t.dx in
          let y = (float_of_int j +. 0.5) *. t.dy in
          let rho, u, v, pr = f ~x ~y in
          Patch.set p "rho" ~i ~j rho;
          Patch.set p "mx" ~i ~j (rho *. u);
          Patch.set p "my" ~i ~j (rho *. v);
          Patch.set p "e" ~i ~j
            ((pr /. (gamma_gas -. 1.0)) +. (0.5 *. rho *. ((u *. u) +. (v *. v))))))
    (Hierarchy.level t.hier 0).Hierarchy.patches

(** Max signal speed over the level (for the CFL step). *)
let max_wave_speed t =
  let vmax = ref 1e-12 in
  List.iter
    (fun p ->
      Patch.iter_interior p (fun ~i ~j ->
          let rho = Patch.get p "rho" ~i ~j in
          let mx = Patch.get p "mx" ~i ~j in
          let my = Patch.get p "my" ~i ~j in
          let e = Patch.get p "e" ~i ~j in
          let pr = max 1e-12 (pressure ~rho ~mx ~my ~e) in
          let c = sqrt (gamma_gas *. pr /. rho) in
          let s =
            c +. max (Float.abs (mx /. rho)) (Float.abs (my /. rho))
          in
          if s > !vmax then vmax := s))
    (Hierarchy.level t.hier 0).Hierarchy.patches;
  !vmax

(* Rusanov flux in direction (dxn, dyn) between states l and r. *)
let flux_rusanov (rl, mxl, myl, el) (rr, mxr, myr, er) ~xdir =
  let prl = pressure ~rho:rl ~mx:mxl ~my:myl ~e:el in
  let prr = pressure ~rho:rr ~mx:mxr ~my:myr ~e:er in
  let ul = if xdir then mxl /. rl else myl /. rl in
  let ur = if xdir then mxr /. rr else myr /. rr in
  let cl = sqrt (gamma_gas *. max 1e-12 prl /. rl) in
  let cr = sqrt (gamma_gas *. max 1e-12 prr /. rr) in
  let alpha = max (Float.abs ul +. cl) (Float.abs ur +. cr) in
  let f (r, mx, my, e) p u =
    if xdir then (r *. u, (mx *. u) +. p, my *. u, (e +. p) *. u)
    else (r *. u, mx *. u, (my *. u) +. p, (e +. p) *. u)
  in
  let f1r, f2r, f3r, f4r = f (rr, mxr, myr, er) prr ur in
  let f1l, f2l, f3l, f4l = f (rl, mxl, myl, el) prl ul in
  ( 0.5 *. (f1l +. f1r) -. (0.5 *. alpha *. (rr -. rl)),
    0.5 *. (f2l +. f2r) -. (0.5 *. alpha *. (mxr -. mxl)),
    0.5 *. (f3l +. f3r) -. (0.5 *. alpha *. (myr -. myl)),
    0.5 *. (f4l +. f4r) -. (0.5 *. alpha *. (er -. el)) )

(** One explicit step at CFL [cfl]; returns dt. *)
let step ?(cfl = 0.4) t =
  List.iter (fun f -> Hierarchy.fill_level_ghosts t.hier 0 f) fields;
  let smax = max_wave_speed t in
  let dt = cfl *. min t.dx t.dy /. smax in
  let level = Hierarchy.level t.hier 0 in
  let updates =
    List.map
      (fun p ->
        let b = p.Patch.box in
        let upd = Array.make (4 * Box.size b) 0.0 in
        let gi = ref 0 in
        let state i j =
          ( Patch.get p "rho" ~i ~j,
            Patch.get p "mx" ~i ~j,
            Patch.get p "my" ~i ~j,
            Patch.get p "e" ~i ~j )
        in
        Patch.iter_interior p (fun ~i ~j ->
            let c = state i j in
            let fxm = flux_rusanov (state (i - 1) j) c ~xdir:true in
            let fxp = flux_rusanov c (state (i + 1) j) ~xdir:true in
            let fym = flux_rusanov (state i (j - 1)) c ~xdir:false in
            let fyp = flux_rusanov c (state i (j + 1)) ~xdir:false in
            let r, mx, my, e = c in
            let d (a1, a2, a3, a4) (b1, b2, b3, b4) h =
              ((a1 -. b1) /. h, (a2 -. b2) /. h, (a3 -. b3) /. h, (a4 -. b4) /. h)
            in
            let dx1, dx2, dx3, dx4 = d fxp fxm t.dx in
            let dy1, dy2, dy3, dy4 = d fyp fym t.dy in
            upd.(!gi) <- r -. (dt *. (dx1 +. dy1));
            upd.(!gi + 1) <- mx -. (dt *. (dx2 +. dy2));
            upd.(!gi + 2) <- my -. (dt *. (dx3 +. dy3));
            upd.(!gi + 3) <- e -. (dt *. (dx4 +. dy4));
            gi := !gi + 4);
        (p, upd))
      level.Hierarchy.patches
  in
  List.iter
    (fun ((p : Patch.t), upd) ->
      let gi = ref 0 in
      Patch.iter_interior p (fun ~i ~j ->
          Patch.set p "rho" ~i ~j upd.(!gi);
          Patch.set p "mx" ~i ~j upd.(!gi + 1);
          Patch.set p "my" ~i ~j upd.(!gi + 2);
          Patch.set p "e" ~i ~j upd.(!gi + 3);
          gi := !gi + 4))
    updates;
  t.time <- t.time +. dt;
  t.steps <- t.steps + 1;
  Icoe_obs.Metrics.inc m_steps;
  Icoe_obs.Metrics.inc
    ~by:(float_of_int (List.length level.Hierarchy.patches))
    m_patch_updates;
  Icoe_obs.Metrics.set m_dt dt;
  dt

(** Run until [tstop] (bounded step count). *)
let run ?(cfl = 0.4) ?(max_steps = 100_000) t tstop =
  let n = ref 0 in
  while t.time < tstop && !n < max_steps do
    ignore (step ~cfl t);
    incr n
  done

(** Total mass / x-momentum / energy over level 0 (conservation checks). *)
let totals t =
  let cell = t.dx *. t.dy in
  let acc = [| 0.0; 0.0; 0.0; 0.0 |] in
  List.iter
    (fun p ->
      Patch.iter_interior p (fun ~i ~j ->
          acc.(0) <- acc.(0) +. (cell *. Patch.get p "rho" ~i ~j);
          acc.(1) <- acc.(1) +. (cell *. Patch.get p "mx" ~i ~j);
          acc.(2) <- acc.(2) +. (cell *. Patch.get p "my" ~i ~j);
          acc.(3) <- acc.(3) +. (cell *. Patch.get p "e" ~i ~j)))
    (Hierarchy.level t.hier 0).Hierarchy.patches;
  (acc.(0), acc.(1), acc.(2), acc.(3))

(** Sample density along y = const mid-line (Sod validation). *)
let density_slice t =
  let level = Hierarchy.level t.hier 0 in
  let jmid = (t.hier.Hierarchy.domain.Box.jhi + 1) / 2 in
  let nx = t.hier.Hierarchy.domain.Box.ihi + 1 in
  let out = Array.make nx nan in
  List.iter
    (fun p ->
      Patch.iter_interior p (fun ~i ~j -> if j = jmid then out.(i) <- Patch.get p "rho" ~i ~j))
    level.Hierarchy.patches;
  out

(** Flop/byte volume of one step over [cells] cells: 4 Rusanov fluxes
    (~60 flops each) + update per cell; 4 fields read with 5-point support
    and written once. *)
let step_work ~cells =
  let c = float_of_int cells in
  Hwsim.Kernel.make ~name:"cleverleaf-step" ~launches:6
    ~flops:(c *. 280.0)
    ~bytes:(c *. 8.0 *. ((4.0 *. 5.0) +. 4.0))
    ()

(** Table 5 configuration model. The paper's two columns are different
    configurations of the same mini-app:

    - "P9 vs V100": one P9 socket (11 MPI ranks, the paper's layout — about
      half the socket's streaming efficiency) against one V100 running the
      RAJA CUDA backend with data resident in device memory;
    - "Full node": 2 sockets with NUMA-aware ranks against 4 V100s whose
      multi-GPU run pays CUDA Unified-Memory migration and halo exchange
      (calibrated multi-GPU efficiency, the dominant loss the SAMRAI team
      worked to reduce by keeping data device-resident).

    Returns simulated seconds for (cpu, gpu) under each column given the
    work of [steps] solver steps over [cells] cells. *)
let table5_times ~cells ~steps =
  let w = Hwsim.Kernel.scale (float_of_int steps) (step_work ~cells) in
  let time ~units ~unit_eff ~multi_eff (d : Hwsim.Device.t) =
    let eff = Hwsim.Roofline.eff ~compute:0.5 ~bandwidth:unit_eff () in
    Hwsim.Roofline.time ~eff d w /. (float_of_int units *. multi_eff)
  in
  let single_cpu = time ~units:1 ~unit_eff:0.375 ~multi_eff:1.0 Hwsim.Device.power9 in
  let single_gpu = time ~units:1 ~unit_eff:0.75 ~multi_eff:1.0 Hwsim.Device.v100 in
  let full_cpu = time ~units:2 ~unit_eff:0.53 ~multi_eff:1.0 Hwsim.Device.power9 in
  let full_gpu = time ~units:4 ~unit_eff:0.75 ~multi_eff:0.33 Hwsim.Device.v100 in
  ((full_cpu, full_gpu), (single_cpu, single_gpu))
