(** Krylov solvers: CG, preconditioned CG, restarted GMRES, BiCGStab.

    These are the solve-phase workhorses of hypre (PCG + AMG), Cretin's
    batched iterative population solver (GMRES + Jacobi) and the
    matrix-free topology-optimization solver (CG on an operator). All
    methods take the operator as a function so matrix-free use is direct. *)

type result = {
  x : float array;
  iters : int;
  residual : float;  (** final relative residual ||b - Ax|| / ||b|| *)
  converged : bool;
}

let default_tol = 1e-10

(* Work accounting per method; handles are created once at module init so
   recording a solve is two counter bumps and a gauge store. *)
let record =
  let handles meth =
    let labels = [ ("method", meth) ] in
    ( Icoe_obs.Metrics.counter ~help:"Total Krylov iterations" ~labels
        "krylov_iterations_total",
      Icoe_obs.Metrics.counter ~help:"Completed Krylov solves" ~labels
        "krylov_solves_total",
      Icoe_obs.Metrics.gauge ~help:"Relative residual of the last solve"
        ~labels "krylov_last_residual" )
  in
  let cg_h = handles "cg" and pcg_h = handles "pcg" in
  let gmres_h = handles "gmres" and bicgstab_h = handles "bicgstab" in
  fun meth (r : result) ->
    let iters, solves, resid =
      match meth with
      | `Cg -> cg_h
      | `Pcg -> pcg_h
      | `Gmres -> gmres_h
      | `Bicgstab -> bicgstab_h
    in
    Icoe_obs.Metrics.inc ~by:(float_of_int r.iters) iters;
    Icoe_obs.Metrics.inc solves;
    Icoe_obs.Metrics.set resid r.residual;
    r

(** Conjugate gradients on an SPD operator. *)
let cg ?(tol = default_tol) ?(max_iter = 1000) ~op b x0 =
  let x = Array.copy x0 in
  let r = Vec.sub b (op x) in
  let p = Array.copy r in
  let bnorm = max (Vec.nrm2 b) 1e-300 in
  let rr = ref (Vec.dot r r) in
  let iters = ref 0 in
  (try
     while !iters < max_iter && sqrt !rr /. bnorm > tol do
       let ap = op p in
       let pap = Vec.dot p ap in
       (* zero or negative curvature: the operator is not SPD along p and
          alpha = rr/pap would poison x with inf/nan — bail out like pcg *)
       if pap <= 0.0 || not (Float.is_finite pap) then raise Exit;
       let alpha = !rr /. pap in
       Vec.axpy alpha p x;
       Vec.axpy (-.alpha) ap r;
       let rr' = Vec.dot r r in
       if not (Float.is_finite rr') then raise Exit;
       let beta = rr' /. !rr in
       rr := rr';
       Vec.xpby r beta p;
       incr iters
     done
   with Exit -> ());
  let res = sqrt !rr /. bnorm in
  record `Cg { x; iters = !iters; residual = res; converged = res <= tol }

(** Preconditioned CG; [precond r] returns M^{-1} r. *)
let pcg ?(tol = default_tol) ?(max_iter = 1000) ~op ~precond b x0 =
  let x = Array.copy x0 in
  let r = Vec.sub b (op x) in
  let z = precond r in
  let p = Array.copy z in
  let bnorm = max (Vec.nrm2 b) 1e-300 in
  let rz = ref (Vec.dot r z) in
  let iters = ref 0 in
  let res = ref (Vec.nrm2 r /. bnorm) in
  (try
     while !iters < max_iter && !res > tol do
       let ap = op p in
       let pap = Vec.dot p ap in
       if pap <= 0.0 || not (Float.is_finite pap) then raise Exit;
       let alpha = !rz /. pap in
       Vec.axpy alpha p x;
       Vec.axpy (-.alpha) ap r;
       res := Vec.nrm2 r /. bnorm;
       let z = precond r in
       let rz' = Vec.dot r z in
       let beta = rz' /. !rz in
       rz := rz';
       Vec.xpby z beta p;
       incr iters
     done
   with Exit -> ());
  record `Pcg { x; iters = !iters; residual = !res; converged = !res <= tol }

(** Restarted GMRES(m) with optional right preconditioning. *)
let gmres ?(tol = default_tol) ?(max_iter = 1000) ?(restart = 30)
    ?(precond = Array.copy) ~op b x0 =
  let n = Array.length b in
  let x = ref (Array.copy x0) in
  let bnorm = max (Vec.nrm2 b) 1e-300 in
  let total_iters = ref 0 in
  let final_res = ref infinity in
  let converged = ref false in
  (try
     while (not !converged) && !total_iters < max_iter do
       let r = Vec.sub b (op !x) in
       let beta = Vec.nrm2 r in
       final_res := beta /. bnorm;
       if !final_res <= tol then begin
         converged := true;
         raise Exit
       end;
       let m = min restart (max_iter - !total_iters) in
       (* Arnoldi basis, Hessenberg, Givens rotations *)
       let v = Array.make (m + 1) [||] in
       v.(0) <- Array.map (fun vi -> vi /. beta) r;
       let h = Array.make_matrix (m + 1) m 0.0 in
       let cs = Array.make m 0.0 and sn = Array.make m 0.0 in
       let g = Array.make (m + 1) 0.0 in
       g.(0) <- beta;
       let k_done = ref 0 in
       (try
          for k = 0 to m - 1 do
            let zk = precond v.(k) in
            let w = op zk in
            for i = 0 to k do
              h.(i).(k) <- Vec.dot w v.(i);
              Vec.axpy (-.h.(i).(k)) v.(i) w
            done;
            h.(k + 1).(k) <- Vec.nrm2 w;
            if h.(k + 1).(k) > 1e-300 then
              v.(k + 1) <- Array.map (fun wi -> wi /. h.(k + 1).(k)) w
            else v.(k + 1) <- Array.make n 0.0;
            (* apply existing rotations *)
            for i = 0 to k - 1 do
              let t = (cs.(i) *. h.(i).(k)) +. (sn.(i) *. h.(i + 1).(k)) in
              h.(i + 1).(k) <-
                (-.sn.(i) *. h.(i).(k)) +. (cs.(i) *. h.(i + 1).(k));
              h.(i).(k) <- t
            done;
            (* new rotation *)
            let denom = sqrt ((h.(k).(k) ** 2.0) +. (h.(k + 1).(k) ** 2.0)) in
            if denom < 1e-300 then begin
              cs.(k) <- 1.0;
              sn.(k) <- 0.0
            end
            else begin
              cs.(k) <- h.(k).(k) /. denom;
              sn.(k) <- h.(k + 1).(k) /. denom
            end;
            h.(k).(k) <- (cs.(k) *. h.(k).(k)) +. (sn.(k) *. h.(k + 1).(k));
            h.(k + 1).(k) <- 0.0;
            g.(k + 1) <- -.sn.(k) *. g.(k);
            g.(k) <- cs.(k) *. g.(k);
            incr total_iters;
            k_done := k + 1;
            final_res := Float.abs g.(k + 1) /. bnorm;
            if !final_res <= tol then raise Exit
          done
        with Exit -> ());
       let k = !k_done in
       if k > 0 then begin
         (* back substitution for y *)
         let y = Array.make k 0.0 in
         for i = k - 1 downto 0 do
           let s = ref g.(i) in
           for j = i + 1 to k - 1 do
             s := !s -. (h.(i).(j) *. y.(j))
           done;
           y.(i) <- !s /. h.(i).(i)
         done;
         (* x <- x + M^{-1} (V y) *)
         let upd = Array.make n 0.0 in
         for i = 0 to k - 1 do
           Vec.axpy y.(i) v.(i) upd
         done;
         let upd = precond upd in
         Vec.axpy 1.0 upd !x
       end;
       if !final_res <= tol then converged := true;
       if k = 0 then raise Exit
     done
   with Exit -> ());
  record `Gmres
    { x = !x; iters = !total_iters; residual = !final_res; converged = !converged }

(** BiCGStab for nonsymmetric systems. *)
let bicgstab ?(tol = default_tol) ?(max_iter = 1000) ~op b x0 =
  let x = Array.copy x0 in
  let r = Vec.sub b (op x) in
  let r0 = Array.copy r in
  let bnorm = max (Vec.nrm2 b) 1e-300 in
  let rho = ref 1.0 and alpha = ref 1.0 and omega = ref 1.0 in
  let n = Array.length b in
  let v = Array.make n 0.0 and p = Array.make n 0.0 in
  let iters = ref 0 in
  let res = ref (Vec.nrm2 r /. bnorm) in
  (try
     while !iters < max_iter && !res > tol do
       let rho' = Vec.dot r0 r in
       if Float.abs rho' < 1e-300 then raise Exit;
       let beta = rho' /. !rho *. (!alpha /. !omega) in
       rho := rho';
       (* p <- r + beta*(p - omega*v) *)
       for i = 0 to n - 1 do
         p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
       done;
       let v' = op p in
       Array.blit v' 0 v 0 n;
       alpha := !rho /. Vec.dot r0 v;
       let s = Array.init n (fun i -> r.(i) -. (!alpha *. v.(i))) in
       let t = op s in
       let tt = Vec.dot t t in
       omega := if tt < 1e-300 then 0.0 else Vec.dot t s /. tt;
       for i = 0 to n - 1 do
         x.(i) <- x.(i) +. (!alpha *. p.(i)) +. (!omega *. s.(i));
         r.(i) <- s.(i) -. (!omega *. t.(i))
       done;
       res := Vec.nrm2 r /. bnorm;
       incr iters;
       if Float.abs !omega < 1e-300 then raise Exit
     done
   with Exit -> ());
  record `Bicgstab { x; iters = !iters; residual = !res; converged = !res <= tol }
