(** Compressed sparse row matrices: the cuSPARSE analog.

    hypre's BoomerAMG solve phase, Cretin's iterative population solver and
    every Krylov method run on these. Includes the SpMV, sparse
    matrix-matrix product (for the Galerkin RAP), transpose and triplet
    assembly. *)

module Fbuf = Icoe_util.Fbuf

type t = {
  m : int;
  n : int;
  row_ptr : int array;  (** length m+1 *)
  col_idx : int array;
  values : Fbuf.t;  (** flat float64 Bigarray, one slot per stored entry *)
}

let nnz t = t.row_ptr.(t.m)

let create_empty m n =
  { m; n; row_ptr = Array.make (m + 1) 0; col_idx = [||]; values = Fbuf.create 0 }

(** Build from (row, col, value) triplets; duplicates are summed. *)
let of_triplets ~m ~n triplets =
  let cnt = Array.make m 0 in
  List.iter
    (fun (i, j, _) ->
      assert (i >= 0 && i < m && j >= 0 && j < n);
      cnt.(i) <- cnt.(i) + 1)
    triplets;
  let row_ptr = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + cnt.(i)
  done;
  let k = row_ptr.(m) in
  let col_idx = Array.make k 0 and values = Array.make k 0.0 in
  let fill = Array.copy row_ptr in
  List.iter
    (fun (i, j, v) ->
      col_idx.(fill.(i)) <- j;
      values.(fill.(i)) <- v;
      fill.(i) <- fill.(i) + 1)
    triplets;
  (* sort each row by column and combine duplicates *)
  let out_cols = Array.make k 0 and out_vals = Array.make k 0.0 in
  let out_ptr = Array.make (m + 1) 0 in
  let pos = ref 0 in
  for i = 0 to m - 1 do
    out_ptr.(i) <- !pos;
    let s = row_ptr.(i) and e = row_ptr.(i + 1) in
    let row = Array.init (e - s) (fun t -> (col_idx.(s + t), values.(s + t))) in
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) row;
    Array.iter
      (fun (j, v) ->
        if !pos > out_ptr.(i) && out_cols.(!pos - 1) = j then
          out_vals.(!pos - 1) <- out_vals.(!pos - 1) +. v
        else begin
          out_cols.(!pos) <- j;
          out_vals.(!pos) <- v;
          incr pos
        end)
      row
  done;
  out_ptr.(m) <- !pos;
  {
    m;
    n;
    row_ptr = out_ptr;
    col_idx = Array.sub out_cols 0 !pos;
    values = Fbuf.of_array (Array.sub out_vals 0 !pos);
  }

let of_dense (d : Dense.t) =
  let triplets = ref [] in
  for i = d.Dense.m - 1 downto 0 do
    for j = d.Dense.n - 1 downto 0 do
      let v = Dense.get d i j in
      if v <> 0.0 then triplets := (i, j, v) :: !triplets
    done
  done;
  of_triplets ~m:d.Dense.m ~n:d.Dense.n !triplets

let to_dense t =
  let d = Dense.create t.m t.n in
  for i = 0 to t.m - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Dense.update d i t.col_idx.(k) (fun v -> v +. Fbuf.get t.values k)
    done
  done;
  d

(* The SpMV inner loop: Bigarray values + unchecked index loads. The
   [s] accumulator is a non-escaping ref the compiler keeps in a
   register, and every access below compiles to a single load/store —
   this loop allocates nothing. Summation order per row is the storage
   order, identical on every path. *)
let spmv_rows t x y lo hi =
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = lo to hi - 1 do
    let s = ref 0.0 in
    let k0 = Array.unsafe_get row_ptr i
    and k1 = Array.unsafe_get row_ptr (i + 1) in
    for k = k0 to k1 - 1 do
      s :=
        !s
        +. (Fbuf.get values k
            *. Array.unsafe_get x (Array.unsafe_get col_idx k))
    done;
    Array.unsafe_set y i !s
  done

(** y <- A x, strictly in the calling domain (the reference path). *)
let spmv_seq_into t x y =
  assert (Array.length x = t.n && Array.length y = t.m);
  spmv_rows t x y 0 t.m

(* Rows below this count don't amortize the pool's chunk dispatch (AMG
   coarse levels live here). Row-disjoint writes with an unchanged
   per-row summation order make the parallel path bit-identical to the
   serial one, so the threshold only affects speed. *)
let spmv_par_threshold = 512

(** y <- A x into a preallocated output, row-parallel on the domain
    pool for matrices large enough to amortize the dispatch. *)
let spmv_into t x y =
  assert (Array.length x = t.n && Array.length y = t.m);
  if t.m < spmv_par_threshold then spmv_rows t x y 0 t.m
  else
    Icoe_par.Pool.parallel_for_chunks ~lo:0 ~hi:t.m (fun lo hi ->
        spmv_rows t x y lo hi)

(** y <- A x (fresh array). *)
let spmv t x =
  let y = Array.make t.m 0.0 in
  spmv_into t x y;
  y

let diag t =
  let d = Array.make t.m 0.0 in
  for i = 0 to t.m - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      if t.col_idx.(k) = i then d.(i) <- Fbuf.get t.values k
    done
  done;
  d

let transpose t =
  let cnt = Array.make (t.n + 1) 0 in
  Array.iter (fun j -> cnt.(j + 1) <- cnt.(j + 1) + 1) t.col_idx;
  for j = 0 to t.n - 1 do
    cnt.(j + 1) <- cnt.(j + 1) + cnt.(j)
  done;
  let row_ptr = Array.copy cnt in
  let col_idx = Array.make (nnz t) 0 and values = Fbuf.create (nnz t) in
  for i = 0 to t.m - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      col_idx.(cnt.(j)) <- i;
      Fbuf.set values cnt.(j) (Fbuf.get t.values k);
      cnt.(j) <- cnt.(j) + 1
    done
  done;
  { m = t.n; n = t.m; row_ptr; col_idx; values }

(** Sparse C = A * B with a dense workspace row (Gustavson). *)
let matmul a b =
  assert (a.n = b.m);
  let mark = Array.make b.n (-1) in
  let acc = Array.make b.n 0.0 in
  let rows = ref [] in
  let total = ref 0 in
  for i = 0 to a.m - 1 do
    let cols = ref [] in
    for ka = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let k = a.col_idx.(ka) and av = Fbuf.get a.values ka in
      for kb = b.row_ptr.(k) to b.row_ptr.(k + 1) - 1 do
        let j = b.col_idx.(kb) in
        if mark.(j) <> i then begin
          mark.(j) <- i;
          acc.(j) <- 0.0;
          cols := j :: !cols
        end;
        acc.(j) <- acc.(j) +. (av *. Fbuf.get b.values kb)
      done
    done;
    let cs = List.sort Int.compare !cols in
    let row = List.map (fun j -> (j, acc.(j))) cs in
    total := !total + List.length row;
    rows := row :: !rows
  done;
  let rows = Array.of_list (List.rev !rows) in
  let row_ptr = Array.make (a.m + 1) 0 in
  let col_idx = Array.make !total 0 and values = Fbuf.create !total in
  let pos = ref 0 in
  for i = 0 to a.m - 1 do
    row_ptr.(i) <- !pos;
    List.iter
      (fun (j, v) ->
        col_idx.(!pos) <- j;
        Fbuf.set values !pos v;
        incr pos)
      rows.(i);
  done;
  row_ptr.(a.m) <- !pos;
  { m = a.m; n = b.n; row_ptr; col_idx; values }

(** Scale: A <- diag(d) * A, in place on a copy. *)
let scale_rows t d =
  assert (Array.length d = t.m);
  let values = Fbuf.copy t.values in
  for i = 0 to t.m - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Fbuf.set values k (Fbuf.get values k *. d.(i))
    done
  done;
  { t with values }

(** Standard 5-point 2D Laplacian on an nx x ny grid (Dirichlet). *)
let laplacian_2d nx ny =
  let idx i j = i + (nx * j) in
  let triplets = ref [] in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let r = idx i j in
      triplets := (r, r, 4.0) :: !triplets;
      if i > 0 then triplets := (r, idx (i - 1) j, -1.0) :: !triplets;
      if i < nx - 1 then triplets := (r, idx (i + 1) j, -1.0) :: !triplets;
      if j > 0 then triplets := (r, idx i (j - 1), -1.0) :: !triplets;
      if j < ny - 1 then triplets := (r, idx i (j + 1), -1.0) :: !triplets
    done
  done;
  of_triplets ~m:(nx * ny) ~n:(nx * ny) !triplets

(** 7-point 3D Laplacian. *)
let laplacian_3d nx ny nz =
  let idx i j k = i + (nx * (j + (ny * k))) in
  let triplets = ref [] in
  for k = 0 to nz - 1 do
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        let r = idx i j k in
        triplets := (r, r, 6.0) :: !triplets;
        if i > 0 then triplets := (r, idx (i - 1) j k, -1.0) :: !triplets;
        if i < nx - 1 then triplets := (r, idx (i + 1) j k, -1.0) :: !triplets;
        if j > 0 then triplets := (r, idx i (j - 1) k, -1.0) :: !triplets;
        if j < ny - 1 then triplets := (r, idx i (j + 1) k, -1.0) :: !triplets;
        if k > 0 then triplets := (r, idx i j (k - 1), -1.0) :: !triplets;
        if k < nz - 1 then triplets := (r, idx i j (k + 1), -1.0) :: !triplets
      done
    done
  done;
  of_triplets ~m:(nx * ny * nz) ~n:(nx * ny * nz) !triplets
