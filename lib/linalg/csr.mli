(** Compressed sparse row matrices: the cuSPARSE analog.

    hypre's BoomerAMG solve phase, Cretin's iterative population solver
    and every Krylov method run on these. *)

type t = {
  m : int;
  n : int;
  row_ptr : int array;  (** length m+1 *)
  col_idx : int array;
  values : Icoe_util.Fbuf.t;
      (** stored entries as a flat float64 Bigarray (SoA layout): the
          SpMV inner loop reads it with unchecked single-load access and
          the GC never scans or moves it *)
}

val nnz : t -> int
val create_empty : int -> int -> t

val of_triplets : m:int -> n:int -> (int * int * float) list -> t
(** Build from (row, col, value) triplets; duplicates are summed, columns
    are sorted within each row. Indices must be in range. *)

val of_dense : Dense.t -> t
val to_dense : t -> Dense.t

val spmv : t -> float array -> float array
(** y = A x, fresh output. *)

val spmv_into : t -> float array -> float array -> unit
(** y = A x into a preallocated output. Row-parallel on the
    {!Icoe_par.Pool} for matrices with at least {!spmv_par_threshold}
    rows; per-row summation order is unchanged, so the result is
    bit-identical to {!spmv_seq_into} for any pool size. *)

val spmv_seq_into : t -> float array -> float array -> unit
(** y = A x, strictly in the calling domain — the reference path the
    parallel one must match exactly. *)

val spmv_par_threshold : int
(** Minimum row count before {!spmv_into} uses the pool. *)

val diag : t -> float array

val transpose : t -> t

val matmul : t -> t -> t
(** Sparse C = A * B (Gustavson's algorithm) — used for the Galerkin
    coarse-grid product in BoomerAMG. *)

val scale_rows : t -> float array -> t
(** diag(d) * A as a fresh matrix. *)

val laplacian_2d : int -> int -> t
(** Standard 5-point Laplacian on an nx x ny grid, Dirichlet walls. *)

val laplacian_3d : int -> int -> int -> t
(** 7-point 3D Laplacian. *)
