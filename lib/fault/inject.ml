module Metrics = Icoe_obs.Metrics
module Link = Hwsim.Link
module Roofline = Hwsim.Roofline
module Trace = Hwsim.Trace

let m_degraded =
  Metrics.counter ~help:"Transfers priced under a degraded link"
    "fault_degraded_transfers_total"

let m_straggler =
  Metrics.counter ~help:"Kernels priced under a straggler slowdown"
    "fault_straggler_kernels_total"

let m_reexec =
  Metrics.counter ~help:"Kernel re-executions forced by transient faults"
    "fault_kernel_reexecutions_total"

let transfer_time plan ~now (l : Link.t) ~bytes =
  let bw_factor, latency_factor = Plan.link_factors plan ~now in
  if bw_factor = 1.0 && latency_factor = 1.0 then Link.transfer_time l ~bytes
  else begin
    Metrics.inc m_degraded;
    Link.transfer_time
      { l with bw_gbs = l.bw_gbs *. bw_factor;
               latency_s = l.latency_s *. latency_factor }
      ~bytes
  end

(* metrics-free core: stretched time and the transient-fault fixed
   point, shared by the public entry points so counters bump once. *)
let stretched_time plan ~now ?eff ?lanes_used device kernel =
  Roofline.time ?eff ?lanes_used device kernel
  *. Plan.straggler_slowdown plan ~now

let faults_fixed_point plan ~now base =
  (* each transient fault inside the execution window costs a full
     re-execution, which widens the window; iterate to the fixed
     point (monotone, bounded by the plan's fault count). *)
  let rec settle faults =
    let total = base *. float_of_int (faults + 1) in
    let seen = Plan.kernel_faults_in plan ~a:now ~b:(now +. total) in
    if seen = faults then (total, faults) else settle seen
  in
  if base > 0.0 then settle 0 else (base, 0)

let kernel_time plan ~now ?eff ?lanes_used device kernel =
  if Plan.straggler_slowdown plan ~now > 1.0 then Metrics.inc m_straggler;
  stretched_time plan ~now ?eff ?lanes_used device kernel

let kernel_time_with_faults plan ~now ?eff ?lanes_used device kernel =
  let base = kernel_time plan ~now ?eff ?lanes_used device kernel in
  let total, faults = faults_fixed_point plan ~now base in
  if faults > 0 then Metrics.inc ~by:(float_of_int faults) m_reexec;
  (total, faults)

(* Flight-recorder bridge: one "fault" event per injected cost (the
   extra seconds a fault added on top of the clean price). *)
let emit_fault_event ~t_s ~fault ~phase extra_s =
  if Icoe_obs.Events.enabled () then
    Icoe_obs.Events.(
      emit ~t_s ~kind:"fault" ~source:"fault/inject"
        [ ("fault", S fault); ("phase", S phase); ("extra_s", F extra_s) ])

let charge_transfer plan trace ?device ~phase l ~bytes =
  let now = Trace.now trace in
  let clean = Link.transfer_time l ~bytes in
  let total = transfer_time plan ~now l ~bytes in
  Trace.charge trace ?device ~phase clean;
  if total > clean then begin
    Trace.charge trace ?device ~phase:"fault:degraded-link" (total -. clean);
    emit_fault_event ~t_s:now ~fault:"degraded-link" ~phase (total -. clean)
  end;
  total

let charge_kernel plan trace ?eff ?lanes_used ?phase device kernel =
  let now = Trace.now trace in
  let clean = Roofline.time ?eff ?lanes_used device kernel in
  let stretched = kernel_time plan ~now ?eff ?lanes_used device kernel in
  let total, faults = faults_fixed_point plan ~now stretched in
  if faults > 0 then Metrics.inc ~by:(float_of_int faults) m_reexec;
  let phase = match phase with Some p -> p | None -> kernel.Hwsim.Kernel.name in
  let device = device.Hwsim.Device.name in
  Trace.charge trace ~device ~phase clean;
  if stretched > clean then begin
    Trace.charge trace ~device ~phase:"fault:straggler" (stretched -. clean);
    emit_fault_event ~t_s:now ~fault:"straggler" ~phase (stretched -. clean)
  end;
  if total > stretched then begin
    Trace.charge trace ~device ~phase:"fault:rework" (total -. stretched);
    emit_fault_event ~t_s:now ~fault:"rework" ~phase (total -. stretched)
  end;
  total
