(* Seeded fault plans: generate-once schedules of node failures, link
   degradations, stragglers, and transient kernel faults.  Queries are
   pure lookups over sorted arrays, so consulting a plan can never
   perturb determinism. *)

module Rng = Icoe_util.Rng

type node_failure = { node : int; at : float; downtime : float }

type link_degradation = {
  deg_at : float;
  deg_until : float;
  bw_factor : float;
  latency_factor : float;
}

type straggler = {
  straggler_at : float;
  straggler_until : float;
  slowdown : float;
}

type config = {
  nodes : int;
  horizon_s : float;
  node_mtbf_s : float;
  node_downtime_s : float;
  link_mtbf_s : float;
  link_degraded_s : float;
  straggler_mtbf_s : float;
  straggler_s : float;
  kernel_fault_mtbf_s : float;
}

let default_config =
  {
    nodes = 16;
    horizon_s = 4000.0;
    node_mtbf_s = 9600.0 (* system MTBF 600 s on 16 nodes *);
    node_downtime_s = 60.0;
    link_mtbf_s = 900.0;
    link_degraded_s = 120.0;
    straggler_mtbf_s = 700.0;
    straggler_s = 90.0;
    kernel_fault_mtbf_s = 500.0;
  }

type t = {
  cfg : config;
  plan_seed : int;
  failures : node_failure array;  (* sorted by [at] *)
  degradations : link_degradation array;  (* sorted by [deg_at] *)
  stragglers : straggler array;  (* sorted by [straggler_at] *)
  kernel_faults : float array;  (* sorted *)
}

let config t = t.cfg
let seed t = t.plan_seed

(* Draw a Poisson arrival sequence on [0, horizon) with the given mean
   inter-arrival time; [infinity] disables the stream. *)
let arrivals rng ~mtbf ~horizon =
  if not (Float.is_finite mtbf) then []
  else begin
    assert (mtbf > 0.0);
    let rate = 1.0 /. mtbf in
    let rec go acc t =
      let t = t +. Rng.exponential rng ~rate in
      if t >= horizon then List.rev acc else go (t :: acc) t
    in
    go [] 0.0
  end

let generate ~seed cfg =
  if cfg.nodes <= 0 then invalid_arg "Plan.generate: nodes must be positive";
  if not (cfg.horizon_s > 0.0) then
    invalid_arg "Plan.generate: horizon must be positive";
  let root = Rng.create seed in
  (* One child stream per fault class, so tweaking one hazard rate
     leaves the other classes' schedules untouched. *)
  let node_rng = Rng.split root in
  let link_rng = Rng.split root in
  let straggler_rng = Rng.split root in
  let kernel_rng = Rng.split root in
  let failures =
    (* A single system-level arrival process at rate nodes/mtbf, with
       the struck node drawn uniformly: equivalent in distribution to
       per-node processes but O(events) instead of O(nodes). *)
    let mtbf = cfg.node_mtbf_s /. float_of_int cfg.nodes in
    arrivals node_rng ~mtbf ~horizon:cfg.horizon_s
    |> List.map (fun at ->
           let node = Rng.int node_rng cfg.nodes in
           let downtime =
             Rng.exponential node_rng ~rate:(1.0 /. cfg.node_downtime_s)
           in
           { node; at; downtime })
    |> Array.of_list
  in
  let degradations =
    arrivals link_rng ~mtbf:cfg.link_mtbf_s ~horizon:cfg.horizon_s
    |> List.map (fun at ->
           let dur =
             Rng.exponential link_rng ~rate:(1.0 /. cfg.link_degraded_s)
           in
           (* bandwidth cut to 20-80 %, latency spike 1-8x; roughly one
              in three episodes is latency-only. *)
           let bw_factor =
             if Rng.int link_rng 3 = 0 then 1.0
             else Rng.uniform link_rng 0.2 0.8
           in
           let latency_factor = Rng.uniform link_rng 1.0 8.0 in
           { deg_at = at; deg_until = at +. dur; bw_factor; latency_factor })
    |> Array.of_list
  in
  let stragglers =
    arrivals straggler_rng ~mtbf:cfg.straggler_mtbf_s ~horizon:cfg.horizon_s
    |> List.map (fun at ->
           let dur =
             Rng.exponential straggler_rng ~rate:(1.0 /. cfg.straggler_s)
           in
           let slowdown = Rng.uniform straggler_rng 1.3 4.0 in
           {
             straggler_at = at;
             straggler_until = at +. dur;
             slowdown;
           })
    |> Array.of_list
  in
  let kernel_faults =
    arrivals kernel_rng ~mtbf:cfg.kernel_fault_mtbf_s ~horizon:cfg.horizon_s
    |> Array.of_list
  in
  { cfg; plan_seed = seed; failures; degradations; stragglers; kernel_faults }

type spec = { spec_seed : int; intensity : float }

let spec ?(intensity = 1.0) seed =
  if not (intensity > 0.0) then invalid_arg "Plan.spec: intensity must be > 0";
  { spec_seed = seed; intensity }

let for_run s ~ideal_s ~nodes =
  if not (ideal_s > 0.0) then invalid_arg "Plan.for_run: ideal_s must be > 0";
  let system_mtbf = ideal_s /. (4.0 *. s.intensity) in
  generate ~seed:s.spec_seed
    {
      nodes;
      (* failures inflate completion well past ideal_s; keep drawing
         events far enough out that late rework still sees them. *)
      horizon_s = 16.0 *. ideal_s;
      node_mtbf_s = system_mtbf *. float_of_int nodes;
      node_downtime_s = system_mtbf /. 8.0;
      link_mtbf_s = system_mtbf *. 1.5;
      link_degraded_s = system_mtbf /. 4.0;
      straggler_mtbf_s = system_mtbf *. 1.2;
      straggler_s = system_mtbf /. 5.0;
      kernel_fault_mtbf_s = system_mtbf /. 1.5;
    }

let node_failures t = Array.to_list t.failures

let next_node_failure t ~after =
  (* arrays are small (tens of events); linear scan keeps this obvious *)
  let n = Array.length t.failures in
  let rec go i =
    if i >= n then None
    else if t.failures.(i).at > after then Some t.failures.(i)
    else go (i + 1)
  in
  go 0

let node_down t ~node ~now =
  Array.exists
    (fun f -> f.node = node && f.at <= now && now < f.at +. f.downtime)
    t.failures

let link_factors t ~now =
  Array.fold_left
    (fun (bw, lat) d ->
      if d.deg_at <= now && now < d.deg_until then
        (bw *. d.bw_factor, lat *. d.latency_factor)
      else (bw, lat))
    (1.0, 1.0) t.degradations

let straggler_slowdown t ~now =
  Array.fold_left
    (fun acc s ->
      if s.straggler_at <= now && now < s.straggler_until then
        Float.max acc s.slowdown
      else acc)
    1.0 t.stragglers

let kernel_faults_in t ~a ~b =
  Array.fold_left
    (fun acc at -> if a < at && at <= b then acc + 1 else acc)
    0 t.kernel_faults

let mtbf t =
  let n = Array.length t.failures in
  if n = 0 then t.cfg.horizon_s else t.cfg.horizon_s /. float_of_int n

let counts t =
  ( Array.length t.failures,
    Array.length t.degradations,
    Array.length t.stragglers,
    Array.length t.kernel_faults )

let pp_summary ppf t =
  let nf, nd, ns, nk = counts t in
  Format.fprintf ppf
    "fault plan (seed %d): %d nodes over %.4g s horizon; %d node \
     failure(s) (system MTBF %.4g s), %d link degradation(s), %d \
     straggler episode(s), %d transient kernel fault(s)"
    t.plan_seed t.cfg.nodes t.cfg.horizon_s nf (mtbf t) nd ns nk
