(** Fault-aware wrappers over the hwsim pricing primitives.

    Each function is the clean model ([Hwsim.Link.transfer_time],
    [Hwsim.Roofline.time]) with the plan consulted at the caller's
    current simulated time: link degradations stretch transfers,
    straggler episodes stretch kernels, and transient kernel faults
    force whole re-executions.  The [charge_*] variants emit the clean
    cost under the caller's phase and the fault-induced excess under
    dedicated [fault:*] phases, so traces and the
    [hwsim_phase_seconds] metric expose exactly what faults cost. *)

val transfer_time : Plan.t -> now:float -> Hwsim.Link.t -> bytes:float -> float
(** [Link.transfer_time] with the plan's bandwidth/latency factors
    applied at [now]. *)

val kernel_time :
  Plan.t ->
  now:float ->
  ?eff:Hwsim.Roofline.efficiency ->
  ?lanes_used:int ->
  Hwsim.Device.t ->
  Hwsim.Kernel.t ->
  float
(** [Roofline.time] stretched by the straggler slowdown active at
    [now] (transient faults not included). *)

val kernel_time_with_faults :
  Plan.t ->
  now:float ->
  ?eff:Hwsim.Roofline.efficiency ->
  ?lanes_used:int ->
  Hwsim.Device.t ->
  Hwsim.Kernel.t ->
  float * int
(** As {!kernel_time}, plus transient kernel faults: every fault the
    plan schedules inside the (stretched, repeatedly re-executed)
    window costs one full re-execution.  Returns (total seconds,
    faults absorbed); the fixed point is deterministic. *)

val charge_transfer :
  Plan.t ->
  Hwsim.Trace.t ->
  ?device:string ->
  phase:string ->
  Hwsim.Link.t ->
  bytes:float ->
  float
(** Charge the clean transfer under [phase] and the degradation excess
    under ["fault:degraded-link"]; returns total seconds. *)

val charge_kernel :
  Plan.t ->
  Hwsim.Trace.t ->
  ?eff:Hwsim.Roofline.efficiency ->
  ?lanes_used:int ->
  ?phase:string ->
  Hwsim.Device.t ->
  Hwsim.Kernel.t ->
  float
(** Charge the clean kernel under [phase] (default: kernel name), the
    straggler excess under ["fault:straggler"], and transient-fault
    re-executions under ["fault:rework"]; returns total seconds. *)
