(** Ambient fault spec, scoped around a harness run.

    [icoe_report --faults <seed>] installs a {!Plan.spec} here;
    harnesses that model resilience pick it up and derive a plan
    matched to their own simulated time scale with {!Plan.for_run}.
    Harnesses that ignore faults are unaffected. *)

val current : unit -> Plan.spec option

val with_spec : Plan.spec -> (unit -> 'a) -> 'a
(** Install the spec for the duration of [f] (exception-safe,
    restores the previous value; nesting is allowed). *)
