module Metrics = Icoe_obs.Metrics
module Trace = Hwsim.Trace

type report = {
  steps : int;
  interval : int;
  step_cost_s : float;
  injected : int;
  recovered : int;
  checkpoints : int;
  ideal_s : float;
  achieved_s : float;
  checkpoint_overhead_s : float;
  lost_work_s : float;
}

let inflation r = if r.ideal_s > 0.0 then r.achieved_s /. r.ideal_s else 1.0

let pp_report ppf r =
  Format.fprintf ppf
    "%d steps x %.4g s, checkpoint every %d: %d failure(s), %d \
     recovery(ies), %d checkpoint(s); ideal %.4g s -> achieved %.4g s \
     (inflation %.3fx; %.4g s checkpoint overhead, %.4g s lost work)"
    r.steps r.step_cost_s r.interval r.injected r.recovered r.checkpoints
    r.ideal_s r.achieved_s (inflation r) r.checkpoint_overhead_s
    r.lost_work_s

let young_daly_s ~mtbf_s ~checkpoint_cost_s =
  if not (mtbf_s > 0.0 && checkpoint_cost_s >= 0.0) then
    invalid_arg "Checkpoint.young_daly_s";
  sqrt (2.0 *. checkpoint_cost_s *. mtbf_s)

let young_daly_steps ~mtbf_s ~checkpoint_cost_s ~step_cost_s =
  if not (step_cost_s > 0.0) then invalid_arg "Checkpoint.young_daly_steps";
  max 1
    (int_of_float (Float.round (young_daly_s ~mtbf_s ~checkpoint_cost_s
                                /. step_cost_s)))

let m_injected =
  Metrics.counter ~help:"Node failures injected into checkpointed runs"
    "fault_injected_total"

let m_recovered =
  Metrics.counter ~help:"Checkpoint restore-and-replay recoveries"
    "fault_recoveries_total"

let m_checkpoints =
  Metrics.counter ~help:"Checkpoints written by the fault driver"
    "fault_checkpoints_total"

let m_recovery =
  Metrics.histogram
    ~help:"Simulated seconds of downtime + restart per recovery"
    "fault_recovery_seconds"

let m_lost =
  Metrics.histogram ~help:"Simulated seconds of work lost per failure"
    "fault_lost_work_seconds"

let run ~plan ?(start = 0.0) ?(restart_cost_s = 0.0) ?trace ~step_cost_s
    ~checkpoint_cost_s ~interval ~steps ~snapshot ~restore ~step () =
  if interval < 1 then invalid_arg "Checkpoint.run: interval must be >= 1";
  if steps < 0 then invalid_arg "Checkpoint.run: steps must be >= 0";
  if not (step_cost_s > 0.0) then
    invalid_arg "Checkpoint.run: step_cost_s must be > 0";
  if not (checkpoint_cost_s >= 0.0 && restart_cost_s >= 0.0) then
    invalid_arg "Checkpoint.run: costs must be >= 0";
  let t = ref start in
  let completed = ref 0 in
  let high_water = ref 0 in
  let ck_state = ref (snapshot ()) in
  let ck_step = ref 0 in
  let injected = ref 0 and recovered = ref 0 and checkpoints = ref 0 in
  let lost = ref 0.0 and overhead = ref 0.0 in
  let charge phase dt =
    match trace with
    | Some tr -> if dt > 0.0 then Trace.charge tr ~phase dt
    | None -> ()
  in
  (* bulk-charge step time between events so the span count is bounded
     by the number of checkpoint/fault events, not the step count *)
  let pending_compute = ref 0.0 and pending_rework = ref 0.0 in
  let flush () =
    charge "compute" !pending_compute;
    pending_compute := 0.0;
    charge "fault:rework" !pending_rework;
    pending_rework := 0.0
  in
  while !completed < steps do
    match Plan.next_node_failure plan ~after:!t with
    | Some f when f.Plan.at < !t +. step_cost_s ->
        (* the in-flight step is lost: roll back to the last snapshot,
           wait out the downtime, pay the restart, replay *)
        let partial = Float.max 0.0 (f.Plan.at -. !t) in
        incr injected;
        Metrics.inc m_injected;
        if Icoe_obs.Events.enabled () then
          Icoe_obs.Events.(
            emit ~t_s:f.Plan.at ~kind:"fault" ~source:"fault/checkpoint"
              [
                ("fault", S "node-failure");
                ("lost_steps", I (!completed - !ck_step));
                ("downtime_s", F f.Plan.downtime);
                ("restart_s", F restart_cost_s);
              ]);
        flush ();
        charge "fault:lost-step" partial;
        charge "fault:downtime" f.Plan.downtime;
        charge "fault:restart" restart_cost_s;
        restore !ck_state;
        Metrics.observe m_lost
          (partial
          +. (float_of_int (!completed - !ck_step) *. step_cost_s));
        completed := !ck_step;
        t := f.Plan.at +. f.Plan.downtime +. restart_cost_s;
        lost := !lost +. partial +. f.Plan.downtime +. restart_cost_s;
        incr recovered;
        Metrics.inc m_recovered;
        Metrics.observe m_recovery (f.Plan.downtime +. restart_cost_s)
    | _ ->
        step !completed;
        let rework = !completed < !high_water in
        t := !t +. step_cost_s;
        incr completed;
        if rework then begin
          lost := !lost +. step_cost_s;
          pending_rework := !pending_rework +. step_cost_s
        end
        else pending_compute := !pending_compute +. step_cost_s;
        high_water := max !high_water !completed;
        if !completed < steps && !completed mod interval = 0 then begin
          flush ();
          charge "checkpoint" checkpoint_cost_s;
          t := !t +. checkpoint_cost_s;
          overhead := !overhead +. checkpoint_cost_s;
          ck_state := snapshot ();
          ck_step := !completed;
          incr checkpoints;
          Metrics.inc m_checkpoints;
          if Icoe_obs.Events.enabled () then
            Icoe_obs.Events.(
              emit ~t_s:!t ~kind:"fault" ~source:"fault/checkpoint"
                [
                  ("fault", S "checkpoint");
                  ("at_step", I !completed);
                  ("cost_s", F checkpoint_cost_s);
                ])
        end
  done;
  flush ();
  {
    steps;
    interval;
    step_cost_s;
    injected = !injected;
    recovered = !recovered;
    checkpoints = !checkpoints;
    ideal_s = float_of_int steps *. step_cost_s;
    achieved_s = !t -. start;
    checkpoint_overhead_s = !overhead;
    lost_work_s = !lost;
  }
