(** Seeded, deterministic fault plans.

    A plan is a fixed schedule of fault events drawn once from
    [Icoe_util.Rng] given a seed and per-component hazard rates: node
    failures (fail-stop with a repair downtime), link degradations
    (bandwidth cut and/or latency spike over a window), straggler
    devices (a slowdown factor over a window), and transient kernel
    faults (point events that force a kernel re-execution).  All times
    are simulated seconds.  Because generation happens up front and
    every query is a pure lookup, runs that consult a plan stay
    bit-identical across pool sizes and repeated runs with the same
    seed. *)

type node_failure = {
  node : int;  (** which node fails *)
  at : float;  (** simulated time of the fail-stop *)
  downtime : float;  (** repair/reboot time before the node returns *)
}

type link_degradation = {
  deg_at : float;
  deg_until : float;
  bw_factor : float;  (** effective bandwidth multiplier in (0,1] *)
  latency_factor : float;  (** latency multiplier >= 1 *)
}

type straggler = {
  straggler_at : float;
  straggler_until : float;
  slowdown : float;  (** kernel-time multiplier >= 1 *)
}

type config = {
  nodes : int;  (** partition size the plan covers *)
  horizon_s : float;  (** events are drawn on [0, horizon_s) *)
  node_mtbf_s : float;  (** per-node mean time between failures *)
  node_downtime_s : float;  (** mean repair time *)
  link_mtbf_s : float;  (** mean time between fabric degradations *)
  link_degraded_s : float;  (** mean degradation duration *)
  straggler_mtbf_s : float;  (** mean time between straggler episodes *)
  straggler_s : float;  (** mean episode duration *)
  kernel_fault_mtbf_s : float;  (** mean time between transient faults *)
}

val default_config : config
(** A bring-up-flavoured 16-node partition over a 4000 s horizon. *)

type t

val config : t -> config
val seed : t -> int

val generate : seed:int -> config -> t
(** Draw the full schedule.  Each fault class uses its own split of the
    seeded generator, so changing one hazard rate does not perturb the
    other classes' schedules.  Any [*_mtbf_s] set to [infinity]
    disables that class. *)

type spec = { spec_seed : int; intensity : float }
(** A machine-independent request for faults, carried by
    {!Context}: harnesses with different simulated time scales derive
    their own plan from it with {!for_run}. *)

val spec : ?intensity:float -> int -> spec
(** [intensity] defaults to 1.0 (~4 expected failures per run). *)

val for_run : spec -> ideal_s:float -> nodes:int -> t
(** Derive a plan scaled to a run whose fault-free simulated duration
    is [ideal_s]: system MTBF [ideal_s /. (4 *. intensity)], mean
    downtime MTBF/8, link/straggler/kernel hazards in proportion, and
    a horizon long enough to cover failure-inflated completion. *)

(** {1 Queries} *)

val node_failures : t -> node_failure list
(** All node failures, sorted by time. *)

val next_node_failure : t -> after:float -> node_failure option
(** Earliest failure with [at > after]. *)

val node_down : t -> node:int -> now:float -> bool
(** Is [node] inside a [at, at +. downtime) window? *)

val link_factors : t -> now:float -> float * float
(** [(bw_factor, latency_factor)] at [now]; [(1., 1.)] when the fabric
    is clean.  Overlapping degradations compound. *)

val straggler_slowdown : t -> now:float -> float
(** Kernel-time multiplier at [now]; 1.0 when no straggler is active.
    Overlapping episodes take the worst slowdown. *)

val kernel_faults_in : t -> a:float -> b:float -> int
(** Transient kernel faults in the window (a, b]. *)

val mtbf : t -> float
(** System MTBF: horizon / number of node failures (the horizon itself
    when the schedule is failure-free).  Feeds Young/Daly. *)

val counts : t -> int * int * int * int
(** (node failures, link degradations, stragglers, kernel faults). *)

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph schedule summary for harness reports. *)
