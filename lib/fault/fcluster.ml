module Cluster = Sparkle.Cluster
module Trace = Hwsim.Trace
module Rng = Icoe_util.Rng
module Metrics = Icoe_obs.Metrics

type t = {
  cl : Cluster.t;
  plan : Plan.t;
  policy : Retry.policy;
  rng : Rng.t;
  mutable injected : int;
  mutable recovered : int;
  mutable retries : int;
  mutable gave_up : int;
}

type stats = {
  injected : int;
  recovered : int;
  retries : int;
  gave_up : int;
}

let m_failures =
  Metrics.counter ~help:"Node failures striking a cluster collective"
    "fault_cluster_failures_total"

let m_recovered =
  Metrics.counter ~help:"Cluster collectives recovered via retry"
    "fault_cluster_recoveries_total"

let m_recovery =
  Metrics.histogram
    ~help:"Simulated seconds from failure strike to collective completion"
    "fault_cluster_recovery_seconds"

let create ?(policy = Retry.default_policy) plan config =
  {
    cl = Cluster.create config;
    plan;
    policy;
    (* jitter stream derived from the plan seed: same plan, same run *)
    rng = Rng.create (Plan.seed plan lxor 0x5eed);
    injected = 0;
    recovered = 0;
    retries = 0;
    gave_up = 0;
  }

let cluster t = t.cl
let elapsed t = Cluster.elapsed t.cl
let stats (t : t) =
  {
    injected = t.injected;
    recovered = t.recovered;
    retries = t.retries;
    gave_up = t.gave_up;
  }

let failure_in plan ~a ~b =
  match Plan.next_node_failure plan ~after:a with
  | Some f -> f.Plan.at <= b
  | None -> false

(* Straggler excess on a compute window. *)
let straggler_excess t ~e0 ~dt =
  let slow = Plan.straggler_slowdown t.plan ~now:e0 in
  if slow > 1.0 && dt > 0.0 then
    Trace.charge (Cluster.trace t.cl) ~phase:"fault:straggler"
      ((slow -. 1.0) *. dt)

(* Degraded-fabric excess on a network window: the clean window [dt]
   stretches by the reciprocal of the bandwidth factor. *)
let degradation_excess t ~e0 ~dt =
  let bw_factor, _ = Plan.link_factors t.plan ~now:e0 in
  if bw_factor < 1.0 && dt > 0.0 then begin
    Trace.charge (Cluster.trace t.cl) ~phase:"fault:degraded-link"
      (((1.0 /. bw_factor) -. 1.0) *. dt)
  end

(* A node failure inside a collective's window kills the collective;
   retry with backoff until an attempt's window is failure-free. *)
let survive_failures t ~e0 ~dt =
  if dt > 0.0 && failure_in t.plan ~a:e0 ~b:(e0 +. dt) then begin
    t.injected <- t.injected + 1;
    Metrics.inc m_failures;
    let trace = Cluster.trace t.cl in
    let result, (out : Retry.outcome) =
      Retry.run ~policy:t.policy ~rng:t.rng
        ~charge:(fun d -> Trace.charge trace ~phase:"fault:backoff" d)
        (fun ~attempt:_ ->
          let a = Cluster.elapsed t.cl in
          Trace.charge trace ~phase:"fault:rework" dt;
          if failure_in t.plan ~a ~b:(a +. dt) then Error () else Ok ())
    in
    t.retries <- t.retries + out.Retry.attempts;
    match result with
    | Ok () ->
        t.recovered <- t.recovered + 1;
        Metrics.inc m_recovered;
        Metrics.observe m_recovery (Cluster.elapsed t.cl -. e0 -. dt)
    | Error () -> t.gave_up <- t.gave_up + 1
  end

let windowed t prim =
  let e0 = Cluster.elapsed t.cl in
  prim ();
  (e0, Cluster.elapsed t.cl -. e0)

let charge_compute t ~flops =
  let e0, dt = windowed t (fun () -> Cluster.charge_compute t.cl ~flops) in
  straggler_excess t ~e0 ~dt

let network t prim =
  let e0, dt = windowed t prim in
  degradation_excess t ~e0 ~dt;
  survive_failures t ~e0 ~dt

let charge_shuffle t ~bytes =
  network t (fun () -> Cluster.charge_shuffle t.cl ~bytes)

let charge_aggregate t ~bytes_per_node =
  network t (fun () -> Cluster.charge_aggregate t.cl ~bytes_per_node)

let charge_broadcast t ~bytes =
  network t (fun () -> Cluster.charge_broadcast t.cl ~bytes)
