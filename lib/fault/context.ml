let active : Plan.spec option ref = ref None

let current () = !active

let with_spec spec f =
  let prev = !active in
  active := Some spec;
  Fun.protect ~finally:(fun () -> active := prev) f
