module Rng = Icoe_util.Rng
module Metrics = Icoe_obs.Metrics

type policy = {
  max_attempts : int;
  base_backoff_s : float;
  multiplier : float;
  jitter : float;
}

let default_policy =
  { max_attempts = 4; base_backoff_s = 0.5; multiplier = 2.0; jitter = 0.25 }

type outcome = {
  attempts : int;
  backoff_total_s : float;
  gave_up : bool;
}

let m_retries =
  Metrics.counter ~help:"Retries performed after a failed attempt"
    "fault_retries_total"

let m_giveups =
  Metrics.counter ~help:"Operations abandoned after exhausting retries"
    "fault_giveups_total"

let m_backoff =
  Metrics.histogram ~help:"Simulated seconds spent in retry backoff"
    "fault_backoff_seconds"

let backoff_s p ~rng ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff_s: attempt must be >= 1";
  let base = p.base_backoff_s *. (p.multiplier ** float_of_int (attempt - 1)) in
  let j = p.jitter *. Rng.uniform rng (-1.0) 1.0 in
  Float.max 0.0 (base *. (1.0 +. j))

let run ?(policy = default_policy) ~rng ~charge f =
  if policy.max_attempts < 1 then
    invalid_arg "Retry.run: max_attempts must be >= 1";
  let backoff_total = ref 0.0 in
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok ->
        ( ok,
          { attempts = attempt; backoff_total_s = !backoff_total;
            gave_up = false } )
    | Error _ as err when attempt >= policy.max_attempts ->
        Metrics.inc m_giveups;
        ( err,
          { attempts = attempt; backoff_total_s = !backoff_total;
            gave_up = true } )
    | Error _ ->
        let delay = backoff_s policy ~rng ~attempt in
        Metrics.inc m_retries;
        Metrics.observe m_backoff delay;
        charge delay;
        backoff_total := !backoff_total +. delay;
        go (attempt + 1)
  in
  go 1
