(** Checkpoint/restart driver for the time-stepping engines.

    The driver advances a real engine (SW4, Cardioid monodomain,
    ddcMD, CVODE) step by step while mapping each step onto a
    simulated per-step cost.  Checkpoints snapshot the full solver
    state every [interval] steps (charging a write cost); when the
    plan schedules a node failure inside a step's simulated window,
    the in-flight step is lost, the engine is restored from the last
    snapshot, and execution replays from there after the node's
    downtime plus a restart cost.  Because the engines are
    bit-identical across pool sizes, restore-and-replay reproduces the
    exact fault-free final state — which is what the recovery tests
    assert. *)

type report = {
  steps : int;  (** first-time steps completed (the job size) *)
  interval : int;  (** steps between checkpoints *)
  step_cost_s : float;  (** simulated seconds per step *)
  injected : int;  (** node failures that struck the run *)
  recovered : int;  (** successful restore-and-replay cycles *)
  checkpoints : int;  (** snapshots written *)
  ideal_s : float;  (** steps * step_cost_s *)
  achieved_s : float;  (** failure-inflated time to solution *)
  checkpoint_overhead_s : float;  (** checkpoints * write cost *)
  lost_work_s : float;  (** rework + partial steps + downtime + restart *)
}

val inflation : report -> float
(** Time-to-solution inflation: [achieved_s /. ideal_s]. *)

val pp_report : Format.formatter -> report -> unit

val young_daly_s : mtbf_s:float -> checkpoint_cost_s:float -> float
(** Young/Daly first-order optimal checkpoint period:
    tau = sqrt (2 * delta * M) for write cost delta and system MTBF M. *)

val young_daly_steps :
  mtbf_s:float -> checkpoint_cost_s:float -> step_cost_s:float -> int
(** {!young_daly_s} rounded to whole steps, at least 1. *)

val run :
  plan:Plan.t ->
  ?start:float ->
  ?restart_cost_s:float ->
  ?trace:Hwsim.Trace.t ->
  step_cost_s:float ->
  checkpoint_cost_s:float ->
  interval:int ->
  steps:int ->
  snapshot:(unit -> 's) ->
  restore:('s -> unit) ->
  step:(int -> unit) ->
  unit ->
  report
(** Drive [step i] for [i] in [0, steps), checkpointing and recovering
    as above.  [start] (default 0) is the simulated time origin used
    against the plan.  When [trace] is given, compute/rework windows
    and every fault event are charged as [compute] / [checkpoint] /
    [fault:*] phases (compute is charged in bulk between events so the
    span count stays bounded by the number of fault/checkpoint
    events).  The report satisfies
    [achieved_s = ideal_s +. checkpoint_overhead_s +. lost_work_s]
    up to float tolerance. *)
