(** Bounded retries with exponential backoff and deterministic jitter.

    Time is simulated: backoff delays are charged through a caller
    supplied [charge] callback (typically [Hwsim.Trace.charge] or
    [Hwsim.Clock.tick]) rather than slept.  Jitter comes from an
    explicit [Icoe_util.Rng.t], so a retried run replays exactly. *)

type policy = {
  max_attempts : int;  (** total tries, including the first *)
  base_backoff_s : float;  (** delay before the second attempt *)
  multiplier : float;  (** geometric growth of the delay *)
  jitter : float;  (** +/- fraction of the delay, in [0, 1) *)
}

val default_policy : policy
(** 4 attempts, 0.5 s base, x2 growth, 25 % jitter. *)

val backoff_s : policy -> rng:Icoe_util.Rng.t -> attempt:int -> float
(** Delay charged before retry number [attempt] (1 = first retry).
    Deterministic given the rng state. *)

type outcome = {
  attempts : int;  (** tries actually made *)
  backoff_total_s : float;  (** simulated seconds spent backing off *)
  gave_up : bool;  (** all attempts failed *)
}

val run :
  ?policy:policy ->
  rng:Icoe_util.Rng.t ->
  charge:(float -> unit) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result * outcome
(** Run [f ~attempt:1], retrying on [Error] after charging the backoff
    delay, until success or [max_attempts] is exhausted (giving-up
    semantics: the last [Error] is returned with [gave_up = true]).
    Updates the [fault_retries_total] / [fault_giveups_total] counters
    and the [fault_backoff_seconds] histogram. *)
