(** Fault-aware wrapper around {!Sparkle.Cluster}.

    Every charging primitive first runs the clean cost model, then
    consults the plan at the simulated window it occupied: straggler
    episodes stretch compute, link degradations stretch the network
    collectives, and a node failure inside a collective's window
    forces a {!Retry} cycle (backoff + re-execution, giving up after
    the policy's attempt budget).  All excess time lands in [fault:*]
    trace phases on the cluster's own tracer, so [breakdown]/rollups
    show exactly what the faults cost.  Deterministic: the only
    randomness is the plan and the retry jitter stream, both seeded
    from the plan. *)

type t

type stats = {
  injected : int;  (** collectives struck by a node failure *)
  recovered : int;  (** collectives that completed after retries *)
  retries : int;  (** re-executions performed *)
  gave_up : int;  (** collectives abandoned after the attempt budget *)
}

val create : ?policy:Retry.policy -> Plan.t -> Sparkle.Cluster.config -> t
val cluster : t -> Sparkle.Cluster.t
val elapsed : t -> float
val stats : t -> stats

val charge_compute : t -> flops:float -> unit
val charge_shuffle : t -> bytes:float -> unit
val charge_aggregate : t -> bytes_per_node:float -> unit
val charge_broadcast : t -> bytes:float -> unit
