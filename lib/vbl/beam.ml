(** VBL beam state: an n x n complex transverse electric-field slice on a
    square aperture, stored interleaved (re, im). *)

type t = {
  n : int;  (** grid points per side (power of two for the FFT) *)
  width : float;  (** physical aperture width, metres *)
  wavelength : float;
  field : float array;  (** 2 n^2 interleaved complex values *)
}

let create ?(wavelength = 1.053e-6) ~n ~width () =
  assert (Fftlib.Fft.is_pow2 n);
  { n; width; wavelength; field = Array.make (2 * n * n) 0.0 }

let dx t = t.width /. float_of_int t.n

(** Physical (x, y) of grid point (i, j), centred on the aperture. *)
let coords t i j =
  let d = dx t in
  ( (float_of_int i -. (float_of_int t.n /. 2.0)) *. d,
    (float_of_int j -. (float_of_int t.n /. 2.0)) *. d )

let set_field t f =
  for j = 0 to t.n - 1 do
    for i = 0 to t.n - 1 do
      let x, y = coords t i j in
      let re, im = f ~x ~y in
      t.field.(2 * ((j * t.n) + i)) <- re;
      t.field.((2 * ((j * t.n) + i)) + 1) <- im
    done
  done

(** Flat-top beam with soft (super-Gaussian) edges filling [fill] of the
    aperture. *)
let flat_top ?(fill = 0.7) t =
  let half = fill *. t.width /. 2.0 in
  set_field t (fun ~x ~y ->
      let r = max (Float.abs x) (Float.abs y) /. half in
      (exp (-.(r ** 12.0)), 0.0))

(** Gaussian beam with 1/e^2 intensity radius [w0]. *)
let gaussian ~w0 t =
  set_field t (fun ~x ~y ->
      (exp (-.((x *. x) +. (y *. y)) /. (w0 *. w0)), 0.0))

(** Fluence (intensity) map |E|^2, row-major n x n. *)
let fluence t =
  Array.init (t.n * t.n) (fun k ->
      (t.field.(2 * k) ** 2.0) +. (t.field.((2 * k) + 1) ** 2.0))

let total_power t = Icoe_util.Stats.sum (fluence t)

(** Fluence modulation contrast over the central [frac] of the aperture:
    (max - min) / mean. The Fig 9 ripple metric. *)
let center_contrast ?(frac = 0.4) t =
  let f = fluence t in
  (* round (don't truncate) the window edge, and mirror it for the upper
     edge, so [lo, hi) is symmetric about the grid centre: the ripple
     metric of a mirror-symmetric fluence map must not depend on which
     side of the aperture a feature sits *)
  let lo = int_of_float (Float.round (float_of_int t.n *. (0.5 -. (frac /. 2.0)))) in
  let hi = t.n - lo in
  let vals = ref [] in
  for j = lo to hi - 1 do
    for i = lo to hi - 1 do
      vals := f.((j * t.n) + i) :: !vals
    done
  done;
  let a = Array.of_list !vals in
  let mn, mx = Icoe_util.Stats.min_max a in
  let mean = Icoe_util.Stats.mean a in
  if mean <= 0.0 then 0.0 else (mx -. mn) /. mean
