(** Earthquake scenarios and the sw4lite performance-variant study
    (Sec 4.9): the Hayward-fault analog at laptop scale, the kernel
    variants (naive/shared-memory CUDA, RAJA, OpenMP), the
    Sierra-vs-Cori throughput accounting, and the 26B-point production
    campaign model. *)

val hayward_material : x:float -> y:float -> float * float * float
(** Layered basin: soft sediments over bedrock; (rho, vp, vs). *)

type shake_result = {
  pgv_surface : float array;  (** peak |velocity| per surface point *)
  basin_amplified : bool;  (** PGV higher over the basin than bedrock *)
  steps : int;
  grid_points : int;
}

val run_hayward :
  ?nx:int -> ?ny:int -> ?h:float -> ?steps:int -> unit -> shake_result
(** Deep centred source; compares mirrored equal-distance surface bands
    over basin and bedrock (the Fig 7 science at small scale). *)

type variant = Naive_cuda | Shared_cuda | Raja | Cpu_openmp

val variant_name : variant -> string
val variant_policy : variant -> Prog.Policy.t
val variant_device : variant -> Hwsim.Device.t

val variant_time_per_step : ?fused:bool -> Grid.t -> variant -> float
(** Simulated seconds/step of the RHS kernel; [fused] merges the stress
    and divergence sweeps into one launch (the kernel-merging
    optimization). *)

val node_throughput : Hwsim.Node.t -> points:int -> float
(** Grid-point updates per second per node (GPU-resident on GPU nodes).
    Memoized per (node, points) — pricing walks a throwaway grid whose
    arrays are large at production point counts. *)

val node_cpu_throughput : Hwsim.Node.t -> points:int -> float
(** Grid-point updates per second of the node's host sockets alone —
    the CPU side of a heterogeneous work split ({!Hwsim.Split}). Equals
    {!node_throughput} on CPU-only nodes. Memoized alongside it. *)

type step_model = {
  point_s : float;  (** RHS update of all per-node points, seconds *)
  halo_s : float;  (** surface-to-volume halo exchange, seconds *)
  boundary_frac : float;
      (** fraction of the point update (the 2-deep face shell, capped at
          0.5) that must wait for the halo *)
  serial_s : float;  (** [point_s +. halo_s] *)
  overlapped_s : float;
      (** [max interior halo + boundary]: halo on the "nic" stream under
          interior compute on the "gpu" stream *)
  step_s : float;
      (** the charged per-step seconds: [overlapped_s] with overlap on,
          the exact pre-scheduler [serial_s] otherwise *)
  dag : Icoe_obs.Prof.item array;
      (** the scheduled interior/halo/boundary DAG, ready for
          {!Icoe_obs.Prof.analyze} critical-path blame *)
}

val production_step_model :
  ?work_multiplier:float -> ?overlap:bool -> ?trace:Hwsim.Trace.t ->
  ?placement:Hwsim.Topology.placement -> ?gpu_frac:float ->
  ?comm:Hwsim.Split.comm ->
  Hwsim.Node.machine -> nodes:int -> grid_points:float -> step_model
(** Per-timestep cost model of the production campaign. [overlap]
    defaults to {!Hwsim.Sched.overlap_enabled}; when a [trace] is given,
    one step's interior/halo/boundary items are charged into it. The
    halo is priced at the topology level the allocation's [placement]
    (default [Contiguous]) crosses — on flat machines, exactly the old
    single-fabric transfer.

    [gpu_frac] (default 1.0) is the accelerator's share of the point
    update; the host sockets co-execute the rest on a "cpu" stream at
    {!node_cpu_throughput} ([point_s] stays the all-GPU cost;
    [serial_s] blends the two sides).
    [comm] places the halo on its own "nic" stream ([Dedicated], the
    default) or inline on the compute stream. At the defaults the model
    is bit-identical to the pre-split one; CPU-only nodes ignore the
    split. *)

val production_run_hours :
  ?work_multiplier:float -> ?overlap:bool ->
  ?placement:Hwsim.Topology.placement -> Hwsim.Node.machine ->
  nodes:int -> grid_points:float -> steps:int -> float
(** Wall-clock hours of the 26B-point campaign on a machine partition,
    including halo exchange (overlapped with interior compute unless
    disabled). The default multiplier calibrates the 2D model kernel to
    the 3D production kernel's per-point work so the 256-node Sierra run
    lands at the paper's ~10 h. *)

val nodes_for_deadline :
  ?work_multiplier:float -> ?overlap:bool ->
  ?placement:Hwsim.Topology.placement -> Hwsim.Node.machine ->
  grid_points:float -> steps:int -> hours:float -> int
(** Nodes needed to finish the campaign within a deadline. *)
