(** Full 3D elastic-wave propagation — the dimensionality of the real
    SW4. Displacement formulation with 4th-order central differences,
    three displacement components and six stress components. The 2D
    solver remains the cheap scenario engine; this is the
    production-shaped kernel behind the campaign model in {!Scenario}. *)

type grid = {
  nx : int;
  ny : int;
  nz : int;
  h : float;
  rho : float array;
  lambda : float array;
  mu : float array;
}

val idx : grid -> int -> int -> int -> int

val create_grid : nx:int -> ny:int -> nz:int -> h:float -> grid
(** Requires at least 9 points per side. *)

val homogeneous : grid -> rho:float -> vp:float -> vs:float -> unit
val max_p_speed : grid -> float
val stable_dt : ?cfl:float -> grid -> float

type state = {
  grid : grid;
  dt : float;
  n : int;  (** grid points per component *)
  u : Icoe_util.Fbuf.t;
      (** [3n]: displacement components x|y|z, component-major SoA —
          component [c] of point [p] at [c*n + p] *)
  u_prev : Icoe_util.Fbuf.t;  (** [3n]: leapfrog history *)
  a : Icoe_util.Fbuf.t;  (** [3n]: accelerations *)
  s : Icoe_util.Fbuf.t;  (** [6n]: stress components xx|yy|zz|xy|xz|yz *)
}

val margin : int

val create : ?cfl:float -> grid -> state

val get_u : state -> c:int -> p:int -> float
(** Displacement component [c] (0..2) at flat point index [p]. *)

val set_u : state -> c:int -> p:int -> float -> unit
val get_a : state -> c:int -> p:int -> float

val acceleration : state -> unit
(** Stress pass then divergence pass over the interior. *)

val step :
  ?force:int * int * int * float * float * float * (float -> float) ->
  state -> time:float -> unit
(** One leapfrog step; [force] is (i, j, k, fx, fy, fz, stf). *)

val energy_proxy : state -> float

val work : grid -> Hwsim.Kernel.t
(** Flop/byte volume of one 3D acceleration evaluation. *)
