(** Explicit second-order leapfrog time stepping with supergrid-style
    damping layers near the boundaries (SW4's treatment of artificial
    boundaries), plus receiver (seismogram) recording. *)

type receiver = { ri : int; rj : int; mutable trace : (float * float * float) list }

let m_steps =
  Icoe_obs.Metrics.counter ~help:"Leapfrog steps taken" "sw4_steps_total"

let m_updates =
  Icoe_obs.Metrics.counter ~help:"Interior grid-point updates"
    "sw4_gridpoint_updates_total"

let m_rate =
  Icoe_obs.Metrics.gauge
    ~help:"Grid-point updates per wall-clock second over the last run"
    "sw4_gridpoint_updates_per_s"

let receiver ~i ~j = { ri = i; rj = j; trace = [] }

type t = {
  grid : Grid.t;
  dt : float;
  mutable time : float;
  mutable steps : int;
  ux : float array;
  uy : float array;
  ux_prev : float array;
  uy_prev : float array;
  ax : float array;
  ay : float array;
  scratch : Elastic.scratch;
  damping : float array;  (** supergrid taper, 1 in the interior *)
  sources : Source.t list;
  receivers : receiver list;
}

(* supergrid damping profile: smooth taper from 1 (interior) toward
   [strength] < 1 within [width] points of each boundary *)
let damping_profile (g : Grid.t) ~width ~strength =
  let d = Array.make (g.Grid.nx * g.Grid.ny) 1.0 in
  for j = 0 to g.Grid.ny - 1 do
    for i = 0 to g.Grid.nx - 1 do
      let dist =
        min
          (min i (g.Grid.nx - 1 - i))
          (min j (g.Grid.ny - 1 - j))
      in
      if dist < width then begin
        let x = float_of_int dist /. float_of_int width in
        (* smooth ramp: strength at the wall, 1 inside *)
        let taper = strength +. ((1.0 -. strength) *. (x *. x *. (3.0 -. (2.0 *. x)))) in
        d.(Grid.idx g i j) <- taper
      end
    done
  done;
  d

let create ?(cfl = 0.5) ?(damping_width = 12) ?(damping_strength = 0.92)
    ?(sources = []) ?(receivers = []) (grid : Grid.t) =
  let n = grid.Grid.nx * grid.Grid.ny in
  {
    grid;
    dt = Grid.stable_dt ~cfl grid;
    time = 0.0;
    steps = 0;
    ux = Array.make n 0.0;
    uy = Array.make n 0.0;
    ux_prev = Array.make n 0.0;
    uy_prev = Array.make n 0.0;
    ax = Array.make n 0.0;
    ay = Array.make n 0.0;
    scratch = Elastic.make_scratch grid;
    damping = damping_profile grid ~width:damping_width ~strength:damping_strength;
    sources;
    receivers;
  }

(** One leapfrog step: u+ = 2u - u- + dt^2 a, with velocity damping folded
    in through the supergrid taper. *)
let step t =
  Elastic.acceleration t.grid t.scratch ~ux:t.ux ~uy:t.uy ~ax:t.ax ~ay:t.ay;
  List.iter (fun s -> Source.inject t.grid s ~t:t.time ~ax:t.ax ~ay:t.ay) t.sources;
  let dt2 = t.dt *. t.dt in
  let g = t.grid in
  let m = Elastic.margin in
  (* row-parallel on the pool: each grid point reads and writes only its
     own entries, so the update is bit-identical for any ICOE_DOMAINS *)
  Icoe_par.Pool.parallel_for_chunks ~chunk:Elastic.row_chunk ~lo:m
    ~hi:(g.Grid.ny - m)
    (fun jlo jhi ->
      for j = jlo to jhi - 1 do
        for i = m to g.Grid.nx - 1 - m do
          let k = Grid.idx g i j in
          let d = t.damping.(k) in
          (* damped leapfrog: the taper bleeds energy out of the velocity *)
          let unew =
            t.ux.(k) +. (d *. (t.ux.(k) -. t.ux_prev.(k))) +. (dt2 *. t.ax.(k))
          in
          let vnew =
            t.uy.(k) +. (d *. (t.uy.(k) -. t.uy_prev.(k))) +. (dt2 *. t.ay.(k))
          in
          t.ux_prev.(k) <- t.ux.(k);
          t.uy_prev.(k) <- t.uy.(k);
          t.ux.(k) <- unew;
          t.uy.(k) <- vnew
        done
      done);
  t.time <- t.time +. t.dt;
  t.steps <- t.steps + 1;
  Icoe_obs.Metrics.inc m_steps;
  Icoe_obs.Metrics.inc
    ~by:(float_of_int ((g.Grid.nx - (2 * m)) * (g.Grid.ny - (2 * m))))
    m_updates;
  List.iter
    (fun r ->
      let k = Grid.idx g r.ri r.rj in
      r.trace <- (t.time, t.ux.(k), t.uy.(k)) :: r.trace)
    t.receivers

let run t ~steps =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to steps do
    step t
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let g = t.grid in
  let m = Elastic.margin in
  let updates =
    float_of_int (steps * (g.Grid.nx - (2 * m)) * (g.Grid.ny - (2 * m)))
  in
  if elapsed > 0.0 then Icoe_obs.Metrics.set m_rate (updates /. elapsed)

(* --- checkpoint/restart support (Icoe_fault.Checkpoint) --- *)

(** Full solver state at an instant: wave fields, leapfrog history,
    accelerations, clock and recorded seismograms. [scratch] is fully
    rewritten by every [Elastic.acceleration] call, so it is not part
    of the state. *)
type snapshot = {
  s_time : float;
  s_steps : int;
  s_ux : float array;
  s_uy : float array;
  s_ux_prev : float array;
  s_uy_prev : float array;
  s_ax : float array;
  s_ay : float array;
  s_traces : (float * float * float) list array;
}

let snapshot t =
  {
    s_time = t.time;
    s_steps = t.steps;
    s_ux = Array.copy t.ux;
    s_uy = Array.copy t.uy;
    s_ux_prev = Array.copy t.ux_prev;
    s_uy_prev = Array.copy t.uy_prev;
    s_ax = Array.copy t.ax;
    s_ay = Array.copy t.ay;
    s_traces = Array.of_list (List.map (fun r -> r.trace) t.receivers);
  }

let restore t s =
  t.time <- s.s_time;
  t.steps <- s.s_steps;
  let blit src dst = Array.blit src 0 dst 0 (Array.length dst) in
  blit s.s_ux t.ux;
  blit s.s_uy t.uy;
  blit s.s_ux_prev t.ux_prev;
  blit s.s_uy_prev t.uy_prev;
  blit s.s_ax t.ax;
  blit s.s_ay t.ay;
  List.iteri (fun i r -> r.trace <- s.s_traces.(i)) t.receivers

(** Displacement magnitude field (for shake-map style outputs). *)
let magnitude t =
  Array.init
    (Array.length t.ux)
    (fun k -> sqrt ((t.ux.(k) ** 2.0) +. (t.uy.(k) ** 2.0)))

(** Discrete elastic energy proxy: kinetic + strain ~ sum of u and velocity
    squares (bounded for a stable scheme). *)
let energy_proxy t =
  let e = ref 0.0 in
  let n = Array.length t.ux in
  for k = 0 to n - 1 do
    let vx = (t.ux.(k) -. t.ux_prev.(k)) /. t.dt in
    let vy = (t.uy.(k) -. t.uy_prev.(k)) /. t.dt in
    e := !e +. (0.5 *. t.grid.Grid.rho.(k) *. ((vx *. vx) +. (vy *. vy)))
  done;
  !e

(** Peak |u| over the whole run history is approximated by current max. *)
let max_displacement t =
  let m = ref 0.0 in
  Array.iteri
    (fun k _ ->
      let v = sqrt ((t.ux.(k) ** 2.0) +. (t.uy.(k) ** 2.0)) in
      if v > !m then m := v)
    t.ux;
  !m
