(** Explicit second-order leapfrog time stepping with supergrid-style
    damping layers near the boundaries (SW4's treatment of artificial
    boundaries), plus receiver (seismogram) recording. *)

module Fbuf = Icoe_util.Fbuf

type receiver = { ri : int; rj : int; mutable trace : (float * float * float) list }

let m_steps =
  Icoe_obs.Metrics.counter ~help:"Leapfrog steps taken" "sw4_steps_total"

let m_updates =
  Icoe_obs.Metrics.counter ~help:"Interior grid-point updates"
    "sw4_gridpoint_updates_total"

let m_rate =
  Icoe_obs.Metrics.gauge
    ~help:"Grid-point updates per wall-clock second over the last run"
    "sw4_gridpoint_updates_per_s"

let receiver ~i ~j = { ri = i; rj = j; trace = [] }

type t = {
  grid : Grid.t;
  dt : float;
  mutable time : float;
  mutable steps : int;
  ux : Fbuf.t;
  uy : Fbuf.t;
  ux_prev : Fbuf.t;
  uy_prev : Fbuf.t;
  ax : Fbuf.t;
  ay : Fbuf.t;
  scratch : Elastic.scratch;
  damping : Fbuf.t;  (** supergrid taper, 1 in the interior *)
  sources : Source.t list;
  receivers : receiver list;
}

(* supergrid damping profile: smooth taper from 1 (interior) toward
   [strength] < 1 within [width] points of each boundary *)
let damping_profile (g : Grid.t) ~width ~strength =
  let d = Fbuf.create (g.Grid.nx * g.Grid.ny) in
  Fbuf.fill d 1.0;
  for j = 0 to g.Grid.ny - 1 do
    for i = 0 to g.Grid.nx - 1 do
      let dist =
        min
          (min i (g.Grid.nx - 1 - i))
          (min j (g.Grid.ny - 1 - j))
      in
      if dist < width then begin
        let x = float_of_int dist /. float_of_int width in
        (* smooth ramp: strength at the wall, 1 inside *)
        let taper = strength +. ((1.0 -. strength) *. (x *. x *. (3.0 -. (2.0 *. x)))) in
        Fbuf.set d (Grid.idx g i j) taper
      end
    done
  done;
  d

let create ?(cfl = 0.5) ?(damping_width = 12) ?(damping_strength = 0.92)
    ?(sources = []) ?(receivers = []) (grid : Grid.t) =
  let n = grid.Grid.nx * grid.Grid.ny in
  {
    grid;
    dt = Grid.stable_dt ~cfl grid;
    time = 0.0;
    steps = 0;
    ux = Fbuf.create n;
    uy = Fbuf.create n;
    ux_prev = Fbuf.create n;
    uy_prev = Fbuf.create n;
    ax = Fbuf.create n;
    ay = Fbuf.create n;
    scratch = Elastic.make_scratch grid;
    damping = damping_profile grid ~width:damping_width ~strength:damping_strength;
    sources;
    receivers;
  }

(** One leapfrog step: u+ = 2u - u- + dt^2 a, with velocity damping folded
    in through the supergrid taper. *)
let step t =
  Elastic.acceleration t.grid t.scratch ~ux:t.ux ~uy:t.uy ~ax:t.ax ~ay:t.ay;
  List.iter (fun s -> Source.inject t.grid s ~t:t.time ~ax:t.ax ~ay:t.ay) t.sources;
  let dt2 = t.dt *. t.dt in
  let g = t.grid in
  let m = Elastic.margin in
  (* row-parallel on the pool: each grid point reads and writes only its
     own entries, so the update is bit-identical for any ICOE_DOMAINS *)
  Icoe_par.Pool.parallel_for_chunks ~chunk:Elastic.row_chunk ~lo:m
    ~hi:(g.Grid.ny - m)
    (fun jlo jhi ->
      for j = jlo to jhi - 1 do
        for i = m to g.Grid.nx - 1 - m do
          let k = Grid.idx g i j in
          let d = Fbuf.get t.damping k in
          let ux = Fbuf.get t.ux k and uy = Fbuf.get t.uy k in
          (* damped leapfrog: the taper bleeds energy out of the velocity *)
          let unew =
            ux +. (d *. (ux -. Fbuf.get t.ux_prev k)) +. (dt2 *. Fbuf.get t.ax k)
          in
          let vnew =
            uy +. (d *. (uy -. Fbuf.get t.uy_prev k)) +. (dt2 *. Fbuf.get t.ay k)
          in
          Fbuf.set t.ux_prev k ux;
          Fbuf.set t.uy_prev k uy;
          Fbuf.set t.ux k unew;
          Fbuf.set t.uy k vnew
        done
      done);
  t.time <- t.time +. t.dt;
  t.steps <- t.steps + 1;
  Icoe_obs.Metrics.inc m_steps;
  Icoe_obs.Metrics.inc
    ~by:(float_of_int ((g.Grid.nx - (2 * m)) * (g.Grid.ny - (2 * m))))
    m_updates;
  List.iter
    (fun r ->
      let k = Grid.idx g r.ri r.rj in
      r.trace <- (t.time, Fbuf.get t.ux k, Fbuf.get t.uy k) :: r.trace)
    t.receivers

let run t ~steps =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to steps do
    step t
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let g = t.grid in
  let m = Elastic.margin in
  let updates =
    float_of_int (steps * (g.Grid.nx - (2 * m)) * (g.Grid.ny - (2 * m)))
  in
  if elapsed > 0.0 then Icoe_obs.Metrics.set m_rate (updates /. elapsed)

(* --- checkpoint/restart support (Icoe_fault.Checkpoint) --- *)

(** Full solver state at an instant: wave fields, leapfrog history,
    accelerations, clock and recorded seismograms. [scratch] is fully
    rewritten by every [Elastic.acceleration] call, so it is not part
    of the state. *)
type snapshot = {
  s_time : float;
  s_steps : int;
  s_ux : Fbuf.t;
  s_uy : Fbuf.t;
  s_ux_prev : Fbuf.t;
  s_uy_prev : Fbuf.t;
  s_ax : Fbuf.t;
  s_ay : Fbuf.t;
  s_traces : (float * float * float) list array;
}

let snapshot t =
  {
    s_time = t.time;
    s_steps = t.steps;
    s_ux = Fbuf.copy t.ux;
    s_uy = Fbuf.copy t.uy;
    s_ux_prev = Fbuf.copy t.ux_prev;
    s_uy_prev = Fbuf.copy t.uy_prev;
    s_ax = Fbuf.copy t.ax;
    s_ay = Fbuf.copy t.ay;
    s_traces = Array.of_list (List.map (fun r -> r.trace) t.receivers);
  }

let restore t s =
  t.time <- s.s_time;
  t.steps <- s.s_steps;
  Fbuf.blit ~src:s.s_ux ~dst:t.ux;
  Fbuf.blit ~src:s.s_uy ~dst:t.uy;
  Fbuf.blit ~src:s.s_ux_prev ~dst:t.ux_prev;
  Fbuf.blit ~src:s.s_uy_prev ~dst:t.uy_prev;
  Fbuf.blit ~src:s.s_ax ~dst:t.ax;
  Fbuf.blit ~src:s.s_ay ~dst:t.ay;
  List.iteri (fun i r -> r.trace <- s.s_traces.(i)) t.receivers

(** Displacement magnitude field (for shake-map style outputs). *)
let magnitude t =
  Array.init
    (Fbuf.length t.ux)
    (fun k -> sqrt ((Fbuf.get t.ux k ** 2.0) +. (Fbuf.get t.uy k ** 2.0)))

(** Discrete elastic energy proxy: kinetic + strain ~ sum of u and velocity
    squares (bounded for a stable scheme). *)
let energy_proxy t =
  let e = ref 0.0 in
  let n = Fbuf.length t.ux in
  for k = 0 to n - 1 do
    let vx = (Fbuf.get t.ux k -. Fbuf.get t.ux_prev k) /. t.dt in
    let vy = (Fbuf.get t.uy k -. Fbuf.get t.uy_prev k) /. t.dt in
    e := !e +. (0.5 *. t.grid.Grid.rho.(k) *. ((vx *. vx) +. (vy *. vy)))
  done;
  !e

(** Peak |u| over the whole run history is approximated by current max. *)
let max_displacement t =
  let m = ref 0.0 in
  for k = 0 to Fbuf.length t.ux - 1 do
    let v = sqrt ((Fbuf.get t.ux k ** 2.0) +. (Fbuf.get t.uy k ** 2.0)) in
    if v > !m then m := v
  done;
  !m
