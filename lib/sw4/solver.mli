(** Explicit leapfrog time stepping with supergrid-style damping layers
    near the boundaries (SW4's artificial-boundary treatment), plus
    receiver (seismogram) recording. *)

type receiver = {
  ri : int;
  rj : int;
  mutable trace : (float * float * float) list;  (** (t, ux, uy), newest first *)
}

val receiver : i:int -> j:int -> receiver

type t = {
  grid : Grid.t;
  dt : float;
  mutable time : float;
  mutable steps : int;
  ux : Icoe_util.Fbuf.t;
  uy : Icoe_util.Fbuf.t;
  ux_prev : Icoe_util.Fbuf.t;
  uy_prev : Icoe_util.Fbuf.t;
  ax : Icoe_util.Fbuf.t;
  ay : Icoe_util.Fbuf.t;
  scratch : Elastic.scratch;
  damping : Icoe_util.Fbuf.t;  (** supergrid taper, 1 in the interior *)
  sources : Source.t list;
  receivers : receiver list;
}

val damping_profile : Grid.t -> width:int -> strength:float -> Icoe_util.Fbuf.t

val create :
  ?cfl:float -> ?damping_width:int -> ?damping_strength:float ->
  ?sources:Source.t list -> ?receivers:receiver list -> Grid.t -> t

val step : t -> unit
val run : t -> steps:int -> unit

type snapshot
(** Full solver state: wave fields, leapfrog history, accelerations,
    clock and recorded seismograms. *)

val snapshot : t -> snapshot
(** Deep copy of the mutable state, for checkpoint/restart
    ({!Icoe_fault.Checkpoint}). *)

val restore : t -> snapshot -> unit
(** Restore a snapshot taken from the same solver. Stepping after a
    restore replays bit-identically to the original trajectory. *)

val magnitude : t -> float array
(** Displacement magnitude field (shake-map style output). *)

val energy_proxy : t -> float
(** Kinetic energy; bounded for a stable damped scheme. *)

val max_displacement : t -> float
