(** Earthquake scenarios and the sw4lite performance-variant study.

    The science scenario is a scaled-down Hayward-fault analog: a soft
    sedimentary basin over stiff bedrock, a shallow dislocation-like source,
    and surface receivers producing a peak-ground-velocity "shake map" —
    the content of the paper's Fig 7 at laptop scale.

    The performance side reproduces Sec 4.9: sw4lite kernel variants
    (naive CUDA, shared-memory CUDA at ~2x, RAJA at ~0.7x of CUDA) and the
    Sierra-vs-Cori throughput accounting behind the abstract's 14x claim. *)

(** Layered basin material: soft low-velocity basin in the upper-left
    region, stiff bedrock elsewhere. (rho, vp, vs) in SI units. *)
let hayward_material ~x ~y =
  let basin_depth = 800.0 in
  let basin_edge = 4000.0 in
  if y < basin_depth && x < basin_edge then (1800.0, 1800.0, 700.0)
  else if y < 2.0 *. basin_depth then (2400.0, 3500.0, 1800.0)
  else (2800.0, 5500.0, 3200.0)

type shake_result = {
  pgv_surface : float array;  (** peak |velocity| per surface point *)
  basin_amplified : bool;  (** PGV higher over the basin than bedrock *)
  steps : int;
  grid_points : int;
}

(** Run the scenario on an (nx x ny) grid with spacing [h] metres for
    [steps] steps; the source is a shallow double-couple-like force pair
    near the basin edge. *)
let run_hayward ?(nx = 160) ?(ny = 96) ?(h = 100.0) ?(steps = 600) () =
  let grid = Grid.create ~nx ~ny ~h in
  Grid.set_material grid hayward_material;
  let f0 = 1.2 in
  (* deep source centred in x: the left surface band sits over the soft
     basin, the mirrored right band over bedrock, at equal epicentral
     distance *)
  let src =
    Source.point_force ~i:(nx / 2) ~j:(ny / 2)
      ~fx:(2.0e9) ~fy:(-1.5e9)
      ~stf:(Source.ricker ~f0 ~t0:(2.0 /. f0))
  in
  let solver = Solver.create ~sources:[ src ] grid in
  let pgv = Array.make nx 0.0 in
  let module Fbuf = Icoe_util.Fbuf in
  let uxp = Fbuf.copy solver.Solver.ux and uyp = Fbuf.copy solver.Solver.uy in
  let jsurf = Elastic.margin in
  for _ = 1 to steps do
    Solver.step solver;
    for i = 0 to nx - 1 do
      let k = Grid.idx grid i jsurf in
      let vx = (Fbuf.get solver.Solver.ux k -. Fbuf.get uxp k) /. solver.Solver.dt in
      let vy = (Fbuf.get solver.Solver.uy k -. Fbuf.get uyp k) /. solver.Solver.dt in
      let v = sqrt ((vx *. vx) +. (vy *. vy)) in
      if v > pgv.(i) then pgv.(i) <- v
    done;
    Fbuf.blit ~src:solver.Solver.ux ~dst:uxp;
    Fbuf.blit ~src:solver.Solver.uy ~dst:uyp
  done;
  (* mirrored surface bands at equal distance from the epicentre: left band
     over the basin, right band over bedrock *)
  let basin_edge_i = min (int_of_float (4000.0 /. h)) (nx / 2) in
  let band_lo = max Elastic.margin (basin_edge_i / 2) in
  let band = Array.sub pgv band_lo (basin_edge_i - band_lo) in
  let mirror =
    Array.init (Array.length band) (fun k -> pgv.(nx - 1 - (band_lo + k)))
  in
  let basin_pgv = Icoe_util.Stats.mean band in
  let rock_pgv = Icoe_util.Stats.mean mirror in
  {
    pgv_surface = pgv;
    basin_amplified = basin_pgv > rock_pgv;
    steps;
    grid_points = nx * ny;
  }

(* --- sw4lite kernel variants (Sec 4.9) --- *)

type variant = Naive_cuda | Shared_cuda | Raja | Cpu_openmp

let variant_name = function
  | Naive_cuda -> "cuda-naive"
  | Shared_cuda -> "cuda-shared"
  | Raja -> "raja"
  | Cpu_openmp -> "omp-cpu"

let variant_policy = function
  | Naive_cuda -> Prog.Policy.Cuda
  | Shared_cuda -> Prog.Policy.Cuda_shared
  | Raja -> Prog.Policy.Raja_cuda
  | Cpu_openmp -> Prog.Policy.Openmp 22

let variant_device = function
  | Cpu_openmp -> Hwsim.Device.power9
  | _ -> Hwsim.Device.v100

(** Simulated seconds per timestep of the RHS kernel for a grid, under a
    variant. [fused] merges the stress and divergence sweeps into one
    launch pass (the paper's kernel-merging optimization). *)
let variant_time_per_step ?(fused = false) (g : Grid.t) v =
  let w = Elastic.work g in
  let w = if fused then { w with Hwsim.Kernel.launches = 1 } else w in
  let device = variant_device v in
  let policy = variant_policy v in
  let eff = Prog.Policy.efficiency policy device in
  let launch =
    float_of_int w.Hwsim.Kernel.launches
    *. Prog.Policy.launch_multiplier policy
    *. device.Hwsim.Device.launch_overhead_s
  in
  launch +. Hwsim.Roofline.time ~eff device { w with Hwsim.Kernel.launches = 0 }

(* The rates are pure functions of (node, points), but pricing them
   walks a throwaway [Grid.t] whose arrays reach hundreds of MB at the
   production per-node point count — fine once per study, ruinous when
   the autotuner re-prices the step model for every split candidate. So
   both throughput views share one memo table. *)
let rate_cache : (Hwsim.Node.t * int, float * float) Hashtbl.t =
  Hashtbl.create 8

let node_rates (node : Hwsim.Node.t) ~points =
  match Hashtbl.find_opt rate_cache (node, points) with
  | Some r -> r
  | None ->
      let g =
        Grid.create
          ~nx:(max 9 (int_of_float (sqrt (float_of_int points))))
          ~ny:(max 9 (int_of_float (sqrt (float_of_int points))))
          ~h:100.0
      in
      let w = Elastic.work g in
      let per_gpu =
        match node.Hwsim.Node.gpu with
        | Some gpu ->
            let eff = Prog.Policy.efficiency Prog.Policy.Cuda gpu in
            let t = Hwsim.Roofline.time ~eff gpu w in
            float_of_int (g.Grid.nx * g.Grid.ny) /. t
        | None -> 0.0
      in
      let cpu_eff =
        Prog.Policy.efficiency
          (Prog.Policy.Openmp node.Hwsim.Node.cpu.Hwsim.Device.lanes)
          node.Hwsim.Node.cpu
      in
      let t_cpu = Hwsim.Roofline.time ~eff:cpu_eff node.Hwsim.Node.cpu w in
      let per_cpu = float_of_int (g.Grid.nx * g.Grid.ny) /. t_cpu in
      let node_rate =
        if node.Hwsim.Node.gpus > 0 then
          float_of_int node.Hwsim.Node.gpus *. per_gpu
        else float_of_int node.Hwsim.Node.cpu_sockets *. per_cpu
      in
      let cpu_rate = float_of_int node.Hwsim.Node.cpu_sockets *. per_cpu in
      let r = (node_rate, cpu_rate) in
      Hashtbl.replace rate_cache (node, points) r;
      r

(** Grid-point updates per second per node for the full solver on a
    machine, used for the Sierra-vs-Cori throughput comparison. A Sierra
    node runs 4 GPU-resident solvers; a Cori node runs the KNL OpenMP
    code. *)
let node_throughput (node : Hwsim.Node.t) ~points =
  fst (node_rates node ~points)

(** Grid-point updates per second of the node's host sockets alone —
    the CPU side of a heterogeneous work split. On a CPU-only node this
    equals {!node_throughput}. *)
let node_cpu_throughput (node : Hwsim.Node.t) ~points =
  snd (node_rates node ~points)

(* --- the production campaign model (Sec 4.9) --- *)

type step_model = {
  point_s : float;
  halo_s : float;
  boundary_frac : float;
  serial_s : float;
  overlapped_s : float;
  step_s : float;
  dag : Icoe_obs.Prof.item array;
}

(** Per-timestep cost model of the production run on [nodes] nodes: the
    RHS update of all per-node points ([point_s]) plus a
    surface-to-volume halo exchange ([halo_s]). With overlap enabled the
    halo transfer rides a "nic" stream under the interior-point update
    on the "gpu" stream; only the boundary shell (the [boundary_frac]
    of points within two layers of a face, capped at half the block)
    waits for the halo, so [overlapped_s = max interior halo + boundary]
    — strictly below [serial_s] whenever both compute and halo cost
    anything. [step_s] is the charged per-step time: [overlapped_s]
    under overlap, the exact pre-scheduler [serial_s] otherwise. *)
let production_step_model ?(work_multiplier = 280.0) ?overlap ?trace
    ?(placement = Hwsim.Topology.Contiguous) ?(gpu_frac = 1.0)
    ?(comm = Hwsim.Split.Dedicated) (machine : Hwsim.Node.machine) ~nodes
    ~grid_points =
  assert (nodes >= 1 && nodes <= machine.Hwsim.Node.nodes);
  Hwsim.Split.validate gpu_frac;
  (* a CPU-only node has no accelerator to split against *)
  let split =
    if machine.Hwsim.Node.node.Hwsim.Node.gpus = 0 then 1.0 else gpu_frac
  in
  let points_per_node = grid_points /. float_of_int nodes in
  let rate_points = int_of_float (min points_per_node 16_000_000.0) in
  let rate = node_throughput machine.Hwsim.Node.node ~points:rate_points in
  (* the production 3D curvilinear elastic kernel with supergrid layers,
     attenuation and imaging does ~280x the work per point of the 2D model
     kernel (calibrated once so the Sierra run lands at the paper's ~10 h) *)
  let point_t = work_multiplier *. points_per_node /. rate in
  (* full-step cost if the host sockets ran every point; the split's CPU
     side charges (1 - split) of this *)
  let cpu_point_t =
    if split >= 1.0 then 0.0
    else
      work_multiplier *. points_per_node
      /. node_cpu_throughput machine.Hwsim.Node.node ~points:rate_points
  in
  (* halo: 6 faces of the per-node block, displacement + material fields,
     priced at the topology level the allocation's placement crosses
     (flat machines: exactly the old single-fabric transfer) *)
  let face = points_per_node ** (2.0 /. 3.0) in
  let halo_bytes = 6.0 *. face *. 8.0 *. 4.0 in
  let halo_t =
    Hwsim.Topology.gang_transfer_time machine.Hwsim.Node.topology ~nodes
      ~placement ~bytes:halo_bytes
  in
  let serial_s =
    (split *. point_t) +. ((1.0 -. split) *. cpu_point_t) +. halo_t
  in
  (* the 2-deep dependent shell on all 6 faces of the per-node block *)
  let bf = Float.min 0.5 (12.0 *. face /. points_per_node) in
  let sched = Hwsim.Sched.create ?overlap ?trace () in
  let _interior =
    Hwsim.Split.co_work sched ~gpu_stream:"gpu" ~cpu_stream:"cpu"
      ~phase:"interior" ~gpu_s:(point_t *. (1.0 -. bf))
      ~cpu_s:(cpu_point_t *. (1.0 -. bf)) split
  in
  let halo =
    Hwsim.Sched.work sched
      ~stream:(match comm with Hwsim.Split.Dedicated -> "nic" | Inline -> "gpu")
      ~device:(Hwsim.Node.fabric machine).Hwsim.Link.name ~phase:"halo" halo_t
  in
  let _boundary =
    Hwsim.Split.co_work sched ~gpu_stream:"gpu" ~cpu_stream:"cpu"
      ~deps:[ halo ] ~phase:"boundary" ~gpu_s:(point_t *. bf)
      ~cpu_s:(cpu_point_t *. bf) split
  in
  let overlapped_s = Hwsim.Sched.run sched in
  let step_s = if Hwsim.Sched.overlap sched then overlapped_s else serial_s in
  {
    point_s = point_t;
    halo_s = halo_t;
    boundary_frac = bf;
    serial_s;
    overlapped_s;
    step_s;
    dag = Hwsim.Sched.dag sched;
  }

(** The production Hayward run (Sec 4.9): 26 billion grid points, ~10
    hours on Sierra with 256 nodes, "almost the same time as required on
    Cori-II". Wall-clock hours of the campaign on [nodes] nodes of a
    machine, including a surface-to-volume halo exchange per step
    (overlapped with interior compute unless [ICOE_OVERLAP=0]). *)
let production_run_hours ?work_multiplier ?overlap ?placement
    (machine : Hwsim.Node.machine) ~nodes ~grid_points ~steps =
  let m =
    production_step_model ?work_multiplier ?overlap ?placement machine ~nodes
      ~grid_points
  in
  float_of_int steps *. m.step_s /. 3600.0

(** Nodes of [machine] needed to finish the same campaign in [hours]. *)
let nodes_for_deadline ?work_multiplier ?overlap ?placement
    (machine : Hwsim.Node.machine) ~grid_points ~steps ~hours =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if production_run_hours ?work_multiplier ?overlap ?placement machine ~nodes:mid ~grid_points ~steps <= hours
      then
        search lo mid
      else search (mid + 1) hi
  in
  search 1 machine.Hwsim.Node.nodes
