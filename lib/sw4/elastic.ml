(** The elastic-wave spatial operator: 4th-order central differences on the
    displacement formulation,

        rho u_tt = div sigma,   sigma = lambda tr(eps) I + 2 mu eps.

    Stresses are evaluated at every grid point from 4th-order first
    derivatives of displacement, then the stress divergence is taken with
    the same stencil. This is the sw4lite kernel shape: wide stencils,
    bandwidth-heavy, the paper's shared-memory optimization target.

    All fields live in {!Icoe_util.Fbuf} buffers (flat float64
    Bigarrays): the stencil loops below are single unchecked loads and
    stores, allocate nothing, and the arithmetic is operation-for-
    operation the same as the boxed layout it replaced — so results are
    bit-identical. *)

module Fbuf = Icoe_util.Fbuf

(* 4th-order first derivative along x of field f at (i,j) *)
let[@inline always] d1x (g : Grid.t) (f : Fbuf.t) i j =
  let k = Grid.idx g i j in
  (8.0 *. (Fbuf.get f (k + 1) -. Fbuf.get f (k - 1))
  -. (Fbuf.get f (k + 2) -. Fbuf.get f (k - 2)))
  /. (12.0 *. g.Grid.h)

let[@inline always] d1y (g : Grid.t) (f : Fbuf.t) i j =
  let k = Grid.idx g i j in
  let nx = g.Grid.nx in
  (8.0 *. (Fbuf.get f (k + nx) -. Fbuf.get f (k - nx))
  -. (Fbuf.get f (k + (2 * nx)) -. Fbuf.get f (k - (2 * nx))))
  /. (12.0 *. g.Grid.h)

type scratch = {
  sxx : Fbuf.t;
  syy : Fbuf.t;
  sxy : Fbuf.t;
}

let make_scratch (g : Grid.t) =
  let n = g.Grid.nx * g.Grid.ny in
  { sxx = Fbuf.create n; syy = Fbuf.create n; sxy = Fbuf.create n }

(** Margin of cells near the boundary where the wide stencil can't reach;
    displacements there are held fixed (supergrid damping handles
    reflections). *)
let margin = 4

(** Compute accelerations (ax, ay) from displacements (ux, uy).
    All buffers are full-grid; only the interior beyond [margin] is
    written. *)
let stress_rows (g : Grid.t) s ~ux ~uy jlo jhi =
  let nx = g.Grid.nx in
  let lambda = g.Grid.lambda and mu_a = g.Grid.mu in
  for j = jlo to jhi - 1 do
    for i = 2 to nx - 3 do
      let k = Grid.idx g i j in
      let dux_dx = d1x g ux i j and dux_dy = d1y g ux i j in
      let duy_dx = d1x g uy i j and duy_dy = d1y g uy i j in
      let lam = Array.unsafe_get lambda k and mu = Array.unsafe_get mu_a k in
      Fbuf.set s.sxx k ((lam *. (dux_dx +. duy_dy)) +. (2.0 *. mu *. dux_dx));
      Fbuf.set s.syy k ((lam *. (dux_dx +. duy_dy)) +. (2.0 *. mu *. duy_dy));
      Fbuf.set s.sxy k (mu *. (dux_dy +. duy_dx))
    done
  done

let divergence_rows (g : Grid.t) s ~ax ~ay jlo jhi =
  let nx = g.Grid.nx in
  let rho = g.Grid.rho in
  for j = jlo to jhi - 1 do
    for i = margin to nx - 1 - margin do
      let k = Grid.idx g i j in
      let fx = d1x g s.sxx i j +. d1y g s.sxy i j in
      let fy = d1x g s.sxy i j +. d1y g s.syy i j in
      Fbuf.set ax k (fx /. Array.unsafe_get rho k);
      Fbuf.set ay k (fy /. Array.unsafe_get rho k)
    done
  done

(* Rows per pool chunk. A fixed constant (never derived from the pool
   size) keeps the chunk layout — and hence scheduling — deterministic;
   writes are row-disjoint, so results are bit-identical to the serial
   sweep for any ICOE_DOMAINS. *)
let row_chunk = 8

let acceleration (g : Grid.t) s ~ux ~uy ~ax ~ay =
  let ny = g.Grid.ny in
  (* stress pass: needs a 2-wide halo inside the boundary. The pass must
     complete before the divergence reads the stresses, hence two pooled
     sweeps with an implicit barrier between them. *)
  Icoe_par.Pool.parallel_for_chunks ~chunk:row_chunk ~lo:2 ~hi:(ny - 2)
    (fun jlo jhi -> stress_rows g s ~ux ~uy jlo jhi);
  (* divergence pass *)
  Icoe_par.Pool.parallel_for_chunks ~chunk:row_chunk ~lo:margin
    ~hi:(ny - margin)
    (fun jlo jhi -> divergence_rows g s ~ax ~ay jlo jhi)

(** Serial reference evaluation of the same operator (bit-identical to
    {!acceleration}; the agreement tests pin this down). *)
let acceleration_seq (g : Grid.t) s ~ux ~uy ~ax ~ay =
  let ny = g.Grid.ny in
  stress_rows g s ~ux ~uy 2 (ny - 2);
  divergence_rows g s ~ax ~ay margin (ny - margin)

(** Flop/byte volume of one full-grid acceleration evaluation, used by the
    device pricing. Two 4th-order stencil sweeps over ~n points. *)
let work (g : Grid.t) =
  let n = float_of_int (g.Grid.nx * g.Grid.ny) in
  (* stress pass: 4 derivatives (7 flops) + 10 combine flops; divergence:
     4 derivatives + 4 flops; per point *)
  Hwsim.Kernel.make ~name:"sw4-rhs" ~launches:2 ~flops:(n *. 74.0)
    ~bytes:(n *. 8.0 *. 16.0) ()
