(** Full 3D elastic-wave propagation — the dimensionality of the real SW4.

    Displacement formulation with 4th-order central differences:

        rho u_tt = div sigma,
        sigma = lambda tr(eps) I + 2 mu eps,   eps = (grad u + grad u^T)/2

    with three displacement components and six stress components. The 2D
    plane-strain solver in {!Elastic} remains the cheap workhorse for
    scenarios and tests; this module is the production-shaped kernel whose
    per-point work justifies the campaign model in {!Scenario}. *)

module Fbuf = Icoe_util.Fbuf

type grid = {
  nx : int;
  ny : int;
  nz : int;
  h : float;
  rho : float array;
  lambda : float array;
  mu : float array;
}

let idx g i j k = i + (g.nx * (j + (g.ny * k)))

let create_grid ~nx ~ny ~nz ~h =
  assert (nx >= 9 && ny >= 9 && nz >= 9);
  let n = nx * ny * nz in
  {
    nx;
    ny;
    nz;
    h;
    rho = Array.make n 1000.0;
    lambda = Array.make n 1e9;
    mu = Array.make n 1e9;
  }

let homogeneous g ~rho ~vp ~vs =
  let mu = rho *. vs *. vs in
  let lambda = (rho *. vp *. vp) -. (2.0 *. mu) in
  assert (lambda >= 0.0);
  Array.fill g.rho 0 (Array.length g.rho) rho;
  Array.fill g.mu 0 (Array.length g.mu) mu;
  Array.fill g.lambda 0 (Array.length g.lambda) lambda

let max_p_speed g =
  let m = ref 0.0 in
  Array.iteri
    (fun i lam ->
      m := max !m (sqrt ((lam +. (2.0 *. g.mu.(i))) /. g.rho.(i))))
    g.lambda;
  !m

let stable_dt ?(cfl = 0.4) g = cfl *. g.h /. max_p_speed g

(* 4th-order first derivative of the flat field [f] at index [k] (a
   component base offset already added) with a precomputed stride *)
let d1 g (f : Fbuf.t) k stride =
  (8.0 *. (Fbuf.get f (k + stride) -. Fbuf.get f (k - stride))
  -. (Fbuf.get f (k + (2 * stride)) -. Fbuf.get f (k - (2 * stride))))
  /. (12.0 *. g.h)

(* Hot state is flattened onto single Bigarray buffers, component-major:
   component [c] of grid point [p] lives at [c*n + p]. One buffer for
   the three displacement components (and its leapfrog history), one for
   the accelerations, one for the six stress components — the SoA layout
   the real SW4 RAJA port uses, replacing the array-of-arrays records. *)
type state = {
  grid : grid;
  dt : float;
  n : int;  (** grid points per component *)
  u : Fbuf.t;  (** 3n: displacement components x|y|z, component-major *)
  u_prev : Fbuf.t;  (** 3n *)
  a : Fbuf.t;  (** 3n: accelerations *)
  s : Fbuf.t;  (** 6n: stress components xx|yy|zz|xy|xz|yz *)
}

let margin = 4

let create ?(cfl = 0.4) grid =
  let n = grid.nx * grid.ny * grid.nz in
  {
    grid;
    dt = stable_dt ~cfl grid;
    n;
    u = Fbuf.create (3 * n);
    u_prev = Fbuf.create (3 * n);
    a = Fbuf.create (3 * n);
    s = Fbuf.create (6 * n);
  }

let get_u st ~c ~p = Fbuf.get st.u ((c * st.n) + p)
let set_u st ~c ~p v = Fbuf.set st.u ((c * st.n) + p) v
let get_a st ~c ~p = Fbuf.get st.a ((c * st.n) + p)

(** Compute stresses then accelerations over the interior. The six
    stress planes and three acceleration planes are disjoint slices of
    the flat buffers, addressed by base offset + point index; every
    access is one unchecked load/store and the loop allocates nothing. *)
let acceleration st =
  let g = st.grid in
  let n = st.n in
  let sx = 1 and sy = g.nx and sz = g.nx * g.ny in
  let u = st.u and s = st.s and a = st.a in
  let ox = 0 and oy = n and oz = 2 * n in
  let oxx = 0 and oyy = n and ozz = 2 * n in
  let oxy = 3 * n and oxz = 4 * n and oyz = 5 * n in
  let lambda = g.lambda and mu_a = g.mu and rho = g.rho in
  (* stress pass *)
  for k = 2 to g.nz - 3 do
    for j = 2 to g.ny - 3 do
      for i = 2 to g.nx - 3 do
        let p = idx g i j k in
        let dux_dx = d1 g u (ox + p) sx
        and dux_dy = d1 g u (ox + p) sy
        and dux_dz = d1 g u (ox + p) sz in
        let duy_dx = d1 g u (oy + p) sx
        and duy_dy = d1 g u (oy + p) sy
        and duy_dz = d1 g u (oy + p) sz in
        let duz_dx = d1 g u (oz + p) sx
        and duz_dy = d1 g u (oz + p) sy
        and duz_dz = d1 g u (oz + p) sz in
        let lam = Array.unsafe_get lambda p and mu = Array.unsafe_get mu_a p in
        let div = dux_dx +. duy_dy +. duz_dz in
        Fbuf.set s (oxx + p) ((lam *. div) +. (2.0 *. mu *. dux_dx));
        Fbuf.set s (oyy + p) ((lam *. div) +. (2.0 *. mu *. duy_dy));
        Fbuf.set s (ozz + p) ((lam *. div) +. (2.0 *. mu *. duz_dz));
        Fbuf.set s (oxy + p) (mu *. (dux_dy +. duy_dx));
        Fbuf.set s (oxz + p) (mu *. (dux_dz +. duz_dx));
        Fbuf.set s (oyz + p) (mu *. (duy_dz +. duz_dy))
      done
    done
  done;
  (* divergence pass *)
  for k = margin to g.nz - 1 - margin do
    for j = margin to g.ny - 1 - margin do
      for i = margin to g.nx - 1 - margin do
        let p = idx g i j k in
        let inv_rho = 1.0 /. Array.unsafe_get rho p in
        Fbuf.set a (ox + p)
          ((d1 g s (oxx + p) sx +. d1 g s (oxy + p) sy +. d1 g s (oxz + p) sz)
          *. inv_rho);
        Fbuf.set a (oy + p)
          ((d1 g s (oxy + p) sx +. d1 g s (oyy + p) sy +. d1 g s (oyz + p) sz)
          *. inv_rho);
        Fbuf.set a (oz + p)
          ((d1 g s (oxz + p) sx +. d1 g s (oyz + p) sy +. d1 g s (ozz + p) sz)
          *. inv_rho)
      done
    done
  done

(** One leapfrog step with an optional body force applied at one point. *)
let step ?force st ~time =
  acceleration st;
  (match force with
  | Some (i, j, k, fx, fy, fz, stf) ->
      let p = idx st.grid i j k in
      let amp = stf time /. st.grid.rho.(p) in
      Fbuf.set st.a p (Fbuf.get st.a p +. (fx *. amp));
      Fbuf.set st.a (st.n + p) (Fbuf.get st.a (st.n + p) +. (fy *. amp));
      Fbuf.set st.a ((2 * st.n) + p)
        (Fbuf.get st.a ((2 * st.n) + p) +. (fz *. amp))
  | None -> ());
  let g = st.grid in
  let dt2 = st.dt *. st.dt in
  let u = st.u and up = st.u_prev and a = st.a in
  for c = 0 to 2 do
    let o = c * st.n in
    for k = margin to g.nz - 1 - margin do
      for j = margin to g.ny - 1 - margin do
        for i = margin to g.nx - 1 - margin do
          let p = o + idx g i j k in
          let uc = Fbuf.get u p in
          let unew = (2.0 *. uc) -. Fbuf.get up p +. (dt2 *. Fbuf.get a p) in
          Fbuf.set up p uc;
          Fbuf.set u p unew
        done
      done
    done
  done

(** Kinetic-energy proxy for stability checks. *)
let energy_proxy st =
  let g = st.grid in
  let e = ref 0.0 in
  for c = 0 to 2 do
    let o = c * st.n in
    for p = 0 to st.n - 1 do
      let v = (Fbuf.get st.u (o + p) -. Fbuf.get st.u_prev (o + p)) /. st.dt in
      e := !e +. (0.5 *. g.rho.(p) *. v *. v)
    done
  done;
  !e

(** Flop/byte volume of one 3D acceleration evaluation: 9 + 18 stencil
    derivatives of 7 flops each plus combines, over ~n points — the
    production-kernel density the campaign model prices. *)
let work g =
  let n = float_of_int (g.nx * g.ny * g.nz) in
  Hwsim.Kernel.make ~name:"sw4-rhs-3d" ~launches:2 ~flops:(n *. 260.0)
    ~bytes:(n *. 8.0 *. 40.0) ()
