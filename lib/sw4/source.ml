(** Seismic sources: point forces with standard source-time functions. *)

(** Ricker wavelet with peak frequency [f0], centred at [t0]. *)
let ricker ~f0 ~t0 t =
  let a = Float.pi *. f0 *. (t -. t0) in
  (1.0 -. (2.0 *. a *. a)) *. exp (-.(a *. a))

(** Gaussian source-time function. *)
let gaussian ~f0 ~t0 t =
  let s = 1.0 /. (2.0 *. Float.pi *. f0) in
  exp (-.((t -. t0) ** 2.0) /. (2.0 *. s *. s))

type t = {
  i : int;
  j : int;
  fx : float;  (** force amplitude, x component *)
  fy : float;
  stf : float -> float;  (** source-time function *)
}

let point_force ~i ~j ~fx ~fy ~stf = { i; j; fx; fy; stf }

(** Add the source contribution at time [t] into the acceleration fields
    (force divided by the local density). *)
let inject (g : Grid.t) src ~t ~ax ~ay =
  let module Fbuf = Icoe_util.Fbuf in
  let k = Grid.idx g src.i src.j in
  let amp = src.stf t /. g.Grid.rho.(k) in
  Fbuf.set ax k (Fbuf.get ax k +. (src.fx *. amp));
  Fbuf.set ay k (Fbuf.get ay k +. (src.fy *. amp))
