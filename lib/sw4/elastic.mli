(** The 2D plane-strain elastic-wave spatial operator: 4th-order central
    differences on the displacement formulation — the sw4lite kernel
    shape: wide stencils, bandwidth-heavy, the paper's shared-memory
    optimization target.

    Fields are {!Icoe_util.Fbuf} buffers (flat float64 Bigarrays) read
    and written with unchecked single-load access; the stencil sweeps
    allocate nothing. The arithmetic is unchanged from the boxed
    layout, so results are bit-identical to the PR 3 kernels. *)

val d1x : Grid.t -> Icoe_util.Fbuf.t -> int -> int -> float
(** 4th-order first derivative along x at (i, j); needs a 2-point halo. *)

val d1y : Grid.t -> Icoe_util.Fbuf.t -> int -> int -> float

type scratch = {
  sxx : Icoe_util.Fbuf.t;
  syy : Icoe_util.Fbuf.t;
  sxy : Icoe_util.Fbuf.t;
}

val make_scratch : Grid.t -> scratch

val margin : int
(** Cells near the boundary held fixed (the wide stencil can't reach). *)

val row_chunk : int
(** Grid rows per pool chunk — a fixed constant so the chunk layout is
    deterministic for any pool size. *)

val acceleration :
  Grid.t -> scratch -> ux:Icoe_util.Fbuf.t -> uy:Icoe_util.Fbuf.t ->
  ax:Icoe_util.Fbuf.t -> ay:Icoe_util.Fbuf.t -> unit
(** Stress pass then divergence pass; writes the interior beyond
    [margin]. Both passes are row-parallel on the {!Icoe_par.Pool} with
    a barrier in between; writes are row-disjoint, so the result is
    bit-identical to {!acceleration_seq} for any pool size. *)

val acceleration_seq :
  Grid.t -> scratch -> ux:Icoe_util.Fbuf.t -> uy:Icoe_util.Fbuf.t ->
  ax:Icoe_util.Fbuf.t -> ay:Icoe_util.Fbuf.t -> unit
(** Serial reference evaluation of the same operator. *)

val work : Grid.t -> Hwsim.Kernel.t
(** Flop/byte volume of one full-grid evaluation. *)
