(** Seismic sources: point forces with standard source-time functions. *)

val ricker : f0:float -> t0:float -> float -> float
(** Ricker wavelet with peak frequency [f0], centred at [t0]. *)

val gaussian : f0:float -> t0:float -> float -> float

type t = {
  i : int;
  j : int;
  fx : float;
  fy : float;
  stf : float -> float;  (** source-time function *)
}

val point_force :
  i:int -> j:int -> fx:float -> fy:float -> stf:(float -> float) -> t

val inject :
  Grid.t -> t -> t:float -> ax:Icoe_util.Fbuf.t -> ay:Icoe_util.Fbuf.t -> unit
(** Add the source contribution at time [t] into the accelerations. *)
