(** One harness per table and figure of the paper. Each function runs the
    real workload (at laptop scale), prices device-dependent results on
    the hardware model, and returns rendered text with the paper's
    reference values alongside. The bench executable and the icoe_report
    CLI both dispatch through [all]. *)

open Icoe_util

let section title body = Fmt.str "### %s\n%s\n" title body

(* ------------------------------------------------------------------ *)
(* Trace collection                                                    *)
(*                                                                     *)
(* Instrumented harnesses register the Hwsim.Trace of their last run   *)
(* here; the icoe_report CLI and the bench executable read the set     *)
(* back to render rollup tables and export Chrome trace-event JSON.    *)
(* ------------------------------------------------------------------ *)

(* The experiments whose harnesses emit spans; the CLI's bare
   `--trace FILE` invocation runs exactly these. *)
let traced_ids = [ "fig2"; "table2"; "fig8"; "table4" ]

let traces : (string * Hwsim.Trace.t) list ref = ref []
let clear_traces () = traces := []
let record_trace name tr = traces := (name, tr) :: !traces
let collected_traces () = List.rev !traces

let trace_rollup_report () =
  match collected_traces () with
  | [] -> ""
  | ts ->
      let buf = Buffer.create 2048 in
      Buffer.add_string buf
        "### Trace rollups — where the simulated time went\n";
      List.iter
        (fun (name, tr) ->
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.device_table ~title:(name ^ ": per-device rollup") tr));
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.phase_table ~title:(name ^ ": per-phase rollup") tr));
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.span_table ~title:(name ^ ": top spans") ~n:5 tr)))
        ts;
      Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fig 2: SparkPlug LDA, default vs optimized stack                    *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  (* real small-scale LDA training for correctness evidence *)
  let rng = Rng.create 42 in
  let corpus = Lda.Corpus.generate ~ndocs:160 ~rng () in
  let cluster = Sparkle.Cluster.create (Sparkle.Cluster.default_config ~nodes:4 ()) in
  let rdd = Sparkle.Rdd.of_array cluster corpus.Lda.Corpus.docs in
  let model = Lda.Vem.init ~rng ~k:corpus.Lda.Corpus.k_true ~vocab:corpus.Lda.Corpus.vocab () in
  let trace = Lda.Vem.train ~iters:10 model rdd in
  let recovery = Lda.Vem.recovery_score model corpus.Lda.Corpus.topic_word in
  (* paper-scale breakdown; the cluster charges every stage through its
     span tracer, so both runs are exportable to chrome://tracing *)
  let slow = Lda.Fig2.run ~optimized:false Lda.Fig2.wikipedia in
  let fast = Lda.Fig2.run ~optimized:true Lda.Fig2.wikipedia in
  record_trace "fig2/default" (Sparkle.Cluster.trace slow);
  record_trace "fig2/optimized" (Sparkle.Cluster.trace fast);
  let t = Table.create ~title:"Fig 2: LDA aggregate time breakdown (s, 32 nodes, Wikipedia-scale)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "phase"; "default"; "optimized" ] in
  List.iter
    (fun phase ->
      Table.add_row t
        [ phase;
          Table.fcell ~prec:1 (Hwsim.Clock.phase slow.Sparkle.Cluster.clock phase);
          Table.fcell ~prec:1 (Hwsim.Clock.phase fast.Sparkle.Cluster.clock phase) ])
    [ "compute"; "shuffle"; "aggregate"; "broadcast" ];
  Table.add_row t
    [ "TOTAL";
      Table.fcell ~prec:1 (Sparkle.Cluster.elapsed slow);
      Table.fcell ~prec:1 (Sparkle.Cluster.elapsed fast) ];
  section "Fig 2 — SparkPlug LDA default vs optimized"
    (Fmt.str
       "real run: 10 EM iterations, loglik %.0f -> %.0f, topic recovery %.2f\n%s\
        speedup %.2fx (paper: 'more than 2X')\n"
       trace.(0) trace.(9) recovery (Table.render t)
       (Sparkle.Cluster.elapsed slow /. Sparkle.Cluster.elapsed fast))

(* ------------------------------------------------------------------ *)
(* Table 2: historical graph scale and GTEPS                           *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let t = Table.create ~title:"Table 2: historically best graph scale and performance"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "Machine"; "Year"; "Nodes"; "Scale"; "Scale(paper)"; "GTEPS"; "GTEPS(paper)" ] in
  List.iter2
    (fun m (name, year, nodes, scale_p, gteps_p) ->
      Table.add_row t
        [ name; string_of_int year; string_of_int nodes;
          string_of_int (Havoq.Perf.max_scale m); string_of_int scale_p;
          Table.fcell (Havoq.Perf.gteps m); Table.fcell gteps_p ])
    Havoq.Perf.machines Havoq.Perf.paper_rows;
  (* plus a real BFS run demonstrating the direction-optimizing engine *)
  let rng = Rng.create 9 in
  let g = Havoq.Graph.rmat ~rng ~scale:12 () in
  let src = ref 0 in
  for v = 0 to g.Havoq.Graph.n - 1 do
    if Havoq.Graph.degree g v > Havoq.Graph.degree g !src then src := v
  done;
  let td = Havoq.Bfs.top_down g ~src:!src in
  let hy = Havoq.Bfs.hybrid g ~src:!src in
  (* trace the two sweeps priced on the BG/Q model (one edge inspection
     ~ 16 B of irregular traffic, 2 flops), with a nest-counter reading
     attached so the span records how bandwidth-bound BFS is *)
  let tr = Hwsim.Trace.create ~root:"table2" (Hwsim.Clock.create ()) in
  let bfs_kernel name (r : Havoq.Bfs.stats) =
    let e = float_of_int r.Havoq.Bfs.edges_traversed in
    Hwsim.Kernel.make ~name ~flops:(2.0 *. e) ~bytes:(16.0 *. e) ()
  in
  let ctr = Hwsim.Counters.create Hwsim.Device.bgq in
  Hwsim.Trace.with_span tr "bfs" (fun () ->
      Hwsim.Counters.sample ctr ~time:(Hwsim.Trace.now tr) ~bytes:0.0;
      let ktd = bfs_kernel "bfs/top-down" td in
      let khy = bfs_kernel "bfs/hybrid" hy in
      ignore (Hwsim.Trace.charge_kernel tr ~phase:"bfs/top-down" Hwsim.Device.bgq ktd);
      ignore (Hwsim.Trace.charge_kernel tr ~phase:"bfs/hybrid" Hwsim.Device.bgq khy);
      Hwsim.Counters.sample ctr ~time:(Hwsim.Trace.now tr)
        ~bytes:(ktd.Hwsim.Kernel.bytes +. khy.Hwsim.Kernel.bytes);
      Hwsim.Trace.annotate_counters tr ctr);
  record_trace "table2" tr;
  section "Table 2 — HavoqGT graph BFS"
    (Fmt.str "%sreal RMAT scale-12 BFS: top-down traversed %d edges, hybrid %d (%.1fx fewer), %d direction switches\n"
       (Table.render t) td.Havoq.Bfs.edges_traversed hy.Havoq.Bfs.edges_traversed
       (float_of_int td.Havoq.Bfs.edges_traversed /. float_of_int hy.Havoq.Bfs.edges_traversed)
       hy.Havoq.Bfs.switches)

(* ------------------------------------------------------------------ *)
(* Table 3: three-stream video ensembles                               *)
(* ------------------------------------------------------------------ *)

let table3 () =
  let rng = Rng.create 11 in
  let easy = Dlearn.Videonet.table3 ~rng Dlearn.Videonet.Easy in
  let hard = Dlearn.Videonet.table3 ~rng Dlearn.Videonet.Hard in
  let paper =
    [ (85.06, 61.44); (84.70, 56.34); (88.32, 58.69); (92.78, 75.16);
      (93.47, 77.45); (92.60, 81.24); (93.18, 80.33); (93.40, 66.40) ]
  in
  let t = Table.create ~title:"Table 3: validation accuracy (%), UCF101-like / HMDB51-like"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "Combination"; "easy"; "easy(paper)"; "hard"; "hard(paper)" ] in
  List.iteri
    (fun i ((c, a_easy), (_, a_hard)) ->
      let pe, ph = List.nth paper i in
      Table.add_row t
        [ Dlearn.Videonet.combiner_name c;
          Table.fcell ~prec:1 (100.0 *. a_easy); Table.fcell ~prec:1 pe;
          Table.fcell ~prec:1 (100.0 *. a_hard); Table.fcell ~prec:1 ph ])
    (List.combine easy hard);
  section "Table 3 — three-stream video action recognition" (Table.render t)

(* ------------------------------------------------------------------ *)
(* Fig 3: LBANN model-parallel scaling                                 *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  let t = Table.create ~title:"Fig 3: LBANN scaling (V100 GPUs)"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "GPUs/sample"; "strong speedup vs 2"; "paper"; "weak eff to 2048" ] in
  List.iter2
    (fun g paper ->
      Table.add_row t
        [ string_of_int g;
          Table.fcell ~prec:2 (Dlearn.Lbann.strong_scaling_speedup g);
          paper;
          Table.fcell ~prec:2
            (Dlearn.Lbann.weak_scaling_efficiency ~g ~total0:(4 * g) ~total1:2048) ])
    [ 2; 4; 8; 16 ] [ "1.00"; "~2 (near-perfect)"; "2.8"; "3.4" ];
  section "Fig 3 — LBANN up to 2048 GPUs"
    (Fmt.str "%smodel needs %.0f GB > 16 GB/GPU: minimum %d GPUs per sample\n"
       (Table.render t) Dlearn.Lbann.model_memory_gb Dlearn.Lbann.min_gpus_per_sample)

(* ------------------------------------------------------------------ *)
(* Fig 6: ParaDyn SLNSP and dead-store elimination                     *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let rng = Rng.create 7 in
  let n = 1000 in
  let inputs =
    List.map
      (fun a -> (a, Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0)))
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
  in
  let base = Paradyn.Ir.paradyn_kernel in
  let slnsp = Paradyn.Passes.slnsp base in
  let dse = Paradyn.Passes.dse slnsp in
  let nbig = 4_000_000 in
  let t = Table.create ~title:"Fig 6: ParaDyn kernel execution (4M elements, V100 model)"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "variant"; "loads/elem"; "stores/elem"; "launches"; "time (ms)" ] in
  let times =
    List.map
      (fun (name, p) ->
        let _, c = Paradyn.Interp.run p ~inputs in
        let tm = Paradyn.Interp.gpu_time ~n:nbig c in
        Table.add_row t
          [ name; string_of_int c.Paradyn.Interp.loads;
            string_of_int c.Paradyn.Interp.stores;
            string_of_int c.Paradyn.Interp.launches;
            Table.fcell ~prec:3 (tm *. 1e3) ];
        tm)
      [ ("baseline", base); ("SLNSP", slnsp); ("SLNSP+DSE", dse) ]
  in
  match times with
  | [ t0; t1; t2 ] ->
      section "Fig 6 — ParaDyn compiler optimizations"
        (Fmt.str "%sSLNSP speedup %.2fx (paper: ~2x, matching load reduction); DSE adds %.0f%% (paper: 20%%)\n"
           (Table.render t) (t0 /. t1) (((t1 /. t2) -. 1.0) *. 100.0))
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Fig 8 and Table 4: the MFEM + hypre + SUNDIALS stack                *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  (* real integrated run; priced at the paper's 1M-DoF scale on the Fig 8
     hardware pair (1 P8 thread vs P100) *)
  let r = Mfem.Nldiff.run ~n:10 ~p:3 ~tf:0.004 () in
  let scale = 1.0e6 /. float_of_int r.Mfem.Nldiff.ndof in
  (* each device's breakdown is charged as spans under one device span,
     so the trace answers "where did the time go, on which device" *)
  let tr = Hwsim.Trace.create ~root:"fig8" (Hwsim.Clock.create ()) in
  let priced label (device : Hwsim.Device.t) policy =
    Hwsim.Trace.with_span tr ~device:device.Hwsim.Device.name label (fun () ->
        let f, p, s = Mfem.Nldiff.price ~scale r ~device ~policy in
        let dev = device.Hwsim.Device.name in
        Hwsim.Trace.charge tr ~device:dev ~phase:"formulation" f;
        Hwsim.Trace.charge tr ~device:dev ~phase:"preconditioner" p;
        Hwsim.Trace.charge tr ~device:dev ~phase:"solve" s;
        (f, p, s))
  in
  let fc, pc, sc = priced "nldiff/P8-serial" Hwsim.Device.power8 Prog.Policy.Serial in
  let fg, pg, sg = priced "nldiff/P100-cuda" Hwsim.Device.p100 Prog.Policy.Cuda in
  (* nest-counter reading over the GPU pass: cumulative DRAM traffic of
     the scaled V-cycles, attached to the root for context *)
  let ctr = Hwsim.Counters.create Hwsim.Device.p100 in
  Hwsim.Counters.sample ctr ~time:(fc +. pc +. sc) ~bytes:0.0;
  Hwsim.Counters.sample ctr
    ~time:(Hwsim.Trace.now tr)
    ~bytes:
      ((Hwsim.Kernel.scale scale r.Mfem.Nldiff.vcycle_work).Hwsim.Kernel.bytes
      *. float_of_int r.Mfem.Nldiff.counters.Mfem.Nldiff.vcycles);
  Hwsim.Trace.annotate_counters tr ctr;
  record_trace "fig8" tr;
  let t = Table.create ~title:"Fig 8: nonlinear diffusion timing breakdown (s, 1M DoF)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "phase"; "P8 (1 thread)"; "P100" ] in
  Table.add_row t [ "formulation"; Table.fcell ~prec:2 fc; Table.fcell ~prec:2 fg ];
  Table.add_row t [ "preconditioner"; Table.fcell ~prec:2 pc; Table.fcell ~prec:2 pg ];
  Table.add_row t [ "solve"; Table.fcell ~prec:2 sc; Table.fcell ~prec:2 sg ];
  Table.add_row t
    [ "TOTAL"; Table.fcell ~prec:2 (fc +. pc +. sc); Table.fcell ~prec:2 (fg +. pg +. sg) ];
  let c = r.Mfem.Nldiff.counters in
  section "Fig 8 — MFEM + hypre + SUNDIALS nonlinear diffusion"
    (Fmt.str
       "%sreal run: %d BDF steps, %d Newton iters, %d PCG iters, %d V-cycles; GPU/CPU speedup %.1fx\n"
       (Table.render t) r.Mfem.Nldiff.ode_stats.Sundials.Cvode.nsteps
       r.Mfem.Nldiff.ode_stats.Sundials.Cvode.nniters c.Mfem.Nldiff.pcg_iters
       c.Mfem.Nldiff.vcycles
       ((fc +. pc +. sc) /. (fg +. pg +. sg)))

let table4 () =
  let paper =
    [ (20.8e3, [ 2.88; 2.78; 4.97 ]); (82.6e3, [ 6.67; 8.00; 12.47 ]);
      (329.0e3, [ 10.59; 13.71; 19.00 ]); (1.313e6, [ 12.32; 14.36; 20.80 ]) ]
  in
  let t = Table.create ~title:"Table 4: GPU (P9+V100) speedup over serial CPU"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Right; Table.Left |]
      [ "Unknowns"; "p=2"; "p=4"; "p=8"; "paper (p=2/4/8)" ] in
  (* one real run per order; each size row scales the measured work *)
  let runs = List.map (fun p -> (p, Mfem.Nldiff.run ~n:(24 / p) ~p ~tf:0.004 ())) [ 2; 4; 8 ] in
  let tr = Hwsim.Trace.create ~root:"table4" (Hwsim.Clock.create ()) in
  List.iter
    (fun (unknowns, paper_row) ->
      let speedups =
        Hwsim.Trace.with_span tr (Fmt.str "unknowns=%.3g" unknowns) (fun () ->
            List.map
              (fun (p, r) ->
                let scale = unknowns /. float_of_int r.Mfem.Nldiff.ndof in
                let fc, pc, sc =
                  Mfem.Nldiff.price ~scale r ~device:Hwsim.Device.power9
                    ~policy:Prog.Policy.Serial
                in
                let fg, pg, sg =
                  Mfem.Nldiff.price ~scale r ~device:Hwsim.Device.v100
                    ~policy:Prog.Policy.Cuda
                in
                Hwsim.Trace.with_span tr (Fmt.str "p=%d" p) (fun () ->
                    Hwsim.Trace.charge tr ~device:"POWER9" ~phase:"cpu-serial"
                      (fc +. pc +. sc);
                    Hwsim.Trace.charge tr ~device:"V100" ~phase:"gpu-cuda"
                      (fg +. pg +. sg));
                (fc +. pc +. sc) /. (fg +. pg +. sg))
              runs)
      in
      Table.add_row t
        ([ Fmt.str "%.3g" unknowns ]
        @ List.map (Table.fcell ~prec:2) speedups
        @ [ String.concat "/" (List.map (Fmt.str "%.2f") paper_row) ]))
    paper;
  record_trace "table4" tr;
  section "Table 4 — integrated-stack GPU speedups" (Table.render t)

(* ------------------------------------------------------------------ *)
(* Table 5: CleverLeaf on SAMRAI                                       *)
(* ------------------------------------------------------------------ *)

let table5 () =
  (* real hydro run for correctness evidence *)
  let sim = Samrai.Cleverleaf.create ~nx:64 ~ny:8 ~lx:1.0 ~ly:0.125 () in
  Samrai.Cleverleaf.init sim (fun ~x ~y:_ ->
      if x < 0.5 then (1.0, 0.0, 0.0, 1.0) else (0.125, 0.0, 0.0, 0.1));
  let m0, _, _, e0 = Samrai.Cleverleaf.totals sim in
  Samrai.Cleverleaf.run sim 0.15;
  let m1, _, _, e1 = Samrai.Cleverleaf.totals sim in
  let (fc, fg), (sc, sg) = Samrai.Cleverleaf.table5_times ~cells:4_000_000 ~steps:500 in
  let t = Table.create ~title:"Table 5: CleverLeaf mini-app performance (s)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ ""; "Full Node"; "P9 vs V100" ] in
  Table.add_row t [ "CPU time (s)"; Table.fcell ~prec:1 fc; Table.fcell ~prec:1 sc ];
  Table.add_row t [ "GPU time (s)"; Table.fcell ~prec:2 fg; Table.fcell ~prec:2 sg ];
  Table.add_row t
    [ "Speedup"; Fmt.str "%.0fX" (fc /. fg); Fmt.str "%.0fX" (sc /. sg) ];
  section "Table 5 — CleverLeaf on SAMRAI (paper: 7X / 15X)"
    (Fmt.str "%sreal Sod run: %d steps, mass drift %.1e, energy drift %.1e\n"
       (Table.render t) sim.Samrai.Cleverleaf.steps
       (Float.abs (m1 -. m0)) (Float.abs (e1 -. e0)))

(* ------------------------------------------------------------------ *)
(* Fig 9: VBL phase defects                                            *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  let run defects =
    let b = Vbl.Beam.create ~n:256 ~width:0.05 () in
    Vbl.Beam.flat_top b;
    if defects then Vbl.Propagate.defect_screen ~defect_size:150e-6 ~depth:2.0 b;
    let c0 = Vbl.Beam.center_contrast b in
    Vbl.Propagate.run b ~distance:10.0 ~steps:5;
    (c0, Vbl.Beam.center_contrast b)
  in
  let c0_clean, c_clean = run false in
  let c0_def, c_def = run true in
  let t_raja = Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100 ~transpose_variant:`Naive in
  let t_cuda = Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100 ~transpose_variant:`Tiled in
  let t = Table.create ~title:"Fig 9: fluence modulation contrast after 10 m"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "beam"; "at z=0"; "at z=10m" ] in
  Table.add_row t [ "clean"; Table.fcell c0_clean; Table.fcell c_clean ];
  Table.add_row t [ "two 150um phase defects"; Table.fcell c0_def; Table.fcell c_def ];
  section "Fig 9 — VBL split-step propagation"
    (Fmt.str "%sripple growth %.0fx; transpose recoded in CUDA: split-step %.2f -> %.2f ms (%.1fx)\n"
       (Table.render t) (c_def /. max 1e-9 c_clean)
       (t_raja *. 1e3) (t_cuda *. 1e3) (t_raja /. t_cuda))

(* ------------------------------------------------------------------ *)
(* Sec 4.3: Cretin                                                     *)
(* ------------------------------------------------------------------ *)

let cretin () =
  (* real minikin run *)
  let model = Cretin.Atomic.ladder 10 in
  let mk = Cretin.Minikin.create ~nzones:24 ~te0:1.0 ~te1:50.0 model in
  Cretin.Minikin.solve_all mk;
  let cold = Cretin.Minikin.mean_excitation mk.Cretin.Minikin.zones.(0) in
  let hot = Cretin.Minikin.mean_excitation mk.Cretin.Minikin.zones.(23) in
  let t = Table.create ~title:"Sec 4.3: Cretin node throughput, GPU vs CPU"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "levels"; "zone MB"; "CPU cores idle"; "GPU/CPU speedup" ] in
  List.iter
    (fun n ->
      let m = Cretin.Atomic.ladder n in
      let s, idle = Cretin.Minikin.node_speedup m in
      Table.add_row t
        [ string_of_int n;
          Table.fcell ~prec:1 (Cretin.Atomic.zone_bytes m /. 1e6);
          Fmt.str "%.0f%%" (idle *. 100.0); Table.fcell ~prec:2 s ])
    [ 40; 400; 2000; 12000; 18000 ];
  section "Sec 4.3 — Cretin / minikin (paper: 5.75X for 2nd-largest; largest idles 60% of cores)"
    (Fmt.str "%sreal 24-zone gradient solve: mean excitation %.3f (1 eV) -> %.3f (50 eV)\n"
       (Table.render t) cold hot)

(* ------------------------------------------------------------------ *)
(* Sec 4.6: ddcMD vs GROMACS                                           *)
(* ------------------------------------------------------------------ *)

let md () =
  (* real MD: small Martini-like patch with thermostat and constraints *)
  let rng = Rng.create 31 in
  let p = Ddcmd.Particles.create ~n:125 ~box:6.5 in
  Ddcmd.Particles.lattice_init p;
  Ddcmd.Particles.thermalize p ~rng ~temp:0.7;
  let e = Ddcmd.Engine.create ~dt:0.004 ~potential:(Ddcmd.Potential.lennard_jones ()) p in
  Ddcmd.Engine.run e ~steps:50;
  let e0 = Ddcmd.Engine.total_energy e in
  Ddcmd.Engine.run e ~steps:300;
  let drift = Float.abs (Ddcmd.Engine.total_energy e -. e0) /. Float.abs e0 in
  let t = Table.create ~title:"Sec 4.6: ddcMD vs GROMACS, Martini membrane (ms/step)"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Left |]
      [ "configuration"; "ddcMD"; "GROMACS"; "ratio"; "paper" ] in
  List.iter2
    (fun s paper ->
      let d, g = Ddcmd.Perf.step_times s in
      Table.add_row t
        [ Ddcmd.Perf.scenario_name s; Table.fcell ~prec:2 (d *. 1e3);
          Table.fcell ~prec:2 (g *. 1e3); Table.fcell ~prec:2 (g /. d); paper ])
    [ Ddcmd.Perf.One_gpu; Ddcmd.Perf.Four_gpu; Ddcmd.Perf.Mummi ]
    [ "2.31 vs 2.88"; "1.3x"; "2.3x" ];
  section "Sec 4.6 — MD performance"
    (Fmt.str "%sreal NVE run: 350 steps, relative energy drift %.1e\n"
       (Table.render t) drift)

(* ------------------------------------------------------------------ *)
(* Sec 4.9: SW4                                                        *)
(* ------------------------------------------------------------------ *)

let sw4 () =
  let res = Sw4.Scenario.run_hayward ~nx:120 ~ny:72 ~h:100.0 ~steps:300 () in
  let g = Sw4.Grid.create ~nx:512 ~ny:512 ~h:100.0 in
  let t = Table.create ~title:"Sec 4.9: sw4lite kernel variants (512^2 grid, s/step)"
      ~aligns:[| Table.Left; Table.Right |]
      [ "variant"; "time/step (ms)" ] in
  List.iter
    (fun v ->
      Table.add_row t
        [ Sw4.Scenario.variant_name v;
          Table.fcell ~prec:3 (Sw4.Scenario.variant_time_per_step g v *. 1e3) ])
    [ Sw4.Scenario.Cpu_openmp; Sw4.Scenario.Naive_cuda; Sw4.Scenario.Shared_cuda;
      Sw4.Scenario.Raja ];
  let sierra = Sw4.Scenario.node_throughput Hwsim.Node.witherspoon ~points:4_000_000 in
  let cori = Sw4.Scenario.node_throughput Hwsim.Node.cori_ii ~points:4_000_000 in
  (* the production Hayward campaign: 26B points, ~10 h on 256 Sierra nodes *)
  let gp = 26.0e9 and steps = 25_000 in
  let sierra_h =
    Sw4.Scenario.production_run_hours Hwsim.Node.sierra ~nodes:256 ~grid_points:gp ~steps
  in
  let cori_nodes =
    Sw4.Scenario.nodes_for_deadline Hwsim.Node.cori ~grid_points:gp ~steps ~hours:sierra_h
  in
  section "Sec 4.9 — SW4 seismic (paper: shared-mem ~2x, RAJA ~0.7x CUDA, 14X node throughput vs Cori)"
    (Fmt.str
       "%sSierra/Cori node throughput ratio: %.1fx\n\
        production Hayward campaign (26B points): %.1f h on 256 Sierra nodes (paper ~10 h);\n\
        Cori-II needs %d nodes (%.1fx more) for the same wall clock\n\
        real Hayward-like run: basin amplification %b over %d grid points\n"
       (Table.render t) (sierra /. cori) sierra_h cori_nodes
       (float_of_int cori_nodes /. 256.0)
       res.Sw4.Scenario.basin_amplified res.Sw4.Scenario.grid_points)

(* ------------------------------------------------------------------ *)
(* Sec 4.7: Opt                                                        *)
(* ------------------------------------------------------------------ *)

let opt_sched () =
  let rng = Rng.create 121 in
  let jobs = Opt.Scheduler.batch_workload ~rng ~n:400 () in
  let t = Table.create ~title:"Sec 4.7: batch workload on 16 GPUs"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "policy"; "utilization"; "mean wait"; "max wait" ] in
  List.iter
    (fun pol ->
      let m = Opt.Scheduler.simulate ~gpus:16 pol jobs in
      Table.add_row t
        [ Opt.Scheduler.policy_name pol; Table.fcell ~prec:3 m.Opt.Scheduler.utilization;
          Table.fcell ~prec:1 m.Opt.Scheduler.mean_wait;
          Table.fcell ~prec:1 m.Opt.Scheduler.max_wait ])
    [ Opt.Scheduler.Fcfs; Opt.Scheduler.Fcfs_backfill; Opt.Scheduler.Sjf;
      Opt.Scheduler.Sjf_quota 0.5 ];
  (* throttling *)
  let mean_duration = exp (1.0 +. (0.6 *. 0.6 /. 2.0)) in
  let cap = Opt.Scheduler.capacity ~gpus:8 ~mean_duration in
  let wait rate =
    let js = Opt.Scheduler.poisson_workload ~rng ~rate ~horizon:2000.0 () in
    (Opt.Scheduler.simulate ~gpus:8 Opt.Scheduler.Sjf js).Opt.Scheduler.mean_wait
  in
  (* topology optimization *)
  let design = Opt.Topopt.create ~nx:20 ~ny:16 () in
  ignore (Opt.Topopt.optimize ~iters:40 design);
  let p100_tex = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.p100 ~textures:true in
  let p100_no = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.p100 ~textures:false in
  let v100_tex = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.v100 ~textures:true in
  let v100_no = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.v100 ~textures:false in
  section "Sec 4.7 — Opt scheduler + topology optimization"
    (Fmt.str
       "%smean wait at 130%% of capacity: %.1f s; throttled to 80%%: %.1f s (throttle below capacity)\n\
        topopt: %d CG iterations total, final volume %.2f, compliance %.0f\n\
        texture cache: P100 %.2f -> %.2f ms (matters); V100 %.2f -> %.2f ms (moot on Volta)\n"
       (Table.render t) (wait (1.3 *. cap)) (wait (0.8 *. cap))
       design.Opt.Topopt.cg_iters_total (Opt.Topopt.volume design)
       design.Opt.Topopt.compliance
       (p100_no *. 1e3) (p100_tex *. 1e3) (v100_no *. 1e3) (v100_tex *. 1e3))

(* ------------------------------------------------------------------ *)
(* Sec 4.5: KAVG vs ASGD                                               *)
(* ------------------------------------------------------------------ *)

let kavg () =
  let sizes = [| 12; 16; 4 |] in
  let task () = Dlearn.Distributed.make_task ~rng:(Rng.create 55) ~spread:1.6 () in
  (* the practical regime the paper describes: at a learning rate chosen
     for fast convergence, stale ASGD gradients destabilize the descent *)
  let asgd =
    Dlearn.Distributed.asgd ~rng:(Rng.create 56) ~learners:8 ~steps:800 ~batch:16
      ~lr:0.2 ~staleness:16 sizes (task ())
  in
  let kv =
    Dlearn.Distributed.kavg ~rng:(Rng.create 56) ~learners:8 ~rounds:100 ~k:8
      ~batch:16 ~lr:0.2 sizes (task ())
  in
  let sync =
    Dlearn.Distributed.sync_sgd ~rng:(Rng.create 56) ~learners:8 ~steps:800
      ~batch:16 ~lr:0.2 sizes (task ())
  in
  let t = Table.create ~title:"Sec 4.5: distributed training, equal gradient budget"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "algorithm"; "final loss"; "accuracy"; "sim time (s)" ] in
  List.iter
    (fun (name, (r : Dlearn.Distributed.run)) ->
      Table.add_row t
        [ name; Table.fcell r.Dlearn.Distributed.final_loss;
          Table.fcell ~prec:3 r.Dlearn.Distributed.final_accuracy;
          Table.fcell ~prec:4 r.Dlearn.Distributed.simulated_seconds ])
    [ ("sync SGD", sync); ("ASGD (staleness 8)", asgd); ("KAVG (K=8)", kv) ];
  section "Sec 4.5 — KAVG vs ASGD (paper: KAVG scales better; optimal K > 1)"
    (Table.render t)

(* ------------------------------------------------------------------ *)
(* Sec 4.11: GPUDirect crossover                                       *)
(* ------------------------------------------------------------------ *)

let gpudirect () =
  let t = Table.create ~title:"Sec 4.11: transfer time (us) by message size"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Left |]
      [ "bytes"; "GPUDirect"; "cudaMemcpy"; "winner" ] in
  List.iter
    (fun bytes ->
      let gd = Hwsim.Link.transfer_time Hwsim.Link.gpudirect ~bytes in
      let cm = Hwsim.Link.transfer_time Hwsim.Link.cuda_memcpy ~bytes in
      Table.add_row t
        [ Fmt.str "%.0f" bytes; Table.fcell ~prec:2 (gd *. 1e6);
          Table.fcell ~prec:2 (cm *. 1e6);
          (if gd < cm then "GPUDirect" else "cudaMemcpy") ])
    [ 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0; 262144.0 ];
  let um = Hwsim.Link.unified_memory_transfer ~link:Hwsim.Link.nvlink2 ~bytes:65536.0 in
  section "Sec 4.11 — GPUDirect vs cudaMemcpy (paper: crossover at a few KB)"
    (Fmt.str "%sCUDA Unified Memory moves 64 KiB blocks: %.2f us per block\n"
       (Table.render t) (um *. 1e6))

(* ------------------------------------------------------------------ *)
(* Sec 4.1: Cardioid                                                   *)
(* ------------------------------------------------------------------ *)

let cardioid () =
  let t = Table.create ~title:"Sec 4.1: Cardioid reaction-kernel variants"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "variant"; "flops/cell"; "coeff loads/cell"; "us/step (1M cells, V100)" ] in
  List.iter
    (fun v ->
      let tm =
        Cardioid.Monodomain.time_per_step ~variant:v ~cells:1_000_000
          Cardioid.Monodomain.All_gpu
      in
      Table.add_row t
        [ Cardioid.Ionic.variant_name v;
          Table.fcell ~prec:0 (Cardioid.Ionic.variant_flops v);
          string_of_int (Cardioid.Ionic.variant_loads v);
          Table.fcell ~prec:1 (tm *. 1e6) ])
    [ Cardioid.Ionic.Libm; Cardioid.Ionic.Rational; Cardioid.Ionic.Rational_folded ];
  let t2 = Table.create ~title:"placement study (1M cells, us/step)"
      ~aligns:[| Table.Left; Table.Right |] [ "placement"; "us/step" ] in
  List.iter
    (fun pl ->
      Table.add_row t2
        [ Cardioid.Monodomain.placement_name pl;
          Table.fcell ~prec:1
            (Cardioid.Monodomain.time_per_step ~cells:1_000_000 pl *. 1e6) ])
    [ Cardioid.Monodomain.All_cpu; Cardioid.Monodomain.Split_cpu_gpu;
      Cardioid.Monodomain.All_gpu ];
  (* real tissue wave *)
  let m = Cardioid.Monodomain.create ~nx:24 ~ny:8 ~variant:Cardioid.Ionic.Rational () in
  Cardioid.Monodomain.stimulate m ~ilo:0 ~ihi:2 ~jlo:0 ~jhi:7 ~amplitude:60.0;
  let far = ref (-1) in
  for s = 1 to 40 do
    Cardioid.Monodomain.run m ~steps:25;
    if s = 6 then Cardioid.Monodomain.clear_stimulus m;
    if !far < 0 && Cardioid.Monodomain.activated m ~i:23 ~j:4 then far := s * 25
  done;
  section "Sec 4.1 — Cardioid (paper: rational polys + compile-time constants; keep data on GPU)"
    (Fmt.str "%s%sreal monodomain wave reached the far edge after %d steps\n"
       (Table.render t) (Table.render t2) !far)

(* ------------------------------------------------------------------ *)
(* Sec 4.10.1: hypre BoxLoops + BoomerAMG                               *)
(* ------------------------------------------------------------------ *)

let hypre () =
  (* structured BoxLoop solver across backends: same numerics, different
     simulated cost *)
  let t = Table.create ~title:"Sec 4.10.1: structured BoxLoop solver backends (64^2 Poisson)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "backend"; "sweeps"; "simulated ms" ] in
  List.iter
    (fun policy ->
      let clock = Hwsim.Clock.create () in
      let device =
        if Prog.Policy.side policy = Prog.Policy.Host then Hwsim.Device.power9
        else Hwsim.Device.v100
      in
      let ctx = Prog.Exec.make_ctx ~policy ~device ~clock () in
      let s = Hypre.Boxloop.Struct_solver.create 64 64 in
      s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 32 32) <- 1.0;
      let sweeps, _ = Hypre.Boxloop.Struct_solver.solve ~tol:1e-6 ctx s in
      Table.add_row t
        [ Prog.Policy.name policy; string_of_int sweeps;
          Table.fcell ~prec:2 (Hwsim.Clock.total clock *. 1e3) ])
    [ Prog.Policy.Openmp 22; Prog.Policy.Omp_target; Prog.Policy.Raja_cuda;
      Prog.Policy.Cuda ];
  (* BoomerAMG on a 3D problem; the solve-phase V-cycle is priced at the
     paper's production scale (200^3 unknowns) where launch overheads are
     amortized *)
  let a = Linalg.Csr.laplacian_3d 12 12 12 in
  let amg = Hypre.Boomeramg.setup a in
  let b = Array.make 1728 1.0 in
  let r = Hypre.Boomeramg.pcg_solve ~tol:1e-10 amg b (Array.make 1728 0.0) in
  let w = Hypre.Boomeramg.v_cycle_work amg in
  let scale = (200.0 ** 3.0) /. 1728.0 in
  let w_big = { (Hwsim.Kernel.scale scale w) with Hwsim.Kernel.launches = w.Hwsim.Kernel.launches } in
  let gpu_t = Hwsim.Roofline.time Hwsim.Device.v100 w_big in
  let cpu_t = Hwsim.Roofline.time Hwsim.Device.power9 w_big in
  section "Sec 4.10.1 — hypre"
    (Fmt.str
       "%sBoomerAMG 12^3 Laplacian: %d levels, operator complexity %.2f, PCG converged in %d iters\n\
        solve-phase V-cycle at 200^3 scale (spmv-shaped): %.1f ms on V100 vs %.1f ms on P9 (%.1fx)\n"
       (Table.render t) (Hypre.Boomeramg.num_levels amg)
       (Hypre.Boomeramg.operator_complexity amg) r.Linalg.Krylov.iters
       (gpu_t *. 1e3) (cpu_t *. 1e3) (cpu_t /. gpu_t))

(* ------------------------------------------------------------------ *)
(* Ablations: the design-choice studies behind the lessons learned      *)
(* ------------------------------------------------------------------ *)

let ablations () =
  let buf = Buffer.create 1024 in
  let addf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* 1. partial vs full assembly (MFEM's core rewrite) *)
  let mesh = Mfem.Mesh.create ~nx:8 ~ny:8 ~p:6 () in
  let basis = Mfem.Basis.create 6 in
  let pa = Mfem.Diffusion.Pa.setup mesh basis in
  let fa = Mfem.Diffusion.assemble mesh basis in
  let eff = Hwsim.Roofline.eff ~compute:0.5 ~bandwidth:0.75 () in
  let t_pa = Hwsim.Roofline.time ~eff Hwsim.Device.v100 (Mfem.Diffusion.Pa.work pa) in
  let t_fa = Hwsim.Roofline.time ~eff Hwsim.Device.v100 (Mfem.Diffusion.fa_work fa) in
  addf "PA vs FA (p=6, 8x8 elements): apply %.1f vs %.1f us (%.1fx), storage %.2f vs %.2f MB (%.1fx)"
    (t_pa *. 1e6) (t_fa *. 1e6) (t_fa /. t_pa)
    (Mfem.Diffusion.Pa.storage_bytes pa /. 1e6)
    (Mfem.Diffusion.fa_storage_bytes fa /. 1e6)
    (Mfem.Diffusion.fa_storage_bytes fa /. Mfem.Diffusion.Pa.storage_bytes pa);
  (* 2. JIT specialization: real wall-clock on this machine *)
  let mesh2 = Mfem.Mesh.create ~nx:24 ~ny:24 ~p:2 () in
  let basis2 = Mfem.Basis.create 2 in
  let pa2 = Mfem.Diffusion.Pa.setup mesh2 basis2 in
  let n2 = Mfem.Mesh.num_dofs mesh2 in
  let u = Array.init n2 (fun i -> sin (float_of_int i)) in
  let y = Array.make n2 0.0 in
  let wall f =
    let t0 = Sys.time () in
    for _ = 1 to 300 do
      f ()
    done;
    Sys.time () -. t0
  in
  let tg = wall (fun () -> Mfem.Diffusion.Pa.apply pa2 u y) in
  let ts = wall (fun () -> Mfem.Diffusion.Pa.apply_specialized pa2 u y) in
  addf "JIT specialization (p=2 unrolled, real wall time): %.1fx faster than the generic contraction"
    (tg /. max 1e-9 ts);
  (* 3. kernel fusion vs launch overhead (sw4lite) *)
  let g = Sw4.Grid.create ~nx:48 ~ny:48 ~h:100.0 in
  let t_split = Sw4.Scenario.variant_time_per_step g Sw4.Scenario.Naive_cuda in
  let t_fused = Sw4.Scenario.variant_time_per_step ~fused:true g Sw4.Scenario.Naive_cuda in
  addf "kernel fusion (48^2 stencil): %.1f -> %.1f us/step (%.0f%% of the small-grid step was launch overhead)"
    (t_split *. 1e6) (t_fused *. 1e6)
    ((t_split -. t_fused) /. t_split *. 100.0);
  (* 4. shuffle levers in isolation *)
  let lever jvm shuffle tree =
    let cfg =
      { (Sparkle.Cluster.default_config ~nodes:32 ()) with
        Sparkle.Cluster.jvm_optimized = jvm; adaptive_shuffle = shuffle;
        tree_aggregate = tree }
    in
    let c = Sparkle.Cluster.create cfg in
    for _ = 1 to 5 do
      Lda.Fig2.charge_iteration c Lda.Fig2.wikipedia
    done;
    Sparkle.Cluster.elapsed c
  in
  let base = lever false false false in
  addf "Fig 2 lever decomposition (speedup over default): jvm-only %.2fx, adaptive-shuffle-only %.2fx, tree-aggregate-only %.2fx, all %.2fx"
    (base /. lever true false false)
    (base /. lever false true false)
    (base /. lever false false true)
    (base /. lever true true true);
  (* 5. Data Broker vs both shuffle paths *)
  let c = Sparkle.Cluster.create (Sparkle.Cluster.default_config ~nodes:32 ()) in
  let db = Sparkle.Databroker.create c in
  let bytes = Lda.Fig2.wikipedia.Lda.Fig2.distinct_pairs *. 16.0 *. 8.0 in
  let broker_t = Sparkle.Databroker.shuffle_cost db ~bytes ~tuples:10_000_000 in
  let default_c = Sparkle.Cluster.create (Sparkle.Cluster.default_config ~nodes:32 ()) in
  Sparkle.Cluster.charge_shuffle default_c ~bytes;
  let adaptive_c = Sparkle.Cluster.create (Sparkle.Cluster.optimized_config ~nodes:32 ()) in
  Sparkle.Cluster.charge_shuffle adaptive_c ~bytes;
  addf "Data Broker shuffle (Wikipedia-scale): %.0f s vs default %.0f s vs adaptive %.0f s"
    broker_t
    (Hwsim.Clock.phase default_c.Sparkle.Cluster.clock "shuffle")
    (Hwsim.Clock.phase adaptive_c.Sparkle.Cluster.clock "shuffle");
  (* 6. PFMG vs Jacobi (structured-solver algorithms) *)
  let run_pfmg () =
    let clock = Hwsim.Clock.create () in
    let ctx = Prog.Exec.make_ctx ~policy:Prog.Policy.Cuda ~device:Hwsim.Device.v100 ~clock () in
    let t = Hypre.Pfmg.create 63 in
    let f = Hypre.Pfmg.finest t in
    f.Hypre.Pfmg.b.(Hypre.Pfmg.idx f 32 32) <- 1.0;
    let cycles, _ = Hypre.Pfmg.solve ~tol:1e-8 ctx t in
    (cycles, Hwsim.Clock.total clock)
  in
  let run_jacobi () =
    let clock = Hwsim.Clock.create () in
    let ctx = Prog.Exec.make_ctx ~policy:Prog.Policy.Cuda ~device:Hwsim.Device.v100 ~clock () in
    let s = Hypre.Boxloop.Struct_solver.create 65 65 in
    s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 32 32) <- 1.0;
    let sweeps, _ = Hypre.Boxloop.Struct_solver.solve ~tol:1e-8 ~max_sweeps:50000 ctx s in
    (sweeps, Hwsim.Clock.total clock)
  in
  let pc, pt = run_pfmg () and jc, jt = run_jacobi () in
  addf "structured solvers (63^2 Poisson): PFMG %d V-cycles (%.2f ms) vs Jacobi %d sweeps (%.2f ms) — %.0fx"
    pc (pt *. 1e3) jc (jt *. 1e3) (jt /. pt);
  (* 7. integrator work-precision on the oscillator at rtol 1e-6 *)
  let osc _t y = [| y.(1); -.y.(0) |] in
  let jac _t _y =
    Linalg.Dense.init 2 2 (fun i j -> if i = 0 && j = 1 then 1.0 else if i = 1 && j = 0 then -1.0 else 0.0)
  in
  let tf = 2.0 *. Float.pi in
  let bdf =
    Sundials.Cvode.bdf ~rtol:1e-6 ~atol:1e-9 ~rhs:osc
      ~lsolve:(Sundials.Cvode.dense_lsolve ~jac) ~t0:0.0 ~y0:[| 1.0; 0.0 |] tf
  in
  let erk =
    Sundials.Cvode.erk23 ~rtol:1e-6 ~atol:1e-9 ~rhs:osc ~t0:0.0 ~y0:[| 1.0; 0.0 |] tf
  in
  let adams =
    Sundials.Cvode.adams ~rtol:1e-6 ~atol:1e-9 ~rhs:osc ~t0:0.0 ~y0:[| 1.0; 0.0 |] tf
  in
  addf "integrator work-precision (oscillator, rtol 1e-6): BDF %d f-evals / err %.1e; ERK23 %d / %.1e; Adams %d / %.1e"
    bdf.Sundials.Cvode.stats.Sundials.Cvode.nfevals
    (Float.abs (bdf.Sundials.Cvode.y.(0) -. 1.0))
    erk.Sundials.Cvode.stats.Sundials.Cvode.nfevals
    (Float.abs (erk.Sundials.Cvode.y.(0) -. 1.0))
    adams.Sundials.Cvode.stats.Sundials.Cvode.nfevals
    (Float.abs (adams.Sundials.Cvode.y.(0) -. 1.0));
  (* 8. CPU fusion regression (Sec 4.8's dual lesson) *)
  let inputs8 =
    List.map
      (fun a -> (a, Array.init 64 (fun i -> float_of_int i)))
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
  in
  let base_k = Paradyn.Ir.paradyn_kernel in
  let _, cb = Paradyn.Interp.run base_k ~inputs:inputs8 in
  let _, cf = Paradyn.Interp.run (Paradyn.Passes.fuse base_k) ~inputs:inputs8 in
  addf "CPU fusion regression: small loops %.2f ms vs hand-fused %.2f ms on P9 (why SLNSP had to live in the compiler)"
    (Paradyn.Interp.cpu_time ~n:4_000_000 ~fused_source:false cb *. 1e3)
    (Paradyn.Interp.cpu_time ~n:4_000_000 ~fused_source:true cf *. 1e3);
  (* 9. direction-optimizing BFS *)
  let rng = Rng.create 13 in
  let gph = Havoq.Graph.rmat ~rng ~scale:12 () in
  let src = ref 0 in
  for v = 0 to gph.Havoq.Graph.n - 1 do
    if Havoq.Graph.degree gph v > Havoq.Graph.degree gph !src then src := v
  done;
  let td = Havoq.Bfs.top_down gph ~src:!src in
  let hy = Havoq.Bfs.hybrid gph ~src:!src in
  addf "direction-optimizing BFS (RMAT scale 12): %.1fx fewer edge inspections than top-down"
    (float_of_int td.Havoq.Bfs.edges_traversed /. float_of_int hy.Havoq.Bfs.edges_traversed);
  section "Ablations — the design choices behind the lessons learned"
    (Buffer.contents buf)

(* ------------------------------------------------------------------ *)

(** (id, description, harness) for every reproduced result. *)
let all : (string * string * (unit -> string)) list =
  [
    ("table1", "Completed iCoE activities and approaches", fun () ->
        Table.render (Registry.table1 ()));
    ("fig2", "SparkPlug LDA default vs optimized", fig2);
    ("table2", "Historical graph scale and GTEPS", table2);
    ("table3", "Three-stream video accuracies", table3);
    ("fig3", "LBANN scaling to 2048 GPUs", fig3);
    ("fig6", "ParaDyn SLNSP + dead-store elimination", fig6);
    ("fig8", "Nonlinear diffusion timing breakdown", fig8);
    ("table4", "Integrated-stack GPU speedups", table4);
    ("table5", "CleverLeaf on SAMRAI", table5);
    ("fig9", "VBL phase-defect ripples", fig9);
    ("cretin", "Cretin node speedups (Sec 4.3)", cretin);
    ("md", "ddcMD vs GROMACS (Sec 4.6)", md);
    ("sw4", "SW4 variants and node throughput (Sec 4.9)", sw4);
    ("opt", "Opt scheduler + topology optimization (Sec 4.7)", opt_sched);
    ("kavg", "KAVG vs ASGD (Sec 4.5)", kavg);
    ("gpudirect", "GPUDirect crossover (Sec 4.11)", gpudirect);
    ("cardioid", "Cardioid DSL + placement (Sec 4.1)", cardioid);
    ("hypre", "hypre BoxLoops + BoomerAMG (Sec 4.10.1)", hypre);
    ("ablations", "Design-choice studies behind the lessons learned", ablations);
  ]

let find id = List.find_opt (fun (i, _, _) -> i = id) all

let run_all () =
  String.concat "\n" (List.map (fun (_, _, f) -> f ()) all)
