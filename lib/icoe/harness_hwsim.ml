(** Sec 4.11: the GPUDirect vs cudaMemcpy crossover on the link model. *)

open Icoe_util

let gpudirect () =
  let t = Table.create ~title:"Sec 4.11: transfer time (us) by message size"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Left |]
      [ "bytes"; "GPUDirect"; "cudaMemcpy"; "winner" ] in
  List.iter
    (fun bytes ->
      let gd = Hwsim.Link.transfer_time Hwsim.Link.gpudirect ~bytes in
      let cm = Hwsim.Link.transfer_time Hwsim.Link.cuda_memcpy ~bytes in
      Table.add_row t
        [ Fmt.str "%.0f" bytes; Table.fcell ~prec:2 (gd *. 1e6);
          Table.fcell ~prec:2 (cm *. 1e6);
          (if gd < cm then "GPUDirect" else "cudaMemcpy") ])
    [ 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0; 262144.0 ];
  let um = Hwsim.Link.unified_memory_transfer ~link:Hwsim.Link.nvlink2 ~bytes:65536.0 in
  Harness.section "Sec 4.11 — GPUDirect vs cudaMemcpy (paper: crossover at a few KB)"
    (Fmt.str "%sCUDA Unified Memory moves 64 KiB blocks: %.2f us per block\n"
       (Table.render t) (um *. 1e6))

let harnesses =
  [
    Harness.make ~id:"gpudirect" ~description:"GPUDirect crossover (Sec 4.11)"
      ~tags:[ "study"; "activity:hwsim" ]
      gpudirect;
  ]
