(** Cross-generation interconnect study (ROADMAP item 3): the paper's
    flagship workloads re-priced on exascale-era hierarchical topologies
    — Sierra's flat dual-rail EDR against Frontier's Slingshot dragonfly
    and a Grace-Hopper NDR fat tree — under contiguous vs scattered
    placement, strong-scaling to 4096 nodes. *)

open Icoe_util

let machines =
  [ Hwsim.Node.sierra; Hwsim.Node.frontier; Hwsim.Node.grace_hopper ]

let mname (m : Hwsim.Node.machine) = m.Hwsim.Node.node.Hwsim.Node.name
let sweep = [ 64; 256; 512; 1024; 4096 ]

let gauge name ~help ~machine ~placement v =
  Icoe_obs.Metrics.set
    (Icoe_obs.Metrics.gauge
       ~labels:
         [
           ("machine", machine);
           ("placement", Hwsim.Topology.placement_name placement);
         ]
       ~help name)
    v

(* --- the machine zoo, through the pp_machine printer --- *)

let zoo_section () =
  Harness.section "Machine zoo — node composition and network parameters"
    (String.concat ""
       (List.map (fun m -> Fmt.str "%a\n" Hwsim.Node.pp_machine m) machines))

(* --- SW4 production campaign, strong-scaled across generations --- *)

let sw4_section () =
  let grid_points = 26.0e9 in
  let t =
    Table.create
      ~title:
        "SW4 Hayward campaign (26B points, s/step): strong scaling by \
         placement"
      ~aligns:
        [|
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right;
        |]
      [
        "machine"; "nodes"; "step (ms)"; "halo c (us)"; "halo r (us)"; "hops";
      ]
  in
  List.iter
    (fun (m : Hwsim.Node.machine) ->
      List.iter
        (fun nodes ->
          let step p =
            Sw4.Scenario.production_step_model ~overlap:true ~placement:p m
              ~nodes ~grid_points
          in
          let c = step Hwsim.Topology.Contiguous in
          let r = step Hwsim.Topology.Random_spread in
          let topo = m.Hwsim.Node.topology in
          let lc = Hwsim.Topology.crossing topo ~nodes Hwsim.Topology.Contiguous
          and lr =
            Hwsim.Topology.crossing topo ~nodes Hwsim.Topology.Random_spread
          in
          Table.add_row t
            [
              mname m;
              string_of_int nodes;
              Table.fcell ~prec:2 (c.Sw4.Scenario.step_s *. 1e3);
              Table.fcell ~prec:1 (c.Sw4.Scenario.halo_s *. 1e6);
              Table.fcell ~prec:1 (r.Sw4.Scenario.halo_s *. 1e6);
              Fmt.str "%d->%d"
                (Hwsim.Topology.hops topo ~level:lc)
                (Hwsim.Topology.hops topo ~level:lr);
            ];
          if nodes = 4096 then begin
            gauge "topo_sw4_step_seconds"
              ~help:"SW4 per-step seconds at 4096 nodes by placement"
              ~machine:(mname m) ~placement:Hwsim.Topology.Contiguous
              c.Sw4.Scenario.step_s;
            gauge "topo_sw4_step_seconds"
              ~help:"SW4 per-step seconds at 4096 nodes by placement"
              ~machine:(mname m) ~placement:Hwsim.Topology.Random_spread
              r.Sw4.Scenario.step_s
          end)
        sweep)
    machines;
  Harness.section
    "SW4 across generations — halo priced at the placement's switch crossing"
    (Table.render t)

(* --- ddcMD halo: a 4 MB domain-decomposition exchange per step --- *)

let md_section () =
  let t =
    Table.create
      ~title:"ddcMD 4 MB halo (us): placement sensitivity by gang size"
      ~aligns:
        [| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "machine"; "nodes"; "contiguous"; "reordered"; "random" ]
  in
  List.iter
    (fun (m : Hwsim.Node.machine) ->
      List.iter
        (fun nodes ->
          let halo p =
            Hwsim.Topology.gang_transfer_time m.Hwsim.Node.topology ~nodes
              ~placement:p ~bytes:4.0e6
          in
          Table.add_row t
            [
              mname m;
              string_of_int nodes;
              Table.fcell ~prec:1 (halo Hwsim.Topology.Contiguous *. 1e6);
              Table.fcell ~prec:1 (halo Hwsim.Topology.Rank_reordered *. 1e6);
              Table.fcell ~prec:1 (halo Hwsim.Topology.Random_spread *. 1e6);
            ])
        [ 128; 1024 ])
    machines;
  Harness.section "ddcMD across generations" (Table.render t)

(* --- KAVG: recursive-doubling allreduce across switch levels ---

   Per-round pair distances double, so a contiguous gang keeps its early
   rounds inside leaf subtrees while a scattered one pays the top level
   every round — the strict penalty the truth line below asserts. *)

let kavg_section () =
  let sizes = [| 256; 512; 128; 16 |] in
  let t =
    Table.create
      ~title:"KAVG round (ms): allreduce priced per recursive-doubling round"
      ~aligns:
        [| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "machine"; "learners"; "contig"; "random"; "penalty" ]
  in
  let strict = ref true in
  List.iter
    (fun (m : Hwsim.Node.machine) ->
      List.iter
        (fun learners ->
          let round p =
            (Dlearn.Distributed.kavg_round_model ~overlap:true
               ~topology:m.Hwsim.Node.topology ~placement:p ~learners ~k:8
               ~batch:32 sizes)
              .Dlearn.Distributed.round_s
          in
          let c = round Hwsim.Topology.Contiguous
          and r = round Hwsim.Topology.Random_spread in
          if
            learners >= 512
            && not (Hwsim.Topology.is_flat m.Hwsim.Node.topology)
          then strict := !strict && r > c;
          Table.add_row t
            [
              mname m; string_of_int learners; Table.fcell ~prec:3 (c *. 1e3);
              Table.fcell ~prec:3 (r *. 1e3); Table.fcell ~prec:3 (r /. c);
            ];
          if learners = 4096 then begin
            gauge "topo_kavg_round_seconds"
              ~help:"KAVG per-round seconds at 4096 learners by placement"
              ~machine:(mname m) ~placement:Hwsim.Topology.Contiguous c;
            gauge "topo_kavg_round_seconds"
              ~help:"KAVG per-round seconds at 4096 learners by placement"
              ~machine:(mname m) ~placement:Hwsim.Topology.Random_spread r
          end)
        [ 512; 1024; 4096 ])
    machines;
  (* the grep-able acceptance line: on both hierarchical machines, a
     scattered 512+-node gang is strictly slower than a contiguous one *)
  Harness.section "KAVG across generations"
    (Fmt.str
       "%struth: random placement strictly slower than contiguous at >=512 \
        nodes on Frontier and GraceHopper: %b\n"
       (Table.render t) !strict)

let topo () =
  zoo_section () ^ sw4_section () ^ md_section () ^ kavg_section ()

let harnesses =
  [
    Harness.make ~id:"topo"
      ~description:"Cross-generation topology/placement study (ROADMAP 3)"
      ~tags:[ "study"; "activity:hwsim" ]
      topo;
  ]
