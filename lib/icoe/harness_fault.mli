val harnesses : Harness.t list
(** The harnesses this activity contributes to {!Harness_registry.all}. *)
