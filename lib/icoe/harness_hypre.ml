(** Sec 4.10.1: hypre structured BoxLoop backends and BoomerAMG. *)

open Icoe_util

let hypre () =
  (* structured BoxLoop solver across backends: same numerics, different
     simulated cost *)
  let t = Table.create ~title:"Sec 4.10.1: structured BoxLoop solver backends (64^2 Poisson)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "backend"; "sweeps"; "simulated ms" ] in
  List.iter
    (fun policy ->
      let clock = Hwsim.Clock.create () in
      let device =
        if Prog.Policy.side policy = Prog.Policy.Host then Hwsim.Device.power9
        else Hwsim.Device.v100
      in
      let ctx = Prog.Exec.make_ctx ~policy ~device ~clock () in
      let s = Hypre.Boxloop.Struct_solver.create 64 64 in
      s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 32 32) <- 1.0;
      let sweeps, _ = Hypre.Boxloop.Struct_solver.solve ~tol:1e-6 ctx s in
      Table.add_row t
        [ Prog.Policy.name policy; string_of_int sweeps;
          Table.fcell ~prec:2 (Hwsim.Clock.total clock *. 1e3) ])
    [ Prog.Policy.Openmp 22; Prog.Policy.Omp_target; Prog.Policy.Raja_cuda;
      Prog.Policy.Cuda ];
  (* BoomerAMG on a 3D problem; the solve-phase V-cycle is priced at the
     paper's production scale (200^3 unknowns) where launch overheads are
     amortized *)
  let a = Linalg.Csr.laplacian_3d 12 12 12 in
  let amg = Hypre.Boomeramg.setup a in
  let b = Array.make 1728 1.0 in
  let r = Hypre.Boomeramg.pcg_solve ~tol:1e-10 amg b (Array.make 1728 0.0) in
  let w = Hypre.Boomeramg.v_cycle_work amg in
  let scale = (200.0 ** 3.0) /. 1728.0 in
  let w_big = { (Hwsim.Kernel.scale scale w) with Hwsim.Kernel.launches = w.Hwsim.Kernel.launches } in
  let gpu_t = Hwsim.Roofline.time Hwsim.Device.v100 w_big in
  let cpu_t = Hwsim.Roofline.time Hwsim.Device.power9 w_big in
  Harness.section "Sec 4.10.1 — hypre"
    (Fmt.str
       "%sBoomerAMG 12^3 Laplacian: %d levels, operator complexity %.2f, PCG converged in %d iters\n\
        solve-phase V-cycle at 200^3 scale (spmv-shaped): %.1f ms on V100 vs %.1f ms on P9 (%.1fx)\n"
       (Table.render t) (Hypre.Boomeramg.num_levels amg)
       (Hypre.Boomeramg.operator_complexity amg) r.Linalg.Krylov.iters
       (gpu_t *. 1e3) (cpu_t *. 1e3) (cpu_t /. gpu_t))

let harnesses =
  [
    Harness.make ~id:"hypre" ~description:"hypre BoxLoops + BoomerAMG (Sec 4.10.1)"
      ~tags:[ "study"; "activity:hypre" ]
      hypre;
  ]
