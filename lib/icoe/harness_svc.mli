(** Machine-as-a-service: multi-tenant job-stream simulation over the
    reproduced workloads (generalizes the Sec 4.7 scheduler study to
    node allocations on the Sierra model). *)

val harnesses : Harness.t list
(** The ["svc"] study. *)
