(** First-class experiment harnesses.

    A harness is one reproduced table/figure/study of the paper: an id,
    a human description, a set of tags, and a [run] function returning a
    structured {!outcome} instead of a bare string. The outcome carries
    the rendered report plus everything the observability layers caught
    while the harness ran — the {!Hwsim.Trace.t}s it recorded and the
    delta of the {!Icoe_obs.Metrics} default registry — so callers
    (the CLI, the bench executable, the tests) no longer scrape global
    state after the fact.

    Harnesses are registered in {!Harness_registry.all}; each activity
    contributes its own [Harness_*] module. *)

type outcome = {
  report : string;  (** rendered text, paper reference values alongside *)
  traces : (string * Hwsim.Trace.t) list;
      (** simulated-time traces recorded via {!record_trace} during the
          run, in recording order *)
  metrics : Icoe_obs.Metrics.sample list;
      (** what the run added to the default metrics registry
          ({!Icoe_obs.Metrics.diff} of snapshots taken around [run]) *)
  faults : (string * Icoe_fault.Checkpoint.report) list;
      (** checkpoint/restart reports recorded via {!record_faults}
          during the run — nonempty only when the harness ran under a
          fault plan (see {!Icoe_fault.Context}) *)
  artifacts : (string * (unit -> string)) list;
      (** named renderable artifacts (e.g. a cluster-occupancy Chrome
          trace) recorded via {!record_artifact}; kept as thunks so a
          potentially large document is only built when a caller
          actually writes it out *)
}

type t = {
  id : string;  (** stable CLI id, e.g. ["fig2"] *)
  description : string;
  tags : string list;
      (** kind tags ["figure"]/["table"]/["study"], an ["activity:*"]
          tag, and ["traced"] for harnesses that record spans *)
  run : unit -> outcome;
}

val make :
  id:string -> description:string -> ?tags:string list ->
  (unit -> string) -> t
(** [make ~id ~description ~tags f] wraps a report-producing function:
    [run] snapshots the default metrics registry around [f ()], scopes
    {!record_trace} to this run, and assembles the {!outcome}. *)

val record_trace : string -> Hwsim.Trace.t -> unit
(** Attach a named trace to the outcome of the harness currently
    running. Outside a harness body the trace is dropped. *)

val record_overlap : string -> float -> unit
(** [record_overlap id eff] sets the [overlap_efficiency{harness=id}]
    gauge in the default metrics registry: the harness's charged over
    serial-sum modeled seconds, in (0, 1]. Harnesses call it only when
    {!Hwsim.Sched.overlap_enabled} — under [ICOE_OVERLAP=0] the gauge is
    never registered, keeping serialized output bit-identical. *)

val record_blame : string -> Icoe_obs.Prof.analysis -> unit
(** [record_blame id a] sets the [prof_makespan_seconds],
    [prof_blame_seconds{phase}] and [prof_sensitivity_seconds{phase}]
    gauges for harness [id] ({!Icoe_obs.Prof.record_metrics}). Same
    gating contract as {!record_overlap}: call it only from
    overlap-gated sections so [ICOE_OVERLAP=0] runs never register
    [prof_*] metrics. *)

val record_artifact : string -> (unit -> string) -> unit
(** Attach a named artifact thunk to the outcome of the harness
    currently running. The thunk is forced only when a caller writes
    the artifact out. Outside a harness body it is dropped. *)

val record_faults : string -> Icoe_fault.Checkpoint.report -> unit
(** Attach a named checkpoint/restart report (time-to-solution
    inflation, recovery counts, lost work) to the outcome of the
    harness currently running. Outside a harness body it is dropped. *)

val section : string -> string -> string
(** [section title body] renders one report section ([### title]). *)

val simulated_seconds : outcome -> float
(** Sum of {!Hwsim.Trace.total} over the outcome's traces: the simulated
    time the harness accounted for (0 for untraced harnesses). *)

val rollup_report : (string * Hwsim.Trace.t) list -> string
(** Per-device/per-phase/top-span rollup tables for a set of named
    traces; [""] when the list is empty. *)
