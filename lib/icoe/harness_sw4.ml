(** Sec 4.9: SW4 kernel variants, node throughput, and the production
    Hayward campaign. *)

open Icoe_util

(* Comm/compute overlap of the production campaign: one step's
   interior/halo/boundary items charged through the stream scheduler.
   Emitted (and the overlap_efficiency gauge recorded) only when the
   scheduler overlaps, so ICOE_OVERLAP=0 output is untouched. *)
let overlap_section () =
  if not (Hwsim.Sched.overlap_enabled ()) then ""
  else begin
    let clock = Hwsim.Clock.create () in
    let tr = Hwsim.Trace.create ~root:"sw4-overlap" clock in
    let m =
      Sw4.Scenario.production_step_model ~trace:tr Hwsim.Node.sierra ~nodes:256
        ~grid_points:26.0e9
    in
    Harness.record_trace "sw4-overlap" tr;
    let eff = m.Sw4.Scenario.overlapped_s /. m.Sw4.Scenario.serial_s in
    Harness.record_overlap "sw4" eff;
    let blame = Icoe_obs.Prof.analyze ~overlap:true m.Sw4.Scenario.dag in
    Harness.record_blame "sw4" blame;
    Harness.section
      "Overlap — halo exchange hidden under interior compute (per step, 256 \
       Sierra nodes)"
      (Fmt.str
         "serial %.2f ms (point %.2f + halo %.2f); overlapped %.2f ms — only \
          the boundary shell (%.1f%% of points) waits for the halo\n\
          overlap efficiency: %.3f\n"
         (m.Sw4.Scenario.serial_s *. 1e3)
         (m.Sw4.Scenario.point_s *. 1e3)
         (m.Sw4.Scenario.halo_s *. 1e3)
         (m.Sw4.Scenario.overlapped_s *. 1e3)
         (100.0 *. m.Sw4.Scenario.boundary_frac)
         eff)
    ^ Harness.section
        "Critical-path blame — what the per-step makespan is waiting on"
        (Icoe_obs.Prof.report_section blame)
  end

let sw4 () =
  let res = Sw4.Scenario.run_hayward ~nx:120 ~ny:72 ~h:100.0 ~steps:300 () in
  let g = Sw4.Grid.create ~nx:512 ~ny:512 ~h:100.0 in
  let t = Table.create ~title:"Sec 4.9: sw4lite kernel variants (512^2 grid, s/step)"
      ~aligns:[| Table.Left; Table.Right |]
      [ "variant"; "time/step (ms)" ] in
  List.iter
    (fun v ->
      Table.add_row t
        [ Sw4.Scenario.variant_name v;
          Table.fcell ~prec:3 (Sw4.Scenario.variant_time_per_step g v *. 1e3) ])
    [ Sw4.Scenario.Cpu_openmp; Sw4.Scenario.Naive_cuda; Sw4.Scenario.Shared_cuda;
      Sw4.Scenario.Raja ];
  let sierra = Sw4.Scenario.node_throughput Hwsim.Node.witherspoon ~points:4_000_000 in
  let cori = Sw4.Scenario.node_throughput Hwsim.Node.cori_ii ~points:4_000_000 in
  (* the production Hayward campaign: 26B points, ~10 h on 256 Sierra nodes *)
  let gp = 26.0e9 and steps = 25_000 in
  let sierra_h =
    Sw4.Scenario.production_run_hours Hwsim.Node.sierra ~nodes:256 ~grid_points:gp ~steps
  in
  let cori_nodes =
    Sw4.Scenario.nodes_for_deadline Hwsim.Node.cori ~grid_points:gp ~steps ~hours:sierra_h
  in
  Harness.section "Sec 4.9 — SW4 seismic (paper: shared-mem ~2x, RAJA ~0.7x CUDA, 14X node throughput vs Cori)"
    (Fmt.str
       "%sSierra/Cori node throughput ratio: %.1fx\n\
        production Hayward campaign (26B points): %.1f h on 256 Sierra nodes (paper ~10 h);\n\
        Cori-II needs %d nodes (%.1fx more) for the same wall clock\n\
        real Hayward-like run: basin amplification %b over %d grid points\n"
       (Table.render t) (sierra /. cori) sierra_h cori_nodes
       (float_of_int cori_nodes /. 256.0)
       res.Sw4.Scenario.basin_amplified res.Sw4.Scenario.grid_points)
  ^ overlap_section ()

(* --- resilience: the production campaign under a seeded fault plan ---

   Each step of a small real solver stands in 1:1 for one step of the
   26B-point Hayward campaign, at the campaign's simulated per-step
   cost on 256 Sierra nodes. A failure rolls the real solver back to
   its last snapshot, so the faulted trajectory must reconverge to the
   bit-exact fault-free state — which is checked and reported. *)
let resilience_run (spec : Icoe_fault.Plan.spec) =
  let mk () =
    let g = Sw4.Grid.create ~nx:48 ~ny:40 ~h:100.0 in
    Sw4.Grid.homogeneous g ~rho:2600.0 ~vp:5000.0 ~vs:2900.0;
    let src =
      Sw4.Source.point_force ~i:24 ~j:20 ~fx:0.0 ~fy:1e9
        ~stf:(Sw4.Source.ricker ~f0:2.0 ~t0:0.6)
    in
    Sw4.Solver.create ~sources:[ src ] g
  in
  let steps = 400 in
  let step_cost_s =
    Sw4.Scenario.production_run_hours Hwsim.Node.sierra ~nodes:256
      ~grid_points:26.0e9 ~steps:25_000
    *. 3600.0 /. 25_000.0
  in
  let ideal_s = float_of_int steps *. step_cost_s in
  let plan = Icoe_fault.Plan.for_run spec ~ideal_s ~nodes:256 in
  (* burst-tier dump of the campaign state, and a partition restart *)
  let checkpoint_cost_s = 15.0 and restart_cost_s = 10.0 in
  let interval =
    Icoe_fault.Checkpoint.young_daly_steps ~mtbf_s:(Icoe_fault.Plan.mtbf plan)
      ~checkpoint_cost_s ~step_cost_s
  in
  let faulted = mk () in
  let report =
    Icoe_fault.Checkpoint.run ~plan ~step_cost_s ~checkpoint_cost_s
      ~restart_cost_s ~interval ~steps
      ~snapshot:(fun () -> Sw4.Solver.snapshot faulted)
      ~restore:(Sw4.Solver.restore faulted)
      ~step:(fun _ -> Sw4.Solver.step faulted)
      ()
  in
  let clean = mk () in
  for _ = 1 to steps do
    Sw4.Solver.step clean
  done;
  let identical =
    faulted.Sw4.Solver.ux = clean.Sw4.Solver.ux
    && faulted.Sw4.Solver.uy = clean.Sw4.Solver.uy
    && faulted.Sw4.Solver.steps = clean.Sw4.Solver.steps
  in
  (plan, interval, report, identical)

let resilience_section spec =
  let plan, interval, rep, identical = resilience_run spec in
  Harness.record_faults "sw4" rep;
  Harness.section
    "Resilience — Hayward campaign under a seeded fault plan"
    (Fmt.str
       "%a\nYoung/Daly checkpoint interval: %d steps (plan MTBF %.4g s, \
        checkpoint %.4g s)\n%a\nrecovered state identical to the \
        fault-free run: %b\n"
       Icoe_fault.Plan.pp_summary plan interval
       (Icoe_fault.Plan.mtbf plan) 15.0 Icoe_fault.Checkpoint.pp_report rep
       identical)

let sw4_with_faults () =
  let base = sw4 () in
  match Icoe_fault.Context.current () with
  | None -> base
  | Some spec -> base ^ resilience_section spec

let harnesses =
  [
    Harness.make ~id:"sw4" ~description:"SW4 variants and node throughput (Sec 4.9)"
      ~tags:[ "study"; "activity:sw4" ]
      sw4_with_faults;
  ]
