(** Sec 4.9: SW4 kernel variants, node throughput, and the production
    Hayward campaign. *)

open Icoe_util

let sw4 () =
  let res = Sw4.Scenario.run_hayward ~nx:120 ~ny:72 ~h:100.0 ~steps:300 () in
  let g = Sw4.Grid.create ~nx:512 ~ny:512 ~h:100.0 in
  let t = Table.create ~title:"Sec 4.9: sw4lite kernel variants (512^2 grid, s/step)"
      ~aligns:[| Table.Left; Table.Right |]
      [ "variant"; "time/step (ms)" ] in
  List.iter
    (fun v ->
      Table.add_row t
        [ Sw4.Scenario.variant_name v;
          Table.fcell ~prec:3 (Sw4.Scenario.variant_time_per_step g v *. 1e3) ])
    [ Sw4.Scenario.Cpu_openmp; Sw4.Scenario.Naive_cuda; Sw4.Scenario.Shared_cuda;
      Sw4.Scenario.Raja ];
  let sierra = Sw4.Scenario.node_throughput Hwsim.Node.witherspoon ~points:4_000_000 in
  let cori = Sw4.Scenario.node_throughput Hwsim.Node.cori_ii ~points:4_000_000 in
  (* the production Hayward campaign: 26B points, ~10 h on 256 Sierra nodes *)
  let gp = 26.0e9 and steps = 25_000 in
  let sierra_h =
    Sw4.Scenario.production_run_hours Hwsim.Node.sierra ~nodes:256 ~grid_points:gp ~steps
  in
  let cori_nodes =
    Sw4.Scenario.nodes_for_deadline Hwsim.Node.cori ~grid_points:gp ~steps ~hours:sierra_h
  in
  Harness.section "Sec 4.9 — SW4 seismic (paper: shared-mem ~2x, RAJA ~0.7x CUDA, 14X node throughput vs Cori)"
    (Fmt.str
       "%sSierra/Cori node throughput ratio: %.1fx\n\
        production Hayward campaign (26B points): %.1f h on 256 Sierra nodes (paper ~10 h);\n\
        Cori-II needs %d nodes (%.1fx more) for the same wall clock\n\
        real Hayward-like run: basin amplification %b over %d grid points\n"
       (Table.render t) (sierra /. cori) sierra_h cori_nodes
       (float_of_int cori_nodes /. 256.0)
       res.Sw4.Scenario.basin_amplified res.Sw4.Scenario.grid_points)

let harnesses =
  [
    Harness.make ~id:"sw4" ~description:"SW4 variants and node throughput (Sec 4.9)"
      ~tags:[ "study"; "activity:sw4" ]
      sw4;
  ]
