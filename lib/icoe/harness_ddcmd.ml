(** Sec 4.6: ddcMD vs GROMACS on the Martini membrane workload. *)

open Icoe_util

(* The ddcMD launch/kernel/halo pipeline through the stream scheduler,
   on the 4-GPU configuration (the one with both launch and halo traffic
   to hide). Emitted only when the scheduler overlaps, so ICOE_OVERLAP=0
   output is untouched. *)
let overlap_section () =
  if not (Hwsim.Sched.overlap_enabled ()) then ""
  else begin
    let clock = Hwsim.Clock.create () in
    let tr = Hwsim.Trace.create ~root:"md-overlap" clock in
    let m = Ddcmd.Perf.ddcmd_step_model ~trace:tr Ddcmd.Perf.Four_gpu in
    Harness.record_trace "md-overlap" tr;
    let eff = m.Ddcmd.Perf.overlapped_s /. m.Ddcmd.Perf.serial_s in
    Harness.record_overlap "md" eff;
    let blame = Icoe_obs.Prof.analyze ~overlap:true m.Ddcmd.Perf.dag in
    Harness.record_blame "md" blame;
    Harness.section
      "Overlap — launches and inter-GPU halo hidden under the kernel pipeline \
       (4-GPU step)"
      (Fmt.str
         "serial %.3f ms (%d kernel launches exposed); overlapped %.3f ms \
          (one launch exposed, halo under the back half)\n\
          overlap efficiency: %.3f\n"
         (m.Ddcmd.Perf.serial_s *. 1e3)
         Ddcmd.Perf.kernel_count
         (m.Ddcmd.Perf.overlapped_s *. 1e3)
         eff)
    ^ Harness.section
        "Critical-path blame — what the per-step makespan is waiting on"
        (Icoe_obs.Prof.report_section blame)
  end

let md () =
  (* real MD: small Martini-like patch with thermostat and constraints *)
  let rng = Rng.create 31 in
  let p = Ddcmd.Particles.create ~n:125 ~box:6.5 in
  Ddcmd.Particles.lattice_init p;
  Ddcmd.Particles.thermalize p ~rng ~temp:0.7;
  let e = Ddcmd.Engine.create ~dt:0.004 ~potential:(Ddcmd.Potential.lennard_jones ()) p in
  Ddcmd.Engine.run e ~steps:50;
  let e0 = Ddcmd.Engine.total_energy e in
  Ddcmd.Engine.run e ~steps:300;
  let drift = Float.abs (Ddcmd.Engine.total_energy e -. e0) /. Float.abs e0 in
  let t = Table.create ~title:"Sec 4.6: ddcMD vs GROMACS, Martini membrane (ms/step)"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Left |]
      [ "configuration"; "ddcMD"; "GROMACS"; "ratio"; "paper" ] in
  List.iter2
    (fun s paper ->
      let d, g = Ddcmd.Perf.step_times s in
      Table.add_row t
        [ Ddcmd.Perf.scenario_name s; Table.fcell ~prec:2 (d *. 1e3);
          Table.fcell ~prec:2 (g *. 1e3); Table.fcell ~prec:2 (g /. d); paper ])
    [ Ddcmd.Perf.One_gpu; Ddcmd.Perf.Four_gpu; Ddcmd.Perf.Mummi ]
    [ "2.31 vs 2.88"; "1.3x"; "2.3x" ];
  Harness.section "Sec 4.6 — MD performance"
    (Fmt.str "%sreal NVE run: 350 steps, relative energy drift %.1e\n"
       (Table.render t) drift)
  ^ overlap_section ()

let harnesses =
  [
    Harness.make ~id:"md" ~description:"ddcMD vs GROMACS (Sec 4.6)"
      ~tags:[ "study"; "activity:ddcmd" ]
      md;
  ]
