(** Sec 4.6: ddcMD vs GROMACS on the Martini membrane workload. *)

open Icoe_util

let md () =
  (* real MD: small Martini-like patch with thermostat and constraints *)
  let rng = Rng.create 31 in
  let p = Ddcmd.Particles.create ~n:125 ~box:6.5 in
  Ddcmd.Particles.lattice_init p;
  Ddcmd.Particles.thermalize p ~rng ~temp:0.7;
  let e = Ddcmd.Engine.create ~dt:0.004 ~potential:(Ddcmd.Potential.lennard_jones ()) p in
  Ddcmd.Engine.run e ~steps:50;
  let e0 = Ddcmd.Engine.total_energy e in
  Ddcmd.Engine.run e ~steps:300;
  let drift = Float.abs (Ddcmd.Engine.total_energy e -. e0) /. Float.abs e0 in
  let t = Table.create ~title:"Sec 4.6: ddcMD vs GROMACS, Martini membrane (ms/step)"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Left |]
      [ "configuration"; "ddcMD"; "GROMACS"; "ratio"; "paper" ] in
  List.iter2
    (fun s paper ->
      let d, g = Ddcmd.Perf.step_times s in
      Table.add_row t
        [ Ddcmd.Perf.scenario_name s; Table.fcell ~prec:2 (d *. 1e3);
          Table.fcell ~prec:2 (g *. 1e3); Table.fcell ~prec:2 (g /. d); paper ])
    [ Ddcmd.Perf.One_gpu; Ddcmd.Perf.Four_gpu; Ddcmd.Perf.Mummi ]
    [ "2.31 vs 2.88"; "1.3x"; "2.3x" ];
  Harness.section "Sec 4.6 — MD performance"
    (Fmt.str "%sreal NVE run: 350 steps, relative energy drift %.1e\n"
       (Table.render t) drift)

let harnesses =
  [
    Harness.make ~id:"md" ~description:"ddcMD vs GROMACS (Sec 4.6)"
      ~tags:[ "study"; "activity:ddcmd" ]
      md;
  ]
