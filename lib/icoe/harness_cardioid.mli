val harnesses : Harness.t list
(** The harnesses this activity contributes to {!Harness_registry.all}. *)

val resilience_run :
  Icoe_fault.Plan.spec ->
  Icoe_fault.Plan.t * int * Icoe_fault.Checkpoint.report * bool
(** Run the whole-heart model under a seeded fault plan with
    Young/Daly checkpointing of a real (small) tissue. Returns (plan,
    checkpoint interval in steps, report, recovered final state
    bit-identical to a fault-free run). Deterministic for a given
    spec. Also used by the bench JSON emitter. *)
