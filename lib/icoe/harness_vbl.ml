(** Fig 9: VBL phase defects and split-step propagation (Sec 4.12). *)

open Icoe_util

let fig9 () =
  let run defects =
    let b = Vbl.Beam.create ~n:256 ~width:0.05 () in
    Vbl.Beam.flat_top b;
    if defects then Vbl.Propagate.defect_screen ~defect_size:150e-6 ~depth:2.0 b;
    let c0 = Vbl.Beam.center_contrast b in
    Vbl.Propagate.run b ~distance:10.0 ~steps:5;
    (c0, Vbl.Beam.center_contrast b)
  in
  let c0_clean, c_clean = run false in
  let c0_def, c_def = run true in
  let t_raja = Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100 ~transpose_variant:`Naive in
  let t_cuda = Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100 ~transpose_variant:`Tiled in
  let t = Table.create ~title:"Fig 9: fluence modulation contrast after 10 m"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "beam"; "at z=0"; "at z=10m" ] in
  Table.add_row t [ "clean"; Table.fcell c0_clean; Table.fcell c_clean ];
  Table.add_row t [ "two 150um phase defects"; Table.fcell c0_def; Table.fcell c_def ];
  Harness.section "Fig 9 — VBL split-step propagation"
    (Fmt.str "%sripple growth %.0fx; transpose recoded in CUDA: split-step %.2f -> %.2f ms (%.1fx)\n"
       (Table.render t) (c_def /. max 1e-9 c_clean)
       (t_raja *. 1e3) (t_cuda *. 1e3) (t_raja /. t_cuda))

let harnesses =
  [
    Harness.make ~id:"fig9" ~description:"VBL phase-defect ripples"
      ~tags:[ "figure"; "activity:vbl" ]
      fig9;
  ]
