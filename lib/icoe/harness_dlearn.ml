(** The deep-learning activity (Sec 4.5): Table 3 video ensembles, Fig 3
    LBANN model-parallel scaling, and the KAVG vs ASGD study. *)

open Icoe_util

let table3 () =
  let rng = Rng.create 11 in
  let easy = Dlearn.Videonet.table3 ~rng Dlearn.Videonet.Easy in
  let hard = Dlearn.Videonet.table3 ~rng Dlearn.Videonet.Hard in
  let paper =
    [ (85.06, 61.44); (84.70, 56.34); (88.32, 58.69); (92.78, 75.16);
      (93.47, 77.45); (92.60, 81.24); (93.18, 80.33); (93.40, 66.40) ]
  in
  let t = Table.create ~title:"Table 3: validation accuracy (%), UCF101-like / HMDB51-like"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "Combination"; "easy"; "easy(paper)"; "hard"; "hard(paper)" ] in
  List.iteri
    (fun i ((c, a_easy), (_, a_hard)) ->
      let pe, ph = List.nth paper i in
      Table.add_row t
        [ Dlearn.Videonet.combiner_name c;
          Table.fcell ~prec:1 (100.0 *. a_easy); Table.fcell ~prec:1 pe;
          Table.fcell ~prec:1 (100.0 *. a_hard); Table.fcell ~prec:1 ph ])
    (List.combine easy hard);
  Harness.section "Table 3 — three-stream video action recognition" (Table.render t)

let fig3 () =
  let t = Table.create ~title:"Fig 3: LBANN scaling (V100 GPUs)"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "GPUs/sample"; "strong speedup vs 2"; "paper"; "weak eff to 2048" ] in
  List.iter2
    (fun g paper ->
      Table.add_row t
        [ string_of_int g;
          Table.fcell ~prec:2 (Dlearn.Lbann.strong_scaling_speedup g);
          paper;
          Table.fcell ~prec:2
            (Dlearn.Lbann.weak_scaling_efficiency ~g ~total0:(4 * g) ~total1:2048) ])
    [ 2; 4; 8; 16 ] [ "1.00"; "~2 (near-perfect)"; "2.8"; "3.4" ];
  Harness.section "Fig 3 — LBANN up to 2048 GPUs"
    (Fmt.str "%smodel needs %.0f GB > 16 GB/GPU: minimum %d GPUs per sample\n"
       (Table.render t) Dlearn.Lbann.model_memory_gb Dlearn.Lbann.min_gpus_per_sample)

(* KAVG's per-round wall clock through the stream scheduler: each
   layer's allreduce bucket on the "net" stream under backprop. Emitted
   only when the scheduler overlaps, so ICOE_OVERLAP=0 output is
   untouched. *)
let overlap_section sizes =
  if not (Hwsim.Sched.overlap_enabled ()) then ""
  else begin
    let clock = Hwsim.Clock.create () in
    let tr = Hwsim.Trace.create ~root:"kavg-overlap" clock in
    let m =
      Dlearn.Distributed.kavg_round_model ~trace:tr ~learners:8 ~k:8 ~batch:16
        sizes
    in
    Harness.record_trace "kavg-overlap" tr;
    Harness.record_overlap "kavg" m.Dlearn.Distributed.round_efficiency;
    let blame = Icoe_obs.Prof.analyze ~overlap:true m.Dlearn.Distributed.dag in
    Harness.record_blame "kavg" blame;
    Harness.section
      "Overlap — layer-bucketed weight-average allreduce under backprop \
       (per KAVG round)"
      (Fmt.str
         "serial %.4g s; overlapped %.4g s (%d layer buckets issued as \
          gradients complete)\noverlap efficiency: %.3f\n"
         m.Dlearn.Distributed.serial_round_s
         m.Dlearn.Distributed.overlapped_round_s
         (List.length (Dlearn.Distributed.layer_params sizes))
         m.Dlearn.Distributed.round_efficiency)
    ^ Harness.section
        "Critical-path blame — what the per-round makespan is waiting on"
        (Icoe_obs.Prof.report_section blame)
  end

let kavg () =
  let sizes = [| 12; 16; 4 |] in
  let task () = Dlearn.Distributed.make_task ~rng:(Rng.create 55) ~spread:1.6 () in
  (* the practical regime the paper describes: at a learning rate chosen
     for fast convergence, stale ASGD gradients destabilize the descent *)
  let asgd =
    Dlearn.Distributed.asgd ~rng:(Rng.create 56) ~learners:8 ~steps:800 ~batch:16
      ~lr:0.2 ~staleness:16 sizes (task ())
  in
  let kv =
    Dlearn.Distributed.kavg ~rng:(Rng.create 56) ~learners:8 ~rounds:100 ~k:8
      ~batch:16 ~lr:0.2 sizes (task ())
  in
  let sync =
    Dlearn.Distributed.sync_sgd ~rng:(Rng.create 56) ~learners:8 ~steps:800
      ~batch:16 ~lr:0.2 sizes (task ())
  in
  let t = Table.create ~title:"Sec 4.5: distributed training, equal gradient budget"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "algorithm"; "final loss"; "accuracy"; "sim time (s)" ] in
  List.iter
    (fun (name, (r : Dlearn.Distributed.run)) ->
      Table.add_row t
        [ name; Table.fcell r.Dlearn.Distributed.final_loss;
          Table.fcell ~prec:3 r.Dlearn.Distributed.final_accuracy;
          Table.fcell ~prec:4 r.Dlearn.Distributed.simulated_seconds ])
    [ ("sync SGD", sync); ("ASGD (staleness 8)", asgd); ("KAVG (K=8)", kv) ];
  Harness.section "Sec 4.5 — KAVG vs ASGD (paper: KAVG scales better; optimal K > 1)"
    (Table.render t)
  ^ overlap_section sizes

let harnesses =
  [
    Harness.make ~id:"table3" ~description:"Three-stream video accuracies"
      ~tags:[ "table"; "activity:dlearn" ]
      table3;
    Harness.make ~id:"fig3" ~description:"LBANN scaling to 2048 GPUs"
      ~tags:[ "figure"; "activity:dlearn" ]
      fig3;
    Harness.make ~id:"kavg" ~description:"KAVG vs ASGD (Sec 4.5)"
      ~tags:[ "study"; "activity:dlearn" ]
      kavg;
  ]
