(** Sec 4.1: Cardioid reaction-kernel variants, the placement study, and
    a real monodomain tissue wave. *)

open Icoe_util

let cardioid () =
  let t = Table.create ~title:"Sec 4.1: Cardioid reaction-kernel variants"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "variant"; "flops/cell"; "coeff loads/cell"; "us/step (1M cells, V100)" ] in
  List.iter
    (fun v ->
      let tm =
        Cardioid.Monodomain.time_per_step ~variant:v ~cells:1_000_000
          Cardioid.Monodomain.All_gpu
      in
      Table.add_row t
        [ Cardioid.Ionic.variant_name v;
          Table.fcell ~prec:0 (Cardioid.Ionic.variant_flops v);
          string_of_int (Cardioid.Ionic.variant_loads v);
          Table.fcell ~prec:1 (tm *. 1e6) ])
    [ Cardioid.Ionic.Libm; Cardioid.Ionic.Rational; Cardioid.Ionic.Rational_folded ];
  let t2 = Table.create ~title:"placement study (1M cells, us/step)"
      ~aligns:[| Table.Left; Table.Right |] [ "placement"; "us/step" ] in
  List.iter
    (fun pl ->
      Table.add_row t2
        [ Cardioid.Monodomain.placement_name pl;
          Table.fcell ~prec:1
            (Cardioid.Monodomain.time_per_step ~cells:1_000_000 pl *. 1e6) ])
    [ Cardioid.Monodomain.All_cpu; Cardioid.Monodomain.Split_cpu_gpu;
      Cardioid.Monodomain.All_gpu ];
  (* real tissue wave *)
  let m = Cardioid.Monodomain.create ~nx:24 ~ny:8 ~variant:Cardioid.Ionic.Rational () in
  Cardioid.Monodomain.stimulate m ~ilo:0 ~ihi:2 ~jlo:0 ~jhi:7 ~amplitude:60.0;
  let far = ref (-1) in
  for s = 1 to 40 do
    Cardioid.Monodomain.run m ~steps:25;
    if s = 6 then Cardioid.Monodomain.clear_stimulus m;
    if !far < 0 && Cardioid.Monodomain.activated m ~i:23 ~j:4 then far := s * 25
  done;
  Harness.section "Sec 4.1 — Cardioid (paper: rational polys + compile-time constants; keep data on GPU)"
    (Fmt.str "%s%sreal monodomain wave reached the far edge after %d steps\n"
       (Table.render t) (Table.render t2) !far)

(* --- resilience: a whole-heart beat under a seeded fault plan ---

   Each step of a small real tissue stands in 1:1 for one step of a
   400M-cell whole-heart simulation at its all-GPU simulated per-step
   cost. Checkpoints write the distributed state to the node-local
   NVMe burst tier; the interval is Young/Daly from the plan's MTBF.
   The mid-run [clear_stimulus] is keyed to the step index, so replay
   after a restore is exactly deterministic. *)
let resilience_run (spec : Icoe_fault.Plan.spec) =
  let mk () =
    let m =
      Cardioid.Monodomain.create ~nx:24 ~ny:8 ~variant:Cardioid.Ionic.Rational ()
    in
    Cardioid.Monodomain.stimulate m ~ilo:0 ~ihi:2 ~jlo:0 ~jhi:7 ~amplitude:60.0;
    m
  in
  let steps = 400 and cells = 400_000_000 and nodes = 64 in
  let step_cost_s =
    Cardioid.Monodomain.time_per_step ~cells Cardioid.Monodomain.All_gpu
  in
  let ideal_s = float_of_int steps *. step_cost_s in
  let plan = Icoe_fault.Plan.for_run spec ~ideal_s ~nodes in
  let state_bytes =
    float_of_int cells *. 8.0 *. float_of_int (Cardioid.Ionic.n_state + 1)
  in
  (* per-node NVMe dump of the distributed state; restart re-reads it
     and re-launches *)
  let checkpoint_cost_s =
    state_bytes /. float_of_int nodes /. (Hwsim.Link.nvme.Hwsim.Link.bw_gbs *. 1e9)
  in
  let restart_cost_s = 2.0 *. checkpoint_cost_s in
  let interval =
    Icoe_fault.Checkpoint.young_daly_steps ~mtbf_s:(Icoe_fault.Plan.mtbf plan)
      ~checkpoint_cost_s ~step_cost_s
  in
  let drive m i =
    if i = 150 then Cardioid.Monodomain.clear_stimulus m;
    Cardioid.Monodomain.step m
  in
  let faulted = mk () in
  let report =
    Icoe_fault.Checkpoint.run ~plan ~step_cost_s ~checkpoint_cost_s
      ~restart_cost_s ~interval ~steps
      ~snapshot:(fun () -> Cardioid.Monodomain.snapshot faulted)
      ~restore:(Cardioid.Monodomain.restore faulted)
      ~step:(drive faulted) ()
  in
  let clean = mk () in
  for i = 0 to steps - 1 do
    drive clean i
  done;
  let identical =
    faulted.Cardioid.Monodomain.v = clean.Cardioid.Monodomain.v
    && faulted.Cardioid.Monodomain.state = clean.Cardioid.Monodomain.state
  in
  (plan, interval, report, identical)

let resilience_section spec =
  let plan, interval, rep, identical = resilience_run spec in
  Harness.record_faults "cardioid" rep;
  Harness.section
    "Resilience — whole-heart run under a seeded fault plan"
    (Fmt.str
       "%a\nYoung/Daly checkpoint interval: %d steps (plan MTBF %.4g s)\n\
        %a\nrecovered state identical to the fault-free run: %b\n"
       Icoe_fault.Plan.pp_summary plan interval (Icoe_fault.Plan.mtbf plan)
       Icoe_fault.Checkpoint.pp_report rep identical)

let cardioid_with_faults () =
  let base = cardioid () in
  match Icoe_fault.Context.current () with
  | None -> base
  | Some spec -> base ^ resilience_section spec

let harnesses =
  [
    Harness.make ~id:"cardioid" ~description:"Cardioid DSL + placement (Sec 4.1)"
      ~tags:[ "study"; "activity:cardioid" ]
      cardioid_with_faults;
  ]
