(** Sec 4.1: Cardioid reaction-kernel variants, the placement study, and
    a real monodomain tissue wave. *)

open Icoe_util

let cardioid () =
  let t = Table.create ~title:"Sec 4.1: Cardioid reaction-kernel variants"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "variant"; "flops/cell"; "coeff loads/cell"; "us/step (1M cells, V100)" ] in
  List.iter
    (fun v ->
      let tm =
        Cardioid.Monodomain.time_per_step ~variant:v ~cells:1_000_000
          Cardioid.Monodomain.All_gpu
      in
      Table.add_row t
        [ Cardioid.Ionic.variant_name v;
          Table.fcell ~prec:0 (Cardioid.Ionic.variant_flops v);
          string_of_int (Cardioid.Ionic.variant_loads v);
          Table.fcell ~prec:1 (tm *. 1e6) ])
    [ Cardioid.Ionic.Libm; Cardioid.Ionic.Rational; Cardioid.Ionic.Rational_folded ];
  let t2 = Table.create ~title:"placement study (1M cells, us/step)"
      ~aligns:[| Table.Left; Table.Right |] [ "placement"; "us/step" ] in
  List.iter
    (fun pl ->
      Table.add_row t2
        [ Cardioid.Monodomain.placement_name pl;
          Table.fcell ~prec:1
            (Cardioid.Monodomain.time_per_step ~cells:1_000_000 pl *. 1e6) ])
    [ Cardioid.Monodomain.All_cpu; Cardioid.Monodomain.Split_cpu_gpu;
      Cardioid.Monodomain.All_gpu ];
  (* real tissue wave *)
  let m = Cardioid.Monodomain.create ~nx:24 ~ny:8 ~variant:Cardioid.Ionic.Rational () in
  Cardioid.Monodomain.stimulate m ~ilo:0 ~ihi:2 ~jlo:0 ~jhi:7 ~amplitude:60.0;
  let far = ref (-1) in
  for s = 1 to 40 do
    Cardioid.Monodomain.run m ~steps:25;
    if s = 6 then Cardioid.Monodomain.clear_stimulus m;
    if !far < 0 && Cardioid.Monodomain.activated m ~i:23 ~j:4 then far := s * 25
  done;
  Harness.section "Sec 4.1 — Cardioid (paper: rational polys + compile-time constants; keep data on GPU)"
    (Fmt.str "%s%sreal monodomain wave reached the far edge after %d steps\n"
       (Table.render t) (Table.render t2) !far)

let harnesses =
  [
    Harness.make ~id:"cardioid" ~description:"Cardioid DSL + placement (Sec 4.1)"
      ~tags:[ "study"; "activity:cardioid" ]
      cardioid;
  ]
