(** Fig 6: ParaDyn SLNSP and dead-store elimination (Sec 4.8). *)

open Icoe_util

let fig6 () =
  let rng = Rng.create 7 in
  let n = 1000 in
  let inputs =
    List.map
      (fun a -> (a, Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0)))
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
  in
  let base = Paradyn.Ir.paradyn_kernel in
  let slnsp = Paradyn.Passes.slnsp base in
  let dse = Paradyn.Passes.dse slnsp in
  let nbig = 4_000_000 in
  let t = Table.create ~title:"Fig 6: ParaDyn kernel execution (4M elements, V100 model)"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "variant"; "loads/elem"; "stores/elem"; "launches"; "time (ms)" ] in
  let times =
    List.map
      (fun (name, p) ->
        let _, c = Paradyn.Interp.run p ~inputs in
        let tm = Paradyn.Interp.gpu_time ~n:nbig c in
        Table.add_row t
          [ name; string_of_int c.Paradyn.Interp.loads;
            string_of_int c.Paradyn.Interp.stores;
            string_of_int c.Paradyn.Interp.launches;
            Table.fcell ~prec:3 (tm *. 1e3) ];
        tm)
      [ ("baseline", base); ("SLNSP", slnsp); ("SLNSP+DSE", dse) ]
  in
  match times with
  | [ t0; t1; t2 ] ->
      Harness.section "Fig 6 — ParaDyn compiler optimizations"
        (Fmt.str "%sSLNSP speedup %.2fx (paper: ~2x, matching load reduction); DSE adds %.0f%% (paper: 20%%)\n"
           (Table.render t) (t0 /. t1) (((t1 /. t2) -. 1.0) *. 100.0))
  | _ -> assert false

let harnesses =
  [
    Harness.make ~id:"fig6" ~description:"ParaDyn SLNSP + dead-store elimination"
      ~tags:[ "figure"; "activity:paradyn" ]
      fig6;
  ]
