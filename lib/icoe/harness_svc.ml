(** The machine as a shared service: multi-tenant job streams over the
    reproduced workloads (ROADMAP's "millions of users" direction,
    generalizing the Sec 4.7 scheduler study from a 16-GPU pool to node
    allocations on the Sierra model). *)

open Icoe_util
module Svc = Icoe_svc

let zipf_s = 1.1
let nodes = 256

let record_metrics (m : Svc.Cluster.metrics) =
  let labels = [ ("policy", m.Svc.Cluster.policy) ] in
  Icoe_obs.Metrics.set
    (Icoe_obs.Metrics.gauge ~labels
       ~help:"Sustained throughput of the service simulation"
       "svc_jobs_per_s")
    m.Svc.Cluster.jobs_per_s;
  Icoe_obs.Metrics.set
    (Icoe_obs.Metrics.gauge ~labels
       ~help:"Node utilization of the service simulation" "svc_utilization")
    m.Svc.Cluster.utilization;
  let hw =
    Icoe_obs.Metrics.histogram ~labels
      ~help:"Per-job queue wait in the service simulation" "svc_wait_seconds"
  in
  Array.iter (Icoe_obs.Metrics.observe hw) m.Svc.Cluster.waits;
  let ht =
    Icoe_obs.Metrics.histogram ~labels
      ~help:"Per-job turnaround in the service simulation"
      "svc_turnaround_seconds"
  in
  Array.iter (Icoe_obs.Metrics.observe ht) m.Svc.Cluster.turnarounds

let svc () =
  let machine = Svc.Catalog.machine ~nodes () in
  let classes = Svc.Catalog.default machine in
  let cap = Svc.Workload.capacity ~classes ~zipf_s ~nodes in
  (* policy study: one fixed stream at 90% of capacity through all four
     policies *)
  let horizon = 30_000.0 in
  let stream =
    Svc.Workload.generate ~rng:(Rng.create 77) ~classes ~zipf_s
      ~arrivals:(Svc.Workload.Poisson (0.9 *. cap)) ~horizon ()
  in
  let policies =
    [
      Svc.Cluster.Fcfs;
      Svc.Cluster.Easy_backfill;
      Svc.Cluster.Sjf_quota 0.5;
      Svc.Cluster.Partition 0.5;
    ]
  in
  let t =
    Table.create
      ~title:
        (Fmt.str "service: %d jobs on %d %s nodes (90%% of capacity)"
           (List.length stream) nodes machine.Hwsim.Node.node.Hwsim.Node.name)
      ~aligns:
        [|
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right;
        |]
      [
        "policy"; "jobs/s"; "util";
        "wait p50"; "p90"; "p99";
        "turn p50"; "p90"; "p99";
      ]
  in
  let results =
    List.map (fun pol -> Svc.Cluster.simulate ~nodes ~classes pol stream) policies
  in
  List.iter
    (fun (m : Svc.Cluster.metrics) ->
      record_metrics m;
      Table.add_row t
        [
          m.Svc.Cluster.policy;
          Table.fcell ~prec:4 m.Svc.Cluster.jobs_per_s;
          Table.fcell ~prec:3 m.Svc.Cluster.utilization;
          Table.fcell ~prec:0 m.Svc.Cluster.wait_p50;
          Table.fcell ~prec:0 m.Svc.Cluster.wait_p90;
          Table.fcell ~prec:0 m.Svc.Cluster.wait_p99;
          Table.fcell ~prec:0 m.Svc.Cluster.turn_p50;
          Table.fcell ~prec:0 m.Svc.Cluster.turn_p90;
          Table.fcell ~prec:0 m.Svc.Cluster.turn_p99;
        ])
    results;
  (* saturation sweep: the paper's throttling conclusion at machine
     scale — below capacity waits are bounded, above they grow with the
     horizon (unbounded queue) *)
  let sweep =
    List.map
      (fun mult ->
        let jobs =
          Svc.Workload.generate ~rng:(Rng.create 909) ~classes ~zipf_s
            ~arrivals:(Svc.Workload.Poisson (mult *. cap)) ~horizon:20_000.0 ()
        in
        (mult, Svc.Cluster.simulate ~nodes ~classes Svc.Cluster.Easy_backfill jobs))
      [ 0.8; 1.0; 1.3 ]
  in
  (* bursty arrivals at the same mean offered load as the 90% stream:
     burst dwell 600 s at 2.8x, quiet dwell 1800 s at 0.4x *)
  let r = 0.9 *. cap in
  let bursty_jobs =
    Svc.Workload.generate ~rng:(Rng.create 303) ~classes ~zipf_s
      ~arrivals:
        (Svc.Workload.Bursty
           {
             rate_hi = 2.8 *. r;
             rate_lo = 0.4 *. r;
             mean_hi_s = 600.0;
             mean_lo_s = 1800.0;
           })
      ~horizon ()
  in
  let bursty =
    Svc.Cluster.simulate ~nodes ~classes Svc.Cluster.Easy_backfill bursty_jobs
  in
  let easy = List.nth results 1 (* the Easy_backfill row above *) in
  (* occupancy Chrome trace of the 90%-capacity EASY run (nodes as
     pids, jobs as spans); a thunk so the multi-MB document is only
     built when icoe_report --occupancy asks for it *)
  Harness.record_artifact "svc-occupancy" (fun () ->
      Svc.Cluster.occupancy_chrome_json easy);
  Harness.section
    "Machine-as-a-service — multi-tenant job streams (Sec 4.7 at machine \
     scale)"
    (Fmt.str
       "%d tenant classes, Zipf s=%.1f popularity over harness ids; mean \
        demand %.0f node-s/job, capacity %.4f jobs/s\n\
        %s\
        saturation sweep (EASY backfill, 20000 s horizon): mean wait %.0f s \
        at 0.8x capacity, %.0f s at 1.0x, %.0f s at 1.3x (unbounded above \
        capacity, bounded below)\n\
        bursty arrivals (same offered load as the 90%% stream): mean wait \
        %.0f s vs %.0f s Poisson, p99 %.0f s vs %.0f s; p99/mean %.1fx vs \
        %.1fx (burstiness concentrates waiting in the tail)\n"
       (Array.length classes) zipf_s
       (Svc.Workload.mean_node_seconds ~classes ~zipf_s)
       cap (Table.render t)
       (let _, m = List.nth sweep 0 in m.Svc.Cluster.mean_wait)
       (let _, m = List.nth sweep 1 in m.Svc.Cluster.mean_wait)
       (let _, m = List.nth sweep 2 in m.Svc.Cluster.mean_wait)
       bursty.Svc.Cluster.mean_wait easy.Svc.Cluster.mean_wait
       bursty.Svc.Cluster.wait_p99 easy.Svc.Cluster.wait_p99
       (bursty.Svc.Cluster.wait_p99 /. bursty.Svc.Cluster.mean_wait)
       (easy.Svc.Cluster.wait_p99 /. easy.Svc.Cluster.mean_wait))

let harnesses =
  [
    Harness.make ~id:"svc"
      ~description:"Multi-tenant machine-as-a-service job streams"
      ~tags:[ "study"; "activity:svc" ]
      svc;
  ]
