(** Fig 8 and Table 4: the MFEM + hypre + SUNDIALS integrated stack
    (Sec 4.10). *)

open Icoe_util

let fig8 () =
  (* real integrated run; priced at the paper's 1M-DoF scale on the Fig 8
     hardware pair (1 P8 thread vs P100) *)
  let r = Mfem.Nldiff.run ~n:10 ~p:3 ~tf:0.004 () in
  let scale = 1.0e6 /. float_of_int r.Mfem.Nldiff.ndof in
  (* each device's breakdown is charged as spans under one device span,
     so the trace answers "where did the time go, on which device" *)
  let tr = Hwsim.Trace.create ~root:"fig8" (Hwsim.Clock.create ()) in
  let priced label (device : Hwsim.Device.t) policy =
    Hwsim.Trace.with_span tr ~device:device.Hwsim.Device.name label (fun () ->
        let f, p, s = Mfem.Nldiff.price ~scale r ~device ~policy in
        let dev = device.Hwsim.Device.name in
        Hwsim.Trace.charge tr ~device:dev ~phase:"formulation" f;
        Hwsim.Trace.charge tr ~device:dev ~phase:"preconditioner" p;
        Hwsim.Trace.charge tr ~device:dev ~phase:"solve" s;
        (f, p, s))
  in
  let fc, pc, sc = priced "nldiff/P8-serial" Hwsim.Device.power8 Prog.Policy.Serial in
  let fg, pg, sg = priced "nldiff/P100-cuda" Hwsim.Device.p100 Prog.Policy.Cuda in
  (* nest-counter reading over the GPU pass: cumulative DRAM traffic of
     the scaled V-cycles, attached to the root for context *)
  let ctr = Hwsim.Counters.create Hwsim.Device.p100 in
  Hwsim.Counters.sample ctr ~time:(fc +. pc +. sc) ~bytes:0.0;
  Hwsim.Counters.sample ctr
    ~time:(Hwsim.Trace.now tr)
    ~bytes:
      ((Hwsim.Kernel.scale scale r.Mfem.Nldiff.vcycle_work).Hwsim.Kernel.bytes
      *. float_of_int r.Mfem.Nldiff.counters.Mfem.Nldiff.vcycles);
  Hwsim.Trace.annotate_counters tr ctr;
  Harness.record_trace "fig8" tr;
  let t = Table.create ~title:"Fig 8: nonlinear diffusion timing breakdown (s, 1M DoF)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "phase"; "P8 (1 thread)"; "P100" ] in
  Table.add_row t [ "formulation"; Table.fcell ~prec:2 fc; Table.fcell ~prec:2 fg ];
  Table.add_row t [ "preconditioner"; Table.fcell ~prec:2 pc; Table.fcell ~prec:2 pg ];
  Table.add_row t [ "solve"; Table.fcell ~prec:2 sc; Table.fcell ~prec:2 sg ];
  Table.add_row t
    [ "TOTAL"; Table.fcell ~prec:2 (fc +. pc +. sc); Table.fcell ~prec:2 (fg +. pg +. sg) ];
  let c = r.Mfem.Nldiff.counters in
  Harness.section "Fig 8 — MFEM + hypre + SUNDIALS nonlinear diffusion"
    (Fmt.str
       "%sreal run: %d BDF steps, %d Newton iters, %d PCG iters, %d V-cycles; GPU/CPU speedup %.1fx\n"
       (Table.render t) r.Mfem.Nldiff.ode_stats.Sundials.Cvode.nsteps
       r.Mfem.Nldiff.ode_stats.Sundials.Cvode.nniters c.Mfem.Nldiff.pcg_iters
       c.Mfem.Nldiff.vcycles
       ((fc +. pc +. sc) /. (fg +. pg +. sg)))

let table4 () =
  let paper =
    [ (20.8e3, [ 2.88; 2.78; 4.97 ]); (82.6e3, [ 6.67; 8.00; 12.47 ]);
      (329.0e3, [ 10.59; 13.71; 19.00 ]); (1.313e6, [ 12.32; 14.36; 20.80 ]) ]
  in
  let t = Table.create ~title:"Table 4: GPU (P9+V100) speedup over serial CPU"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Right; Table.Left |]
      [ "Unknowns"; "p=2"; "p=4"; "p=8"; "paper (p=2/4/8)" ] in
  (* one real run per order; each size row scales the measured work *)
  let runs = List.map (fun p -> (p, Mfem.Nldiff.run ~n:(24 / p) ~p ~tf:0.004 ())) [ 2; 4; 8 ] in
  let tr = Hwsim.Trace.create ~root:"table4" (Hwsim.Clock.create ()) in
  List.iter
    (fun (unknowns, paper_row) ->
      let speedups =
        Hwsim.Trace.with_span tr (Fmt.str "unknowns=%.3g" unknowns) (fun () ->
            List.map
              (fun (p, r) ->
                let scale = unknowns /. float_of_int r.Mfem.Nldiff.ndof in
                let fc, pc, sc =
                  Mfem.Nldiff.price ~scale r ~device:Hwsim.Device.power9
                    ~policy:Prog.Policy.Serial
                in
                let fg, pg, sg =
                  Mfem.Nldiff.price ~scale r ~device:Hwsim.Device.v100
                    ~policy:Prog.Policy.Cuda
                in
                Hwsim.Trace.with_span tr (Fmt.str "p=%d" p) (fun () ->
                    Hwsim.Trace.charge tr ~device:"POWER9" ~phase:"cpu-serial"
                      (fc +. pc +. sc);
                    Hwsim.Trace.charge tr ~device:"V100" ~phase:"gpu-cuda"
                      (fg +. pg +. sg));
                (fc +. pc +. sc) /. (fg +. pg +. sg))
              runs)
      in
      Table.add_row t
        ([ Fmt.str "%.3g" unknowns ]
        @ List.map (Table.fcell ~prec:2) speedups
        @ [ String.concat "/" (List.map (Fmt.str "%.2f") paper_row) ]))
    paper;
  Harness.record_trace "table4" tr;
  Harness.section "Table 4 — integrated-stack GPU speedups" (Table.render t)

let harnesses =
  [
    Harness.make ~id:"fig8" ~description:"Nonlinear diffusion timing breakdown"
      ~tags:[ "figure"; "activity:mfem"; "traced" ]
      fig8;
    Harness.make ~id:"table4" ~description:"Integrated-stack GPU speedups"
      ~tags:[ "table"; "activity:mfem"; "traced" ]
      table4;
  ]
