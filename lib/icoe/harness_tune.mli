(** Heterogeneous work-partitioning auto-tuner study: {!Opt.Autotune}
    applied to the SW4/ddcMD/KAVG overlap-wired step models across a
    paper-era machine, Frontier and Grace-Hopper — tuned vs
    paper-default placements, exhaustive vs annealed search. *)

val harnesses : Harness.t list
(** The ["tune"] study. *)

type row = {
  kernel : string;  (** "sw4" | "md" | "kavg" *)
  machine : string;
  default_s : float;  (** paper-default (all-GPU, dedicated) makespan *)
  tuned_s : float;  (** tuned makespan; never worse than [default_s] *)
  split : float;  (** tuned accelerator share *)
  comm : string;  (** tuned communication placement *)
  speedup : float;  (** [default_s /. tuned_s] *)
  evaluations : int;
  mode : string;
}

val bench_rows : unit -> row list
(** One exhaustive tuning per machine x kernel on the default lattice —
    the ["tuner"] block of [BENCH_<id>.json]. Deterministic. *)
