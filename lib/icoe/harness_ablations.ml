(** Ablations: the design-choice studies behind the paper's lessons
    learned. Item 2 measures real wall-clock time, so this harness's
    report is inherently machine-dependent (the CI determinism diff
    skips it). *)

open Icoe_util

let ablations () =
  let buf = Buffer.create 1024 in
  let addf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* 1. partial vs full assembly (MFEM's core rewrite) *)
  let mesh = Mfem.Mesh.create ~nx:8 ~ny:8 ~p:6 () in
  let basis = Mfem.Basis.create 6 in
  let pa = Mfem.Diffusion.Pa.setup mesh basis in
  let fa = Mfem.Diffusion.assemble mesh basis in
  let eff = Hwsim.Roofline.eff ~compute:0.5 ~bandwidth:0.75 () in
  let t_pa = Hwsim.Roofline.time ~eff Hwsim.Device.v100 (Mfem.Diffusion.Pa.work pa) in
  let t_fa = Hwsim.Roofline.time ~eff Hwsim.Device.v100 (Mfem.Diffusion.fa_work fa) in
  addf "PA vs FA (p=6, 8x8 elements): apply %.1f vs %.1f us (%.1fx), storage %.2f vs %.2f MB (%.1fx)"
    (t_pa *. 1e6) (t_fa *. 1e6) (t_fa /. t_pa)
    (Mfem.Diffusion.Pa.storage_bytes pa /. 1e6)
    (Mfem.Diffusion.fa_storage_bytes fa /. 1e6)
    (Mfem.Diffusion.fa_storage_bytes fa /. Mfem.Diffusion.Pa.storage_bytes pa);
  (* 2. JIT specialization: real wall-clock on this machine *)
  let mesh2 = Mfem.Mesh.create ~nx:24 ~ny:24 ~p:2 () in
  let basis2 = Mfem.Basis.create 2 in
  let pa2 = Mfem.Diffusion.Pa.setup mesh2 basis2 in
  let n2 = Mfem.Mesh.num_dofs mesh2 in
  let u = Array.init n2 (fun i -> sin (float_of_int i)) in
  let y = Array.make n2 0.0 in
  let wall f =
    let t0 = Sys.time () in
    for _ = 1 to 300 do
      f ()
    done;
    Sys.time () -. t0
  in
  let tg = wall (fun () -> Mfem.Diffusion.Pa.apply pa2 u y) in
  let ts = wall (fun () -> Mfem.Diffusion.Pa.apply_specialized pa2 u y) in
  addf "JIT specialization (p=2 unrolled, real wall time): %.1fx faster than the generic contraction"
    (tg /. max 1e-9 ts);
  (* 3. kernel fusion vs launch overhead (sw4lite) *)
  let g = Sw4.Grid.create ~nx:48 ~ny:48 ~h:100.0 in
  let t_split = Sw4.Scenario.variant_time_per_step g Sw4.Scenario.Naive_cuda in
  let t_fused = Sw4.Scenario.variant_time_per_step ~fused:true g Sw4.Scenario.Naive_cuda in
  addf "kernel fusion (48^2 stencil): %.1f -> %.1f us/step (%.0f%% of the small-grid step was launch overhead)"
    (t_split *. 1e6) (t_fused *. 1e6)
    ((t_split -. t_fused) /. t_split *. 100.0);
  (* 4. shuffle levers in isolation *)
  let lever jvm shuffle tree =
    let cfg =
      { (Sparkle.Cluster.default_config ~nodes:32 ()) with
        Sparkle.Cluster.jvm_optimized = jvm; adaptive_shuffle = shuffle;
        tree_aggregate = tree }
    in
    let c = Sparkle.Cluster.create cfg in
    for _ = 1 to 5 do
      Lda.Fig2.charge_iteration c Lda.Fig2.wikipedia
    done;
    Sparkle.Cluster.elapsed c
  in
  let base = lever false false false in
  addf "Fig 2 lever decomposition (speedup over default): jvm-only %.2fx, adaptive-shuffle-only %.2fx, tree-aggregate-only %.2fx, all %.2fx"
    (base /. lever true false false)
    (base /. lever false true false)
    (base /. lever false false true)
    (base /. lever true true true);
  (* 5. Data Broker vs both shuffle paths *)
  let c = Sparkle.Cluster.create (Sparkle.Cluster.default_config ~nodes:32 ()) in
  let db = Sparkle.Databroker.create c in
  let bytes = Lda.Fig2.wikipedia.Lda.Fig2.distinct_pairs *. 16.0 *. 8.0 in
  let broker_t = Sparkle.Databroker.shuffle_cost db ~bytes ~tuples:10_000_000 in
  let default_c = Sparkle.Cluster.create (Sparkle.Cluster.default_config ~nodes:32 ()) in
  Sparkle.Cluster.charge_shuffle default_c ~bytes;
  let adaptive_c = Sparkle.Cluster.create (Sparkle.Cluster.optimized_config ~nodes:32 ()) in
  Sparkle.Cluster.charge_shuffle adaptive_c ~bytes;
  addf "Data Broker shuffle (Wikipedia-scale): %.0f s vs default %.0f s vs adaptive %.0f s"
    broker_t
    (Hwsim.Clock.phase default_c.Sparkle.Cluster.clock "shuffle")
    (Hwsim.Clock.phase adaptive_c.Sparkle.Cluster.clock "shuffle");
  (* 6. PFMG vs Jacobi (structured-solver algorithms) *)
  let run_pfmg () =
    let clock = Hwsim.Clock.create () in
    let ctx = Prog.Exec.make_ctx ~policy:Prog.Policy.Cuda ~device:Hwsim.Device.v100 ~clock () in
    let t = Hypre.Pfmg.create 63 in
    let f = Hypre.Pfmg.finest t in
    f.Hypre.Pfmg.b.(Hypre.Pfmg.idx f 32 32) <- 1.0;
    let cycles, _ = Hypre.Pfmg.solve ~tol:1e-8 ctx t in
    (cycles, Hwsim.Clock.total clock)
  in
  let run_jacobi () =
    let clock = Hwsim.Clock.create () in
    let ctx = Prog.Exec.make_ctx ~policy:Prog.Policy.Cuda ~device:Hwsim.Device.v100 ~clock () in
    let s = Hypre.Boxloop.Struct_solver.create 65 65 in
    s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 32 32) <- 1.0;
    let sweeps, _ = Hypre.Boxloop.Struct_solver.solve ~tol:1e-8 ~max_sweeps:50000 ctx s in
    (sweeps, Hwsim.Clock.total clock)
  in
  let pc, pt = run_pfmg () and jc, jt = run_jacobi () in
  addf "structured solvers (63^2 Poisson): PFMG %d V-cycles (%.2f ms) vs Jacobi %d sweeps (%.2f ms) — %.0fx"
    pc (pt *. 1e3) jc (jt *. 1e3) (jt /. pt);
  (* 7. integrator work-precision on the oscillator at rtol 1e-6 *)
  let osc _t y = [| y.(1); -.y.(0) |] in
  let jac _t _y =
    Linalg.Dense.init 2 2 (fun i j -> if i = 0 && j = 1 then 1.0 else if i = 1 && j = 0 then -1.0 else 0.0)
  in
  let tf = 2.0 *. Float.pi in
  let bdf =
    Sundials.Cvode.bdf ~rtol:1e-6 ~atol:1e-9 ~rhs:osc
      ~lsolve:(Sundials.Cvode.dense_lsolve ~jac) ~t0:0.0 ~y0:[| 1.0; 0.0 |] tf
  in
  let erk =
    Sundials.Cvode.erk23 ~rtol:1e-6 ~atol:1e-9 ~rhs:osc ~t0:0.0 ~y0:[| 1.0; 0.0 |] tf
  in
  let adams =
    Sundials.Cvode.adams ~rtol:1e-6 ~atol:1e-9 ~rhs:osc ~t0:0.0 ~y0:[| 1.0; 0.0 |] tf
  in
  addf "integrator work-precision (oscillator, rtol 1e-6): BDF %d f-evals / err %.1e; ERK23 %d / %.1e; Adams %d / %.1e"
    bdf.Sundials.Cvode.stats.Sundials.Cvode.nfevals
    (Float.abs (bdf.Sundials.Cvode.y.(0) -. 1.0))
    erk.Sundials.Cvode.stats.Sundials.Cvode.nfevals
    (Float.abs (erk.Sundials.Cvode.y.(0) -. 1.0))
    adams.Sundials.Cvode.stats.Sundials.Cvode.nfevals
    (Float.abs (adams.Sundials.Cvode.y.(0) -. 1.0));
  (* 8. CPU fusion regression (Sec 4.8's dual lesson) *)
  let inputs8 =
    List.map
      (fun a -> (a, Array.init 64 (fun i -> float_of_int i)))
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
  in
  let base_k = Paradyn.Ir.paradyn_kernel in
  let _, cb = Paradyn.Interp.run base_k ~inputs:inputs8 in
  let _, cf = Paradyn.Interp.run (Paradyn.Passes.fuse base_k) ~inputs:inputs8 in
  addf "CPU fusion regression: small loops %.2f ms vs hand-fused %.2f ms on P9 (why SLNSP had to live in the compiler)"
    (Paradyn.Interp.cpu_time ~n:4_000_000 ~fused_source:false cb *. 1e3)
    (Paradyn.Interp.cpu_time ~n:4_000_000 ~fused_source:true cf *. 1e3);
  (* 9. direction-optimizing BFS *)
  let rng = Rng.create 13 in
  let gph = Havoq.Graph.rmat ~rng ~scale:12 () in
  let src = ref 0 in
  for v = 0 to gph.Havoq.Graph.n - 1 do
    if Havoq.Graph.degree gph v > Havoq.Graph.degree gph !src then src := v
  done;
  let td = Havoq.Bfs.top_down gph ~src:!src in
  let hy = Havoq.Bfs.hybrid gph ~src:!src in
  addf "direction-optimizing BFS (RMAT scale 12): %.1fx fewer edge inspections than top-down"
    (float_of_int td.Havoq.Bfs.edges_traversed /. float_of_int hy.Havoq.Bfs.edges_traversed);
  Harness.section "Ablations — the design choices behind the lessons learned"
    (Buffer.contents buf)

let harnesses =
  [
    Harness.make ~id:"ablations"
      ~description:"Design-choice studies behind the lessons learned"
      ~tags:[ "study"; "activity:ablations"; "wall-clock" ]
      ablations;
  ]
