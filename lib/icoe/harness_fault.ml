(** The fault model itself as a study: a seeded bring-up fault plan,
    retry/backoff semantics, a Sparkle analysis job run through the
    fault-aware cluster wrapper, and the Young/Daly checkpoint-interval
    surface. The early-access bring-up the paper describes was
    dominated by exactly these failure classes. *)

open Icoe_util
module F = Icoe_fault

let spec_in_effect () =
  match F.Context.current () with
  | Some s -> s
  | None -> F.Plan.spec 42

(* A 16-node bring-up partition, hazard rates scaled so a minute-long
   analysis job sees several events of every class. *)
let bringup_plan (spec : F.Plan.spec) =
  F.Plan.generate ~seed:spec.F.Plan.spec_seed
    {
      F.Plan.nodes = 16;
      horizon_s = 600.0;
      node_mtbf_s = 16.0 *. 12.0 /. spec.F.Plan.intensity;
      node_downtime_s = 3.0;
      link_mtbf_s = 40.0;
      link_degraded_s = 12.0;
      straggler_mtbf_s = 35.0;
      straggler_s = 8.0;
      kernel_fault_mtbf_s = 25.0;
    }

let sparkle_job charge_compute charge_shuffle charge_aggregate =
  for _ = 1 to 30 do
    charge_compute ~flops:2e12;
    charge_shuffle ~bytes:1.5e9;
    charge_aggregate ~bytes_per_node:2e7
  done

let resilience () =
  let spec = spec_in_effect () in
  let plan = bringup_plan spec in
  (* clean reference job *)
  let config = Sparkle.Cluster.optimized_config ~nodes:16 () in
  let clean = Sparkle.Cluster.create config in
  sparkle_job
    (Sparkle.Cluster.charge_compute clean)
    (Sparkle.Cluster.charge_shuffle clean)
    (Sparkle.Cluster.charge_aggregate clean);
  (* the same job through the fault-aware wrapper *)
  let fc = F.Fcluster.create plan config in
  sparkle_job
    (F.Fcluster.charge_compute fc)
    (F.Fcluster.charge_shuffle fc)
    (F.Fcluster.charge_aggregate fc);
  Harness.record_trace "resilience"
    (Sparkle.Cluster.trace (F.Fcluster.cluster fc));
  let stats = F.Fcluster.stats fc in
  let clean_s = Sparkle.Cluster.elapsed clean in
  let faulted_s = F.Fcluster.elapsed fc in
  (* deterministic backoff schedule for this seed *)
  let rng = Icoe_util.Rng.create spec.F.Plan.spec_seed in
  let backoffs =
    List.map
      (fun attempt ->
        Fmt.str "%.3f" (F.Retry.backoff_s F.Retry.default_policy ~rng ~attempt))
      [ 1; 2; 3 ]
  in
  (* Young/Daly interval surface *)
  let yd = Table.create ~title:"Young/Daly optimal checkpoint period (s)"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "MTBF \\ ckpt cost"; "5 s"; "15 s"; "60 s" ] in
  List.iter
    (fun mtbf ->
      Table.add_row yd
        (Fmt.str "%.0f s" mtbf
        :: List.map
             (fun delta ->
               Table.fcell ~prec:1
                 (F.Checkpoint.young_daly_s ~mtbf_s:mtbf
                    ~checkpoint_cost_s:delta))
             [ 5.0; 15.0; 60.0 ]))
    [ 300.0; 1800.0; 7200.0 ];
  Harness.section
    "Resilience — fault plans, retry/backoff, degraded collectives"
    (Fmt.str
       "%a\n\
        analysis job on the bring-up partition: clean %.2f s -> faulted \
        %.2f s (inflation %.3fx)\n\
        collectives struck %d, recovered %d (re-executions %d, gave up \
        %d)\n\
        retry backoff schedule (seed %d): %s s\n\
        %s"
       F.Plan.pp_summary plan clean_s faulted_s
       (faulted_s /. clean_s)
       stats.F.Fcluster.injected stats.F.Fcluster.recovered
       stats.F.Fcluster.retries stats.F.Fcluster.gave_up
       spec.F.Plan.spec_seed
       (String.concat ", " backoffs)
       (Table.render yd))

let harnesses =
  [
    Harness.make ~id:"resilience"
      ~description:"Fault injection, retry and checkpointing (bring-up model)"
      ~tags:[ "study"; "activity:fault"; "traced" ]
      resilience;
  ]
