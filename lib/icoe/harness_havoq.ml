(** Table 2: HavoqGT historical graph scale and GTEPS, plus a real
    direction-optimizing BFS run (Sec 4.4). *)

open Icoe_util

let table2 () =
  let t = Table.create ~title:"Table 2: historically best graph scale and performance"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "Machine"; "Year"; "Nodes"; "Scale"; "Scale(paper)"; "GTEPS"; "GTEPS(paper)" ] in
  List.iter2
    (fun m (name, year, nodes, scale_p, gteps_p) ->
      Table.add_row t
        [ name; string_of_int year; string_of_int nodes;
          string_of_int (Havoq.Perf.max_scale m); string_of_int scale_p;
          Table.fcell (Havoq.Perf.gteps m); Table.fcell gteps_p ])
    Havoq.Perf.machines Havoq.Perf.paper_rows;
  (* plus a real BFS run demonstrating the direction-optimizing engine *)
  let rng = Rng.create 9 in
  let g = Havoq.Graph.rmat ~rng ~scale:12 () in
  let src = ref 0 in
  for v = 0 to g.Havoq.Graph.n - 1 do
    if Havoq.Graph.degree g v > Havoq.Graph.degree g !src then src := v
  done;
  let td = Havoq.Bfs.top_down g ~src:!src in
  let hy = Havoq.Bfs.hybrid g ~src:!src in
  (* trace the two sweeps priced on the BG/Q model (one edge inspection
     ~ 16 B of irregular traffic, 2 flops), with a nest-counter reading
     attached so the span records how bandwidth-bound BFS is *)
  let tr = Hwsim.Trace.create ~root:"table2" (Hwsim.Clock.create ()) in
  let bfs_kernel name (r : Havoq.Bfs.stats) =
    let e = float_of_int r.Havoq.Bfs.edges_traversed in
    Hwsim.Kernel.make ~name ~flops:(2.0 *. e) ~bytes:(16.0 *. e) ()
  in
  let ctr = Hwsim.Counters.create Hwsim.Device.bgq in
  Hwsim.Trace.with_span tr "bfs" (fun () ->
      Hwsim.Counters.sample ctr ~time:(Hwsim.Trace.now tr) ~bytes:0.0;
      let ktd = bfs_kernel "bfs/top-down" td in
      let khy = bfs_kernel "bfs/hybrid" hy in
      ignore (Hwsim.Trace.charge_kernel tr ~phase:"bfs/top-down" Hwsim.Device.bgq ktd);
      ignore (Hwsim.Trace.charge_kernel tr ~phase:"bfs/hybrid" Hwsim.Device.bgq khy);
      Hwsim.Counters.sample ctr ~time:(Hwsim.Trace.now tr)
        ~bytes:(ktd.Hwsim.Kernel.bytes +. khy.Hwsim.Kernel.bytes);
      Hwsim.Trace.annotate_counters tr ctr);
  Harness.record_trace "table2" tr;
  Harness.section "Table 2 — HavoqGT graph BFS"
    (Fmt.str "%sreal RMAT scale-12 BFS: top-down traversed %d edges, hybrid %d (%.1fx fewer), %d direction switches\n"
       (Table.render t) td.Havoq.Bfs.edges_traversed hy.Havoq.Bfs.edges_traversed
       (float_of_int td.Havoq.Bfs.edges_traversed /. float_of_int hy.Havoq.Bfs.edges_traversed)
       hy.Havoq.Bfs.switches)

let harnesses =
  [
    Harness.make ~id:"table2" ~description:"Historical graph scale and GTEPS"
      ~tags:[ "table"; "activity:havoqgt"; "traced" ]
      table2;
  ]
