(** Table 5: CleverLeaf on SAMRAI (Sec 4.10.5). *)

open Icoe_util

let table5 () =
  (* real hydro run for correctness evidence *)
  let sim = Samrai.Cleverleaf.create ~nx:64 ~ny:8 ~lx:1.0 ~ly:0.125 () in
  Samrai.Cleverleaf.init sim (fun ~x ~y:_ ->
      if x < 0.5 then (1.0, 0.0, 0.0, 1.0) else (0.125, 0.0, 0.0, 0.1));
  let m0, _, _, e0 = Samrai.Cleverleaf.totals sim in
  Samrai.Cleverleaf.run sim 0.15;
  let m1, _, _, e1 = Samrai.Cleverleaf.totals sim in
  let (fc, fg), (sc, sg) = Samrai.Cleverleaf.table5_times ~cells:4_000_000 ~steps:500 in
  let t = Table.create ~title:"Table 5: CleverLeaf mini-app performance (s)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ ""; "Full Node"; "P9 vs V100" ] in
  Table.add_row t [ "CPU time (s)"; Table.fcell ~prec:1 fc; Table.fcell ~prec:1 sc ];
  Table.add_row t [ "GPU time (s)"; Table.fcell ~prec:2 fg; Table.fcell ~prec:2 sg ];
  Table.add_row t
    [ "Speedup"; Fmt.str "%.0fX" (fc /. fg); Fmt.str "%.0fX" (sc /. sg) ];
  Harness.section "Table 5 — CleverLeaf on SAMRAI (paper: 7X / 15X)"
    (Fmt.str "%sreal Sod run: %d steps, mass drift %.1e, energy drift %.1e\n"
       (Table.render t) sim.Samrai.Cleverleaf.steps
       (Float.abs (m1 -. m0)) (Float.abs (e1 -. e0)))

let harnesses =
  [
    Harness.make ~id:"table5" ~description:"CleverLeaf on SAMRAI"
      ~tags:[ "table"; "activity:samrai" ]
      table5;
  ]
