(** Sec 4.7: the Opt batch scheduler and topology optimization. *)

open Icoe_util

let opt_sched () =
  let rng = Rng.create 121 in
  let jobs = Opt.Scheduler.batch_workload ~rng ~n:400 () in
  let t = Table.create ~title:"Sec 4.7: batch workload on 16 GPUs"
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "policy"; "utilization"; "mean wait"; "max wait" ] in
  List.iter
    (fun pol ->
      let m = Opt.Scheduler.simulate ~gpus:16 pol jobs in
      Table.add_row t
        [ Opt.Scheduler.policy_name pol; Table.fcell ~prec:3 m.Opt.Scheduler.utilization;
          Table.fcell ~prec:1 m.Opt.Scheduler.mean_wait;
          Table.fcell ~prec:1 m.Opt.Scheduler.max_wait ])
    [ Opt.Scheduler.Fcfs; Opt.Scheduler.Fcfs_backfill; Opt.Scheduler.Sjf;
      Opt.Scheduler.Sjf_quota 0.5 ];
  (* throttling *)
  let mean_duration = exp (1.0 +. (0.6 *. 0.6 /. 2.0)) in
  let cap = Opt.Scheduler.capacity ~gpus:8 ~mean_duration in
  let wait rate =
    let js = Opt.Scheduler.poisson_workload ~rng ~rate ~horizon:2000.0 () in
    (Opt.Scheduler.simulate ~gpus:8 Opt.Scheduler.Sjf js).Opt.Scheduler.mean_wait
  in
  (* topology optimization *)
  let design = Opt.Topopt.create ~nx:20 ~ny:16 () in
  ignore (Opt.Topopt.optimize ~iters:40 design);
  let p100_tex = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.p100 ~textures:true in
  let p100_no = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.p100 ~textures:false in
  let v100_tex = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.v100 ~textures:true in
  let v100_no = Opt.Topopt.apply_time ~cells:1_000_000 Hwsim.Device.v100 ~textures:false in
  Harness.section "Sec 4.7 — Opt scheduler + topology optimization"
    (Fmt.str
       "%smean wait at 130%% of capacity: %.1f s; throttled to 80%%: %.1f s (throttle below capacity)\n\
        topopt: %d CG iterations total, final volume %.2f, compliance %.0f\n\
        texture cache: P100 %.2f -> %.2f ms (matters); V100 %.2f -> %.2f ms (moot on Volta)\n"
       (Table.render t) (wait (1.3 *. cap)) (wait (0.8 *. cap))
       design.Opt.Topopt.cg_iters_total (Opt.Topopt.volume design)
       design.Opt.Topopt.compliance
       (p100_no *. 1e3) (p100_tex *. 1e3) (v100_no *. 1e3) (v100_tex *. 1e3))

let harnesses =
  [
    Harness.make ~id:"opt" ~description:"Opt scheduler + topology optimization (Sec 4.7)"
      ~tags:[ "study"; "activity:opt" ]
      opt_sched;
  ]
