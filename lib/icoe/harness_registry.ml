(* The one table every dispatcher uses: bin/icoe_report, bench/main and
   the tests all resolve harnesses here. Order is presentation order —
   tables and figures first (paper numbering), then the per-activity
   studies, ablations last. *)

let pool =
  List.concat
    [
      Harness_table1.harnesses;
      Harness_lda.harnesses;
      Harness_havoq.harnesses;
      Harness_dlearn.harnesses;
      Harness_paradyn.harnesses;
      Harness_mfem.harnesses;
      Harness_samrai.harnesses;
      Harness_vbl.harnesses;
      Harness_cretin.harnesses;
      Harness_ddcmd.harnesses;
      Harness_sw4.harnesses;
      Harness_opt.harnesses;
      Harness_hwsim.harnesses;
      Harness_cardioid.harnesses;
      Harness_hypre.harnesses;
      Harness_fault.harnesses;
      Harness_svc.harnesses;
      Harness_topo.harnesses;
      Harness_tune.harnesses;
      Harness_ablations.harnesses;
    ]

let order =
  [
    "table1"; "fig2"; "table2"; "table3"; "fig3"; "fig6"; "fig8"; "table4";
    "table5"; "fig9"; "cretin"; "md"; "sw4"; "opt"; "kavg"; "gpudirect";
    "cardioid"; "hypre"; "resilience"; "svc"; "topo"; "tune"; "ablations";
  ]

let all =
  let lookup id =
    match List.find_opt (fun h -> h.Harness.id = id) pool with
    | Some h -> h
    | None -> invalid_arg ("Harness_registry: no harness registered for " ^ id)
  in
  let ordered = List.map lookup order in
  let extra =
    List.filter (fun h -> not (List.mem h.Harness.id order)) pool
  in
  ordered @ extra

let ids () = List.map (fun h -> h.Harness.id) all

let find id = List.find_opt (fun h -> h.Harness.id = id) all

let with_tag tag = List.filter (fun h -> List.mem tag h.Harness.tags) all

let traced () = with_tag "traced"

let run_all () =
  String.concat "\n"
    (List.map (fun h -> (h.Harness.run ()).Harness.report) all)
