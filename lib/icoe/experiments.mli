(** One harness per table and figure of the paper. Each runs the real
    workload at laptop scale, prices device-dependent results on the
    hardware model, and returns rendered text with the paper's reference
    values alongside. The bench executable and the icoe_report CLI both
    dispatch through {!all}. *)

val all : (string * string * (unit -> string)) list
(** (id, description, harness) for every reproduced result, including
    the [ablations] design-choice studies. *)

val find : string -> (string * string * (unit -> string)) option

val run_all : unit -> string

(** {1 Traces}

    The instrumented harnesses (fig2, table2, fig8, table4) register the
    {!Hwsim.Trace} of their most recent run; the CLI and bench read the
    set back for rollup tables and Chrome trace-event export. *)

val traced_ids : string list
(** Ids of the trace-instrumented experiments, in run order. The CLI's
    default (no-id) invocation runs exactly these; keeping the list here
    stops the CLI and the harnesses from drifting apart. *)

val clear_traces : unit -> unit
val record_trace : string -> Hwsim.Trace.t -> unit

val collected_traces : unit -> (string * Hwsim.Trace.t) list
(** Registration order; one entry per [record_trace] call since the last
    [clear_traces]. *)

val trace_rollup_report : unit -> string
(** Rendered per-device / per-phase / top-span tables for every collected
    trace; empty string when nothing was recorded. *)
