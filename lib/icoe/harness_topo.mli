(** Cross-generation topology study: SW4, ddcMD and KAVG re-priced on
    the hierarchical exascale interconnects (Frontier dragonfly,
    Grace-Hopper fat tree) against the flat Sierra baseline, contiguous
    vs scattered placement. *)

val harnesses : Harness.t list
(** The ["topo"] study. *)
