(** The registry of every experiment harness. [bin/icoe_report], the
    bench executable and the tests all dispatch through this table —
    nothing else enumerates harnesses. *)

val all : Harness.t list
(** Every registered harness, in presentation order: paper tables and
    figures first, then the per-activity studies, ablations last. Ids
    are unique. Raises [Invalid_argument] at module initialization if an
    expected id is missing. *)

val ids : unit -> string list
(** Ids of {!all}, in order. *)

val find : string -> Harness.t option

val with_tag : string -> Harness.t list
(** Harnesses carrying a tag, e.g. ["figure"], ["activity:mfem"]. *)

val traced : unit -> Harness.t list
(** The harnesses that record {!Hwsim.Trace.t}s (tag ["traced"]); the
    default set for the CLI's [--trace] export. *)

val run_all : unit -> string
(** Rendered reports of {!all}, concatenated with blank lines. *)
