(** Sec 4.3: Cretin node throughput and the minikin gradient solve. *)

open Icoe_util

let cretin () =
  (* real minikin run *)
  let model = Cretin.Atomic.ladder 10 in
  let mk = Cretin.Minikin.create ~nzones:24 ~te0:1.0 ~te1:50.0 model in
  Cretin.Minikin.solve_all mk;
  let cold = Cretin.Minikin.mean_excitation mk.Cretin.Minikin.zones.(0) in
  let hot = Cretin.Minikin.mean_excitation mk.Cretin.Minikin.zones.(23) in
  let t = Table.create ~title:"Sec 4.3: Cretin node throughput, GPU vs CPU"
      ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "levels"; "zone MB"; "CPU cores idle"; "GPU/CPU speedup" ] in
  List.iter
    (fun n ->
      let m = Cretin.Atomic.ladder n in
      let s, idle = Cretin.Minikin.node_speedup m in
      Table.add_row t
        [ string_of_int n;
          Table.fcell ~prec:1 (Cretin.Atomic.zone_bytes m /. 1e6);
          Fmt.str "%.0f%%" (idle *. 100.0); Table.fcell ~prec:2 s ])
    [ 40; 400; 2000; 12000; 18000 ];
  Harness.section "Sec 4.3 — Cretin / minikin (paper: 5.75X for 2nd-largest; largest idles 60% of cores)"
    (Fmt.str "%sreal 24-zone gradient solve: mean excitation %.3f (1 eV) -> %.3f (50 eV)\n"
       (Table.render t) cold hot)

let harnesses =
  [
    Harness.make ~id:"cretin" ~description:"Cretin node speedups (Sec 4.3)"
      ~tags:[ "study"; "activity:cretin" ]
      cretin;
  ]
