(** Fig 2: SparkPlug LDA, default vs optimized stack (Sec 4.2). *)

open Icoe_util

let fig2 () =
  (* real small-scale LDA training for correctness evidence *)
  let rng = Rng.create 42 in
  let corpus = Lda.Corpus.generate ~ndocs:160 ~rng () in
  let cluster = Sparkle.Cluster.create (Sparkle.Cluster.default_config ~nodes:4 ()) in
  let rdd = Sparkle.Rdd.of_array cluster corpus.Lda.Corpus.docs in
  let model = Lda.Vem.init ~rng ~k:corpus.Lda.Corpus.k_true ~vocab:corpus.Lda.Corpus.vocab () in
  let trace = Lda.Vem.train ~iters:10 model rdd in
  let recovery = Lda.Vem.recovery_score model corpus.Lda.Corpus.topic_word in
  (* paper-scale breakdown; the cluster charges every stage through its
     span tracer, so both runs are exportable to chrome://tracing *)
  let slow = Lda.Fig2.run ~optimized:false Lda.Fig2.wikipedia in
  let fast = Lda.Fig2.run ~optimized:true Lda.Fig2.wikipedia in
  Harness.record_trace "fig2/default" (Sparkle.Cluster.trace slow);
  Harness.record_trace "fig2/optimized" (Sparkle.Cluster.trace fast);
  let t = Table.create ~title:"Fig 2: LDA aggregate time breakdown (s, 32 nodes, Wikipedia-scale)"
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
      [ "phase"; "default"; "optimized" ] in
  List.iter
    (fun phase ->
      Table.add_row t
        [ phase;
          Table.fcell ~prec:1 (Hwsim.Clock.phase slow.Sparkle.Cluster.clock phase);
          Table.fcell ~prec:1 (Hwsim.Clock.phase fast.Sparkle.Cluster.clock phase) ])
    [ "compute"; "shuffle"; "aggregate"; "broadcast" ];
  Table.add_row t
    [ "TOTAL";
      Table.fcell ~prec:1 (Sparkle.Cluster.elapsed slow);
      Table.fcell ~prec:1 (Sparkle.Cluster.elapsed fast) ];
  Harness.section "Fig 2 — SparkPlug LDA default vs optimized"
    (Fmt.str
       "real run: 10 EM iterations, loglik %.0f -> %.0f, topic recovery %.2f\n%s\
        speedup %.2fx (paper: 'more than 2X')\n"
       trace.(0) trace.(9) recovery (Table.render t)
       (Sparkle.Cluster.elapsed slow /. Sparkle.Cluster.elapsed fast))

let harnesses =
  [
    Harness.make ~id:"fig2" ~description:"SparkPlug LDA default vs optimized"
      ~tags:[ "figure"; "activity:sparkplug"; "traced" ]
      fig2;
  ]
