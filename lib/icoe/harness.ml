open Icoe_util

type outcome = {
  report : string;
  traces : (string * Hwsim.Trace.t) list;
  metrics : Icoe_obs.Metrics.sample list;
  faults : (string * Icoe_fault.Checkpoint.report) list;
  artifacts : (string * (unit -> string)) list;
}

type t = {
  id : string;
  description : string;
  tags : string list;
  run : unit -> outcome;
}

let section title body = Fmt.str "### %s\n%s\n" title body

(* Traces recorded by the harness currently running. Harness bodies run
   one at a time in the caller's domain (pool workers never run harness
   code), so a single scoped ref suffices. *)
let current : (string * Hwsim.Trace.t) list ref = ref []
let current_faults : (string * Icoe_fault.Checkpoint.report) list ref = ref []
let current_artifacts : (string * (unit -> string)) list ref = ref []
let active = ref false

let record_trace name tr = if !active then current := (name, tr) :: !current

let record_faults name r =
  if !active then current_faults := (name, r) :: !current_faults

let record_artifact name render =
  if !active then current_artifacts := (name, render) :: !current_artifacts

(* Per-harness comm/compute overlap gauge. Harness bodies call this only
   when the stream scheduler actually overlapped, so ICOE_OVERLAP=0 runs
   leave the registry exactly as before the scheduler existed. *)
let record_overlap id eff =
  Icoe_obs.Metrics.set
    (Icoe_obs.Metrics.gauge
       ~help:"Charged over serial-sum modeled seconds (1 = no overlap)"
       ~labels:[ ("harness", id) ]
       "overlap_efficiency")
    eff

(* Critical-path blame gauges (the prof_ family), same gating contract
   as [record_overlap]: harness bodies call this only from overlap-gated
   sections so ICOE_OVERLAP=0 runs never register blame metrics. *)
let record_blame id analysis = Icoe_obs.Prof.record_metrics ~harness:id analysis

(* Flight-recorder bridge: one "metric" event per changed sample in the
   harness's registry diff. *)
let emit_metric_events id samples =
  if Icoe_obs.Events.enabled () then
    List.iter
      (fun (s : Icoe_obs.Metrics.sample) ->
        let open Icoe_obs.Events in
        let value, mtype =
          match s.Icoe_obs.Metrics.value with
          | Icoe_obs.Metrics.Counter v -> (v, "counter")
          | Icoe_obs.Metrics.Gauge v -> (v, "gauge")
          | Icoe_obs.Metrics.Histogram h ->
              (h.Icoe_obs.Metrics.sum, "histogram")
        in
        let label_fields =
          List.map (fun (k, v) -> ("label_" ^ k, S v)) s.Icoe_obs.Metrics.labels
        in
        emit ~kind:"metric" ~source:("harness/" ^ id)
          ([ ("name", S s.Icoe_obs.Metrics.name); ("mtype", S mtype);
             ("value", F value) ]
          @ label_fields))
      samples

let make ~id ~description ?(tags = []) f =
  let run () =
    let saved_traces = !current
    and saved_faults = !current_faults
    and saved_artifacts = !current_artifacts
    and saved_active = !active in
    current := [];
    current_faults := [];
    current_artifacts := [];
    active := true;
    let restore () =
      current := saved_traces;
      current_faults := saved_faults;
      current_artifacts := saved_artifacts;
      active := saved_active
    in
    Fun.protect ~finally:restore (fun () ->
        let before = Icoe_obs.Metrics.snapshot () in
        let report = f () in
        let after = Icoe_obs.Metrics.snapshot () in
        let metrics = Icoe_obs.Metrics.diff ~before ~after in
        emit_metric_events id metrics;
        {
          report;
          traces = List.rev !current;
          metrics;
          faults = List.rev !current_faults;
          artifacts = List.rev !current_artifacts;
        })
  in
  { id; description; tags; run }

let simulated_seconds o =
  List.fold_left (fun acc (_, tr) -> acc +. Hwsim.Trace.total tr) 0.0 o.traces

let rollup_report = function
  | [] -> ""
  | ts ->
      let buf = Buffer.create 2048 in
      Buffer.add_string buf
        "### Trace rollups — where the simulated time went\n";
      List.iter
        (fun (name, tr) ->
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.device_table ~title:(name ^ ": per-device rollup") tr));
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.phase_table ~title:(name ^ ": per-phase rollup") tr));
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.span_table ~title:(name ^ ": top spans") ~n:5 tr)))
        ts;
      Buffer.contents buf
