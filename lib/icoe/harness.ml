open Icoe_util

type outcome = {
  report : string;
  traces : (string * Hwsim.Trace.t) list;
  metrics : Icoe_obs.Metrics.sample list;
  faults : (string * Icoe_fault.Checkpoint.report) list;
}

type t = {
  id : string;
  description : string;
  tags : string list;
  run : unit -> outcome;
}

let section title body = Fmt.str "### %s\n%s\n" title body

(* Traces recorded by the harness currently running. Harness bodies run
   one at a time in the caller's domain (pool workers never run harness
   code), so a single scoped ref suffices. *)
let current : (string * Hwsim.Trace.t) list ref = ref []
let current_faults : (string * Icoe_fault.Checkpoint.report) list ref = ref []
let active = ref false

let record_trace name tr = if !active then current := (name, tr) :: !current

let record_faults name r =
  if !active then current_faults := (name, r) :: !current_faults

(* Per-harness comm/compute overlap gauge. Harness bodies call this only
   when the stream scheduler actually overlapped, so ICOE_OVERLAP=0 runs
   leave the registry exactly as before the scheduler existed. *)
let record_overlap id eff =
  Icoe_obs.Metrics.set
    (Icoe_obs.Metrics.gauge
       ~help:"Charged over serial-sum modeled seconds (1 = no overlap)"
       ~labels:[ ("harness", id) ]
       "overlap_efficiency")
    eff

let make ~id ~description ?(tags = []) f =
  let run () =
    let saved_traces = !current
    and saved_faults = !current_faults
    and saved_active = !active in
    current := [];
    current_faults := [];
    active := true;
    let restore () =
      current := saved_traces;
      current_faults := saved_faults;
      active := saved_active
    in
    Fun.protect ~finally:restore (fun () ->
        let before = Icoe_obs.Metrics.snapshot () in
        let report = f () in
        let after = Icoe_obs.Metrics.snapshot () in
        {
          report;
          traces = List.rev !current;
          metrics = Icoe_obs.Metrics.diff ~before ~after;
          faults = List.rev !current_faults;
        })
  in
  { id; description; tags; run }

let simulated_seconds o =
  List.fold_left (fun acc (_, tr) -> acc +. Hwsim.Trace.total tr) 0.0 o.traces

let rollup_report = function
  | [] -> ""
  | ts ->
      let buf = Buffer.create 2048 in
      Buffer.add_string buf
        "### Trace rollups — where the simulated time went\n";
      List.iter
        (fun (name, tr) ->
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.device_table ~title:(name ^ ": per-device rollup") tr));
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.phase_table ~title:(name ^ ": per-phase rollup") tr));
          Buffer.add_string buf
            (Table.render
               (Hwsim.Trace.span_table ~title:(name ^ ": top spans") ~n:5 tr)))
        ts;
      Buffer.contents buf
