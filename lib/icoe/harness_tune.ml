(** Heterogeneous work-partitioning auto-tuner study (ROADMAP item 2):
    {!Opt.Autotune} applied to the paper's three overlap-wired step
    models — the SW4 production stencil, the ddcMD force pipeline and
    the KAVG backprop round — on a paper-era machine and both exascale
    machines. Tuned vs paper-default placements, exhaustive vs annealed
    search, all in simulated time.

    Acceptance truths (grep-able, asserted by CI): the tuned makespan
    is never worse than the paper default on any machine x kernel, and
    the annealer agrees exactly with the exhaustive sweep whenever its
    budget covers the lattice. *)

open Icoe_util

type row = {
  kernel : string;
  machine : string;
  default_s : float;
  tuned_s : float;
  split : float;  (** tuned accelerator share *)
  comm : string;  (** tuned communication placement *)
  speedup : float;  (** [default_s /. tuned_s] *)
  evaluations : int;
  mode : string;
}

let machines =
  [ Hwsim.Node.sierra; Hwsim.Node.frontier; Hwsim.Node.grace_hopper ]

let mname (m : Hwsim.Node.machine) = m.Hwsim.Node.node.Hwsim.Node.name
let kernels = [ "sw4"; "md"; "kavg" ]
let kavg_sizes = [| 256; 512; 128; 16 |]

(* One objective per kernel x machine: rebuild the step-model DAG at
   the candidate's split/placement and return its simulated makespan.
   Scales match the paper studies: the 26B-point campaign on 256 nodes,
   the MuMMI membrane patch, the 512-learner KAVG round. [overlap] is
   forced on — the tuner searches overlapped schedules regardless of
   ICOE_OVERLAP, keeping the report byte-identical either way. *)
let objective kernel (m : Hwsim.Node.machine) : Opt.Autotune.objective =
 fun (c : Opt.Autotune.candidate) ->
  let split = c.Opt.Autotune.split and comm = c.Opt.Autotune.comm in
  match kernel with
  | "sw4" ->
      (Sw4.Scenario.production_step_model ~overlap:true ~gpu_frac:split ~comm
         m ~nodes:256 ~grid_points:26.0e9)
        .Sw4.Scenario.overlapped_s
  | "md" ->
      let scen =
        if m.Hwsim.Node.node.Hwsim.Node.gpus >= 4 then Ddcmd.Perf.Four_gpu
        else Ddcmd.Perf.One_gpu
      in
      (Ddcmd.Perf.ddcmd_step_model ~overlap:true ~node:m.Hwsim.Node.node
         ~gpu_frac:split ~comm scen)
        .Ddcmd.Perf.overlapped_s
  | "kavg" ->
      (Dlearn.Distributed.kavg_round_model ~overlap:true
         ~topology:m.Hwsim.Node.topology ~node:m.Hwsim.Node.node
         ~gpu_frac:split ~comm ~learners:512 ~k:8 ~batch:32 kavg_sizes)
        .Dlearn.Distributed.overlapped_round_s
  | k -> invalid_arg ("Harness_tune: unknown kernel " ^ k)

let row_of kernel machine (r : Opt.Autotune.result) =
  let default_s = r.Opt.Autotune.default.Opt.Autotune.makespan in
  let tuned_s = r.Opt.Autotune.best.Opt.Autotune.makespan in
  {
    kernel;
    machine;
    default_s;
    tuned_s;
    split = r.Opt.Autotune.best.Opt.Autotune.cand.Opt.Autotune.split;
    comm =
      Hwsim.Split.comm_name
        r.Opt.Autotune.best.Opt.Autotune.cand.Opt.Autotune.comm;
    speedup = (if tuned_s > 0.0 then default_s /. tuned_s else 1.0);
    evaluations = r.Opt.Autotune.evaluations;
    mode = r.Opt.Autotune.mode;
  }

(** The bench rows: one exhaustive tuning per machine x kernel on the
    default 21-point lattice x {dedicated, inline}. Deterministic. *)
let bench_rows () =
  List.concat_map
    (fun m ->
      List.map
        (fun kernel ->
          row_of kernel (mname m) (Opt.Autotune.exhaustive (objective kernel m)))
        kernels)
    machines

let gauge name ~help ~machine ~kernel v =
  Icoe_obs.Metrics.set
    (Icoe_obs.Metrics.gauge
       ~labels:[ ("machine", machine); ("kernel", kernel) ]
       ~help name)
    v

(* --- tuned vs paper default, exhaustive over the 21-point lattice --- *)

let exhaustive_section () =
  let rows = bench_rows () in
  let t =
    Table.create
      ~title:
        "Tuned vs paper-default placement (exhaustive, 21-point lattice x \
         {dedicated, inline})"
      ~aligns:
        [|
          Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Left; Table.Right; Table.Right;
        |]
      [
        "machine"; "kernel"; "default (ms)"; "tuned (ms)"; "split"; "comm";
        "speedup"; "evals";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.machine; r.kernel;
          Table.fcell ~prec:3 (r.default_s *. 1e3);
          Table.fcell ~prec:3 (r.tuned_s *. 1e3);
          Table.fcell ~prec:2 r.split; r.comm;
          Table.fcell ~prec:3 r.speedup;
          string_of_int r.evaluations;
        ];
      gauge "tuner_default_seconds"
        ~help:"paper-default makespan per machine x kernel" ~machine:r.machine
        ~kernel:r.kernel r.default_s;
      gauge "tuner_tuned_seconds"
        ~help:"tuned makespan per machine x kernel" ~machine:r.machine
        ~kernel:r.kernel r.tuned_s;
      gauge "tuner_split" ~help:"tuned accelerator share per machine x kernel"
        ~machine:r.machine ~kernel:r.kernel r.split)
    rows;
  let never_worse = List.for_all (fun r -> r.tuned_s <= r.default_s) rows in
  Harness.section "Work-partitioning auto-tuner — tuned vs paper default"
    (Fmt.str
       "%struth: tuned makespan <= paper-default makespan on every machine x \
        kernel: %b\n"
       (Table.render t) never_worse)

(* --- annealing vs exhaustive ---

   Coarse lattice (5 points x 2 placements = 10 candidates) with a
   budget that covers it: the annealer must agree with the exhaustive
   sweep exactly — same makespan, bit for bit. Fine lattice (101
   points) with a 160-evaluation budget: true annealing, asserted never
   worse than the paper default and reported against the exhaustive
   21-point result. *)

let anneal_section () =
  let coarse = Hwsim.Split.lattice ~steps:4 () in
  let fine = Hwsim.Split.lattice ~steps:100 () in
  let t =
    Table.create
      ~title:
        "Annealed search (seed 42): coarse lattice = exhaustive fallback, \
         fine lattice = 160-eval budget over 202 candidates"
      ~aligns:
        [|
          Table.Left; Table.Left; Table.Left; Table.Right; Table.Right;
          Table.Right;
        |]
      [
        "machine"; "kernel"; "coarse = exhaustive"; "fine tuned (ms)";
        "fine split"; "evals";
      ]
  in
  let agree = ref true and fine_never_worse = ref true in
  List.iter
    (fun m ->
      List.iter
        (fun kernel ->
          let obj = objective kernel m in
          let ex = Opt.Autotune.exhaustive ~splits:coarse obj in
          let an = Opt.Autotune.anneal ~seed:42 ~iters:50 ~splits:coarse obj in
          let same =
            Float.equal ex.Opt.Autotune.best.Opt.Autotune.makespan
              an.Opt.Autotune.best.Opt.Autotune.makespan
          in
          agree := !agree && same;
          let fa = Opt.Autotune.anneal ~seed:42 ~iters:160 ~splits:fine obj in
          let fbest = fa.Opt.Autotune.best in
          fine_never_worse :=
            !fine_never_worse
            && fbest.Opt.Autotune.makespan
               <= fa.Opt.Autotune.default.Opt.Autotune.makespan;
          Table.add_row t
            [
              mname m; kernel; string_of_bool same;
              Table.fcell ~prec:3 (fbest.Opt.Autotune.makespan *. 1e3);
              Table.fcell ~prec:2 fbest.Opt.Autotune.cand.Opt.Autotune.split;
              string_of_int fa.Opt.Autotune.evaluations;
            ])
        kernels)
    machines;
  Harness.section "Annealed vs exhaustive search"
    (Fmt.str
       "%struth: annealing (budget >= lattice) matches exhaustive everywhere: \
        %b\ntruth: fine-lattice annealing <= paper default everywhere: %b\n"
       (Table.render t) !agree !fine_never_worse)

let tune () = exhaustive_section () ^ anneal_section ()

let harnesses =
  [
    Harness.make ~id:"tune"
      ~description:
        "Heterogeneous work-partitioning auto-tuner: tuned vs paper-default \
         placements (ROADMAP 2)"
      ~tags:[ "study"; "activity:opt" ]
      tune;
  ]
