(** Table 1: the completed iCoE activity registry rendered as a table. *)

open Icoe_util

let harnesses =
  [
    Harness.make ~id:"table1"
      ~description:"Completed iCoE activities and approaches"
      ~tags:[ "table"; "activity:icoe" ]
      (fun () -> Table.render (Registry.table1 ()));
  ]
