(** Plain-text table rendering for experiment reports.

    Benches print paper-style rows through this; keeping formatting in one
    place makes every harness's output uniform. *)

type align = Left | Right

type t
(** A mutable table under construction. *)

val create : ?aligns:align array -> title:string -> string list -> t
(** [create ~title header] starts a table. [aligns] must match the header
    width (defaults to all right-aligned). *)

val add_row : t -> string list -> unit
(** Append a row; its arity must match the header. *)

val sep : string
(** The cell separator {!addf} splits on: the ASCII unit separator
    ["\x1f"], which cannot occur in printable cell values. (Splitting on
    ['|'] would shift every column of a row whose formatted cell itself
    contains a pipe, tripping the {!add_row} arity assert.) *)

val addf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Format a {!sep}-separated row, e.g.
    [addf t "%s\x1f%d" name n]. Cell values may freely contain ['|']. *)

val fcell : ?prec:int -> float -> string
(** Fixed-precision numeric cell (default 3 decimals). *)

val render : t -> string
(** The table as GitHub-style markdown with a title line. *)

val print : t -> unit
