(** GC parameter tuning for the bench harness.

    The zero-alloc kernel pass (PR 10) removes steady-state allocation
    from the hot loops, but setup phases still churn the minor heap and
    the default 256k-word minor heap forces frequent collections during
    warm-up. These knobs let a bench run size the GC to the workload
    without recompiling:

    - [ICOE_GC_MINOR_HEAP] — minor heap size in {e words}
      (e.g. [8388608] for a 64 MB minor heap on 64-bit);
    - [ICOE_GC_SPACE_OVERHEAD] — the major-GC [space_overhead] knob
      (higher trades memory for fewer major slices).

    Unset, non-numeric or non-positive values leave the corresponding
    parameter untouched, so the default behaviour is exactly the stock
    runtime. Applied once at bench startup; results are reported in the
    bench header so trajectories record the GC regime they ran under. *)

type settings = {
  minor_heap_words : int option;
  space_overhead : int option;
}

val none : settings

val of_env : ?getenv:(string -> string option) -> unit -> settings
(** Parse the [ICOE_GC_*] variables; [?getenv] is injectable for
    tests. Invalid values parse to [None]. *)

val describe : settings -> string
(** One-line human summary, ["gc: defaults"] when nothing is set. *)

val apply : settings -> unit
(** [Gc.set] the requested parameters; a no-op for {!none}. *)

val apply_env : unit -> settings
(** [of_env] + [apply], returning what was applied. *)
