(** Plain-text table rendering for experiment reports.

    Benches print paper-style rows with this; keeping formatting in one
    place makes every harness's output uniform. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align array;
  mutable rows : string list list; (* reversed *)
}

let create ?(aligns = [||]) ~title header =
  let aligns =
    if Array.length aligns = List.length header then aligns
    else Array.make (List.length header) Right
  in
  { title; header; aligns; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.header);
  t.rows <- row :: t.rows

(* Cell separator for [addf]: the ASCII unit separator, which cannot
   appear in rendered cell values — a formatted cell containing '|'
   (e.g. a phase named "comm|halo") must not shift the columns. *)
let sep = "\x1f"

let addf t fmts = Fmt.kstr (fun s -> add_row t (String.split_on_char '\x1f' s)) fmts

let fcell ?(prec = 3) v = Fmt.str "%.*f" prec v

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let pad i c =
    let w = widths.(i) in
    let n = w - String.length c in
    if n <= 0 then c
    else
      match t.aligns.(i) with
      | Left -> c ^ String.make n ' '
      | Right -> String.make n ' ' ^ c
  in
  let line row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.header ^ "\n" ^ sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)
