(** Flat float64 buffers over [Bigarray.Array1]: the structure-of-arrays
    storage type of every hot kernel.

    Why not [float array]? OCaml float arrays are already unboxed, but
    they live on the OCaml heap: every read in a hot loop is
    bounds-checked unless [unsafe_get] is spelled at each site, the GC
    scans and moves them, and they cannot be pooled outside the minor
    heap. [Fbuf.t] buffers are malloc-backed (never moved, never
    scanned), all accessors here compile to single unsafe loads/stores,
    and the buffers thread through {!Prog.Scratch} for Umpire-style
    reuse so steady-state kernel iterations allocate nothing.

    Bit-compatibility: an [Fbuf.t] holds exactly the same IEEE-754
    binary64 values a [float array] would, so migrating a kernel from
    one to the other cannot change results. Structural equality [( = )]
    compares contents (Bigarray's [compare_ext]), which the fault tests
    rely on for snapshot equality.

    All indexed access is {b unchecked} ([Array1.unsafe_get/set]) —
    callers own their index arithmetic, which is why the binning and
    window clamps fixed in PR 10 are load-bearing. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Freshly allocated, zero-filled. *)

external length : t -> int = "%caml_ba_dim_1"

external get : t -> int -> float = "%caml_ba_unsafe_ref_1"
(** Unchecked read. Declared [external] (the compiler primitive, not a
    wrapper function) so that without flambda the access still compiles
    to a single unboxed load at every call site — a plain [val] costs a
    boxed-float allocation per read from another module, which is most
    of a hot kernel's garbage. *)

external set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"
(** Unchecked write; [external] for the same reason as {!get}. *)

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** Lengths must match (Bigarray raises otherwise). *)

val copy : t -> t
val of_array : float array -> t
val to_array : t -> float array
val init : int -> (int -> float) -> t
val iteri : (int -> float -> unit) -> t -> unit
val map : (float -> float) -> t -> t
val fold_left : ('a -> float -> 'a) -> 'a -> t -> 'a

val blit_from_array : float array -> t -> unit
(** Copy the whole array into the buffer prefix (array length must be
    [<= length t]; unchecked). *)

val blit_to_array : t -> float array -> unit
(** Copy the buffer prefix over the whole array (array length must be
    [<= length t]; unchecked). *)
