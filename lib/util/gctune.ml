(* ICOE_GC_* environment knobs -> Gc.set. See gctune.mli. *)

type settings = {
  minor_heap_words : int option;
  space_overhead : int option;
}

let none = { minor_heap_words = None; space_overhead = None }

let parse_positive s =
  match int_of_string_opt (String.trim s) with
  | Some n when n > 0 -> Some n
  | _ -> None

let of_env ?(getenv = Sys.getenv_opt) () =
  let knob name = Option.bind (getenv name) parse_positive in
  {
    minor_heap_words = knob "ICOE_GC_MINOR_HEAP";
    space_overhead = knob "ICOE_GC_SPACE_OVERHEAD";
  }

let describe s =
  match (s.minor_heap_words, s.space_overhead) with
  | None, None -> "gc: defaults"
  | mh, so ->
      let part name = function
        | None -> []
        | Some v -> [ Fmt.str "%s=%d" name v ]
      in
      "gc: "
      ^ String.concat " "
          (part "minor_heap_words" mh @ part "space_overhead" so)

let apply s =
  if s.minor_heap_words <> None || s.space_overhead <> None then begin
    let g = Gc.get () in
    let g =
      match s.minor_heap_words with
      | Some w -> { g with Gc.minor_heap_size = w }
      | None -> g
    in
    let g =
      match s.space_overhead with
      | Some o -> { g with Gc.space_overhead = o }
      | None -> g
    in
    Gc.set g
  end

let apply_env () =
  let s = of_env () in
  apply s;
  s
