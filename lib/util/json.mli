(** A minimal strict JSON reader (no external deps).

    Exists so the repo can read back its own machine-readable artifacts:
    {!Icoe_obs.Bench_diff} parses [BENCH_<id>.json] perf trajectories
    for the regression gate, and tests validate JSONL event-log lines.
    The full grammar is supported; all numbers land in [float] (which is
    how the writers emitted them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an
    error. *)

val parse_exn : string -> t
(** Like {!parse}; raises {!Parse_error}. *)

(** {1 Accessors} — [None] on a type mismatch or missing key. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
val float_member : string -> t -> float option
val string_member : string -> t -> string option
val list_member : string -> t -> t list option
