(** A minimal JSON reader for the observability tooling.

    The container has no yojson; this is the small subset the repo needs
    to read back its own artifacts — [BENCH_<id>.json] trajectories for
    the {!Icoe_obs.Bench_diff} regression gate and JSONL event-log lines
    in tests. It is a strict recursive-descent parser over the whole
    grammar (objects, arrays, strings with escapes, numbers, booleans,
    null); numbers all land in [float], which is exactly how the writers
    emitted them. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error "at %d: expected '%c', found '%c'" st.pos c c'
  | None -> error "at %d: expected '%c', found end of input" st.pos c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

(* Encode a BMP code point (from \uXXXX) as UTF-8 bytes. Surrogate
   pairs are combined by [parse_string]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> error "at %d: invalid hex digit '%c'" st.pos c
        in
        v := (!v * 16) + d
    | None -> error "at %d: truncated \\u escape" st.pos);
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error "at %d: unterminated string" st.pos
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'u' ->
            advance st;
            let cp = hex4 st in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* high surrogate: require the low half *)
              expect st '\\';
              expect st 'u';
              let lo = hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then
                error "at %d: unpaired surrogate" st.pos;
              add_utf8 buf
                (0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)))
            end
            else add_utf8 buf cp
        | Some c -> error "at %d: invalid escape '\\%c'" st.pos c
        | None -> error "at %d: truncated escape" st.pos);
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance st;
        true
    | _ -> false
  in
  while consume () do () done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error "at %d: invalid number %S" start text

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else error "at %d: invalid literal" st.pos

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> error "at %d: expected ',' or '}' in object" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error "at %d: expected ',' or ']' in array" st.pos
        in
        Arr (elements [])
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error "at %d: unexpected character '%c'" st.pos c
  | None -> error "at %d: unexpected end of input" st.pos

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Fmt.str "at %d: trailing garbage" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let float_member key j = Option.bind (member key j) to_float
let string_member key j = Option.bind (member key j) to_string
let list_member key j = Option.bind (member key j) to_list
