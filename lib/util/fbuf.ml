(* Flat float64 Bigarray buffers: the storage type of every hot kernel.
   See fbuf.mli for the contract. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill b 0.0;
  b

external length : t -> int = "%caml_ba_dim_1"
external get : t -> int -> float = "%caml_ba_unsafe_ref_1"
external set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"
let fill (t : t) v = Bigarray.Array1.fill t v

let blit ~(src : t) ~(dst : t) =
  Bigarray.Array1.blit src dst

let copy (t : t) : t =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (length t) in
  Bigarray.Array1.blit t b;
  b

let of_array (a : float array) : t =
  Bigarray.Array1.of_array Bigarray.float64 Bigarray.c_layout a

let to_array (t : t) = Array.init (length t) (fun i -> get t i)

let init n f : t =
  let b = create n in
  for i = 0 to n - 1 do
    set b i (f i)
  done;
  b

let iteri f (t : t) =
  for i = 0 to length t - 1 do
    f i (get t i)
  done

let map f (t : t) : t =
  init (length t) (fun i -> f (get t i))

let fold_left f acc (t : t) =
  let acc = ref acc in
  for i = 0 to length t - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let blit_from_array (a : float array) (t : t) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    set t i (Array.unsafe_get a i)
  done

let blit_to_array (t : t) (a : float array) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    Array.unsafe_set a i (get t i)
  done
