(** Small descriptive-statistics helpers used by experiment harnesses. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** (minimum, maximum). Requires a nonempty array. *)

val sum : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0, 1]; linear interpolation between
    order statistics. Requires a nonempty array. Sorts per call with
    [Float.compare]; for repeated queries use {!presort} +
    {!percentile_sorted}. *)

val presort : float array -> float array
(** Sorted copy ([Float.compare]: monomorphic, NaN-total). Sort once,
    then query with {!percentile_sorted}. *)

val percentile_sorted : float array -> float -> float
(** [percentile] on an array already sorted by {!presort}; does not
    re-sort. *)

val median : float array -> float

val rel_l2_error : float array -> float array -> float
(** [rel_l2_error a b] = ||a - b|| / ||b|| (plain ||a - b|| when b = 0). *)

val max_abs_diff : float array -> float array -> float
(** Pointwise infinity-norm distance. Arrays must have equal length. *)
