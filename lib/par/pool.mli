(** A hand-rolled OCaml 5 domain pool: the shared on-node execution layer
    under the hot engine kernels (the paper's "one machine abstraction
    every activity exploits" applied to our own reproduction).

    Design constraints, in order:

    {ol
    {- {b Determinism.} Chunk boundaries depend only on the iteration
       range (never on the pool size or on which domain runs a chunk),
       and {!map_reduce} combines per-chunk partials in ascending chunk
       order. A kernel routed through the pool therefore produces
       bit-identical floating-point results for {e any} [ICOE_DOMAINS]
       setting — the property the CI determinism diff enforces.}
    {- {b Reuse.} The global pool is created once (first use) and reused;
       worker domains block on a condition variable between jobs.}
    {- {b Graceful serial fallback.} A pool of size 1 never spawns
       domains and runs chunks in ascending order in the caller — the
       exact serial path.}}

    Work distribution inside one job is dynamic (workers claim chunk
    indices from an atomic counter), which balances load without
    affecting results: every chunk writes disjoint state or produces a
    partial stored at its chunk index.

    Nested calls (a pooled kernel invoked from inside a chunk) do not
    deadlock: the inner call detects the active job and degrades to the
    serial path, which is bit-identical anyway. *)

type t
(** A pool of domains. The caller participates in every job, so a pool
    of size [n] uses [n - 1] spawned worker domains. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] workers (default: the
    global default, see {!default_domains}). [domains] is clamped to
    [\[1, 128\]]. Pools must be {!shutdown} (or created via
    {!with_pool}) to let the process exit. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. After shutdown the pool runs
    everything serially. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards (also on exceptions). *)

val size : t -> int
(** Number of domains working on a job, caller included ([>= 1]). *)

val default_domains : unit -> int
(** The [ICOE_DOMAINS] environment variable if set to a positive
    integer, else [Domain.recommended_domain_count ()]. [1] means
    "exactly serial". *)

val get : unit -> t
(** The global shared pool, created from {!default_domains} on first
    use and torn down [at_exit]. All engine kernels route through it. *)

val in_parallel_job : unit -> bool
(** [true] while the calling domain is executing a chunk of a pool job
    (any execution path: worker domain, submitting caller, or the
    serial fallback — so the answer does not depend on
    [ICOE_DOMAINS]). Layers with non-thread-safe state use this to
    reject calls from worker chunks; {!Icoe_obs.Metrics} raises
    [Invalid_argument] on any registry access made under it. *)

val default_chunk : int -> int
(** [default_chunk n] is the chunk size used when [?chunk] is omitted:
    [max 16 ((n + 63) / 64)] — at most 64 chunks, at least 16 iterations
    each. A function of the range length only, never of the pool. *)

val parallel_for :
  ?pool:t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~lo ~hi f] calls [f i] once for each [lo <= i < hi].
    Within a chunk, indices run in ascending order. [f] must write only
    state disjoint from other iterations (and must not touch the metrics
    registry — counters are not atomic). Empty ranges are no-ops. *)

val parallel_for_chunks :
  ?pool:t -> ?chunk:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for_chunks ~lo ~hi f] calls [f clo chi] once per chunk
    with [lo <= clo < chi <= hi]; the callback owns the half-open range
    [\[clo, chi)]. Lower per-iteration overhead than {!parallel_for} for
    row-blocked kernels. *)

val num_chunks : ?chunk:int -> lo:int -> hi:int -> unit -> int
(** The number of chunks {!parallel_for_chunks} (and friends) will split
    [\[lo, hi)] into — a function of the range and chunk size only,
    never of the pool. Zero-alloc kernels use it to size per-chunk
    partial slots before entering the pooled region. *)

val parallel_for_chunks_i :
  ?pool:t -> ?chunk:int -> lo:int -> hi:int -> (int -> int -> int -> unit) -> unit
(** [parallel_for_chunks_i ~lo ~hi f] is {!parallel_for_chunks} with the
    chunk index: [f k clo chi] for the [k]-th chunk ([0 <= k <]
    {!num_chunks}). The index lets allocation-free kernels write their
    partials into a preallocated slot per chunk instead of returning
    values (which would box floats); callers reduce the slots in
    ascending [k] afterwards to keep the deterministic combine order. *)

val map_reduce :
  ?pool:t -> ?chunk:int -> lo:int -> hi:int ->
  combine:('a -> 'a -> 'a) -> init:'a -> (int -> int -> 'a) -> 'a
(** [map_reduce ~lo ~hi ~combine ~init map] computes
    [combine (... (combine init p0) ...) p_(k-1)] where [p_k] is
    [map clo chi] of the [k]-th chunk. The combine order is always
    ascending chunk index, so floating-point reductions are
    deterministic for any pool size. [combine] runs in the caller and
    may mutate and return its first argument. Empty ranges return
    [init]. *)
