(* Domain pool with deterministic chunked scheduling. See pool.mli for
   the contract. The implementation favours being obviously correct over
   being clever: one mutex + two condition variables, an atomic counter
   to hand out chunks, and a generation number so reused workers never
   confuse two jobs. *)

type job = {
  run : int -> unit;  (* chunk index -> work *)
  nchunks : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  mutable completed : int;  (* chunks finished; guarded by the pool mutex *)
  mutable failed : bool;
  mutable error : (exn * Printexc.raw_backtrace) option;
}

type t = {
  requested : int;  (* domains requested, caller included *)
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t array;  (* [||] once shut down *)
  busy : bool Atomic.t;  (* a job is in flight: nested calls go serial *)
}

let size t = if Array.length t.workers = 0 then 1 else t.requested

(* Domain-local "currently executing a chunk" flag. Observable via
   [in_parallel_job] so layers with non-thread-safe state (the metrics
   registry) can detect — and reject — use from inside worker chunks.
   Set on every execution path, including the serial fallback, so the
   contract is enforced identically whatever ICOE_DOMAINS says. *)
let in_job_key = Domain.DLS.new_key (fun () -> false)
let in_parallel_job () = Domain.DLS.get in_job_key

let with_in_job f =
  let prev = Domain.DLS.get in_job_key in
  Domain.DLS.set in_job_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_job_key prev) f

let default_domains () =
  match Sys.getenv_opt "ICOE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 128
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_chunk n = max 16 ((n + 63) / 64)

(* Run one claimed chunk and account for its completion. Exceptions are
   kept (first one wins) and re-raised by the submitter. *)
let run_chunk t job k =
  (if not job.failed then
     try job.run k
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock t.m;
       if job.error = None then job.error <- Some (e, bt);
       job.failed <- true;
       Mutex.unlock t.m);
  Mutex.lock t.m;
  job.completed <- job.completed + 1;
  if job.completed = job.nchunks then Condition.broadcast t.work_done;
  Mutex.unlock t.m

let claim_loop t job =
  let continue = ref true in
  while !continue do
    let k = Atomic.fetch_and_add job.next 1 in
    if k >= job.nchunks then continue := false else run_chunk t job k
  done

let worker t () =
  let seen = ref 0 in
  Mutex.lock t.m;
  while not t.stop do
    if t.generation = !seen then Condition.wait t.work_ready t.m
    else begin
      seen := t.generation;
      match t.job with
      | None -> ()
      | Some job ->
          Mutex.unlock t.m;
          with_in_job (fun () -> claim_loop t job);
          Mutex.lock t.m
    end
  done;
  Mutex.unlock t.m

let create ?domains () =
  let requested =
    max 1 (min 128 (match domains with Some d -> d | None -> default_domains ()))
  in
  let t =
    {
      requested;
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [||];
      busy = Atomic.make false;
    }
  in
  if requested > 1 then
    t.workers <- Array.init (requested - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  let ws = t.workers in
  if Array.length ws > 0 then begin
    t.workers <- [||];
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    Array.iter Domain.join ws
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let global = ref None

let get () =
  match !global with
  | Some t -> t
  | None ->
      let t = create () in
      global := Some t;
      at_exit (fun () -> shutdown t);
      t

(* Execute [run] for every chunk index in [0, nchunks). Serial (ascending
   order) when the pool has one domain, when there is a single chunk, or
   when called from inside a running job (nesting). Chunk layout is the
   caller's; only the execution strategy varies, so results never do. *)
let run_chunked t ~nchunks run =
  if nchunks > 0 then
    if size t = 1 || nchunks = 1 || not (Atomic.compare_and_set t.busy false true)
    then
      with_in_job (fun () ->
          for k = 0 to nchunks - 1 do
            run k
          done)
    else begin
      let job =
        {
          run;
          nchunks;
          next = Atomic.make 0;
          completed = 0;
          failed = false;
          error = None;
        }
      in
      Mutex.lock t.m;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.m;
      with_in_job (fun () -> claim_loop t job);
      Mutex.lock t.m;
      while job.completed < job.nchunks do
        Condition.wait t.work_done t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      Atomic.set t.busy false;
      match job.error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let chunk_layout ?chunk ~lo ~hi () =
  let n = hi - lo in
  let csize =
    match chunk with Some c when c >= 1 -> c | _ -> default_chunk n
  in
  (csize, if n <= 0 then 0 else (n + csize - 1) / csize)

let num_chunks ?chunk ~lo ~hi () = snd (chunk_layout ?chunk ~lo ~hi ())

let parallel_for_chunks ?pool ?chunk ~lo ~hi f =
  let t = match pool with Some p -> p | None -> get () in
  let csize, nchunks = chunk_layout ?chunk ~lo ~hi () in
  run_chunked t ~nchunks (fun k ->
      let clo = lo + (k * csize) in
      f clo (min hi (clo + csize)))

let parallel_for_chunks_i ?pool ?chunk ~lo ~hi f =
  let t = match pool with Some p -> p | None -> get () in
  let csize, nchunks = chunk_layout ?chunk ~lo ~hi () in
  run_chunked t ~nchunks (fun k ->
      let clo = lo + (k * csize) in
      f k clo (min hi (clo + csize)))

let parallel_for ?pool ?chunk ~lo ~hi f =
  parallel_for_chunks ?pool ?chunk ~lo ~hi (fun clo chi ->
      for i = clo to chi - 1 do
        f i
      done)

let map_reduce ?pool ?chunk ~lo ~hi ~combine ~init map =
  let t = match pool with Some p -> p | None -> get () in
  let csize, nchunks = chunk_layout ?chunk ~lo ~hi () in
  if nchunks = 0 then init
  else begin
    let partials = Array.make nchunks None in
    run_chunked t ~nchunks (fun k ->
        let clo = lo + (k * csize) in
        partials.(k) <- Some (map clo (min hi (clo + csize))));
    Array.fold_left
      (fun acc p ->
        match p with Some v -> combine acc v | None -> acc)
      init partials
  end
