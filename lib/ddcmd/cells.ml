(** Linked-cell neighbour search: O(N) pair enumeration for short-range
    potentials under periodic boundaries. *)

module Fbuf = Icoe_util.Fbuf

type t = {
  ncell : int;  (** cells per dimension *)
  cell_size : float;
  head : int array;  (** first particle in each cell, -1 if empty *)
  next : int array;  (** next particle in same cell, -1 terminates *)
}

(* Coordinate -> cell index along one axis. Clamped on BOTH ends:
   [min] catches v = box (Float.rem can return the box edge for a tiny
   negative input), [max 0] catches unwrapped slightly-negative
   coordinates — without it a caller that writes positions directly and
   bins before wrapping indexes head.(-1). *)
(* [@inline always]: a float argument to a non-inlined call is boxed
   without flambda, and build calls this three times per particle *)
let[@inline always] cell_coord ~ncell ~cell_size v =
  min (ncell - 1) (max 0 (int_of_float (v /. cell_size)))

let build ?prev (p : Particles.t) ~cutoff =
  (* finer than ~cbrt(n) cells per side only adds empty-cell overhead *)
  let cap =
    max 3 (int_of_float (Float.ceil (float_of_int p.Particles.n ** (1.0 /. 3.0))))
  in
  let ncell = max 1 (min cap (int_of_float (p.Particles.box /. cutoff))) in
  let cell_size = p.Particles.box /. float_of_int ncell in
  (* reuse the previous build's arrays when the geometry still matches:
     steady-state rebuilds (every force call) then allocate nothing but
     this record *)
  let head, next =
    match prev with
    | Some t
      when t.ncell = ncell
           && Array.length t.next = p.Particles.n ->
        Array.fill t.head 0 (Array.length t.head) (-1);
        (t.head, t.next)
    | _ -> (Array.make (ncell * ncell * ncell) (-1), Array.make p.Particles.n (-1))
  in
  (* flat loop, no helper closures: a per-particle closure (or a
     non-inlined call taking the coordinate) allocates in what must be a
     steady-state-free rebuild *)
  let xb = p.Particles.x and yb = p.Particles.y and zb = p.Particles.z in
  for i = 0 to p.Particles.n - 1 do
    let cx = cell_coord ~ncell ~cell_size (Fbuf.get xb i)
    and cy = cell_coord ~ncell ~cell_size (Fbuf.get yb i)
    and cz = cell_coord ~ncell ~cell_size (Fbuf.get zb i) in
    let c = cx + (ncell * (cy + (ncell * cz))) in
    next.(i) <- head.(c);
    head.(c) <- i
  done;
  { ncell; cell_size; head; next }

(** Iterate [f j] over every neighbour [j <> i] of particle [i] within
    [cutoff], using the full shell of 27 cells (own cell + 26
    neighbours). Each pair is visited from both ends — the GPU-style
    full neighbour enumeration that makes the force kernel particle-
    parallel with disjoint writes. Falls back to an all-particles scan
    when the box is under 3 cells per side (where wrapped cell offsets
    would alias). Enumeration order depends only on the particle
    insertion order, never on who runs it.

    The engine's force kernel inlines this walk (a closure per particle
    would allocate); this closure form remains for observables and
    tests, and must enumerate in exactly the same order. *)
let iter_neighbors t (p : Particles.t) ~cutoff i f =
  let c2 = cutoff *. cutoff in
  if t.ncell < 3 then
    for j = 0 to p.Particles.n - 1 do
      if j <> i && Particles.dist2 p i j <= c2 then f j
    done
  else begin
    let nc = t.ncell in
    let wrap c = ((c mod nc) + nc) mod nc in
    let cofs v = cell_coord ~ncell:nc ~cell_size:t.cell_size v in
    let cx = cofs (Fbuf.get p.Particles.x i)
    and cy = cofs (Fbuf.get p.Particles.y i)
    and cz = cofs (Fbuf.get p.Particles.z i) in
    for dz = -1 to 1 do
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          let c' =
            wrap (cx + dx) + (nc * (wrap (cy + dy) + (nc * wrap (cz + dz))))
          in
          let j = ref t.head.(c') in
          while !j >= 0 do
            if !j <> i && Particles.dist2 p i !j <= c2 then f !j;
            j := t.next.(!j)
          done
        done
      done
    done
  end

(** Iterate [f i j] over each unordered pair within [cutoff] using the
    half-shell of neighbouring cells. When the box is under 3 cells per
    side the cell trick degenerates; fall back to all-pairs. *)
let iter_pairs t (p : Particles.t) ~cutoff f =
  let c2 = cutoff *. cutoff in
  if t.ncell < 3 then begin
    for i = 0 to p.Particles.n - 2 do
      for j = i + 1 to p.Particles.n - 1 do
        if Particles.dist2 p i j <= c2 then f i j
      done
    done
  end
  else begin
    let nc = t.ncell in
    let wrap c = ((c mod nc) + nc) mod nc in
    for cz = 0 to nc - 1 do
      for cy = 0 to nc - 1 do
        for cx = 0 to nc - 1 do
          let c = cx + (nc * (cy + (nc * cz))) in
          (* pairs within the same cell *)
          let i = ref t.head.(c) in
          while !i >= 0 do
            let j = ref t.next.(!i) in
            while !j >= 0 do
              if Particles.dist2 p !i !j <= c2 then f !i !j;
              j := t.next.(!j)
            done;
            i := t.next.(!i)
          done;
          (* half shell of 13 neighbour cells *)
          List.iter
            (fun (dx, dy, dz) ->
              let c' =
                wrap (cx + dx) + (nc * (wrap (cy + dy) + (nc * wrap (cz + dz))))
              in
              let i = ref t.head.(c) in
              while !i >= 0 do
                let j = ref t.head.(c') in
                while !j >= 0 do
                  if Particles.dist2 p !i !j <= c2 then f !i !j;
                  j := t.next.(!j)
                done;
                i := t.next.(!i)
              done)
            [
              (1, 0, 0); (0, 1, 0); (0, 0, 1);
              (1, 1, 0); (1, -1, 0); (1, 0, 1); (1, 0, -1);
              (0, 1, 1); (0, 1, -1);
              (1, 1, 1); (1, 1, -1); (1, -1, 1); (1, -1, -1);
            ]
        done
      done
    done
  end
