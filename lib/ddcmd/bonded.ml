(** Bonded interactions: harmonic bonds and harmonic angles, the "nested,
    pointer-rich" terms the paper had to marshal for the GPU. *)

type bond = { bi : int; bj : int; k : float; r0 : float }
type angle = { ai : int; aj : int; ak : int; ka : float; theta0 : float }

(** Accumulate bond forces and return the bond potential energy. *)
module Fbuf = Icoe_util.Fbuf

let bond_forces (p : Particles.t) bonds =
  List.fold_left
    (fun acc { bi; bj; k; r0 } ->
      let dx = Particles.min_image p ((Fbuf.get p.Particles.x bi) -. (Fbuf.get p.Particles.x bj)) in
      let dy = Particles.min_image p ((Fbuf.get p.Particles.y bi) -. (Fbuf.get p.Particles.y bj)) in
      let dz = Particles.min_image p ((Fbuf.get p.Particles.z bi) -. (Fbuf.get p.Particles.z bj)) in
      let r = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
      let dr = r -. r0 in
      (* F_i = -k (r - r0) * rhat *)
      let fmag = -.k *. dr /. max r 1e-12 in
      Fbuf.set p.Particles.fx bi ((Fbuf.get p.Particles.fx bi) +. (fmag *. dx));
      Fbuf.set p.Particles.fy bi ((Fbuf.get p.Particles.fy bi) +. (fmag *. dy));
      Fbuf.set p.Particles.fz bi ((Fbuf.get p.Particles.fz bi) +. (fmag *. dz));
      Fbuf.set p.Particles.fx bj ((Fbuf.get p.Particles.fx bj) -. (fmag *. dx));
      Fbuf.set p.Particles.fy bj ((Fbuf.get p.Particles.fy bj) -. (fmag *. dy));
      Fbuf.set p.Particles.fz bj ((Fbuf.get p.Particles.fz bj) -. (fmag *. dz));
      acc +. (0.5 *. k *. dr *. dr))
    0.0 bonds

(** Accumulate angle forces (harmonic in theta) and return the energy. *)
let angle_forces (p : Particles.t) angles =
  List.fold_left
    (fun acc { ai; aj; ak = akk; ka; theta0 } ->
      (* vectors from the central atom j *)
      let x1 = Particles.min_image p ((Fbuf.get p.Particles.x ai) -. (Fbuf.get p.Particles.x aj)) in
      let y1 = Particles.min_image p ((Fbuf.get p.Particles.y ai) -. (Fbuf.get p.Particles.y aj)) in
      let z1 = Particles.min_image p ((Fbuf.get p.Particles.z ai) -. (Fbuf.get p.Particles.z aj)) in
      let x2 = Particles.min_image p ((Fbuf.get p.Particles.x akk) -. (Fbuf.get p.Particles.x aj)) in
      let y2 = Particles.min_image p ((Fbuf.get p.Particles.y akk) -. (Fbuf.get p.Particles.y aj)) in
      let z2 = Particles.min_image p ((Fbuf.get p.Particles.z akk) -. (Fbuf.get p.Particles.z aj)) in
      let r1 = sqrt ((x1 ** 2.0) +. (y1 ** 2.0) +. (z1 ** 2.0)) in
      let r2 = sqrt ((x2 ** 2.0) +. (y2 ** 2.0) +. (z2 ** 2.0)) in
      let d = ((x1 *. x2) +. (y1 *. y2) +. (z1 *. z2)) /. (r1 *. r2) in
      let d = max (-0.999999) (min 0.999999 d) in
      let theta = acos d in
      let dtheta = theta -. theta0 in
      (* dE/dtheta = ka * dtheta; chain rule through cos *)
      let de_dcos = -.ka *. dtheta /. sqrt (1.0 -. (d *. d)) in
      (* gradients of cos(theta) wrt r1 vec and r2 vec *)
      let gx1 = (x2 /. (r1 *. r2)) -. (d *. x1 /. (r1 *. r1)) in
      let gy1 = (y2 /. (r1 *. r2)) -. (d *. y1 /. (r1 *. r1)) in
      let gz1 = (z2 /. (r1 *. r2)) -. (d *. z1 /. (r1 *. r1)) in
      let gx2 = (x1 /. (r1 *. r2)) -. (d *. x2 /. (r2 *. r2)) in
      let gy2 = (y1 /. (r1 *. r2)) -. (d *. y2 /. (r2 *. r2)) in
      let gz2 = (z1 /. (r1 *. r2)) -. (d *. z2 /. (r2 *. r2)) in
      let fi = (-.de_dcos *. gx1, -.de_dcos *. gy1, -.de_dcos *. gz1) in
      let fk = (-.de_dcos *. gx2, -.de_dcos *. gy2, -.de_dcos *. gz2) in
      let fix, fiy, fiz = fi and fkx, fky, fkz = fk in
      Fbuf.set p.Particles.fx ai ((Fbuf.get p.Particles.fx ai) +. fix);
      Fbuf.set p.Particles.fy ai ((Fbuf.get p.Particles.fy ai) +. fiy);
      Fbuf.set p.Particles.fz ai ((Fbuf.get p.Particles.fz ai) +. fiz);
      Fbuf.set p.Particles.fx akk ((Fbuf.get p.Particles.fx akk) +. fkx);
      Fbuf.set p.Particles.fy akk ((Fbuf.get p.Particles.fy akk) +. fky);
      Fbuf.set p.Particles.fz akk ((Fbuf.get p.Particles.fz akk) +. fkz);
      Fbuf.set p.Particles.fx aj ((Fbuf.get p.Particles.fx aj) -. fix -. fkx);
      Fbuf.set p.Particles.fy aj ((Fbuf.get p.Particles.fy aj) -. fiy -. fky);
      Fbuf.set p.Particles.fz aj ((Fbuf.get p.Particles.fz aj) -. fiz -. fkz);
      acc +. (0.5 *. ka *. dtheta *. dtheta))
    0.0 angles
