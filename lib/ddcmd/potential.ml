(** The generic pair-processing infrastructure (Sec 4.6): "a templatized
    generic pair processing infrastructure that can be used to efficiently
    implement a diverse set of potential forms".

    A potential is a record of closures over (species_i, species_j, r^2):
    the force loop is written once, any functional form plugs in. The
    primitive is [eval_into], which works over a 3-wide slot of a
    caller-provided buffer: r^2 is READ from [off], energy and f_over_r
    are WRITTEN to [off + 1] and [off + 2]. Passing r^2 through the slot
    rather than as a float argument matters: [eval_into] is an indirect
    call through a record field, and without flambda every float passed
    to an unknown function is boxed — two words per pair, the dominant
    allocation of the whole force loop. The force kernel hands it a
    per-chunk scratch slot, so evaluating a pair allocates nothing. The
    tuple-returning {!eval} wrapper remains for tests and observables.
    Energies are shifted to zero at the cutoff so they are continuous. *)

module Fbuf = Icoe_util.Fbuf

type t = {
  name : string;
  cutoff : float;
  eval_into : si:int -> sj:int -> Fbuf.t -> int -> unit;
      (** reads r^2 from [off]; writes energy at [off + 1], f_over_r at
          [off + 2]; force vector on i is f_over_r * (ri - rj) *)
}

(** Tuple-returning convenience wrapper (allocates; tests and
    single-pair probes only — the force loop uses [eval_into]). *)
let eval t ~si ~sj ~r2 =
  let slot = Fbuf.create 3 in
  Fbuf.set slot 0 r2;
  t.eval_into ~si ~sj slot 0;
  (Fbuf.get slot 1, Fbuf.get slot 2)

(** Lennard-Jones 12-6 with energy shifted to 0 at the cutoff. *)
let lennard_jones ?(epsilon = 1.0) ?(sigma = 1.0) ?(cutoff = 2.5) () =
  let c2 = cutoff *. cutoff *. sigma *. sigma in
  let shift =
    let sr6 = (sigma /. (cutoff *. sigma)) ** 6.0 in
    4.0 *. epsilon *. ((sr6 *. sr6) -. sr6)
  in
  {
    name = "lj";
    cutoff = cutoff *. sigma;
    eval_into =
      (fun ~si:_ ~sj:_ out off ->
        let r2 = Fbuf.get out off in
        if r2 >= c2 then begin
          Fbuf.set out (off + 1) 0.0;
          Fbuf.set out (off + 2) 0.0
        end
        else begin
          let inv_r2 = sigma *. sigma /. r2 in
          let sr6 = inv_r2 ** 3.0 in
          let sr12 = sr6 *. sr6 in
          Fbuf.set out (off + 1) ((4.0 *. epsilon *. (sr12 -. sr6)) -. shift);
          Fbuf.set out (off + 2)
            (24.0 *. epsilon *. ((2.0 *. sr12) -. sr6) /. r2)
        end);
  }

(** Buckingham exp-6: A exp(-r/rho) - C / r^6. Below [inner] the r^-6 term
    unphysically diverges (the exp-6 catastrophe), so the force switches to
    a stiff constant repulsion — the standard inner-cutoff guard. *)
let exp6 ?(a = 1000.0) ?(rho = 0.3) ?(c = 1.0) ?(cutoff = 2.5) ?(inner = 0.8) () =
  {
    name = "exp6";
    cutoff;
    eval_into =
      (fun ~si:_ ~sj:_ out off ->
        let r2 = Fbuf.get out off in
        if r2 >= cutoff *. cutoff then begin
          Fbuf.set out (off + 1) 0.0;
          Fbuf.set out (off + 2) 0.0
        end
        else if r2 < inner *. inner then begin
          (* capped core: strong repulsion pushing outward *)
          let r = sqrt (max r2 1e-6) in
          Fbuf.set out (off + 1) a;
          Fbuf.set out (off + 2) (a /. rho /. r)
        end
        else begin
          let r = sqrt r2 in
          let erep = a *. exp (-.r /. rho) in
          let edisp = c /. (r2 *. r2 *. r2) in
          Fbuf.set out (off + 1) (erep -. edisp);
          Fbuf.set out (off + 2) (((erep /. rho) -. (6.0 *. edisp /. r)) /. r)
        end);
  }

(** Martini-style coarse-grained LJ: per-species-pair epsilon/sigma matrix
    (the community-standard membrane force field the MuMMI micro model
    uses). *)
let martini ~(epsilon : float array array) ~(sigma : float array array)
    ?(cutoff = 1.2) () =
  {
    name = "martini";
    cutoff;
    eval_into =
      (fun ~si ~sj out off ->
        let r2 = Fbuf.get out off in
        if r2 >= cutoff *. cutoff then begin
          Fbuf.set out (off + 1) 0.0;
          Fbuf.set out (off + 2) 0.0
        end
        else begin
          let eps = epsilon.(si).(sj) and sg = sigma.(si).(sj) in
          let inv_r2 = sg *. sg /. r2 in
          let sr6 = inv_r2 ** 3.0 in
          let sr12 = sr6 *. sr6 in
          Fbuf.set out (off + 1) (4.0 *. eps *. (sr12 -. sr6));
          Fbuf.set out (off + 2) (24.0 *. eps *. ((2.0 *. sr12) -. sr6) /. r2)
        end);
  }

(** Purely repulsive soft sphere (for fast smoke tests). *)
let soft_sphere ?(epsilon = 1.0) ?(sigma = 1.0) () =
  {
    name = "soft";
    cutoff = sigma;
    eval_into =
      (fun ~si:_ ~sj:_ out off ->
        let r2 = Fbuf.get out off in
        if r2 >= sigma *. sigma then begin
          Fbuf.set out (off + 1) 0.0;
          Fbuf.set out (off + 2) 0.0
        end
        else begin
          let r = sqrt r2 in
          let overlap = 1.0 -. (r /. sigma) in
          Fbuf.set out (off + 1) (epsilon *. overlap *. overlap);
          Fbuf.set out (off + 2) (2.0 *. epsilon *. overlap /. (sigma *. r))
        end);
  }
