(** Linked-cell neighbour search: O(N) pair enumeration for short-range
    potentials under periodic boundaries. *)

type t = {
  ncell : int;  (** cells per dimension *)
  cell_size : float;
  head : int array;
  next : int array;
}

val build : Particles.t -> cutoff:float -> t
(** Cell size >= cutoff; the per-side count is capped near cbrt(n) so
    sparse systems don't pay for empty cells. *)

val iter_pairs : t -> Particles.t -> cutoff:float -> (int -> int -> unit) -> unit
(** Each unordered pair within the cutoff exactly once (half-shell
    enumeration; all-pairs fallback on very small grids). *)

val iter_neighbors :
  t -> Particles.t -> cutoff:float -> int -> (int -> unit) -> unit
(** [iter_neighbors t p ~cutoff i f] calls [f j] for every [j <> i]
    within the cutoff of particle [i] (full 27-cell shell; each pair is
    seen from both ends). The particle-parallel dual of {!iter_pairs}:
    per-particle force accumulation needs no synchronization, which is
    how the pooled force kernel keeps disjoint writes. *)
