(** Linked-cell neighbour search: O(N) pair enumeration for short-range
    potentials under periodic boundaries. *)

type t = {
  ncell : int;  (** cells per dimension *)
  cell_size : float;
  head : int array;
  next : int array;
}

val cell_coord : ncell:int -> cell_size:float -> float -> int
(** Coordinate to cell index along one axis, clamped into
    [0, ncell-1] on both ends — unwrapped slightly-negative coordinates
    bin to cell 0 rather than indexing out of bounds. *)

val build : ?prev:t -> Particles.t -> cutoff:float -> t
(** Cell size >= cutoff; the per-side count is capped near cbrt(n) so
    sparse systems don't pay for empty cells. Pass the previous build
    as [?prev] to reuse its arrays when the geometry is unchanged —
    steady-state rebuilds then allocate nothing but the record. *)

val iter_pairs : t -> Particles.t -> cutoff:float -> (int -> int -> unit) -> unit
(** Each unordered pair within the cutoff exactly once (half-shell
    enumeration; all-pairs fallback on very small grids). *)

val iter_neighbors :
  t -> Particles.t -> cutoff:float -> int -> (int -> unit) -> unit
(** [iter_neighbors t p ~cutoff i f] calls [f j] for every [j <> i]
    within the cutoff of particle [i] (full 27-cell shell; each pair is
    seen from both ends). The particle-parallel dual of {!iter_pairs}:
    per-particle force accumulation needs no synchronization, which is
    how the pooled force kernel keeps disjoint writes. The engine
    inlines this walk in its chunk body (same enumeration order); this
    closure form serves observables and tests. *)
