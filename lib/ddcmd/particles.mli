(** Particle store in struct-of-arrays layout with a periodic cubic box
    (the locality layout the ddcMD port converted to). Components are
    flat float64 {!Icoe_util.Fbuf} Bigarrays, read and written with
    unchecked single-load access in the hot loops. Positions are
    wrapped into [0, box). *)

type t = {
  n : int;
  mutable box : float;
  x : Icoe_util.Fbuf.t;
  y : Icoe_util.Fbuf.t;
  z : Icoe_util.Fbuf.t;
  vx : Icoe_util.Fbuf.t;
  vy : Icoe_util.Fbuf.t;
  vz : Icoe_util.Fbuf.t;
  fx : Icoe_util.Fbuf.t;
  fy : Icoe_util.Fbuf.t;
  fz : Icoe_util.Fbuf.t;
  mass : Icoe_util.Fbuf.t;
  species : int array;
}

val create : n:int -> box:float -> t
(** Requires positive counts and box size. *)

val wrap : t -> float -> float
val wrap_all : t -> unit

val min_image : t -> float -> float
(** Minimum-image displacement component. *)

val dist2 : t -> int -> int -> float
(** Squared minimum-image distance. *)

val lattice_init : t -> unit
(** Cubic-lattice placement (stable non-overlapping start). *)

val thermalize : t -> rng:Icoe_util.Rng.t -> temp:float -> unit
(** Maxwell-Boltzmann velocities (kB = 1), COM drift removed. *)

val kinetic_energy : t -> float
val temperature : t -> float
val total_momentum : t -> float * float * float
val zero_forces : t -> unit
