(** Verlet neighbour lists with a skin: pairs within cutoff + skin are
    enumerated once and reused until any particle has moved half the
    skin. *)

type t = {
  cutoff : float;
  skin : float;
  pairs : (int * int) array;
  x0 : Icoe_util.Fbuf.t;
  y0 : Icoe_util.Fbuf.t;
  z0 : Icoe_util.Fbuf.t;
  mutable rebuilds : int;
}

val build : ?skin:float -> Particles.t -> cutoff:float -> t

val needs_rebuild : t -> Particles.t -> bool
(** True once any particle has moved more than skin/2 since build. *)

val refresh : t -> Particles.t -> t
(** Rebuild if stale (counting rebuilds); otherwise return unchanged. *)

val iter_pairs : t -> Particles.t -> (int -> int -> unit) -> unit
(** Pairs currently within the true cutoff (distances re-checked). *)
