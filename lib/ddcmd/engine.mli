(** The ddcMD engine: the full MD loop the paper moved onto the GPU —
    nonbonded (generic pair infrastructure over linked cells), bonded
    terms, velocity Verlet, Langevin thermostat, Berendsen barostat, and
    SHAKE-style bond constraints. *)

type t = {
  p : Particles.t;
  potential : Potential.t;
  bonds : Bonded.bond list;
  angles : Bonded.angle list;
  constraints : (int * int * float) list;  (** (i, j, fixed distance) *)
  dt : float;
  mutable pot_energy : float;
  mutable virial : float;
  mutable steps : int;
  mutable pair_count : int;
  mutable cells : Cells.t option;
      (** last cell-list build, reused in place by the next force call *)
  arena : Prog.Scratch.t;  (** per-chunk force-kernel scratch slots *)
}

val create :
  ?bonds:Bonded.bond list -> ?angles:Bonded.angle list ->
  ?constraints:(int * int * float) list -> dt:float -> potential:Potential.t ->
  Particles.t -> t

val compute_forces : t -> unit
(** Recompute all forces; updates potential energy and virial.
    Particle-parallel on the {!Icoe_par.Pool}: each particle accumulates
    its force over the full neighbour shell (GPU-style, each pair
    evaluated from both ends), so writes are disjoint and the result is
    bit-identical to {!compute_forces_seq} for any pool size. *)

val compute_forces_seq : t -> unit
(** Serial reference path: same algorithm and chunk-ordered reduction,
    entirely in the calling domain. *)

val shake : ?iters:int -> ?tol:float -> t -> unit
(** Iterative projection onto the constraint manifold. *)

val step :
  ?langevin:float * float * Icoe_util.Rng.t -> ?berendsen:float * float ->
  t -> unit
(** One velocity-Verlet step (NVE when both couplings are off).
    [langevin] is (gamma, temperature, rng); [berendsen] is
    (coupling, target pressure). *)

val total_energy : t -> float
val pressure : t -> float

val run :
  ?langevin:float * float * Icoe_util.Rng.t -> ?berendsen:float * float ->
  t -> steps:int -> unit

type snapshot
(** Full MD state: positions, velocities, forces, box and engine
    accumulators. *)

val snapshot : t -> snapshot
(** Deep copy of the mutable state, for checkpoint/restart
    ({!Icoe_fault.Checkpoint}). *)

val restore : t -> snapshot -> unit
(** Restore a snapshot taken from the same engine; deterministic
    stepping (e.g. NVE, or Langevin with a replayed rng) after a
    restore replays bit-identically. *)

val rdf : ?bins:int -> ?rmax:float -> t -> float array
(** Radial distribution function g(r), normalized against the ideal-gas
    expectation — MuMMI's in-situ analysis staple. *)

val vacf :
  ?langevin:float * float * Icoe_util.Rng.t -> ?samples:int -> ?stride:int ->
  t -> float array
(** Normalized velocity autocorrelation function over a trajectory. *)

val diffusion_coefficient : vacf:float array -> c0:float -> dt_sample:float -> float
(** Green-Kubo diffusion coefficient from a sampled VACF, where [c0] is
    the unnormalized <v.v> at lag zero (3 T / m in reduced units). *)
