(** Particle store in struct-of-arrays layout with a periodic cubic box.

    The paper's ddcMD port "converted the array of structs to a struct of
    arrays" for locality; we keep that layout so per-array streaming costs
    are explicit. Each component lives in a flat float64
    {!Icoe_util.Fbuf} Bigarray: the force loop reads and writes them with
    unchecked single-load access and the GC never scans or moves them.
    Positions are wrapped into [0, box). *)

module Fbuf = Icoe_util.Fbuf

type t = {
  n : int;
  mutable box : float;  (** cubic box edge length *)
  x : Fbuf.t;
  y : Fbuf.t;
  z : Fbuf.t;
  vx : Fbuf.t;
  vy : Fbuf.t;
  vz : Fbuf.t;
  fx : Fbuf.t;
  fy : Fbuf.t;
  fz : Fbuf.t;
  mass : Fbuf.t;
  species : int array;
}

let create ~n ~box =
  assert (n > 0 && box > 0.0);
  let mass = Fbuf.create n in
  Fbuf.fill mass 1.0;
  {
    n;
    box;
    x = Fbuf.create n;
    y = Fbuf.create n;
    z = Fbuf.create n;
    vx = Fbuf.create n;
    vy = Fbuf.create n;
    vz = Fbuf.create n;
    fx = Fbuf.create n;
    fy = Fbuf.create n;
    fz = Fbuf.create n;
    mass;
    species = Array.make n 0;
  }

let wrap t v =
  let b = t.box in
  let w = Float.rem v b in
  if w < 0.0 then w +. b else w

let wrap_all t =
  for i = 0 to t.n - 1 do
    Fbuf.set t.x i (wrap t (Fbuf.get t.x i));
    Fbuf.set t.y i (wrap t (Fbuf.get t.y i));
    Fbuf.set t.z i (wrap t (Fbuf.get t.z i))
  done

(** Minimum-image displacement component. *)
let min_image t d =
  let b = t.box in
  if d > b /. 2.0 then d -. b else if d < -.b /. 2.0 then d +. b else d

(** Squared minimum-image distance between particles i and j. *)
let dist2 t i j =
  let dx = min_image t (Fbuf.get t.x i -. Fbuf.get t.x j) in
  let dy = min_image t (Fbuf.get t.y i -. Fbuf.get t.y j) in
  let dz = min_image t (Fbuf.get t.z i -. Fbuf.get t.z j) in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz)

(** Place particles on a cubic lattice (stable non-overlapping start). *)
let lattice_init t =
  let per_side = int_of_float (Float.ceil (float_of_int t.n ** (1.0 /. 3.0))) in
  let spacing = t.box /. float_of_int per_side in
  for i = 0 to t.n - 1 do
    let ix = i mod per_side in
    let iy = i / per_side mod per_side in
    let iz = i / (per_side * per_side) in
    Fbuf.set t.x i ((float_of_int ix +. 0.5) *. spacing);
    Fbuf.set t.y i ((float_of_int iy +. 0.5) *. spacing);
    Fbuf.set t.z i ((float_of_int iz +. 0.5) *. spacing)
  done

(** Maxwell-Boltzmann velocities at temperature [temp] (kB = 1 units),
    with the centre-of-mass drift removed. *)
let thermalize t ~(rng : Icoe_util.Rng.t) ~temp =
  for i = 0 to t.n - 1 do
    let s = sqrt (temp /. Fbuf.get t.mass i) in
    Fbuf.set t.vx i (s *. Icoe_util.Rng.gaussian rng);
    Fbuf.set t.vy i (s *. Icoe_util.Rng.gaussian rng);
    Fbuf.set t.vz i (s *. Icoe_util.Rng.gaussian rng)
  done;
  (* remove COM drift *)
  let mx = ref 0.0 and my = ref 0.0 and mz = ref 0.0 and mt = ref 0.0 in
  for i = 0 to t.n - 1 do
    let m = Fbuf.get t.mass i in
    mx := !mx +. (m *. Fbuf.get t.vx i);
    my := !my +. (m *. Fbuf.get t.vy i);
    mz := !mz +. (m *. Fbuf.get t.vz i);
    mt := !mt +. m
  done;
  for i = 0 to t.n - 1 do
    Fbuf.set t.vx i (Fbuf.get t.vx i -. (!mx /. !mt));
    Fbuf.set t.vy i (Fbuf.get t.vy i -. (!my /. !mt));
    Fbuf.set t.vz i (Fbuf.get t.vz i -. (!mz /. !mt))
  done

let kinetic_energy t =
  let e = ref 0.0 in
  for i = 0 to t.n - 1 do
    e :=
      !e
      +. (0.5 *. Fbuf.get t.mass i
         *. ((Fbuf.get t.vx i ** 2.0) +. (Fbuf.get t.vy i ** 2.0)
            +. (Fbuf.get t.vz i ** 2.0)))
  done;
  !e

(** Instantaneous temperature (kB = 1): 2 KE / (3 N). *)
let temperature t = 2.0 *. kinetic_energy t /. (3.0 *. float_of_int t.n)

let total_momentum t =
  let mx = ref 0.0 and my = ref 0.0 and mz = ref 0.0 in
  for i = 0 to t.n - 1 do
    let m = Fbuf.get t.mass i in
    mx := !mx +. (m *. Fbuf.get t.vx i);
    my := !my +. (m *. Fbuf.get t.vy i);
    mz := !mz +. (m *. Fbuf.get t.vz i)
  done;
  (!mx, !my, !mz)

let zero_forces t =
  Fbuf.fill t.fx 0.0;
  Fbuf.fill t.fy 0.0;
  Fbuf.fill t.fz 0.0
