(** Verlet neighbour lists with a skin: the classic MD optimization (and
    the structure ddcMD's GPU port assigns multiple threads per particle
    list to). Pairs within cutoff + skin are enumerated once via the cell
    grid and reused until any particle has moved half the skin, when the
    list must be rebuilt. *)

module Fbuf = Icoe_util.Fbuf

type t = {
  cutoff : float;
  skin : float;
  pairs : (int * int) array;  (** all pairs within cutoff + skin at build *)
  x0 : Fbuf.t;  (** positions at build time *)
  y0 : Fbuf.t;
  z0 : Fbuf.t;
  mutable rebuilds : int;
}

let build ?(skin = 0.4) (p : Particles.t) ~cutoff =
  let reach = cutoff +. skin in
  let cl = Cells.build p ~cutoff:reach in
  let acc = ref [] in
  Cells.iter_pairs cl p ~cutoff:reach (fun i j -> acc := (i, j) :: !acc);
  {
    cutoff;
    skin;
    pairs = Array.of_list !acc;
    x0 = Fbuf.copy p.Particles.x;
    y0 = Fbuf.copy p.Particles.y;
    z0 = Fbuf.copy p.Particles.z;
    rebuilds = 1;
  }

(** Has any particle moved more than skin/2 since the list was built?
    (the standard safety criterion: two such particles could have
    approached by a full skin) *)
let needs_rebuild t (p : Particles.t) =
  let limit2 = t.skin *. t.skin /. 4.0 in
  let n = p.Particles.n in
  let rec go i =
    if i >= n then false
    else
      let dx = Particles.min_image p ((Fbuf.get p.Particles.x i) -. (Fbuf.get t.x0 i)) in
      let dy = Particles.min_image p ((Fbuf.get p.Particles.y i) -. (Fbuf.get t.y0 i)) in
      let dz = Particles.min_image p ((Fbuf.get p.Particles.z i) -. (Fbuf.get t.z0 i)) in
      if (dx *. dx) +. (dy *. dy) +. (dz *. dz) > limit2 then true
      else go (i + 1)
  in
  go 0

(** Refresh in place if stale; returns the (possibly new) list. *)
let refresh t (p : Particles.t) =
  if needs_rebuild t p then begin
    let fresh = build ~skin:t.skin p ~cutoff:t.cutoff in
    { fresh with rebuilds = t.rebuilds + 1 }
  end
  else t

(** Iterate [f i j] over pairs currently within the true cutoff (the
    list over-approximates by the skin; distances are re-checked). *)
let iter_pairs t (p : Particles.t) f =
  let c2 = t.cutoff *. t.cutoff in
  Array.iter (fun (i, j) -> if Particles.dist2 p i j <= c2 then f i j) t.pairs
