(** The Sec 4.6 performance comparison: ddcMD vs GROMACS on a Martini
    membrane patch.

    ddcMD moved the entire MD loop into 46 double-precision GPU kernels
    with no per-step host traffic; GROMACS (single precision, 8 kernels)
    load-balances bonded/integration work onto the CPU and pays per-step
    transfers. When the CPUs are busy (MuMMI), GROMACS' CPU share stalls
    and the gap widens to ~2.3x. *)

type scenario = One_gpu | Four_gpu | Mummi

val scenario_name : scenario -> string

val flops_per_particle : float
(** Calibrated per-particle DP flop volume of one full ddcMD step, pinned
    to the paper's 2.31 ms/step at the MuMMI membrane-patch size. *)

type step_model = {
  serial_s : float;
      (** the exact pre-scheduler ddcMD step time: compute + 46 launch
          overheads (multi-GPU scaling folded into compute) *)
  overlapped_s : float;
      (** critical path with launches issued from a "cpu" stream under
          the "gpu" kernel pipeline and the [Four_gpu] halo on a "nic"
          stream — only the first launch stays exposed *)
  step_s : float;  (** the charged time: overlapped or serial *)
  dag : Icoe_obs.Prof.item array;
      (** the scheduled launch/kernel/halo DAG, ready for
          {!Icoe_obs.Prof.analyze} critical-path blame *)
}

val kernel_count : int
(** The 46 fused double-precision kernels of one ddcMD step. *)

val ddcmd_step_model :
  ?particles:int -> ?overlap:bool -> ?trace:Hwsim.Trace.t ->
  ?node:Hwsim.Node.t -> ?gpu_frac:float -> ?comm:Hwsim.Split.comm ->
  scenario -> step_model
(** Per-step launch/kernel/halo pipeline model for the ddcMD side.
    [overlap] defaults to {!Hwsim.Sched.overlap_enabled}; a bound
    [trace] receives one step's items.

    Without a [node] the calibrated Sierra constants (V100 at 60% DP
    peak, 2x P9 at 40%) are used verbatim; with one, the same
    efficiencies are applied to that node's devices (raises
    [Invalid_argument] on a GPU-less node). [gpu_frac] (default 1.0)
    splits each fused kernel between the "gpu" stream and a "host"
    stream of co-executing CPU slices; [comm] keeps the [Four_gpu] halo
    on its own "nic" stream ([Dedicated], the default) or issues it
    inline on the compute stream. At the defaults the model is
    bit-identical to the pre-split one. *)

val step_times : ?particles:int -> ?overlap:bool -> scenario -> float * float
(** (ddcmd_seconds, gromacs_seconds) per MD step. The ddcMD side uses
    {!ddcmd_step_model}'s charged time; GROMACS' synchronous per-step
    host transfers stay serialized. *)

val ddcmd_peak_fraction : unit -> float
(** Fraction of V100 DP peak the calibrated step achieves (paper: >30%). *)
