(** The ddcMD engine: the full MD loop the paper moved onto the GPU —
    nonbonded (generic pair infrastructure over linked cells), bonded
    terms, velocity Verlet, Langevin thermostat, Berendsen barostat, and
    SHAKE-style bond constraints. *)

type t = {
  p : Particles.t;
  potential : Potential.t;
  bonds : Bonded.bond list;
  angles : Bonded.angle list;
  constraints : (int * int * float) list;  (** (i, j, fixed distance) *)
  dt : float;
  mutable pot_energy : float;
  mutable virial : float;
  mutable steps : int;
  mutable pair_count : int;  (** pairs evaluated last force call *)
}

let m_force_evals =
  Icoe_obs.Metrics.counter ~help:"Full force recomputations"
    "md_force_evaluations_total"

let m_pairs =
  Icoe_obs.Metrics.counter ~help:"Pair interactions evaluated"
    "md_pair_interactions_total"

let m_steps =
  Icoe_obs.Metrics.counter ~help:"Velocity-Verlet steps" "md_steps_total"

let m_drift =
  Icoe_obs.Metrics.gauge
    ~help:"Relative total-energy drift over the last run call"
    "md_energy_drift"

let create ?(bonds = []) ?(angles = []) ?(constraints = []) ~dt ~potential p =
  {
    p;
    potential;
    bonds;
    angles;
    constraints;
    dt;
    pot_energy = 0.0;
    virial = 0.0;
    steps = 0;
    pair_count = 0;
  }

(* Nonbonded forces on particles [lo, hi): the per-particle full-shell
   enumeration (each pair seen from both ends, so every particle's force
   sum is written by exactly one iteration — no synchronization, and the
   same summation order whoever runs the chunk). Returns the chunk's
   (2*epot, 2*virial, evaluations): pair-shared terms are halved once,
   after the deterministic chunk-ordered reduction. *)
let nonbonded_chunk t cl lo hi =
  let p = t.p in
  let cutoff = t.potential.Potential.cutoff in
  let epot2 = ref 0.0 and virial2 = ref 0.0 and evals = ref 0 in
  for i = lo to hi - 1 do
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    Cells.iter_neighbors cl p ~cutoff i (fun j ->
        incr evals;
        let r2 = Particles.dist2 p i j in
        let e, f_over_r =
          t.potential.Potential.eval ~si:p.Particles.species.(i)
            ~sj:p.Particles.species.(j) ~r2
        in
        if f_over_r <> 0.0 || e <> 0.0 then begin
          epot2 := !epot2 +. e;
          virial2 := !virial2 +. (f_over_r *. r2);
          let dx = Particles.min_image p (p.Particles.x.(i) -. p.Particles.x.(j)) in
          let dy = Particles.min_image p (p.Particles.y.(i) -. p.Particles.y.(j)) in
          let dz = Particles.min_image p (p.Particles.z.(i) -. p.Particles.z.(j)) in
          fx := !fx +. (f_over_r *. dx);
          fy := !fy +. (f_over_r *. dy);
          fz := !fz +. (f_over_r *. dz)
        end);
    p.Particles.fx.(i) <- !fx;
    p.Particles.fy.(i) <- !fy;
    p.Particles.fz.(i) <- !fz
  done;
  (!epot2, !virial2, !evals)

let finish_forces t (epot2, virial2, evals) =
  let p = t.p in
  let epot = ref (0.5 *. epot2) in
  epot := !epot +. Bonded.bond_forces p t.bonds;
  epot := !epot +. Bonded.angle_forces p t.angles;
  t.pot_energy <- !epot;
  t.virial <- 0.5 *. virial2;
  t.pair_count <- evals / 2;
  Icoe_obs.Metrics.inc m_force_evals;
  Icoe_obs.Metrics.inc ~by:(float_of_int t.pair_count) m_pairs

let combine_chunks (ea, va, na) (eb, vb, nb) = (ea +. eb, va +. vb, na + nb)

(** Recompute all forces; updates [pot_energy] and [virial].
    Particle-parallel on the {!Icoe_par.Pool}: per-particle full-shell
    accumulation gives disjoint writes, and the energy/virial partials
    are combined in chunk order, so the result is bit-identical to
    {!compute_forces_seq} for any pool size. Bonded terms stay serial
    (they are a small fraction of the work). *)
let compute_forces t =
  let p = t.p in
  let cl = Cells.build p ~cutoff:t.potential.Potential.cutoff in
  finish_forces t
    (Icoe_par.Pool.map_reduce ~lo:0 ~hi:p.Particles.n
       ~combine:combine_chunks ~init:(0.0, 0.0, 0)
       (fun lo hi -> nonbonded_chunk t cl lo hi))

(** Serial reference path: the same per-particle algorithm and chunk
    layout run entirely in the calling domain. *)
let compute_forces_seq t =
  let p = t.p in
  let cl = Cells.build p ~cutoff:t.potential.Potential.cutoff in
  let n = p.Particles.n in
  let csize = Icoe_par.Pool.default_chunk n in
  let acc = ref (0.0, 0.0, 0) in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + csize) in
    acc := combine_chunks !acc (nonbonded_chunk t cl !lo hi);
    lo := hi
  done;
  finish_forces t !acc

(* SHAKE: iteratively project positions back onto the constraint manifold *)
let shake ?(iters = 50) ?(tol = 1e-8) t =
  let p = t.p in
  let rec loop k =
    if k >= iters then ()
    else begin
      let worst = ref 0.0 in
      List.iter
        (fun (i, j, d0) ->
          let dx = Particles.min_image p (p.Particles.x.(i) -. p.Particles.x.(j)) in
          let dy = Particles.min_image p (p.Particles.y.(i) -. p.Particles.y.(j)) in
          let dz = Particles.min_image p (p.Particles.z.(i) -. p.Particles.z.(j)) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
          let diff = r2 -. (d0 *. d0) in
          worst := max !worst (Float.abs diff /. (d0 *. d0));
          let mi = p.Particles.mass.(i) and mj = p.Particles.mass.(j) in
          (* first-order correction along the bond *)
          let g = diff /. (2.0 *. r2 *. ((1.0 /. mi) +. (1.0 /. mj))) in
          p.Particles.x.(i) <- p.Particles.x.(i) -. (g *. dx /. mi);
          p.Particles.y.(i) <- p.Particles.y.(i) -. (g *. dy /. mi);
          p.Particles.z.(i) <- p.Particles.z.(i) -. (g *. dz /. mi);
          p.Particles.x.(j) <- p.Particles.x.(j) +. (g *. dx /. mj);
          p.Particles.y.(j) <- p.Particles.y.(j) +. (g *. dy /. mj);
          p.Particles.z.(j) <- p.Particles.z.(j) +. (g *. dz /. mj))
        t.constraints;
      if !worst > tol then loop (k + 1)
    end
  in
  if t.constraints <> [] then loop 0

(** One velocity-Verlet step (NVE when thermostat/barostat are off).
    [langevin = Some (gamma, temp, rng)] adds the Langevin thermostat;
    [berendsen = Some (tau_ratio, target_pressure)] rescales the box. *)
let step ?langevin ?berendsen t =
  let p = t.p in
  let dt = t.dt in
  let n = p.Particles.n in
  (* half kick + drift *)
  for i = 0 to n - 1 do
    let im = 0.5 *. dt /. p.Particles.mass.(i) in
    p.Particles.vx.(i) <- p.Particles.vx.(i) +. (im *. p.Particles.fx.(i));
    p.Particles.vy.(i) <- p.Particles.vy.(i) +. (im *. p.Particles.fy.(i));
    p.Particles.vz.(i) <- p.Particles.vz.(i) +. (im *. p.Particles.fz.(i));
    p.Particles.x.(i) <- p.Particles.x.(i) +. (dt *. p.Particles.vx.(i));
    p.Particles.y.(i) <- p.Particles.y.(i) +. (dt *. p.Particles.vy.(i));
    p.Particles.z.(i) <- p.Particles.z.(i) +. (dt *. p.Particles.vz.(i))
  done;
  shake t;
  Particles.wrap_all p;
  compute_forces t;
  (* second half kick *)
  for i = 0 to n - 1 do
    let im = 0.5 *. dt /. p.Particles.mass.(i) in
    p.Particles.vx.(i) <- p.Particles.vx.(i) +. (im *. p.Particles.fx.(i));
    p.Particles.vy.(i) <- p.Particles.vy.(i) +. (im *. p.Particles.fy.(i));
    p.Particles.vz.(i) <- p.Particles.vz.(i) +. (im *. p.Particles.fz.(i))
  done;
  (* Langevin thermostat: BBK-style friction + noise on the velocities *)
  (match langevin with
  | None -> ()
  | Some (gamma, temp, rng) ->
      let c1 = exp (-.gamma *. dt) in
      for i = 0 to n - 1 do
        let sigma =
          sqrt (temp /. p.Particles.mass.(i) *. (1.0 -. (c1 *. c1)))
        in
        p.Particles.vx.(i) <-
          (c1 *. p.Particles.vx.(i)) +. (sigma *. Icoe_util.Rng.gaussian rng);
        p.Particles.vy.(i) <-
          (c1 *. p.Particles.vy.(i)) +. (sigma *. Icoe_util.Rng.gaussian rng);
        p.Particles.vz.(i) <-
          (c1 *. p.Particles.vz.(i)) +. (sigma *. Icoe_util.Rng.gaussian rng)
      done);
  (* Berendsen barostat: weak box rescaling toward target pressure *)
  (match berendsen with
  | None -> ()
  | Some (tau_ratio, p_target) ->
      let vol = p.Particles.box ** 3.0 in
      let p_now =
        ((2.0 *. Particles.kinetic_energy p) +. t.virial) /. (3.0 *. vol)
      in
      let mu = (1.0 -. (tau_ratio *. (p_target -. p_now))) ** (1.0 /. 3.0) in
      let mu = max 0.99 (min 1.01 mu) in
      p.Particles.box <- p.Particles.box *. mu;
      for i = 0 to n - 1 do
        p.Particles.x.(i) <- p.Particles.x.(i) *. mu;
        p.Particles.y.(i) <- p.Particles.y.(i) *. mu;
        p.Particles.z.(i) <- p.Particles.z.(i) *. mu
      done);
  t.steps <- t.steps + 1;
  Icoe_obs.Metrics.inc m_steps

let total_energy t = t.pot_energy +. Particles.kinetic_energy t.p

let pressure t =
  let vol = t.p.Particles.box ** 3.0 in
  ((2.0 *. Particles.kinetic_energy t.p) +. t.virial) /. (3.0 *. vol)

let run ?langevin ?berendsen t ~steps =
  if t.steps = 0 then compute_forces t;
  let e0 = total_energy t in
  for _ = 1 to steps do
    step ?langevin ?berendsen t
  done;
  let e1 = total_energy t in
  Icoe_obs.Metrics.set m_drift ((e1 -. e0) /. max (Float.abs e0) 1e-300)

(** Radial distribution function g(r) up to [rmax] in [bins] bins —
    the standard structural observable (MuMMI's in-situ analysis computes
    it on the fly). Normalized against the ideal-gas expectation. *)
let rdf ?(bins = 50) ?rmax t =
  let p = t.p in
  let rmax = match rmax with Some r -> r | None -> p.Particles.box /. 2.0 in
  let hist = Array.make bins 0.0 in
  let dr = rmax /. float_of_int bins in
  for i = 0 to p.Particles.n - 2 do
    for j = i + 1 to p.Particles.n - 1 do
      let r = sqrt (Particles.dist2 p i j) in
      if r < rmax then begin
        let b = int_of_float (r /. dr) in
        hist.(min (bins - 1) b) <- hist.(min (bins - 1) b) +. 2.0
      end
    done
  done;
  let vol = p.Particles.box ** 3.0 in
  let density = float_of_int p.Particles.n /. vol in
  Array.mapi
    (fun b h ->
      let r_lo = float_of_int b *. dr in
      let r_hi = r_lo +. dr in
      let shell = 4.0 /. 3.0 *. Float.pi *. ((r_hi ** 3.0) -. (r_lo ** 3.0)) in
      h /. (float_of_int p.Particles.n *. density *. shell))
    hist

(** Velocity autocorrelation function over an NVE trajectory:
    C(k dt_sample) = <v(0) . v(k)> / <v(0) . v(0)>, averaged over
    particles. Runs [samples] snapshots [stride] steps apart. *)
let vacf ?langevin ?(samples = 40) ?(stride = 5) t =
  let n = t.p.Particles.n in
  let snaps = Array.make samples [||] in
  for s = 0 to samples - 1 do
    if s > 0 then run ?langevin t ~steps:stride;
    snaps.(s) <-
      Array.init (3 * n) (fun k ->
          let i = k / 3 in
          match k mod 3 with
          | 0 -> t.p.Particles.vx.(i)
          | 1 -> t.p.Particles.vy.(i)
          | _ -> t.p.Particles.vz.(i))
  done;
  let dot a b = Linalg.Vec.dot a b /. float_of_int n in
  let c0 = dot snaps.(0) snaps.(0) in
  Array.map (fun s -> dot snaps.(0) s /. c0) snaps

(** Diffusion coefficient estimate from the Green-Kubo relation:
    D = (1/3) * integral of <v(0).v(t)> dt, with the trapezoid rule over
    the sampled VACF. [dt_sample] is stride * engine dt. *)
let diffusion_coefficient ~vacf ~c0 ~dt_sample =
  let n = Array.length vacf in
  let integral = ref 0.0 in
  for k = 0 to n - 2 do
    integral := !integral +. (0.5 *. (vacf.(k) +. vacf.(k + 1)) *. dt_sample)
  done;
  c0 *. !integral /. 3.0

(* --- checkpoint/restart support (Icoe_fault.Checkpoint) --- *)

(** Full MD state: positions, velocities, forces, box size and the
    engine accumulators. Cell lists are rebuilt per force call, so they
    are not part of the state. *)
type snapshot = {
  s_box : float;
  s_x : float array;
  s_y : float array;
  s_z : float array;
  s_vx : float array;
  s_vy : float array;
  s_vz : float array;
  s_fx : float array;
  s_fy : float array;
  s_fz : float array;
  s_pot_energy : float;
  s_virial : float;
  s_steps : int;
  s_pair_count : int;
}

let snapshot t =
  let p = t.p in
  {
    s_box = p.Particles.box;
    s_x = Array.copy p.Particles.x;
    s_y = Array.copy p.Particles.y;
    s_z = Array.copy p.Particles.z;
    s_vx = Array.copy p.Particles.vx;
    s_vy = Array.copy p.Particles.vy;
    s_vz = Array.copy p.Particles.vz;
    s_fx = Array.copy p.Particles.fx;
    s_fy = Array.copy p.Particles.fy;
    s_fz = Array.copy p.Particles.fz;
    s_pot_energy = t.pot_energy;
    s_virial = t.virial;
    s_steps = t.steps;
    s_pair_count = t.pair_count;
  }

let restore t s =
  let p = t.p in
  let blit src dst = Array.blit src 0 dst 0 (Array.length dst) in
  p.Particles.box <- s.s_box;
  blit s.s_x p.Particles.x;
  blit s.s_y p.Particles.y;
  blit s.s_z p.Particles.z;
  blit s.s_vx p.Particles.vx;
  blit s.s_vy p.Particles.vy;
  blit s.s_vz p.Particles.vz;
  blit s.s_fx p.Particles.fx;
  blit s.s_fy p.Particles.fy;
  blit s.s_fz p.Particles.fz;
  t.pot_energy <- s.s_pot_energy;
  t.virial <- s.s_virial;
  t.steps <- s.s_steps;
  t.pair_count <- s.s_pair_count
