(** The ddcMD engine: the full MD loop the paper moved onto the GPU —
    nonbonded (generic pair infrastructure over linked cells), bonded
    terms, velocity Verlet, Langevin thermostat, Berendsen barostat, and
    SHAKE-style bond constraints.

    The force kernel is allocation-free in steady state: particle
    components live in {!Icoe_util.Fbuf} Bigarrays, the neighbour walk
    is inlined into the chunk body (a closure per particle would box
    the force accumulators), pair evaluations write into per-chunk
    scratch slots ({!Potential.eval_into}), energy/virial partials land
    in a preallocated slot per chunk, and the cell lists are rebuilt in
    place. The arithmetic is unchanged, so results are bit-identical to
    the boxed layout it replaced. *)

module Fbuf = Icoe_util.Fbuf
module Pool = Icoe_par.Pool

type t = {
  p : Particles.t;
  potential : Potential.t;
  bonds : Bonded.bond list;
  angles : Bonded.angle list;
  constraints : (int * int * float) list;  (** (i, j, fixed distance) *)
  dt : float;
  mutable pot_energy : float;
  mutable virial : float;
  mutable steps : int;
  mutable pair_count : int;  (** pairs evaluated last force call *)
  mutable cells : Cells.t option;  (** last build, reused in place *)
  arena : Prog.Scratch.t;  (** per-chunk force-kernel scratch *)
}

let m_force_evals =
  Icoe_obs.Metrics.counter ~help:"Full force recomputations"
    "md_force_evaluations_total"

let m_pairs =
  Icoe_obs.Metrics.counter ~help:"Pair interactions evaluated"
    "md_pair_interactions_total"

let m_steps =
  Icoe_obs.Metrics.counter ~help:"Velocity-Verlet steps" "md_steps_total"

let m_drift =
  Icoe_obs.Metrics.gauge
    ~help:"Relative total-energy drift over the last run call"
    "md_energy_drift"

let create ?(bonds = []) ?(angles = []) ?(constraints = []) ~dt ~potential p =
  {
    p;
    potential;
    bonds;
    angles;
    constraints;
    dt;
    pot_energy = 0.0;
    virial = 0.0;
    steps = 0;
    pair_count = 0;
    cells = None;
    arena = Prog.Scratch.create "md-forces";
  }

(* Nonbonded forces on particles [lo, hi): the per-particle full-shell
   enumeration (each pair seen from both ends, so every particle's force
   sum is written by exactly one iteration — no synchronization, and the
   same summation order whoever runs the chunk). The 27-cell walk of
   Cells.iter_neighbors is inlined — same enumeration order, but the
   force accumulators stay in registers instead of escaping into a
   closure. Chunk [k]'s (2*epot, 2*virial, evaluations) partials land in
   its slot of [partials]; pair evaluations go through its 3-wide slot
   of [pairbuf] (r2 in, energy/f_over_r out). Allocation-free. *)
let nonbonded_chunk t cl partials pairbuf k lo hi =
  let p = t.p in
  let cutoff = t.potential.Potential.cutoff in
  let eval_into = t.potential.Potential.eval_into in
  let species = p.Particles.species in
  let c2 = cutoff *. cutoff in
  let poff = 3 * k in
  let epot2 = ref 0.0 and virial2 = ref 0.0 and evals = ref 0 in
  let { Cells.ncell = nc; cell_size; head; next } = cl in
  (* separation and squared distance computed in place: calling
     Particles.dist2/min_image per candidate pair would box a float
     return per call (no cross-module inlining without flambda). The
     branch structure matches Particles.min_image exactly — [-.half] is
     [-.box /. 2.0] to the bit — so r2 and the force updates are
     unchanged. *)
  let xb = p.Particles.x and yb = p.Particles.y and zb = p.Particles.z in
  let box = p.Particles.box in
  let half = box /. 2.0 in
  (* the per-pair body appears twice (all-particles fallback and cell
     walk) rather than as a local function: a closure here would be
     allocated per particle and box the force accumulators *)
  for i = lo to hi - 1 do
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    let si = Array.unsafe_get species i in
    (if nc < 3 then
       for j = 0 to p.Particles.n - 1 do
         if j <> i then begin
           let dx0 = Fbuf.get xb i -. Fbuf.get xb j in
           let dx =
             if dx0 > half then dx0 -. box
             else if dx0 < -.half then dx0 +. box
             else dx0
           in
           let dy0 = Fbuf.get yb i -. Fbuf.get yb j in
           let dy =
             if dy0 > half then dy0 -. box
             else if dy0 < -.half then dy0 +. box
             else dy0
           in
           let dz0 = Fbuf.get zb i -. Fbuf.get zb j in
           let dz =
             if dz0 > half then dz0 -. box
             else if dz0 < -.half then dz0 +. box
             else dz0
           in
           let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
           if r2 <= c2 then begin
             incr evals;
             Fbuf.set pairbuf poff r2;
             eval_into ~si ~sj:(Array.unsafe_get species j) pairbuf poff;
             let e = Fbuf.get pairbuf (poff + 1)
             and f_over_r = Fbuf.get pairbuf (poff + 2) in
             if f_over_r <> 0.0 || e <> 0.0 then begin
               epot2 := !epot2 +. e;
               virial2 := !virial2 +. (f_over_r *. r2);
               fx := !fx +. (f_over_r *. dx);
               fy := !fy +. (f_over_r *. dy);
               fz := !fz +. (f_over_r *. dz)
             end
           end
         end
       done
     else begin
       (* Cells.cell_coord computed in place (same expression, both-ends
          clamp): the cross-module call would box its float arguments on
          every particle *)
       let cx =
         min (nc - 1) (max 0 (int_of_float (Fbuf.get xb i /. cell_size)))
       and cy =
         min (nc - 1) (max 0 (int_of_float (Fbuf.get yb i /. cell_size)))
       and cz =
         min (nc - 1) (max 0 (int_of_float (Fbuf.get zb i /. cell_size)))
       in
       for ddz = -1 to 1 do
         for ddy = -1 to 1 do
           for ddx = -1 to 1 do
             (* Cells.iter_neighbors' [wrap] written out — even a
                chunk-level closure shows up at 60+ chunks per call *)
             let wx = (((cx + ddx) mod nc) + nc) mod nc
             and wy = (((cy + ddy) mod nc) + nc) mod nc
             and wz = (((cz + ddz) mod nc) + nc) mod nc in
             let c' = wx + (nc * (wy + (nc * wz))) in
             let jr = ref (Array.unsafe_get head c') in
             while !jr >= 0 do
               let j = !jr in
               if j <> i then begin
                 let dx0 = Fbuf.get xb i -. Fbuf.get xb j in
                 let dx =
                   if dx0 > half then dx0 -. box
                   else if dx0 < -.half then dx0 +. box
                   else dx0
                 in
                 let dy0 = Fbuf.get yb i -. Fbuf.get yb j in
                 let dy =
                   if dy0 > half then dy0 -. box
                   else if dy0 < -.half then dy0 +. box
                   else dy0
                 in
                 let dz0 = Fbuf.get zb i -. Fbuf.get zb j in
                 let dz =
                   if dz0 > half then dz0 -. box
                   else if dz0 < -.half then dz0 +. box
                   else dz0
                 in
                 let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
                 if r2 <= c2 then begin
                   incr evals;
                   Fbuf.set pairbuf poff r2;
                   eval_into ~si
                     ~sj:(Array.unsafe_get species j)
                     pairbuf poff;
                   let e = Fbuf.get pairbuf (poff + 1)
                   and f_over_r = Fbuf.get pairbuf (poff + 2) in
                   if f_over_r <> 0.0 || e <> 0.0 then begin
                     epot2 := !epot2 +. e;
                     virial2 := !virial2 +. (f_over_r *. r2);
                     fx := !fx +. (f_over_r *. dx);
                     fy := !fy +. (f_over_r *. dy);
                     fz := !fz +. (f_over_r *. dz)
                   end
                 end
               end;
               jr := Array.unsafe_get next j
             done
           done
         done
       done
     end);
    Fbuf.set p.Particles.fx i !fx;
    Fbuf.set p.Particles.fy i !fy;
    Fbuf.set p.Particles.fz i !fz
  done;
  Fbuf.set partials (3 * k) !epot2;
  Fbuf.set partials ((3 * k) + 1) !virial2;
  (* exact below 2^53 — chunk pair counts are nowhere near that *)
  Fbuf.set partials ((3 * k) + 2) (float_of_int !evals)

let finish_forces t ~epot2 ~virial2 ~evals =
  let p = t.p in
  let epot = ref (0.5 *. epot2) in
  epot := !epot +. Bonded.bond_forces p t.bonds;
  epot := !epot +. Bonded.angle_forces p t.angles;
  t.pot_energy <- !epot;
  t.virial <- 0.5 *. virial2;
  t.pair_count <- evals / 2;
  Icoe_obs.Metrics.inc m_force_evals;
  Icoe_obs.Metrics.inc ~by:(float_of_int t.pair_count) m_pairs

(* Shared prologue: rebuild the cell list in place and hand back the
   per-chunk scratch slots (acquired before any pooled region — the
   arena is not thread-safe). *)
let force_scratch t =
  let p = t.p in
  let cl = Cells.build ?prev:t.cells p ~cutoff:t.potential.Potential.cutoff in
  t.cells <- Some cl;
  let nchunks = Pool.num_chunks ~lo:0 ~hi:p.Particles.n () in
  let partials = Prog.Scratch.get t.arena "nb-partials" (3 * nchunks) in
  let pairbuf = Prog.Scratch.get t.arena "nb-pairbuf" (3 * nchunks) in
  (cl, nchunks, partials, pairbuf)

(* Ascending-chunk reduction of the partial slots: the same association
   as the Array.fold_left over chunk results it replaces, so the sums
   are bit-identical for any pool size. *)
let reduce_partials partials nchunks =
  let epot2 = ref 0.0 and virial2 = ref 0.0 and evals = ref 0 in
  for k = 0 to nchunks - 1 do
    epot2 := !epot2 +. Fbuf.get partials (3 * k);
    virial2 := !virial2 +. Fbuf.get partials ((3 * k) + 1);
    evals := !evals + int_of_float (Fbuf.get partials ((3 * k) + 2))
  done;
  (!epot2, !virial2, !evals)

(** Recompute all forces; updates [pot_energy] and [virial].
    Particle-parallel on the {!Icoe_par.Pool}: per-particle full-shell
    accumulation gives disjoint writes, and the energy/virial partials
    are combined in chunk order, so the result is bit-identical to
    {!compute_forces_seq} for any pool size. Bonded terms stay serial
    (they are a small fraction of the work). *)
let compute_forces t =
  let cl, nchunks, partials, pairbuf = force_scratch t in
  Pool.parallel_for_chunks_i ~lo:0 ~hi:t.p.Particles.n (fun k lo hi ->
      nonbonded_chunk t cl partials pairbuf k lo hi);
  let epot2, virial2, evals = reduce_partials partials nchunks in
  finish_forces t ~epot2 ~virial2 ~evals

(** Serial reference path: the same per-particle algorithm and chunk
    layout run entirely in the calling domain. *)
let compute_forces_seq t =
  let cl, nchunks, partials, pairbuf = force_scratch t in
  let csize = Pool.default_chunk t.p.Particles.n in
  for k = 0 to nchunks - 1 do
    let lo = k * csize in
    nonbonded_chunk t cl partials pairbuf k lo
      (min t.p.Particles.n (lo + csize))
  done;
  let epot2, virial2, evals = reduce_partials partials nchunks in
  finish_forces t ~epot2 ~virial2 ~evals

(* SHAKE: iteratively project positions back onto the constraint manifold *)
let shake ?(iters = 50) ?(tol = 1e-8) t =
  let p = t.p in
  let px = p.Particles.x and py = p.Particles.y and pz = p.Particles.z in
  let rec loop k =
    if k >= iters then ()
    else begin
      let worst = ref 0.0 in
      List.iter
        (fun (i, j, d0) ->
          let dx = Particles.min_image p (Fbuf.get px i -. Fbuf.get px j) in
          let dy = Particles.min_image p (Fbuf.get py i -. Fbuf.get py j) in
          let dz = Particles.min_image p (Fbuf.get pz i -. Fbuf.get pz j) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
          let diff = r2 -. (d0 *. d0) in
          worst := max !worst (Float.abs diff /. (d0 *. d0));
          let mi = Fbuf.get p.Particles.mass i
          and mj = Fbuf.get p.Particles.mass j in
          (* first-order correction along the bond *)
          let g = diff /. (2.0 *. r2 *. ((1.0 /. mi) +. (1.0 /. mj))) in
          Fbuf.set px i (Fbuf.get px i -. (g *. dx /. mi));
          Fbuf.set py i (Fbuf.get py i -. (g *. dy /. mi));
          Fbuf.set pz i (Fbuf.get pz i -. (g *. dz /. mi));
          Fbuf.set px j (Fbuf.get px j +. (g *. dx /. mj));
          Fbuf.set py j (Fbuf.get py j +. (g *. dy /. mj));
          Fbuf.set pz j (Fbuf.get pz j +. (g *. dz /. mj)))
        t.constraints;
      if !worst > tol then loop (k + 1)
    end
  in
  if t.constraints <> [] then loop 0

(** One velocity-Verlet step (NVE when thermostat/barostat are off).
    [langevin = Some (gamma, temp, rng)] adds the Langevin thermostat;
    [berendsen = Some (tau_ratio, target_pressure)] rescales the box. *)
let step ?langevin ?berendsen t =
  let p = t.p in
  let dt = t.dt in
  let n = p.Particles.n in
  (* half kick + drift *)
  for i = 0 to n - 1 do
    let im = 0.5 *. dt /. Fbuf.get p.Particles.mass i in
    Fbuf.set p.Particles.vx i
      (Fbuf.get p.Particles.vx i +. (im *. Fbuf.get p.Particles.fx i));
    Fbuf.set p.Particles.vy i
      (Fbuf.get p.Particles.vy i +. (im *. Fbuf.get p.Particles.fy i));
    Fbuf.set p.Particles.vz i
      (Fbuf.get p.Particles.vz i +. (im *. Fbuf.get p.Particles.fz i));
    Fbuf.set p.Particles.x i
      (Fbuf.get p.Particles.x i +. (dt *. Fbuf.get p.Particles.vx i));
    Fbuf.set p.Particles.y i
      (Fbuf.get p.Particles.y i +. (dt *. Fbuf.get p.Particles.vy i));
    Fbuf.set p.Particles.z i
      (Fbuf.get p.Particles.z i +. (dt *. Fbuf.get p.Particles.vz i))
  done;
  shake t;
  Particles.wrap_all p;
  compute_forces t;
  (* second half kick *)
  for i = 0 to n - 1 do
    let im = 0.5 *. dt /. Fbuf.get p.Particles.mass i in
    Fbuf.set p.Particles.vx i
      (Fbuf.get p.Particles.vx i +. (im *. Fbuf.get p.Particles.fx i));
    Fbuf.set p.Particles.vy i
      (Fbuf.get p.Particles.vy i +. (im *. Fbuf.get p.Particles.fy i));
    Fbuf.set p.Particles.vz i
      (Fbuf.get p.Particles.vz i +. (im *. Fbuf.get p.Particles.fz i))
  done;
  (* Langevin thermostat: BBK-style friction + noise on the velocities *)
  (match langevin with
  | None -> ()
  | Some (gamma, temp, rng) ->
      let c1 = exp (-.gamma *. dt) in
      for i = 0 to n - 1 do
        let sigma =
          sqrt (temp /. Fbuf.get p.Particles.mass i *. (1.0 -. (c1 *. c1)))
        in
        Fbuf.set p.Particles.vx i
          ((c1 *. Fbuf.get p.Particles.vx i)
          +. (sigma *. Icoe_util.Rng.gaussian rng));
        Fbuf.set p.Particles.vy i
          ((c1 *. Fbuf.get p.Particles.vy i)
          +. (sigma *. Icoe_util.Rng.gaussian rng));
        Fbuf.set p.Particles.vz i
          ((c1 *. Fbuf.get p.Particles.vz i)
          +. (sigma *. Icoe_util.Rng.gaussian rng))
      done);
  (* Berendsen barostat: weak box rescaling toward target pressure *)
  (match berendsen with
  | None -> ()
  | Some (tau_ratio, p_target) ->
      let vol = p.Particles.box ** 3.0 in
      let p_now =
        ((2.0 *. Particles.kinetic_energy p) +. t.virial) /. (3.0 *. vol)
      in
      let mu = (1.0 -. (tau_ratio *. (p_target -. p_now))) ** (1.0 /. 3.0) in
      let mu = max 0.99 (min 1.01 mu) in
      p.Particles.box <- p.Particles.box *. mu;
      for i = 0 to n - 1 do
        Fbuf.set p.Particles.x i (Fbuf.get p.Particles.x i *. mu);
        Fbuf.set p.Particles.y i (Fbuf.get p.Particles.y i *. mu);
        Fbuf.set p.Particles.z i (Fbuf.get p.Particles.z i *. mu)
      done);
  t.steps <- t.steps + 1;
  Icoe_obs.Metrics.inc m_steps

let total_energy t = t.pot_energy +. Particles.kinetic_energy t.p

let pressure t =
  let vol = t.p.Particles.box ** 3.0 in
  ((2.0 *. Particles.kinetic_energy t.p) +. t.virial) /. (3.0 *. vol)

let run ?langevin ?berendsen t ~steps =
  if t.steps = 0 then compute_forces t;
  let e0 = total_energy t in
  for _ = 1 to steps do
    step ?langevin ?berendsen t
  done;
  let e1 = total_energy t in
  Icoe_obs.Metrics.set m_drift ((e1 -. e0) /. max (Float.abs e0) 1e-300)

(** Radial distribution function g(r) up to [rmax] in [bins] bins —
    the standard structural observable (MuMMI's in-situ analysis computes
    it on the fly). Normalized against the ideal-gas expectation. *)
let rdf ?(bins = 50) ?rmax t =
  let p = t.p in
  let rmax = match rmax with Some r -> r | None -> p.Particles.box /. 2.0 in
  let hist = Array.make bins 0.0 in
  let dr = rmax /. float_of_int bins in
  for i = 0 to p.Particles.n - 2 do
    for j = i + 1 to p.Particles.n - 1 do
      let r = sqrt (Particles.dist2 p i j) in
      if r < rmax then begin
        let b = int_of_float (r /. dr) in
        hist.(min (bins - 1) b) <- hist.(min (bins - 1) b) +. 2.0
      end
    done
  done;
  let vol = p.Particles.box ** 3.0 in
  let density = float_of_int p.Particles.n /. vol in
  Array.mapi
    (fun b h ->
      let r_lo = float_of_int b *. dr in
      let r_hi = r_lo +. dr in
      let shell = 4.0 /. 3.0 *. Float.pi *. ((r_hi ** 3.0) -. (r_lo ** 3.0)) in
      h /. (float_of_int p.Particles.n *. density *. shell))
    hist

(** Velocity autocorrelation function over an NVE trajectory:
    C(k dt_sample) = <v(0) . v(k)> / <v(0) . v(0)>, averaged over
    particles. Runs [samples] snapshots [stride] steps apart. *)
let vacf ?langevin ?(samples = 40) ?(stride = 5) t =
  let n = t.p.Particles.n in
  let snaps = Array.make samples [||] in
  for s = 0 to samples - 1 do
    if s > 0 then run ?langevin t ~steps:stride;
    snaps.(s) <-
      Array.init (3 * n) (fun k ->
          let i = k / 3 in
          match k mod 3 with
          | 0 -> Fbuf.get t.p.Particles.vx i
          | 1 -> Fbuf.get t.p.Particles.vy i
          | _ -> Fbuf.get t.p.Particles.vz i)
  done;
  let dot a b = Linalg.Vec.dot a b /. float_of_int n in
  let c0 = dot snaps.(0) snaps.(0) in
  Array.map (fun s -> dot snaps.(0) s /. c0) snaps

(** Diffusion coefficient estimate from the Green-Kubo relation:
    D = (1/3) * integral of <v(0).v(t)> dt, with the trapezoid rule over
    the sampled VACF. [dt_sample] is stride * engine dt. *)
let diffusion_coefficient ~vacf ~c0 ~dt_sample =
  let n = Array.length vacf in
  let integral = ref 0.0 in
  for k = 0 to n - 2 do
    integral := !integral +. (0.5 *. (vacf.(k) +. vacf.(k + 1)) *. dt_sample)
  done;
  c0 *. !integral /. 3.0

(* --- checkpoint/restart support (Icoe_fault.Checkpoint) --- *)

(** Full MD state: positions, velocities, forces, box size and the
    engine accumulators. Cell lists are rebuilt per force call, so they
    are not part of the state. *)
type snapshot = {
  s_box : float;
  s_x : Fbuf.t;
  s_y : Fbuf.t;
  s_z : Fbuf.t;
  s_vx : Fbuf.t;
  s_vy : Fbuf.t;
  s_vz : Fbuf.t;
  s_fx : Fbuf.t;
  s_fy : Fbuf.t;
  s_fz : Fbuf.t;
  s_pot_energy : float;
  s_virial : float;
  s_steps : int;
  s_pair_count : int;
}

let snapshot t =
  let p = t.p in
  {
    s_box = p.Particles.box;
    s_x = Fbuf.copy p.Particles.x;
    s_y = Fbuf.copy p.Particles.y;
    s_z = Fbuf.copy p.Particles.z;
    s_vx = Fbuf.copy p.Particles.vx;
    s_vy = Fbuf.copy p.Particles.vy;
    s_vz = Fbuf.copy p.Particles.vz;
    s_fx = Fbuf.copy p.Particles.fx;
    s_fy = Fbuf.copy p.Particles.fy;
    s_fz = Fbuf.copy p.Particles.fz;
    s_pot_energy = t.pot_energy;
    s_virial = t.virial;
    s_steps = t.steps;
    s_pair_count = t.pair_count;
  }

let restore t s =
  let p = t.p in
  p.Particles.box <- s.s_box;
  Fbuf.blit ~src:s.s_x ~dst:p.Particles.x;
  Fbuf.blit ~src:s.s_y ~dst:p.Particles.y;
  Fbuf.blit ~src:s.s_z ~dst:p.Particles.z;
  Fbuf.blit ~src:s.s_vx ~dst:p.Particles.vx;
  Fbuf.blit ~src:s.s_vy ~dst:p.Particles.vy;
  Fbuf.blit ~src:s.s_vz ~dst:p.Particles.vz;
  Fbuf.blit ~src:s.s_fx ~dst:p.Particles.fx;
  Fbuf.blit ~src:s.s_fy ~dst:p.Particles.fy;
  Fbuf.blit ~src:s.s_fz ~dst:p.Particles.fz;
  t.pot_energy <- s.s_pot_energy;
  t.virial <- s.s_virial;
  t.steps <- s.s_steps;
  t.pair_count <- s.s_pair_count
