(** The generic pair-processing infrastructure (Sec 4.6): "a templatized
    generic pair processing infrastructure that can be used to efficiently
    implement a diverse set of potential forms". A potential is a record
    of closures over (species_i, species_j, r^2); the force loop is
    written once, any functional form plugs in. *)

type t = {
  name : string;
  cutoff : float;
  eval_into : si:int -> sj:int -> Icoe_util.Fbuf.t -> int -> unit;
      (** 3-wide slot protocol: reads r^2 from [off], writes energy at
          [off + 1] and f_over_r at [off + 2]; the force on i is
          f_over_r * (r_i - r_j). r^2 travels through the slot rather
          than as an argument because this is an indirect call — without
          flambda a float argument to an unknown function is boxed on
          every pair. The force kernel hands each chunk its own slot, so
          a pair evaluation allocates nothing. *)
}

val eval : t -> si:int -> sj:int -> r2:float -> float * float
(** Tuple-returning wrapper over [eval_into] (allocates; tests and
    single-pair probes only). *)

val lennard_jones :
  ?epsilon:float -> ?sigma:float -> ?cutoff:float -> unit -> t
(** 12-6 LJ, energy shifted to zero at the cutoff (continuous). The
    cutoff is in units of sigma. *)

val exp6 :
  ?a:float -> ?rho:float -> ?c:float -> ?cutoff:float -> ?inner:float ->
  unit -> t
(** Buckingham exp-6 with the standard inner-cutoff guard against the
    r^-6 catastrophe. *)

val martini :
  epsilon:float array array -> sigma:float array array -> ?cutoff:float ->
  unit -> t
(** Coarse-grained LJ with per-species-pair parameters (the Martini-style
    force field the MuMMI micro model uses). *)

val soft_sphere : ?epsilon:float -> ?sigma:float -> unit -> t
(** Purely repulsive (fast smoke tests). *)
