(** The Sec 4.6 performance comparison: ddcMD vs GROMACS on a Martini
    membrane patch.

    Model structure mirrors the paper's explanation of *why* ddcMD wins:
    ddcMD moved the entire MD loop into 46 double-precision GPU kernels
    with no per-step host traffic; GROMACS (single precision, 8 kernels)
    load-balances bonded/integration work onto the CPU and pays per-step
    position/force transfers. When the CPUs are busy (as in MuMMI, where
    they run the macro model and in-situ analysis), GROMACS' CPU share
    stalls and the gap widens to ~2.3x. *)

type scenario = One_gpu | Four_gpu | Mummi

let scenario_name = function
  | One_gpu -> "1 GPU + 1 CPU"
  | Four_gpu -> "4 GPUs + CPUs"
  | Mummi -> "MuMMI (CPUs busy)"

(* Calibrated per-particle double-precision flop volume of one full ddcMD
   step (nonbonded + bonded + neighbour + constraints + integrator),
   chosen so one V100 lands at the paper's 2.31 ms/step at the MuMMI
   membrane-patch size (~136.5k beads). *)
let flops_per_particle = 68_000.0

let v100_dp = Hwsim.Device.v100.Hwsim.Device.peak_gflops *. 1e9 *. 0.6
let p9_dp = Hwsim.Device.power9.Hwsim.Device.peak_gflops *. 1e9 *. 0.4

type step_model = {
  serial_s : float;
  overlapped_s : float;
  step_s : float;
  dag : Icoe_obs.Prof.item array;
}

let kernel_count = 46

(** Per-step model of the ddcMD GPU pipeline: 46 kernel launches issued
    from the host on a "cpu" stream, each kernel executing on the "gpu"
    stream once its launch lands — so with overlap on, launch [i+1]
    hides under kernel [i] and only the first launch shows on the
    critical path. [Four_gpu] adds the multi-GPU scaling loss as a halo
    exchange on a "nic" stream, dependent on the mid-pipeline kernel and
    hidden under the back half. [serial_s] is the exact pre-scheduler
    expression ([compute + 46 launches], with the 0.85 scaling factor
    folded into compute for [Four_gpu]); the schedule's item durations
    sum to the same cost. *)
let ddcmd_step_model ?(particles = 136_500) ?overlap ?trace ?node
    ?(gpu_frac = 1.0) ?(comm = Hwsim.Split.Dedicated) scenario =
  Hwsim.Split.validate gpu_frac;
  let n = float_of_int particles in
  let work_dp = n *. flops_per_particle in
  (* without a [node] the calibrated Sierra constants are used verbatim;
     with one, the same 60%-of-peak GPU / 40%-of-peak CPU efficiencies
     are applied to that node's devices *)
  let gpu_dp, host_dp, l1, halo_device =
    match node with
    | None ->
        ( v100_dp,
          2.0 *. p9_dp,
          Hwsim.Device.v100.Hwsim.Device.launch_overhead_s,
          "nvlink2" )
    | Some (nd : Hwsim.Node.t) -> (
        match nd.Hwsim.Node.gpu with
        | None -> invalid_arg "ddcmd_step_model: node has no GPU"
        | Some g ->
            ( g.Hwsim.Device.peak_gflops *. 1e9 *. 0.6,
              float_of_int nd.Hwsim.Node.cpu_sockets
              *. nd.Hwsim.Node.cpu.Hwsim.Device.peak_gflops *. 1e9 *. 0.4,
              g.Hwsim.Device.launch_overhead_s,
              nd.Hwsim.Node.host_link.Hwsim.Link.name ))
  in
  let launch k = float_of_int k *. l1 in
  let compute_serial =
    match scenario with
    | One_gpu | Mummi -> work_dp /. gpu_dp
    | Four_gpu -> work_dp /. gpu_dp /. (4.0 *. 0.85)
  in
  (* full-step cost if the host sockets ran the whole force loop; the
     split charges (1 - gpu_frac) of it on a "host" stream *)
  let host_full = work_dp /. host_dp in
  let serial_s =
    (gpu_frac *. compute_serial)
    +. ((1.0 -. gpu_frac) *. host_full)
    +. launch kernel_count
  in
  let compute_total =
    match scenario with
    | One_gpu | Mummi -> work_dp /. gpu_dp
    | Four_gpu -> work_dp /. gpu_dp /. 4.0
  in
  let halo_s =
    match scenario with
    | One_gpu | Mummi -> 0.0
    | Four_gpu ->
        (* the 85% scaling efficiency, modeled as inter-GPU halo traffic *)
        work_dp /. gpu_dp *. ((1.0 /. (4.0 *. 0.85)) -. (1.0 /. 4.0))
  in
  let sched = Hwsim.Sched.create ?overlap ?trace () in
  let kdur = compute_total /. float_of_int kernel_count in
  let hdur = host_full /. float_of_int kernel_count in
  let mid = ref [] in
  for i = 0 to kernel_count - 1 do
    let la =
      Hwsim.Sched.work sched ~stream:"cpu" ~device:"cpu" ~phase:"launch" l1
    in
    let ks =
      Hwsim.Split.co_work sched ~gpu_stream:"gpu" ~cpu_stream:"host"
        ~deps:[ la ] ~phase:"kernels" ~gpu_s:kdur ~cpu_s:hdur gpu_frac
    in
    if i = (kernel_count / 2) - 1 then mid := ks
  done;
  (if halo_s > 0.0 then
     ignore
       (Hwsim.Sched.work sched
          ~stream:
            (match comm with Hwsim.Split.Dedicated -> "nic" | Inline -> "gpu")
          ~deps:!mid ~device:halo_device ~phase:"halo" halo_s));
  let overlapped_s = Hwsim.Sched.run sched in
  let step_s = if Hwsim.Sched.overlap sched then overlapped_s else serial_s in
  { serial_s; overlapped_s; step_s; dag = Hwsim.Sched.dag sched }

(** (ddcmd_s, gromacs_s) per MD step for [particles] beads. The ddcMD
    side overlaps launches/halo under the kernel pipeline unless
    [ICOE_OVERLAP=0] (or [~overlap:false]); GROMACS' per-step host
    transfers are inherently synchronous and stay serialized. *)
let step_times ?(particles = 136_500) ?overlap scenario =
  let n = float_of_int particles in
  let work_dp = n *. flops_per_particle in
  let launch k = float_of_int k *. Hwsim.Device.v100.Hwsim.Device.launch_overhead_s in
  let xfer =
    (* positions out, forces back, 24 B each way per particle *)
    2.0 *. Hwsim.Link.transfer_time Hwsim.Link.nvlink2 ~bytes:(n *. 24.0)
  in
  (* GROMACS: single precision doubles the GPU rate; ~6.5% of the work
     (bonded + integration + constraints) stays on the CPU *)
  let cpu_frac = 0.065 in
  let gro_gpu work gpus = work *. (1.0 -. cpu_frac) /. (2.0 *. v100_dp) /. gpus in
  let gro_cpu work sockets busy = work *. cpu_frac /. p9_dp /. sockets *. busy in
  let ddc = (ddcmd_step_model ~particles ?overlap scenario).step_s in
  match scenario with
  | One_gpu ->
      let gro =
        max (gro_gpu work_dp 1.0) (gro_cpu work_dp 1.0 1.0) +. xfer +. launch 8
      in
      (ddc, gro)
  | Four_gpu ->
      (* GROMACS gets both sockets and its load balancer shifts part of
         the bonded work onto the now less-loaded GPUs (effective CPU
         share drops) *)
      let cpu_share = work_dp *. 0.05 /. p9_dp /. 2.0 in
      let gro =
        max (gro_gpu work_dp (4.0 *. 0.85)) cpu_share +. xfer +. launch 8
      in
      (ddc, gro)
  | Mummi ->
      (* the macro model and in-situ analysis occupy the CPUs: GROMACS'
         CPU share runs ~2x slower; ddcMD is unaffected *)
      let gro =
        max (gro_gpu work_dp 1.0) (gro_cpu work_dp 1.0 2.0) +. xfer +. launch 8
      in
      (ddc, gro)

(** Fraction of V100 double-precision peak that the calibrated ddcMD step
    achieves — the paper reports "over 30% of peak" for the MD app. *)
let ddcmd_peak_fraction () =
  0.6 (* the calibrated compute efficiency of the fused GPU kernels *)
