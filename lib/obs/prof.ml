(** Critical-path blame over a scheduled stream/dependency DAG.

    {!Hwsim.Sched} advances simulated time by the DAG critical path, so
    per-phase *charge* rollups ({!Hwsim.Trace.by_phase}) no longer say
    what the makespan is waiting on: a phase can charge many seconds and
    still be entirely hidden under another stream. This module answers
    the attribution question: which items the makespan actually ran
    through (the critical path), how much each phase/stream is
    responsible for (blame, summing exactly to the makespan), how much
    room every off-path item has (slack), and what a phase is worth
    ("zero phase X → makespan shrinks by Y").

    The schedule model mirrors [Sched.run]: items are topologically
    ordered by construction (deps point at earlier items only); with
    [overlap = true] an item starts at the max of its stream's ready
    time and its deps' finishes; with [overlap = false] items run
    back-to-back in order, so the critical path is every item and blame
    degrades bit-identically to the serial per-phase charge breakdown. *)

type item = {
  idx : int;  (** position in enqueue order *)
  stream : string;
  phase : string;
  device : string;
  dur : float;
  deps : int list;  (** indices of earlier items *)
}

type blame = {
  key : string;  (** phase or stream name *)
  seconds : float;  (** makespan seconds attributed to [key] *)
  share : float;  (** [seconds /. makespan], 0 when the makespan is 0 *)
  on_path : int;  (** critical-path items with this key *)
}

type sensitivity = {
  s_key : string;  (** phase name *)
  makespan_without : float;  (** makespan with every [s_key] item zeroed *)
  shrink_s : float;  (** [makespan - makespan_without], >= 0 *)
}

type analysis = {
  overlap : bool;
  n_items : int;
  makespan : float;
  serial_s : float;  (** sum of all durations *)
  starts : float array;
  finishes : float array;
  slack : float array;  (** per item; 0 everywhere with overlap off *)
  critical : int list;  (** item indices along the blamed path, in order *)
  phase_blame : blame list;  (** descending seconds; sums to [makespan] *)
  stream_blame : blame list;  (** descending seconds; sums to [makespan] *)
  phase_sensitivity : sensitivity list;  (** descending shrink *)
}

let validate items =
  Array.iteri
    (fun i (it : item) ->
      if it.idx <> i then
        invalid_arg (Fmt.str "Prof: item %d carries idx %d" i it.idx);
      if it.dur < 0.0 || not (Float.is_finite it.dur) then
        invalid_arg
          (Fmt.str "Prof: item %d duration must be finite and nonnegative" i);
      List.iter
        (fun d ->
          if d < 0 || d >= i then
            invalid_arg
              (Fmt.str "Prof: item %d depends on %d (deps must be earlier)" i d))
        it.deps)
    items

(* Forward pass: the same schedule [Sched.run] computes, with an
   optional [zero] predicate for what-if evaluation. Returns
   (starts, finishes, makespan). *)
let forward ?(zero = fun (_ : item) -> false) ~overlap items =
  let n = Array.length items in
  let starts = Array.make n 0.0 and finishes = Array.make n 0.0 in
  let makespan = ref 0.0 in
  if overlap then begin
    let ready = Hashtbl.create 8 in
    Array.iter
      (fun (it : item) ->
        let dur = if zero it then 0.0 else it.dur in
        let stream_ready =
          Option.value (Hashtbl.find_opt ready it.stream) ~default:0.0
        in
        let start =
          List.fold_left
            (fun acc d -> Float.max acc finishes.(d))
            stream_ready it.deps
        in
        starts.(it.idx) <- start;
        finishes.(it.idx) <- start +. dur;
        Hashtbl.replace ready it.stream finishes.(it.idx);
        makespan := Float.max !makespan finishes.(it.idx))
      items
  end
  else begin
    let now = ref 0.0 in
    Array.iter
      (fun (it : item) ->
        let dur = if zero it then 0.0 else it.dur in
        starts.(it.idx) <- !now;
        now := !now +. dur;
        finishes.(it.idx) <- !now)
      items;
    makespan := !now
  end;
  (starts, finishes, !makespan)

(* The blamed path: from the earliest item that achieves the makespan,
   follow the binding constraint backwards. An item's start is the max
   over its stream predecessor's finish and its deps' finishes, so some
   candidate's finish equals the start exactly (float-exactly: the start
   IS that max); among ties the smallest index wins, making the path
   deterministic. The chain ends at an item that starts at 0 with no
   candidate, so path durations telescope to the makespan. *)
let critical_path ~starts ~finishes ~makespan ~stream_pred items =
  let n = Array.length items in
  if n = 0 || makespan <= 0.0 then []
  else begin
    let terminal = ref (-1) in
    for i = n - 1 downto 0 do
      if finishes.(i) = makespan then terminal := i
    done;
    let rec walk acc i =
      let acc = i :: acc in
      let it = items.(i) in
      let candidates =
        match stream_pred.(i) with
        | Some p -> p :: it.deps
        | None -> it.deps
      in
      let binding =
        List.fold_left
          (fun best c ->
            if finishes.(c) = starts.(i) then
              match best with
              | Some b when b <= c -> best
              | _ -> Some c
            else best)
          None candidates
      in
      match binding with Some p -> walk acc p | None -> acc
    in
    walk [] !terminal
  end

(* Group seconds along the path by a key, accumulating in path order so
   per-key sums match the order the clock's phase breakdown would have
   accumulated them in. Output is sorted by descending seconds (stable
   over first-seen order). *)
let blame_by key_of ~makespan items path =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun i ->
      let it = items.(i) in
      let key = key_of it in
      (match Hashtbl.find_opt tbl key with
      | Some (s, c) -> Hashtbl.replace tbl key (s +. it.dur, c + 1)
      | None ->
          Hashtbl.add tbl key (it.dur, 1);
          order := key :: !order))
    path;
  let rows =
    List.rev_map
      (fun key ->
        let seconds, on_path = Hashtbl.find tbl key in
        {
          key;
          seconds;
          share = (if makespan > 0.0 then seconds /. makespan else 0.0);
          on_path;
        })
      !order
  in
  List.stable_sort (fun a b -> Float.compare b.seconds a.seconds) rows

let distinct_phases items =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun (it : item) ->
      if not (Hashtbl.mem seen it.phase) then begin
        Hashtbl.add seen it.phase ();
        order := it.phase :: !order
      end)
    items;
  List.rev !order

let analyze ~overlap items =
  validate items;
  let n = Array.length items in
  let starts, finishes, makespan = forward ~overlap items in
  let serial_s = Array.fold_left (fun acc it -> acc +. it.dur) 0.0 items in
  (* previous/next item on the same stream, by enqueue order *)
  let stream_pred = Array.make n None and stream_succ = Array.make n None in
  let last = Hashtbl.create 8 in
  Array.iter
    (fun (it : item) ->
      (match Hashtbl.find_opt last it.stream with
      | Some p ->
          stream_pred.(it.idx) <- Some p;
          stream_succ.(p) <- Some it.idx
      | None -> ());
      Hashtbl.replace last it.stream it.idx)
    items;
  let critical =
    if overlap then critical_path ~starts ~finishes ~makespan ~stream_pred items
    else List.init n Fun.id
  in
  (* slack: how much later an item could finish without growing the
     makespan. Backward pass over the reverse topological order (reverse
     enqueue order works: all constraint edges point backwards). *)
  let slack = Array.make n 0.0 in
  if overlap then begin
    let late_finish = Array.make n makespan in
    let late_start i = late_finish.(i) -. items.(i).dur in
    for i = n - 1 downto 0 do
      (match stream_succ.(i) with
      | Some s -> late_finish.(i) <- Float.min late_finish.(i) (late_start s)
      | None -> ());
      List.iter
        (fun d -> late_finish.(d) <- Float.min late_finish.(d) (late_start i))
        items.(i).deps
    done;
    (* the backward pass regroups the same sums the forward pass
       computed, so longest-path items can come out with a few-ulp
       residue instead of exactly 0; snap those to 0 so "on a longest
       path" and "slack = 0" stay synonymous *)
    let eps = 1e-12 *. Float.max 1.0 makespan in
    for i = 0 to n - 1 do
      let s = Float.max 0.0 (late_finish.(i) -. finishes.(i)) in
      slack.(i) <- (if s < eps then 0.0 else s)
    done
  end;
  let phase_blame = blame_by (fun it -> it.phase) ~makespan items critical in
  let stream_blame = blame_by (fun it -> it.stream) ~makespan items critical in
  let phase_sensitivity =
    List.map
      (fun phase ->
        let _, _, without =
          forward ~overlap ~zero:(fun it -> it.phase = phase) items
        in
        {
          s_key = phase;
          makespan_without = without;
          shrink_s = Float.max 0.0 (makespan -. without);
        })
      (distinct_phases items)
    |> List.stable_sort (fun a b -> Float.compare b.shrink_s a.shrink_s)
  in
  {
    overlap;
    n_items = n;
    makespan;
    serial_s;
    starts;
    finishes;
    slack;
    critical;
    phase_blame;
    stream_blame;
    phase_sensitivity;
  }

let what_if_zero a items pred =
  let _, _, without = forward ~overlap:a.overlap ~zero:pred items in
  a.makespan -. without

let blame_total a =
  List.fold_left (fun acc b -> acc +. b.seconds) 0.0 a.phase_blame

(* --- rendering --- *)

let blame_table ?(title = "critical-path blame") a =
  let open Icoe_util in
  let t =
    Table.create ~title
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "phase"; "on path"; "blame (s)"; "share" ]
  in
  List.iter
    (fun b ->
      Table.add_row t
        [
          b.key;
          string_of_int b.on_path;
          Fmt.str "%.3e" b.seconds;
          Fmt.str "%.1f%%" (100.0 *. b.share);
        ])
    a.phase_blame;
  t

let sensitivity_lines a =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      if s.shrink_s > 0.0 then
        Fmt.kstr (Buffer.add_string buf)
          "what-if: zero %s -> makespan %.3e s (-%.3e s, -%.1f%%)\n" s.s_key
          s.makespan_without s.shrink_s
          (if a.makespan > 0.0 then 100.0 *. s.shrink_s /. a.makespan else 0.0)
      else
        Fmt.kstr (Buffer.add_string buf)
          "what-if: zero %s -> makespan unchanged (fully hidden)\n" s.s_key)
    a.phase_sensitivity;
  Buffer.contents buf

let report_section a =
  Fmt.str
    "%scritical path: %d of %d items; makespan %.3e s of %.3e s serial \
     (%.1f%% hidden)\n%s"
    (Icoe_util.Table.render (blame_table a))
    (List.length a.critical) a.n_items a.makespan a.serial_s
    (if a.serial_s > 0.0 then
       100.0 *. (a.serial_s -. a.makespan) /. a.serial_s
     else 0.0)
    (sensitivity_lines a)

(* --- prof_* metrics --- *)

let record_metrics ~harness a =
  Metrics.set
    (Metrics.gauge
       ~help:"Critical-path makespan of the harness's scheduled DAG"
       ~labels:[ ("harness", harness) ]
       "prof_makespan_seconds")
    a.makespan;
  List.iter
    (fun b ->
      Metrics.set
        (Metrics.gauge
           ~help:"Makespan seconds blamed on a phase (sums to the makespan)"
           ~labels:[ ("harness", harness); ("phase", b.key) ]
           "prof_blame_seconds")
        b.seconds)
    a.phase_blame;
  List.iter
    (fun s ->
      Metrics.set
        (Metrics.gauge
           ~help:"Makespan shrink if a phase cost nothing (what-if)"
           ~labels:[ ("harness", harness); ("phase", s.s_key) ]
           "prof_sensitivity_seconds")
        s.shrink_s)
    a.phase_sensitivity
