(** Unified structured event log (JSONL flight recorder).

    One flat schema over every observability source: each event is a
    single JSON object on its own line,

    {v
    {"seq":N,"t_s":X,"kind":"...","source":"...",...fields}
    v}

    where [seq] is a monotone per-process counter, [t_s] the simulated
    timestamp when the emitter has one, [kind] the event class and
    [source] the emitting subsystem. Kinds used by the repo:

    - ["span"]   — {!Hwsim.Trace} charge/kernel/scheduled leaves
    - ["metric"] — per-run {!Metrics} snapshot deltas (from [Harness])
    - ["fault"]  — [Icoe_fault] injections and checkpoint/recovery
    - ["job"]    — [Icoe_svc.Cluster] submit/dispatch/finish lifecycle
    - ["queue"]  — [Icoe_svc.Cluster] queue-depth / free-node samples

    The recorder is off by default: {!emit} is a cheap no-op until a
    sink is installed explicitly or via [ICOE_EVENTS=path] (checked
    lazily on first use; the file sink is closed by an [at_exit] hook).
    Events emitted from inside an {!Icoe_par.Pool} parallel job are
    silently dropped rather than racing on the shared channel. *)

type field =
  | S of string  (** JSON string (escaped) *)
  | F of float  (** JSON number; non-finite values emit [null] *)
  | I of int
  | B of bool

val enabled : unit -> bool
(** A sink is installed and we are not inside a parallel job. Check
    this before building an expensive field list. *)

val emit :
  ?t_s:float -> kind:string -> source:string -> (string * field) list -> unit
(** Append one event line. No-op when {!enabled} is false. Field keys
    should not collide with the built-in [seq]/[t_s]/[kind]/[source]. *)

val to_file : string -> unit
(** Install a file sink (replacing any current sink). The caller — or
    the [ICOE_EVENTS] [at_exit] hook — must {!close} it to flush. *)

val set_sink : (string -> unit) -> unit
(** Install a custom line sink (replacing any current sink). *)

val memory : unit -> unit -> string list
(** Install an in-memory sink and return a function yielding the lines
    emitted so far, in order. For tests. *)

val close : unit -> unit
(** Close and uninstall the current sink, if any. *)

val reset_seq : unit -> unit
(** Reset the [seq] counter to 0. For deterministic test output. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (quotes,
    backslash, and all control characters below 0x20). *)
