(** Metrics registry: counters, gauges, log-bucketed histograms, labeled
    families, deterministic snapshot/reset, Prometheus + JSON exposition.
    See metrics.mli for the story. *)

(* --- histogram geometry ---

   Exponential base-2 buckets spanning [1e-12, 1e-12 * 2^95] ~ 4e16, which
   covers everything we record (seconds, iteration counts, frontier sizes,
   residual ratios) with <= 1 bit of relative error. Values at or below
   the lowest bound land in bucket 0; values beyond the highest land in
   the overflow bucket. *)

let bucket_lo = 1e-12
let n_buckets = 96
let window_capacity = 1024

(* ceil(log2 (v / bucket_lo)) without transcendentals: going through
   [Float.log2] rounds, which can push an exact boundary value
   [bucket_lo *. 2^k] one bucket high or low. [v /. bucket_lo] is exact
   for those boundaries (same mantissa as [v], scaled), and [frexp]
   recovers the exponent exactly: x = m * 2^e with m in [0.5, 1), so
   ceil(log2 x) is e - 1 when x is exactly a power of two and e
   otherwise. *)
let bucket_index v =
  if v <= bucket_lo then 0
  else
    let m, e = Float.frexp (v /. bucket_lo) in
    let k = if m = 0.5 then e - 1 else e in
    if k < 0 then 0 else if k > n_buckets then n_buckets else k

let bucket_upper k =
  if k >= n_buckets then infinity else bucket_lo *. Float.pow 2.0 (float_of_int k)

type hist_state = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  counts : int array;  (* n_buckets + 1, last = overflow *)
  window : float array;  (* ring of the last [window_capacity] observations *)
  mutable wlen : int;
  mutable wpos : int;
}

let new_hist () =
  {
    count = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    counts = Array.make (n_buckets + 1) 0;
    window = Array.make window_capacity 0.0;
    wlen = 0;
    wpos = 0;
  }

let hist_reset h =
  h.count <- 0;
  h.sum <- 0.0;
  h.vmin <- infinity;
  h.vmax <- neg_infinity;
  Array.fill h.counts 0 (n_buckets + 1) 0;
  h.wlen <- 0;
  h.wpos <- 0

(* --- registry --- *)

type payload =
  | Pcounter of float ref
  | Pgauge of float ref
  | Phist of hist_state

type metric = {
  m_name : string;
  m_labels : (string * string) list;  (* sorted by key *)
  m_help : string;
  payload : payload;
}

type registry = {
  tbl : (string, metric) Hashtbl.t;
  mutable enabled : bool;
}

type counter = { c_reg : registry; c : float ref }
type gauge = { g_reg : registry; g : float ref }
type histogram = { h_reg : registry; h : hist_state }

let create () = { tbl = Hashtbl.create 64; enabled = true }

let default =
  let r = create () in
  (match Sys.getenv_opt "ICOE_METRICS" with
  | Some ("0" | "off" | "false") -> r.enabled <- false
  | _ -> ());
  r

let set_enabled ?(registry = default) b = registry.enabled <- b
let is_enabled ?(registry = default) () = registry.enabled

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let render_labels = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      ^ "}"

let key name labels = name ^ render_labels labels

let kind_name = function
  | Pcounter _ -> "counter"
  | Pgauge _ -> "gauge"
  | Phist _ -> "histogram"

(* The registry (Hashtbl + unsynchronized float cells) must never be
   touched from inside a pool worker chunk; enforce the pool.mli
   contract instead of silently corrupting counts. *)
let check_not_in_job op =
  if Icoe_par.Pool.in_parallel_job () then
    invalid_arg
      ("Metrics." ^ op
     ^ ": called from inside a Pool parallel job; worker chunks must not \
        touch the metrics registry")

let register registry ~help ~labels name make match_payload =
  check_not_in_job "register";
  let labels = sort_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt registry.tbl k with
  | Some m -> (
      match match_payload m.payload with
      | Some v -> v
      | None ->
          invalid_arg
            (Fmt.str "Metrics: %s already registered as a %s" k
               (kind_name m.payload)))
  | None ->
      let payload, v = make () in
      Hashtbl.add registry.tbl k
        { m_name = name; m_labels = labels; m_help = help; payload };
      v

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry ~help ~labels name
    (fun () ->
      let r = ref 0.0 in
      (Pcounter r, { c_reg = registry; c = r }))
    (function Pcounter r -> Some { c_reg = registry; c = r } | _ -> None)

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry ~help ~labels name
    (fun () ->
      let r = ref 0.0 in
      (Pgauge r, { g_reg = registry; g = r }))
    (function Pgauge r -> Some { g_reg = registry; g = r } | _ -> None)

let histogram ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry ~help ~labels name
    (fun () ->
      let h = new_hist () in
      (Phist h, { h_reg = registry; h }))
    (function Phist h -> Some { h_reg = registry; h } | _ -> None)

(* --- hot path --- *)

let inc ?(by = 1.0) t =
  check_not_in_job "inc";
  if t.c_reg.enabled then begin
    if by < 0.0 then invalid_arg "Metrics.inc: negative increment";
    t.c := !(t.c) +. by
  end

let set t v =
  check_not_in_job "set";
  if t.g_reg.enabled then t.g := v

let observe t v =
  check_not_in_job "observe";
  if t.h_reg.enabled then begin
    let h = t.h in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    let b = h.counts in
    let i = bucket_index v in
    b.(i) <- b.(i) + 1;
    h.window.(h.wpos) <- v;
    h.wpos <- (h.wpos + 1) mod window_capacity;
    if h.wlen < window_capacity then h.wlen <- h.wlen + 1
  end

let clock = ref Unix.gettimeofday
let set_clock f = clock := f

let time ?(registry = default) ?(labels = []) name f =
  if not registry.enabled then f ()
  else begin
    let h = histogram ~registry ~labels name in
    let t0 = !clock () in
    let record () = observe h (max 0.0 (!clock () -. t0)) in
    match f () with
    | v ->
        record ();
        v
    | exception e ->
        record ();
        raise e
  end

(* --- reading back --- *)

let counter_value t = !(t.c)
let gauge_value t = !(t.g)
let histogram_count t = t.h.count
let histogram_sum t = t.h.sum

let quantile t q =
  if t.h.wlen = 0 then 0.0
  else
    let a = Array.sub t.h.window 0 t.h.wlen in
    Icoe_util.Stats.percentile_sorted (Icoe_util.Stats.presort a) q

let value ?(registry = default) ?(labels = []) name =
  match Hashtbl.find_opt registry.tbl (key name (sort_labels labels)) with
  | None -> None
  | Some m -> (
      match m.payload with
      | Pcounter r | Pgauge r -> Some !r
      | Phist h -> Some h.sum)

(* --- snapshot --- *)

type histogram_summary = {
  count : int;
  sum : float;
  hmin : float;
  hmax : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;
}

type value = Counter of float | Gauge of float | Histogram of histogram_summary

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

let summarize (h : hist_state) =
  let q =
    if h.wlen = 0 then fun _ -> 0.0
    else
      let sorted = Icoe_util.Stats.presort (Array.sub h.window 0 h.wlen) in
      Icoe_util.Stats.percentile_sorted sorted
  in
  let buckets =
    let acc = ref [] and cum = ref 0 in
    Array.iteri
      (fun i c ->
        cum := !cum + c;
        if c > 0 && i < n_buckets then acc := (bucket_upper i, !cum) :: !acc)
      h.counts;
    List.rev ((infinity, h.count) :: !acc)
  in
  {
    count = h.count;
    sum = h.sum;
    hmin = (if h.count = 0 then 0.0 else h.vmin);
    hmax = (if h.count = 0 then 0.0 else h.vmax);
    p50 = q 0.5;
    p90 = q 0.9;
    p99 = q 0.99;
    buckets;
  }

let snapshot ?(registry = default) () =
  Hashtbl.fold
    (fun _ m acc ->
      let value =
        match m.payload with
        | Pcounter r -> Counter !r
        | Pgauge r -> Gauge !r
        | Phist h -> Histogram (summarize h)
      in
      { name = m.m_name; labels = m.m_labels; help = m.m_help; value } :: acc)
    registry.tbl []
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 ->
             (* typed tie-break on the label pairs: the polymorphic
                [compare] walked runtime representations and would
                break the moment a label value is anything but a
                string; this can't *)
             List.compare
               (fun (ka, va) (kb, vb) ->
                 match String.compare ka kb with
                 | 0 -> String.compare va vb
                 | c -> c)
               a.labels b.labels
         | c -> c)

(* Samples that changed between two snapshots, keyed by name+labels.
   Counters and histogram count/sum become deltas; gauges keep their
   [after] value. Snapshots are already sorted, so the diff is too. *)
let diff ~before ~after =
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl (s.name, s.labels) s.value) before;
  List.filter_map
    (fun s ->
      let prev = Hashtbl.find_opt tbl (s.name, s.labels) in
      match (s.value, prev) with
      | Counter a, Some (Counter b) ->
          if a = b then None else Some { s with value = Counter (a -. b) }
      | Gauge a, Some (Gauge b) -> if a = b then None else Some s
      | Histogram a, Some (Histogram b) ->
          if a.count = b.count && a.sum = b.sum then None
          else
            Some
              { s with
                value =
                  Histogram { a with count = a.count - b.count; sum = a.sum -. b.sum }
              }
      | _, None -> (
          match s.value with
          | Counter 0.0 -> None
          | Histogram h when h.count = 0 -> None
          | _ -> Some s)
      | _, Some _ -> Some s)
    after

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ m ->
      match m.payload with
      | Pcounter r | Pgauge r -> r := 0.0
      | Phist h -> hist_reset h)
    registry.tbl

(* --- exposition --- *)

let escape_label s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels ?extra labels =
  let labels =
    match extra with Some kv -> labels @ [ kv ] | None -> labels
  in
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Fmt.str {|%s="%s"|} k (escape_label v)) ls)
      ^ "}"

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Fmt.str "%.17g" v

let to_prometheus ?(registry = default) () =
  let buf = Buffer.create 2048 in
  let add fmt = Fmt.kstr (fun s -> Buffer.add_string buf s) fmt in
  let last_header = ref "" in
  List.iter
    (fun s ->
      let typ =
        match s.value with
        | Counter _ -> "counter"
        | Gauge _ -> "gauge"
        | Histogram _ -> "histogram"
      in
      if !last_header <> s.name then begin
        last_header := s.name;
        if s.help <> "" then add "# HELP %s %s\n" s.name s.help;
        add "# TYPE %s %s\n" s.name typ
      end;
      match s.value with
      | Counter v | Gauge v ->
          add "%s%s %s\n" s.name (prom_labels s.labels) (prom_float v)
      | Histogram h ->
          List.iter
            (fun (ub, cum) ->
              add "%s_bucket%s %d\n" s.name
                (prom_labels ~extra:("le", prom_float ub) s.labels)
                cum)
            h.buckets;
          add "%s_sum%s %s\n" s.name (prom_labels s.labels) (prom_float h.sum);
          add "%s_count%s %d\n" s.name (prom_labels s.labels) h.count)
    (snapshot ~registry ());
  Buffer.contents buf

let json_float v = if Float.is_finite v then Fmt.str "%.17g" v else "null"

let json_string s = Fmt.str {|"%s"|} (escape_label s)

let to_json ?(registry = default) () =
  let buf = Buffer.create 2048 in
  let add fmt = Fmt.kstr (fun s -> Buffer.add_string buf s) fmt in
  add "{\"metrics\":[";
  List.iteri
    (fun i s ->
      if i > 0 then add ",";
      add "\n{\"name\":%s" (json_string s.name);
      add ",\"labels\":{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Fmt.str "%s:%s" (json_string k) (json_string v))
              s.labels));
      (match s.value with
      | Counter v -> add ",\"type\":\"counter\",\"value\":%s" (json_float v)
      | Gauge v -> add ",\"type\":\"gauge\",\"value\":%s" (json_float v)
      | Histogram h ->
          add
            ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s"
            h.count (json_float h.sum) (json_float h.hmin) (json_float h.hmax)
            (json_float h.p50) (json_float h.p90) (json_float h.p99));
      add "}")
    (snapshot ~registry ());
  add "\n]}\n";
  Buffer.contents buf

let render_table ?(registry = default) ?(title = "metrics") () =
  let open Icoe_util in
  let tbl =
    Table.create ~title
      ~aligns:[| Table.Left; Table.Left; Table.Left; Table.Right |]
      [ "metric"; "labels"; "type"; "value" ]
  in
  List.iter
    (fun s ->
      let labels =
        String.concat ","
          (List.map (fun (k, v) -> Fmt.str "%s=%s" k v) s.labels)
      in
      let typ, v =
        match s.value with
        | Counter v -> ("counter", Fmt.str "%.6g" v)
        | Gauge v -> ("gauge", Fmt.str "%.6g" v)
        | Histogram h ->
            ( "histogram",
              Fmt.str "n=%d sum=%.6g p50=%.3g p99=%.3g" h.count h.sum h.p50
                h.p99 )
      in
      Table.add_row tbl [ s.name; labels; typ; v ])
    (snapshot ~registry ());
  tbl
