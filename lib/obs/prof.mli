(** Critical-path blame over a scheduled stream/dependency DAG.

    {!Hwsim.Sched} advances simulated time by the DAG critical path, so
    per-phase charge rollups no longer say what the makespan is waiting
    on: a phase can charge many seconds and still be fully hidden under
    another stream. [Prof] answers the attribution question the paper's
    optimization loop runs on — which items the makespan actually ran
    through (the critical path), how much each phase/stream is
    responsible for (blame, summing exactly to the makespan), how much
    room every off-path item has (slack), and what a phase is worth
    ("zero phase X → makespan shrinks by Y").

    The schedule model mirrors [Sched.run]: items are listed in enqueue
    order and may only depend on earlier items. With [overlap = true] an
    item starts at the max of its stream's ready time and its deps'
    finishes; with [overlap = false] items run back-to-back in enqueue
    order, so the critical path is every item and per-phase blame
    degrades bit-identically to the serial charge breakdown. *)

type item = {
  idx : int;  (** position in enqueue order; must equal the array index *)
  stream : string;
  phase : string;
  device : string;
  dur : float;  (** seconds; finite and nonnegative *)
  deps : int list;  (** indices of earlier items *)
}

type blame = {
  key : string;  (** phase or stream name *)
  seconds : float;  (** makespan seconds attributed to [key] *)
  share : float;  (** [seconds /. makespan], 0 when the makespan is 0 *)
  on_path : int;  (** critical-path items with this key *)
}

type sensitivity = {
  s_key : string;  (** phase name *)
  makespan_without : float;  (** makespan with every [s_key] item zeroed *)
  shrink_s : float;  (** [makespan - makespan_without], clamped >= 0 *)
}

type analysis = {
  overlap : bool;
  n_items : int;
  makespan : float;
  serial_s : float;  (** sum of all durations *)
  starts : float array;  (** per-item scheduled start *)
  finishes : float array;  (** per-item scheduled finish *)
  slack : float array;
      (** per item: how much later it could finish without growing the
          makespan; exactly 0 on every longest path, and 0 everywhere
          with overlap off *)
  critical : int list;
      (** item indices along the blamed path, in schedule order; their
          durations telescope to [makespan] *)
  phase_blame : blame list;  (** descending seconds; sums to [makespan] *)
  stream_blame : blame list;  (** descending seconds; sums to [makespan] *)
  phase_sensitivity : sensitivity list;  (** descending shrink *)
}

val analyze : overlap:bool -> item array -> analysis
(** Recompute the schedule and derive path/blame/slack/sensitivity.
    Raises [Invalid_argument] on malformed input ([idx] mismatch,
    negative or non-finite duration, forward dep). *)

val what_if_zero : analysis -> item array -> (item -> bool) -> float
(** [what_if_zero a items pred] is the makespan shrink obtained by
    zeroing the duration of every item satisfying [pred]. *)

val blame_total : analysis -> float
(** Sum of [phase_blame] seconds (equals [makespan] up to float
    regrouping; exact along the path). *)

val blame_table : ?title:string -> analysis -> Icoe_util.Table.t
(** Per-phase blame as a report table. *)

val sensitivity_lines : analysis -> string
(** One "what-if: zero <phase> -> ..." line per phase. *)

val report_section : analysis -> string
(** Blame table + critical-path summary line + sensitivity lines, ready
    to append to a harness report. *)

val record_metrics : harness:string -> analysis -> unit
(** Set [prof_makespan_seconds], [prof_blame_seconds{phase}] and
    [prof_sensitivity_seconds{phase}] gauges labelled with [harness]. *)
