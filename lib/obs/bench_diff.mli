(** Differential regression gate over two [BENCH_<id>.json] files.

    Flattens both perf trajectories into comparable rows (per
    harness/kernel/overlap/fault/service/blame measurement), judges each
    relative delta against a threshold, and renders a verdict table.
    Simulated-time rows (deterministic model seconds) regress hard at a
    tight threshold; wall-clock rows (host ns timings) warn at a loose
    one unless [fail_wall] promotes them. Rows present on only one side
    are reported as added/removed, never failed — older baselines
    legitimately predate newer sections. *)

type klass = Sim  (** deterministic simulated/model value *)
           | Wall  (** host wall-clock measurement *)

type verdict = Ok | Improved | Warn | Regression | Added | Removed

type row = {
  section : string;
  name : string;
  klass : klass;
  base : float option;  (** [None]: missing in the baseline *)
  cur : float option;  (** [None]: missing in the current file *)
  delta : float;
      (** signed relative delta in the worse direction (positive =
          worse); 0 when one side is missing or the base is 0 *)
  verdict : verdict;
}

type result = {
  rows : row list;
  regressions : int;
  warnings : int;
  improved : int;
}

val diff :
  ?sim_threshold:float ->
  ?wall_threshold:float ->
  ?fail_wall:bool ->
  base:Icoe_util.Json.t ->
  cur:Icoe_util.Json.t ->
  unit ->
  result
(** Compare two parsed BENCH documents. Defaults: [sim_threshold]
    0.05, [wall_threshold] 0.5, [fail_wall] false. *)

val table : ?all:bool -> result -> Icoe_util.Table.t
(** Verdict table; hides plain [Ok] rows unless [all]. *)

val summary : result -> string
(** One-line count summary. *)

val exit_code : result -> int
(** 0 when [regressions = 0], 3 otherwise. *)

val run_files :
  ?sim_threshold:float ->
  ?wall_threshold:float ->
  ?fail_wall:bool ->
  ?all:bool ->
  base:string ->
  cur:string ->
  unit ->
  result * string
(** Read, parse and diff two files; returns the result and the rendered
    report (table + summary). Raises [Failure] on unreadable or invalid
    JSON. *)

val verdict_name : verdict -> string
