(** Unified structured event log (JSONL flight recorder).

    One flat schema over every observability source in the repo: Trace
    spans, Metrics snapshot deltas, fault injections, and service-layer
    job lifecycle. Each event is a single JSON object on its own line:

    {v
    {"seq":N,"t_s":X,"kind":"...","source":"...",...fields}
    v}

    [seq] is a monotonically increasing per-process counter (so a
    merged/sorted log can always be replayed in emission order), [t_s]
    the simulated-clock timestamp when the emitter has one. The recorder
    is off by default — [emit] is a cheap no-op until a sink is
    installed, either explicitly ({!to_file}, {!set_sink}, {!memory})
    or via the [ICOE_EVENTS=path] environment variable checked on first
    use. Events emitted from inside an {!Icoe_par.Pool} parallel job are
    silently dropped rather than racing on the shared channel. *)

type field =
  | S of string
  | F of float
  | I of int
  | B of bool

(* Own escaper so icoe_obs stays below hwsim in the dependency order
   (Trace has one too, for Chrome export). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let field_json = function
  | S s -> Fmt.str "\"%s\"" (json_escape s)
  | F f -> if Float.is_finite f then Fmt.str "%.17g" f else "null"
  | I i -> string_of_int i
  | B b -> if b then "true" else "false"

type sink = { write : string -> unit; close : unit -> unit }

let current : sink option ref = ref None
let seq = ref 0
let env_checked = ref false

let close () =
  (match !current with Some s -> s.close () | None -> ());
  current := None

let set_sink write =
  close ();
  env_checked := true;
  current := Some { write; close = (fun () -> ()) }

let to_file path =
  close ();
  env_checked := true;
  let oc = open_out path in
  current :=
    Some
      {
        write = (fun line -> output_string oc line; output_char oc '\n');
        close = (fun () -> close_out oc);
      }

let memory () =
  let acc = ref [] in
  set_sink (fun line -> acc := line :: !acc);
  fun () -> List.rev !acc

let check_env () =
  if not !env_checked then begin
    env_checked := true;
    match Sys.getenv_opt "ICOE_EVENTS" with
    | Some path when path <> "" ->
        to_file path;
        at_exit close
    | _ -> ()
  end

let enabled () =
  check_env ();
  Option.is_some !current && not (Icoe_par.Pool.in_parallel_job ())

let reset_seq () = seq := 0

let emit ?t_s ~kind ~source fields =
  if enabled () then begin
    let sink = Option.get !current in
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Fmt.str "{\"seq\":%d" !seq);
    incr seq;
    (match t_s with
    | Some t when Float.is_finite t ->
        Buffer.add_string buf (Fmt.str ",\"t_s\":%.17g" t)
    | _ -> ());
    Buffer.add_string buf
      (Fmt.str ",\"kind\":\"%s\",\"source\":\"%s\"" (json_escape kind)
         (json_escape source));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Fmt.str ",\"%s\":%s" (json_escape k) (field_json v)))
      fields;
    Buffer.add_char buf '}';
    sink.write (Buffer.contents buf)
  end
