(** Differential regression gate over two [BENCH_<id>.json] files.

    The bench harness has emitted a machine-readable perf trajectory
    since PR 2; this module turns it from a write-only artifact into an
    enforced contract. Both files are flattened into comparable rows
    (one per harness/kernel/overlap/fault/service/blame/topology/tuner
    measurement),
    each row's relative delta is judged against a threshold, and the
    result is a verdict table plus an exit decision.

    Two classes of measurement get different treatment: {e simulated}
    values (model seconds — deterministic, so any drift is a real model
    change) fail hard at a tight threshold, while {e wall-clock} values
    (host-dependent ns timings) only warn by default at a loose
    threshold, because CI machines are noisy. *)

type klass = Sim | Wall

type verdict = Ok | Improved | Warn | Regression | Added | Removed

type row = {
  section : string;
      (** harness / kernel / overlap / fault / service / blame /
          topology / tuner *)
  name : string;  (** row id within the section, e.g. "sw4/interior" *)
  klass : klass;
  base : float option;  (** [None]: missing in the baseline *)
  cur : float option;  (** [None]: missing in the current file *)
  delta : float;  (** relative delta, [cur/base - 1]; 0 when undefined *)
  verdict : verdict;
}

type result = {
  rows : row list;
  regressions : int;
  warnings : int;
  improved : int;
}

let verdict_name = function
  | Ok -> "ok"
  | Improved -> "improved"
  | Warn -> "WARN"
  | Regression -> "REGRESSION"
  | Added -> "added"
  | Removed -> "removed"

(* A measurement: section, row name, class, lower-is-better?, value.
   Almost everything is a time (lower is better); service throughput
   rows flip the sign. *)
type meas = {
  m_section : string;
  m_name : string;
  m_klass : klass;
  m_higher_better : bool;
  m_value : float;
}

let meas ?(higher_better = false) ~section ~klass name value =
  {
    m_section = section;
    m_name = name;
    m_klass = klass;
    m_higher_better = higher_better;
    m_value = value;
  }

(* Flatten one parsed BENCH document into measurements. Sections absent
   from a file (older baselines predate overlap/service/faults/blame)
   simply contribute nothing — the pairing step turns one-sided rows
   into Added/Removed, never failures. *)
let flatten (j : Icoe_util.Json.t) =
  let open Icoe_util.Json in
  let acc = ref [] in
  let push m = acc := m :: !acc in
  let each section f =
    match list_member section j with
    | Some rows -> List.iter f rows
    | None -> ()
  in
  each "harnesses" (fun r ->
      match string_member "id" r with
      | None -> ()
      | Some id ->
          Option.iter
            (fun v -> push (meas ~section:"harness" ~klass:Sim (id ^ "/simulated_s") v))
            (float_member "simulated_s" r);
          Option.iter
            (fun v -> push (meas ~section:"harness" ~klass:Wall (id ^ "/wall_ns") v))
            (float_member "wall_ns" r));
  each "kernels" (fun r ->
      match string_member "name" r with
      | None -> ()
      | Some name ->
          (* ns_per_run is null for kernels skipped under --micro-only *)
          Option.iter
            (fun v -> push (meas ~section:"kernel" ~klass:Wall name v))
            (float_member "ns_per_run" r));
  each "overlap" (fun r ->
      match string_member "id" r with
      | None -> ()
      | Some id ->
          Option.iter
            (fun v -> push (meas ~section:"overlap" ~klass:Sim (id ^ "/serial_s") v))
            (float_member "serial_s" r);
          Option.iter
            (fun v ->
              push (meas ~section:"overlap" ~klass:Sim (id ^ "/overlapped_s") v))
            (float_member "overlapped_s" r));
  each "faults" (fun r ->
      match string_member "id" r with
      | None -> ()
      | Some id ->
          Option.iter
            (fun v -> push (meas ~section:"fault" ~klass:Sim (id ^ "/achieved_s") v))
            (float_member "achieved_s" r));
  each "service" (fun r ->
      match string_member "policy" r with
      | None -> ()
      | Some policy ->
          Option.iter
            (fun v ->
              push
                (meas ~higher_better:true ~section:"service" ~klass:Sim
                   (policy ^ "/jobs_per_s") v))
            (float_member "jobs_per_s" r);
          Option.iter
            (fun v ->
              push (meas ~section:"service" ~klass:Sim (policy ^ "/wait_p99_s") v))
            (float_member "wait_p99_s" r));
  each "blame" (fun r ->
      match (string_member "id" r, string_member "phase" r) with
      | Some id, Some phase ->
          Option.iter
            (fun v ->
              push (meas ~section:"blame" ~klass:Sim (id ^ "/" ^ phase) v))
            (float_member "seconds" r)
      | _ -> ());
  each "topology" (fun r ->
      match string_member "machine" r with
      | None -> ()
      | Some machine ->
          let nodes =
            match float_member "nodes" r with
            | Some n -> string_of_int (int_of_float n)
            | None -> "?"
          in
          let field f =
            Option.iter
              (fun v ->
                push
                  (meas ~section:"topology" ~klass:Sim
                     (machine ^ "/" ^ nodes ^ "n/" ^ f) v))
              (float_member f r)
          in
          field "contiguous_step_s";
          field "random_step_s");
  each "tuner" (fun r ->
      match (string_member "kernel" r, string_member "machine" r) with
      | Some kernel, Some machine ->
          let field f =
            Option.iter
              (fun v ->
                push
                  (meas ~section:"tuner" ~klass:Sim
                     (kernel ^ "/" ^ machine ^ "/" ^ f) v))
              (float_member f r)
          in
          field "default_s";
          field "tuned_s"
      | _ -> ());
  List.rev !acc

let key m = m.m_section ^ "\x00" ^ m.m_name

(* Judge one paired row. [delta] is the relative change in the
   worse-direction sense: positive means worse. *)
let judge ~sim_threshold ~wall_threshold m_base m_cur =
  let threshold = function Sim -> sim_threshold | Wall -> wall_threshold in
  match (m_base, m_cur) with
  | None, None -> assert false
  | None, Some m ->
      {
        section = m.m_section;
        name = m.m_name;
        klass = m.m_klass;
        base = None;
        cur = Some m.m_value;
        delta = 0.0;
        verdict = Added;
      }
  | Some m, None ->
      {
        section = m.m_section;
        name = m.m_name;
        klass = m.m_klass;
        base = Some m.m_value;
        cur = None;
        delta = 0.0;
        verdict = Removed;
      }
  | Some b, Some c ->
      let worse =
        (* signed relative delta in the "worse" direction *)
        if b.m_value = 0.0 then 0.0
        else begin
          let d = (c.m_value -. b.m_value) /. Float.abs b.m_value in
          if b.m_higher_better then -.d else d
        end
      in
      let th = threshold b.m_klass in
      let verdict =
        if b.m_value = 0.0 && c.m_value = 0.0 then Ok
        else if b.m_value = 0.0 then
          (* a signal appeared where the baseline had none: surface it,
             but a zero baseline gives no meaningful relative delta *)
          Warn
        else if worse > th then
          match b.m_klass with Sim -> Regression | Wall -> Warn
        else if worse < -.th then Improved
        else Ok
      in
      {
        section = b.m_section;
        name = b.m_name;
        klass = b.m_klass;
        base = Some b.m_value;
        cur = Some c.m_value;
        delta = worse;
        verdict;
      }

let diff ?(sim_threshold = 0.05) ?(wall_threshold = 0.5) ?(fail_wall = false)
    ~base ~cur () =
  let base_ms = flatten base and cur_ms = flatten cur in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace base_tbl (key m) m) base_ms;
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace cur_tbl (key m) m) cur_ms;
  let seen = Hashtbl.create 64 in
  let rows = ref [] in
  let consider m other_tbl ~base_side =
    let k = key m in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      let other = Hashtbl.find_opt other_tbl k in
      let b, c = if base_side then (Some m, other) else (other, Some m) in
      rows := judge ~sim_threshold ~wall_threshold b c :: !rows
    end
  in
  List.iter (fun m -> consider m cur_tbl ~base_side:true) base_ms;
  List.iter (fun m -> consider m base_tbl ~base_side:false) cur_ms;
  let rows = List.rev !rows in
  let rows =
    if fail_wall then
      List.map
        (fun r ->
          if r.klass = Wall && r.verdict = Warn && r.base <> None && r.cur <> None
          then { r with verdict = Regression }
          else r)
        rows
    else rows
  in
  let count v = List.length (List.filter (fun r -> r.verdict = v) rows) in
  {
    rows;
    regressions = count Regression;
    warnings = count Warn;
    improved = count Improved;
  }

let opt_str = function Some v -> Fmt.str "%.6g" v | None -> "-"

let table ?(all = false) result =
  let open Icoe_util in
  let t =
    Table.create ~title:"bench diff"
      ~aligns:[| Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
                 Table.Left |]
      [ "section"; "row"; "base"; "current"; "delta"; "verdict" ]
  in
  let interesting r =
    match r.verdict with
    | Ok -> all
    | Improved | Warn | Regression | Added | Removed -> true
  in
  List.iter
    (fun r ->
      if interesting r then
        Table.add_row t
          [
            r.section;
            r.name;
            opt_str r.base;
            opt_str r.cur;
            (match (r.base, r.cur) with
            | Some _, Some _ -> Fmt.str "%+.1f%%" (100.0 *. r.delta)
            | _ -> "-");
            verdict_name r.verdict;
          ])
    result.rows;
  t

let summary result =
  Fmt.str "%d rows: %d regression(s), %d warning(s), %d improved, %d ok/other"
    (List.length result.rows)
    result.regressions result.warnings result.improved
    (List.length result.rows - result.regressions - result.warnings
   - result.improved)

let exit_code result = if result.regressions > 0 then 3 else 0

let run_files ?sim_threshold ?wall_threshold ?fail_wall ?(all = false) ~base
    ~cur () =
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let parse path =
    match Icoe_util.Json.parse (read path) with
    | Ok j -> j
    | Error msg -> failwith (Fmt.str "%s: JSON parse error %s" path msg)
  in
  let base_j = parse base and cur_j = parse cur in
  let result = diff ?sim_threshold ?wall_threshold ?fail_wall ~base:base_j ~cur:cur_j () in
  let rendered = Icoe_util.Table.render (table ~all result) in
  (result, rendered ^ summary result ^ "\n")
