(** Process-wide metrics for the real engines (the paper's Tools activity,
    Sec 4.10.6, applied to our own code): counters, gauges and log-bucketed
    histograms, collected into a registry with deterministic snapshots and
    two exposition formats (Prometheus text and JSON).

    The tracing layer ({!Hwsim.Trace}) answers "where did the *simulated*
    time go"; this module answers "how much work did the *real* engines
    do" — AMG V-cycles, Krylov iterations, BDF steps, force evaluations,
    BFS frontier sizes — so every run leaves a machine-readable record of
    its work, and successive PRs get a perf trajectory via the bench
    harness's [BENCH_*.json] emission.

    Handles are cheap: engines create them once at module initialization
    ([counter]/[gauge]/[histogram] are get-or-create) and the hot-path
    operations ([inc]/[set]/[observe]) are a branch plus a float store.
    Disabling a registry ({!set_enabled}, or the [ICOE_METRICS=0]
    environment variable for the default registry) turns them into
    no-ops. *)

type registry
(** A set of named metrics. Most callers use {!default}. *)

type counter
(** Monotonically increasing value (events, iterations, seconds-of-work). *)

type gauge
(** A value that goes up and down (last residual, current dt). *)

type histogram
(** Log-bucketed distribution with count/sum/min/max, plus a bounded
    window of recent observations from which p50/p90/p99 are derived via
    {!Icoe_util.Stats.percentile_sorted}. *)

val create : unit -> registry
(** A fresh, enabled registry (independent of {!default}). *)

val default : registry
(** The process-wide registry. Enabled unless the [ICOE_METRICS]
    environment variable is set to ["0"], ["off"] or ["false"] at
    startup. *)

val set_enabled : ?registry:registry -> bool -> unit
(** Enable/disable a registry. Disabled registries make [inc]/[set]/
    [observe]/[time] no-ops (handles stay valid; stored values freeze). *)

val is_enabled : ?registry:registry -> unit -> bool

(** {1 Metric creation (get-or-create)}

    [labels] distinguish members of a metric family (e.g.
    [("method", "cg")]); they are sorted by key at registration so label
    order never matters. Registering the same name+labels twice returns
    the same handle. Registering an existing name+labels as a different
    metric type raises [Invalid_argument]. *)

val counter :
  ?registry:registry -> ?help:string -> ?labels:(string * string) list ->
  string -> counter

val gauge :
  ?registry:registry -> ?help:string -> ?labels:(string * string) list ->
  string -> gauge

val histogram :
  ?registry:registry -> ?help:string -> ?labels:(string * string) list ->
  string -> histogram

(** {1 Hot-path operations}

    The registry is not thread-safe: every operation below (and metric
    creation) raises [Invalid_argument] when called from inside an
    {!Icoe_par.Pool} parallel job (see [Pool.in_parallel_job]) — record
    inside the chunk into chunk-local state and flush after the pooled
    call returns. *)

val inc : ?by:float -> counter -> unit
(** Add [by] (default 1.0). Negative [by] raises [Invalid_argument]. *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit

val time : ?registry:registry -> ?labels:(string * string) list ->
  string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()] and observes its wall-clock duration in
    seconds into histogram [name]. The duration is recorded even when [f]
    raises (the exception is re-raised). Uses the module clock
    ({!set_clock}); negative deltas (non-monotonic clock) clamp to 0. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall-clock source used by {!time} (seconds; default
    [Unix.gettimeofday]). Tests inject a deterministic clock here. *)

(** {1 Reading back} *)

val counter_value : counter -> float
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [0, 1], over the retained observation
    window (the most recent {!window_capacity} observations); 0.0 for an
    empty histogram. *)

val window_capacity : int
(** Number of recent observations a histogram retains for quantiles. *)

(** {1 Histogram geometry}

    Exposed so boundary behaviour is testable: buckets are exponential
    base-2, bucket [k > 0] covering [(bucket_lo * 2^(k-1),
    bucket_lo * 2^k]] with bucket 0 absorbing everything at or below
    [bucket_lo] and bucket [n_buckets] the overflow. Exact boundary
    values [bucket_lo *. 2.0 ** k] land in bucket [k] (upper bound
    inclusive); the index is computed via [Float.frexp], not a rounded
    [log2]. *)

val bucket_lo : float
val n_buckets : int

val bucket_index : float -> int
(** Bucket an observation lands in, in [\[0, n_buckets\]]. *)

val bucket_upper : int -> float
(** Inclusive upper bound of bucket [k]; [infinity] for the overflow
    bucket. *)

val value : ?registry:registry -> ?labels:(string * string) list ->
  string -> float option
(** Current value of a counter or gauge by name+labels, [None] if absent
    (does not create). Histograms return their sum. *)

(** {1 Snapshot and exposition} *)

type histogram_summary = {
  count : int;
  sum : float;
  hmin : float;  (** 0.0 when empty *)
  hmax : float;  (** 0.0 when empty *)
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;
      (** (upper bound, cumulative count), nonempty buckets only, plus a
          final (infinity, total). *)
}

type value =
  | Counter of float
  | Gauge of float
  | Histogram of histogram_summary

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  help : string;
  value : value;
}

val snapshot : ?registry:registry -> unit -> sample list
(** Deterministic: sorted by name, then by rendered labels. Identical
    registry states produce identical snapshots regardless of
    registration or update order. *)

val diff : before:sample list -> after:sample list -> sample list
(** The samples that changed between two {!snapshot}s, keyed by
    name+labels. Counter values and histogram count/sum become deltas;
    gauges keep their [after] value. Unchanged samples (and counters/
    histograms that first appear at zero) are dropped. Order follows
    [after], so the result is deterministically sorted. *)

val reset : ?registry:registry -> unit -> unit
(** Zero every counter/gauge and empty every histogram. Handles held by
    engines stay registered and valid. *)

val to_prometheus : ?registry:registry -> unit -> string
(** Prometheus text exposition format: # HELP / # TYPE headers, one line
    per sample, histograms as cumulative [_bucket{le=...}] + [_sum] +
    [_count]. *)

val to_json : ?registry:registry -> unit -> string
(** JSON document [{"metrics": [...]}] with one object per sample
    (counters/gauges: ["value"]; histograms: count/sum/min/max/p50/p90/
    p99). Non-finite floats are emitted as [null] so the output is always
    valid JSON. *)

val render_table : ?registry:registry -> ?title:string -> unit ->
  Icoe_util.Table.t
(** Snapshot rendered as an {!Icoe_util.Table} (metric, labels, value)
    for the CLI report. *)
