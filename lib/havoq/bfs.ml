(** Breadth-first search: classic top-down, bottom-up, and the
    direction-optimizing hybrid (Beamer-style) that Graph500 codes use.
    Returns the parent array; GTEPS accounting counts traversed edges. *)

type stats = {
  parents : int array;
  reached : int;
  edges_traversed : int;  (** for the top-down baseline accounting *)
  iterations : int;
  switches : int;  (** top-down <-> bottom-up transitions (hybrid only) *)
}

let m_frontier =
  Icoe_obs.Metrics.histogram ~help:"Frontier size per BFS iteration"
    "bfs_frontier_size"

let m_switches =
  Icoe_obs.Metrics.counter ~help:"Top-down <-> bottom-up direction switches"
    "bfs_direction_switches_total"

let m_edges =
  Icoe_obs.Metrics.counter ~help:"Edges traversed across all searches"
    "bfs_edges_traversed_total"

let m_searches =
  Icoe_obs.Metrics.counter ~help:"Completed BFS searches" "bfs_searches_total"

let record (s : stats) =
  Icoe_obs.Metrics.inc m_searches;
  Icoe_obs.Metrics.inc ~by:(float_of_int s.edges_traversed) m_edges;
  Icoe_obs.Metrics.inc ~by:(float_of_int s.switches) m_switches;
  s

let top_down (g : Graph.t) ~src =
  let parents = Array.make g.Graph.n (-1) in
  parents.(src) <- src;
  let frontier = ref [ src ] in
  let reached = ref 1 in
  let edges = ref 0 in
  let iters = ref 0 in
  while !frontier <> [] do
    incr iters;
    Icoe_obs.Metrics.observe m_frontier (float_of_int (List.length !frontier));
    let next = ref [] in
    List.iter
      (fun u ->
        for k = g.Graph.row_ptr.(u) to g.Graph.row_ptr.(u + 1) - 1 do
          incr edges;
          let v = g.Graph.adj.(k) in
          if parents.(v) < 0 then begin
            parents.(v) <- u;
            incr reached;
            next := v :: !next
          end
        done)
      !frontier;
    frontier := !next
  done;
  record
    {
      parents;
      reached = !reached;
      edges_traversed = !edges;
      iterations = !iters;
      switches = 0;
    }

(** Direction-optimizing BFS: switch to bottom-up when the frontier is a
    large fraction of the graph, back to top-down when it shrinks. *)
let hybrid ?(alpha = 15) ?(beta = 18) (g : Graph.t) ~src =
  let n = g.Graph.n in
  let parents = Array.make n (-1) in
  parents.(src) <- src;
  let in_frontier = Array.make n false in
  in_frontier.(src) <- true;
  let frontier_size = ref 1 in
  let frontier_edges = ref (Graph.degree g src) in
  let reached = ref 1 in
  let edges = ref 0 in
  let iters = ref 0 in
  let switches = ref 0 in
  let bottom_up = ref false in
  let unexplored_edges = ref g.Graph.m in
  while !frontier_size > 0 do
    incr iters;
    Icoe_obs.Metrics.observe m_frontier (float_of_int !frontier_size);
    let was = !bottom_up in
    (* Beamer heuristics *)
    if (not !bottom_up) && !frontier_edges * alpha > !unexplored_edges then
      bottom_up := true
    else if !bottom_up && !frontier_size * beta < n then bottom_up := false;
    if was <> !bottom_up then incr switches;
    let next = Array.make n false in
    let next_size = ref 0 and next_edges = ref 0 in
    if !bottom_up then
      (* every unvisited vertex scans its neighbours for a frontier hit *)
      for v = 0 to n - 1 do
        if parents.(v) < 0 then begin
          let k = ref g.Graph.row_ptr.(v) in
          let found = ref false in
          while (not !found) && !k < g.Graph.row_ptr.(v + 1) do
            incr edges;
            let u = g.Graph.adj.(!k) in
            if in_frontier.(u) then begin
              parents.(v) <- u;
              incr reached;
              next.(v) <- true;
              incr next_size;
              next_edges := !next_edges + Graph.degree g v;
              found := true
            end;
            incr k
          done
        end
      done
    else
      for u = 0 to n - 1 do
        if in_frontier.(u) then
          for k = g.Graph.row_ptr.(u) to g.Graph.row_ptr.(u + 1) - 1 do
            incr edges;
            let v = g.Graph.adj.(k) in
            if parents.(v) < 0 then begin
              parents.(v) <- u;
              incr reached;
              if not next.(v) then begin
                next.(v) <- true;
                incr next_size;
                next_edges := !next_edges + Graph.degree g v
              end
            end
          done
      done;
    unexplored_edges := !unexplored_edges - !frontier_edges;
    Array.blit next 0 in_frontier 0 n;
    frontier_size := !next_size;
    frontier_edges := !next_edges
  done;
  record
    {
      parents;
      reached = !reached;
      edges_traversed = !edges;
      iterations = !iters;
      switches = !switches;
    }

(** Connected components by label propagation (HavoqGT's other core
    analytic): every vertex takes the minimum label among itself and its
    neighbours until a fixed point. Returns the component label of each
    vertex. *)
let connected_components (g : Graph.t) =
  let label = Array.init g.Graph.n (fun v -> v) in
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to g.Graph.n - 1 do
      for k = g.Graph.row_ptr.(u) to g.Graph.row_ptr.(u + 1) - 1 do
        let v = g.Graph.adj.(k) in
        if label.(v) < label.(u) then begin
          label.(u) <- label.(v);
          changed := true
        end
      done
    done
  done;
  label

(** Number of distinct components. *)
let num_components labels =
  List.length (List.sort_uniq Int.compare (Array.to_list labels))

(** Validate a parent array: every reached vertex's parent edge exists and
    levels are consistent (parent level = child level - 1). *)
let validate (g : Graph.t) ~src (s : stats) =
  let level = Array.make g.Graph.n (-1) in
  level.(src) <- 0;
  (* compute levels by reference BFS *)
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for k = g.Graph.row_ptr.(u) to g.Graph.row_ptr.(u + 1) - 1 do
      let v = g.Graph.adj.(k) in
      if level.(v) < 0 then begin
        level.(v) <- level.(u) + 1;
        Queue.push v q
      end
    done
  done;
  let ok = ref true in
  Array.iteri
    (fun v p ->
      if p >= 0 && v <> src then begin
        (* edge (p, v) must exist *)
        let found = ref false in
        for k = g.Graph.row_ptr.(p) to g.Graph.row_ptr.(p + 1) - 1 do
          if g.Graph.adj.(k) = v then found := true
        done;
        if not !found then ok := false;
        if level.(v) < 0 || level.(p) <> level.(v) - 1 then ok := false
      end
      else if p < 0 && level.(v) >= 0 then ok := false)
    s.parents;
  !ok
