(** BoomerAMG: unstructured algebraic multigrid.

    Setup (CPU, per the paper): strength → PMIS coarsening → direct
    interpolation → Galerkin coarse operator A_c = P^T A P, recursively.
    Solve (GPU-portable, per the paper): V-cycles whose fine-level work is
    smoother sweeps and spmv restrict/prolong — all matvec-shaped. The
    [device_profile] hook reports the flop/byte volume of one V-cycle so
    the hardware model can price the solve phase on any device. *)

type level = {
  a : Linalg.Csr.t;
  p : Linalg.Csr.t option;  (** interpolation to this level from coarser *)
  r : Linalg.Csr.t option;  (** restriction = P^T *)
}

type t = {
  levels : level array;  (** levels.(0) is the fine grid *)
  coarse_lu : Linalg.Dense.lu;
  smoother : Smoother.kind;
  nu_pre : int;
  nu_post : int;
}

type setup_params = {
  theta : float;
  max_levels : int;
  coarse_size : int;
  smoother : Smoother.kind;
  nu_pre : int;
  nu_post : int;
  seed : int;
}

let m_vcycles =
  Icoe_obs.Metrics.counter ~help:"BoomerAMG V-cycles applied" "amg_vcycles_total"

let m_levels =
  Icoe_obs.Metrics.gauge ~help:"Levels in the last AMG hierarchy built"
    "amg_levels"

let m_opcx =
  Icoe_obs.Metrics.gauge
    ~help:"Operator complexity of the last AMG hierarchy built"
    "amg_operator_complexity"

let m_reduction =
  Icoe_obs.Metrics.histogram
    ~help:"Residual reduction factor per standalone solve cycle"
    "amg_cycle_reduction"

let default_params =
  {
    theta = 0.25;
    max_levels = 20;
    coarse_size = 40;
    smoother = Smoother.L1_jacobi;
    nu_pre = 1;
    nu_post = 1;
    seed = 7;
  }

let num_levels t = Array.length t.levels

let operator_complexity t =
  let fine = float_of_int (Linalg.Csr.nnz t.levels.(0).a) in
  let total =
    Array.fold_left (fun s l -> s +. float_of_int (Linalg.Csr.nnz l.a)) 0.0 t.levels
  in
  total /. fine

let setup ?(params = default_params) (a0 : Linalg.Csr.t) =
  let rng = Icoe_util.Rng.create params.seed in
  let rec build a acc depth =
    if a.Linalg.Csr.m <= params.coarse_size || depth >= params.max_levels then
      (a, List.rev acc)
    else
      let s = Coarsen.strength ~theta:params.theta a in
      let cf = Coarsen.pmis ~rng s in
      let nc = Array.fold_left (fun c x -> if x = Coarsen.Coarse then c + 1 else c) 0 cf in
      if nc = 0 || nc >= a.Linalg.Csr.m then (a, List.rev acc)
      else
        let p, _ = Coarsen.direct_interpolation a s cf in
        let r = Linalg.Csr.transpose p in
        let ac = Linalg.Csr.matmul r (Linalg.Csr.matmul a p) in
        build ac ({ a; p = Some p; r = Some r } :: acc) (depth + 1)
  in
  let coarse_a, levels = build a0 [] 0 in
  let levels = levels @ [ { a = coarse_a; p = None; r = None } ] in
  let coarse_dense = Linalg.Csr.to_dense coarse_a in
  (* regularize in case the coarsest operator is singular (pure Neumann) *)
  let lu =
    try Linalg.Dense.lu_factor coarse_dense
    with Linalg.Dense.Singular _ ->
      let d = Linalg.Dense.copy coarse_dense in
      for i = 0 to d.Linalg.Dense.m - 1 do
        Linalg.Dense.update d i i (fun v -> v +. 1e-8)
      done;
      Linalg.Dense.lu_factor d
  in
  let t =
    {
      levels = Array.of_list levels;
      coarse_lu = lu;
      smoother = params.smoother;
      nu_pre = params.nu_pre;
      nu_post = params.nu_post;
    }
  in
  Icoe_obs.Metrics.set m_levels (float_of_int (num_levels t));
  Icoe_obs.Metrics.set m_opcx (operator_complexity t);
  t

(** One V-cycle for A x = b starting from x (modified in place at level 0). *)
let v_cycle t b x =
  Icoe_obs.Metrics.inc m_vcycles;
  let nl = Array.length t.levels in
  let rec descend lvl b x =
    let a = t.levels.(lvl).a in
    if lvl = nl - 1 then begin
      let sol = Linalg.Dense.lu_solve t.coarse_lu b in
      Array.blit sol 0 x 0 (Array.length sol)
    end
    else begin
      for _ = 1 to t.nu_pre do
        Smoother.sweep t.smoother a b x
      done;
      let r = Linalg.Vec.sub b (Linalg.Csr.spmv a x) in
      (* restriction lives on the *finer* level's record *)
      let restrict = Option.get t.levels.(lvl).r in
      let bc = Linalg.Csr.spmv restrict r in
      let xc = Array.make (Array.length bc) 0.0 in
      descend (lvl + 1) bc xc;
      let p = Option.get t.levels.(lvl).p in
      let corr = Linalg.Csr.spmv p xc in
      Linalg.Vec.axpy 1.0 corr x;
      for _ = 1 to t.nu_post do
        Smoother.sweep t.smoother a b x
      done
    end
  in
  descend 0 b x

(** Standalone AMG iteration to tolerance. *)
let solve ?(tol = 1e-8) ?(max_cycles = 100) t b x0 =
  let a = t.levels.(0).a in
  let x = Array.copy x0 in
  let bnorm = max (Linalg.Vec.nrm2 b) 1e-300 in
  let res = ref (Linalg.Vec.nrm2 (Linalg.Vec.sub b (Linalg.Csr.spmv a x)) /. bnorm) in
  let cycles = ref 0 in
  while !res > tol && !cycles < max_cycles do
    let res_before = !res in
    v_cycle t b x;
    res := Linalg.Vec.nrm2 (Linalg.Vec.sub b (Linalg.Csr.spmv a x)) /. bnorm;
    if res_before > 0.0 then
      Icoe_obs.Metrics.observe m_reduction (!res /. res_before);
    incr cycles
  done;
  (x, !cycles, !res)

(** Use as a preconditioner: one V-cycle applied to r from a zero guess. *)
let precond t r =
  let z = Array.make (Array.length r) 0.0 in
  v_cycle t r z;
  z

(** PCG with this AMG as preconditioner — the hypre Krylov + AMG stack. *)
let pcg_solve ?(tol = 1e-8) ?(max_iter = 200) t b x0 =
  Linalg.Krylov.pcg ~tol ~max_iter
    ~op:(fun v -> Linalg.Csr.spmv t.levels.(0).a v)
    ~precond:(precond t) b x0

(** Flop/byte volume of one V-cycle: every smoother sweep costs ~2 spmv
    traversals, restrict/prolong one each. Used to price the solve phase
    on simulated devices. *)
let v_cycle_work (t : t) =
  let spmv_cost (m : Linalg.Csr.t) =
    let nz = float_of_int (Linalg.Csr.nnz m) in
    (* 2 flops and 12 bytes (value + column index + vector read) per nnz,
       plus the output vector write *)
    (2.0 *. nz, (12.0 *. nz) +. (8.0 *. float_of_int m.Linalg.Csr.m))
  in
  let flops = ref 0.0 and bytes = ref 0.0 and launches = ref 0 in
  Array.iteri
    (fun lvl l ->
      let f, b = spmv_cost l.a in
      let sweeps = float_of_int (t.nu_pre + t.nu_post) in
      if lvl < Array.length t.levels - 1 then begin
        (* each sweep: one residual spmv + diagonal update *)
        flops := !flops +. (sweeps *. (f +. (2.0 *. float_of_int l.a.Linalg.Csr.m)));
        bytes := !bytes +. (sweeps *. (b +. (16.0 *. float_of_int l.a.Linalg.Csr.m)));
        launches := !launches + ((t.nu_pre + t.nu_post) * 2);
        (* residual + restrict + prolong *)
        flops := !flops +. f;
        bytes := !bytes +. b;
        launches := !launches + 3;
        (match l.r with
        | Some r ->
            let f, b = spmv_cost r in
            flops := !flops +. (2.0 *. f);
            bytes := !bytes +. (2.0 *. b)
        | None -> ())
      end)
    t.levels;
  Hwsim.Kernel.make ~name:"amg-vcycle" ~flops:!flops ~bytes:!bytes
    ~launches:!launches ()
