(** Pointwise smoothers for the AMG hierarchy.

    The GPU-portable smoothers are the ones expressible as matvecs plus
    diagonal scalings (weighted Jacobi, l1-Jacobi) — exactly why the paper's
    BoomerAMG solve-phase port leaned on cuSPARSE spmv. Gauss-Seidel is the
    sequential CPU reference. *)

type kind = Jacobi of float  (** weight *) | L1_jacobi | Gauss_seidel

let name = function
  | Jacobi w -> Fmt.str "jacobi(%.2f)" w
  | L1_jacobi -> "l1-jacobi"
  | Gauss_seidel -> "gauss-seidel"

(** One sweep of x <- x + M^{-1}(b - Ax), in place. *)
let sweep kind (a : Linalg.Csr.t) b x =
  let n = a.Linalg.Csr.m in
  match kind with
  | Jacobi w ->
      let d = Linalg.Csr.diag a in
      let r = Linalg.Vec.sub b (Linalg.Csr.spmv a x) in
      for i = 0 to n - 1 do
        if d.(i) <> 0.0 then x.(i) <- x.(i) +. (w *. r.(i) /. d.(i))
      done
  | L1_jacobi ->
      (* divide by the l1 norm of the row: unconditionally convergent for
         symmetric M-matrices, and GPU-friendly *)
      let r = Linalg.Vec.sub b (Linalg.Csr.spmv a x) in
      for i = 0 to n - 1 do
        let l1 = ref 0.0 in
        for k = a.Linalg.Csr.row_ptr.(i) to a.Linalg.Csr.row_ptr.(i + 1) - 1 do
          l1 := !l1 +. Float.abs (Icoe_util.Fbuf.get a.Linalg.Csr.values k)
        done;
        if !l1 > 0.0 then x.(i) <- x.(i) +. (r.(i) /. !l1)
      done
  | Gauss_seidel ->
      for i = 0 to n - 1 do
        let s = ref b.(i) in
        let d = ref 0.0 in
        for k = a.Linalg.Csr.row_ptr.(i) to a.Linalg.Csr.row_ptr.(i + 1) - 1 do
          let j = a.Linalg.Csr.col_idx.(k) in
          if j = i then d := Icoe_util.Fbuf.get a.Linalg.Csr.values k
          else s := !s -. (Icoe_util.Fbuf.get a.Linalg.Csr.values k *. x.(j))
        done;
        if !d <> 0.0 then x.(i) <- !s /. !d
      done

(** Whether the smoother is expressible with spmv-level parallelism (and
    therefore runs on the accelerator in the solve-phase port). *)
let gpu_capable = function
  | Jacobi _ | L1_jacobi -> true
  | Gauss_seidel -> false
