(** PFMG: geometric multigrid for the structured path — the second of
    hypre's structured solvers the paper ports through BoxLoops.

    Solves the 5-point Poisson problem on an (n x n) interior grid
    (Dirichlet walls) with full coarsening, damped-Jacobi smoothing,
    bilinear prolongation and full-weighting restriction — every sweep
    expressed through the retargetable [Boxloop.boxloop2], so the whole
    cycle runs under any execution policy. Grid sizes must be (2^k - 1)
    per side so that coarsening terminates at a single interior point. *)

type level = {
  n : int;  (** interior points per side *)
  u : float array;  (** (n+2)^2 with ghost walls *)
  b : float array;
  r : float array;
}

type t = { levels : level array }

let m_vcycles =
  Icoe_obs.Metrics.counter ~help:"PFMG V-cycles applied" "pfmg_vcycles_total"

let m_residual =
  Icoe_obs.Metrics.gauge ~help:"Final relative residual of the last PFMG solve"
    "pfmg_last_residual"

let idx lvl i j = i + ((lvl.n + 2) * j)

let make_level n =
  let m = (n + 2) * (n + 2) in
  { n; u = Array.make m 0.0; b = Array.make m 0.0; r = Array.make m 0.0 }

(** Build a hierarchy for an (n x n) interior grid, n = 2^k - 1. *)
let create n =
  assert (n >= 1);
  assert ((n + 1) land n = 0 (* n+1 power of two *));
  let rec build n acc = if n < 1 then acc else build ((n - 1) / 2) (make_level n :: acc) in
  let levels = List.rev (build n []) in
  { levels = Array.of_list levels }

let finest t = t.levels.(0)

let interior lvl = { Boxloop.ilo = 1; ihi = lvl.n; jlo = 1; jhi = lvl.n }

(* one damped-Jacobi sweep on a level *)
let smooth ctx ?(w = 0.8) lvl =
  let u = lvl.u and b = lvl.b and r = lvl.r in
  let stride = lvl.n + 2 in
  Boxloop.boxloop2 ctx ~phase:"pfmg-smooth" ~flops_per:8.0 ~bytes_per:48.0
    (interior lvl) (fun i j ->
      let k = idx lvl i j in
      let nb = u.(k - 1) +. u.(k + 1) +. u.(k - stride) +. u.(k + stride) in
      r.(k) <- u.(k) +. (w *. (((b.(k) +. nb) /. 4.0) -. u.(k))));
  Boxloop.boxloop2 ctx ~phase:"pfmg-copy" ~flops_per:0.0 ~bytes_per:16.0
    (interior lvl) (fun i j ->
      let k = idx lvl i j in
      u.(k) <- r.(k))

(* residual r = b - A u (A = 4u - neighbours, h-scaled rhs baked into b) *)
let residual ctx lvl =
  let u = lvl.u and b = lvl.b and r = lvl.r in
  let stride = lvl.n + 2 in
  Boxloop.boxloop2 ctx ~phase:"pfmg-residual" ~flops_per:7.0 ~bytes_per:48.0
    (interior lvl) (fun i j ->
      let k = idx lvl i j in
      let nb = u.(k - 1) +. u.(k + 1) +. u.(k - stride) +. u.(k + stride) in
      r.(k) <- b.(k) +. nb -. (4.0 *. u.(k)))

(* full-weighting restriction of fine.r into coarse.b; fine n = 2c+1 *)
let restrict ctx ~(fine : level) ~(coarse : level) =
  let fr = fine.r in
  let fs = fine.n + 2 in
  Boxloop.boxloop2 ctx ~phase:"pfmg-restrict" ~flops_per:12.0 ~bytes_per:80.0
    (interior coarse) (fun ci cj ->
      let fi = 2 * ci and fj = 2 * cj in
      let k = fi + (fs * fj) in
      let v =
        (4.0 *. fr.(k))
        +. (2.0 *. (fr.(k - 1) +. fr.(k + 1) +. fr.(k - fs) +. fr.(k + fs)))
        +. fr.(k - fs - 1) +. fr.(k - fs + 1) +. fr.(k + fs - 1)
        +. fr.(k + fs + 1)
      in
      (* factor 4 keeps the coarse operator consistent under full
         weighting (scale 1/16 x h^2 ratio 4) *)
      coarse.b.(ci + ((coarse.n + 2) * cj)) <- v /. 4.0)

(* bilinear prolongation of coarse.u added into fine.u *)
let prolong ctx ~(coarse : level) ~(fine : level) =
  let cu = coarse.u in
  let cs = coarse.n + 2 in
  let fs = fine.n + 2 in
  let fu = fine.u in
  Boxloop.boxloop2 ctx ~phase:"pfmg-prolong" ~flops_per:6.0 ~bytes_per:48.0
    (interior fine) (fun fi fj ->
      let ci = fi / 2 and cj = fj / 2 in
      let v =
        match (fi land 1, fj land 1) with
        | 0, 0 -> cu.(ci + (cs * cj))
        | 1, 0 -> 0.5 *. (cu.(ci + (cs * cj)) +. cu.(ci + 1 + (cs * cj)))
        | 0, 1 -> 0.5 *. (cu.(ci + (cs * cj)) +. cu.(ci + (cs * (cj + 1))))
        | _ ->
            0.25
            *. (cu.(ci + (cs * cj)) +. cu.(ci + 1 + (cs * cj))
               +. cu.(ci + (cs * (cj + 1)))
               +. cu.(ci + 1 + (cs * (cj + 1))))
      in
      fu.(fi + (fs * fj)) <- fu.(fi + (fs * fj)) +. v)

(** One V(nu1, nu2)-cycle. *)
let v_cycle ?(nu1 = 2) ?(nu2 = 2) ctx t =
  Icoe_obs.Metrics.inc m_vcycles;
  let nl = Array.length t.levels in
  let rec descend l =
    let lvl = t.levels.(l) in
    if l = nl - 1 then
      (* coarsest: a handful of sweeps solves the tiny system *)
      for _ = 1 to 8 do
        smooth ctx lvl
      done
    else begin
      for _ = 1 to nu1 do
        smooth ctx lvl
      done;
      residual ctx lvl;
      let coarse = t.levels.(l + 1) in
      restrict ctx ~fine:lvl ~coarse;
      Array.fill coarse.u 0 (Array.length coarse.u) 0.0;
      descend (l + 1);
      prolong ctx ~coarse ~fine:lvl;
      for _ = 1 to nu2 do
        smooth ctx lvl
      done
    end
  in
  descend 0

(** Residual infinity norm on the finest level. *)
let residual_norm ctx t =
  let lvl = finest t in
  residual ctx lvl;
  let m = ref 0.0 in
  for j = 1 to lvl.n do
    for i = 1 to lvl.n do
      m := max !m (Float.abs lvl.r.(idx lvl i j))
    done
  done;
  !m

(** Solve to relative tolerance; returns (cycles, final relative norm). *)
let solve ?(tol = 1e-10) ?(max_cycles = 50) ctx t =
  let r0 = max (residual_norm ctx t) 1e-300 in
  let rec go c =
    let r = residual_norm ctx t /. r0 in
    if r <= tol || c >= max_cycles then begin
      Icoe_obs.Metrics.set m_residual r;
      (c, r)
    end
    else begin
      v_cycle ctx t;
      go (c + 1)
    end
  in
  go 0
