(** Strength of connection and PMIS coarse-grid selection.

    This is the (CPU-resident) setup-phase machinery the paper explicitly
    kept on the host: "The setup phase, which consists of complicated
    components, has been kept on the CPU." *)

type cf = Coarse | Fine

(** Strength matrix: S_ij = 1 iff -a_ij >= theta * max_{k<>i}(-a_ik).
    Returned as a CSR 0/1 pattern (diagonal excluded). *)
let strength ?(theta = 0.25) (a : Linalg.Csr.t) =
  let open Linalg.Csr in
  let triplets = ref [] in
  for i = 0 to a.m - 1 do
    (* max negative off-diagonal magnitude *)
    let maxneg = ref 0.0 in
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      if a.col_idx.(k) <> i then
        maxneg := max !maxneg (-.Icoe_util.Fbuf.get a.values k)
    done;
    if !maxneg > 0.0 then
      for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        let j = a.col_idx.(k) in
        if j <> i && -.Icoe_util.Fbuf.get a.values k >= theta *. !maxneg then
          triplets := (i, j, 1.0) :: !triplets
      done
  done;
  of_triplets ~m:a.m ~n:a.n !triplets

(** PMIS: parallel maximal independent set on the strength graph, seeded by
    measure = degree + random in [0,1). Deterministic given [rng]. *)
let pmis ~(rng : Icoe_util.Rng.t) (s : Linalg.Csr.t) =
  let open Linalg.Csr in
  let n = s.m in
  let st = transpose s in
  let degree i =
    (s.row_ptr.(i + 1) - s.row_ptr.(i)) + (st.row_ptr.(i + 1) - st.row_ptr.(i))
  in
  let measure = Array.init n (fun i -> float_of_int (degree i) +. Icoe_util.Rng.float rng) in
  let state = Array.make n `Undecided in
  (* isolated points (no strong connections either way) become fine
     immediately; nothing interpolates from them *)
  for i = 0 to n - 1 do
    if degree i = 0 then state.(i) <- `Coarse
    (* isolated: treat as coarse so they're exactly represented *)
  done;
  let undecided = ref n in
  let count_undecided () =
    let c = ref 0 in
    Array.iter (fun s -> if s = `Undecided then incr c) state;
    !c
  in
  undecided := count_undecided ();
  while !undecided > 0 do
    (* select local maxima among undecided *)
    let selected = Array.make n false in
    for i = 0 to n - 1 do
      if state.(i) = `Undecided then begin
        let is_max = ref true in
        let check k_arr_ptr k_arr_idx =
          for k = k_arr_ptr.(i) to k_arr_ptr.(i + 1) - 1 do
            let j = k_arr_idx.(k) in
            if state.(j) = `Undecided && measure.(j) > measure.(i) then
              is_max := false
          done
        in
        check s.row_ptr s.col_idx;
        check st.row_ptr st.col_idx;
        if !is_max then selected.(i) <- true
      end
    done;
    for i = 0 to n - 1 do
      if selected.(i) then state.(i) <- `Coarse
    done;
    (* any undecided point strongly connected to a new coarse point becomes
       fine *)
    for i = 0 to n - 1 do
      if state.(i) = `Undecided then begin
        let has_coarse = ref false in
        for k = s.row_ptr.(i) to s.row_ptr.(i + 1) - 1 do
          if state.(s.col_idx.(k)) = `Coarse then has_coarse := true
        done;
        if !has_coarse then state.(i) <- `Fine
      end
    done;
    let u = count_undecided () in
    (* safety: if no progress (all remaining are mutually weak), make the
       highest-measure one coarse *)
    if u = !undecided && u > 0 then begin
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if state.(i) = `Undecided
           && (!best < 0 || measure.(i) > measure.(!best)) then best := i
      done;
      state.(!best) <- `Coarse
    end;
    undecided := count_undecided ()
  done;
  Array.map (function `Coarse -> Coarse | `Fine -> Fine | `Undecided -> Fine) state

(** Direct interpolation: for fine i,
    P_ij = -a_ij / a_ii * (sum of all neg offdiag) / (sum over coarse strong
    neighbours), classical scaling. Coarse points are injected. Returns
    (P, coarse_index_map). *)
let direct_interpolation (a : Linalg.Csr.t) (s : Linalg.Csr.t) cf =
  let open Linalg.Csr in
  let n = a.m in
  let cmap = Array.make n (-1) in
  let nc = ref 0 in
  for i = 0 to n - 1 do
    if cf.(i) = Coarse then begin
      cmap.(i) <- !nc;
      incr nc
    end
  done;
  let strong_coarse i =
    let acc = ref [] in
    for k = s.row_ptr.(i) to s.row_ptr.(i + 1) - 1 do
      let j = s.col_idx.(k) in
      if cf.(j) = Coarse then acc := j :: !acc
    done;
    !acc
  in
  let triplets = ref [] in
  for i = 0 to n - 1 do
    match cf.(i) with
    | Coarse -> triplets := (i, cmap.(i), 1.0) :: !triplets
    | Fine ->
        let sc = strong_coarse i in
        let aii = ref 0.0 in
        let sum_all = ref 0.0 and sum_c = ref 0.0 in
        for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
          let j = a.col_idx.(k) and v = Icoe_util.Fbuf.get a.values k in
          if j = i then aii := v
          else begin
            if v < 0.0 then sum_all := !sum_all +. v;
            if v < 0.0 && List.mem j sc then sum_c := !sum_c +. v
          end
        done;
        if sc = [] || !sum_c = 0.0 || !aii = 0.0 then
          (* no coarse support: fall back to zero row (smoother handles it) *)
          ()
        else
          let alpha = !sum_all /. !sum_c in
          List.iter
            (fun j ->
              (* a_ij for this j *)
              let aij = ref 0.0 in
              for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
                if a.col_idx.(k) = j then aij := Icoe_util.Fbuf.get a.values k
              done;
              if !aij < 0.0 then
                triplets := (i, cmap.(j), -.alpha *. !aij /. !aii) :: !triplets)
            sc
  done;
  (of_triplets ~m:n ~n:!nc !triplets, cmap)
