(** Job-stream generation for the machine-as-a-service simulation.

    The paper's machine was a batch-scheduled shared resource; this
    module models its demand side. A {!job_class} names one of the
    reproduced workloads (a harness-registry id) together with its
    candidate allocation sizes and a cost-model pricing of its service
    time; {!generate} draws a submission stream over the classes with
    Zipf-skewed popularity and Poisson or bursty arrivals. *)

type job_class = {
  name : string;  (** harness-registry id of the workload *)
  sizes : int array;  (** candidate node counts, drawn uniformly *)
  service : nodes:int -> float;
      (** service seconds on an allocation of [nodes], priced by the
          {!Hwsim.Sched}/roofline cost models. Must be pure: the cluster
          simulator memoizes it per (class, nodes). *)
}

type job = {
  id : int;
  arrival : float;  (** submission time, seconds *)
  klass : int;  (** index into the class catalog *)
  nodes : int;  (** requested allocation (gang: all held at once) *)
}

type arrivals =
  | Poisson of float  (** rate, jobs/s *)
  | Bursty of {
      rate_hi : float;  (** jobs/s while bursting *)
      rate_lo : float;  (** jobs/s between bursts (may be 0) *)
      mean_hi_s : float;  (** mean burst dwell, seconds *)
      mean_lo_s : float;  (** mean quiet dwell, seconds *)
    }
      (** Two-state Markov-modulated Poisson process: exponential dwell
          in each state, switched high/low arrival rates. *)

val arrivals_name : arrivals -> string

val zipf : s:float -> int -> float array
(** [zipf ~s n]: unnormalized Zipf weights [1/k^s] for ranks 1..n. *)

val mean_node_seconds : classes:job_class array -> zipf_s:float -> float
(** Exact expected node-seconds demand of one submitted job (Zipf over
    classes, uniform over each class's sizes, model-priced service). *)

val capacity : classes:job_class array -> zipf_s:float -> nodes:int -> float
(** Mean processing capacity of an [nodes]-node machine, jobs/s: the
    arrival rate at which offered load equals the whole machine. *)

val offered_load :
  classes:job_class array -> zipf_s:float -> rate:float -> nodes:int -> float
(** Fraction of the machine the stream asks for ([1.0] = at capacity). *)

val generate :
  rng:Icoe_util.Rng.t -> classes:job_class array -> ?zipf_s:float ->
  arrivals:arrivals -> horizon:float -> unit -> job list
(** Submission stream over [\[0, horizon\]] seconds, in arrival order.
    [zipf_s] (default 1.1) skews popularity toward the first classes of
    the catalog. Deterministic in the RNG seed. *)
