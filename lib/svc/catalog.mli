(** The default tenant catalog of the service simulation: the paper's
    workloads as job classes over a machine model, in popularity order
    (rank 1 first — the Zipf skew makes it dominate the stream).

    Class names are harness-registry ids; service times come from the
    {!Hwsim.Sched}/roofline cost models (overlap forced on, so pricing
    does not depend on the [ICOE_OVERLAP] environment). *)

val machine : ?nodes:int -> unit -> Hwsim.Node.machine
(** A Sierra partition of [nodes] Witherspoon nodes (default 256) on the
    dual-rail EDR fabric. *)

val default : Hwsim.Node.machine -> Workload.job_class array
(** Eight classes, most popular first: [opt] (design evaluations),
    [fig2] (LDA), [table2] (BFS), [md] (ddcMD), [cardioid], [hypre]
    (AMG), [kavg] (distributed training), [sw4] (earthquake campaign
    slices, the rare wide gangs). Sizes range from 1 to half the
    default machine. *)
