(* Multi-tenant job-stream generation: who asks the machine for what,
   and when. A job class names a harness-registry workload and knows how
   to price itself on an allocation; the generator draws a stream of
   submissions with Zipf-skewed class popularity, mixed allocation
   sizes, and Poisson or bursty (two-state Markov-modulated Poisson)
   arrivals. Everything is driven by one explicit RNG, so a seed fully
   determines the stream. *)

type job_class = {
  name : string;
  sizes : int array;
  service : nodes:int -> float;
}

type job = { id : int; arrival : float; klass : int; nodes : int }

type arrivals =
  | Poisson of float
  | Bursty of {
      rate_hi : float;
      rate_lo : float;
      mean_hi_s : float;
      mean_lo_s : float;
    }

let arrivals_name = function
  | Poisson rate -> Fmt.str "Poisson(%.4g jobs/s)" rate
  | Bursty { rate_hi; rate_lo; mean_hi_s; mean_lo_s } ->
      Fmt.str "Bursty(%.4g/%.4g jobs/s, dwell %.0f/%.0f s)" rate_hi rate_lo
        mean_hi_s mean_lo_s

let zipf ~s n =
  if n <= 0 then invalid_arg "Workload.zipf: n must be positive";
  Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** s))

(* Exact expectation of one job's node-seconds demand: Zipf over classes,
   uniform over each class's candidate sizes, service from the class's
   cost model. No sampling, so capacity is a closed-form anchor for the
   saturation sweep. *)
let mean_node_seconds ~classes ~zipf_s =
  let w = zipf ~s:zipf_s (Array.length classes) in
  let total_w = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.iteri
    (fun i c ->
      let per_class =
        Array.fold_left
          (fun a nodes -> a +. (float_of_int nodes *. c.service ~nodes))
          0.0 c.sizes
        /. float_of_int (Array.length c.sizes)
      in
      acc := !acc +. (w.(i) /. total_w *. per_class))
    classes;
  !acc

let capacity ~classes ~zipf_s ~nodes =
  float_of_int nodes /. mean_node_seconds ~classes ~zipf_s

let offered_load ~classes ~zipf_s ~rate ~nodes =
  rate *. mean_node_seconds ~classes ~zipf_s /. float_of_int nodes

let generate ~(rng : Icoe_util.Rng.t) ~classes ?(zipf_s = 1.1) ~arrivals
    ~horizon () =
  if Array.length classes = 0 then
    invalid_arg "Workload.generate: empty class catalog";
  let weights = zipf ~s:zipf_s (Array.length classes) in
  let draw id t =
    let klass = Icoe_util.Rng.categorical rng weights in
    let sizes = classes.(klass).sizes in
    let nodes = sizes.(Icoe_util.Rng.int rng (Array.length sizes)) in
    { id; arrival = t; klass; nodes }
  in
  match arrivals with
  | Poisson rate ->
      if rate <= 0.0 then invalid_arg "Workload.generate: rate must be positive";
      let rec go t id acc =
        let t = t +. Icoe_util.Rng.exponential rng ~rate in
        if t > horizon then List.rev acc else go t (id + 1) (draw id t :: acc)
      in
      go 0.0 0 []
  | Bursty { rate_hi; rate_lo; mean_hi_s; mean_lo_s } ->
      if rate_hi <= 0.0 || rate_lo < 0.0 then
        invalid_arg "Workload.generate: bursty rates must be sensible";
      if mean_hi_s <= 0.0 || mean_lo_s <= 0.0 then
        invalid_arg "Workload.generate: dwell times must be positive";
      (* two-state MMPP: exponential dwell in each state; the Poisson
         clock restarts at each switch (memoryless, so this is exact) *)
      let rec phase t id acc hi =
        if t > horizon then List.rev acc
        else
          let dwell_mean = if hi then mean_hi_s else mean_lo_s in
          let t_end =
            t +. Icoe_util.Rng.exponential rng ~rate:(1.0 /. dwell_mean)
          in
          let rate = if hi then rate_hi else rate_lo in
          let rec arrive t id acc =
            if rate <= 0.0 then (id, acc)
            else
              let t = t +. Icoe_util.Rng.exponential rng ~rate in
              if t > t_end || t > horizon then (id, acc)
              else arrive t (id + 1) (draw id t :: acc)
          in
          let id, acc = arrive t id acc in
          phase t_end id acc (not hi)
      in
      phase 0.0 0 [] true
