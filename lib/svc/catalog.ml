(* The default job-class catalog: the paper's workloads as tenants of
   the shared machine, in popularity order (the Zipf skew of the
   generator makes the first entries dominate the stream, the last ones
   the rare wide campaigns).

   Every service function prices the job's time-to-solution with the
   same Hwsim.Sched/roofline cost models the harnesses use — a job's
   duration is a consequence of its allocation, not a drawn random
   variable. Overlap is forced on (these are models of well-overlapped
   production codes), so pricing is independent of the ICOE_OVERLAP
   setting of the surrounding run. *)

let machine ?(nodes = 256) () =
  { Hwsim.Node.sierra with Hwsim.Node.nodes }

(* iterative kernels that strong-scale over the allocation: per-step
   device work split across [nodes * devs_per_node] devices, a per-step
   neighbor/allreduce exchange on the fabric overlapped against it. The
   exchange is priced at the topology level a contiguous gang of [nodes]
   crosses — on flat machines, exactly the old single-fabric transfer *)
let stepped name ~device ~devs_per_node ~topology ~steps ~flops ~bytes
    ~comm_bytes ~sizes =
  let nic = Hwsim.Topology.leaf_link topology in
  let service ~nodes =
    let shards = float_of_int (nodes * devs_per_node) in
    let kern =
      Hwsim.Kernel.make ~name ~flops:(flops /. shards) ~bytes:(bytes /. shards)
        ()
    in
    let compute =
      Hwsim.Roofline.time ~eff:Hwsim.Roofline.default_eff device kern
    in
    let per_step =
      if nodes = 1 then compute
      else
        let rounds = Float.ceil (Float.log2 (float_of_int nodes)) in
        let exchange =
          Hwsim.Topology.gang_transfer_time topology ~nodes
            ~placement:Hwsim.Topology.Contiguous ~bytes:(comm_bytes *. rounds)
        in
        let sched = Hwsim.Sched.create ~overlap:true () in
        let _c =
          Hwsim.Sched.work sched ~stream:"dev"
            ~device:device.Hwsim.Device.name ~phase:"compute" compute
        in
        let _x =
          Hwsim.Sched.work sched ~stream:"nic"
            ~device:nic.Hwsim.Link.name ~phase:"exchange" exchange
        in
        Hwsim.Sched.run sched
    in
    float_of_int steps *. per_step
  in
  { Workload.name; sizes; service }

let default (m : Hwsim.Node.machine) =
  let node = m.Hwsim.Node.node in
  let topology = m.Hwsim.Node.topology in
  let gpu =
    match node.Hwsim.Node.gpu with
    | Some g -> g
    | None -> node.Hwsim.Node.cpu
  in
  let gpus = max 1 node.Hwsim.Node.gpus in
  let cpus = max 1 node.Hwsim.Node.cpu_sockets in
  let sw4 =
    {
      Workload.name = "sw4";
      sizes = [| 32; 64; 128 |];
      service =
        (fun ~nodes ->
          (* a production earthquake campaign slice: the Sec 4.9 step
             model (halo under interior compute) at a 3.2B-point box *)
          let step =
            Sw4.Scenario.production_step_model ~overlap:true m ~nodes
              ~grid_points:3.2e9
          in
          2000.0 *. step.Sw4.Scenario.step_s);
    }
  in
  let md =
    {
      Workload.name = "md";
      sizes = [| 2; 4; 8 |];
      service =
        (fun ~nodes ->
          (* ddcMD's 46-launch step pipeline on each node's 4 GPUs, the
             domain-decomposition halo on the fabric under it *)
          let step =
            Ddcmd.Perf.ddcmd_step_model ~overlap:true
              ~particles:(2_000_000 / nodes) Ddcmd.Perf.Four_gpu
          in
          let halo =
            Hwsim.Topology.gang_transfer_time topology ~nodes
              ~placement:Hwsim.Topology.Contiguous ~bytes:4.0e6
          in
          let sched = Hwsim.Sched.create ~overlap:true () in
          let _k =
            Hwsim.Sched.work sched ~stream:"gpu" ~phase:"md-step"
              step.Ddcmd.Perf.step_s
          in
          let _h = Hwsim.Sched.work sched ~stream:"nic" ~phase:"halo" halo in
          30_000.0 *. Hwsim.Sched.run sched);
    }
  in
  let kavg =
    {
      Workload.name = "kavg";
      sizes = [| 8; 16; 32 |];
      service =
        (fun ~nodes ->
          (* distributed training: K-step averaging rounds with the
             per-layer allreduce hidden under backprop *)
          let round =
            Dlearn.Distributed.kavg_round_model ~overlap:true ~topology
              ~learners:(nodes * gpus) ~k:8 ~batch:32
              [| 256; 512; 128; 16 |]
          in
          200_000.0 *. round.Dlearn.Distributed.round_s);
    }
  in
  [|
    (* rank 1: the Opt design-evaluation stream — many small jobs *)
    stepped "opt" ~device:gpu ~devs_per_node:gpus ~topology ~steps:400
      ~flops:2.0e12 ~bytes:1.6e12 ~comm_bytes:4.0e4 ~sizes:[| 1; 2 |];
    (* rank 2: SparkPlug LDA on the CPU sockets, shuffle on the fabric *)
    stepped "fig2" ~device:node.Hwsim.Node.cpu ~devs_per_node:cpus ~topology
      ~steps:40 ~flops:2.0e13 ~bytes:1.5e13 ~comm_bytes:2.0e8
      ~sizes:[| 1; 2; 4 |];
    (* rank 3: HavoqGT BFS sweeps — bandwidth-bound, exchange-heavy *)
    stepped "table2" ~device:gpu ~devs_per_node:gpus ~topology ~steps:64
      ~flops:1.0e12 ~bytes:6.0e13 ~comm_bytes:5.0e8 ~sizes:[| 4; 8; 16 |];
    md;
    (* rank 5: Cardioid heartbeat simulation — GPU reaction steps *)
    stepped "cardioid" ~device:gpu ~devs_per_node:gpus ~topology ~steps:50_000
      ~flops:6.0e11 ~bytes:4.0e10 ~comm_bytes:1.0e6 ~sizes:[| 2; 4; 8 |];
    (* rank 6: hypre AMG solves — bandwidth-bound V-cycles with
       latency-dominated coarse-grid allreduces *)
    stepped "hypre" ~device:gpu ~devs_per_node:gpus ~topology ~steps:800
      ~flops:2.0e12 ~bytes:4.0e12 ~comm_bytes:1.0e5 ~sizes:[| 4; 8; 16; 32 |];
    kavg;
    sw4;
  |]
