(** Cluster-level batch scheduling of the job stream: the Sec 4.7
    policies generalized from a 16-GPU pool to node allocations on a
    machine model, plus a partition/gang policy.

    Allocation is gang-style: a job holds all its nodes from dispatch to
    completion. Service times are not pre-drawn — each dispatch is
    priced by the job class's {!Hwsim.Sched}/roofline cost model at the
    requested allocation size (memoized; the models are pure), so the
    scheduler's "runtime estimates" are exact by construction. *)

type policy =
  | Fcfs  (** strict submission order; wide gangs block the head *)
  | Easy_backfill
      (** later jobs jump ahead only if they finish by the blocked
          head's shadow time or fit the capacity still spare then *)
  | Sjf_quota of float
      (** shortest (model-priced) service first; while short jobs wait,
          long jobs hold at most this fraction of the machine *)
  | Partition of float
      (** this fraction of the machine is reserved for wide jobs
          (>= 1/8 of the machine); each side runs FCFS independently *)

val policy_name : policy -> string

type job_record = {
  job : Workload.job;
  dispatched : float;
  finished : float;
  placed : int list;  (** concrete node ids held, lowest-first placement *)
}

type metrics = {
  policy : string;
  nodes : int;
  submitted : int;  (** including jobs too wide for the machine *)
  completed : int;
  makespan : float;
  utilization : float;  (** busy node-seconds / (nodes * makespan) *)
  jobs_per_s : float;  (** sustained: completed / makespan *)
  mean_wait : float;
  max_wait : float;
  wait_p50 : float;
  wait_p90 : float;
  wait_p99 : float;
  turn_p50 : float;
  turn_p90 : float;
  turn_p99 : float;
  waits : float array;  (** per started job, in start order *)
  turnarounds : float array;  (** per completed job, in finish order *)
  log : job_record list;  (** completed jobs, in finish order *)
  samples : (float * int * int) list;
      (** (time, queue depth, free nodes) at every event time, in
          chronological order *)
}

val simulate :
  ?check:bool -> ?topology:Hwsim.Topology.t -> ?comm_fraction:float ->
  nodes:int -> classes:Workload.job_class array -> policy ->
  Workload.job list -> metrics
(** Event-driven simulation of the stream on an [nodes]-node machine.
    With [check] (default false) every EASY-backfill decision re-derives
    the head's shadow with the candidate running and raises
    [Invalid_argument] if the reservation would move. Deterministic:
    equal inputs give equal metrics (no wall clock, no hidden state).

    With a [topology], dispatch is placement-aware: the concrete node
    ids a gang receives are mapped to the switch level they span
    ({!Hwsim.Topology.crossing_of_ids}); a fragmented gang whose span
    exceeds the contiguous-best level has the communication share
    ([comm_fraction], default 0.2) of its service time stretched by the
    {!Hwsim.Topology.placement_penalty} path-cost ratio. Omitting
    [topology] leaves every service time exactly as priced.

    When the {!Icoe_obs.Events} flight recorder is enabled, the
    simulation emits ["job"] lifecycle events (submit/dispatch/finish)
    and ["queue"] depth/free-node samples, sourced ["svc/<policy>"]. *)

val occupancy_chrome_json : metrics -> string
(** Chrome trace-event export of the cluster occupancy: one process per
    node (jobs as complete spans on the nodes they held, lowest-first
    placement) plus a scheduler process carrying queue-depth and
    free-node counter tracks. Loadable in [chrome://tracing] /
    Perfetto; timestamps are simulated microseconds. *)
