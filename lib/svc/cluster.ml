(* The cluster-level scheduler of the service simulation: the policies
   of Opt.Scheduler (Sec 4.7) generalized from a 16-GPU pool to node
   allocations on a machine model, plus a partition/gang policy. Service
   times are not pre-drawn: each dispatched job is priced by its class's
   Hwsim.Sched/roofline cost model at the requested allocation size
   (memoized per (class, nodes) — the models are pure). *)

type policy =
  | Fcfs
  | Easy_backfill
  | Sjf_quota of float
  | Partition of float

let policy_name = function
  | Fcfs -> "FCFS"
  | Easy_backfill -> "EASY-backfill"
  | Sjf_quota q -> Fmt.str "SJF+quota(%.0f%%)" (q *. 100.0)
  | Partition f -> Fmt.str "partition(%.0f%% wide)" (f *. 100.0)

type job_record = {
  job : Workload.job;
  dispatched : float;
  finished : float;
  placed : int list;
}

type metrics = {
  policy : string;
  nodes : int;
  submitted : int;
  completed : int;
  makespan : float;
  utilization : float;
  jobs_per_s : float;
  mean_wait : float;
  max_wait : float;
  wait_p50 : float;
  wait_p90 : float;
  wait_p99 : float;
  turn_p50 : float;
  turn_p90 : float;
  turn_p99 : float;
  waits : float array;
  turnarounds : float array;
  log : job_record list;
  samples : (float * int * int) list;
}

(* jobs wider than [nodes] can never be placed; filter them out up front
   so the event loop terminates, and report them as not completed *)
let placeable nodes (j : Workload.job) = j.nodes <= nodes

let simulate ?(check = false) ?topology ?(comm_fraction = 0.2) ~nodes
    ~(classes : Workload.job_class array) policy jobs =
  let submitted = List.length jobs in
  let jobs = List.filter (placeable nodes) jobs in
  let price =
    let memo = Hashtbl.create 64 in
    fun (j : Workload.job) ->
      match Hashtbl.find_opt memo (j.Workload.klass, j.Workload.nodes) with
      | Some s -> s
      | None ->
          let s = classes.(j.Workload.klass).Workload.service ~nodes:j.Workload.nodes in
          if not (Float.is_finite s) || s <= 0.0 then
            invalid_arg
              (Fmt.str "Cluster.simulate: class %s priced %.17g s at %d nodes"
                 classes.(j.Workload.klass).Workload.name s j.Workload.nodes);
          Hashtbl.add memo (j.Workload.klass, j.Workload.nodes) s;
          s
  in
  (* service-time median over the submitted stream splits short from
     long for the quota policy (the scheduler has exact estimates: the
     cost model is the runtime) *)
  let median_service =
    match jobs with
    | [] -> 1.0
    | _ -> Icoe_util.Stats.median (Array.of_list (List.map price jobs))
  in
  let is_long j = price j > median_service in
  (* partition policy geometry: jobs at or above an eighth of the
     machine are "wide" and run in a reserved side of the pool; each
     side is FCFS over its own queue *)
  let wide_cut = max 2 (nodes / 8) in
  let is_wide (j : Workload.job) = j.Workload.nodes >= wide_cut in
  let queue = ref [] in
  let pending =
    ref
      (List.sort
         (fun (a : Workload.job) b -> Float.compare a.Workload.arrival b.Workload.arrival)
         jobs)
  in
  let running = ref [] in
  let free = ref nodes in
  let t = ref 0.0 in
  (* lifecycle bookkeeping: concrete node ids (lowest-first placement)
     so the occupancy export can draw jobs onto stable per-node rows,
     plus queue-depth/free-node samples at every event time *)
  let source = "svc/" ^ policy_name policy in
  let free_ids = ref (List.init nodes Fun.id) in
  let live : (int, float * int list) Hashtbl.t = Hashtbl.create 64 in
  let log = ref [] in
  let samples = ref [] in
  let emit_job ev ~t_s (j : Workload.job) fields =
    if Icoe_obs.Events.enabled () then
      Icoe_obs.Events.(
        emit ~t_s ~kind:"job" ~source
          ([
             ("ev", S ev);
             ("job", I j.Workload.id);
             ("class", S classes.(j.Workload.klass).Workload.name);
             ("nodes", I j.Workload.nodes);
           ]
          @ fields))
  in
  let sample () =
    let depth = List.length !queue in
    samples := (!t, depth, !free) :: !samples;
    if Icoe_obs.Events.enabled () then
      Icoe_obs.Events.(
        emit ~t_s:!t ~kind:"queue" ~source
          [ ("depth", I depth); ("free_nodes", I !free) ])
  in
  let busy_area = ref 0.0 in
  let waits = ref [] in
  let turnarounds = ref [] in
  let completed = ref 0 in
  let long_in_use () =
    List.fold_left
      (fun a (_, j) -> if is_long j then a + j.Workload.nodes else a)
      0 !running
  in
  let wide_in_use () =
    List.fold_left
      (fun a (_, j) -> if is_wide j then a + j.Workload.nodes else a)
      0 !running
  in
  let shadow_scan ~free ~need running =
    let finishes = List.sort_uniq Float.compare (List.map fst running) in
    let rec walk free = function
      | _ when free >= need -> (!t, free)
      | [] -> (infinity, free)
      | f :: tl ->
          let freed =
            List.fold_left
              (fun a (f', j) ->
                if Float.equal f' f then a + j.Workload.nodes else a)
              0 running
          in
          if free + freed >= need then (f, free + freed) else walk (free + freed) tl
    in
    walk free finishes
  in
  let pick () =
    let shorts_waiting () = List.exists (fun j -> not (is_long j)) !queue in
    let quota_fits q (j : Workload.job) =
      j.Workload.nodes <= !free
      && ((not (is_long j))
         || (not (shorts_waiting ()))
         || long_in_use () = 0
         || float_of_int (long_in_use () + j.Workload.nodes)
            <= q *. float_of_int nodes)
    in
    match policy with
    | Fcfs -> (
        match !queue with
        | j :: rest when j.Workload.nodes <= !free ->
            queue := rest;
            Some j
        | _ -> None)
    | Easy_backfill -> (
        match !queue with
        | j :: rest when j.Workload.nodes <= !free ->
            queue := rest;
            Some j
        | head :: rest -> (
            let shadow_t, free_at_shadow =
              shadow_scan ~free:!free ~need:head.Workload.nodes !running
            in
            let spare = free_at_shadow - head.Workload.nodes in
            let candidate =
              List.find_opt
                (fun (j : Workload.job) ->
                  j.Workload.nodes <= !free
                  && (!t +. price j <= shadow_t || j.Workload.nodes <= spare))
                rest
            in
            match candidate with
            | Some j ->
                (if check then
                   let running' = (!t +. price j, j) :: !running in
                   let shadow_t', _ =
                     shadow_scan
                       ~free:(!free - j.Workload.nodes)
                       ~need:head.Workload.nodes running'
                   in
                   if shadow_t' > shadow_t +. 1e-9 then
                     invalid_arg
                       (Fmt.str
                          "Cluster: backfilled job %d delays the head %d \
                           (shadow %.6f -> %.6f)"
                          j.Workload.id head.Workload.id shadow_t shadow_t'));
                queue :=
                  List.filter (fun (x : Workload.job) -> x.Workload.id <> j.Workload.id) !queue;
                Some j
            | None -> None)
        | [] -> None)
    | Sjf_quota q -> (
        let sorted =
          List.sort (fun a b -> Float.compare (price a) (price b)) !queue
        in
        match List.find_opt (quota_fits q) sorted with
        | None -> None
        | Some j ->
            queue :=
              List.filter (fun (x : Workload.job) -> x.Workload.id <> j.Workload.id) !queue;
            Some j)
    | Partition wide_frac ->
        (* the wide side owns [wide_frac] of the machine; small jobs own
           the rest. Each side is FCFS over its own sub-queue, so a
           draining wide gang never blocks the stream of small jobs *)
        let wide_nodes = int_of_float (wide_frac *. float_of_int nodes) in
        let small_nodes = nodes - wide_nodes in
        let fits_partition j =
          let small_in_use = nodes - !free - wide_in_use () in
          j.Workload.nodes <= !free
          &&
          if is_wide j then wide_in_use () + j.Workload.nodes <= wide_nodes
          else small_in_use + j.Workload.nodes <= small_nodes
        in
        let rec first_fit seen = function
          | [] -> None
          | j :: rest ->
              (* FCFS within each side: skip a job only if the *other*
                 side's head is ahead of it *)
              let side_blocked =
                List.exists (fun s -> is_wide s = is_wide j) seen
              in
              if (not side_blocked) && fits_partition j then begin
                queue :=
                  List.filter (fun (x : Workload.job) -> x.Workload.id <> j.Workload.id) !queue;
                Some j
              end
              else first_fit (j :: seen) rest
        in
        first_fit [] !queue
  in
  let start_jobs () =
    let continue = ref true in
    while !continue do
      match pick () with
      | None -> continue := false
      | Some j ->
          let s = price j in
          free := !free - j.Workload.nodes;
          let rec take n acc rest =
            if n = 0 then (List.rev acc, rest)
            else
              match rest with
              | x :: tl -> take (n - 1) (x :: acc) tl
              | [] -> (List.rev acc, [])
          in
          let placed, rest_ids = take j.Workload.nodes [] !free_ids in
          free_ids := rest_ids;
          (* placement-aware pricing: a fragmented gang's communication
             climbs higher switch levels than the contiguous-best one,
             stretching the comm share of its service time. Without a
             topology the model-priced [s] is charged unchanged. *)
          let s =
            match topology with
            | None -> s
            | Some topo ->
                let pen =
                  Hwsim.Topology.placement_penalty topo ~nodes:j.Workload.nodes
                    ~level:(Hwsim.Topology.crossing_of_ids topo placed)
                in
                if pen = 1.0 then s
                else s *. (1.0 +. (comm_fraction *. (pen -. 1.0)))
          in
          Hashtbl.replace live j.Workload.id (!t, placed);
          emit_job "dispatch" ~t_s:!t j
            [ ("wait_s", F (!t -. j.Workload.arrival)); ("service_s", F s) ];
          waits := (!t -. j.Workload.arrival) :: !waits;
          busy_area := !busy_area +. (float_of_int j.Workload.nodes *. s);
          running := (!t +. s, j) :: !running
    done
  in
  let next_event () =
    let arrival =
      match !pending with j :: _ -> Some j.Workload.arrival | [] -> None
    in
    let finish =
      match !running with
      | [] -> None
      | l -> Some (List.fold_left (fun a (f, _) -> min a f) infinity l)
    in
    match (arrival, finish) with
    | None, None -> None
    | Some a, None -> Some a
    | None, Some f -> Some f
    | Some a, Some f -> Some (min a f)
  in
  let rec loop () =
    match next_event () with
    | None -> ()
    | Some te ->
        t := te;
        let done_, still =
          List.partition (fun (f, _) -> f <= !t +. 1e-12) !running
        in
        running := still;
        List.iter
          (fun (_, j) ->
            free := !free + j.Workload.nodes;
            let dispatched, placed =
              Option.value
                (Hashtbl.find_opt live j.Workload.id)
                ~default:(0.0, [])
            in
            Hashtbl.remove live j.Workload.id;
            free_ids := List.merge Int.compare placed !free_ids;
            log := { job = j; dispatched; finished = !t; placed } :: !log;
            emit_job "finish" ~t_s:!t j
              [ ("turnaround_s", F (!t -. j.Workload.arrival)) ];
            turnarounds := (!t -. j.Workload.arrival) :: !turnarounds;
            incr completed)
          done_;
        let arrived, later =
          List.partition (fun j -> j.Workload.arrival <= !t +. 1e-12) !pending
        in
        pending := later;
        List.iter
          (fun (j : Workload.job) ->
            emit_job "submit" ~t_s:j.Workload.arrival j [])
          arrived;
        queue := !queue @ arrived;
        start_jobs ();
        sample ();
        loop ()
  in
  start_jobs ();
  sample ();
  loop ();
  let waits = Array.of_list (List.rev !waits) in
  let turnarounds = Array.of_list (List.rev !turnarounds) in
  let sorted_w = Icoe_util.Stats.presort waits in
  let sorted_tt = Icoe_util.Stats.presort turnarounds in
  let pct a p =
    if Array.length a = 0 then 0.0 else Icoe_util.Stats.percentile_sorted a p
  in
  {
    policy = policy_name policy;
    nodes;
    submitted;
    completed = !completed;
    makespan = !t;
    utilization = !busy_area /. (float_of_int nodes *. max 1e-9 !t);
    jobs_per_s = float_of_int !completed /. max 1e-9 !t;
    mean_wait =
      (if Array.length waits = 0 then 0.0 else Icoe_util.Stats.mean waits);
    max_wait =
      (if Array.length waits = 0 then 0.0
       else snd (Icoe_util.Stats.min_max waits));
    wait_p50 = pct sorted_w 0.5;
    wait_p90 = pct sorted_w 0.9;
    wait_p99 = pct sorted_w 0.99;
    turn_p50 = pct sorted_tt 0.5;
    turn_p90 = pct sorted_tt 0.9;
    turn_p99 = pct sorted_tt 0.99;
    waits;
    turnarounds;
    log = List.rev !log;
    samples = List.rev !samples;
  }

(* --- cluster-occupancy Chrome trace: nodes as pids, jobs as spans --- *)

let occupancy_chrome_json (m : metrics) =
  let esc = Hwsim.Trace.json_escape in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  let first = ref true in
  let push line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  (* name each node process once, in id order *)
  let named = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun node ->
          if not (Hashtbl.mem named node) then Hashtbl.add named node ())
        r.placed)
    m.log;
  let nodes_used = List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) named []) in
  List.iter
    (fun node ->
      push
        (Fmt.str
           "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \
            \"args\": {\"name\": \"node%03d\"}}"
           node node))
    nodes_used;
  push
    (Fmt.str
       "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"args\": \
        {\"name\": \"scheduler (%s)\"}}"
       m.nodes (esc m.policy));
  (* one complete-span per (job, node) row *)
  List.iter
    (fun r ->
      let name =
        Fmt.str "job %d (%dn)" r.job.Workload.id r.job.Workload.nodes
      in
      let ts = r.dispatched *. 1e6
      and dur = Float.max 0.0 (r.finished -. r.dispatched) *. 1e6 in
      List.iter
        (fun node ->
          push
            (Fmt.str
               "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": 0, \
                \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"wait_s\": %.6g}}"
               (esc name) node ts dur
               (r.dispatched -. r.job.Workload.arrival)))
        r.placed)
    m.log;
  (* queue-depth / free-node counter tracks on the scheduler process *)
  List.iter
    (fun (t, depth, fr) ->
      push
        (Fmt.str
           "{\"name\": \"queue depth\", \"ph\": \"C\", \"pid\": %d, \"ts\": \
            %.3f, \"args\": {\"jobs\": %d}}"
           m.nodes (t *. 1e6) depth);
      push
        (Fmt.str
           "{\"name\": \"free nodes\", \"ph\": \"C\", \"pid\": %d, \"ts\": \
            %.3f, \"args\": {\"nodes\": %d}}"
           m.nodes (t *. 1e6) fr))
    m.samples;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
