(** A real Umpire-style scratch-buffer arena for the zero-alloc kernels.

    {!Pool} is the {e simulated} cost model (it charges a clock);
    [Scratch] is its concrete counterpart: named {!Icoe_util.Fbuf}
    buffers cached by key, handed back on every steady-state
    acquisition, re-created only when the requested length changes.
    Kernels acquire all their scratch through an arena so iterating a
    converged problem size allocates nothing — the Umpire discipline
    SAMRAI's GPU port applies to device buffers (Sec 4.10.5), applied to
    our own hot loops.

    Accounting mirrors the Umpire split: a {e raw} allocation is
    recorded when a key is first seen or changes length (high-water
    growth); a {e pooled} allocation when a cached buffer is reused.
    {!charge_model} folds the tallies into a simulated {!Pool} so the
    memory-space layer sees the same traffic pattern.

    {b Not thread-safe.} Acquire buffers before entering a pooled
    region ({!Icoe_par.Pool} chunk bodies must not call {!get}); size
    per-chunk slots with [Icoe_par.Pool.num_chunks] up front. *)

type t

val create : ?space:Space.space -> string -> t
(** An empty arena. [?space] (default [Host_mem]) is the placement tag
    the buffers are accounted under. *)

val get : t -> string -> int -> Icoe_util.Fbuf.t
(** [get t key n] returns the buffer cached under [key], creating (or
    re-creating, if the cached length differs from [n]) it on demand.
    Contents are {b stale} on reuse — zero-filled only when freshly
    created; callers that read before writing want {!get_zeroed}.
    Steady-state calls (same key, same length) allocate nothing. *)

val get_zeroed : t -> string -> int -> Icoe_util.Fbuf.t
(** {!get}, then fill with [0.0] — still allocation-free on reuse. *)

val raw_allocs : t -> int
val pooled_allocs : t -> int
val high_water_bytes : t -> int

val charge_model : t -> Pool.t -> unit
(** Fold this arena's raw/pooled tallies and high-water mark into a
    simulated {!Pool} (no clock charge — scratch acquisition happens
    outside any simulated timeline). *)

val pp : Format.formatter -> t -> unit
