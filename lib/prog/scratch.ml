(* Umpire-style scratch-buffer arena. See scratch.mli. *)

module Fbuf = Icoe_util.Fbuf

type t = {
  name : string;
  space : Space.space;
  tbl : (string, Fbuf.t) Hashtbl.t;
  mutable raw_allocs : int;
  mutable pooled_allocs : int;
  mutable high_water_bytes : int;
}

let create ?(space = Space.Host_mem) name =
  {
    name;
    space;
    tbl = Hashtbl.create 16;
    raw_allocs = 0;
    pooled_allocs = 0;
    high_water_bytes = 0;
  }

let bytes_in_use t =
  Hashtbl.fold (fun _ b acc -> acc + (8 * Fbuf.length b)) t.tbl 0

let grow t key n =
  let b = Fbuf.create n in
  Hashtbl.replace t.tbl key b;
  t.raw_allocs <- t.raw_allocs + 1;
  t.high_water_bytes <- max t.high_water_bytes (bytes_in_use t);
  b

let get t key n =
  match Hashtbl.find t.tbl key with
  | b when Fbuf.length b = n ->
      t.pooled_allocs <- t.pooled_allocs + 1;
      b
  | _ -> grow t key n
  | exception Not_found -> grow t key n

let get_zeroed t key n =
  let b = get t key n in
  Fbuf.fill b 0.0;
  b

let raw_allocs t = t.raw_allocs
let pooled_allocs t = t.pooled_allocs
let high_water_bytes t = t.high_water_bytes

(* Mirror the arena's traffic into the simulated cost model: the same
   raw-on-growth / pooled-on-reuse split Pool.alloc charges, minus the
   clock (scratch acquisition happens outside any simulated timeline). *)
let charge_model t (pool : Pool.t) =
  pool.Pool.raw_allocs <- pool.Pool.raw_allocs + t.raw_allocs;
  pool.Pool.pooled_allocs <- pool.Pool.pooled_allocs + t.pooled_allocs;
  pool.Pool.high_water_bytes <-
    max pool.Pool.high_water_bytes (float_of_int t.high_water_bytes)

let pp ppf t =
  Fmt.pf ppf "scratch %s [%s]: %d raw, %d pooled, hwm %.3g MB" t.name
    (Space.space_name t.space) t.raw_allocs t.pooled_allocs
    (float_of_int t.high_water_bytes /. 1e6)
