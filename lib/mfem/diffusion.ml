(** Diffusion operator K u = -div(kappa grad u) (weak form) on a 2D
    tensor-product mesh, in two representations:

    - [assemble]: classical full assembly into CSR (the "wrong algorithm
      for GPUs" the MFEM team started from);
    - [Pa]: matrix-free partial assembly with sum factorization — only the
      per-quadrature-point geometric factors are stored, and the operator
      action contracts the 1D basis tables, O(p^3) work per element in 2D
      instead of O(p^4) matrix nonzeros.

    Both paths produce identical results (tested); they differ in the
    flop/byte/storage profile the hardware model prices, which is the
    substance of the paper's Fig 8 / Table 4. *)

type coefficient = x:float -> y:float -> float

let unit_coefficient ~x:_ ~y:_ = 1.0

(* quadrature-point geometric factors for one element: diagonal D because
   the mesh is Cartesian *)
let qfactors mesh (basis : Basis.t) ~(kappa : coefficient) ~ex ~ey =
  let nq = Basis.nq basis in
  let hx = Mesh.hx mesh and hy = Mesh.hy mesh in
  let detj = hx *. hy /. 4.0 in
  let d00 = Array.make (nq * nq) 0.0 and d11 = Array.make (nq * nq) 0.0 in
  let x0 = float_of_int ex *. hx and y0 = float_of_int ey *. hy in
  for q2 = 0 to nq - 1 do
    for q1 = 0 to nq - 1 do
      let x = x0 +. ((basis.Basis.qpts.(q1) +. 1.0) /. 2.0 *. hx) in
      let y = y0 +. ((basis.Basis.qpts.(q2) +. 1.0) /. 2.0 *. hy) in
      let w = basis.Basis.qwts.(q1) *. basis.Basis.qwts.(q2) *. detj in
      let k = kappa ~x ~y in
      d00.((q2 * nq) + q1) <- w *. k *. (4.0 /. (hx *. hx));
      d11.((q2 * nq) + q1) <- w *. k *. (4.0 /. (hy *. hy))
    done
  done;
  (d00, d11)

(* --- full assembly --- *)

(** Assemble the global CSR matrix (no boundary conditions applied). *)
let assemble ?(kappa = unit_coefficient) mesh (basis : Basis.t) =
  let nq = Basis.nq basis in
  let b = basis.Basis.b and g = basis.Basis.g in
  let triplets = ref [] in
  for ey = 0 to mesh.Mesh.ny - 1 do
    for ex = 0 to mesh.Mesh.nx - 1 do
      let d00, d11 = qfactors mesh basis ~kappa ~ex ~ey in
      (* element matrix over (i1,j1) x (i2,j2) local tensor indices *)
      for j1 = 0 to basis.Basis.p do
        for i1 = 0 to basis.Basis.p do
          let r = Mesh.global_dof mesh ~ex ~ey ~i:i1 ~j:j1 in
          for j2 = 0 to basis.Basis.p do
            for i2 = 0 to basis.Basis.p do
              let c = Mesh.global_dof mesh ~ex ~ey ~i:i2 ~j:j2 in
              let acc = ref 0.0 in
              for q2 = 0 to nq - 1 do
                for q1 = 0 to nq - 1 do
                  let qq = (q2 * nq) + q1 in
                  acc :=
                    !acc
                    +. (d00.(qq) *. g.(q1).(i1) *. b.(q2).(j1) *. g.(q1).(i2)
                       *. b.(q2).(j2))
                    +. (d11.(qq) *. b.(q1).(i1) *. g.(q2).(j1) *. b.(q1).(i2)
                       *. g.(q2).(j2))
                done
              done;
              if !acc <> 0.0 then triplets := (r, c, !acc) :: !triplets
            done
          done
        done
      done
    done
  done;
  Linalg.Csr.of_triplets ~m:(Mesh.num_dofs mesh) ~n:(Mesh.num_dofs mesh) !triplets

(** Impose homogeneous Dirichlet rows/columns: zero them and put 1 on the
    diagonal for each boundary dof. *)
let eliminate_dirichlet (a : Linalg.Csr.t) bdofs =
  let isb = Array.make a.Linalg.Csr.m false in
  List.iter (fun g -> isb.(g) <- true) bdofs;
  let triplets = ref [] in
  for i = 0 to a.Linalg.Csr.m - 1 do
    if isb.(i) then triplets := (i, i, 1.0) :: !triplets
    else
      for k = a.Linalg.Csr.row_ptr.(i) to a.Linalg.Csr.row_ptr.(i + 1) - 1 do
        let j = a.Linalg.Csr.col_idx.(k) in
        if not isb.(j) then
          triplets := (i, j, Icoe_util.Fbuf.get a.Linalg.Csr.values k) :: !triplets
      done
  done;
  Linalg.Csr.of_triplets ~m:a.Linalg.Csr.m ~n:a.Linalg.Csr.n !triplets

(* --- partial assembly --- *)

module Pa = struct
  type t = {
    mesh : Mesh.t;
    basis : Basis.t;
    d00 : float array array;  (** per element, nq^2 factors *)
    d11 : float array array;
    (* workspaces reused across applies *)
    u_loc : float array;
    y_loc : float array;
    tmp : float array;
    gx : float array;
    gy : float array;
  }

  let setup ?(kappa = unit_coefficient) mesh (basis : Basis.t) =
    let ne = Mesh.num_elements mesh in
    let nq = Basis.nq basis in
    let p1 = basis.Basis.p + 1 in
    let d00 = Array.make ne [||] and d11 = Array.make ne [||] in
    for ey = 0 to mesh.Mesh.ny - 1 do
      for ex = 0 to mesh.Mesh.nx - 1 do
        let e = (ey * mesh.Mesh.nx) + ex in
        let a, b = qfactors mesh basis ~kappa ~ex ~ey in
        d00.(e) <- a;
        d11.(e) <- b
      done
    done;
    {
      mesh;
      basis;
      d00;
      d11;
      u_loc = Array.make (p1 * p1) 0.0;
      y_loc = Array.make (p1 * p1) 0.0;
      tmp = Array.make (max (nq * p1) (nq * nq)) 0.0;
      gx = Array.make (nq * nq) 0.0;
      gy = Array.make (nq * nq) 0.0;
    }

  (* contraction: out[q2*no+q1] = sum_{i1,i2} a1[q1][i1] a2[q2][i2]
     src[i2*ni+i1], done as two 1D contractions through t.tmp *)
  let contract_forward t a1 a2 src out =
    let p1 = t.basis.Basis.p + 1 in
    let nq = Basis.nq t.basis in
    (* tmp[i2*nq+q1] = sum_i1 a1[q1][i1] src[i2*p1+i1] *)
    for i2 = 0 to p1 - 1 do
      for q1 = 0 to nq - 1 do
        let s = ref 0.0 in
        for i1 = 0 to p1 - 1 do
          s := !s +. (a1.(q1).(i1) *. src.((i2 * p1) + i1))
        done;
        t.tmp.((i2 * nq) + q1) <- !s
      done
    done;
    for q2 = 0 to nq - 1 do
      for q1 = 0 to nq - 1 do
        let s = ref 0.0 in
        for i2 = 0 to p1 - 1 do
          s := !s +. (a2.(q2).(i2) *. t.tmp.((i2 * nq) + q1))
        done;
        out.((q2 * nq) + q1) <- !s
      done
    done

  (* transpose contraction: out[j2*p1+j1] += sum_{q1,q2} a1[q1][j1]
     a2[q2][j2] src[q2*nq+q1] *)
  let contract_backward t a1 a2 src out =
    let p1 = t.basis.Basis.p + 1 in
    let nq = Basis.nq t.basis in
    (* tmp[q2*p1+j1] = sum_q1 a1[q1][j1] src[q2*nq+q1] *)
    for q2 = 0 to nq - 1 do
      for j1 = 0 to p1 - 1 do
        let s = ref 0.0 in
        for q1 = 0 to nq - 1 do
          s := !s +. (a1.(q1).(j1) *. src.((q2 * nq) + q1))
        done;
        t.tmp.((q2 * p1) + j1) <- !s
      done
    done;
    for j2 = 0 to p1 - 1 do
      for j1 = 0 to p1 - 1 do
        let s = ref 0.0 in
        for q2 = 0 to nq - 1 do
          s := !s +. (a2.(q2).(j2) *. t.tmp.((q2 * p1) + j1))
        done;
        out.((j2 * p1) + j1) <- out.((j2 * p1) + j1) +. !s
      done
    done

  (** y <- K u, matrix-free. *)
  let apply t u y =
    let mesh = t.mesh and basis = t.basis in
    let nq = Basis.nq basis in
    Array.fill y 0 (Array.length y) 0.0;
    for ey = 0 to mesh.Mesh.ny - 1 do
      for ex = 0 to mesh.Mesh.nx - 1 do
        let e = (ey * mesh.Mesh.nx) + ex in
        Mesh.gather mesh u ~ex ~ey t.u_loc;
        (* gradients at quadrature points *)
        contract_forward t basis.Basis.g basis.Basis.b t.u_loc t.gx;
        contract_forward t basis.Basis.b basis.Basis.g t.u_loc t.gy;
        (* scale by geometric factors *)
        let d00 = t.d00.(e) and d11 = t.d11.(e) in
        for qq = 0 to (nq * nq) - 1 do
          t.gx.(qq) <- t.gx.(qq) *. d00.(qq);
          t.gy.(qq) <- t.gy.(qq) *. d11.(qq)
        done;
        (* transpose contractions back to dofs *)
        Array.fill t.y_loc 0 (Array.length t.y_loc) 0.0;
        contract_backward t basis.Basis.g basis.Basis.b t.gx t.y_loc;
        contract_backward t basis.Basis.b basis.Basis.g t.gy t.y_loc;
        Mesh.scatter_add mesh t.y_loc ~ex ~ey y
      done
    done

  (** Apply with homogeneous-Dirichlet constrained dofs: constrained rows
      return the input value (identity on the boundary subspace). *)
  let apply_constrained t ~bdof u y =
    apply t u y;
    Array.iteri (fun g isb -> if isb then y.(g) <- u.(g)) bdof

  (** Recompute the geometric factors for a solution-dependent coefficient
      kappa(u): u is interpolated to the quadrature points with the same
      sum-factorized contractions. This is the "formulation" work of each
      nonlinear (re)build in the Fig 8 breakdown. *)
  let update_coefficients t ~(kappa_of_u : float -> float) ~u =
    let mesh = t.mesh and basis = t.basis in
    let nq = Basis.nq basis in
    let hx = Mesh.hx mesh and hy = Mesh.hy mesh in
    let detj = hx *. hy /. 4.0 in
    for ey = 0 to mesh.Mesh.ny - 1 do
      for ex = 0 to mesh.Mesh.nx - 1 do
        let e = (ey * mesh.Mesh.nx) + ex in
        Mesh.gather mesh u ~ex ~ey t.u_loc;
        (* u at quadrature points into gx workspace *)
        contract_forward t basis.Basis.b basis.Basis.b t.u_loc t.gx;
        let d00 = t.d00.(e) and d11 = t.d11.(e) in
        for q2 = 0 to nq - 1 do
          for q1 = 0 to nq - 1 do
            let qq = (q2 * nq) + q1 in
            let w = basis.Basis.qwts.(q1) *. basis.Basis.qwts.(q2) *. detj in
            let k = kappa_of_u t.gx.(qq) in
            d00.(qq) <- w *. k *. (4.0 /. (hx *. hx));
            d11.(qq) <- w *. k *. (4.0 /. (hy *. hy))
          done
        done
      done
    done

  (** "JIT"-specialized operator application for order p = 2: the inner
      contraction loops are fully unrolled with the basis-table extents
      known at compile time — the Acrotensor/OCCA lesson of Sec 4.10.3
      ("the loop bounds must be known at compile time"). Falls back to the
      generic [apply] for other orders. Results are identical to [apply]
      (tested); only the speed differs. *)
  let apply_specialized t u y =
    if t.basis.Basis.p <> 2 || Basis.nq t.basis <> 4 then apply t u y
    else begin
      let mesh = t.mesh and basis = t.basis in
      let b = basis.Basis.b and g = basis.Basis.g in
      Array.fill y 0 (Array.length y) 0.0;
      let u_loc = t.u_loc and y_loc = t.y_loc in
      let gx = t.gx and gy = t.gy in
      let tmpa = Array.make 12 0.0 and tmpb = Array.make 12 0.0 in
      for ey = 0 to mesh.Mesh.ny - 1 do
        for ex = 0 to mesh.Mesh.nx - 1 do
          let e = (ey * mesh.Mesh.nx) + ex in
          Mesh.gather mesh u ~ex ~ey u_loc;
          (* forward contractions, unrolled over i1/i2 in {0,1,2}, q in 0..3 *)
          for i2 = 0 to 2 do
            let base = i2 * 3 in
            let u0 = u_loc.(base) and u1 = u_loc.(base + 1) and u2 = u_loc.(base + 2) in
            for q1 = 0 to 3 do
              tmpa.((i2 * 4) + q1) <-
                (g.(q1).(0) *. u0) +. (g.(q1).(1) *. u1) +. (g.(q1).(2) *. u2);
              tmpb.((i2 * 4) + q1) <-
                (b.(q1).(0) *. u0) +. (b.(q1).(1) *. u1) +. (b.(q1).(2) *. u2)
            done
          done;
          for q2 = 0 to 3 do
            let b0 = b.(q2).(0) and b1 = b.(q2).(1) and b2 = b.(q2).(2) in
            let g0 = g.(q2).(0) and g1 = g.(q2).(1) and g2 = g.(q2).(2) in
            for q1 = 0 to 3 do
              gx.((q2 * 4) + q1) <-
                (b0 *. tmpa.(q1)) +. (b1 *. tmpa.(4 + q1)) +. (b2 *. tmpa.(8 + q1));
              gy.((q2 * 4) + q1) <-
                (g0 *. tmpb.(q1)) +. (g1 *. tmpb.(4 + q1)) +. (g2 *. tmpb.(8 + q1))
            done
          done;
          let d00 = t.d00.(e) and d11 = t.d11.(e) in
          for qq = 0 to 15 do
            gx.(qq) <- gx.(qq) *. d00.(qq);
            gy.(qq) <- gy.(qq) *. d11.(qq)
          done;
          (* backward contractions *)
          for q2 = 0 to 3 do
            for j1 = 0 to 2 do
              tmpa.((q2 * 3) + j1) <-
                (g.(0).(j1) *. gx.(q2 * 4))
                +. (g.(1).(j1) *. gx.((q2 * 4) + 1))
                +. (g.(2).(j1) *. gx.((q2 * 4) + 2))
                +. (g.(3).(j1) *. gx.((q2 * 4) + 3));
              tmpb.((q2 * 3) + j1) <-
                (b.(0).(j1) *. gy.(q2 * 4))
                +. (b.(1).(j1) *. gy.((q2 * 4) + 1))
                +. (b.(2).(j1) *. gy.((q2 * 4) + 2))
                +. (b.(3).(j1) *. gy.((q2 * 4) + 3))
            done
          done;
          for j2 = 0 to 2 do
            for j1 = 0 to 2 do
              y_loc.((j2 * 3) + j1) <-
                (b.(0).(j2) *. tmpa.(j1)) +. (b.(1).(j2) *. tmpa.(3 + j1))
                +. (b.(2).(j2) *. tmpa.(6 + j1))
                +. (b.(3).(j2) *. tmpa.(9 + j1))
                +. (g.(0).(j2) *. tmpb.(j1))
                +. (g.(1).(j2) *. tmpb.(3 + j1))
                +. (g.(2).(j2) *. tmpb.(6 + j1))
                +. (g.(3).(j2) *. tmpb.(9 + j1))
            done
          done;
          Mesh.scatter_add mesh y_loc ~ex ~ey y
        done
      done
    end

  (** Flop/byte volume of one full-mesh operator application. *)
  let work t =
    let p1 = float_of_int (t.basis.Basis.p + 1) in
    let nq = float_of_int (Basis.nq t.basis) in
    let ne = float_of_int (Mesh.num_elements t.mesh) in
    (* 4 forward + 4 backward 1D contraction passes, each ~2*nq*p1*max(nq,p1)
       flops, plus 2 mults per qpoint *)
    let contraction = 2.0 *. ((nq *. p1 *. p1) +. (nq *. nq *. p1)) in
    let flops = ne *. ((4.0 *. contraction) +. (2.0 *. nq *. nq)) in
    let bytes = ne *. 8.0 *. ((2.0 *. p1 *. p1) +. (2.0 *. nq *. nq)) in
    Hwsim.Kernel.make ~name:"pa-apply" ~flops ~bytes ()

  (** Bytes of operator storage (the D factors). *)
  let storage_bytes t =
    let nq = Basis.nq t.basis in
    float_of_int (Mesh.num_elements t.mesh) *. 2.0 *. float_of_int (nq * nq) *. 8.0
end

(** Flop/byte volume of one CSR full-assembly operator application. *)
let fa_work (a : Linalg.Csr.t) =
  let nz = float_of_int (Linalg.Csr.nnz a) in
  Hwsim.Kernel.make ~name:"fa-apply" ~flops:(2.0 *. nz)
    ~bytes:((12.0 *. nz) +. (16.0 *. float_of_int a.Linalg.Csr.m))
    ()

let fa_storage_bytes (a : Linalg.Csr.t) = 12.0 *. float_of_int (Linalg.Csr.nnz a)

(* --- diagonal (collocated) mass matrix --- *)

(** Diagonal mass matrix entries using GLL collocation (spectral-element
    lumping): M_gg = sum over elements touching g of w_i w_j detJ. *)
let mass_diagonal ?(rho = unit_coefficient) mesh (cbasis : Basis.t) =
  let m = Array.make (Mesh.num_dofs mesh) 0.0 in
  let hx = Mesh.hx mesh and hy = Mesh.hy mesh in
  let detj = hx *. hy /. 4.0 in
  for ey = 0 to mesh.Mesh.ny - 1 do
    for ex = 0 to mesh.Mesh.nx - 1 do
      let x0 = float_of_int ex *. hx and y0 = float_of_int ey *. hy in
      for j = 0 to cbasis.Basis.p do
        for i = 0 to cbasis.Basis.p do
          let g = Mesh.global_dof mesh ~ex ~ey ~i ~j in
          let x = x0 +. ((cbasis.Basis.nodes.(i) +. 1.0) /. 2.0 *. hx) in
          let y = y0 +. ((cbasis.Basis.nodes.(j) +. 1.0) /. 2.0 *. hy) in
          m.(g) <-
            m.(g)
            +. (cbasis.Basis.qwts.(i) *. cbasis.Basis.qwts.(j) *. detj
               *. rho ~x ~y)
        done
      done
    done
  done;
  m

(* --- consistent (non-lumped) mass operator, partial assembly --- *)

module Pa_mass = struct
  (** Matrix-free consistent mass operator M u = \int rho u v: interpolate
      to quadrature points, scale by w detJ rho, project back — the same
      sum-factorized shape as the diffusion operator but with B-only
      contractions. *)
  type t = {
    mesh : Mesh.t;
    basis : Basis.t;
    d : float array array;  (** per element, nq^2 weights *)
    u_loc : float array;
    y_loc : float array;
    tmp : float array;
    uq : float array;
  }

  let setup ?(rho = unit_coefficient) mesh (basis : Basis.t) =
    let ne = Mesh.num_elements mesh in
    let nq = Basis.nq basis in
    let p1 = basis.Basis.p + 1 in
    let hx = Mesh.hx mesh and hy = Mesh.hy mesh in
    let detj = hx *. hy /. 4.0 in
    let d = Array.make ne [||] in
    for ey = 0 to mesh.Mesh.ny - 1 do
      for ex = 0 to mesh.Mesh.nx - 1 do
        let e = (ey * mesh.Mesh.nx) + ex in
        let w = Array.make (nq * nq) 0.0 in
        let x0 = float_of_int ex *. hx and y0 = float_of_int ey *. hy in
        for q2 = 0 to nq - 1 do
          for q1 = 0 to nq - 1 do
            let x = x0 +. ((basis.Basis.qpts.(q1) +. 1.0) /. 2.0 *. hx) in
            let y = y0 +. ((basis.Basis.qpts.(q2) +. 1.0) /. 2.0 *. hy) in
            w.((q2 * nq) + q1) <-
              basis.Basis.qwts.(q1) *. basis.Basis.qwts.(q2) *. detj
              *. rho ~x ~y
          done
        done;
        d.(e) <- w
      done
    done;
    {
      mesh;
      basis;
      d;
      u_loc = Array.make (p1 * p1) 0.0;
      y_loc = Array.make (p1 * p1) 0.0;
      tmp = Array.make (max (nq * p1) (nq * nq)) 0.0;
      uq = Array.make (nq * nq) 0.0;
    }

  (* forward/backward value contractions (B in both directions) *)
  let forward t src out =
    let p1 = t.basis.Basis.p + 1 in
    let nq = Basis.nq t.basis in
    let b = t.basis.Basis.b in
    for i2 = 0 to p1 - 1 do
      for q1 = 0 to nq - 1 do
        let s = ref 0.0 in
        for i1 = 0 to p1 - 1 do
          s := !s +. (b.(q1).(i1) *. src.((i2 * p1) + i1))
        done;
        t.tmp.((i2 * nq) + q1) <- !s
      done
    done;
    for q2 = 0 to nq - 1 do
      for q1 = 0 to nq - 1 do
        let s = ref 0.0 in
        for i2 = 0 to p1 - 1 do
          s := !s +. (b.(q2).(i2) *. t.tmp.((i2 * nq) + q1))
        done;
        out.((q2 * nq) + q1) <- !s
      done
    done

  let backward t src out =
    let p1 = t.basis.Basis.p + 1 in
    let nq = Basis.nq t.basis in
    let b = t.basis.Basis.b in
    for q2 = 0 to nq - 1 do
      for j1 = 0 to p1 - 1 do
        let s = ref 0.0 in
        for q1 = 0 to nq - 1 do
          s := !s +. (b.(q1).(j1) *. src.((q2 * nq) + q1))
        done;
        t.tmp.((q2 * p1) + j1) <- !s
      done
    done;
    for j2 = 0 to p1 - 1 do
      for j1 = 0 to p1 - 1 do
        let s = ref 0.0 in
        for q2 = 0 to nq - 1 do
          s := !s +. (b.(q2).(j2) *. t.tmp.((q2 * p1) + j1))
        done;
        out.((j2 * p1) + j1) <- !s
      done
    done

  (** y <- M u, matrix-free. *)
  let apply t u y =
    let mesh = t.mesh in
    let nq = Basis.nq t.basis in
    Array.fill y 0 (Array.length y) 0.0;
    for ey = 0 to mesh.Mesh.ny - 1 do
      for ex = 0 to mesh.Mesh.nx - 1 do
        let e = (ey * mesh.Mesh.nx) + ex in
        Mesh.gather mesh u ~ex ~ey t.u_loc;
        forward t t.u_loc t.uq;
        let d = t.d.(e) in
        for qq = 0 to (nq * nq) - 1 do
          t.uq.(qq) <- t.uq.(qq) *. d.(qq)
        done;
        backward t t.uq t.y_loc;
        Mesh.scatter_add mesh t.y_loc ~ex ~ey y
      done
    done
end
