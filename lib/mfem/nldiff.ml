(** The paper's integrated math-library benchmark (Sec 4.10.4):
    a nonlinear time-dependent diffusion problem

        u_t = div( kappa(u) grad u ),  kappa(u) = 1 + u^2,

    discretized with high-order continuous finite elements (partial
    assembly), integrated with the CVODE-style BDF, with each Newton linear
    system solved by PCG preconditioned by BoomerAMG on the low-order
    refined operator. This single driver exercises the MFEM + hypre +
    SUNDIALS stack end-to-end and records the event counts from which the
    Fig 8 timing breakdown and the Table 4 speedup grid are priced. *)

type counters = {
  mutable rhs_applies : int;  (** PA operator applies from RHS evaluations *)
  mutable solve_applies : int;  (** PA applies inside PCG *)
  mutable coeff_updates : int;  (** nonlinear coefficient rebuilds *)
  mutable vcycles : int;  (** AMG preconditioner applications *)
  mutable pcg_iters : int;
}

type result = {
  u : float array;
  counters : counters;
  ode_stats : Sundials.Cvode.stats;
  pa_work : Hwsim.Kernel.t;  (** one PA operator application *)
  vcycle_work : Hwsim.Kernel.t;  (** one AMG V-cycle *)
  ndof : int;
  mass_diag : float array;
}

let kappa_of_u u = 1.0 +. (u *. u)

(** Default smooth initial condition compatible with the Dirichlet walls. *)
let default_u0 ~x ~y = sin (Float.pi *. x) *. sin (Float.pi *. y)

(** Run the problem on an (n x n)-element order-p mesh to time [tf]. *)
let run ?(n = 8) ?(p = 2) ?(tf = 0.01) ?(rtol = 1e-5) ?(atol = 1e-8)
    ?(u0 = default_u0) () =
  let mesh = Mesh.create ~nx:n ~ny:n ~p () in
  let basis = Basis.create p in
  let cbasis = Basis.create_collocated p in
  let ndof = Mesh.num_dofs mesh in
  let bdof = Array.make ndof false in
  List.iter (fun g -> bdof.(g) <- true) (Mesh.boundary_dofs mesh);
  let mass = Diffusion.mass_diagonal mesh cbasis in
  let pa = Diffusion.Pa.setup mesh basis in
  let counters =
    { rhs_applies = 0; solve_applies = 0; coeff_updates = 0; vcycles = 0; pcg_iters = 0 }
  in
  (* initial condition at the GLL lattice; zero on the boundary *)
  let uinit =
    Array.init ndof (fun g ->
        if bdof.(g) then 0.0
        else
          let x, y = Mesh.dof_coords mesh cbasis.Basis.nodes g in
          u0 ~x ~y)
  in
  (* AMG preconditioner on the LOR operator of (M + gamma0 K), built once
     with the initial coefficient (lagged preconditioner, as in practice) *)
  let gamma0 = tf /. 20.0 in
  let k_lor = Lor.assemble ~kappa:(fun ~x ~y -> kappa_of_u (u0 ~x ~y)) mesh basis in
  let a_prec =
    (* M_diag + gamma0 * K_lor, with identity boundary rows *)
    let open Linalg.Csr in
    let triplets = ref [] in
    for i = 0 to k_lor.m - 1 do
      if bdof.(i) then triplets := (i, i, 1.0) :: !triplets
      else begin
        triplets := (i, i, mass.(i)) :: !triplets;
        for kk = k_lor.row_ptr.(i) to k_lor.row_ptr.(i + 1) - 1 do
          let j = k_lor.col_idx.(kk) in
          if not bdof.(j) then
            triplets := (i, j, gamma0 *. Icoe_util.Fbuf.get k_lor.values kk) :: !triplets
        done
      end
    done;
    of_triplets ~m:k_lor.m ~n:k_lor.n !triplets
  in
  let amg = Hypre.Boomeramg.setup a_prec in
  let scratch = Array.make ndof 0.0 in
  (* RHS: f(t, u) = -M^{-1} K(u) u on the interior, 0 on the boundary *)
  let rhs _t y =
    Diffusion.Pa.update_coefficients pa ~kappa_of_u ~u:y;
    counters.coeff_updates <- counters.coeff_updates + 1;
    Diffusion.Pa.apply pa y scratch;
    counters.rhs_applies <- counters.rhs_applies + 1;
    Array.init ndof (fun g ->
        if bdof.(g) then 0.0 else -.scratch.(g) /. mass.(g))
  in
  (* lsolve: (I - gamma J) x = b with J = -M^{-1} K(y) frozen, i.e.
     (M + gamma K) x = M b, by AMG-preconditioned CG *)
  let lsolve ~gamma ~t:_ ~y ~b =
    Diffusion.Pa.update_coefficients pa ~kappa_of_u ~u:y;
    counters.coeff_updates <- counters.coeff_updates + 1;
    let op x =
      Diffusion.Pa.apply pa x scratch;
      counters.solve_applies <- counters.solve_applies + 1;
      Array.init ndof (fun g ->
          if bdof.(g) then x.(g)
          else (mass.(g) *. x.(g)) +. (gamma *. scratch.(g)))
    in
    let precond r =
      counters.vcycles <- counters.vcycles + 1;
      Hypre.Boomeramg.precond amg r
    in
    let rhsv =
      Array.init ndof (fun g -> if bdof.(g) then 0.0 else mass.(g) *. b.(g))
    in
    let res =
      Linalg.Krylov.pcg ~tol:1e-10 ~max_iter:400 ~op ~precond rhsv
        (Array.make ndof 0.0)
    in
    counters.pcg_iters <- counters.pcg_iters + res.Linalg.Krylov.iters;
    res.Linalg.Krylov.x
  in
  let r =
    Sundials.Cvode.bdf ~rtol ~atol ~h0:(tf /. 200.0) ~rhs ~lsolve ~t0:0.0
      ~y0:uinit tf
  in
  {
    u = r.Sundials.Cvode.y;
    counters;
    ode_stats = r.Sundials.Cvode.stats;
    pa_work = Diffusion.Pa.work pa;
    vcycle_work = Hypre.Boomeramg.v_cycle_work amg;
    ndof;
    mass_diag = mass;
  }

(** Price a completed run's phases on a device/policy pair, producing the
    Fig 8-style breakdown: formulation (coefficient rebuilds + RHS
    applies), preconditioner (V-cycles), solve (PCG operator applies +
    vector work). Returns (form_s, prec_s, solve_s).

    [scale] extrapolates the measured per-apply work volumes to a problem
    [scale] times larger (iteration counts are kept from the real run);
    this is how paper-scale sizes (up to 1.3M unknowns) are priced from an
    affordable real run. *)
let price ?(scale = 1.0) (res : result) ~(device : Hwsim.Device.t)
    ~(policy : Prog.Policy.t) =
  let res =
    if scale = 1.0 then res
    else
      {
        res with
        pa_work = Hwsim.Kernel.scale scale res.pa_work;
        vcycle_work = Hwsim.Kernel.scale scale res.vcycle_work;
        ndof = int_of_float (float_of_int res.ndof *. scale);
      }
  in
  let eff = Prog.Policy.efficiency policy device in
  let launch_mult = Prog.Policy.launch_multiplier policy in
  let time_of k =
    (float_of_int k.Hwsim.Kernel.launches *. launch_mult
    *. device.Hwsim.Device.launch_overhead_s)
    +. Hwsim.Roofline.time ~eff device { k with Hwsim.Kernel.launches = 0 }
  in
  let c = res.counters in
  (* coefficient rebuild ~ half an operator apply (one forward contraction
     set and a qpoint sweep) *)
  let coeff_work = Hwsim.Kernel.scale 0.5 res.pa_work in
  let pa_t = time_of { res.pa_work with Hwsim.Kernel.launches = 1 } in
  let coeff_t = time_of { coeff_work with Hwsim.Kernel.launches = 1 } in
  let vcycle_t = time_of res.vcycle_work in
  (* per-PCG-iteration vector work: ~5 axpy/dot streams over ndof *)
  let vec_work =
    Hwsim.Kernel.make ~name:"pcg-vec" ~launches:5
      ~flops:(10.0 *. float_of_int res.ndof)
      ~bytes:(80.0 *. float_of_int res.ndof)
      ()
  in
  let vec_t = time_of vec_work in
  let form = float_of_int c.coeff_updates *. coeff_t
             +. (float_of_int c.rhs_applies *. pa_t) in
  let prec = float_of_int c.vcycles *. vcycle_t in
  let solve =
    (float_of_int c.solve_applies *. pa_t)
    +. (float_of_int c.pcg_iters *. vec_t)
  in
  (form, prec, solve)
