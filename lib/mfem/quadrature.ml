(** Gauss-Legendre and Gauss-Lobatto-Legendre rules on [-1, 1].

    GLL nodes double as the nodal points of the high-order bases (spectral
    element style); Gauss-Legendre is the integration rule for the partial
    assembly path. *)

(* Legendre polynomial P_n and derivative at x by recurrence. *)
let legendre n x =
  if n = 0 then (1.0, 0.0)
  else begin
    let p0 = ref 1.0 and p1 = ref x in
    for k = 2 to n do
      let fk = float_of_int k in
      let p2 =
        (((2.0 *. fk) -. 1.0) *. x *. !p1 -. ((fk -. 1.0) *. !p0)) /. fk
      in
      p0 := !p1;
      p1 := p2
    done;
    let dp = float_of_int n *. ((x *. !p1) -. !p0) /. ((x *. x) -. 1.0) in
    (!p1, dp)
  end

(** Gauss-Legendre points and weights, exact for degree 2n-1. *)
let gauss_legendre n =
  assert (n >= 1);
  let pts = Array.make n 0.0 and wts = Array.make n 0.0 in
  for i = 0 to n - 1 do
    (* Chebyshev initial guess + Newton *)
    let x = ref (cos (Float.pi *. (float_of_int i +. 0.75) /. (float_of_int n +. 0.5))) in
    for _ = 1 to 100 do
      let p, dp = legendre n !x in
      x := !x -. (p /. dp)
    done;
    let _, dp = legendre n !x in
    pts.(n - 1 - i) <- !x;
    wts.(n - 1 - i) <- 2.0 /. ((1.0 -. (!x *. !x)) *. dp *. dp)
  done;
  (pts, wts)

(** Gauss-Lobatto-Legendre points (including +-1) and weights; n >= 2
    points, exact for degree 2n-3. *)
let gauss_lobatto n =
  assert (n >= 2);
  let pts = Array.make n 0.0 and wts = Array.make n 0.0 in
  pts.(0) <- -1.0;
  pts.(n - 1) <- 1.0;
  let m = n - 1 in
  (* interior GLL nodes are roots of P'_{n-1}; Newton from Chebyshev-like
     initial guesses *)
  for i = 1 to n - 2 do
    let x = ref (cos (Float.pi *. float_of_int i /. float_of_int m)) in
    for _ = 1 to 100 do
      (* f = P'_m(x); f' via the Legendre ODE:
         (1-x^2) P''_m = 2x P'_m - m(m+1) P_m *)
      let p, dp = legendre m !x in
      let ddp =
        ((2.0 *. !x *. dp) -. (float_of_int (m * (m + 1)) *. p))
        /. (1.0 -. (!x *. !x))
      in
      x := !x -. (dp /. ddp)
    done;
    pts.(n - 1 - i) <- !x
  done;
  Array.sort Float.compare pts;
  for i = 0 to n - 1 do
    let p, _ = legendre m pts.(i) in
    wts.(i) <- 2.0 /. (float_of_int (m * (m + 1)) *. p *. p)
  done;
  (pts, wts)
