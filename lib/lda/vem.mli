(** Variational EM for Latent Dirichlet Allocation, executed on the
    sparkle substrate the way SparkPlug ran it: documents in RDD
    partitions; each iteration broadcasts the topic-word parameters, runs
    the E-step as a mapPartitions, aggregates sufficient statistics
    all-to-one, and updates lambda on the driver. The simulated-time
    breakdown of those phases is Fig 2. *)

val digamma : float -> float

type model = {
  k : int;
  vocab : int;
  alpha : float;  (** symmetric document-topic prior *)
  eta : float;  (** topic-word prior *)
  mutable lambda : float array array;  (** k x vocab variational params *)
}

val init : rng:Icoe_util.Rng.t -> k:int -> vocab:int -> unit -> model

val elog_beta : model -> float array array
(** E[log beta] from lambda (digamma differences). *)

val e_step_doc :
  model -> float array array -> Corpus.doc -> float array array -> float
(** Variational E-step for one document, accumulating sufficient
    statistics; returns the document's likelihood proxy. *)

val e_step_docs :
  model -> float array array -> Corpus.doc array -> float array array -> float
(** E-step over a batch, document-parallel on the {!Icoe_par.Pool}:
    per-chunk statistics matrices are reduced into the accumulator in
    ascending chunk order, so the result is bit-identical to
    {!e_step_docs_seq} for any pool size. Returns the batch
    log-likelihood proxy. *)

val e_step_docs_seq :
  model -> float array array -> Corpus.doc array -> float array array -> float
(** Serial reference path with the same chunk layout and reduction
    order as {!e_step_docs}. *)

type iteration_result = { loglik : float }

val em_iteration : model -> Corpus.doc Sparkle.Rdd.t -> iteration_result

val train : ?iters:int -> model -> Corpus.doc Sparkle.Rdd.t -> float array
(** Run EM; returns the per-iteration log-likelihood trace. *)

val topics : model -> float array array
(** Normalized topic-word distributions. *)

val recovery_score : model -> float array array -> float
(** Mean best-cosine match of learned topics against ground truth. *)
