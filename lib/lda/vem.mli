(** Variational EM for Latent Dirichlet Allocation, executed on the
    sparkle substrate the way SparkPlug ran it: documents in RDD
    partitions; each iteration broadcasts the topic-word parameters, runs
    the E-step as a mapPartitions, aggregates sufficient statistics
    all-to-one, and updates lambda on the driver. The simulated-time
    breakdown of those phases is Fig 2.

    Hot state — lambda, E[log beta], sufficient statistics — is flat
    row-major k x vocab {!Icoe_util.Fbuf} storage (entry (t, w) at
    [t*vocab + w]); E-step scratch comes from a {!Prog.Scratch} arena so
    steady-state batches allocate nothing. *)

val digamma : float -> float

type model = {
  k : int;
  vocab : int;
  alpha : float;  (** symmetric document-topic prior *)
  eta : float;  (** topic-word prior *)
  lambda : Icoe_util.Fbuf.t;  (** k x vocab variational params, row-major *)
  arena : Prog.Scratch.t;  (** per-chunk E-step scratch slabs *)
}

val init : rng:Icoe_util.Rng.t -> k:int -> vocab:int -> unit -> model

val elog_beta : model -> Icoe_util.Fbuf.t
(** E[log beta] from lambda (digamma differences), flat k x vocab. *)

val e_step_doc :
  model -> Icoe_util.Fbuf.t -> Corpus.doc -> Icoe_util.Fbuf.t -> float
(** Variational E-step for one document, accumulating into a flat
    k x vocab sufficient-statistics buffer; returns the document's
    likelihood proxy. *)

val e_step_docs :
  model -> Icoe_util.Fbuf.t -> Corpus.doc array -> Icoe_util.Fbuf.t -> float
(** E-step over a batch, document-parallel on the {!Icoe_par.Pool}:
    per-chunk statistics slabs are reduced into the accumulator in
    ascending chunk order, so the result is bit-identical to
    {!e_step_docs_seq} for any pool size. Returns the batch
    log-likelihood proxy. *)

val e_step_docs_seq :
  model -> Icoe_util.Fbuf.t -> Corpus.doc array -> Icoe_util.Fbuf.t -> float
(** Serial reference path with the same chunk layout and reduction
    order as {!e_step_docs}. *)

type iteration_result = { loglik : float }

val em_iteration : model -> Corpus.doc Sparkle.Rdd.t -> iteration_result

val train : ?iters:int -> model -> Corpus.doc Sparkle.Rdd.t -> float array
(** Run EM; returns the per-iteration log-likelihood trace. *)

val topics : model -> float array array
(** Normalized topic-word distributions (cold path; materializes rows). *)

val recovery_score : model -> float array array -> float
(** Mean best-cosine match of learned topics against ground truth. *)
