(** Variational EM for Latent Dirichlet Allocation, executed on the
    sparkle substrate exactly the way SparkPlug ran it: documents live in
    RDD partitions; each EM iteration broadcasts the topic-word parameters,
    runs the E-step as a mapPartitions, aggregates sufficient statistics
    all-to-one, and updates lambda on the driver. The simulated-time
    breakdown of those phases is Fig 2. *)

let digamma x =
  (* shift into the asymptotic regime, then the standard series *)
  let rec shift x acc = if x < 6.0 then shift (x +. 1.0) (acc -. (1.0 /. x)) else (x, acc) in
  let x, acc = shift x 0.0 in
  let inv = 1.0 /. x in
  let inv2 = inv *. inv in
  acc +. log x -. (0.5 *. inv)
  -. (inv2 *. ((1.0 /. 12.0) -. (inv2 *. ((1.0 /. 120.0) -. (inv2 /. 252.0)))))

type model = {
  k : int;
  vocab : int;
  alpha : float;  (** symmetric document-topic prior *)
  eta : float;  (** topic-word prior *)
  mutable lambda : float array array;  (** k x vocab variational params *)
}

let init ~(rng : Icoe_util.Rng.t) ~k ~vocab () =
  {
    k;
    vocab;
    alpha = 0.1;
    eta = 0.01;
    lambda =
      Array.init k (fun _ ->
          Array.init vocab (fun _ -> 0.5 +. Icoe_util.Rng.float rng));
  }

(* expected log beta from lambda: E[log beta_kw] = digamma(lambda_kw) -
   digamma(sum_w lambda_kw) *)
let elog_beta m =
  Array.map
    (fun row ->
      let total = Icoe_util.Stats.sum row in
      let dt = digamma total in
      Array.map (fun v -> digamma v -. dt) row)
    m.lambda

(* E-step for one document: returns (per-topic gamma, contribution to the
   sufficient statistics as (topic, word, value) updates applied to a local
   accumulator) and the document ELBO-ish likelihood proxy. *)
let m_docs =
  Icoe_obs.Metrics.counter ~help:"Documents processed by the E-step"
    "lda_estep_docs_total"

let m_iters =
  Icoe_obs.Metrics.counter ~help:"Distributed EM iterations"
    "lda_em_iterations_total"

let m_elbo =
  Icoe_obs.Metrics.gauge ~help:"ELBO proxy of the last EM iteration" "lda_elbo"

let e_step_doc m elogb (d : Corpus.doc) stats =
  let k = m.k in
  let nw = Array.length d.Corpus.words in
  let gamma = Array.make k (m.alpha +. (float_of_int (Corpus.doc_length d) /. float_of_int k)) in
  let phi = Array.make_matrix nw k 0.0 in
  let loglik = ref 0.0 in
  for _iter = 1 to 20 do
    let dg = Array.map digamma gamma in
    Array.fill gamma 0 k m.alpha;
    for wi = 0 to nw - 1 do
      let w = d.Corpus.words.(wi) in
      let cnt = float_of_int d.Corpus.counts.(wi) in
      (* phi_wk ~ exp(E[log theta_k] + E[log beta_kw]) *)
      let mx = ref neg_infinity in
      for t = 0 to k - 1 do
        phi.(wi).(t) <- dg.(t) +. elogb.(t).(w);
        if phi.(wi).(t) > !mx then mx := phi.(wi).(t)
      done;
      let z = ref 0.0 in
      for t = 0 to k - 1 do
        phi.(wi).(t) <- exp (phi.(wi).(t) -. !mx);
        z := !z +. phi.(wi).(t)
      done;
      for t = 0 to k - 1 do
        phi.(wi).(t) <- phi.(wi).(t) /. !z;
        gamma.(t) <- gamma.(t) +. (cnt *. phi.(wi).(t))
      done
    done
  done;
  (* accumulate sufficient statistics and likelihood proxy *)
  for wi = 0 to nw - 1 do
    let w = d.Corpus.words.(wi) in
    let cnt = float_of_int d.Corpus.counts.(wi) in
    let word_ll = ref 0.0 in
    for t = 0 to k - 1 do
      stats.(t).(w) <- stats.(t).(w) +. (cnt *. phi.(wi).(t));
      word_ll := !word_ll +. (phi.(wi).(t) *. elogb.(t).(w))
    done;
    loglik := !loglik +. (cnt *. !word_ll)
  done;
  !loglik

(* Documents per pool chunk. Fixed (never pool-derived) so the chunk
   layout — and hence the order sufficient statistics are reduced in —
   is identical for every ICOE_DOMAINS setting. *)
let estep_doc_chunk = 4

(** E-step over a batch of documents, document-parallel on the domain
    pool: each chunk accumulates into its own statistics matrix and the
    partials are added into [stats] in ascending chunk order, so the
    result is bit-identical to {!e_step_docs_seq} for any pool size.
    Returns the batch log-likelihood proxy. *)
let e_step_docs m elogb (docs : Corpus.doc array) stats =
  let n = Array.length docs in
  Icoe_obs.Metrics.inc ~by:(float_of_int n) m_docs;
  let _, ll =
    Icoe_par.Pool.map_reduce ~chunk:estep_doc_chunk ~lo:0 ~hi:n
      ~combine:(fun (sa, la) (sb, lb) ->
        for t = 0 to m.k - 1 do
          for w = 0 to m.vocab - 1 do
            sa.(t).(w) <- sa.(t).(w) +. sb.(t).(w)
          done
        done;
        (sa, la +. lb))
      ~init:(stats, 0.0)
      (fun lo hi ->
        let local = Array.make_matrix m.k m.vocab 0.0 in
        let ll = ref 0.0 in
        for di = lo to hi - 1 do
          ll := !ll +. e_step_doc m elogb docs.(di) local
        done;
        (local, !ll))
  in
  ll

(** Serial reference path: same chunk layout and reduction order as
    {!e_step_docs}, entirely in the calling domain. *)
let e_step_docs_seq m elogb (docs : Corpus.doc array) stats =
  let n = Array.length docs in
  Icoe_obs.Metrics.inc ~by:(float_of_int n) m_docs;
  let ll = ref 0.0 in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + estep_doc_chunk) in
    let local = Array.make_matrix m.k m.vocab 0.0 in
    (* per-chunk partial, added once — the same float association the
       pool's ordered reduction produces *)
    let chunk_ll = ref 0.0 in
    for di = !lo to hi - 1 do
      chunk_ll := !chunk_ll +. e_step_doc m elogb docs.(di) local
    done;
    for t = 0 to m.k - 1 do
      for w = 0 to m.vocab - 1 do
        stats.(t).(w) <- stats.(t).(w) +. local.(t).(w)
      done
    done;
    ll := !ll +. !chunk_ll;
    lo := hi
  done;
  !ll

type iteration_result = { loglik : float }

(** One distributed EM iteration over an RDD of documents. *)
let em_iteration m (rdd : Corpus.doc Sparkle.Rdd.t) =
  let cluster = rdd.Sparkle.Rdd.cluster in
  let lambda_bytes = float_of_int (m.k * m.vocab) *. 8.0 in
  (* broadcast current topics *)
  Sparkle.Cluster.charge_broadcast cluster ~bytes:lambda_bytes;
  let elogb = elog_beta m in
  (* E-step as mapPartitions producing (stats, loglik) partials; the
     flop density per token is ~20 inner iterations x k topics x ~8 ops *)
  let flops_per_elem = 20.0 *. float_of_int m.k *. 8.0 *. 30.0 in
  let partials =
    Sparkle.Rdd.map_partitions ~flops_per_elem
      (fun docs ->
        let stats = Array.make_matrix m.k m.vocab 0.0 in
        let ll = e_step_docs m elogb docs stats in
        [| (stats, ll) |])
      rdd
  in
  (* aggregate sufficient statistics all-to-one *)
  let zero = (Array.make_matrix m.k m.vocab 0.0, 0.0) in
  let stats, loglik =
    Sparkle.Rdd.reduce ~bytes_per_partial:lambda_bytes ~init:zero
      ~combine:(fun (sa, la) (sb, lb) ->
        for t = 0 to m.k - 1 do
          for w = 0 to m.vocab - 1 do
            sa.(t).(w) <- sa.(t).(w) +. sb.(t).(w)
          done
        done;
        (sa, la +. lb))
      partials
  in
  (* M-step on the driver *)
  for t = 0 to m.k - 1 do
    for w = 0 to m.vocab - 1 do
      m.lambda.(t).(w) <- m.eta +. stats.(t).(w)
    done
  done;
  Icoe_obs.Metrics.inc m_iters;
  Icoe_obs.Metrics.set m_elbo loglik;
  { loglik }

(** Run [iters] EM iterations; returns the log-likelihood trace. *)
let train ?(iters = 10) m rdd =
  Array.init iters (fun _ -> (em_iteration m rdd).loglik)

(** Normalized topic-word distributions from lambda. *)
let topics m =
  Array.map
    (fun row ->
      let z = Icoe_util.Stats.sum row in
      Array.map (fun v -> v /. z) row)
    m.lambda

(** Greedy matching score against ground-truth topics: mean, over true
    topics, of the best cosine similarity among learned topics. 1.0 =
    perfect recovery. *)
let recovery_score m (truth : float array array) =
  let learned = topics m in
  let cosine a b =
    let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
    Array.iteri
      (fun i x ->
        dot := !dot +. (x *. b.(i));
        na := !na +. (x *. x);
        nb := !nb +. (b.(i) *. b.(i)))
      a;
    !dot /. (sqrt !na *. sqrt !nb)
  in
  let scores =
    Array.map
      (fun t -> Array.fold_left (fun best l -> max best (cosine t l)) 0.0 learned)
      truth
  in
  Icoe_util.Stats.mean scores
