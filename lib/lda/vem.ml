(** Variational EM for Latent Dirichlet Allocation, executed on the
    sparkle substrate exactly the way SparkPlug ran it: documents live in
    RDD partitions; each EM iteration broadcasts the topic-word parameters,
    runs the E-step as a mapPartitions, aggregates sufficient statistics
    all-to-one, and updates lambda on the driver. The simulated-time
    breakdown of those phases is Fig 2.

    Hot state is SoA: lambda, E[log beta] and the sufficient statistics
    are flat row-major k x vocab {!Icoe_util.Fbuf} Bigarrays (entry
    (t, w) at [t*vocab + w]); the per-document E-step runs over
    per-chunk gamma/digamma/phi/statistics slabs drawn from a
    {!Prog.Scratch} arena — a steady-state batch allocates nothing.
    The arithmetic is unchanged, so results are bit-identical to the
    nested-array layout it replaced. *)

module Fbuf = Icoe_util.Fbuf
module Pool = Icoe_par.Pool

(* [@inline always] + iterative shift: the recursive tuple-returning
   shift allocated per call, and without flambda a non-inlined digamma
   boxes its float return — at k calls per document sweep iteration
   that was most of the E-step's garbage. Same operations in the same
   order as the recursive form, so values are bit-identical. *)
let[@inline always] digamma x0 =
  (* shift into the asymptotic regime, then the standard series *)
  let x = ref x0 and acc = ref 0.0 in
  while !x < 6.0 do
    acc := !acc -. (1.0 /. !x);
    x := !x +. 1.0
  done;
  let x = !x and acc = !acc in
  let inv = 1.0 /. x in
  let inv2 = inv *. inv in
  acc +. log x -. (0.5 *. inv)
  -. (inv2 *. ((1.0 /. 12.0) -. (inv2 *. ((1.0 /. 120.0) -. (inv2 /. 252.0)))))

type model = {
  k : int;
  vocab : int;
  alpha : float;  (** symmetric document-topic prior *)
  eta : float;  (** topic-word prior *)
  lambda : Fbuf.t;  (** k x vocab variational params, row-major *)
  arena : Prog.Scratch.t;  (** per-chunk E-step scratch slabs *)
}

let init ~(rng : Icoe_util.Rng.t) ~k ~vocab () =
  (* row-by-row draw order matches the nested-array init it replaced *)
  let lambda = Fbuf.init (k * vocab) (fun _ -> 0.5 +. Icoe_util.Rng.float rng) in
  { k; vocab; alpha = 0.1; eta = 0.01; lambda; arena = Prog.Scratch.create "lda-estep" }

(* expected log beta from lambda: E[log beta_kw] = digamma(lambda_kw) -
   digamma(sum_w lambda_kw) *)
let elog_beta m =
  let out = Fbuf.create (m.k * m.vocab) in
  for t = 0 to m.k - 1 do
    let base = t * m.vocab in
    let total = ref 0.0 in
    for w = 0 to m.vocab - 1 do
      total := !total +. Fbuf.get m.lambda (base + w)
    done;
    let dt = digamma !total in
    for w = 0 to m.vocab - 1 do
      Fbuf.set out (base + w) (digamma (Fbuf.get m.lambda (base + w)) -. dt)
    done
  done;
  out

let m_docs =
  Icoe_obs.Metrics.counter ~help:"Documents processed by the E-step"
    "lda_estep_docs_total"

let m_iters =
  Icoe_obs.Metrics.counter ~help:"Distributed EM iterations"
    "lda_em_iterations_total"

let m_elbo =
  Icoe_obs.Metrics.gauge ~help:"ELBO proxy of the last EM iteration" "lda_elbo"

(* E-step for one document over flat buffers with base offsets: gamma
   and dg are k-slots, phi is an nw x k slab, stats a k x vocab slab —
   all owned by the caller's chunk, so this allocates nothing. Returns
   the document ELBO-ish likelihood proxy. *)
let e_step_doc_into m (elogb : Fbuf.t) (d : Corpus.doc) ~gamma ~goff ~dg
    ~dgoff ~phi ~phioff ~stats ~soff =
  let k = m.k and vocab = m.vocab in
  let nw = Array.length d.Corpus.words in
  let g0 = m.alpha +. (float_of_int (Corpus.doc_length d) /. float_of_int k) in
  for t = 0 to k - 1 do
    Fbuf.set gamma (goff + t) g0
  done;
  let loglik = ref 0.0 in
  for _iter = 1 to 20 do
    for t = 0 to k - 1 do
      Fbuf.set dg (dgoff + t) (digamma (Fbuf.get gamma (goff + t)));
      Fbuf.set gamma (goff + t) m.alpha
    done;
    for wi = 0 to nw - 1 do
      let w = d.Corpus.words.(wi) in
      let cnt = float_of_int d.Corpus.counts.(wi) in
      let row = phioff + (wi * k) in
      (* phi_wk ~ exp(E[log theta_k] + E[log beta_kw]) *)
      let mx = ref neg_infinity in
      for t = 0 to k - 1 do
        let v = Fbuf.get dg (dgoff + t) +. Fbuf.get elogb ((t * vocab) + w) in
        Fbuf.set phi (row + t) v;
        if v > !mx then mx := v
      done;
      let z = ref 0.0 in
      for t = 0 to k - 1 do
        let v = exp (Fbuf.get phi (row + t) -. !mx) in
        Fbuf.set phi (row + t) v;
        z := !z +. v
      done;
      for t = 0 to k - 1 do
        let v = Fbuf.get phi (row + t) /. !z in
        Fbuf.set phi (row + t) v;
        Fbuf.set gamma (goff + t) (Fbuf.get gamma (goff + t) +. (cnt *. v))
      done
    done
  done;
  (* accumulate sufficient statistics and likelihood proxy *)
  for wi = 0 to nw - 1 do
    let w = d.Corpus.words.(wi) in
    let cnt = float_of_int d.Corpus.counts.(wi) in
    let row = phioff + (wi * k) in
    let word_ll = ref 0.0 in
    for t = 0 to k - 1 do
      let pv = Fbuf.get phi (row + t) in
      let si = soff + (t * vocab) + w in
      Fbuf.set stats si (Fbuf.get stats si +. (cnt *. pv));
      word_ll := !word_ll +. (pv *. Fbuf.get elogb ((t * vocab) + w))
    done;
    loglik := !loglik +. (cnt *. !word_ll)
  done;
  !loglik

(* Documents per pool chunk. Fixed (never pool-derived) so the chunk
   layout — and hence the order sufficient statistics are reduced in —
   is identical for every ICOE_DOMAINS setting. *)
let estep_doc_chunk = 4

let max_doc_words (docs : Corpus.doc array) =
  Array.fold_left (fun m d -> max m (Array.length d.Corpus.words)) 1 docs

(* Per-chunk scratch slabs for a batch: gamma/dg (k each), phi (sized by
   the longest document in the batch), and a local-statistics slab per
   chunk. Acquired before the pooled region (the arena is not
   thread-safe); steady-state batches of the same shape reuse them. *)
let estep_scratch m ~nchunks ~maxnw =
  let k = m.k in
  let gamma = Prog.Scratch.get m.arena "estep-gamma" (nchunks * k) in
  let dg = Prog.Scratch.get m.arena "estep-dg" (nchunks * k) in
  let phi = Prog.Scratch.get m.arena "estep-phi" (nchunks * maxnw * k) in
  let local =
    Prog.Scratch.get_zeroed m.arena "estep-local" (nchunks * k * m.vocab)
  in
  (gamma, dg, phi, local)

(** Variational E-step for one document, accumulating into a flat
    k x vocab statistics buffer; returns the document's likelihood
    proxy. Uses the model's chunk-0 scratch slot. *)
let e_step_doc m elogb (d : Corpus.doc) (stats : Fbuf.t) =
  let nw = max 1 (Array.length d.Corpus.words) in
  let gamma = Prog.Scratch.get m.arena "estep-gamma1" m.k in
  let dg = Prog.Scratch.get m.arena "estep-dg1" m.k in
  let phi = Prog.Scratch.get m.arena "estep-phi1" (nw * m.k) in
  e_step_doc_into m elogb d ~gamma ~goff:0 ~dg ~dgoff:0 ~phi ~phioff:0
    ~stats ~soff:0

(* chunk body: documents [lo, hi) into chunk k's slabs; the chunk's
   log-likelihood partial lands in its slot of [lls] *)
let estep_chunk m elogb (docs : Corpus.doc array) ~maxnw ~gamma ~dg ~phi
    ~local ~lls k lo hi =
  let goff = k * m.k and dgoff = k * m.k in
  let phioff = k * maxnw * m.k in
  let soff = k * m.k * m.vocab in
  let ll = ref 0.0 in
  for di = lo to hi - 1 do
    ll :=
      !ll
      +. e_step_doc_into m elogb docs.(di) ~gamma ~goff ~dg ~dgoff ~phi
           ~phioff ~stats:local ~soff
  done;
  Fbuf.set lls k !ll

(** E-step over a batch of documents, document-parallel on the domain
    pool: each chunk accumulates into its own statistics slab and the
    partials are added into [stats] in ascending chunk order, so the
    result is bit-identical to {!e_step_docs_seq} for any pool size.
    Returns the batch log-likelihood proxy. *)
let reduce_estep m ~local ~lls ~nchunks (stats : Fbuf.t) =
  let kw = m.k * m.vocab in
  let ll = ref 0.0 in
  for c = 0 to nchunks - 1 do
    let base = c * kw in
    for i = 0 to kw - 1 do
      Fbuf.set stats i (Fbuf.get stats i +. Fbuf.get local (base + i))
    done;
    ll := !ll +. Fbuf.get lls c
  done;
  !ll

let e_step_docs m elogb (docs : Corpus.doc array) (stats : Fbuf.t) =
  let n = Array.length docs in
  Icoe_obs.Metrics.inc ~by:(float_of_int n) m_docs;
  let nchunks = Pool.num_chunks ~chunk:estep_doc_chunk ~lo:0 ~hi:n () in
  let maxnw = max_doc_words docs in
  let gamma, dg, phi, local = estep_scratch m ~nchunks ~maxnw in
  let lls = Prog.Scratch.get m.arena "estep-lls" (max 1 nchunks) in
  Pool.parallel_for_chunks_i ~chunk:estep_doc_chunk ~lo:0 ~hi:n
    (fun k lo hi ->
      estep_chunk m elogb docs ~maxnw ~gamma ~dg ~phi ~local ~lls k lo hi);
  reduce_estep m ~local ~lls ~nchunks stats

(** Serial reference path: same chunk layout and reduction order as
    {!e_step_docs}, entirely in the calling domain. *)
let e_step_docs_seq m elogb (docs : Corpus.doc array) (stats : Fbuf.t) =
  let n = Array.length docs in
  Icoe_obs.Metrics.inc ~by:(float_of_int n) m_docs;
  let nchunks = Pool.num_chunks ~chunk:estep_doc_chunk ~lo:0 ~hi:n () in
  let maxnw = max_doc_words docs in
  let gamma, dg, phi, local = estep_scratch m ~nchunks ~maxnw in
  let lls = Prog.Scratch.get m.arena "estep-lls" (max 1 nchunks) in
  for k = 0 to nchunks - 1 do
    let lo = k * estep_doc_chunk in
    estep_chunk m elogb docs ~maxnw ~gamma ~dg ~phi ~local ~lls k lo
      (min n (lo + estep_doc_chunk))
  done;
  reduce_estep m ~local ~lls ~nchunks stats

type iteration_result = { loglik : float }

(** One distributed EM iteration over an RDD of documents. *)
let em_iteration m (rdd : Corpus.doc Sparkle.Rdd.t) =
  let cluster = rdd.Sparkle.Rdd.cluster in
  let kw = m.k * m.vocab in
  let lambda_bytes = float_of_int kw *. 8.0 in
  (* broadcast current topics *)
  Sparkle.Cluster.charge_broadcast cluster ~bytes:lambda_bytes;
  let elogb = elog_beta m in
  (* E-step as mapPartitions producing (stats, loglik) partials; the
     flop density per token is ~20 inner iterations x k topics x ~8 ops *)
  let flops_per_elem = 20.0 *. float_of_int m.k *. 8.0 *. 30.0 in
  let partials =
    Sparkle.Rdd.map_partitions ~flops_per_elem
      (fun docs ->
        let stats = Fbuf.create kw in
        let ll = e_step_docs m elogb docs stats in
        [| (stats, ll) |])
      rdd
  in
  (* aggregate sufficient statistics all-to-one *)
  let zero = (Fbuf.create kw, 0.0) in
  let stats, loglik =
    Sparkle.Rdd.reduce ~bytes_per_partial:lambda_bytes ~init:zero
      ~combine:(fun (sa, la) (sb, lb) ->
        for i = 0 to kw - 1 do
          Fbuf.set sa i (Fbuf.get sa i +. Fbuf.get sb i)
        done;
        (sa, la +. lb))
      partials
  in
  (* M-step on the driver *)
  for i = 0 to kw - 1 do
    Fbuf.set m.lambda i (m.eta +. Fbuf.get stats i)
  done;
  Icoe_obs.Metrics.inc m_iters;
  Icoe_obs.Metrics.set m_elbo loglik;
  { loglik }

(** Run [iters] EM iterations; returns the log-likelihood trace. *)
let train ?(iters = 10) m rdd =
  Array.init iters (fun _ -> (em_iteration m rdd).loglik)

(** Normalized topic-word distributions from lambda. *)
let topics m =
  Array.init m.k (fun t ->
      let base = t * m.vocab in
      let z = ref 0.0 in
      for w = 0 to m.vocab - 1 do
        z := !z +. Fbuf.get m.lambda (base + w)
      done;
      Array.init m.vocab (fun w -> Fbuf.get m.lambda (base + w) /. !z))

(** Greedy matching score against ground-truth topics: mean, over true
    topics, of the best cosine similarity among learned topics. 1.0 =
    perfect recovery. *)
let recovery_score m (truth : float array array) =
  let learned = topics m in
  let cosine a b =
    let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
    Array.iteri
      (fun i x ->
        dot := !dot +. (x *. b.(i));
        na := !na +. (x *. x);
        nb := !nb +. (b.(i) *. b.(i)))
      a;
    !dot /. (sqrt !na *. sqrt !nb)
  in
  let scores =
    Array.map
      (fun t -> Array.fold_left (fun best l -> max best (cosine t l)) 0.0 learned)
      truth
  in
  Icoe_util.Stats.mean scores
