(** Synthetic multi-language corpus generator standing in for the
    Wikipedia corpus (Sec 4.4): documents are drawn from an LDA generative
    model whose topics have Zipf-distributed word frequencies, and the
    vocabulary is split into disjoint per-"language" blocks so the
    dictionary grows with language count exactly as the 390-language
    Wikipedia dictionary did. *)

type doc = { words : int array; counts : int array }

type t = {
  docs : doc array;
  vocab : int;
  k_true : int;
  topic_word : float array array;  (** ground-truth topics, rows sum to 1 *)
}

let doc_length d = Array.fold_left ( + ) 0 d.counts

(* Zipf weights over [n] items *)
let zipf n =
  let w = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let z = Icoe_util.Stats.sum w in
  Array.map (fun x -> x /. z) w

(** Generate [ndocs] documents over [languages] disjoint vocabulary blocks
    of [vocab_per_lang] words, [topics_per_lang] topics each. Each topic
    concentrates on its own slice of the language's vocabulary with a Zipf
    profile, giving well-separated recoverable topics. *)
let generate ?(ndocs = 200) ?(languages = 2) ?(vocab_per_lang = 120)
    ?(topics_per_lang = 3) ?(doc_len = 60) ~(rng : Icoe_util.Rng.t) () =
  let k = languages * topics_per_lang in
  let vocab = languages * vocab_per_lang in
  let slice = vocab_per_lang / topics_per_lang in
  let topic_word =
    Array.init k (fun t ->
        let lang = t / topics_per_lang in
        let sub = t mod topics_per_lang in
        let row = Array.make vocab 1e-9 in
        let zw = zipf slice in
        for i = 0 to slice - 1 do
          row.((lang * vocab_per_lang) + (sub * slice) + i) <- zw.(i)
        done;
        let z = Icoe_util.Stats.sum row in
        Array.map (fun x -> x /. z) row)
  in
  let docs =
    Array.init ndocs (fun _ ->
        (* sparse document-topic mixture: mostly one topic *)
        let main = Icoe_util.Rng.int rng k in
        let theta =
          Array.init k (fun t -> if t = main then 0.8 else 0.2 /. float_of_int (k - 1))
        in
        let counts = Hashtbl.create 32 in
        for _ = 1 to doc_len do
          let t = Icoe_util.Rng.categorical rng theta in
          let w = Icoe_util.Rng.categorical rng topic_word.(t) in
          Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
        done;
        let pairs = Hashtbl.fold (fun w c acc -> (w, c) :: acc) counts [] in
        let pairs =
          List.sort
            (fun (w1, c1) (w2, c2) ->
              match Int.compare w1 w2 with 0 -> Int.compare c1 c2 | n -> n)
            pairs
        in
        {
          words = Array.of_list (List.map fst pairs);
          counts = Array.of_list (List.map snd pairs);
        })
  in
  { docs; vocab; k_true = k; topic_word }

(** Total token count of the corpus. *)
let tokens t = Array.fold_left (fun acc d -> acc + doc_length d) 0 t.docs
