(** The Cardioid monodomain solver: reaction-diffusion on a 2D tissue grid
    with operator splitting. Diffusion is the memory-bound 5-point stencil;
    reaction is the compute-bound per-cell ionic update.

    Hot state is SoA: the per-cell ionic state lives in one flat
    component-major {!Icoe_util.Fbuf} (plane [c] at [c*n + k]), the
    voltage field in another, and the reaction kernel evaluates the
    stack-program form of the ionic model ({!Ionic.compile_kernel})
    over per-chunk scratch slots drawn from a {!Prog.Scratch} arena —
    so a steady-state step allocates nothing. The arithmetic is
    unchanged from the boxed row-per-cell layout, so results are
    bit-identical to the retained closure-tree reference
    ({!reaction_step_ref}).

    The placement study of Sec 4.1 is first-class: [All_gpu] keeps both
    kernels device-side; [Split_cpu_gpu] runs diffusion on the CPU and
    reaction on the GPU, paying a full voltage-field transfer both ways
    every step — the configuration the team measured and rejected. *)

module Fbuf = Icoe_util.Fbuf
module Pool = Icoe_par.Pool

type placement = All_gpu | All_cpu | Split_cpu_gpu

let placement_name = function
  | All_gpu -> "all-gpu"
  | All_cpu -> "all-cpu"
  | Split_cpu_gpu -> "diffusion-cpu/reaction-gpu"

(* planes per cell in [state]: the n_state ionic variables plus the
   stimulus current *)
let n_planes = Ionic.n_state + 1

type t = {
  nx : int;
  ny : int;
  n : int;  (** nx * ny *)
  dx : float;
  sigma : float;  (** tissue conductivity (isotropic) *)
  dt : float;
  state : Fbuf.t;
      (** component-major ionic state, [n_planes] planes of [n]: plane
          [c] holds variable [c] for every cell, so the per-cell update
          streams each plane contiguously *)
  v : Fbuf.t;  (** voltage field, the diffusing variable *)
  scratch : Fbuf.t;
  kernel : Ionic.kernel;  (** stack-program derivative, the hot path *)
  deriv : float array -> float array;
      (** boxed closure-tree derivative, retained as the correctness
          oracle ({!reaction_step_ref}) *)
  arena : Prog.Scratch.t;  (** per-chunk reaction scratch slots *)
}

let create ?(nx = 32) ?(ny = 32) ?(dx = 0.02) ?(sigma = 0.001) ?(dt = 0.02)
    ?(variant = Ionic.Rational) () =
  let n = nx * ny in
  let state = Fbuf.create (n_planes * n) in
  let init = Ionic.initial_state () in
  for c = 0 to n_planes - 1 do
    for k = 0 to n - 1 do
      Fbuf.set state ((c * n) + k) init.(c)
    done
  done;
  let v = Fbuf.create n in
  Fbuf.fill v Ionic.v_rest;
  {
    nx;
    ny;
    n;
    dx;
    sigma;
    dt;
    state;
    v;
    scratch = Fbuf.create n;
    kernel = Ionic.compile_kernel variant;
    deriv = Ionic.compile_variant variant;
    arena = Prog.Scratch.create "cardioid-reaction";
  }

let idx t i j = i + (t.nx * j)

(** Stimulate a rectangular region (sets a strong inward current for the
    next [reaction_step] calls while active). *)
let stimulate t ~ilo ~ihi ~jlo ~jhi ~amplitude =
  let base = Ionic.istim_idx * t.n in
  for j = jlo to jhi do
    for i = ilo to ihi do
      Fbuf.set t.state (base + idx t i j) amplitude
    done
  done

let clear_stimulus t =
  let base = Ionic.istim_idx * t.n in
  for k = 0 to t.n - 1 do
    Fbuf.set t.state (base + k) 0.0
  done

(* The chunk body of the reaction half-step. Chunk [k]'s scratch slots
   live at fixed offsets in the shared [env]/[out]/[stack] buffers, so
   concurrent chunks never touch the same slot. Per cell: gather the
   state planes into the env slot, evaluate the four derivative
   programs, apply the explicit-Euler update back into the planes.
   Allocation-free. *)
let react_cells t ~env ~out ~stack k clo chi =
  let n = t.n in
  let progs = t.kernel.Ionic.progs in
  let eoff = k * n_planes in
  let ooff = k * Ionic.n_state in
  let soff = k * t.kernel.Ionic.depth in
  for c = clo to chi - 1 do
    Fbuf.set env eoff (Fbuf.get t.v c);
    for p = 1 to n_planes - 1 do
      Fbuf.set env (eoff + p) (Fbuf.get t.state ((p * n) + c))
    done;
    for d = 0 to Ionic.n_state - 1 do
      Melodee.exec_program_into
        (Array.unsafe_get progs d)
        ~env ~env_off:eoff ~stack ~stack_off:soff ~out ~out_off:(ooff + d)
    done;
    for p = 0 to Ionic.n_state - 1 do
      Fbuf.set t.state ((p * n) + c)
        (Fbuf.get env (eoff + p) +. (t.dt *. Fbuf.get out (ooff + p)))
    done;
    Fbuf.set t.v c (Fbuf.get t.state c)
  done

(* Scratch slots are acquired before entering the pooled region (the
   arena is not thread-safe) and sized by the pool's chunk count, so a
   steady-state step reuses the same buffers: zero allocation. *)
let reaction_scratch t =
  let nchunks = Pool.num_chunks ~lo:0 ~hi:t.n () in
  let env = Prog.Scratch.get t.arena "react-env" (nchunks * n_planes) in
  let out = Prog.Scratch.get t.arena "react-out" (nchunks * Ionic.n_state) in
  let stack =
    Prog.Scratch.get t.arena "react-stack" (nchunks * t.kernel.Ionic.depth)
  in
  (env, out, stack)

(** Reaction half-step: per-cell ionic update, chunk-parallel on the
    domain pool. Every cell touches only its own state columns, voltage
    entry and its chunk's scratch slots, so the result is bit-identical
    to {!reaction_step_seq} for any pool size. *)
let reaction_step t =
  let env, out, stack = reaction_scratch t in
  Pool.parallel_for_chunks_i ~lo:0 ~hi:t.n (fun k clo chi ->
      react_cells t ~env ~out ~stack k clo chi)

(** Serial reference path for the reaction half-step: the same chunk
    layout, walked in order in the calling domain. *)
let reaction_step_seq t =
  let env, out, stack = reaction_scratch t in
  let csize = Pool.default_chunk t.n in
  let nchunks = Pool.num_chunks ~lo:0 ~hi:t.n () in
  for k = 0 to nchunks - 1 do
    let clo = k * csize in
    react_cells t ~env ~out ~stack k clo (min t.n (clo + csize))
  done

(** Boxed closure-tree reference for the reaction half-step, retained
    from the row-per-cell layout: per-cell env arrays through
    {!Ionic.compile_variant}. Allocates per cell — correctness oracle
    only; the agreement tests pin {!reaction_step} to this bit-for-bit. *)
let reaction_step_ref t =
  let n = t.n in
  let env = Array.make n_planes 0.0 in
  for c = 0 to n - 1 do
    env.(Ionic.iv) <- Fbuf.get t.v c;
    for p = 1 to n_planes - 1 do
      env.(p) <- Fbuf.get t.state ((p * n) + c)
    done;
    let d = t.deriv env in
    for p = 0 to Ionic.n_state - 1 do
      Fbuf.set t.state ((p * n) + c) (env.(p) +. (t.dt *. d.(p)))
    done;
    Fbuf.set t.v c (Fbuf.get t.state c)
  done

let diffuse_rows t alpha jlo jhi =
  let v = t.v and scratch = t.scratch in
  let nx = t.nx and ny = t.ny in
  for j = jlo to jhi - 1 do
    for i = 0 to nx - 1 do
      let k = i + (nx * j) in
      let c = Fbuf.get v k in
      let vx0 = if i > 0 then Fbuf.get v (k - 1) else c in
      let vx1 = if i < nx - 1 then Fbuf.get v (k + 1) else c in
      let vy0 = if j > 0 then Fbuf.get v (k - nx) else c in
      let vy1 = if j < ny - 1 then Fbuf.get v (k + nx) else c in
      Fbuf.set scratch k (c +. (alpha *. (vx0 +. vx1 +. vy0 +. vy1 -. (4.0 *. c))))
    done
  done

(** Diffusion half-step: explicit 5-point stencil with no-flux walls,
    row-parallel into the scratch field (reads [v], writes [scratch] —
    disjoint, so any pool size gives the serial answer). *)
let diffusion_step t =
  let alpha = t.sigma *. t.dt /. (t.dx *. t.dx) in
  Pool.parallel_for_chunks ~chunk:8 ~lo:0 ~hi:t.ny (fun jlo jhi ->
      diffuse_rows t alpha jlo jhi);
  Fbuf.blit ~src:t.scratch ~dst:t.v

let m_steps =
  Icoe_obs.Metrics.counter ~help:"Operator-split steps" "cardioid_steps_total"

(* Wall-clock split between the two halves of the operator splitting —
   the compute-bound vs memory-bound balance the placement study turns on. *)
let step t =
  Icoe_obs.Metrics.time "cardioid_reaction_seconds" (fun () -> reaction_step t);
  Icoe_obs.Metrics.time "cardioid_diffusion_seconds" (fun () ->
      diffusion_step t);
  Icoe_obs.Metrics.inc m_steps

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

(* --- checkpoint/restart support (Icoe_fault.Checkpoint) --- *)

(** Full tissue state: the ionic state planes plus the voltage field.
    [scratch] is rewritten by each diffusion half-step before being
    read, so it is not part of the state. *)
type snapshot = { c_state : Fbuf.t; c_v : Fbuf.t }

let snapshot t = { c_state = Fbuf.copy t.state; c_v = Fbuf.copy t.v }

let restore t s =
  Fbuf.blit ~src:s.c_state ~dst:t.state;
  Fbuf.blit ~src:s.c_v ~dst:t.v

(** Has the excitation wave reached cell (i, j)? (voltage above -20 mV) *)
let activated t ~i ~j = Fbuf.get t.v (idx t i j) > -20.0

(* --- placement cost model (Sec 4.1) --- *)

(** Simulated seconds per step for a tissue of [cells] cells under a
    placement, with the reaction variant's flop density. Reaction is
    compute-bound; diffusion is bandwidth-bound; the split placement adds a
    bidirectional voltage-field transfer every step. *)
let time_per_step ?(variant = Ionic.Rational) ~cells placement =
  let c = float_of_int cells in
  (* production ionic models evaluate several times more rate functions
     per state than the minimal 3-gate model; the density factor scales
     our kernel to the paper's "100-500 math calls" regime, where the
     reaction kernel is compute-bound. Coefficient loads hit the constant
     cache (warp-broadcast), so they cost one instruction slot each, not
     DRAM traffic. *)
  let math_density = 6.0 in
  let reaction_flops gpu =
    c *. math_density
    *. (Ionic.variant_flops ~expensive_flops:(if gpu then 50.0 else 100.0) variant
       +. float_of_int (Ionic.variant_loads variant))
  in
  (* DRAM traffic: the per-cell state in and out *)
  let reaction_bytes = c *. 8.0 *. float_of_int (2 * (Ionic.n_state + 1)) in
  let diffusion = Hwsim.Kernel.make ~name:"diffusion" ~flops:(c *. 7.0)
      ~bytes:(c *. 8.0 *. 7.0) () in
  let gpu = Hwsim.Device.v100 and cpu = Hwsim.Device.power9 in
  let gpu_eff = Prog.Policy.efficiency Prog.Policy.Cuda gpu in
  let cpu_eff = Prog.Policy.efficiency (Prog.Policy.Openmp 22) cpu in
  let t_reaction_gpu =
    Hwsim.Roofline.time ~eff:gpu_eff gpu
      (Hwsim.Kernel.make ~name:"reaction" ~flops:(reaction_flops true)
         ~bytes:reaction_bytes ())
  in
  let t_reaction_cpu =
    Hwsim.Roofline.time ~eff:cpu_eff cpu
      (Hwsim.Kernel.make ~name:"reaction" ~flops:(reaction_flops false)
         ~bytes:reaction_bytes ())
  in
  let t_diffusion_gpu = Hwsim.Roofline.time ~eff:gpu_eff gpu diffusion in
  let t_diffusion_cpu = Hwsim.Roofline.time ~eff:cpu_eff cpu diffusion in
  match placement with
  | All_gpu -> t_reaction_gpu +. t_diffusion_gpu
  | All_cpu -> t_reaction_cpu +. t_diffusion_cpu
  | Split_cpu_gpu ->
      (* reaction and diffusion could overlap, but the voltage field must
         cross the link twice per step *)
      let xfer =
        2.0 *. Hwsim.Link.transfer_time Hwsim.Link.nvlink2 ~bytes:(c *. 8.0)
      in
      max t_reaction_gpu t_diffusion_cpu +. xfer
