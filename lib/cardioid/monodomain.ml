(** The Cardioid monodomain solver: reaction-diffusion on a 2D tissue grid
    with operator splitting. Diffusion is the memory-bound 5-point stencil;
    reaction is the compute-bound per-cell ionic update.

    The placement study of Sec 4.1 is first-class: [All_gpu] keeps both
    kernels device-side; [Split_cpu_gpu] runs diffusion on the CPU and
    reaction on the GPU, paying a full voltage-field transfer both ways
    every step — the configuration the team measured and rejected. *)

type placement = All_gpu | All_cpu | Split_cpu_gpu

let placement_name = function
  | All_gpu -> "all-gpu"
  | All_cpu -> "all-cpu"
  | Split_cpu_gpu -> "diffusion-cpu/reaction-gpu"

type t = {
  nx : int;
  ny : int;
  dx : float;
  sigma : float;  (** tissue conductivity (isotropic) *)
  dt : float;
  state : float array array;  (** per-cell ionic state (n_state + 1) *)
  v : float array;  (** voltage field, the diffusing variable *)
  scratch : float array;
  deriv : float array -> float array;
}

let create ?(nx = 32) ?(ny = 32) ?(dx = 0.02) ?(sigma = 0.001) ?(dt = 0.02)
    ?(variant = Ionic.Rational) () =
  let n = nx * ny in
  let deriv = Ionic.compile_variant variant in
  let state = Array.init n (fun _ -> Ionic.initial_state ()) in
  let v = Array.make n Ionic.v_rest in
  { nx; ny; dx; sigma; dt; state; v; scratch = Array.make n 0.0; deriv }

let idx t i j = i + (t.nx * j)

(** Stimulate a rectangular region (sets a strong inward current for the
    next [reaction_step] calls while active). *)
let stimulate t ~ilo ~ihi ~jlo ~jhi ~amplitude =
  for j = jlo to jhi do
    for i = ilo to ihi do
      t.state.(idx t i j).(Ionic.istim_idx) <- amplitude
    done
  done

let clear_stimulus t =
  Array.iter (fun s -> s.(Ionic.istim_idx) <- 0.0) t.state

let react_cell t k =
  let s = t.state.(k) in
  s.(Ionic.iv) <- t.v.(k);
  let d = t.deriv s in
  for c = 0 to Ionic.n_state - 1 do
    s.(c) <- s.(c) +. (t.dt *. d.(c))
  done;
  t.v.(k) <- s.(Ionic.iv)

(** Reaction half-step: per-cell ionic update, cell-parallel on the
    domain pool. Every cell touches only its own state row and voltage
    entry, so the result is bit-identical to {!reaction_step_seq} for
    any pool size. *)
let reaction_step t =
  Icoe_par.Pool.parallel_for ~lo:0 ~hi:(Array.length t.state) (react_cell t)

(** Serial reference path for the reaction half-step. *)
let reaction_step_seq t =
  for k = 0 to Array.length t.state - 1 do
    react_cell t k
  done

let diffuse_rows t alpha jlo jhi =
  for j = jlo to jhi - 1 do
    for i = 0 to t.nx - 1 do
      let k = idx t i j in
      let c = t.v.(k) in
      let vx0 = if i > 0 then t.v.(k - 1) else c in
      let vx1 = if i < t.nx - 1 then t.v.(k + 1) else c in
      let vy0 = if j > 0 then t.v.(k - t.nx) else c in
      let vy1 = if j < t.ny - 1 then t.v.(k + t.nx) else c in
      t.scratch.(k) <- c +. (alpha *. (vx0 +. vx1 +. vy0 +. vy1 -. (4.0 *. c)))
    done
  done

(** Diffusion half-step: explicit 5-point stencil with no-flux walls,
    row-parallel into the scratch field (reads [v], writes [scratch] —
    disjoint, so any pool size gives the serial answer). *)
let diffusion_step t =
  let alpha = t.sigma *. t.dt /. (t.dx *. t.dx) in
  Icoe_par.Pool.parallel_for_chunks ~chunk:8 ~lo:0 ~hi:t.ny (fun jlo jhi ->
      diffuse_rows t alpha jlo jhi);
  Array.blit t.scratch 0 t.v 0 (Array.length t.v)

let m_steps =
  Icoe_obs.Metrics.counter ~help:"Operator-split steps" "cardioid_steps_total"

(* Wall-clock split between the two halves of the operator splitting —
   the compute-bound vs memory-bound balance the placement study turns on. *)
let step t =
  Icoe_obs.Metrics.time "cardioid_reaction_seconds" (fun () -> reaction_step t);
  Icoe_obs.Metrics.time "cardioid_diffusion_seconds" (fun () ->
      diffusion_step t);
  Icoe_obs.Metrics.inc m_steps

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

(* --- checkpoint/restart support (Icoe_fault.Checkpoint) --- *)

(** Full tissue state: every cell's ionic state row plus the voltage
    field. [scratch] is rewritten by each diffusion half-step before
    being read, so it is not part of the state. *)
type snapshot = { c_state : float array array; c_v : float array }

let snapshot t =
  { c_state = Array.map Array.copy t.state; c_v = Array.copy t.v }

let restore t s =
  Array.iteri
    (fun k row -> Array.blit s.c_state.(k) 0 row 0 (Array.length row))
    t.state;
  Array.blit s.c_v 0 t.v 0 (Array.length t.v)

(** Has the excitation wave reached cell (i, j)? (voltage above -20 mV) *)
let activated t ~i ~j = t.v.(idx t i j) > -20.0

(* --- placement cost model (Sec 4.1) --- *)

(** Simulated seconds per step for a tissue of [cells] cells under a
    placement, with the reaction variant's flop density. Reaction is
    compute-bound; diffusion is bandwidth-bound; the split placement adds a
    bidirectional voltage-field transfer every step. *)
let time_per_step ?(variant = Ionic.Rational) ~cells placement =
  let c = float_of_int cells in
  (* production ionic models evaluate several times more rate functions
     per state than the minimal 3-gate model; the density factor scales
     our kernel to the paper's "100-500 math calls" regime, where the
     reaction kernel is compute-bound. Coefficient loads hit the constant
     cache (warp-broadcast), so they cost one instruction slot each, not
     DRAM traffic. *)
  let math_density = 6.0 in
  let reaction_flops gpu =
    c *. math_density
    *. (Ionic.variant_flops ~expensive_flops:(if gpu then 50.0 else 100.0) variant
       +. float_of_int (Ionic.variant_loads variant))
  in
  (* DRAM traffic: the per-cell state in and out *)
  let reaction_bytes = c *. 8.0 *. float_of_int (2 * (Ionic.n_state + 1)) in
  let diffusion = Hwsim.Kernel.make ~name:"diffusion" ~flops:(c *. 7.0)
      ~bytes:(c *. 8.0 *. 7.0) () in
  let gpu = Hwsim.Device.v100 and cpu = Hwsim.Device.power9 in
  let gpu_eff = Prog.Policy.efficiency Prog.Policy.Cuda gpu in
  let cpu_eff = Prog.Policy.efficiency (Prog.Policy.Openmp 22) cpu in
  let t_reaction_gpu =
    Hwsim.Roofline.time ~eff:gpu_eff gpu
      (Hwsim.Kernel.make ~name:"reaction" ~flops:(reaction_flops true)
         ~bytes:reaction_bytes ())
  in
  let t_reaction_cpu =
    Hwsim.Roofline.time ~eff:cpu_eff cpu
      (Hwsim.Kernel.make ~name:"reaction" ~flops:(reaction_flops false)
         ~bytes:reaction_bytes ())
  in
  let t_diffusion_gpu = Hwsim.Roofline.time ~eff:gpu_eff gpu diffusion in
  let t_diffusion_cpu = Hwsim.Roofline.time ~eff:cpu_eff cpu diffusion in
  match placement with
  | All_gpu -> t_reaction_gpu +. t_diffusion_gpu
  | All_cpu -> t_reaction_cpu +. t_diffusion_cpu
  | Split_cpu_gpu ->
      (* reaction and diffusion could overlap, but the voltage field must
         cross the link twice per step *)
      let xfer =
        2.0 *. Hwsim.Link.transfer_time Hwsim.Link.nvlink2 ~bytes:(c *. 8.0)
      in
      max t_reaction_gpu t_diffusion_cpu +. xfer
