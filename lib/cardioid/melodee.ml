(** Melodee: Cardioid's reaction-kernel DSL.

    The paper's pipeline (Sec 4.1): take the ionic-model equations as an
    expression tree, (1) automatically find and replace expensive math
    functions with run-time rational polynomials, (2) optionally instantiate
    run-time coefficients as compile-time constants (constant folding), and
    (3) "JIT" the result — here, compile the tree to an OCaml closure. The
    op-count report drives the device pricing of each variant. *)

type expr =
  | Const of float
  | Var of int  (** index into the state/input vector *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Exp of expr
  | Log of expr
  | Ratpoly of float array * float array * expr
      (** p(x)/q(x) with coefficient arrays (lowest degree first) *)

let rec eval env = function
  | Const c -> c
  | Var i -> env.(i)
  | Add (a, b) -> eval env a +. eval env b
  | Sub (a, b) -> eval env a -. eval env b
  | Mul (a, b) -> eval env a *. eval env b
  | Div (a, b) -> eval env a /. eval env b
  | Neg a -> -.(eval env a)
  | Exp a -> exp (eval env a)
  | Log a -> log (eval env a)
  | Ratpoly (p, q, a) ->
      let x = eval env a in
      let horner c =
        let acc = ref 0.0 in
        for i = Array.length c - 1 downto 0 do
          acc := (!acc *. x) +. c.(i)
        done;
        !acc
      in
      horner p /. horner q

(** (cheap flops, expensive-function calls) in one evaluation. A rational
    polynomial counts as cheap flops only — that is the whole point. *)
let rec op_count = function
  | Const _ | Var _ -> (0, 0)
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      let ca, ea = op_count a and cb, eb = op_count b in
      (ca + cb + 1, ea + eb)
  | Neg a ->
      let c, e = op_count a in
      (c + 1, e)
  | Exp a | Log a ->
      let c, e = op_count a in
      (c, e + 1)
  | Ratpoly (p, q, a) ->
      let c, e = op_count a in
      (c + (2 * (Array.length p + Array.length q)) + 1, e)

(** Constant folding: evaluate every constant subtree at "compile time".
    This is the paper's "changing run-time polynomial coefficients into
    compile-time constants" lesson expressed as a pass. *)
let rec constant_fold e =
  let binop mk f a b =
    match (constant_fold a, constant_fold b) with
    | Const x, Const y -> Const (f x y)
    | a', b' -> mk a' b'
  in
  match e with
  | Const _ | Var _ -> e
  | Add (a, b) -> binop (fun a b -> Add (a, b)) ( +. ) a b
  | Sub (a, b) -> binop (fun a b -> Sub (a, b)) ( -. ) a b
  | Mul (a, b) -> (
      match binop (fun a b -> Mul (a, b)) ( *. ) a b with
      | Mul (Const 1.0, x) | Mul (x, Const 1.0) -> x
      | Mul (Const 0.0, _) | Mul (_, Const 0.0) -> Const 0.0
      | x -> x)
  | Div (a, b) -> binop (fun a b -> Div (a, b)) ( /. ) a b
  | Neg a -> ( match constant_fold a with Const x -> Const (-.x) | a' -> Neg a')
  | Exp a -> ( match constant_fold a with Const x -> Const (exp x) | a' -> Exp a')
  | Log a -> ( match constant_fold a with Const x -> Const (log x) | a' -> Log a')
  | Ratpoly (p, q, a) -> (
      match constant_fold a with
      | Const x -> Const (eval [||] (Ratpoly (p, q, Const x)))
      | a' -> Ratpoly (p, q, a'))

(** Least-squares rational fit p(x)/q(x) ~ f(x) on [lo, hi], deg p = np,
    deg q = nq with q(0) = 1. Linearized: minimize sum (f q - p)^2 over
    Chebyshev sample points. *)
let rational_fit ~lo ~hi ~np ~nq f =
  let ns = 8 * (np + nq + 2) in
  let xs =
    Array.init ns (fun k ->
        let t = cos (Float.pi *. (float_of_int k +. 0.5) /. float_of_int ns) in
        (0.5 *. (lo +. hi)) +. (0.5 *. (hi -. lo) *. t))
  in
  let nunk = np + 1 + nq in
  (* unknowns: p_0..p_np, q_1..q_nq *)
  let a = Linalg.Dense.create ns nunk in
  let b = Array.make ns 0.0 in
  Array.iteri
    (fun r x ->
      let fx = f x in
      for i = 0 to np do
        Linalg.Dense.set a r i (x ** float_of_int i)
      done;
      for j = 1 to nq do
        Linalg.Dense.set a r (np + j) (-.fx *. (x ** float_of_int j))
      done;
      b.(r) <- fx)
    xs;
  (* normal equations A^T A c = A^T b *)
  let at = Linalg.Dense.transpose a in
  let ata = Linalg.Dense.matmul at a in
  (* regularize lightly for stability *)
  for i = 0 to nunk - 1 do
    Linalg.Dense.update ata i i (fun v -> v +. 1e-12)
  done;
  let atb = Linalg.Dense.matvec at b in
  let c = Linalg.Dense.solve ata atb in
  let p = Array.sub c 0 (np + 1) in
  let q = Array.append [| 1.0 |] (Array.sub c (np + 1) nq) in
  (p, q)

(** Replace every [Exp] node with a rational approximation fitted on the
    assumption that its argument stays within [lo, hi] (the physiological
    range of the rate expressions). *)
let rec replace_exp ~lo ~hi e =
  let go = replace_exp ~lo ~hi in
  match e with
  | Const _ | Var _ -> e
  | Add (a, b) -> Add (go a, go b)
  | Sub (a, b) -> Sub (go a, go b)
  | Mul (a, b) -> Mul (go a, go b)
  | Div (a, b) -> Div (go a, go b)
  | Neg a -> Neg (go a)
  | Exp a ->
      let p, q = rational_fit ~lo ~hi ~np:4 ~nq:4 exp in
      Ratpoly (p, q, go a)
  | Log a -> Log (go a)
  | Ratpoly (p, q, a) -> Ratpoly (p, q, go a)

(** "JIT": compile the tree to a closure. OCaml's compiler does the rest;
    the analog to NVRTC is that the returned closure has the structure of
    the transformed tree baked in. *)
let rec compile = function
  | Const c -> fun _ -> c
  | Var i -> fun env -> env.(i)
  | Add (a, b) ->
      let fa = compile a and fb = compile b in
      fun env -> fa env +. fb env
  | Sub (a, b) ->
      let fa = compile a and fb = compile b in
      fun env -> fa env -. fb env
  | Mul (a, b) ->
      let fa = compile a and fb = compile b in
      fun env -> fa env *. fb env
  | Div (a, b) ->
      let fa = compile a and fb = compile b in
      fun env -> fa env /. fb env
  | Neg a ->
      let fa = compile a in
      fun env -> -.(fa env)
  | Exp a ->
      let fa = compile a in
      fun env -> exp (fa env)
  | Log a ->
      let fa = compile a in
      fun env -> log (fa env)
  | Ratpoly (p, q, a) ->
      let fa = compile a in
      fun env ->
        let x = fa env in
        let horner c =
          let acc = ref 0.0 in
          for i = Array.length c - 1 downto 0 do
            acc := (!acc *. x) +. c.(i)
          done;
          !acc
        in
        horner p /. horner q

(** Price one evaluation of the expression on a device: cheap flops cost 1
    flop each; an expensive call costs [expensive_flops] (double-precision
    exp/log are software routines: ~50 flops on GPUs, ~100 scalar on CPUs). *)
let eval_cost ?(expensive_flops = 50.0) e =
  let cheap, expensive = op_count e in
  float_of_int cheap +. (float_of_int expensive *. expensive_flops)

(** Memory loads per evaluation: every Var is a load; a Ratpoly's
    coefficients are loads unless [folded] — the paper's "compile-time
    constants" turn run-time coefficient arrays into immediates. *)
let rec load_count ?(folded = false) = function
  | Const _ -> 0
  | Var _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      load_count ~folded a + load_count ~folded b
  | Neg a | Exp a | Log a -> load_count ~folded a
  | Ratpoly (p, q, a) ->
      (if folded then 0 else Array.length p + Array.length q)
      + load_count ~folded a

(** Fit an arbitrary bounded function of one variable with a rational
    polynomial and return the replacement expression applied to [arg].
    This is the DSL's core move: Cardioid fits whole rate expressions
    (sigmoids, bell-shaped time constants), which are bounded and smooth —
    not bare exp over its wild range. *)
let fit_function ~lo ~hi ?(np = 6) ?(nq = 6) f arg =
  let p, q = rational_fit ~lo ~hi ~np ~nq f in
  Ratpoly (p, q, arg)

(* --- zero-alloc program compilation --------------------------------- *)

(* Opcodes for the postfix program form. *)
let op_const = 0
let op_var = 1
let op_add = 2
let op_sub = 3
let op_mul = 4
let op_div = 5
let op_neg = 6
let op_exp = 7
let op_log = 8
let op_ratpoly = 9

type program = {
  ops : int array;  (** opcode per instruction *)
  opargs : int array;  (** operand per instruction (const/var/ratpoly index) *)
  consts : float array;
  ratp : float array array;  (** numerator coefficients per ratpoly *)
  ratq : float array array;  (** denominator coefficients per ratpoly *)
  depth : int;  (** maximum operand-stack depth *)
}

let program_depth p = p.depth

(** Compile the tree to a postfix program evaluated over a preallocated
    stack buffer. The instruction order is a postorder walk — operand
    [a] before operand [b] before the operation — which performs exactly
    the floating-point operations of the {!compile} closure tree in the
    same order, so the two evaluation strategies are bit-identical. The
    payoff is allocation: the closure tree boxes a float per node per
    call, the program form writes every intermediate into the caller's
    stack buffer and allocates nothing. *)
let compile_program e =
  let ops = ref [] and opargs = ref [] in
  let consts = ref [] and nconsts = ref 0 in
  let ratp = ref [] and ratq = ref [] and nrat = ref 0 in
  let emit op arg =
    ops := op :: !ops;
    opargs := arg :: !opargs
  in
  let intern_const c =
    let i = !nconsts in
    consts := c :: !consts;
    incr nconsts;
    i
  in
  let rec go = function
    | Const c ->
        emit op_const (intern_const c);
        1
    | Var i ->
        emit op_var i;
        1
    | Add (a, b) -> binop op_add a b
    | Sub (a, b) -> binop op_sub a b
    | Mul (a, b) -> binop op_mul a b
    | Div (a, b) -> binop op_div a b
    | Neg a -> unop op_neg a
    | Exp a -> unop op_exp a
    | Log a -> unop op_log a
    | Ratpoly (p, q, a) ->
        let d = go a in
        let i = !nrat in
        ratp := p :: !ratp;
        ratq := q :: !ratq;
        incr nrat;
        emit op_ratpoly i;
        d
  and binop op a b =
    let da = go a in
    let db = go b in
    emit op 0;
    max da (db + 1)
  and unop op a =
    let d = go a in
    emit op 0;
    d
  in
  let depth = go e in
  {
    ops = Array.of_list (List.rev !ops);
    opargs = Array.of_list (List.rev !opargs);
    consts = Array.of_list (List.rev !consts);
    ratp = Array.of_list (List.rev !ratp);
    ratq = Array.of_list (List.rev !ratq);
    depth;
  }

(* The interpreter core: runs the opcode loop and leaves the result at
   [stack_off]. Returns unit so that neither entry point below pays a
   boxed-float return on the per-op work. *)
let exec_core p ~(env : Icoe_util.Fbuf.t) ~env_off
    ~(stack : Icoe_util.Fbuf.t) ~stack_off =
  let module Fbuf = Icoe_util.Fbuf in
  let ops = p.ops and opargs = p.opargs and consts = p.consts in
  let sp = ref stack_off in
  for pc = 0 to Array.length ops - 1 do
    let arg = Array.unsafe_get opargs pc in
    match Array.unsafe_get ops pc with
    | 0 (* const *) ->
        Fbuf.set stack !sp (Array.unsafe_get consts arg);
        incr sp
    | 1 (* var *) ->
        Fbuf.set stack !sp (Fbuf.get env (env_off + arg));
        incr sp
    | 6 (* neg *) -> Fbuf.set stack (!sp - 1) (-.Fbuf.get stack (!sp - 1))
    | 7 (* exp *) -> Fbuf.set stack (!sp - 1) (exp (Fbuf.get stack (!sp - 1)))
    | 8 (* log *) -> Fbuf.set stack (!sp - 1) (log (Fbuf.get stack (!sp - 1)))
    | 9 (* ratpoly *) ->
        (* Horner for p then q, written as two flat loops: a local
           [horner] closure here would be allocated (and box x) on every
           ratpoly op *)
        let x = Fbuf.get stack (!sp - 1) in
        let pc = Array.unsafe_get p.ratp arg in
        let accp = ref 0.0 in
        for i = Array.length pc - 1 downto 0 do
          accp := (!accp *. x) +. Array.unsafe_get pc i
        done;
        let qc = Array.unsafe_get p.ratq arg in
        let accq = ref 0.0 in
        for i = Array.length qc - 1 downto 0 do
          accq := (!accq *. x) +. Array.unsafe_get qc i
        done;
        Fbuf.set stack (!sp - 1) (!accp /. !accq)
    | op (* binary *) ->
        let b = Fbuf.get stack (!sp - 1) in
        let a = Fbuf.get stack (!sp - 2) in
        decr sp;
        Fbuf.set stack (!sp - 1)
          (match op with
          | 2 -> a +. b
          | 3 -> a -. b
          | 4 -> a *. b
          | _ -> a /. b)
  done

(** Execute a compiled program. [env]/[stack] are flat buffers with base
    offsets, so one shared buffer can hold a slot per pool chunk; the
    stack slot must be at least [program_depth] wide. Allocation-free
    except for the boxed return — hot loops want {!exec_program_into}. *)
let exec_program p ~env ~env_off ~stack ~stack_off =
  exec_core p ~env ~env_off ~stack ~stack_off;
  Icoe_util.Fbuf.get stack stack_off

(** Like {!exec_program}, but the result is written to [out.(out_off)]
    instead of returned: a float returned across a module boundary is
    boxed (no cross-module inlining without flambda), which at one call
    per cell per derivative is most of a reaction sweep's garbage. *)
let exec_program_into p ~env ~env_off ~stack ~stack_off
    ~(out : Icoe_util.Fbuf.t) ~out_off =
  exec_core p ~env ~env_off ~stack ~stack_off;
  Icoe_util.Fbuf.set out out_off (Icoe_util.Fbuf.get stack stack_off)
