(** A compact exp-heavy ionic membrane model, expressed through Melodee.

    Structure follows the paper's description of Cardioid reaction kernels:
    embarrassingly parallel, compute-bound, dense with math-function calls.
    The model is Hodgkin-Huxley shaped with the minimal ingredients of a
    real action potential: an instantly-activating, h-inactivated fast
    inward current, a slowly activating outward (K-like) current, a gated
    slow leak, and a fixed anchoring leak.

    State vector layout: [ v; h; n; w ], input appended: [ istim ]. *)

let n_state = 4
let iv = 0
let ih = 1
let in_ = 2
let iw = 3
let istim_idx = 4

let v_rest = -84.0

(* membrane parameters *)
let g_fast = 12.0
let e_fast = 50.0
let g_k = 4.0
let e_k = -85.0
let g_wleak = 0.5
let e_wleak = -80.0
let g_leak = 1.0
let e_leak = -85.0

(* physiological voltage range the rate fits must cover *)
let v_range = (-95.0, 55.0)

open Melodee

(* closed-form rate functions (used both to build exact ASTs and as fit
   targets for the rational variants) *)
let sigmoid_fn ~vh ~s v = 1.0 /. (1.0 +. exp (-.(v -. vh) /. s))
let bell_fn ~tmin ~tamp ~vp ~w v =
  tmin +. (tamp *. exp (-.(((v -. vp) /. w) ** 2.0)))

let m_inf = sigmoid_fn ~vh:(-40.0) ~s:6.0
let h_inf = sigmoid_fn ~vh:(-70.0) ~s:(-7.0) (* closes on depolarization *)
let n_inf = sigmoid_fn ~vh:(-25.0) ~s:8.0
let w_inf = sigmoid_fn ~vh:(-60.0) ~s:10.0
let tau_h = bell_fn ~tmin:1.0 ~tamp:8.0 ~vp:(-75.0) ~w:20.0
let tau_n = bell_fn ~tmin:25.0 ~tamp:80.0 ~vp:(-30.0) ~w:30.0
let tau_w = bell_fn ~tmin:60.0 ~tamp:200.0 ~vp:(-60.0) ~w:40.0

(* exact Melodee subtrees for the rates *)
let sigmoid_ast ~vh ~s v =
  Div (Const 1.0, Add (Const 1.0, Exp (Neg (Div (Sub (v, Const vh), Const s)))))

let bell_ast ~tmin ~tamp ~vp ~w v =
  let z = Div (Sub (v, Const vp), Const w) in
  Add (Const tmin, Mul (Const tamp, Exp (Neg (Mul (z, z)))))

(** A reaction-kernel variant: how the rate functions are realized.
    [Libm] evaluates the exact exp-based expressions; [Rational] replaces
    each rate function with a fitted rational polynomial whose coefficients
    live in memory; [Rational_folded] additionally bakes the coefficients
    in as compile-time constants (same flops, no coefficient loads). *)
type variant = Libm | Rational | Rational_folded

let variant_name = function
  | Libm -> "libm"
  | Rational -> "rational"
  | Rational_folded -> "rational+const"

(* build the 4 derivative expressions with a rate-expression factory *)
let build_exprs ~rate =
  let v = Var iv in
  let minf = rate m_inf v in
  let hinf = rate h_inf v in
  let ninf = rate n_inf v in
  let winf = rate w_inf v in
  let tauh = rate tau_h v in
  let taun = rate tau_n v in
  let tauw = rate tau_w v in
  let i_fast =
    Mul (Mul (Mul (Const g_fast, minf), Var ih), Sub (v, Const e_fast))
  in
  let i_k = Mul (Mul (Const g_k, Var in_), Sub (v, Const e_k)) in
  let i_w = Mul (Mul (Const g_wleak, Var iw), Sub (v, Const e_wleak)) in
  let i_l = Mul (Const g_leak, Sub (v, Const e_leak)) in
  let itotal = Add (Add (i_fast, i_k), Add (i_w, i_l)) in
  let dv = Add (Neg itotal, Var istim_idx) in
  let dh = Div (Sub (hinf, Var ih), tauh) in
  let dn = Div (Sub (ninf, Var in_), taun) in
  let dw = Div (Sub (winf, Var iw), tauw) in
  [ dv; dh; dn; dw ]

let variant_exprs variant =
  let lo, hi = v_range in
  match variant with
  | Libm ->
      (* exact expressions; reconstruct the AST form of each rate *)
      let rate f v =
        if f == m_inf then sigmoid_ast ~vh:(-40.0) ~s:6.0 v
        else if f == h_inf then sigmoid_ast ~vh:(-70.0) ~s:(-7.0) v
        else if f == n_inf then sigmoid_ast ~vh:(-25.0) ~s:8.0 v
        else if f == w_inf then sigmoid_ast ~vh:(-60.0) ~s:10.0 v
        else if f == tau_h then bell_ast ~tmin:1.0 ~tamp:8.0 ~vp:(-75.0) ~w:20.0 v
        else if f == tau_n then bell_ast ~tmin:25.0 ~tamp:80.0 ~vp:(-30.0) ~w:30.0 v
        else bell_ast ~tmin:60.0 ~tamp:200.0 ~vp:(-60.0) ~w:40.0 v
      in
      build_exprs ~rate
  | Rational | Rational_folded ->
      let rate f v = fit_function ~lo ~hi ~np:6 ~nq:6 f v in
      List.map constant_fold (build_exprs ~rate)

(** Compiled derivative function: state+input array -> derivative array. *)
let compile_variant variant =
  let fns = Array.of_list (List.map compile (variant_exprs variant)) in
  fun env -> Array.map (fun f -> f env) fns

(** The zero-alloc kernel form: one stack program per derivative
    component, plus the widest stack any of them needs. *)
type kernel = { progs : Melodee.program array; depth : int }

let compile_kernel variant =
  let progs =
    Array.of_list (List.map Melodee.compile_program (variant_exprs variant))
  in
  let depth =
    Array.fold_left (fun m p -> max m (Melodee.program_depth p)) 1 progs
  in
  { progs; depth }

(** Per-cell per-step flop cost of a variant. [expensive_flops] models the
    price of a double-precision exp on the target. *)
let variant_flops ?(expensive_flops = 50.0) variant =
  List.fold_left
    (fun acc e -> acc +. eval_cost ~expensive_flops e)
    0.0 (variant_exprs variant)

(** Per-cell per-step memory loads (the compile-time-constants win). *)
let variant_loads variant =
  let folded = variant = Rational_folded in
  List.fold_left
    (fun acc e -> acc + load_count ~folded e)
    0 (variant_exprs variant)

(** Initial state at rest (gates at steady state for v_rest). *)
let initial_state () =
  let env = Array.make (n_state + 1) 0.0 in
  env.(iv) <- v_rest;
  env.(ih) <- h_inf v_rest;
  env.(in_) <- n_inf v_rest;
  env.(iw) <- w_inf v_rest;
  env

(** Integrate a single cell with forward Euler at [dt] (ms) for [steps],
    applying [stim] during the first [stim_steps]. Returns the voltage
    trace. *)
let single_cell_trace ?(dt = 0.02) ?(steps = 20_000) ?(stim = 40.0)
    ?(stim_steps = 100) deriv =
  let env = initial_state () in
  let trace = Array.make steps 0.0 in
  for s = 0 to steps - 1 do
    env.(istim_idx) <- (if s < stim_steps then stim else 0.0);
    let d = deriv env in
    for k = 0 to n_state - 1 do
      env.(k) <- env.(k) +. (dt *. d.(k))
    done;
    trace.(s) <- env.(iv)
  done;
  trace
