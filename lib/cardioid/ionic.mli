(** A compact exp-heavy ionic membrane model, expressed through Melodee:
    an instantly-activating, h-inactivated fast inward current, a slowly
    activating outward (K-like) current, a gated slow leak, and a fixed
    anchoring leak. State vector: [v; h; n; w], input appended: [istim]. *)

val n_state : int
val iv : int
val ih : int
val in_ : int
val iw : int
val istim_idx : int
val v_rest : float

val v_range : float * float
(** Physiological voltage range the rate fits must cover. *)

val m_inf : float -> float
val h_inf : float -> float
val n_inf : float -> float
val w_inf : float -> float
val tau_h : float -> float
val tau_n : float -> float
val tau_w : float -> float

(** How the rate functions are realized: exact libm expressions, fitted
    rational polynomials (coefficients in memory), or rational polynomials
    with compile-time-constant coefficients (no coefficient loads). *)
type variant = Libm | Rational | Rational_folded

val variant_name : variant -> string

val variant_exprs : variant -> Melodee.expr list
(** Melodee trees for [dv; dh; dn; dw]. *)

val compile_variant : variant -> float array -> float array
(** Compiled derivative function over the state+input vector (boxed
    closure-tree form — allocates per call; retained as the correctness
    oracle for {!compile_kernel}). *)

type kernel = {
  progs : Melodee.program array;  (** one program per state derivative *)
  depth : int;  (** widest stack any program needs *)
}

val compile_kernel : variant -> kernel
(** The zero-alloc form of {!compile_variant}: stack programs executed
    over preallocated buffers, bit-identical to the closure tree. *)

val variant_flops : ?expensive_flops:float -> variant -> float
val variant_loads : variant -> int

val initial_state : unit -> float array
(** Rest state with gates at steady state. *)

val single_cell_trace :
  ?dt:float -> ?steps:int -> ?stim:float -> ?stim_steps:int ->
  (float array -> float array) -> float array
(** Forward-Euler single-cell integration; returns the voltage trace
    (stimulated action potential by default). *)
