(** The Cardioid monodomain solver: reaction-diffusion on a 2D tissue
    grid with operator splitting. Diffusion is the memory-bound 5-point
    stencil; reaction is the compute-bound per-cell ionic update. The
    Sec 4.1 placement study is first-class. *)

type placement =
  | All_gpu
  | All_cpu
  | Split_cpu_gpu
      (** diffusion on the CPU, reaction on the GPU: the voltage field
          crosses the link twice per step — measured and rejected by the
          paper's team *)

val placement_name : placement -> string

type t = {
  nx : int;
  ny : int;
  dx : float;
  sigma : float;
  dt : float;
  state : float array array;
  v : float array;
  scratch : float array;
  deriv : float array -> float array;
}

val create :
  ?nx:int -> ?ny:int -> ?dx:float -> ?sigma:float -> ?dt:float ->
  ?variant:Ionic.variant -> unit -> t

val idx : t -> int -> int -> int

val stimulate : t -> ilo:int -> ihi:int -> jlo:int -> jhi:int -> amplitude:float -> unit
val clear_stimulus : t -> unit

val reaction_step : t -> unit
(** Cell-parallel on the {!Icoe_par.Pool}; bit-identical to
    {!reaction_step_seq} for any pool size (disjoint per-cell writes). *)

val reaction_step_seq : t -> unit
(** Serial reference path for the reaction half-step. *)

val diffusion_step : t -> unit
(** Row-parallel stencil into the scratch field, then a blit back. *)

val step : t -> unit
val run : t -> steps:int -> unit

type snapshot
(** Full tissue state: per-cell ionic state plus the voltage field. *)

val snapshot : t -> snapshot
(** Deep copy of the mutable state, for checkpoint/restart
    ({!Icoe_fault.Checkpoint}). *)

val restore : t -> snapshot -> unit
(** Restore a snapshot taken from the same solver; stepping after a
    restore replays bit-identically. *)

val activated : t -> i:int -> j:int -> bool
(** Voltage above -20 mV (the excitation wavefront marker). *)

val time_per_step : ?variant:Ionic.variant -> cells:int -> placement -> float
(** Simulated seconds per step under a placement (the Sec 4.1 study). *)
