(** The Cardioid monodomain solver: reaction-diffusion on a 2D tissue
    grid with operator splitting. Diffusion is the memory-bound 5-point
    stencil; reaction is the compute-bound per-cell ionic update. The
    Sec 4.1 placement study is first-class.

    Hot state is SoA: the ionic state lives in one flat component-major
    {!Icoe_util.Fbuf} (plane [c] at [c*n + k]), the voltage field in
    another, and the reaction evaluates the stack-program kernel over
    per-chunk scratch slots from a {!Prog.Scratch} arena — steady-state
    steps allocate nothing, and results are bit-identical to the
    retained closure-tree reference. *)

type placement =
  | All_gpu
  | All_cpu
  | Split_cpu_gpu
      (** diffusion on the CPU, reaction on the GPU: the voltage field
          crosses the link twice per step — measured and rejected by the
          paper's team *)

val placement_name : placement -> string

val n_planes : int
(** State planes per cell: the {!Ionic.n_state} ionic variables plus
    the stimulus current. *)

type t = {
  nx : int;
  ny : int;
  n : int;  (** nx * ny *)
  dx : float;
  sigma : float;
  dt : float;
  state : Icoe_util.Fbuf.t;
      (** component-major ionic state: plane [c] at [c*n + k] *)
  v : Icoe_util.Fbuf.t;
  scratch : Icoe_util.Fbuf.t;
  kernel : Ionic.kernel;
  deriv : float array -> float array;
      (** boxed closure-tree derivative, the correctness oracle *)
  arena : Prog.Scratch.t;
}

val create :
  ?nx:int -> ?ny:int -> ?dx:float -> ?sigma:float -> ?dt:float ->
  ?variant:Ionic.variant -> unit -> t

val idx : t -> int -> int -> int

val stimulate : t -> ilo:int -> ihi:int -> jlo:int -> jhi:int -> amplitude:float -> unit
val clear_stimulus : t -> unit

val reaction_step : t -> unit
(** Chunk-parallel on the {!Icoe_par.Pool}; allocation-free in steady
    state and bit-identical to {!reaction_step_seq} and
    {!reaction_step_ref} for any pool size (disjoint per-cell writes,
    per-chunk scratch slots). *)

val reaction_step_seq : t -> unit
(** Serial reference path: the same chunk layout walked in order in the
    calling domain. *)

val reaction_step_ref : t -> unit
(** Boxed closure-tree reference retained from the row-per-cell layout;
    allocates per cell — correctness oracle only. *)

val diffusion_step : t -> unit
(** Row-parallel stencil into the scratch field, then a blit back. *)

val step : t -> unit
val run : t -> steps:int -> unit

type snapshot
(** Full tissue state: the ionic state planes plus the voltage field. *)

val snapshot : t -> snapshot
(** Deep copy of the mutable state, for checkpoint/restart
    ({!Icoe_fault.Checkpoint}). *)

val restore : t -> snapshot -> unit
(** Restore a snapshot taken from the same solver; stepping after a
    restore replays bit-identically. *)

val activated : t -> i:int -> j:int -> bool
(** Voltage above -20 mV (the excitation wavefront marker). *)

val time_per_step : ?variant:Ionic.variant -> cells:int -> placement -> float
(** Simulated seconds per step under a placement (the Sec 4.1 study). *)
