(** Melodee: Cardioid's reaction-kernel DSL.

    The paper's pipeline (Sec 4.1): take the ionic-model equations as an
    expression tree, (1) replace expensive math functions with run-time
    rational polynomials, (2) optionally instantiate run-time coefficients
    as compile-time constants, and (3) "JIT" the result — here, compile
    the tree to an OCaml closure. The op-count report drives the device
    pricing of each variant. *)

type expr =
  | Const of float
  | Var of int  (** index into the state/input vector *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Exp of expr
  | Log of expr
  | Ratpoly of float array * float array * expr
      (** p(x)/q(x) with coefficient arrays, lowest degree first *)

val eval : float array -> expr -> float

val op_count : expr -> int * int
(** (cheap flops, expensive math calls). Rational polynomials count as
    cheap flops only — that is the whole point. *)

val constant_fold : expr -> expr
(** Evaluate constant subtrees at "compile time" (the paper's run-time
    coefficients -> compile-time constants lesson as a pass). *)

val rational_fit :
  lo:float -> hi:float -> np:int -> nq:int -> (float -> float)
  -> float array * float array
(** Least-squares rational fit p/q ~ f on [lo, hi], q(0) = 1. *)

val replace_exp : lo:float -> hi:float -> expr -> expr
(** Replace each [Exp] node with a rational approximation valid while its
    argument stays in [lo, hi]. *)

val compile : expr -> float array -> float
(** Compile the tree to a closure — the NVRTC analog. *)

val eval_cost : ?expensive_flops:float -> expr -> float
(** Priced flops of one evaluation; an expensive call defaults to 50
    flops (a double-precision exp on GPUs). *)

val load_count : ?folded:bool -> expr -> int
(** Memory loads per evaluation; [folded] drops rational-polynomial
    coefficient loads (compile-time constants). *)

val fit_function :
  lo:float -> hi:float -> ?np:int -> ?nq:int -> (float -> float) -> expr -> expr
(** Fit an arbitrary bounded function and return the replacement applied
    to an argument expression — the DSL's core move (Cardioid fits whole
    rate expressions, which are bounded and smooth). *)

(** {2 Zero-alloc program form}

    {!compile} returns a closure tree whose evaluation boxes a float per
    node per call — fine for single-cell traces, fatal for a per-cell
    hot loop. {!compile_program} lowers the same tree to a postfix
    instruction array executed over a caller-provided stack buffer: the
    same floating-point operations in the same order (bit-identical
    results), with zero allocation per evaluation. *)

type program = {
  ops : int array;
  opargs : int array;
  consts : float array;
  ratp : float array array;
  ratq : float array array;
  depth : int;
}

val compile_program : expr -> program

val program_depth : program -> int
(** Maximum operand-stack depth one evaluation needs. *)

val exec_program :
  program -> env:Icoe_util.Fbuf.t -> env_off:int ->
  stack:Icoe_util.Fbuf.t -> stack_off:int -> float
(** Evaluate over flat buffers with base offsets ([Var i] reads
    [env.{env_off + i}]; intermediates live in
    [stack.{stack_off ...}], at least {!program_depth} slots).
    Bit-identical to evaluating the {!compile} closure of the same
    expression. The interpreter allocates nothing, but the returned
    float is boxed at the call site — hot loops want
    {!exec_program_into}. *)

val exec_program_into :
  program -> env:Icoe_util.Fbuf.t -> env_off:int ->
  stack:Icoe_util.Fbuf.t -> stack_off:int ->
  out:Icoe_util.Fbuf.t -> out_off:int -> unit
(** {!exec_program} with the result written to [out.{out_off}] instead
    of returned: no boxed-float return, so a steady-state caller
    allocates nothing at all. *)
