(** Distributed-training algorithms (Sec 4.5): synchronous SGD, ASGD with
    a parameter server and gradient staleness, and the team's K-step
    averaging (KAVG [34]). All three run the real optimization on real
    data; the simulated communication model prices their wall-clock so
    loss-versus-time comparisons are possible. *)

type dataset = { xs : float array array; labels : int array }

(** Synthetic classification task: Gaussian class clusters. *)
let make_task ~(rng : Icoe_util.Rng.t) ?(classes = 4) ?(dim = 12) ?(n = 600)
    ?(spread = 1.2) () =
  let centers =
    Array.init classes (fun _ ->
        Array.init dim (fun _ -> Icoe_util.Rng.uniform rng (-2.0) 2.0))
  in
  let xs = Array.make n [||] and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = Icoe_util.Rng.int rng classes in
    labels.(i) <- c;
    xs.(i) <-
      Array.init dim (fun d ->
          centers.(c).(d) +. (spread *. Icoe_util.Rng.gaussian rng))
  done;
  { xs; labels }

let shard ~learners (d : dataset) =
  Array.init learners (fun l ->
      let n = Array.length d.xs in
      let lo = n * l / learners and hi = n * (l + 1) / learners in
      {
        xs = Array.sub d.xs lo (hi - lo);
        labels = Array.sub d.labels lo (hi - lo);
      })

let minibatch ~(rng : Icoe_util.Rng.t) ~batch (d : dataset) =
  let n = Array.length d.xs in
  let idx = Array.init batch (fun _ -> Icoe_util.Rng.int rng n) in
  (Array.map (fun i -> d.xs.(i)) idx, Array.map (fun i -> d.labels.(i)) idx)

(* communication model: allreduce of p parameters across l learners over
   NVLink/IB, and a parameter-server round trip. Without a [topology]
   the flat dual-rail EDR expression is kept verbatim; with one, the
   recursive-doubling rounds are priced at the switch levels their pair
   distances cross under the given placement. *)
let allreduce_time ?topology ?(placement = Hwsim.Topology.Contiguous) ~params
    ~learners () =
  let bytes = 8.0 *. float_of_int params in
  match topology with
  | None ->
      let rounds = Float.ceil (Float.log2 (float_of_int (max 2 learners))) in
      rounds *. Hwsim.Link.transfer_time Hwsim.Link.ib_dual_edr ~bytes
  | Some topo ->
      Hwsim.Topology.allreduce_time topo ~nodes:learners ~placement ~bytes

let ps_roundtrip_time ~params =
  2.0 *. Hwsim.Link.transfer_time Hwsim.Link.ib_dual_edr ~bytes:(8.0 *. float_of_int params)

let device_compute_time_per_batch (device : Hwsim.Device.t) ~params ~batch =
  (* forward+backward ~ 6 flops per parameter per example, at 30% of the
     accelerator's peak *)
  6.0 *. float_of_int (params * batch)
  /. (device.Hwsim.Device.peak_gflops *. 1e9 *. 0.3)

let compute_time_per_batch ~params ~batch =
  device_compute_time_per_batch Hwsim.Device.v100 ~params ~batch

let host_compute_time_per_batch (node : Hwsim.Node.t) ~params ~batch =
  (* same flop volume at the node's host sockets — the CPU side of a
     heterogeneous work split *)
  6.0 *. float_of_int (params * batch)
  /. (float_of_int node.Hwsim.Node.cpu_sockets
     *. node.Hwsim.Node.cpu.Hwsim.Device.peak_gflops *. 1e9 *. 0.3)

type run = {
  final_loss : float;
  final_accuracy : float;
  simulated_seconds : float;
  steps : int;
  overlap_efficiency : float;
      (** charged time over serial-sum time, in (0, 1]; 1.0 for the
          algorithms that don't overlap communication *)
}

(* --- overlapped KAVG round model --- *)

(** Parameter count of each MLP layer (weights + biases), input first. *)
let layer_params sizes =
  List.init
    (Array.length sizes - 1)
    (fun i -> (sizes.(i) * sizes.(i + 1)) + sizes.(i + 1))

type round_model = {
  serial_round_s : float;
  overlapped_round_s : float;
  round_s : float;
  round_efficiency : float;
  dag : Icoe_obs.Prof.item array;
}

(** Per-round cost model of KAVG with the weight-average allreduce
    bucketed per layer and overlapped under backprop: the first [k - 1]
    local steps plus the last step's forward pass run as one "gpu"
    item; the last step's backward pass is split per layer (output layer
    first, 2/3 of a step's compute overall); each layer's slice of the
    round's allreduce (proportional to its parameter share — the
    collective's log-depth rounds are already priced in the total, so
    bucketing adds no extra latency) goes on the "net" stream as soon as
    that layer's gradients exist. [serial_round_s] is the exact
    pre-scheduler round expression [k * compute + allreduce]. *)
let kavg_round_model ?overlap ?trace ?topology ?placement ?node
    ?(gpu_frac = 1.0) ?(comm = Hwsim.Split.Dedicated) ~learners ~k ~batch
    sizes =
  Hwsim.Split.validate gpu_frac;
  let lps = layer_params sizes in
  let params = List.fold_left ( + ) 0 lps in
  let compute =
    match Option.bind node (fun (n : Hwsim.Node.t) -> n.Hwsim.Node.gpu) with
    | Some device -> device_compute_time_per_batch device ~params ~batch
    | None -> compute_time_per_batch ~params ~batch
  in
  let host_compute =
    host_compute_time_per_batch
      (Option.value node ~default:Hwsim.Node.witherspoon)
      ~params ~batch
  in
  let ar = allreduce_time ?topology ?placement ~params ~learners () in
  let net_device =
    match topology with
    | None -> Hwsim.Link.ib_dual_edr.Hwsim.Link.name
    | Some topo -> (Hwsim.Topology.leaf_link topo).Hwsim.Link.name
  in
  let serial_round_s =
    (gpu_frac *. (float_of_int k *. compute))
    +. ((1.0 -. gpu_frac) *. (float_of_int k *. host_compute))
    +. ar
  in
  let sched = Hwsim.Sched.create ?overlap ?trace () in
  let head =
    Hwsim.Split.co_work sched ~gpu_stream:"gpu" ~cpu_stream:"cpu"
      ~phase:"local-sgd"
      ~gpu_s:((float_of_int (k - 1) *. compute) +. (compute /. 3.0))
      ~cpu_s:((float_of_int (k - 1) *. host_compute) +. (host_compute /. 3.0))
      gpu_frac
  in
  let pf = float_of_int params in
  let prev = ref head in
  List.iter
    (fun p ->
      let frac = float_of_int p /. pf in
      let b =
        Hwsim.Split.co_work sched ~gpu_stream:"gpu" ~cpu_stream:"cpu"
          ~deps:!prev ~phase:"backprop"
          ~gpu_s:(2.0 /. 3.0 *. compute *. frac)
          ~cpu_s:(2.0 /. 3.0 *. host_compute *. frac)
          gpu_frac
      in
      ignore
        (Hwsim.Sched.work sched
           ~stream:
             (match comm with Hwsim.Split.Dedicated -> "net" | Inline -> "gpu")
           ~deps:b ~device:net_device ~phase:"allreduce" (ar *. frac));
      prev := b)
    (List.rev lps);
  let overlapped_round_s = Hwsim.Sched.run sched in
  let round_s =
    if Hwsim.Sched.overlap sched then overlapped_round_s else serial_round_s
  in
  let round_efficiency =
    if Hwsim.Sched.overlap sched && serial_round_s > 0.0 then
      overlapped_round_s /. serial_round_s
    else 1.0
  in
  {
    serial_round_s;
    overlapped_round_s;
    round_s;
    round_efficiency;
    dag = Hwsim.Sched.dag sched;
  }

(** Synchronous data-parallel SGD: every step all learners' gradients are
    averaged (modelled by training on the concatenated batch) and an
    allreduce is paid. *)
let sync_sgd ~(rng : Icoe_util.Rng.t) ~learners ~steps ~batch ~lr sizes data =
  let m = Mlp.create ~rng sizes in
  let params = Mlp.num_params m in
  let t = ref 0.0 in
  for _ = 1 to steps do
    (* each learner contributes a batch; gradients averaged = one big batch *)
    let xs, ls = minibatch ~rng ~batch:(batch * learners) data in
    ignore (Mlp.train_batch m ~lr xs ls);
    t := !t +. compute_time_per_batch ~params ~batch
         +. allreduce_time ~params ~learners ()
  done;
  {
    final_loss = Mlp.eval_loss m data.xs data.labels;
    final_accuracy = Mlp.accuracy m data.xs data.labels;
    simulated_seconds = !t;
    steps;
    overlap_efficiency = 1.0;
  }

(** ASGD: learners pull weights from a parameter server, compute a
    gradient, and push it back. By the time a gradient is applied it is
    [staleness] updates old (round-robin model). Stale gradients force a
    small stable learning rate — the paper's core criticism. *)
let asgd ~(rng : Icoe_util.Rng.t) ~learners ~steps ~batch ~lr ~staleness sizes data =
  let server = Mlp.create ~rng sizes in
  let params = Mlp.num_params server in
  (* history of recent parameter snapshots for staleness *)
  let history = Queue.create () in
  Queue.push (Mlp.get_params server) history;
  let worker = Mlp.clone server in
  let t = ref 0.0 in
  for _ = 1 to steps do
    (* gradient computed at stale parameters *)
    let snapshot =
      let arr = Array.of_seq (Queue.to_seq history) in
      let age = min (Array.length arr - 1) staleness in
      arr.(Array.length arr - 1 - age)
    in
    Mlp.set_params worker snapshot;
    let xs, ls = minibatch ~rng ~batch data in
    Array.iteri (fun k x -> ignore (Mlp.backward worker x ~label:ls.(k))) xs;
    (* apply the stale gradient at the server *)
    let sp = Mlp.get_params server in
    Mlp.set_params server sp;
    (* copy worker grads into server by replaying the sgd step on server
       weights: transplant gradient buffers *)
    Array.iteri
      (fun li lay ->
        let slay = server.Mlp.layers.(li) in
        Array.iteri (fun o row -> Array.blit row 0 slay.Mlp.gw.(o) 0 (Array.length row)) lay.Mlp.gw;
        Array.blit lay.Mlp.gb 0 slay.Mlp.gb 0 (Array.length lay.Mlp.gb))
      worker.Mlp.layers;
    Mlp.zero_grads worker;
    Mlp.sgd_step server ~lr ~batch;
    Queue.push (Mlp.get_params server) history;
    if Queue.length history > staleness + 2 then ignore (Queue.pop history);
    (* learners overlap compute; server applies sequentially *)
    t := !t +. (compute_time_per_batch ~params ~batch /. float_of_int learners)
         +. ps_roundtrip_time ~params
  done;
  {
    final_loss = Mlp.eval_loss server data.xs data.labels;
    final_accuracy = Mlp.accuracy server data.xs data.labels;
    simulated_seconds = !t;
    steps;
    overlap_efficiency = 1.0;
  }

(** EASGD [33]: learners run local SGD but are elastically pulled toward
    a centre variable, which in turn moves toward the learners' average:

        x_i <- x_i - lr grad_i - alpha (x_i - c)
        c   <- c + alpha sum_i (x_i - c) / learners

    Communication per round is the same as KAVG's allreduce; the elastic
    coupling is what distinguishes the dynamics. *)
let easgd ~(rng : Icoe_util.Rng.t) ~learners ~rounds ~k ~batch ~lr
    ?(alpha = 0.3) sizes data =
  let center = Mlp.create ~rng sizes in
  let params = Mlp.num_params center in
  let shards = shard ~learners data in
  let workers = Array.map (fun _ -> Mlp.clone center) shards in
  let t = ref 0.0 in
  for _ = 1 to rounds do
    let c = Mlp.get_params center in
    let drift = Array.make params 0.0 in
    Array.iteri
      (fun wi sh ->
        let w = workers.(wi) in
        for _ = 1 to k do
          let xs, ls = minibatch ~rng ~batch sh in
          ignore (Mlp.train_batch w ~lr xs ls)
        done;
        (* elastic pull toward the centre *)
        let p = Mlp.get_params w in
        for j = 0 to params - 1 do
          let d = p.(j) -. c.(j) in
          p.(j) <- p.(j) -. (alpha *. d);
          drift.(j) <- drift.(j) +. d
        done;
        Mlp.set_params w p)
      shards;
    for j = 0 to params - 1 do
      c.(j) <- c.(j) +. (alpha *. drift.(j) /. float_of_int learners)
    done;
    Mlp.set_params center c;
    t := !t
         +. (float_of_int k *. compute_time_per_batch ~params ~batch)
         +. allreduce_time ~params ~learners ()
  done;
  {
    final_loss = Mlp.eval_loss center data.xs data.labels;
    final_accuracy = Mlp.accuracy center data.xs data.labels;
    simulated_seconds = !t;
    steps = rounds * k;
    overlap_efficiency = 1.0;
  }

(** KAVG: learners start from common weights, run [k] local SGD steps on
    their own shard, then average weights; bulk-synchronous. With
    overlap enabled the per-round wall clock comes from
    {!kavg_round_model}: the averaging allreduce is bucketed per layer
    and hidden under the last local step's backward pass. *)
let kavg ~(rng : Icoe_util.Rng.t) ~learners ~rounds ~k ~batch ~lr ?overlap
    sizes data =
  let center = Mlp.create ~rng sizes in
  let params = Mlp.num_params center in
  let shards = shard ~learners data in
  let overlapped =
    match overlap with Some b -> b | None -> Hwsim.Sched.overlap_enabled ()
  in
  let model = kavg_round_model ~overlap:overlapped ~learners ~k ~batch sizes in
  let t = ref 0.0 in
  for _ = 1 to rounds do
    let start = Mlp.get_params center in
    let acc = Array.make params 0.0 in
    Array.iter
      (fun sh ->
        let w = Mlp.clone center in
        Mlp.set_params w start;
        for _ = 1 to k do
          let xs, ls = minibatch ~rng ~batch sh in
          ignore (Mlp.train_batch w ~lr xs ls)
        done;
        let p = Mlp.get_params w in
        Linalg.Vec.axpy 1.0 p acc)
      shards;
    Linalg.Vec.scale (1.0 /. float_of_int learners) acc;
    Mlp.set_params center acc;
    (* learners run in parallel: k local steps + one allreduce per round
       (hidden under the last backward pass when overlapped) *)
    if overlapped then t := !t +. model.round_s
    else
      t := !t
           +. (float_of_int k *. compute_time_per_batch ~params ~batch)
           +. allreduce_time ~params ~learners ()
  done;
  {
    final_loss = Mlp.eval_loss center data.xs data.labels;
    final_accuracy = Mlp.accuracy center data.xs data.labels;
    simulated_seconds = !t;
    steps = rounds * k;
    overlap_efficiency = model.round_efficiency;
  }
