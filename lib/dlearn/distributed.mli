(** Distributed-training algorithms (Sec 4.5): synchronous SGD, ASGD with
    parameter-server staleness, EASGD, and the team's K-step averaging
    (KAVG [34]). All run the real optimization on real data; the
    simulated communication model prices their wall clock. *)

type dataset = { xs : float array array; labels : int array }

val make_task :
  rng:Icoe_util.Rng.t -> ?classes:int -> ?dim:int -> ?n:int -> ?spread:float ->
  unit -> dataset
(** Gaussian class-cluster classification task. *)

val shard : learners:int -> dataset -> dataset array
val minibatch : rng:Icoe_util.Rng.t -> batch:int -> dataset -> float array array * int array

val allreduce_time :
  ?topology:Hwsim.Topology.t -> ?placement:Hwsim.Topology.placement ->
  params:int -> learners:int -> unit -> float
(** Recursive-doubling allreduce of the parameter buffer. Without a
    [topology] the flat dual-rail EDR pricing is kept verbatim; with
    one, each round is priced at the switch level its pair distance
    crosses under [placement] (default [Contiguous]). *)

val ps_roundtrip_time : params:int -> float

val device_compute_time_per_batch :
  Hwsim.Device.t -> params:int -> batch:int -> float
(** Forward+backward at ~6 flops per parameter per example, at 30% of
    the given accelerator's peak. *)

val compute_time_per_batch : params:int -> batch:int -> float
(** [device_compute_time_per_batch Hwsim.Device.v100]. *)

val host_compute_time_per_batch :
  Hwsim.Node.t -> params:int -> batch:int -> float
(** The same batch priced at the node's host sockets — the CPU side of
    a heterogeneous work split ({!Hwsim.Split}). *)

type run = {
  final_loss : float;
  final_accuracy : float;
  simulated_seconds : float;
  steps : int;
  overlap_efficiency : float;
      (** charged time over serial-sum time, in (0, 1]; 1.0 for the
          algorithms that don't overlap communication *)
}

val layer_params : int array -> int list
(** Parameter count of each MLP layer (weights + biases), input first;
    sums to {!Mlp.num_params}. *)

type round_model = {
  serial_round_s : float;
      (** the exact pre-scheduler round cost, [k * compute + allreduce] *)
  overlapped_round_s : float;
      (** critical path with each layer's allreduce slice on the "net"
          stream under the last local step's per-layer backward pass *)
  round_s : float;  (** the charged per-round time: overlapped or serial *)
  round_efficiency : float;  (** [overlapped /. serial] (1.0 when serial) *)
  dag : Icoe_obs.Prof.item array;
      (** the scheduled backprop/allreduce DAG, ready for
          {!Icoe_obs.Prof.analyze} critical-path blame *)
}

val kavg_round_model :
  ?overlap:bool -> ?trace:Hwsim.Trace.t -> ?topology:Hwsim.Topology.t ->
  ?placement:Hwsim.Topology.placement -> ?node:Hwsim.Node.t ->
  ?gpu_frac:float -> ?comm:Hwsim.Split.comm -> learners:int -> k:int ->
  batch:int -> int array -> round_model
(** Per-round KAVG cost model: the round's allreduce is bucketed per
    layer (proportional to parameter share, no extra per-bucket latency)
    and issued as soon as that layer's gradients exist. [overlap]
    defaults to {!Hwsim.Sched.overlap_enabled}; a bound [trace] receives
    one round's items. [topology]/[placement] price the allreduce across
    switch levels (see {!allreduce_time}); omitting them keeps the flat
    dual-rail EDR model bit-identically.

    [node] prices compute at that node's GPU (V100 when absent or
    GPU-less) and host sockets; [gpu_frac] (default 1.0) splits the
    local-SGD head and each per-layer backprop slice between the "gpu"
    stream and a co-executing "cpu" stream; [comm] keeps the allreduce
    slices on their own "net" stream ([Dedicated], the default) or
    issues them inline on the compute stream. At the defaults the model
    is bit-identical to the pre-split one. *)

val sync_sgd :
  rng:Icoe_util.Rng.t -> learners:int -> steps:int -> batch:int -> lr:float ->
  int array -> dataset -> run
(** Bulk-synchronous data parallelism: one allreduce per step. *)

val asgd :
  rng:Icoe_util.Rng.t -> learners:int -> steps:int -> batch:int -> lr:float ->
  staleness:int -> int array -> dataset -> run
(** Parameter-server ASGD; gradients are applied [staleness] updates late
    (round-robin model) — the practical pathology the paper describes. *)

val easgd :
  rng:Icoe_util.Rng.t -> learners:int -> rounds:int -> k:int -> batch:int ->
  lr:float -> ?alpha:float -> int array -> dataset -> run
(** Elastic averaging SGD [33]. *)

val kavg :
  rng:Icoe_util.Rng.t -> learners:int -> rounds:int -> k:int -> batch:int ->
  lr:float -> ?overlap:bool -> int array -> dataset -> run
(** K-step averaging: k local steps then a weight average;
    bulk-synchronous with k-fold less communication. The round clock
    comes from {!kavg_round_model}; with overlap on, the average's
    allreduce hides under the last local step's backprop. *)
