(** The Opt activity's job-scheduler simulator (Sec 4.7): thousands of
    small, variable-duration GPU jobs from a topology-optimization
    workflow, scheduled onto a GPU pool under different policies.

    The two paper conclusions reproduced: with distribution-driven
    arrivals, throttle the arrival rate below aggregate capacity or the
    queue grows without bound; with batch arrivals, use SJF with a quota
    to raise utilization while bounding long-job starvation. *)

type job = { id : int; arrival : float; duration : float; gpus : int }

type policy =
  | Fcfs  (** strict order; wide jobs block the head of the line *)
  | Fcfs_backfill
      (** EASY backfill: later jobs may jump ahead only if they cannot
          delay the blocked head's earliest start *)
  | Sjf  (** shortest runnable job that fits *)
  | Sjf_quota of float
      (** SJF, but while short jobs wait, long jobs may hold at most this
          fraction of the pool *)

val policy_name : policy -> string

type metrics = {
  makespan : float;
  utilization : float;  (** busy GPU-seconds / (gpus * makespan) *)
  mean_wait : float;
  max_wait : float;
  completed : int;
}

val batch_workload : rng:Icoe_util.Rng.t -> ?n:int -> unit -> job list
(** All jobs present at t = 0; lognormal durations; a third are wide
    (multi-GPU) jobs up to half a 16-GPU pool. *)

val poisson_workload :
  rng:Icoe_util.Rng.t -> rate:float -> horizon:float -> unit -> job list

val capacity : gpus:int -> mean_duration:float -> float
(** Mean processing capacity, jobs/s. *)

val simulate : ?gpus:int -> ?check:bool -> policy -> job list -> metrics
(** Event-driven simulation; jobs wider than the pool are reported as
    incomplete. With [check] (default false), every EASY-backfill
    decision re-derives the blocked head's shadow time with the
    candidate hypothetically running and raises [Invalid_argument] if
    the backfill would delay the head's reservation. *)

val simulate_schedule :
  ?gpus:int -> ?check:bool -> policy -> job list ->
  metrics * (int * float * float) list
(** [simulate] plus the realized schedule: one [(job id, start, finish)]
    per started job, in start order. *)
