(** Heterogeneous work-partitioning auto-tuner — see the mli.

    Everything here is deterministic: the exhaustive sweep visits
    candidates in a fixed order with strict-improvement updates (ties
    keep the earliest), and the annealer draws every random choice from
    one seeded {!Icoe_util.Rng} stream. The paper-default candidate is
    evaluated first and used as the incumbent, which is what makes the
    [best <= default] guarantee structural rather than statistical. *)

type candidate = { split : float; comm : Hwsim.Split.comm }
type objective = candidate -> float
type evaluation = { cand : candidate; makespan : float }
type mode = Exhaustive | Anneal of { seed : int; iters : int }

type result = {
  best : evaluation;
  default : evaluation;
  evaluations : int;
  space : int;
  mode : string;
}

let default_candidate = { split = 1.0; comm = Hwsim.Split.Dedicated }

let mode_name = function
  | Exhaustive -> "exhaustive"
  | Anneal { seed; iters } -> Fmt.str "anneal(seed=%d,iters=%d)" seed iters

(* Memoizing evaluator: the annealer revisits states freely and the
   polish walks neighbourhoods, but each distinct candidate is priced
   once. Keyed on the split's bits so the table never compares floats
   structurally. *)
let evaluator obj =
  let memo = Hashtbl.create 64 in
  let count = ref 0 in
  let ev cand =
    let key = (Int64.bits_of_float cand.split, cand.comm) in
    match Hashtbl.find_opt memo key with
    | Some e -> e
    | None ->
        let m = obj cand in
        if Float.is_nan m then
          invalid_arg "Autotune: objective returned NaN";
        incr count;
        let e = { cand; makespan = m } in
        Hashtbl.add memo key e;
        e
  in
  (ev, count)

let prep_splits splits =
  if Array.length splits = 0 then invalid_arg "Autotune: empty split lattice";
  Array.iter Hwsim.Split.validate splits;
  let s = Array.copy splits in
  Array.sort Float.compare s;
  let out = ref [] in
  Array.iter
    (fun v ->
      match !out with
      | last :: _ when Float.equal last v -> ()
      | _ -> out := v :: !out)
    s;
  Array.of_list (List.rev !out)

let better (a : evaluation) (b : evaluation) = a.makespan < b.makespan

(* Fixed sweep order: ascending split, then placement list order. The
   incumbent starts at the already-evaluated default, so only a strict
   improvement can displace it. *)
let run_exhaustive ev default splits comms =
  let best = ref default in
  Array.iter
    (fun split ->
      List.iter
        (fun comm ->
          let e = ev { split; comm } in
          if better e !best then best := e)
        comms)
    splits;
  !best

(* Greedy steepest-descent polish over the lattice neighbourhood
   (split index +-1, any placement flip). The step-model landscapes are
   quasi-convex in the split — the max of a rising GPU chain and a
   falling CPU chain — so this reliably lands the annealer's endpoint
   on the local (= global) minimum. Ties keep the first neighbour in a
   fixed order; evaluations are memoized, so revisits are free. *)
let polish ev splits comms state e0 =
  let n = Array.length splits and m = Array.length comms in
  let eval_state (i, c) = ev { split = splits.(i); comm = comms.(c) } in
  let rec go (i, c) e =
    let neighbours =
      List.filter
        (fun (i', c') -> i' >= 0 && i' < n && not (i' = i && c' = c))
        ([ (i - 1, c); (i + 1, c) ] @ List.init m (fun c' -> (i, c')))
    in
    let best_n =
      List.fold_left
        (fun acc st ->
          let e' = eval_state st in
          match acc with
          | Some (_, eb) when eb.makespan <= e'.makespan -> acc
          | _ -> Some (st, e'))
        None neighbours
    in
    match best_n with
    | Some (st, e') when e'.makespan < e.makespan -> go st e'
    | _ -> e
  in
  go state e0

let run_anneal ev default ~seed ~iters splits comms_l =
  let comms = Array.of_list comms_l in
  let n = Array.length splits and m = Array.length comms in
  let eval_state (i, c) = ev { split = splits.(i); comm = comms.(c) } in
  let rng = Icoe_util.Rng.create seed in
  (* start at the lattice point nearest the paper default: the largest
     split, placement Dedicated when offered *)
  let start =
    let c0 =
      match
        List.find_index
          (function Hwsim.Split.Dedicated -> true | Inline -> false)
          comms_l
      with
      | Some i -> i
      | None -> 0
    in
    (n - 1, c0)
  in
  let cur = ref start and cur_e = ref (eval_state start) in
  let best_st = ref start and best_e = ref !cur_e in
  (* geometric temperature schedule scaled to the problem: starts at 5%
     of the default makespan, cools three decades *)
  let t0 = Float.max (0.05 *. Float.abs default.makespan) 1e-12 in
  for step = 1 to iters do
    let i, c = !cur in
    let proposal =
      if m > 1 && Icoe_util.Rng.float rng < 0.25 then
        (* flip the communication placement *)
        (i, (c + 1 + Icoe_util.Rng.int rng (m - 1)) mod m)
      else if n = 1 then (i, c)
      else
        (* split-index random walk, reflecting at the lattice edges *)
        let i' = if Icoe_util.Rng.bool rng then i + 1 else i - 1 in
        let i' = if i' < 0 then 1 else if i' >= n then n - 2 else i' in
        (i', c)
    in
    let pe = eval_state proposal in
    let d = pe.makespan -. !cur_e.makespan in
    let t = t0 *. (1e-3 ** (float_of_int step /. float_of_int iters)) in
    if d <= 0.0 || Icoe_util.Rng.float rng < Float.exp (-.d /. t) then begin
      cur := proposal;
      cur_e := pe
    end;
    if better !cur_e !best_e then begin
      best_st := !cur;
      best_e := !cur_e
    end
  done;
  let polished = polish ev splits comms !best_st !best_e in
  if better polished default then polished else default

let tune ?splits ?(comms = [ Hwsim.Split.Dedicated; Hwsim.Split.Inline ]) mode
    obj =
  let splits =
    prep_splits (match splits with Some s -> s | None -> Hwsim.Split.lattice ())
  in
  (match comms with
  | [] -> invalid_arg "Autotune: empty placement list"
  | _ :: _ -> ());
  let ev, count = evaluator obj in
  let default = ev default_candidate in
  let space = Array.length splits * List.length comms in
  let best, mode_s =
    match mode with
    | Exhaustive -> (run_exhaustive ev default splits comms, mode_name mode)
    | Anneal { seed; iters } ->
        if iters < 0 then invalid_arg "Autotune: negative annealing budget";
        if space <= iters then
          (* the whole space fits in the budget: sweep it — this is what
             makes the two modes agree exactly on small lattices *)
          (run_exhaustive ev default splits comms,
           mode_name mode ^ ":exhaustive")
        else (run_anneal ev default ~seed ~iters splits comms, mode_name mode)
  in
  { best; default; evaluations = !count; space; mode = mode_s }

let exhaustive ?splits ?comms obj = tune ?splits ?comms Exhaustive obj

let anneal ?(seed = 42) ?(iters = 160) ?splits ?comms obj =
  tune ?splits ?comms (Anneal { seed; iters }) obj
