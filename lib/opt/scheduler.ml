(** The Opt activity's job-scheduler simulator (Sec 4.7): thousands of
    small, variable-duration GPU jobs from a topology-optimization
    workflow, scheduled onto a GPU pool under different policies.

    The two paper conclusions this reproduces:
    - with distribution-driven arrivals, the arrival rate must be
      throttled below aggregate processing capacity or the queue grows
      without bound;
    - with batch arrivals, Shortest-Job-First with a quota (limiting the
      GPUs long jobs may hold at once) raises utilization over FCFS while
      bounding long-job starvation. *)

type job = {
  id : int;
  arrival : float;
  duration : float;
  gpus : int;  (** GPUs required simultaneously *)
}

type policy = Fcfs | Fcfs_backfill | Sjf | Sjf_quota of float
(** quota = max fraction of GPUs that "long" jobs may hold at once *)

let policy_name = function
  | Fcfs -> "FCFS"
  | Fcfs_backfill -> "FCFS+EASY-backfill"
  | Sjf -> "SJF"
  | Sjf_quota q -> Fmt.str "SJF+quota(%.0f%%)" (q *. 100.0)

type metrics = {
  makespan : float;
  utilization : float;  (** busy GPU-seconds / (gpus * makespan) *)
  mean_wait : float;
  max_wait : float;
  completed : int;
}

(** Batch workload: all jobs present at t = 0, durations lognormal-ish,
    a minority needing several GPUs. *)
let batch_workload ~(rng : Icoe_util.Rng.t) ?(n = 500) () =
  List.init n (fun id ->
      let duration = exp (Icoe_util.Rng.normal rng ~mu:1.0 ~sigma:0.9) in
      (* a third of the design evaluations are wide (multi-GPU) jobs, up
         to half the pool: these are what make naive FCFS idle GPUs *)
      let gpus = if Icoe_util.Rng.float rng < 0.35 then 2 + Icoe_util.Rng.int rng 7 else 1 in
      { id; arrival = 0.0; duration; gpus })

(** Poisson arrivals at [rate] jobs/s over [horizon] seconds. *)
let poisson_workload ~(rng : Icoe_util.Rng.t) ~rate ~horizon () =
  let rec go t id acc =
    let t = t +. Icoe_util.Rng.exponential rng ~rate in
    if t > horizon then List.rev acc
    else
      let duration = exp (Icoe_util.Rng.normal rng ~mu:1.0 ~sigma:0.6) in
      go t (id + 1) ({ id; arrival = t; duration; gpus = 1 } :: acc)
  in
  go 0.0 0 []

(** Mean processing capacity of the pool, jobs/s, for a workload's mean
    service demand. *)
let capacity ~gpus ~mean_duration = float_of_int gpus /. mean_duration

(* event-driven simulation: running jobs as (finish_time, job) *)
let simulate_schedule ?(gpus = 16) ?(check = false) policy jobs =
  let queue = ref [] in
  let pending = ref (List.sort (fun a b -> Float.compare a.arrival b.arrival) jobs) in
  let running = ref [] in
  let free = ref gpus in
  let t = ref 0.0 in
  let busy_area = ref 0.0 in
  let waits = ref [] in
  let schedule = ref [] in
  let completed = ref 0 in
  let median_duration =
    match jobs with
    | [] -> 1.0
    | _ ->
        Icoe_util.Stats.median (Array.of_list (List.map (fun j -> j.duration) jobs))
  in
  let is_long j = j.duration > median_duration in
  let long_in_use () =
    List.fold_left (fun a (_, j) -> if is_long j then a + j.gpus else a) 0 !running
  in
  (* pick the next job to start under the policy, if any fits *)
  let pick () =
    let shorts_waiting () = List.exists (fun j -> not (is_long j)) !queue in
    let fits j =
      j.gpus <= !free
      && (match policy with
         | Sjf_quota q ->
             (* the quota reserves capacity for short jobs, but only binds
                while shorts are actually waiting, and never blocks the
                only long job (guaranteed progress) *)
             (not (is_long j))
             || (not (shorts_waiting ()))
             || long_in_use () = 0
             || float_of_int (long_in_use () + j.gpus) <= q *. float_of_int gpus
         | Fcfs | Fcfs_backfill | Sjf -> true)
    in
    (* EASY backfill: when the head doesn't fit, find its shadow time
       (earliest moment enough GPUs will be free) and let later jobs jump
       ahead only if they finish by then or fit in the capacity still
       spare at the shadow time. Finish times are deduplicated before the
       walk: [freed] already sums every job finishing at [f], so a
       duplicate entry would double-count simultaneous finishers and land
       the shadow too early. *)
    let shadow_scan ~free ~need running =
      let finishes = List.sort_uniq Float.compare (List.map fst running) in
      let rec walk free = function
        | _ when free >= need -> (!t, free)
        | [] -> (infinity, free)
        | f :: tl ->
            let freed =
              List.fold_left
                (fun a (f', j) -> if Float.equal f' f then a + j.gpus else a)
                0 running
            in
            if free + freed >= need then (f, free + freed)
            else walk (free + freed) tl
      in
      walk free finishes
    in
    let easy_backfill head rest =
      let shadow_t, free_at_shadow = shadow_scan ~free:!free ~need:head.gpus !running in
      (* GPUs left over at the shadow time once the head has started:
         a job may run past the shadow only on these *)
      let spare = free_at_shadow - head.gpus in
      let candidate =
        List.find_opt
          (fun j ->
            j.gpus <= !free
            && (!t +. j.duration <= shadow_t || j.gpus <= spare))
          rest
      in
      (if check then
         match candidate with
         | None -> ()
         | Some j ->
             (* the invariant EASY promises the reserved head: starting
                the backfilled job must not move the head's shadow *)
             let running' = (!t +. j.duration, j) :: !running in
             let shadow_t', _ =
               shadow_scan ~free:(!free - j.gpus) ~need:head.gpus running'
             in
             if shadow_t' > shadow_t +. 1e-9 then
               invalid_arg
                 (Fmt.str
                    "easy_backfill: job %d (%d gpus, %.3f s) delays the \
                     reserved head %d: shadow %.6f -> %.6f"
                    j.id j.gpus j.duration head.id shadow_t shadow_t'));
      candidate
    in
    match policy with
    | Fcfs -> (
        (* strict order: only the head may start (head-of-line blocking) *)
        match !queue with
        | j :: rest when fits j ->
            queue := rest;
            Some j
        | _ -> None)
    | Fcfs_backfill -> (
        match !queue with
        | j :: rest when fits j ->
            queue := rest;
            Some j
        | head :: rest -> (
            match easy_backfill head rest with
            | Some j ->
                queue := List.filter (fun x -> x.id <> j.id) !queue;
                Some j
            | None -> None)
        | [] -> None)
    | Sjf | Sjf_quota _ ->
        let sorted =
          List.sort (fun a b -> Float.compare a.duration b.duration) !queue
        in
        (match List.find_opt fits sorted with
        | None -> None
        | Some j ->
            queue := List.filter (fun x -> x.id <> j.id) !queue;
            Some j)
  in
  let start_jobs () =
    let continue = ref true in
    while !continue do
      match pick () with
      | None -> continue := false
      | Some j ->
          free := !free - j.gpus;
          waits := (!t -. j.arrival) :: !waits;
          busy_area := !busy_area +. (float_of_int j.gpus *. j.duration);
          schedule := (j.id, !t, !t +. j.duration) :: !schedule;
          running := (!t +. j.duration, j) :: !running
    done
  in
  let next_event () =
    let arrival = match !pending with j :: _ -> Some j.arrival | [] -> None in
    let finish =
      match !running with
      | [] -> None
      | l -> Some (List.fold_left (fun a (f, _) -> min a f) infinity l)
    in
    match (arrival, finish) with
    | None, None -> None
    | Some a, None -> Some a
    | None, Some f -> Some f
    | Some a, Some f -> Some (min a f)
  in
  let rec loop () =
    match next_event () with
    | None -> ()
    | Some te ->
        t := te;
        (* finishers *)
        let done_, still = List.partition (fun (f, _) -> f <= !t +. 1e-12) !running in
        running := still;
        List.iter
          (fun (_, j) ->
            free := !free + j.gpus;
            incr completed)
          done_;
        (* arrivals *)
        let arrived, later = List.partition (fun j -> j.arrival <= !t +. 1e-12) !pending in
        pending := later;
        queue := !queue @ arrived;
        start_jobs ();
        loop ()
  in
  start_jobs ();
  loop ();
  let waits = Array.of_list !waits in
  ( {
      makespan = !t;
      utilization = !busy_area /. (float_of_int gpus *. max 1e-9 !t);
      mean_wait = (if Array.length waits = 0 then 0.0 else Icoe_util.Stats.mean waits);
      max_wait = (if Array.length waits = 0 then 0.0 else snd (Icoe_util.Stats.min_max waits));
      completed = !completed;
    },
    List.rev !schedule )

let simulate ?gpus ?check policy jobs =
  fst (simulate_schedule ?gpus ?check policy jobs)
