(** Heterogeneous work-partitioning auto-tuner (ROADMAP item 2).

    The paper's core lesson is deciding what runs where on a
    heterogeneous node; its placements were hand-picked. This module
    makes the decision a first-class optimizer, after Memeti & Pllana's
    combinatorial work-distribution search (ICPPW'16) and Borrell et
    al.'s POWER9 CPU/GPU co-execution: a candidate is a point in
    (split lattice x stream placement), the objective rebuilds a
    {!Hwsim.Sched} DAG for the candidate and returns its simulated
    makespan, and the tuner minimizes it — exhaustively over the
    quantized lattice, or by seeded simulated annealing with a greedy
    hill-climb polish for large spaces.

    Guarantee: the paper-default candidate ([split = 1.0], [Dedicated])
    is always evaluated first and never abandoned for anything worse,
    so [best.makespan <= default.makespan] holds for every mode, seed
    and budget — tuning can only help. *)

type candidate = { split : float; comm : Hwsim.Split.comm }
(** One placement decision: the accelerator's share of the divisible
    work and where the model's communication stream lives. *)

type objective = candidate -> float
(** Simulated makespan (seconds) of the schedule a candidate induces.
    Must be deterministic, finite and non-NaN; evaluations are memoized
    per candidate. *)

type evaluation = { cand : candidate; makespan : float }

type mode =
  | Exhaustive  (** every lattice point x placement *)
  | Anneal of { seed : int; iters : int }
      (** simulated annealing over lattice-index moves with a
          deterministic {!Icoe_util.Rng} stream, then a greedy
          hill-climb polish from the best state seen. When the whole
          space fits in [iters] evaluations it falls back to the
          exhaustive sweep — the two modes agree exactly on small
          lattices. *)

type result = {
  best : evaluation;  (** the tuned placement *)
  default : evaluation;  (** the paper default, [split = 1.0], [Dedicated] *)
  evaluations : int;  (** distinct candidates priced (memoized) *)
  space : int;  (** lattice points x placements *)
  mode : string;  (** e.g. ["exhaustive"], ["anneal(seed=42,iters=160)"] *)
}

val default_candidate : candidate
(** [{ split = 1.0; comm = Dedicated }] — all work on the accelerator,
    communication on its own stream. *)

val mode_name : mode -> string

val tune :
  ?splits:float array -> ?comms:Hwsim.Split.comm list -> mode -> objective ->
  result
(** Minimize [objective] over [splits] x [comms]. [splits] (default
    {!Hwsim.Split.lattice}[ ()], 21 points) is sorted and deduplicated;
    [comms] defaults to [[Dedicated; Inline]]. Deterministic: equal
    inputs give equal results, ties keep the earliest candidate in
    sweep order (the default first). Raises [Invalid_argument] on an
    empty lattice or placement list, an invalid split, a negative
    [iters], or an objective returning NaN. *)

val exhaustive :
  ?splits:float array -> ?comms:Hwsim.Split.comm list -> objective -> result
(** [tune Exhaustive]. *)

val anneal :
  ?seed:int -> ?iters:int -> ?splits:float array ->
  ?comms:Hwsim.Split.comm list -> objective -> result
(** [tune (Anneal { seed; iters })] with [seed = 42], [iters = 160]. *)
