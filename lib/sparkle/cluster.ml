(** The SparkPlug execution substrate: a Spark-like cluster with an
    explicit cost model for the three bottlenecks the vendor team profiled
    (Sec 4.4): JVM overheads (GC, serialization, task launch), the shuffle
    (all-to-all) implementation, and the aggregate (all-to-one) primitive.

    The [optimized] configuration bundles the paper's fixes: IBM SDK JVM
    (better GC and lock contention, cheaper ser/deser), the adaptive
    shuffle of [20, 21], and tree-based all-to-one operations. *)

type config = {
  nodes : int;
  cores_per_node : int;
  jvm_optimized : bool;
  adaptive_shuffle : bool;
  tree_aggregate : bool;
  topology : Hwsim.Topology.t;
      (** the interconnect under the collectives; the default flat
          dual-rail EDR prices them bit-identically to the old single
          [fabric : Link.t] field *)
}

let default_config ?(nodes = 32)
    ?(topology = Hwsim.Topology.flat Hwsim.Link.ib_dual_edr) () =
  {
    nodes;
    cores_per_node = 40;
    jvm_optimized = false;
    adaptive_shuffle = false;
    tree_aggregate = false;
    topology;
  }

let optimized_config ?(nodes = 32) ?topology () =
  {
    (default_config ~nodes ?topology ()) with
    jvm_optimized = true;
    adaptive_shuffle = true;
    tree_aggregate = true;
  }

type t = { config : config; clock : Hwsim.Clock.t; trace : Hwsim.Trace.t }

let create config =
  let clock = Hwsim.Clock.create () in
  { config; clock; trace = Hwsim.Trace.create ~root:"sparkle" clock }

let total_cores t = t.config.nodes * t.config.cores_per_node

(* --- JVM cost parameters --- *)

(** Per-task launch/schedule overhead. *)
let task_overhead t = if t.config.jvm_optimized then 2.0e-3 else 5.0e-3

(** Serialization throughput, bytes/s (Kryo-ish vs optimized). *)
let ser_rate t = if t.config.jvm_optimized then 600e6 else 150e6

(** GC drag: fraction added on top of compute time. *)
let gc_drag t = if t.config.jvm_optimized then 0.07 else 0.28

(* --- charging primitives ---

   All charges go through the span tracer (which ticks [t.clock]), so
   every stage of a job is visible in the Chrome trace export and the
   per-phase rollups still agree with the clock breakdown. *)

let charge tr ~phase dt = Hwsim.Trace.charge tr ~device:"cluster" ~phase dt

(* --- the cost model, as pure time functions ---

   The charge_* primitives below and the nonblocking issue_*/wait pairs
   price work through these same functions, so blocking and overlapped
   jobs can never disagree on what a stage costs. *)

(** Seconds of a parallel compute stage of [flops] total work across the
    cluster's cores: ideal time inflated by GC drag, plus task launch. *)
let compute_seconds t ~flops =
  let per_core = 2.0e9 (* effective scalar JVM flops/s per core *) in
  let ideal = flops /. (float_of_int (total_cores t) *. per_core) in
  (ideal *. (1.0 +. gc_drag t)) +. task_overhead t

(** Effective per-node all-to-all bandwidth of the cluster's gang, GB/s.
    Flat topologies return the fabric's bandwidth itself — keeping every
    wire-time expression below bit-identical to the old single-link
    model — while hierarchical ones are throttled by the most contended
    level the gang crosses. *)
let alltoall_gbs t =
  Hwsim.Topology.alltoall_gbs t.config.topology ~nodes:t.config.nodes

(* Hierarchical collectives climb the tree: combine/broadcast round [r]
   pairs partners 2^r ranks apart, so the round's wire time is priced at
   the level that distance crosses (contiguous block placement — a Spark
   cluster is allocated as one gang). The [2.0 *. b] matches the old
   half-duplex derate [b /. (bw *. 0.5)]. *)
let round_wire_time cfg ~round b =
  let span = min cfg.nodes (1 lsl min 62 (round + 1)) in
  let level =
    Hwsim.Topology.crossing cfg.topology ~nodes:span Hwsim.Topology.Contiguous
  in
  Hwsim.Topology.path_time cfg.topology ~level ~bytes:(2.0 *. b)

(** Seconds of an all-to-all shuffle of [bytes] total. The default
    sort-based shuffle serializes, spills to disk and re-reads; the
    adaptive shuffle pipelines in memory. The wire term is throttled by
    the topology's effective all-to-all bandwidth. *)
let shuffle_seconds t ~bytes =
  let cfg = t.config in
  let n = float_of_int cfg.nodes in
  let wire =
    bytes /. (n *. alltoall_gbs t *. 1e9 *. 0.5)
  in
  let serde = 2.0 *. bytes /. (n *. ser_rate t) in
  let spill =
    if cfg.adaptive_shuffle then 0.0
    else (* write + read at disk speed per node *)
      2.0 *. bytes /. (n *. 500e6)
  in
  let tasks = task_overhead t *. 2.0 in
  wire +. serde +. spill +. tasks

(** Seconds of an all-to-one aggregate of [bytes] per node toward the
    driver. Flat policy: the driver ingests every node's contribution
    serially. Tree: log2(nodes) combine rounds, each pairwise and
    parallel — at least one round even for a single node (clamped like
    broadcast, so a one-node tree aggregate still pays its combine
    instead of rounding to zero seconds). On hierarchical topologies
    each tree round is priced at the switch level its pair distance
    crosses; one-level topologies keep the exact flat-fabric
    expressions. *)
let aggregate_seconds t ~bytes_per_node =
  let cfg = t.config in
  let flat = Hwsim.Topology.is_flat cfg.topology in
  let fabric_gbs = (Hwsim.Topology.leaf_link cfg.topology).Hwsim.Link.bw_gbs in
  let link_time b = b /. (fabric_gbs *. 1e9 *. 0.5) in
  let serde b = b /. ser_rate t in
  if cfg.tree_aggregate then
    if flat then
      let rounds = Float.ceil (Float.log2 (float_of_int (max 2 cfg.nodes))) in
      rounds *. (link_time bytes_per_node +. serde bytes_per_node +. task_overhead t)
    else begin
      let rounds =
        int_of_float (Hwsim.Topology.allreduce_rounds cfg.nodes)
      in
      let s = ref 0.0 in
      for r = 0 to rounds - 1 do
        s :=
          !s
          +. round_wire_time cfg ~round:r bytes_per_node
          +. serde bytes_per_node +. task_overhead t
      done;
      !s
    end
  else if flat then
    float_of_int cfg.nodes
    *. (link_time bytes_per_node +. serde bytes_per_node)
    +. task_overhead t
  else
    (* serial driver ingest: every contribution crosses the level the
       whole gang spans *)
    let level =
      Hwsim.Topology.crossing cfg.topology ~nodes:cfg.nodes
        Hwsim.Topology.Contiguous
    in
    let wire =
      Hwsim.Topology.path_time cfg.topology ~level
        ~bytes:(2.0 *. bytes_per_node)
    in
    (float_of_int cfg.nodes *. (wire +. serde bytes_per_node))
    +. task_overhead t

(** Seconds of a driver-to-all broadcast of [bytes] (tree-shaped; on
    hierarchical topologies each round priced at its crossing level). *)
let broadcast_seconds t ~bytes =
  let cfg = t.config in
  if Hwsim.Topology.is_flat cfg.topology then
    let fabric_gbs = (Hwsim.Topology.leaf_link cfg.topology).Hwsim.Link.bw_gbs in
    let rounds = Float.ceil (Float.log2 (float_of_int (max 2 cfg.nodes))) in
    rounds *. ((bytes /. (fabric_gbs *. 1e9 *. 0.5)) +. (bytes /. ser_rate t))
  else begin
    let rounds = int_of_float (Hwsim.Topology.allreduce_rounds cfg.nodes) in
    let s = ref 0.0 in
    for r = 0 to rounds - 1 do
      s := !s +. round_wire_time cfg ~round:r bytes +. (bytes /. ser_rate t)
    done;
    !s
  end

(* --- blocking charges --- *)

(** Charge a parallel compute stage (two charges — work then launch — so
    existing per-phase accounting is unchanged). *)
let charge_compute t ~flops =
  let per_core = 2.0e9 in
  let ideal = flops /. (float_of_int (total_cores t) *. per_core) in
  charge t.trace ~phase:"compute" (ideal *. (1.0 +. gc_drag t));
  charge t.trace ~phase:"compute" (task_overhead t)

let charge_shuffle t ~bytes =
  charge t.trace ~phase:"shuffle" (shuffle_seconds t ~bytes)

let charge_aggregate t ~bytes_per_node =
  charge t.trace ~phase:"aggregate" (aggregate_seconds t ~bytes_per_node)

let charge_broadcast t ~bytes =
  charge t.trace ~phase:"broadcast" (broadcast_seconds t ~bytes)

(* --- nonblocking issue/wait over the same cost model ---

   An async job is an Hwsim.Sched bound to the cluster's trace: compute
   stages go on the "cores" stream, collectives on the "fabric" stream,
   dependencies are explicit, and [wait] advances the cluster clock by
   the schedule's critical path (or the serial sum under
   ICOE_OVERLAP=0). *)

let async ?overlap t = Hwsim.Sched.create ?overlap ~trace:t.trace ()

let issue_compute t sched ?(stream = "cores") ?deps ~flops () =
  Hwsim.Sched.work sched ~stream ?deps ~device:"cluster" ~phase:"compute"
    (compute_seconds t ~flops)

let issue_shuffle t sched ?(stream = "fabric") ?deps ~bytes () =
  Hwsim.Sched.work sched ~stream ?deps ~device:"cluster" ~phase:"shuffle"
    (shuffle_seconds t ~bytes)

let issue_aggregate t sched ?(stream = "fabric") ?deps ~bytes_per_node () =
  Hwsim.Sched.work sched ~stream ?deps ~device:"cluster" ~phase:"aggregate"
    (aggregate_seconds t ~bytes_per_node)

let issue_broadcast t sched ?(stream = "fabric") ?deps ~bytes () =
  Hwsim.Sched.work sched ~stream ?deps ~device:"cluster" ~phase:"broadcast"
    (broadcast_seconds t ~bytes)

let wait _t sched = Hwsim.Sched.run sched

let elapsed t = Hwsim.Clock.total t.clock
let breakdown t = Hwsim.Clock.breakdown t.clock
let reset t = Hwsim.Clock.reset t.clock
let trace t = t.trace
