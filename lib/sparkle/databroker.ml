(** The Data Broker adapter (Sec 4.4): "common shared, in-memory storage"
    [25] that SparkPlug could stage shuffle data through instead of the
    JVM-side sort-spill path.

    Functionally a distributed key-value store with namespaces; the cost
    win modelled here is the one the paper's exploration found: tuple
    transfer bypasses JVM serialization entirely (native buffers), so a
    broker-mediated shuffle pays wire time plus a small per-tuple put/get
    cost only. *)

type t = {
  cluster : Cluster.t;
  namespaces : (string, (string, float array) Hashtbl.t) Hashtbl.t;
  put_cost_s : float;  (** per-operation broker latency *)
  native_rate : float;  (** bytes/s through native buffers, per node *)
}

let create ?(put_cost_s = 8e-6) ?(native_rate = 2.5e9) cluster =
  { cluster; namespaces = Hashtbl.create 8; put_cost_s; native_rate }

let namespace t name =
  match Hashtbl.find_opt t.namespaces name with
  | Some ns -> ns
  | None ->
      let ns = Hashtbl.create 64 in
      Hashtbl.add t.namespaces name ns;
      ns

(** Store a tuple; charges broker latency plus native-buffer transfer. *)
let put t ~ns ~key value =
  Hashtbl.replace (namespace t ns) key value;
  let bytes = 8.0 *. float_of_int (Array.length value) in
  Hwsim.Clock.tick t.cluster.Cluster.clock ~phase:"broker"
    (t.put_cost_s +. (bytes /. t.native_rate))

let get t ~ns ~key =
  let v = Hashtbl.find_opt (namespace t ns) key in
  (match v with
  | Some value ->
      let bytes = 8.0 *. float_of_int (Array.length value) in
      Hwsim.Clock.tick t.cluster.Cluster.clock ~phase:"broker"
        (t.put_cost_s +. (bytes /. t.native_rate))
  | None -> Hwsim.Clock.tick t.cluster.Cluster.clock ~phase:"broker" t.put_cost_s);
  v

let delete_namespace t ns = Hashtbl.remove t.namespaces ns

(** Cost of moving a [bytes]-sized shuffle through the broker: producers
    put, consumers get, wire once each way, no JVM serialization. *)
let shuffle_cost t ~bytes ~tuples =
  let n = float_of_int t.cluster.Cluster.config.Cluster.nodes in
  let wire =
    2.0 *. bytes
    /. (n *. Cluster.alltoall_gbs t.cluster *. 1e9 *. 0.5)
  in
  (2.0 *. float_of_int tuples *. t.put_cost_s /. n)
  +. (2.0 *. bytes /. (n *. t.native_rate))
  +. wire

(** Charge a full broker-mediated shuffle on the cluster clock. *)
let charge_shuffle t ~bytes ~tuples =
  Hwsim.Clock.tick t.cluster.Cluster.clock ~phase:"shuffle"
    (shuffle_cost t ~bytes ~tuples)
