(** The SparkPlug execution substrate: a Spark-like cluster with an
    explicit cost model for the three bottlenecks the vendor team profiled
    (Sec 4.4): JVM overheads (GC, serialization, task launch), the shuffle
    implementation, and the all-to-one aggregate primitive.

    The optimized configuration bundles the paper's fixes: IBM SDK JVM,
    the adaptive shuffle of [20, 21], and tree-based all-to-one ops. *)

type config = {
  nodes : int;
  cores_per_node : int;
  jvm_optimized : bool;
  adaptive_shuffle : bool;
  tree_aggregate : bool;
  topology : Hwsim.Topology.t;
      (** the interconnect under the collectives. The default
          [Topology.flat Link.ib_dual_edr] prices every collective
          bit-identically to the old flat [fabric : Link.t] model;
          hierarchical topologies charge per-level hop and contention
          costs (tree rounds climb switch levels, the shuffle is
          throttled by the most contended crossed level). *)
}

val default_config :
  ?nodes:int -> ?topology:Hwsim.Topology.t -> unit -> config

val optimized_config :
  ?nodes:int -> ?topology:Hwsim.Topology.t -> unit -> config

type t = { config : config; clock : Hwsim.Clock.t; trace : Hwsim.Trace.t }

val create : config -> t
val total_cores : t -> int

val task_overhead : t -> float
val ser_rate : t -> float
(** Serialization throughput, bytes/s. *)

val gc_drag : t -> float
(** Fraction added on top of compute time by garbage collection. *)

(** {2 Cost model, as pure time functions}

    The blocking [charge_*] primitives and the nonblocking [issue_*]
    pairs below price work through these, so serialized and overlapped
    jobs can never disagree on what a stage costs. *)

val alltoall_gbs : t -> float
(** Effective per-node all-to-all bandwidth of the configured gang:
    the fabric bandwidth itself on flat topologies, the most contended
    crossed level's derated bandwidth on hierarchical ones. *)

val compute_seconds : t -> flops:float -> float
val shuffle_seconds : t -> bytes:float -> float
val aggregate_seconds : t -> bytes_per_node:float -> float
(** Tree aggregates clamp the round count with [max 2 nodes] (like
    broadcast) so a one-node tree still pays one combine round instead
    of [ceil (log2 1) = 0] seconds. *)

val broadcast_seconds : t -> bytes:float -> float

(** {2 Blocking charges} *)

val charge_compute : t -> flops:float -> unit
val charge_shuffle : t -> bytes:float -> unit
(** All-to-all; the default sort-based path also spills to disk. *)

val charge_aggregate : t -> bytes_per_node:float -> unit
(** All-to-one: flat (driver ingests serially) or log-depth tree. *)

val charge_broadcast : t -> bytes:float -> unit

(** {2 Nonblocking issue/wait}

    An async job is an {!Hwsim.Sched.t} bound to the cluster's trace:
    compute stages default to the ["cores"] stream, collectives to the
    ["fabric"] stream, dependencies are explicit, and {!wait} advances
    the cluster clock by the schedule's critical path — or by the serial
    sum under [ICOE_OVERLAP=0], bit-identically to the blocking
    [charge_*] calls. *)

val async : ?overlap:bool -> t -> Hwsim.Sched.t

val issue_compute :
  t -> Hwsim.Sched.t -> ?stream:string -> ?deps:Hwsim.Sched.item list ->
  flops:float -> unit -> Hwsim.Sched.item

val issue_shuffle :
  t -> Hwsim.Sched.t -> ?stream:string -> ?deps:Hwsim.Sched.item list ->
  bytes:float -> unit -> Hwsim.Sched.item

val issue_aggregate :
  t -> Hwsim.Sched.t -> ?stream:string -> ?deps:Hwsim.Sched.item list ->
  bytes_per_node:float -> unit -> Hwsim.Sched.item

val issue_broadcast :
  t -> Hwsim.Sched.t -> ?stream:string -> ?deps:Hwsim.Sched.item list ->
  bytes:float -> unit -> Hwsim.Sched.item

val wait : t -> Hwsim.Sched.t -> float
(** Run the schedule, charge the cluster clock/trace, return the
    makespan in seconds. Idempotent (see {!Hwsim.Sched.run}). *)

val elapsed : t -> float
val breakdown : t -> (string * float) list
val reset : t -> unit

val trace : t -> Hwsim.Trace.t
(** The span trace every charging primitive writes through; ticks the
    same clock [elapsed]/[breakdown] read, so the two views agree. *)
