(** Compiler passes on the loop IR.

    [fuse] merges all the elementwise loops into one (the hand optimization
    that wrecked CPU performance in the paper). [slnsp] is the Single
    Level No Synchronization Parallelism pattern added to XL Fortran: with
    one thread per iteration and no cross-loop synchronization, dataflow
    optimization works across the fused body — here realized by promoting
    intermediate arrays that are only consumed at the same index into
    loop-private scalars. [dse] then removes stores (and scalar defs)
    whose values are never observed, powered by the privatization info —
    the paper's "propagate private-clause variables to data flow
    analysis". *)

open Ir

(** Fuse all loops into a single loop (valid for elementwise bodies). *)
let fuse (p : program) =
  { p with loops = [ { body = List.concat_map (fun l -> l.body) p.loops } ] }

(* substitute scalar reads for loads of [name] in an expression *)
let rec promote_expr name = function
  | Load a when a = name -> Scalar a
  | Load a -> Load a
  | Scalar s -> Scalar s
  | Const c -> Const c
  | Binop (op, a, b) -> Binop (op, promote_expr name a, promote_expr name b)

(** SLNSP + privatization: within a fused loop, every intermediate array
    that is not a program output is demoted to a loop-private scalar; its
    consumers read the register instead of global memory. A global store
    is kept so the array still holds correct values (DSE decides later
    whether anyone needs it). *)
let slnsp (p : program) =
  let p = fuse p in
  match p.loops with
  | [ { body } ] ->
      (* privatize every array that is written and then read at the same
         index later in the fused body — output arrays included, since the
         mirrored global store preserves their contents *)
      let rec read_later name = function
        | [] -> false
        | st :: rest ->
            let e = match st with Store (_, e) | Def (_, e) -> e in
            List.mem name (fst (expr_reads e)) || read_later name rest
      in
      let rec collect = function
        | [] -> []
        | st :: rest -> (
            match stmt_writes st with
            | Some a when read_later a rest -> a :: collect rest
            | _ -> collect rest)
      in
      let intermediates = List.sort_uniq String.compare (collect body) in
      let body =
        List.map
          (fun st ->
            let rewrite e = List.fold_left (fun e n -> promote_expr n e) e intermediates in
            match st with
            | Store (a, e) when List.mem a intermediates ->
                (* define the scalar, then mirror to global *)
                Def (a, rewrite e)
            | Store (a, e) -> Store (a, rewrite e)
            | Def (s, e) -> Def (s, rewrite e))
          body
      in
      (* re-emit global stores for intermediates right after their defs so
         semantics (array contents) are preserved pre-DSE *)
      let body =
        List.concat_map
          (function
            | Def (s, e) when List.exists (( = ) s) intermediates ->
                [ Def (s, e); Store (s, Scalar s) ]
            | st -> [ st ])
          body
      in
      (* input-load CSE: each input array is loaded once into a register
         scalar and reused — the cross-loop dataflow SLNSP unlocks *)
      let cached = Hashtbl.create 8 in
      let reg a = a ^ "$r" in
      let rec cse_expr e =
        match e with
        | Load a when Hashtbl.mem cached a -> Scalar (reg a)
        | Load a -> Load a
        | Scalar s -> Scalar s
        | Const c -> Const c
        | Binop (op, x, y) -> Binop (op, cse_expr x, cse_expr y)
      in
      let body =
        List.concat_map
          (fun st ->
            let e = match st with Store (_, e) | Def (_, e) -> e in
            (* cache any array this statement loads that isn't cached yet *)
            let fresh =
              List.sort_uniq String.compare
                (List.filter (fun a -> not (Hashtbl.mem cached a)) (fst (expr_reads e)))
            in
            let prefix =
              List.map
                (fun a ->
                  Hashtbl.replace cached a ();
                  Def (reg a, Load a))
                fresh
            in
            let st' =
              match st with
              | Store (a, e) -> Store (a, cse_expr e)
              | Def (s, e) -> Def (s, cse_expr e)
            in
            prefix @ [ st' ])
          body
      in
      { p with loops = [ { body } ] }
  | _ -> assert false

(** Dead-store elimination: drop global stores to arrays that are neither
    outputs nor read later in the body, then drop scalar defs nothing
    consumes. *)
let dse (p : program) =
  let clean_loop l =
    (* arrays and scalars are separate namespaces: a Store target is dead
       only if no later Load reads it; a Def only if no later Scalar does *)
    let load_used_later name rest =
      List.exists
        (fun st ->
          let e = match st with Store (_, e) | Def (_, e) -> e in
          List.mem name (fst (expr_reads e)))
        rest
    in
    let scalar_used_later name rest =
      List.exists
        (fun st ->
          let e = match st with Store (_, e) | Def (_, e) -> e in
          List.mem name (snd (expr_reads e)))
        rest
    in
    let rec go = function
      | [] -> []
      | st :: rest -> (
          let rest' = go rest in
          match st with
          | Store (a, _)
            when (not (List.mem a p.outputs)) && not (load_used_later a rest') ->
              rest'
          | Def (s, _) when not (scalar_used_later s rest') -> rest'
          | _ -> st :: rest')
    in
    (* iterate to a fixed point: removing a store can kill its def *)
    let rec fixpoint body =
      let body' = go body in
      if List.length body' = List.length body then body' else fixpoint body'
    in
    { body = fixpoint l.body }
  in
  { p with loops = List.map clean_loop p.loops }
