(** CVODE-style time integration: adaptive BDF with Newton for stiff
    problems, Adams predictor-corrector with functional iteration for
    non-stiff ones, plus fixed-step explicit baselines.

    The integrator mirrors the SUNDIALS control split the paper relies on:
    high-level control flow lives here (host side); all heavy lifting is in
    the user's [rhs] and [lsolve] callbacks, which is where device residency
    and simulated cost are decided. [lsolve ~gamma ~t ~y ~b] must return an
    (approximate) solution of (I - gamma*J(t,y)) x = b; hooking hypre's
    AMG-preconditioned CG in there reproduces the paper's MFEM/hypre/
    SUNDIALS stack. *)

type stats = {
  mutable nsteps : int;
  mutable nfevals : int;
  mutable nniters : int;  (** Newton (or fixed-point) iterations *)
  mutable nlsolves : int;
  mutable netf : int;  (** error-test failures *)
  mutable nncf : int;  (** nonlinear-convergence failures *)
}

let new_stats () =
  { nsteps = 0; nfevals = 0; nniters = 0; nlsolves = 0; netf = 0; nncf = 0 }

type rhs = float -> float array -> float array
(** [rhs t y] returns dy/dt. *)

type lsolve = gamma:float -> t:float -> y:float array -> b:float array -> float array
(** Approximate solve of (I - gamma J) x = b. *)

exception Too_much_work of string

let error_weights ~rtol ~atol y =
  Array.map (fun yi -> 1.0 /. ((rtol *. Float.abs yi) +. atol)) y

(* --- built-in linear solvers for dense problems --- *)

(** Dense direct lsolve from an analytic Jacobian [jac t y]. *)
let dense_lsolve ~(jac : float -> float array -> Linalg.Dense.t) : lsolve =
 fun ~gamma ~t ~y ~b ->
  let j = jac t y in
  let n = Array.length y in
  let m =
    Linalg.Dense.init n n (fun r c ->
        (if r = c then 1.0 else 0.0) -. (gamma *. Linalg.Dense.get j r c))
  in
  Linalg.Dense.solve m b

(** Dense direct lsolve with a finite-difference Jacobian of [rhs]. *)
let fd_dense_lsolve ~(rhs : rhs) : lsolve =
 fun ~gamma ~t ~y ~b ->
  let n = Array.length y in
  let f0 = rhs t y in
  let j = Linalg.Dense.create n n in
  let yp = Array.copy y in
  for c = 0 to n - 1 do
    let h = max 1e-8 (1e-8 *. Float.abs y.(c)) in
    yp.(c) <- y.(c) +. h;
    let f1 = rhs t yp in
    yp.(c) <- y.(c);
    for r = 0 to n - 1 do
      Linalg.Dense.set j r c ((f1.(r) -. f0.(r)) /. h)
    done
  done;
  let m =
    Linalg.Dense.init n n (fun r c ->
        (if r = c then 1.0 else 0.0) -. (gamma *. Linalg.Dense.get j r c))
  in
  Linalg.Dense.solve m b

(* --- Newton iteration for the implicit BDF stage --- *)

(* Solve y = c + gamma * f(t, y) by modified Newton. Returns Some y or None
   on nonconvergence. *)
let newton_solve ~rhs ~lsolve ~stats ~gamma ~t ~c ~y_guess ~weights ~maxiters =
  let y = Array.copy y_guess in
  let converged = ref false in
  let iters = ref 0 in
  while (not !converged) && !iters < maxiters do
    let f = rhs t y in
    stats.nfevals <- stats.nfevals + 1;
    (* residual R = c + gamma f - y ; Newton update solves (I-gJ) d = R *)
    let r = Array.init (Array.length y) (fun i -> c.(i) +. (gamma *. f.(i)) -. y.(i)) in
    let d = lsolve ~gamma ~t ~y ~b:r in
    stats.nlsolves <- stats.nlsolves + 1;
    Linalg.Vec.axpy 1.0 d y;
    stats.nniters <- stats.nniters + 1;
    incr iters;
    let dnorm = Linalg.Vec.wrms d weights in
    if dnorm < 0.1 then converged := true
  done;
  if !converged then Some y else None

(* --- BDF2 adaptive integrator --- *)

type result = { y : float array; t : float; stats : stats }

(* Integration work per method, recorded when an integrate call returns.
   Handles are created once at module init. *)
let record =
  let handles meth =
    let labels = [ ("method", meth) ] in
    let c help name = Icoe_obs.Metrics.counter ~help ~labels name in
    ( c "Accepted time steps" "cvode_steps_total",
      c "Rejected steps (error test + nonlinear failures)"
        "cvode_rejected_steps_total",
      c "Newton / fixed-point iterations" "cvode_nonlinear_iterations_total",
      c "Right-hand-side evaluations" "cvode_rhs_evals_total" )
  in
  let bdf_h = handles "bdf" in
  let adams_h = handles "adams" in
  let erk_h = handles "erk23" in
  fun meth (r : result) ->
    let steps, rejected, nniters, fevals =
      match meth with `Bdf -> bdf_h | `Adams -> adams_h | `Erk23 -> erk_h
    in
    let f = float_of_int in
    Icoe_obs.Metrics.inc ~by:(f r.stats.nsteps) steps;
    Icoe_obs.Metrics.inc ~by:(f (r.stats.netf + r.stats.nncf)) rejected;
    Icoe_obs.Metrics.inc ~by:(f r.stats.nniters) nniters;
    Icoe_obs.Metrics.inc ~by:(f r.stats.nfevals) fevals;
    r

(** Adaptive BDF (order 1 start-up step, order 2 thereafter, variable step)
    with Newton. This is the stiff path used for the paper's nonlinear
    diffusion runs. *)
(* Lagrange extrapolation of the history polynomial at time [te]. [pts] is
   (t_i, y_i) newest-first; the polynomial degree is length pts - 1. *)
let lagrange_extrapolate pts te =
  match pts with
  | [] -> invalid_arg "lagrange_extrapolate: empty history"
  | (_, y0) :: _ ->
      let n = Array.length y0 in
      let out = Array.make n 0.0 in
      List.iteri
        (fun i (ti, yi) ->
          let w = ref 1.0 in
          List.iteri
            (fun j (tj, _) ->
              if i <> j then w := !w *. ((te -. tj) /. (ti -. tj)))
            pts;
          Linalg.Vec.axpy !w yi out)
        pts;
      out

(** Adaptive BDF (order 1 start-up, order 2 thereafter, variable step) with
    modified Newton. The local-error estimate is corrector minus the
    quadratic history predictor — the standard same-order embedded estimate,
    O(h^3) for the BDF2 phase. This is the stiff path used for the paper's
    nonlinear diffusion runs. *)
let bdf ?(rtol = 1e-6) ?(atol = 1e-9) ?(h0 = 1e-4) ?(max_steps = 200_000)
    ?(newton_maxiters = 6) ~(rhs : rhs) ~(lsolve : lsolve) ~t0 ~y0 tstop =
  let stats = new_stats () in
  let t = ref t0 in
  let h = ref (min h0 (tstop -. t0)) in
  let yn = ref (Array.copy y0) in
  (* history of accepted (t, y), newest first, at most 3 entries *)
  let hist = ref [ (t0, Array.copy y0) ] in
  let steps = ref 0 in
  while !t < tstop -. 1e-14 do
    if !steps > max_steps then
      raise (Too_much_work (Fmt.str "BDF exceeded %d steps at t=%g" max_steps !t));
    incr steps;
    let hcur = min !h (tstop -. !t) in
    let weights = error_weights ~rtol ~atol !yn in
    let tnew = !t +. hcur in
    let attempt =
      match !hist with
      | [] -> assert false
      | [ _ ] ->
          (* BDF1 (backward Euler) start-up with step-doubling estimate *)
          let gamma = hcur in
          (match
             newton_solve ~rhs ~lsolve ~stats ~gamma ~t:tnew ~c:!yn
               ~y_guess:!yn ~weights ~maxiters:newton_maxiters
           with
          | None -> `Newton_failed
          | Some y1 ->
              let gamma2 = hcur /. 2.0 in
              let mid =
                newton_solve ~rhs ~lsolve ~stats ~gamma:gamma2
                  ~t:(!t +. gamma2) ~c:!yn ~y_guess:!yn ~weights
                  ~maxiters:newton_maxiters
              in
              (match mid with
              | None -> `Newton_failed
              | Some ymid -> (
                  match
                    newton_solve ~rhs ~lsolve ~stats ~gamma:gamma2 ~t:tnew
                      ~c:ymid ~y_guess:y1 ~weights ~maxiters:newton_maxiters
                  with
                  | None -> `Newton_failed
                  | Some y2 ->
                      let le = Linalg.Vec.sub y2 y1 in
                      let err = Linalg.Vec.wrms le weights in
                      `Done (y2, err, 1))))
      | (tn, _) :: (tm1, ym1) :: _ ->
          (* variable-step BDF2 with rho = hcur / previous step *)
          let hold = tn -. tm1 in
          let rho = hcur /. hold in
          let a0 = (1.0 +. rho) ** 2.0 /. (1.0 +. (2.0 *. rho)) in
          let a1 = -.(rho ** 2.0) /. (1.0 +. (2.0 *. rho)) in
          let beta = (1.0 +. rho) /. (1.0 +. (2.0 *. rho)) in
          let gamma = hcur *. beta in
          let c =
            Array.init (Array.length !yn) (fun i ->
                (a0 *. !yn.(i)) +. (a1 *. ym1.(i)))
          in
          (* predictor: extrapolate the full history polynomial (quadratic
             once 3 points exist) — its error matches the corrector's order,
             making the difference a valid O(h^3) LTE estimate *)
          let pred = lagrange_extrapolate !hist tnew in
          (match
             newton_solve ~rhs ~lsolve ~stats ~gamma ~t:tnew ~c ~y_guess:pred
               ~weights ~maxiters:newton_maxiters
           with
          | None -> `Newton_failed
          | Some ynew ->
              let le = Linalg.Vec.sub ynew pred in
              let cq =
                if List.length !hist >= 3 then 0.5
                else (1.0 +. rho) /. (1.0 +. (3.0 *. rho))
              in
              let order = if List.length !hist >= 3 then 2 else 1 in
              let err = cq *. Linalg.Vec.wrms le weights in
              `Done (ynew, err, order))
    in
    match attempt with
    | `Newton_failed ->
        stats.nncf <- stats.nncf + 1;
        h := hcur /. 4.0;
        if !h < 1e-14 *. max 1.0 (Float.abs tstop) then
          raise (Too_much_work "BDF step underflow (Newton)")
    | `Done (ynew, err, order) ->
        if err <= 1.0 then begin
          stats.nsteps <- stats.nsteps + 1;
          yn := ynew;
          t := tnew;
          hist :=
            (tnew, Array.copy ynew)
            :: (match !hist with a :: b :: _ -> [ a; b ] | l -> l);
          let grow =
            0.9 *. ((1.0 /. max err 1e-10) ** (1.0 /. float_of_int (order + 1)))
          in
          h := hcur *. min 5.0 (max 0.2 grow)
        end
        else begin
          stats.netf <- stats.netf + 1;
          let shrink =
            0.9 *. ((1.0 /. err) ** (1.0 /. float_of_int (order + 1)))
          in
          h := hcur *. min 0.9 (max 0.1 shrink);
          if !h < 1e-14 *. max 1.0 (Float.abs tstop) then
            raise (Too_much_work "BDF step underflow (error test)")
        end
  done;
  record `Bdf { y = !yn; t = !t; stats }

(* --- Adams-Bashforth-Moulton 2 with functional iteration (non-stiff) --- *)

let adams ?(rtol = 1e-6) ?(atol = 1e-9) ?(h0 = 1e-4) ?(max_steps = 500_000)
    ?(fp_maxiters = 10) ~(rhs : rhs) ~t0 ~y0 tstop =
  let stats = new_stats () in
  let t = ref t0 in
  let h = ref (min h0 (tstop -. t0)) in
  let yn = ref (Array.copy y0) in
  let fn = ref (rhs t0 y0) in
  stats.nfevals <- stats.nfevals + 1;
  let steps = ref 0 in
  while !t < tstop -. 1e-14 do
    if !steps > max_steps then
      raise (Too_much_work (Fmt.str "Adams exceeded %d steps at t=%g" max_steps !t));
    incr steps;
    let hcur = min !h (tstop -. !t) in
    let tnew = !t +. hcur in
    let weights = error_weights ~rtol ~atol !yn in
    (* predictor: forward Euler *)
    let pred = Array.init (Array.length !yn) (fun i -> !yn.(i) +. (hcur *. !fn.(i))) in
    (* corrector: trapezoid via fixed-point iteration *)
    let y = ref pred in
    let converged = ref false in
    let it = ref 0 in
    let fnew = ref !fn in
    while (not !converged) && !it < fp_maxiters do
      fnew := rhs tnew !y;
      stats.nfevals <- stats.nfevals + 1;
      let ynext =
        Array.init (Array.length !yn) (fun i ->
            !yn.(i) +. (hcur /. 2.0 *. (!fn.(i) +. !fnew.(i))))
      in
      let d = Linalg.Vec.sub ynext !y in
      y := ynext;
      stats.nniters <- stats.nniters + 1;
      incr it;
      if Linalg.Vec.wrms d weights < 0.1 then converged := true
    done;
    if not !converged then begin
      stats.nncf <- stats.nncf + 1;
      h := hcur /. 2.0;
      if !h < 1e-15 then raise (Too_much_work "Adams step underflow")
    end
    else begin
      (* LTE ~ (corrector - predictor)/2 for AB1/AM2 pair *)
      let le = Linalg.Vec.sub !y pred in
      let err = 0.5 *. Linalg.Vec.wrms le weights in
      if err <= 1.0 then begin
        stats.nsteps <- stats.nsteps + 1;
        yn := !y;
        fn := rhs tnew !y;
        stats.nfevals <- stats.nfevals + 1;
        t := tnew;
        let grow = 0.9 *. ((1.0 /. max err 1e-10) ** (1.0 /. 3.0)) in
        h := hcur *. min 4.0 (max 0.2 grow)
      end
      else begin
        stats.netf <- stats.netf + 1;
        h := hcur *. max 0.1 (0.9 *. ((1.0 /. err) ** (1.0 /. 3.0)))
      end
    end
  done;
  record `Adams { y = !yn; t = !t; stats }

(* --- fixed-step explicit baselines --- *)

(** Classic RK4 with [n] fixed steps. *)
let rk4 ~(rhs : rhs) ~t0 ~y0 ~steps tstop =
  let n = Array.length y0 in
  let h = (tstop -. t0) /. float_of_int steps in
  let y = Array.copy y0 in
  let t = ref t0 in
  for _ = 1 to steps do
    let k1 = rhs !t y in
    let y2 = Array.init n (fun i -> y.(i) +. (h /. 2.0 *. k1.(i))) in
    let k2 = rhs (!t +. (h /. 2.0)) y2 in
    let y3 = Array.init n (fun i -> y.(i) +. (h /. 2.0 *. k2.(i))) in
    let k3 = rhs (!t +. (h /. 2.0)) y3 in
    let y4 = Array.init n (fun i -> y.(i) +. (h *. k3.(i))) in
    let k4 = rhs (!t +. h) y4 in
    for i = 0 to n - 1 do
      y.(i) <-
        y.(i) +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i)))
    done;
    t := !t +. h
  done;
  y

(** Forward Euler with [n] fixed steps (stability baseline). *)
let euler ~(rhs : rhs) ~t0 ~y0 ~steps tstop =
  let n = Array.length y0 in
  let h = (tstop -. t0) /. float_of_int steps in
  let y = Array.copy y0 in
  let t = ref t0 in
  for _ = 1 to steps do
    let f = rhs !t y in
    for i = 0 to n - 1 do
      y.(i) <- y.(i) +. (h *. f.(i))
    done;
    t := !t +. h
  done;
  y

(** Adaptive explicit Bogacki-Shampine RK3(2) — the ERK path of a
    SUNDIALS-style suite (ARKODE's small sibling) for non-stiff problems
    with error control but no nonlinear solves. *)
let erk23 ?(rtol = 1e-6) ?(atol = 1e-9) ?(h0 = 1e-4) ?(max_steps = 500_000)
    ~(rhs : rhs) ~t0 ~y0 tstop =
  let stats = new_stats () in
  let n = Array.length y0 in
  let t = ref t0 in
  let h = ref (min h0 (tstop -. t0)) in
  let y = ref (Array.copy y0) in
  let k1 = ref (rhs t0 y0) in
  stats.nfevals <- stats.nfevals + 1;
  let steps = ref 0 in
  while !t < tstop -. 1e-14 do
    if !steps > max_steps then
      raise (Too_much_work (Fmt.str "ERK23 exceeded %d steps at t=%g" max_steps !t));
    incr steps;
    let hcur = min !h (tstop -. !t) in
    let weights = error_weights ~rtol ~atol !y in
    (* Bogacki-Shampine tableau (FSAL) *)
    let y2 = Array.init n (fun i -> !y.(i) +. (hcur *. 0.5 *. !k1.(i))) in
    let k2 = rhs (!t +. (0.5 *. hcur)) y2 in
    let y3 = Array.init n (fun i -> !y.(i) +. (hcur *. 0.75 *. k2.(i))) in
    let k3 = rhs (!t +. (0.75 *. hcur)) y3 in
    let ynew =
      Array.init n (fun i ->
          !y.(i)
          +. (hcur
             *. ((2.0 /. 9.0 *. !k1.(i)) +. (1.0 /. 3.0 *. k2.(i))
                +. (4.0 /. 9.0 *. k3.(i)))))
    in
    let k4 = rhs (!t +. hcur) ynew in
    stats.nfevals <- stats.nfevals + 3;
    (* embedded 2nd-order solution for the error estimate *)
    let le =
      Array.init n (fun i ->
          hcur
          *. ((7.0 /. 24.0 *. !k1.(i)) +. (0.25 *. k2.(i)) +. (1.0 /. 3.0 *. k3.(i))
             +. (0.125 *. k4.(i)))
          +. !y.(i) -. ynew.(i))
    in
    let err = Linalg.Vec.wrms le weights in
    if err <= 1.0 then begin
      stats.nsteps <- stats.nsteps + 1;
      y := ynew;
      k1 := k4 (* FSAL *);
      t := !t +. hcur;
      h := hcur *. min 5.0 (max 0.2 (0.9 *. ((1.0 /. max err 1e-10) ** (1.0 /. 3.0))))
    end
    else begin
      stats.netf <- stats.netf + 1;
      h := hcur *. max 0.1 (0.9 *. ((1.0 /. err) ** (1.0 /. 3.0)));
      if !h < 1e-15 then raise (Too_much_work "ERK23 step underflow")
    end
  done;
  record `Erk23 { y = !y; t = !t; stats }

(* --- checkpoint/resume support (Icoe_fault.Checkpoint) --- *)

type checkpoint = { ck_t : float; ck_y : float array }

let checkpoint ~t ~y = { ck_t = t; ck_y = Array.copy y }

let checkpoint_of_result (r : result) = checkpoint ~t:r.t ~y:r.y

let resume_bdf ?rtol ?atol ?h0 ?max_steps ?newton_maxiters ~rhs ~lsolve ck
    tstop =
  bdf ?rtol ?atol ?h0 ?max_steps ?newton_maxiters ~rhs ~lsolve ~t0:ck.ck_t
    ~y0:(Array.copy ck.ck_y) tstop

let resume_adams ?rtol ?atol ?h0 ?max_steps ?fp_maxiters ~rhs ck tstop =
  adams ?rtol ?atol ?h0 ?max_steps ?fp_maxiters ~rhs ~t0:ck.ck_t
    ~y0:(Array.copy ck.ck_y) tstop
