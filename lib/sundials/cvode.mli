(** CVODE-style time integration: adaptive BDF with modified Newton for
    stiff problems, an Adams predictor-corrector with fixed-point
    iteration for non-stiff ones, and fixed-step explicit baselines.

    High-level control lives here (host side); all heavy lifting is in
    the [rhs] and [lsolve] callbacks, which decide device residency and
    simulated cost. Hooking hypre's AMG-preconditioned CG into [lsolve]
    reproduces the paper's MFEM/hypre/SUNDIALS stack. *)

type stats = {
  mutable nsteps : int;
  mutable nfevals : int;
  mutable nniters : int;  (** Newton / fixed-point iterations *)
  mutable nlsolves : int;
  mutable netf : int;  (** error-test failures *)
  mutable nncf : int;  (** nonlinear-convergence failures *)
}

val new_stats : unit -> stats

type rhs = float -> float array -> float array
(** [rhs t y] returns dy/dt. *)

type lsolve = gamma:float -> t:float -> y:float array -> b:float array -> float array
(** Approximate solve of (I - gamma J(t, y)) x = b. *)

exception Too_much_work of string
(** Raised when the step cap is exceeded or the step size underflows. *)

val error_weights : rtol:float -> atol:float -> float array -> float array

val dense_lsolve : jac:(float -> float array -> Linalg.Dense.t) -> lsolve
(** Direct dense lsolve from an analytic Jacobian. *)

val fd_dense_lsolve : rhs:rhs -> lsolve
(** Direct dense lsolve with a finite-difference Jacobian of [rhs]. *)

type result = { y : float array; t : float; stats : stats }

val bdf :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?newton_maxiters:int ->
  rhs:rhs ->
  lsolve:lsolve ->
  t0:float ->
  y0:float array ->
  float ->
  result
(** Adaptive BDF (order-1 start-up, order 2 thereafter, variable step)
    with modified Newton; the local-error estimate is corrector minus the
    quadratic history predictor. [bdf ~rhs ~lsolve ~t0 ~y0 tstop]. *)

val adams :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?fp_maxiters:int ->
  rhs:rhs ->
  t0:float ->
  y0:float array ->
  float ->
  result
(** Adams-Bashforth/Moulton predictor-corrector with functional
    iteration, for non-stiff problems. *)

val rk4 : rhs:rhs -> t0:float -> y0:float array -> steps:int -> float -> float array
(** Classic fixed-step RK4 baseline. *)

val euler : rhs:rhs -> t0:float -> y0:float array -> steps:int -> float -> float array
(** Forward Euler baseline (stability comparisons). *)

val erk23 :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  rhs:rhs ->
  t0:float ->
  y0:float array ->
  float ->
  result
(** Adaptive explicit Bogacki-Shampine RK3(2) with an embedded error
    estimate (FSAL) — the ERK path for non-stiff problems. *)

(** {1 Checkpoint/resume}

    Thin state-capture helpers for the fault layer
    ({!Icoe_fault.Checkpoint}): a checkpoint is the integrator's
    mathematical state (t, y). Resuming restarts the method from that
    state — the step-size/order history is rebuilt, exactly as a real
    CVODE restart from a saved vector would, so the resumed solution
    agrees with an uninterrupted run to integration tolerance (not bit
    for bit). *)

type checkpoint = { ck_t : float; ck_y : float array }

val checkpoint : t:float -> y:float array -> checkpoint
(** Copies [y]. *)

val checkpoint_of_result : result -> checkpoint

val resume_bdf :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?newton_maxiters:int ->
  rhs:rhs ->
  lsolve:lsolve ->
  checkpoint ->
  float ->
  result
(** [resume_bdf ~rhs ~lsolve ck tstop] = {!bdf} from [(ck.ck_t, ck.ck_y)]. *)

val resume_adams :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?fp_maxiters:int ->
  rhs:rhs ->
  checkpoint ->
  float ->
  result
(** [resume_adams ~rhs ck tstop] = {!adams} from [(ck.ck_t, ck.ck_y)]. *)
