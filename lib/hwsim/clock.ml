(** Simulated-time accumulator with named phases.

    Experiments charge kernel and transfer times here; harnesses read back
    both the total and the per-phase breakdown (Figs. 2 and 8 are breakdown
    charts). *)

type t = {
  mutable total : float;
  phases : (string, float ref) Hashtbl.t;
  mutable order : string list; (* first-seen order, reversed *)
}

let create () = { total = 0.0; phases = Hashtbl.create 16; order = [] }

let reset t =
  t.total <- 0.0;
  Hashtbl.reset t.phases;
  t.order <- []

(** Charge [dt] seconds to [phase]'s breakdown without advancing the
    total. The stream scheduler uses this for overlapped work: each
    item's busy seconds stay attributed to its phase while the total
    only advances by the DAG's critical path (see {!advance}). *)
let attribute t ~phase dt =
  assert (dt >= 0.0);
  match Hashtbl.find_opt t.phases phase with
  | Some r -> r := !r +. dt
  | None ->
      Hashtbl.add t.phases phase (ref dt);
      t.order <- phase :: t.order

(** Advance the total by [dt] seconds without charging any phase. *)
let advance t dt =
  assert (dt >= 0.0);
  t.total <- t.total +. dt

(** Charge [dt] seconds to [phase]. *)
let tick t ~phase dt =
  assert (dt >= 0.0);
  t.total <- t.total +. dt;
  match Hashtbl.find_opt t.phases phase with
  | Some r -> r := !r +. dt
  | None ->
      Hashtbl.add t.phases phase (ref dt);
      t.order <- phase :: t.order

let total t = t.total

let phase t name =
  match Hashtbl.find_opt t.phases name with Some r -> !r | None -> 0.0

(** Phases in first-charged order with their accumulated seconds. *)
let breakdown t =
  List.rev_map (fun name -> (name, phase t name)) t.order

let pp ppf t =
  Fmt.pf ppf "@[<v>total %.6gs" t.total;
  List.iter (fun (n, s) -> Fmt.pf ppf "@,  %-20s %.6gs" n s) (breakdown t);
  Fmt.pf ppf "@]"
