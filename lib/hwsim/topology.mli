(** Hierarchical network topologies: node -> leaf switch -> spine/fabric.

    A topology is a leaf-first stack of switching levels, each priced by
    its own {!Link.t} and derated by a contention factor when
    oversubscribed. What a transfer costs depends on how many levels it
    crosses, which depends on the gang's {!placement}.

    {b Bit-identity contract:} a one-level topology ({!flat}) prices
    every transfer as exactly [Link.transfer_time] of its single link —
    same floats, same operations — so every pre-topology cost model is
    recovered unchanged by wrapping its old fabric link. All machines
    that predate this module do exactly that, keeping harness outputs
    and bench baselines byte-identical by default. *)

type placement =
  | Contiguous  (** one block of consecutive node ids *)
  | Rank_reordered
      (** fragmented allocation, ranks reordered for locality: the
          contiguous crossing plus one level of spill *)
  | Random_spread  (** scattered allocation: every message pays the top *)

val placement_name : placement -> string

type level = {
  name : string;
  link : Link.t;
  radix : int;
      (** fan-out of a level-[i] subtree in level-[i-1] subtrees *)
  contention : float;  (** >= 1: oversubscription bandwidth divisor *)
}

type t = { name : string; levels : level array }  (** leaf-first *)

val make : name:string -> level list -> t
(** Validating constructor: raises [Invalid_argument] on an empty level
    list, a radix < 2, a contention < 1 or non-finite, or an invalid
    link (re-checked through {!Link.make}). *)

val flat : ?name:string -> Link.t -> t
(** The degenerate one-level topology every pre-topology machine model
    assumed: the whole machine behind one flat link. *)

val fat_tree :
  name:string -> leaf:Link.t -> spine:Link.t -> leaf_radix:int ->
  pod_radix:int -> ?core_contention:float -> unit -> t
(** Three levels: leaf switches ([leaf_radix] nodes each), pods
    ([pod_radix] leaves each), and a core tapered by [core_contention]
    (default 2.0). *)

val dragonfly :
  name:string -> local:Link.t -> global:Link.t -> group_radix:int ->
  ?global_contention:float -> unit -> t
(** Two levels: electrical all-to-all groups of [group_radix] nodes,
    joined by global optical links tapered by [global_contention]
    (default 2.0). *)

val depth : t -> int
val is_flat : t -> bool

val leaf_link : t -> Link.t
(** The level-0 (injection) link; for {!flat} topologies, the old
    machine fabric itself. *)

val reach : t -> int -> int
(** [reach t lvl]: endpoints under one level-[lvl] subtree (saturating
    product of radixes [0..lvl]). *)

val crossing : t -> nodes:int -> placement -> int
(** Highest level a gang of [nodes] endpoints crosses under a
    placement. Monotone: contiguous <= rank-reordered <= random. *)

val crossing_of_ids : t -> int list -> int
(** Highest level actually crossed by a concrete allocation (lowest
    common ancestor of the node ids); 0 for gangs of at most one. *)

val hops : t -> level:int -> int
(** Link traversals of a path crossing levels [0..level] (2 per level:
    up and back down); 1 on flat topologies. *)

val path_time : t -> level:int -> bytes:float -> float
(** Point-to-point transfer crossing levels [0..level]: per level, two
    hop latencies plus contention-derated wire time. Strictly monotone
    in [level] for positive [bytes]; zero bytes cost 0. One level
    degenerates to exactly [Link.transfer_time]. *)

val gang_transfer_time :
  t -> nodes:int -> placement:placement -> bytes:float -> float
(** [path_time] at the gang's {!crossing}. *)

val alltoall_gbs : t -> nodes:int -> float
(** Effective per-node all-to-all bandwidth of a contiguous gang: the
    most contended crossed level throttles the collective; the fabric
    bandwidth itself when flat. *)

val allreduce_rounds : int -> float
(** [ceil (log2 (max 2 nodes))] — the recursive-doubling round count
    every allreduce model in the repo uses. *)

val allreduce_time :
  t -> nodes:int -> placement:placement -> bytes:float -> float
(** Recursive-doubling allreduce: round [r] pairs partners [2^r] ranks
    apart, so contiguous blocks keep early rounds inside leaf subtrees
    while random spreads pay the top every round. Flat recovers
    [rounds *. transfer_time fabric] bit-identically. *)

val placement_penalty : t -> nodes:int -> level:int -> float
(** Service-time inflation of a gang that crossed [level] instead of
    its contiguous-best crossing (ratio of reference gang transfers);
    1.0 when no worse than contiguous, and always on flat topologies. *)

val pp_level : Format.formatter -> level -> unit
val pp : Format.formatter -> t -> unit
