(** Simulated-time accumulator with named phases.

    Experiments charge kernel and transfer times here; harnesses read back
    both the total and the per-phase breakdown (Figs. 2 and 8 of the paper
    are breakdown charts). *)

type t

val create : unit -> t
val reset : t -> unit

val tick : t -> phase:string -> float -> unit
(** Charge nonnegative seconds to a named phase. *)

val attribute : t -> phase:string -> float -> unit
(** Charge nonnegative seconds to a phase's breakdown WITHOUT advancing
    the total. Used by {!Sched} for overlapped work: per-phase busy
    seconds keep accumulating while the total only moves by the
    schedule's critical path. After overlapped charging, the sum of
    {!breakdown} can exceed {!total} — that surplus is exactly the
    hidden (overlapped) time. *)

val advance : t -> float -> unit
(** Advance the total by nonnegative seconds without charging a phase
    (the critical-path counterpart of {!attribute}). *)

val total : t -> float

val phase : t -> string -> float
(** Accumulated seconds of one phase (0 if never charged). *)

val breakdown : t -> (string * float) list
(** Phases in first-charged order. *)

val pp : Format.formatter -> t -> unit
