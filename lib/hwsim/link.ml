(** Host-device and network links: latency + bandwidth transfer model.

    The VBL GPUDirect study (Sec 4.11) is a pure crossover property of this
    model: GPUDirect has lower setup latency but lower sustained bandwidth
    than a pipelined cudaMemcpy over NVLink, so cudaMemcpy overtakes it at a
    few KB (host-to-device) and ~hundreds of bytes (device-to-host). *)

type t = {
  name : string;
  latency_s : float;
  bw_gbs : float;  (** sustained unidirectional bandwidth, GB/s *)
}

let pp ppf l = Fmt.pf ppf "%s(%.1fus, %.0f GB/s)" l.name (l.latency_s *. 1e6) l.bw_gbs

(** Validating constructor: a link with negative latency or non-positive
    bandwidth would price transfers in negative seconds, which then
    propagates silently through every cost model above. A miswritten
    machine model should fail at construction, not in a report. *)
let make ~name ~latency_s ~bw_gbs =
  if not (Float.is_finite latency_s) || latency_s < 0.0 then
    invalid_arg
      (Fmt.str "Link.make %s: latency %.17g s (must be finite and >= 0)" name
         latency_s);
  if not (Float.is_finite bw_gbs) || bw_gbs <= 0.0 then
    invalid_arg
      (Fmt.str "Link.make %s: bandwidth %.17g GB/s (must be finite and > 0)"
         name bw_gbs);
  { name; latency_s; bw_gbs }

(** Time to move [bytes] across the link; an empty transfer costs
    nothing (no message, no latency). *)
let transfer_time l ~bytes =
  assert (bytes >= 0.0);
  if bytes = 0.0 then 0.0
  else l.latency_s +. (bytes /. (l.bw_gbs *. 1e9))

(** PCIe gen3 x16, the pre-EA clusters' host link. *)
let pcie3 = { name = "PCIe3"; latency_s = 10e-6; bw_gbs = 12.0 }

(** NVLink 1.0 (Minsky, P8<->P100): 2 bricks. *)
let nvlink1 = { name = "NVLink1"; latency_s = 8e-6; bw_gbs = 40.0 }

(** NVLink 2.0 (Witherspoon, P9<->V100): 3 bricks. *)
let nvlink2 = { name = "NVLink2"; latency_s = 7e-6; bw_gbs = 75.0 }

(** Pipelined cudaMemcpy over NVLink2: full bandwidth after ramp-up. *)
let cuda_memcpy = { name = "cudaMemcpy"; latency_s = 7e-6; bw_gbs = 75.0 }

(** GPUDirect RDMA-style path: very low setup cost, lower streaming rate. *)
let gpudirect = { name = "GPUDirect"; latency_s = 1.2e-6; bw_gbs = 8.0 }

(** CUDA Unified Memory migrates in 64 KiB blocks: a transfer of n bytes
    moves ceil(n / 64K) pages, each paying a page-fault service latency
    plus its wire time. The fault-service cost replaces the link setup
    latency (each page fault is its own round trip), so the rounded-up
    tail page is not additionally charged [latency_s]; zero bytes move
    zero pages and cost nothing. *)
let unified_memory_transfer ~link ~bytes =
  assert (bytes >= 0.0);
  let page = 65536.0 in
  let pages = Float.ceil (bytes /. page) in
  let fault_cost = 3e-6 in
  if pages = 0.0 then 0.0
  else (pages *. fault_cost) +. (pages *. page /. (link.bw_gbs *. 1e9))

(** EDR InfiniBand node interconnect (per-port). *)
let ib_edr = { name = "IB-EDR"; latency_s = 1.0e-6; bw_gbs = 12.5 }

(** Sierra dual-rail EDR. *)
let ib_dual_edr = { name = "IB-2xEDR"; latency_s = 1.0e-6; bw_gbs = 25.0 }

(** Gemini-era (Kraken/Catalyst ancestors) slower fabric. *)
let ib_qdr = { name = "IB-QDR"; latency_s = 1.6e-6; bw_gbs = 4.0 }

(** NVMe burst tier on Sierra nodes (HavoqGT out-of-core runs). *)
let nvme = { name = "NVMe"; latency_s = 90e-6; bw_gbs = 5.5 }

(* --- exascale-generation links (ROADMAP item 3; Bauman et al. 2023,
   Elwasif et al. 2022). Built through [make] so a typo in a machine
   model fails at module init, not in a report. --- *)

(** Frontier node injection: 4 Slingshot-11 NICs, one per MI250X (the
    "4-plane" dragonfly), 25 GB/s each, aggregated. *)
let slingshot_4plane = make ~name:"Slingshot11x4" ~latency_s:1.8e-6 ~bw_gbs:100.0

(** One Slingshot-11 plane: intra-group electrical all-to-all. *)
let slingshot = make ~name:"Slingshot11" ~latency_s:1.8e-6 ~bw_gbs:25.0

(** Slingshot global optical links between dragonfly groups (per-node
    share of the group's global ports; tapered). *)
let slingshot_optical = make ~name:"Slingshot11-opt" ~latency_s:2.2e-6 ~bw_gbs:25.0

(** InfiniBand NDR (400 Gb/s ports) on the Grace-Hopper generation. *)
let ib_ndr = make ~name:"IB-NDR" ~latency_s:1.3e-6 ~bw_gbs:50.0

(** NVLink-C2C: Grace CPU <-> Hopper GPU coherent host link. *)
let nvlink_c2c = make ~name:"NVLink-C2C" ~latency_s:0.9e-6 ~bw_gbs:450.0

(** Infinity Fabric: Trento CPU <-> MI250X host link on Frontier. *)
let infinity_fabric = make ~name:"InfinityFabric" ~latency_s:1.5e-6 ~bw_gbs:36.0
