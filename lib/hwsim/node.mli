(** Node and cluster composition: the machines of the paper.

    A node aggregates CPU sockets and GPUs with a host link; a machine is
    [nodes] identical nodes on a fabric. *)

type t = {
  name : string;
  cpu : Device.t;
  cpu_sockets : int;
  gpu : Device.t option;
  gpus : int;
  host_link : Link.t;
  nvme_gb : float;  (** node-local burst-tier capacity; 0 when absent *)
}

type machine = { node : t; nodes : int; topology : Topology.t }
(** [nodes] identical nodes joined by a hierarchical network. The
    paper-era machines all carry {!Topology.flat} topologies, which
    price transfers bit-identically to the old flat [fabric] field. *)

val fabric : machine -> Link.t
(** The machine's injection (level-0) link — for flat topologies exactly
    the old [fabric] field. *)

val cpu_peak_gflops : t -> float
val gpu_peak_gflops : t -> float
val node_peak_gflops : t -> float

val witherspoon : t
(** Sierra node: 2x P9 + 4x V100 on NVLink2, 1.6 TB NVMe. *)

val minsky : t
(** Early-access node: 2x P8 + 4x P100 on NVLink1. *)

val cori_ii : t
(** KNL node at NERSC (SW4's comparison machine). *)

val viz_node : t
val dev_node : t
val catalyst_node : t

val frontier_node : t
(** Frontier node: 1x Trento + 4x MI250X on Infinity Fabric (Bauman et
    al. 2023). *)

val grace_hopper_node : t
(** Grace-Hopper superchip: 1x Grace + 1x H100 on NVLink-C2C. *)

val sierra : machine
val ea_system : machine
val cori : machine
val catalyst : machine

val frontier : machine
(** 9408 nodes on a 4-plane Slingshot dragonfly (128-node groups,
    3:1-tapered global optics). *)

val grace_hopper : machine
(** 4608 superchip nodes on an NDR fat tree with a 2:1 tapered core. *)

val pp : Format.formatter -> t -> unit

val pp_machine : Format.formatter -> machine -> unit
(** Node composition plus the network parameters {!pp} omits: machine
    scale and the topology's per-level links, radixes and contention. *)
