(** Structured, span-based tracing of the simulated machine.

    A trace is a tree of named spans carrying simulated start/end times,
    the device they ran on, and optional kernel attributes. Charges go
    through the bound {!Clock}, so span totals and the clock's per-phase
    breakdown agree; rollups aggregate leaves only, so nested phase spans
    never double-count. See trace.mli for the full story. *)

type span = {
  name : string;
  device : string option;
  start : float;
  mutable stop : float;
  mutable flops : float;
  mutable bytes : float;
  mutable bound : Roofline.bound option;
  mutable bw_util : float option;
  mutable children : span list; (* newest first *)
}

type t = {
  clock : Clock.t;
  root : span;
  mutable stack : span list; (* innermost open span first; root excluded *)
  mutable devices : (string * Device.t) list; (* seen by charge_kernel *)
  mutable nspans : int;
}

let mk_span ?device ~start name =
  {
    name;
    device;
    start;
    stop = start;
    flops = 0.0;
    bytes = 0.0;
    bound = None;
    bw_util = None;
    children = [];
  }

let create ?(root = "experiment") clock =
  {
    clock;
    root = mk_span ~start:(Clock.total clock) root;
    stack = [];
    devices = [];
    nspans = 0;
  }

let clock t = t.clock
let root t = t.root
let now t = Clock.total t.clock

let current t = match t.stack with s :: _ -> s | [] -> t.root

let add_child t parent sp =
  parent.children <- sp :: parent.children;
  t.nspans <- t.nspans + 1

let push t ?device name =
  let sp = mk_span ?device ~start:(now t) name in
  add_child t (current t) sp;
  t.stack <- sp :: t.stack

let pop t =
  match t.stack with
  | [] -> invalid_arg "Trace.pop: no open span (root cannot be popped)"
  | sp :: rest ->
      sp.stop <- now t;
      t.stack <- rest

let with_span t ?device name f =
  push t ?device name;
  match f () with
  | v ->
      pop t;
      v
  | exception e ->
      pop t;
      raise e

(* Bridge to the metrics registry: every simulated second charged to a
   phase also shows up as hwsim_phase_seconds{phase=...}, so registry
   snapshots and [by_phase] rollups agree. Counter handles are memoized
   per phase to keep the charge path cheap. *)
let phase_counters : (string, Icoe_obs.Metrics.counter) Hashtbl.t =
  Hashtbl.create 16

let phase_seconds phase =
  match Hashtbl.find_opt phase_counters phase with
  | Some c -> c
  | None ->
      let c =
        Icoe_obs.Metrics.counter ~help:"Simulated seconds charged per phase"
          ~labels:[ ("phase", phase) ]
          "hwsim_phase_seconds"
      in
      Hashtbl.add phase_counters phase c;
      c

(* Flight-recorder bridge: every charge/span leaf also lands in the
   unified event log when a sink is installed (ICOE_EVENTS=path). The
   [enabled] check keeps the disabled path to one branch. *)
let emit_span_event ?device ?(flops = 0.0) ?(bytes = 0.0) ~phase ~start dur =
  if Icoe_obs.Events.enabled () then begin
    let open Icoe_obs.Events in
    let fields = [ ("phase", S phase); ("dur_s", F dur) ] in
    let fields =
      match device with
      | Some d -> ("device", S d) :: fields
      | None -> fields
    in
    let fields =
      if flops > 0.0 then fields @ [ ("flops", F flops) ] else fields
    in
    let fields =
      if bytes > 0.0 then fields @ [ ("bytes", F bytes) ] else fields
    in
    emit ~t_s:start ~kind:"span" ~source:"hwsim/trace" fields
  end

let charge t ?device ~phase dt =
  let sp = mk_span ?device ~start:(now t) phase in
  Clock.tick t.clock ~phase dt;
  Icoe_obs.Metrics.inc ~by:(max 0.0 dt) (phase_seconds phase);
  sp.stop <- now t;
  emit_span_event ?device ~phase ~start:sp.start dt;
  add_child t (current t) sp

(* Scheduler charging: a span pinned at an absolute simulated time
   rather than at the clock's now. Busy seconds go to the clock's phase
   breakdown and the metrics bridge, but the clock total does NOT move —
   the scheduler advances it once, by the critical path, via [advance]. *)
let scheduled_span t ?device ?(flops = 0.0) ?(bytes = 0.0) ?bound ~phase
    ~start dur =
  assert (dur >= 0.0);
  let sp = mk_span ?device ~start phase in
  sp.stop <- start +. dur;
  sp.flops <- flops;
  sp.bytes <- bytes;
  sp.bound <- bound;
  Clock.attribute t.clock ~phase dur;
  Icoe_obs.Metrics.inc ~by:dur (phase_seconds phase);
  emit_span_event ?device ~flops ~bytes ~phase ~start dur;
  add_child t (current t) sp

let advance t dt = Clock.advance t.clock dt

let register_device t (d : Device.t) =
  if not (List.mem_assoc d.Device.name t.devices) then
    t.devices <- (d.Device.name, d) :: t.devices

let charge_kernel t ?eff ?lanes_used ?phase (d : Device.t) (k : Kernel.t) =
  let dt, bound = Roofline.time_and_bound ?eff ?lanes_used d k in
  let phase = match phase with Some p -> p | None -> k.Kernel.name in
  register_device t d;
  let sp = mk_span ~device:d.Device.name ~start:(now t) phase in
  Clock.tick t.clock ~phase dt;
  Icoe_obs.Metrics.inc ~by:(max 0.0 dt) (phase_seconds phase);
  sp.stop <- now t;
  sp.flops <- k.Kernel.flops;
  sp.bytes <- k.Kernel.bytes;
  sp.bound <- Some bound;
  emit_span_event ~device:d.Device.name ~flops:k.Kernel.flops
    ~bytes:k.Kernel.bytes ~phase ~start:sp.start dt;
  add_child t (current t) sp;
  dt

let annotate_counters t c = (current t).bw_util <- Some (Counters.utilization c)

let span_count t = t.nspans

(* Latest close anywhere in the tree: open spans (including the root,
   which is never popped) fall back to their children. *)
let rec effective_stop sp =
  List.fold_left (fun acc c -> max acc (effective_stop c)) sp.stop sp.children

let total t = effective_stop t.root -. t.root.start

let duration sp = max 0.0 (effective_stop sp -. sp.start)

(* Chronological walk (children are stored newest first). *)
let iter_spans t f =
  let rec go sp =
    f sp;
    List.iter go (List.rev sp.children)
  in
  List.iter go (List.rev t.root.children)

let leaves t =
  let acc = ref [] in
  iter_spans t (fun sp -> if sp.children = [] then acc := sp :: !acc);
  List.rev !acc

(* --- aggregation --- *)

type rollup = {
  key : string;
  seconds : float;
  spans : int;
  r_flops : float;
  r_bytes : float;
}

let rollup_by key_of t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
      let key = key_of sp in
      let r =
        match Hashtbl.find_opt tbl key with
        | Some r -> r
        | None ->
            let r =
              ref { key; seconds = 0.0; spans = 0; r_flops = 0.0; r_bytes = 0.0 }
            in
            Hashtbl.add tbl key r;
            order := key :: !order;
            r
      in
      r :=
        {
          !r with
          seconds = !r.seconds +. duration sp;
          spans = !r.spans + 1;
          r_flops = !r.r_flops +. sp.flops;
          r_bytes = !r.r_bytes +. sp.bytes;
        })
    (leaves t);
  List.rev_map (fun key -> !(Hashtbl.find tbl key)) !order

let by_phase t = rollup_by (fun sp -> sp.name) t
let by_device t = rollup_by (fun sp -> Option.value sp.device ~default:"-") t

let top_spans ?(n = 5) t =
  let all = ref [] in
  iter_spans t (fun sp -> all := sp :: !all);
  let sorted =
    List.stable_sort (fun a b -> Float.compare (duration b) (duration a)) !all
  in
  List.filteri (fun i _ -> i < n) sorted

(* --- table rendering --- *)

let share ~total s = if total > 0.0 then 100.0 *. s /. total else 0.0

let device_table ?(title = "per-device rollup") t =
  let open Icoe_util in
  let tot = total t in
  let tbl =
    Table.create ~title
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right |]
      [ "device"; "spans"; "seconds"; "share"; "GF/s"; "% of peak" ]
  in
  List.iter
    (fun r ->
      let gflops = if r.seconds > 0.0 then r.r_flops /. r.seconds /. 1e9 else 0.0 in
      let peak_frac =
        match List.assoc_opt r.key t.devices with
        | Some d when r.seconds > 0.0 && r.r_flops > 0.0 ->
            Fmt.str "%.1f%%" (100.0 *. gflops /. d.Device.peak_gflops)
        | _ -> "-"
      in
      Table.add_row tbl
        [ r.key; string_of_int r.spans; Fmt.str "%.3e" r.seconds;
          Fmt.str "%.1f%%" (share ~total:tot r.seconds);
          (if r.r_flops > 0.0 then Fmt.str "%.1f" gflops else "-"); peak_frac ])
    (by_device t);
  tbl

let phase_table ?(title = "per-phase rollup") t =
  let open Icoe_util in
  let tot = total t in
  let tbl =
    Table.create ~title
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
      [ "phase"; "spans"; "seconds"; "share" ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ r.key; string_of_int r.spans; Fmt.str "%.3e" r.seconds;
          Fmt.str "%.1f%%" (share ~total:tot r.seconds) ])
    (by_phase t);
  tbl

let bound_name = function
  | Some Roofline.Compute_bound -> "compute"
  | Some Roofline.Bandwidth_bound -> "bandwidth"
  | None -> "-"

let span_table ?(title = "top spans") ?(n = 5) t =
  let open Icoe_util in
  let tbl =
    Table.create ~title
      ~aligns:[| Table.Left; Table.Left; Table.Right; Table.Left |]
      [ "span"; "device"; "seconds"; "bound" ]
  in
  List.iter
    (fun sp ->
      Table.add_row tbl
        [ sp.name; Option.value sp.device ~default:"-";
          Fmt.str "%.3e" (duration sp); bound_name sp.bound ])
    (top_spans ~n t);
  tbl

(* --- Chrome trace-event export --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One Chrome "complete" (ph:"X") event per span; ts/dur are simulated
   microseconds. One process per trace, one thread per device. *)
let add_events buf ~pid ~pname t =
  let add fmt = Fmt.kstr (fun s -> Buffer.add_string buf s) fmt in
  let sep () = if Buffer.length buf > 1 then Buffer.add_string buf ",\n" in
  sep ();
  add
    {|{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"%s"}}|}
    pid (json_escape pname);
  let tids = Hashtbl.create 8 in
  Hashtbl.add tids "-" 0;
  let tid_of sp =
    let dev = Option.value sp.device ~default:"-" in
    match Hashtbl.find_opt tids dev with
    | Some i -> i
    | None ->
        let i = Hashtbl.length tids in
        Hashtbl.add tids dev i;
        sep ();
        add
          {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
          pid i (json_escape dev);
        i
  in
  let emit sp ~tid =
    sep ();
    add {|{"name":"%s","cat":"sim","ph":"X","ts":%.6f,"dur":%.6f,"pid":%d,"tid":%d|}
      (json_escape sp.name)
      (sp.start *. 1e6)
      (duration sp *. 1e6)
      pid tid;
    add {|,"args":{|};
    let first = ref true in
    let arg fmt =
      if !first then first := false else Buffer.add_char buf ',';
      add fmt
    in
    if sp.flops > 0.0 then arg {|"flops":%.6g|} sp.flops;
    if sp.bytes > 0.0 then arg {|"bytes":%.6g|} sp.bytes;
    (match sp.bound with
    | Some b -> arg {|"bound":"%s"|} (bound_name (Some b))
    | None -> ());
    (match sp.bw_util with
    | Some u -> arg {|"bw_utilization":%.4f|} u
    | None -> ());
    add "}}"
  in
  let rec walk parent_tid sp =
    (* children inherit the enclosing span's thread unless they name a
       device of their own, so nesting renders as stacked slices *)
    let tid = match sp.device with Some _ -> tid_of sp | None -> parent_tid in
    emit sp ~tid;
    List.iter (walk tid) (List.rev sp.children)
  in
  emit t.root ~tid:0;
  List.iter (walk 0) (List.rev t.root.children)

let chrome_json_of_many traces =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri (fun pid (name, t) -> add_events buf ~pid ~pname:name t) traces;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let to_chrome_json t = chrome_json_of_many [ (t.root.name, t) ]

let pp ppf t =
  let rec go indent sp =
    Fmt.pf ppf "%s%s%a [%.3e s]@," indent sp.name
      (fun ppf -> function
        | Some d -> Fmt.pf ppf "@@%s" d
        | None -> ())
      sp.device (duration sp);
    List.iter (go (indent ^ "  ")) (List.rev sp.children)
  in
  Fmt.pf ppf "@[<v>";
  go "" t.root;
  Fmt.pf ppf "@]"
