(** Event-driven stream/queue scheduler: comm/compute overlap for the
    simulated machine.

    Engines enqueue work items (roofline-priced kernels, link transfers,
    raw charges) on named streams with explicit dependencies. A stream is
    an in-order queue (a CUDA stream, a NIC, a core set): items on the
    same stream execute in enqueue order; items on different streams run
    concurrently once their dependencies have finished. [run] advances
    simulated time by the dependency DAG's critical path instead of the
    serial sum — per-stream busy time and per-phase attribution still
    land in the bound {!Clock}/{!Trace} (via {!Trace.scheduled_span}),
    so rollups, Chrome export, metrics and fault accounting keep working
    unchanged.

    With overlap disabled (the [ICOE_OVERLAP=0] fallback, or
    [~overlap:false]), [run] degrades to serialized charging: every item
    is charged back-to-back through the exact same path as
    {!Trace.charge}, so the makespan equals the serial sum and the
    emitted spans/clock ticks are bit-identical to an engine that never
    used the scheduler. *)

type item = {
  id : int;
  stream : string;
  phase : string;
  device : string;
  dur : float;
  deps : item list;
  i_flops : float;
  i_bytes : float;
  i_bound : Roofline.bound option;
  mutable start_s : float;  (** schedule-relative; valid after [run] *)
  mutable finish_s : float;
}

type t = {
  overlap : bool;
  trace : Trace.t option;
  mutable items : item list;  (** newest first *)
  mutable nitems : int;
  mutable streams : string list;  (** first-seen order, reversed *)
  mutable ran : float option;  (** makespan memo: [run] is idempotent *)
}

(* ICOE_OVERLAP=0|off|false disables overlap process-wide (read once, at
   first use, mirroring ICOE_METRICS). *)
let env_enabled =
  lazy
    (match Sys.getenv_opt "ICOE_OVERLAP" with
    | Some ("0" | "off" | "false" | "OFF" | "FALSE") -> false
    | _ -> true)

let overlap_enabled () = Lazy.force env_enabled

let create ?overlap ?trace () =
  let overlap =
    match overlap with Some b -> b | None -> overlap_enabled ()
  in
  { overlap; trace; items = []; nitems = 0; streams = []; ran = None }

let overlap t = t.overlap

let add t ~stream ~phase ~device ~dur ~deps ~flops ~bytes ~bound =
  if t.ran <> None then
    invalid_arg "Sched: cannot enqueue after run";
  if dur < 0.0 || not (Float.is_finite dur) then
    invalid_arg "Sched: item duration must be finite and nonnegative";
  if not (List.mem stream t.streams) then t.streams <- stream :: t.streams;
  let it =
    {
      id = t.nitems;
      stream;
      phase;
      device;
      dur;
      deps;
      i_flops = flops;
      i_bytes = bytes;
      i_bound = bound;
      start_s = 0.0;
      finish_s = dur;
    }
  in
  t.items <- it :: t.items;
  t.nitems <- t.nitems + 1;
  it

let work t ~stream ?(deps = []) ?device ~phase dur =
  let device = Option.value device ~default:stream in
  add t ~stream ~phase ~device ~dur ~deps ~flops:0.0 ~bytes:0.0 ~bound:None

let kernel t ~stream ?(deps = []) ?eff ?lanes_used ?phase (d : Device.t)
    (k : Kernel.t) =
  let dur, bound = Roofline.time_and_bound ?eff ?lanes_used d k in
  let phase = match phase with Some p -> p | None -> k.Kernel.name in
  add t ~stream ~phase ~device:d.Device.name ~dur ~deps ~flops:k.Kernel.flops
    ~bytes:k.Kernel.bytes ~bound:(Some bound)

let transfer t ~stream ?(deps = []) ?phase (l : Link.t) ~bytes =
  let dur = Link.transfer_time l ~bytes in
  let phase = match phase with Some p -> p | None -> l.Link.name in
  add t ~stream ~phase ~device:l.Link.name ~dur ~deps ~flops:0.0 ~bytes
    ~bound:None

let duration it = it.dur
let stream_of it = it.stream
let deps_of it = it.deps
let items t = List.rev t.items
let serial_sum t = List.fold_left (fun acc it -> acc +. it.dur) 0.0 (items t)

(* Items are topologically ordered by construction (an item can only
   depend on previously created items), so one pass in enqueue order
   computes the schedule. Stream order adds an implicit dependency on
   the previous item of the same stream. *)
let run t =
  match t.ran with
  | Some m -> m
  | None ->
      let order = items t in
      let makespan =
        if t.overlap then begin
          let ready = Hashtbl.create 8 in
          List.fold_left
            (fun acc it ->
              let stream_ready =
                Option.value (Hashtbl.find_opt ready it.stream) ~default:0.0
              in
              let start =
                List.fold_left
                  (fun acc d -> Float.max acc d.finish_s)
                  stream_ready it.deps
              in
              it.start_s <- start;
              it.finish_s <- start +. it.dur;
              Hashtbl.replace ready it.stream it.finish_s;
              Float.max acc it.finish_s)
            0.0 order
        end
        else
          (* serialized fallback: back-to-back in enqueue order *)
          List.fold_left
            (fun now it ->
              it.start_s <- now;
              it.finish_s <- now +. it.dur;
              it.finish_s)
            0.0 order
      in
      (match t.trace with
      | None -> ()
      | Some tr ->
          let t0 = Trace.now tr in
          if t.overlap then begin
            List.iter
              (fun it ->
                Trace.scheduled_span tr ~device:it.device ~flops:it.i_flops
                  ~bytes:it.i_bytes ?bound:it.i_bound ~phase:it.phase
                  ~start:(t0 +. it.start_s) it.dur)
              order;
            Trace.advance tr makespan
          end
          else
            (* bit-identical to an engine calling Trace.charge per item:
               span at now, clock tick (total + phase), metrics bridge *)
            List.iter
              (fun it ->
                Trace.scheduled_span tr ~device:it.device ~flops:it.i_flops
                  ~bytes:it.i_bytes ?bound:it.i_bound ~phase:it.phase
                  ~start:(Trace.now tr) it.dur;
                Trace.advance tr it.dur)
              order);
      t.ran <- Some makespan;
      makespan

let ran t = t.ran <> None

let makespan t =
  match t.ran with Some m -> m | None -> invalid_arg "Sched.makespan: not run"

let start_time it = it.start_s
let finish_time it = it.finish_s

let dag t =
  items t
  |> List.map (fun it ->
         {
           Icoe_obs.Prof.idx = it.id;
           stream = it.stream;
           phase = it.phase;
           device = it.device;
           dur = it.dur;
           deps = List.map (fun d -> d.id) it.deps;
         })
  |> Array.of_list

let profile t = Icoe_obs.Prof.analyze ~overlap:t.overlap (dag t)

(** Critical-path over serial-sum modeled time, in (0, 1]: 1.0 means no
    overlap was found (or nothing was enqueued); smaller is better. *)
let overlap_efficiency t =
  let serial = serial_sum t in
  if serial <= 0.0 then 1.0 else makespan t /. serial

(** Per-stream busy seconds (sum of item durations), first-seen order.
    Conservation: busy time is independent of scheduling, so it is the
    same whether [run] overlapped or serialized. *)
let stream_busy t =
  let busy = Hashtbl.create 8 in
  List.iter
    (fun it ->
      let b = Option.value (Hashtbl.find_opt busy it.stream) ~default:0.0 in
      Hashtbl.replace busy it.stream (b +. it.dur))
    t.items;
  List.rev_map (fun s -> (s, Hashtbl.find busy s)) t.streams
