(** Structured, span-based tracing of the simulated machine (Sec 4.10.6).

    The Tools activity made the machine observable — user-readable
    memory-traffic counters, Performance Co-Pilot dashboards — because
    "understanding the bandwidth that an application uses is crucial to
    performance tuning". This module is the same idea for the simulated
    system: a trace is a tree of named spans (experiment, phase, kernel,
    transfer), each carrying simulated start/end time, the device it ran
    on, and optional kernel attributes (flops, bytes, roofline bound).
    Charges tick the underlying {!Clock}, so per-phase span totals agree
    with the clock breakdown the harnesses already print.

    On top of the raw tree sit an aggregation pass (per-device and
    per-phase rollups, top-N spans, rendered with {!Icoe_util.Table}) and
    a Chrome trace-event JSON exporter, so any run can be opened in
    [chrome://tracing] or Perfetto. *)

type span = {
  name : string;
  device : string option;  (** device the span ran on, if any *)
  start : float;  (** simulated seconds at open *)
  mutable stop : float;  (** simulated seconds at close *)
  mutable flops : float;  (** kernel attribute: FP work inside the span *)
  mutable bytes : float;  (** kernel attribute: DRAM traffic inside the span *)
  mutable bound : Roofline.bound option;  (** which roof bound the kernel *)
  mutable bw_util : float option;  (** {!Counters} utilization annotation *)
  mutable children : span list;  (** newest first *)
}

type t
(** A tracer bound to a {!Clock.t}. Span timestamps are read from the
    clock, and charges advance it. *)

val create : ?root:string -> Clock.t -> t
(** [create clock] makes a tracer whose root span (default name
    ["experiment"]) opens at the clock's current total. *)

val clock : t -> Clock.t
val root : t -> span

val now : t -> float
(** Current simulated time ([Clock.total]). *)

val push : t -> ?device:string -> string -> unit
(** Open a child span under the innermost open span. *)

val pop : t -> unit
(** Close the innermost open span. Raises [Invalid_argument] if only the
    root is open. *)

val with_span : t -> ?device:string -> string -> (unit -> 'a) -> 'a
(** Scoped [push]/[pop]; the span is closed even on exceptions. *)

val charge : t -> ?device:string -> phase:string -> float -> unit
(** Trace-emitting variant of {!Clock.tick}: charge nonnegative seconds
    to [phase] on the clock AND record a leaf span of that duration under
    the innermost open span. *)

val scheduled_span :
  t ->
  ?device:string ->
  ?flops:float ->
  ?bytes:float ->
  ?bound:Roofline.bound ->
  phase:string ->
  start:float ->
  float ->
  unit
(** [scheduled_span t ~phase ~start dur] records a leaf span pinned at
    absolute simulated time [start .. start +. dur] under the innermost
    open span, charging [dur] busy seconds to the clock's [phase]
    breakdown (and the metrics bridge) WITHOUT advancing the clock
    total. {!Sched} places overlapped work items with this and then
    {!advance}s the clock once by the schedule's critical path, so the
    per-phase rollups show busy time while the total shows makespan. *)

val advance : t -> float -> unit
(** Advance the bound clock's total by nonnegative seconds without
    charging any phase ({!Clock.advance}). *)

val charge_kernel :
  t ->
  ?eff:Roofline.efficiency ->
  ?lanes_used:int ->
  ?phase:string ->
  Device.t ->
  Kernel.t ->
  float
(** Trace-emitting variant of {!Roofline.time}: price the kernel on the
    device, [charge] the result to [phase] (default: the kernel's name),
    and record flops/bytes/binding attributes on the span. Returns the
    priced seconds. *)

val annotate_counters : t -> Counters.t -> unit
(** Attach a {!Counters} reading to the innermost open span: records the
    achieved fraction of the device's sustainable bandwidth, so
    bandwidth-boundedness is kept in context. *)

val span_count : t -> int
(** Number of spans recorded, excluding the root. *)

val total : t -> float
(** Simulated seconds covered by the trace (root open to latest close). *)

(** {1 Aggregation} *)

type rollup = {
  key : string;  (** device name or phase name *)
  seconds : float;  (** summed leaf-span duration *)
  spans : int;
  r_flops : float;
  r_bytes : float;
}

val by_phase : t -> rollup list
(** Leaf spans grouped by name, first-seen order. Sums match the clock's
    per-phase breakdown (within float tolerance) when every charge went
    through the tracer. *)

val by_device : t -> rollup list
(** Leaf spans grouped by device name (["-"] when unattributed). *)

val top_spans : ?n:int -> t -> span list
(** The [n] (default 5) longest non-root spans, longest first. *)

val device_table : ?title:string -> t -> Icoe_util.Table.t
(** Per-device rollup: time, share, achieved GF/s and GB/s, and — for
    devices seen by {!charge_kernel} — the achieved fraction of peak. *)

val phase_table : ?title:string -> t -> Icoe_util.Table.t
(** Per-phase rollup: time, share, span count. *)

val span_table : ?title:string -> ?n:int -> t -> Icoe_util.Table.t
(** Top-N spans with device, duration and roofline bound. *)

(** {1 Chrome trace-event export} *)

val chrome_json_of_many : (string * t) list -> string
(** Merge named traces into one Chrome trace-event JSON document (one
    process per trace, one thread per device), loadable in
    [chrome://tracing] / Perfetto. Timestamps are simulated microseconds. *)

val to_chrome_json : t -> string
(** [chrome_json_of_many] for a single trace. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal: quotes,
    backslash, and every control character below 0x20 (so arbitrary
    phase/device names can never emit invalid Chrome-trace JSON). *)

val pp : Format.formatter -> t -> unit
(** Indented span tree, for debugging. *)
