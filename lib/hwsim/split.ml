(** CPU/GPU work splits for heterogeneous co-execution — see the mli.

    The bit-identity contract lives here: at [f = 1.0] the only item
    enqueued is [Sched.work ~stream:gpu_stream ... (1.0 *. gpu_s)], and
    IEEE 754 guarantees [1.0 *. x] is bitwise [x], so a model built
    through [co_work] at the paper-default split is indistinguishable
    from one that never heard of splits. *)

type comm = Dedicated | Inline

let comm_name = function Dedicated -> "dedicated" | Inline -> "inline"

let validate f =
  if not (Float.is_finite f && f >= 0.0 && f <= 1.0) then
    invalid_arg (Fmt.str "Split: GPU share must be finite in [0, 1], got %g" f)

let lattice ?(steps = 20) () =
  if steps < 1 then invalid_arg "Split.lattice: steps must be >= 1";
  Array.init (steps + 1) (fun i -> float_of_int i /. float_of_int steps)

let co_work sched ~gpu_stream ~cpu_stream ?(deps = []) ?gpu_device ?cpu_device
    ~phase ~gpu_s ~cpu_s f =
  validate f;
  let gpu_item =
    if f > 0.0 then
      [
        Sched.work sched ~stream:gpu_stream ~deps ?device:gpu_device ~phase
          (f *. gpu_s);
      ]
    else []
  in
  let cpu_item =
    if f < 1.0 then
      [
        Sched.work sched ~stream:cpu_stream ~deps ?device:cpu_device ~phase
          ((1.0 -. f) *. cpu_s);
      ]
    else []
  in
  gpu_item @ cpu_item
