(** Node and cluster composition: the machines of the paper.

    A node aggregates CPU sockets and GPUs with a host link; a machine is
    [nodes] identical nodes on a fabric. Aggregate throughput helpers assume
    the embarrassingly-parallel-across-nodes regime all iCoE apps already
    had (their MPI scaling predated the project). *)

type t = {
  name : string;
  cpu : Device.t;
  cpu_sockets : int;
  gpu : Device.t option;
  gpus : int;
  host_link : Link.t;
  nvme_gb : float;  (** node-local burst tier capacity; 0 when absent *)
}

type machine = { node : t; nodes : int; topology : Topology.t }

(** The machine's injection link — for the paper-era machines (all on
    {!Topology.flat} topologies) exactly the old flat [fabric] field. *)
let fabric m = Topology.leaf_link m.topology

let cpu_peak_gflops n = float_of_int n.cpu_sockets *. n.cpu.Device.peak_gflops

let gpu_peak_gflops n =
  match n.gpu with
  | None -> 0.0
  | Some g -> float_of_int n.gpus *. g.Device.peak_gflops

let node_peak_gflops n = cpu_peak_gflops n +. gpu_peak_gflops n

(* --- the paper's machines --- *)

(** Sierra Witherspoon node: 2x P9 + 4x V100, NVLink2, 1.6 TB NVMe. *)
let witherspoon =
  {
    name = "Witherspoon";
    cpu = Device.power9;
    cpu_sockets = 2;
    gpu = Some Device.v100;
    gpus = 4;
    host_link = Link.nvlink2;
    nvme_gb = 1600.0;
  }

(** Early-access Minsky node: 2x P8 + 4x P100, NVLink1. *)
let minsky =
  {
    name = "Minsky";
    cpu = Device.power8;
    cpu_sockets = 2;
    gpu = Some Device.p100;
    gpus = 4;
    host_link = Link.nvlink1;
    nvme_gb = 0.0;
  }

(** Cori-II KNL node at NERSC (SW4's comparison machine). *)
let cori_ii =
  {
    name = "Cori-II";
    cpu = Device.knl;
    cpu_sockets = 1;
    gpu = None;
    gpus = 0;
    host_link = Link.pcie3;
    nvme_gb = 0.0;
  }

(** Visualization cluster node: Sandy Bridge + K40. *)
let viz_node =
  {
    name = "Viz";
    cpu = Device.sandybridge;
    cpu_sockets = 2;
    gpu = Some Device.k40;
    gpus = 2;
    host_link = Link.pcie3;
    nvme_gb = 0.0;
  }

(** Development machine node: Haswell + K80. *)
let dev_node =
  {
    name = "Dev";
    cpu = Device.haswell;
    cpu_sockets = 2;
    gpu = Some Device.k80;
    gpus = 2;
    host_link = Link.pcie3;
    nvme_gb = 0.0;
  }

(** CPU-only commodity cluster node (Catalyst-era, Table 2). *)
let catalyst_node =
  {
    name = "Catalyst";
    cpu = Device.haswell;
    cpu_sockets = 2;
    gpu = None;
    gpus = 0;
    host_link = Link.pcie3;
    nvme_gb = 800.0;
  }

(* --- exascale-generation nodes (ROADMAP item 3) --- *)

(** Frontier node (Bauman et al. 2023): 1x Trento + 4x MI250X over
    Infinity Fabric, 2x 1.9 TB node-local NVMe. *)
let frontier_node =
  {
    name = "Frontier";
    cpu = Device.trento;
    cpu_sockets = 1;
    gpu = Some Device.mi250x;
    gpus = 4;
    host_link = Link.infinity_fabric;
    nvme_gb = 3800.0;
  }

(** Grace-Hopper superchip node (Elwasif et al. 2022 lineage): 1x Grace
    + 1x H100, coherent NVLink-C2C. *)
let grace_hopper_node =
  {
    name = "GraceHopper";
    cpu = Device.grace;
    cpu_sockets = 1;
    gpu = Some Device.h100;
    gpus = 1;
    host_link = Link.nvlink_c2c;
    nvme_gb = 0.0;
  }

(* The paper-era machines keep their flat fabrics (degenerate one-level
   topologies), so everything priced against them is bit-identical to
   the pre-topology model. *)
let sierra =
  { node = witherspoon; nodes = 4320; topology = Topology.flat Link.ib_dual_edr }

let ea_system =
  { node = minsky; nodes = 36; topology = Topology.flat Link.ib_edr }

let cori = { node = cori_ii; nodes = 9688; topology = Topology.flat Link.ib_edr }

let catalyst =
  { node = catalyst_node; nodes = 300; topology = Topology.flat Link.ib_qdr }

(** Frontier: 9408 nodes on a 4-plane Slingshot dragonfly — 128-node
    electrical groups, tapered global optics. *)
let frontier =
  {
    node = frontier_node;
    nodes = 9408;
    topology =
      Topology.dragonfly ~name:"slingshot-dragonfly"
        ~local:Link.slingshot_4plane ~global:Link.slingshot_optical
        ~group_radix:128 ~global_contention:3.0 ();
  }

(** Grace-Hopper system: 4608 superchip nodes on an NDR fat tree with a
    2:1 tapered core. *)
let grace_hopper =
  {
    node = grace_hopper_node;
    nodes = 4608;
    topology =
      Topology.fat_tree ~name:"ndr-fat-tree" ~leaf:Link.ib_ndr
        ~spine:Link.ib_ndr ~leaf_radix:32 ~pod_radix:16 ~core_contention:2.0
        ();
  }

let pp ppf n =
  Fmt.pf ppf "%s: %dx %a%s" n.name n.cpu_sockets Device.pp n.cpu
    (match n.gpu with
    | None -> ""
    | Some g -> Fmt.str " + %dx %a via %a" n.gpus Device.pp g Link.pp n.host_link)

(** Machine printer: node composition plus the network parameters the
    plain {!pp} omits — scale, per-level links, radixes, contention. *)
let pp_machine ppf m =
  Fmt.pf ppf "%a; %d nodes on %a" pp m.node m.nodes Topology.pp m.topology
