(** Event-driven stream/queue scheduler: comm/compute overlap.

    The paper's biggest single-node wins come from hiding data movement
    behind compute — GPUDirect transfers, ddcMD's overlapped force/halo
    pipeline, collectives under backprop. This module lets engines model
    that: enqueue work items (roofline kernels, link transfers, raw
    charges) on named streams with explicit dependencies, then {!run}
    advances simulated time by the dependency DAG's critical path
    instead of the serial sum.

    A stream is an in-order queue (a CUDA stream, a NIC, a core set):
    items on one stream execute in enqueue order, items on different
    streams overlap once their [deps] have finished. Durations are
    priced by the same cost model as serialized charging
    ({!Roofline.time_and_bound}, {!Link.transfer_time}), so the serial
    sum of a schedule equals what the engine would have charged without
    the scheduler.

    Charging: when a {!Trace.t} is bound, {!run} places one leaf span
    per item at its scheduled simulated time ({!Trace.scheduled_span}),
    attributes per-phase busy seconds to the clock breakdown and the
    metrics bridge, and advances the clock total once, by the makespan —
    so rollups, Chrome export and metrics keep working unchanged, and
    the clock's phase sums minus its total is exactly the hidden time.

    Fallback: with overlap disabled ([ICOE_OVERLAP=0], or
    [~overlap:false]), {!run} charges every item back-to-back through
    the same path as {!Trace.charge} — bit-identical serialized
    charging, makespan = serial sum, so every harness can assert
    overlapped <= serial. *)

type t
type item

val overlap_enabled : unit -> bool
(** [false] when the [ICOE_OVERLAP] environment variable was ["0"],
    ["off"] or ["false"] at first use; [true] otherwise. *)

val create : ?overlap:bool -> ?trace:Trace.t -> unit -> t
(** A fresh scheduler. [overlap] defaults to {!overlap_enabled};
    [trace], when given, receives spans and the clock advance at
    {!run}. *)

val overlap : t -> bool

(** {1 Enqueueing}

    Items may only depend on items created earlier (on any stream), so
    every schedule is a DAG by construction. Enqueueing after {!run}
    raises [Invalid_argument]; so do negative or non-finite durations. *)

val work :
  t -> stream:string -> ?deps:item list -> ?device:string ->
  phase:string -> float -> item
(** Raw charge of a precomputed duration (seconds) on a stream. The
    span's device defaults to the stream name. *)

val kernel :
  t -> stream:string -> ?deps:item list -> ?eff:Roofline.efficiency ->
  ?lanes_used:int -> ?phase:string -> Device.t -> Kernel.t -> item
(** Roofline-priced kernel ({!Roofline.time_and_bound}); the span
    carries flops/bytes/bound attributes like {!Trace.charge_kernel}.
    [phase] defaults to the kernel's name. *)

val transfer :
  t -> stream:string -> ?deps:item list -> ?phase:string -> Link.t ->
  bytes:float -> item
(** Link transfer ({!Link.transfer_time}); [phase] defaults to the
    link's name. *)

val duration : item -> float
val stream_of : item -> string
val deps_of : item -> item list

(** {1 Running} *)

val run : t -> float
(** Compute the schedule, charge the bound trace (if any), and return
    the makespan: the DAG critical path with overlap on, the serial sum
    with overlap off. Idempotent — subsequent calls return the memoized
    makespan without charging again. *)

val ran : t -> bool

val makespan : t -> float
(** Raises [Invalid_argument] before {!run}. *)

val serial_sum : t -> float
(** Sum of all item durations — what serialized charging would cost.
    Always [>= makespan] (equal with overlap off). *)

val overlap_efficiency : t -> float
(** [makespan /. serial_sum], in (0, 1]: 1.0 means no overlap (or an
    empty schedule); smaller means more time was hidden. Requires
    {!run}. *)

val stream_busy : t -> (string * float) list
(** Per-stream busy seconds (sum of durations), first-seen order.
    Conserved across scheduling modes. *)

val items : t -> item list
(** All items in enqueue order. *)

val start_time : item -> float
(** Schedule-relative start seconds; valid after {!run}. *)

val finish_time : item -> float

(** {1 Profiling} *)

val dag : t -> Icoe_obs.Prof.item array
(** The scheduled DAG in {!Icoe_obs.Prof} form: one entry per item in
    enqueue order, deps as indices of earlier items. Valid before or
    after {!run} (durations are fixed at enqueue time). *)

val profile : t -> Icoe_obs.Prof.analysis
(** [Icoe_obs.Prof.analyze ~overlap:(overlap t) (dag t)] — critical
    path, per-item slack, per-phase/per-stream blame and what-if
    sensitivity for this schedule. *)
