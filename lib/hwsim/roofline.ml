(** Roofline pricing of kernels on devices.

    time = launches * launch_overhead
         + max (flops / (eff_compute * peak), bytes / (eff_bandwidth * bw))

    Efficiency fractions express how well a given code variant exploits the
    device (e.g. a shared-memory CUDA stencil reaches a higher compute
    fraction than the naive one; RAJA pays an abstraction penalty). They are
    the calibration surface of the reproduction: set per code-variant, never
    per-experiment. *)

type efficiency = {
  compute : float;  (** fraction of peak flops achievable *)
  bandwidth : float;  (** fraction of peak memory bandwidth achievable *)
}

let eff ?(compute = 1.0) ?(bandwidth = 1.0) () =
  assert (compute > 0.0 && compute <= 1.0);
  assert (bandwidth > 0.0 && bandwidth <= 1.0);
  { compute; bandwidth }

let default_eff = { compute = 0.6; bandwidth = 0.75 }

(** Which roof binds. *)
type bound = Compute_bound | Bandwidth_bound

(** Execution time in seconds of kernel [k] on device [d], together with
    the roof that bound it under the same efficiency/lane scaling.
    [lanes_used] (default: all) idles part of the chip, scaling both
    roofs — this is how the Cretin memory-constrained "60% of CPU cores
    idle" case is modelled. *)
let time_and_bound ?(eff = default_eff) ?lanes_used (d : Device.t)
    (k : Kernel.t) =
  let lane_frac =
    match lanes_used with
    | None -> 1.0
    | Some l ->
        assert (l > 0 && l <= d.Device.lanes);
        float_of_int l /. float_of_int d.Device.lanes
  in
  let peak = d.Device.peak_gflops *. 1e9 *. eff.compute *. lane_frac in
  let bw = d.Device.mem_bw_gbs *. 1e9 *. eff.bandwidth *. lane_frac in
  let compute_t = k.Kernel.flops /. peak in
  let mem_t = k.Kernel.bytes /. bw in
  ( (float_of_int k.Kernel.launches *. d.Device.launch_overhead_s)
    +. max compute_t mem_t,
    if compute_t >= mem_t then Compute_bound else Bandwidth_bound )

let time ?eff ?lanes_used d k = fst (time_and_bound ?eff ?lanes_used d k)

(* Delegates to [time_and_bound] so the two can never disagree: the
   bound is derived under the same efficiency and lane scaling as the
   priced time (re-deriving the roofs here once ignored [lanes_used]). *)
let binding ?eff ?lanes_used (d : Device.t) (k : Kernel.t) =
  snd (time_and_bound ?eff ?lanes_used d k)

(** Achieved fraction of device peak for a kernel run in time [t]. *)
let achieved_peak_fraction (d : Device.t) (k : Kernel.t) ~time:t =
  k.Kernel.flops /. t /. (d.Device.peak_gflops *. 1e9)
