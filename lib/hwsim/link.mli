(** Host-device and network links: latency + bandwidth transfer model.

    The VBL GPUDirect study (Sec 4.11) is a crossover property of this
    model: GPUDirect has lower setup latency but lower sustained bandwidth
    than a pipelined cudaMemcpy over NVLink. *)

type t = {
  name : string;
  latency_s : float;
  bw_gbs : float;  (** sustained unidirectional bandwidth, GB/s *)
}

val pp : Format.formatter -> t -> unit

val make : name:string -> latency_s:float -> bw_gbs:float -> t
(** Validating constructor: raises [Invalid_argument] on a negative or
    non-finite latency, or a non-positive or non-finite bandwidth — a
    miswritten machine model fails loudly at construction instead of
    pricing transfers in negative seconds. *)

val transfer_time : t -> bytes:float -> float
(** Time to move [bytes] across the link (latency + bytes/bandwidth).
    An empty transfer costs 0: no message is sent, so no latency is
    paid. *)

val pcie3 : t
val nvlink1 : t

val nvlink2 : t
(** Witherspoon P9 <-> V100 host link. *)

val cuda_memcpy : t
(** Pipelined cudaMemcpy over NVLink2 — full bandwidth after ramp-up. *)

val gpudirect : t
(** RDMA-style path: very low setup cost, lower streaming rate. *)

val unified_memory_transfer : link:t -> bytes:float -> float
(** CUDA Unified Memory migrates 64 KiB pages; a transfer moves whole
    pages, each paying a fault-service latency plus its wire time. The
    per-page fault cost replaces the link setup latency (no
    double-charge on the rounded-up tail page); zero bytes cost 0. *)

val ib_edr : t
val ib_dual_edr : t
(** Sierra's dual-rail EDR fabric. *)

val ib_qdr : t
val nvme : t
(** Node-local burst tier (HavoqGT out-of-core runs). *)

(** {1 Exascale-generation links} *)

val slingshot_4plane : t
(** Frontier node injection: 4 Slingshot-11 NICs aggregated. *)

val slingshot : t
(** One Slingshot-11 plane (intra-group electrical). *)

val slingshot_optical : t
(** Slingshot global optical links between dragonfly groups. *)

val ib_ndr : t
(** InfiniBand NDR, the Grace-Hopper generation fabric. *)

val nvlink_c2c : t
(** Grace CPU <-> Hopper GPU coherent host link. *)

val infinity_fabric : t
(** Trento CPU <-> MI250X host link on Frontier. *)
