(** Device descriptions for the machines the paper measures on.

    A device is priced with a roofline model: double-precision peak flops
    and a sustainable memory bandwidth. GPUs additionally pay a per-kernel
    launch overhead; CPUs pay a (much smaller) parallel-region entry cost.
    Capacities matter for the Cretin memory-constraint study and the
    HavoqGT NVMe runs. All figures are published per-chip numbers. *)

type kind = Cpu | Gpu

type t = {
  name : string;
  kind : kind;
  peak_gflops : float;  (** double precision, whole chip *)
  mem_bw_gbs : float;  (** STREAM-like sustainable bandwidth, GB/s *)
  mem_gb : float;  (** directly attached memory capacity *)
  lanes : int;  (** hardware parallel lanes: cores or SMs *)
  launch_overhead_s : float;  (** per-kernel/parallel-region entry cost *)
  cache_mb : float;  (** last-level (CPU) or L2+texture (GPU) cache *)
}

let pp ppf d =
  Fmt.pf ppf "%s(%s, %.0f GF/s, %.0f GB/s, %.0f GB)" d.name
    (match d.kind with Cpu -> "cpu" | Gpu -> "gpu")
    d.peak_gflops d.mem_bw_gbs d.mem_gb

(* --- CPUs --- *)

(** POWER8, 10 cores @ ~3.5 GHz on the EA Minsky nodes. *)
let power8 =
  {
    name = "POWER8";
    kind = Cpu;
    peak_gflops = 280.0;
    mem_bw_gbs = 85.0;
    mem_gb = 128.0;
    lanes = 10;
    launch_overhead_s = 2e-6;
    cache_mb = 80.0;
  }

(** POWER9, 22 cores, Witherspoon (Sierra) socket. *)
let power9 =
  {
    name = "POWER9";
    kind = Cpu;
    peak_gflops = 560.0;
    mem_bw_gbs = 120.0;
    mem_gb = 128.0;
    lanes = 22;
    launch_overhead_s = 2e-6;
    cache_mb = 110.0;
  }

(** Intel Xeon E5 v1 (Sandy Bridge) on the visualization cluster. *)
let sandybridge =
  {
    name = "SandyBridge";
    kind = Cpu;
    peak_gflops = 166.0;
    mem_bw_gbs = 40.0;
    mem_gb = 64.0;
    lanes = 8;
    launch_overhead_s = 2e-6;
    cache_mb = 20.0;
  }

(** Intel Xeon E5 v3 (Haswell) on the early development machine. *)
let haswell =
  {
    name = "Haswell";
    kind = Cpu;
    peak_gflops = 588.0;
    mem_bw_gbs = 60.0;
    mem_gb = 128.0;
    lanes = 14;
    launch_overhead_s = 2e-6;
    cache_mb = 35.0;
  }

(** Knights Landing socket, Cori-II at NERSC (SW4 comparison machine). *)
let knl =
  {
    name = "KNL";
    kind = Cpu;
    peak_gflops = 2662.0;
    mem_bw_gbs = 400.0;
    (* MCDRAM *)
    mem_gb = 96.0;
    lanes = 68;
    launch_overhead_s = 4e-6;
    cache_mb = 34.0;
  }

(** Blue Gene/Q node chip (historical graph numbers in Table 2). *)
let bgq =
  {
    name = "BG/Q";
    kind = Cpu;
    peak_gflops = 204.8;
    mem_bw_gbs = 28.0;
    mem_gb = 16.0;
    lanes = 16;
    launch_overhead_s = 2e-6;
    cache_mb = 32.0;
  }

(** AMD EPYC 7A53 "Trento", the Frontier host socket (64 Zen3 cores,
    optimized I/O die for Infinity Fabric coherence). *)
let trento =
  {
    name = "Trento";
    kind = Cpu;
    peak_gflops = 2000.0;
    mem_bw_gbs = 205.0;
    mem_gb = 512.0;
    lanes = 64;
    launch_overhead_s = 2e-6;
    cache_mb = 256.0;
  }

(** NVIDIA Grace, the Arm host of the Grace-Hopper superchip (72
    Neoverse-V2 cores on LPDDR5X). *)
let grace =
  {
    name = "Grace";
    kind = Cpu;
    peak_gflops = 3450.0;
    mem_bw_gbs = 500.0;
    mem_gb = 480.0;
    lanes = 72;
    launch_overhead_s = 2e-6;
    cache_mb = 117.0;
  }

(* --- GPUs --- *)

(** Kepler K40 on the visualization cluster. *)
let k40 =
  {
    name = "K40";
    kind = Gpu;
    peak_gflops = 1430.0;
    mem_bw_gbs = 288.0;
    mem_gb = 12.0;
    lanes = 15;
    launch_overhead_s = 9e-6;
    cache_mb = 1.5;
  }

(** Kepler K80 (one of the two dies) on the development machine. *)
let k80 =
  {
    name = "K80";
    kind = Gpu;
    peak_gflops = 1455.0;
    mem_bw_gbs = 240.0;
    mem_gb = 12.0;
    lanes = 13;
    launch_overhead_s = 9e-6;
    cache_mb = 1.5;
  }

(** Pascal P100 (SXM2) on the EA Minsky nodes. *)
let p100 =
  {
    name = "P100";
    kind = Gpu;
    peak_gflops = 5300.0;
    mem_bw_gbs = 720.0;
    mem_gb = 16.0;
    lanes = 56;
    launch_overhead_s = 8e-6;
    cache_mb = 4.0;
  }

(** Volta V100 (SXM2) on Sierra Witherspoon nodes. Volta's unified and much
    larger L1/L2 caching is what made Opt's texture-memory trick moot. *)
let v100 =
  {
    name = "V100";
    kind = Gpu;
    peak_gflops = 7800.0;
    mem_bw_gbs = 900.0;
    mem_gb = 16.0;
    lanes = 80;
    launch_overhead_s = 7e-6;
    cache_mb = 16.0;
  }

(** AMD MI250X on Frontier (Bauman et al. 2023): two GCDs per module,
    47.9 TF FP64 vector, 3.2 TB/s aggregate HBM2e. *)
let mi250x =
  {
    name = "MI250X";
    kind = Gpu;
    peak_gflops = 47900.0;
    mem_bw_gbs = 3276.0;
    mem_gb = 128.0;
    lanes = 220;
    launch_overhead_s = 4e-6;
    cache_mb = 16.0;
  }

(** NVIDIA H100 (SXM) of the Grace-Hopper superchip (Elwasif et al.
    2022 Arm+GPU testbed lineage): 34 TF FP64 vector, HBM3. *)
let h100 =
  {
    name = "H100";
    kind = Gpu;
    peak_gflops = 34000.0;
    mem_bw_gbs = 3350.0;
    mem_gb = 96.0;
    lanes = 132;
    launch_overhead_s = 5e-6;
    cache_mb = 50.0;
  }

(** Peak-fraction utility: achieved gflops / peak. *)
let fraction_of_peak d ~achieved_gflops = achieved_gflops /. d.peak_gflops
