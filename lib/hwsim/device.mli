(** Device descriptions for the machines the paper measures on.

    A device is priced with a roofline model: double-precision peak flops
    and a sustainable memory bandwidth. GPUs additionally pay a per-kernel
    launch overhead; CPUs a (much smaller) parallel-region entry cost.
    All figures are published per-chip numbers. *)

type kind = Cpu | Gpu

type t = {
  name : string;
  kind : kind;
  peak_gflops : float;  (** double precision, whole chip *)
  mem_bw_gbs : float;  (** STREAM-like sustainable bandwidth, GB/s *)
  mem_gb : float;  (** directly attached memory capacity *)
  lanes : int;  (** hardware parallel lanes: cores or SMs *)
  launch_overhead_s : float;  (** per-kernel / parallel-region entry cost *)
  cache_mb : float;  (** last-level (CPU) or L2+texture (GPU) cache *)
}

val pp : Format.formatter -> t -> unit

(** {1 CPUs} *)

val power8 : t
(** POWER8, the EA Minsky host CPU. *)

val power9 : t
(** POWER9, the Sierra Witherspoon socket. *)

val sandybridge : t
(** Visualization-cluster CPU of the earliest porting work. *)

val haswell : t
(** Early development machine / Catalyst-era CPU. *)

val knl : t
(** Knights Landing — Cori-II at NERSC, SW4's comparison machine. *)

val bgq : t
(** Blue Gene/Q node chip (historical Table 2 machines). *)

val trento : t
(** AMD EPYC 7A53 "Trento", the Frontier host socket. *)

val grace : t
(** NVIDIA Grace, the Arm host of the Grace-Hopper superchip. *)

(** {1 GPUs} *)

val k40 : t
val k80 : t

val p100 : t
(** Pascal, on the EA Minsky nodes. *)

val v100 : t
(** Volta, on Sierra — including the enlarged caches that made Opt's
    texture-memory trick moot. *)

val mi250x : t
(** AMD MI250X, the Frontier GPU module (two GCDs). *)

val h100 : t
(** NVIDIA H100, the Grace-Hopper superchip GPU. *)

val fraction_of_peak : t -> achieved_gflops:float -> float
