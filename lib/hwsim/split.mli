(** CPU/GPU work splits for heterogeneous co-execution.

    The paper's placements are all-or-nothing: a kernel runs either on
    the accelerator or on the host cores. Following Memeti & Pllana
    (ICPPW'16) and Borrell et al.'s POWER9 CPU/GPU co-execution, this
    module makes the split a first-class parameter: a divisible work
    item gives the accelerator a share [f] in [0, 1] and the host cores
    co-execute the remaining [1 - f] on their own stream.

    Contract: [f = 1.0] (the paper default) enqueues exactly the one
    all-GPU item with its duration multiplied by the float literal
    [1.0] — bit-identical to the pre-split step models, which is what
    lets the tuner's default candidate reproduce today's numbers. *)

type comm = Dedicated | Inline
(** Stream placement of a model's communication item: [Dedicated] keeps
    it on its own stream ("nic"/"net" — the paper default, free to
    overlap with compute); [Inline] issues it on the compute stream,
    serializing it with the kernel work that surrounds it. *)

val comm_name : comm -> string
(** ["dedicated"] / ["inline"]. *)

val validate : float -> unit
(** Raises [Invalid_argument] unless the share is finite and in
    [0, 1]. *)

val lattice : ?steps:int -> unit -> float array
(** The quantized split lattice [0/steps; 1/steps; ...; steps/steps]
    (default 20 intervals, 21 points). The last point is exactly [1.0].
    Raises [Invalid_argument] when [steps < 1]. *)

val co_work :
  Sched.t -> gpu_stream:string -> cpu_stream:string -> ?deps:Sched.item list ->
  ?gpu_device:string -> ?cpu_device:string -> phase:string -> gpu_s:float ->
  cpu_s:float -> float -> Sched.item list
(** [co_work sched ... ~gpu_s ~cpu_s f] enqueues the split pair for one
    divisible work item: [f *. gpu_s] on [gpu_stream] when [f > 0] and
    [(1.0 -. f) *. cpu_s] on [cpu_stream] when [f < 1], both carrying
    the same [deps] and [phase]. [gpu_s] ([cpu_s]) is the full-item
    duration if the accelerator (host) ran all of it. Returns the
    enqueued items, for use as downstream deps; devices default to the
    stream names (the {!Sched.work} rule). *)
