(** Roofline pricing of kernels on devices.

    time = launches * launch_overhead
         + max (flops / (eff.compute * peak), bytes / (eff.bandwidth * bw))

    Efficiency fractions express how well a code variant exploits the
    device; they are the calibration surface of the reproduction, set per
    code variant and never per experiment. *)

type efficiency = {
  compute : float;  (** fraction of peak flops achievable, in (0, 1] *)
  bandwidth : float;  (** fraction of peak bandwidth achievable, in (0, 1] *)
}

val eff : ?compute:float -> ?bandwidth:float -> unit -> efficiency
(** Build an efficiency profile (defaults 1.0); values are validated. *)

val default_eff : efficiency
(** compute 0.6, bandwidth 0.75 — a competent hand-tuned kernel. *)

type bound = Compute_bound | Bandwidth_bound

val time : ?eff:efficiency -> ?lanes_used:int -> Device.t -> Kernel.t -> float
(** Execution seconds of a kernel on a device. [lanes_used] (default all)
    idles part of the chip, scaling both roofs — how the Cretin
    memory-constrained core-idling case is modelled. *)

val time_and_bound :
  ?eff:efficiency -> ?lanes_used:int -> Device.t -> Kernel.t -> float * bound
(** [time] plus which roof bound the kernel under the same scaling; the
    tracer records this per span. *)

val binding :
  ?eff:efficiency -> ?lanes_used:int -> Device.t -> Kernel.t -> bound
(** Which roof binds for this kernel on this device. Delegates to
    {!time_and_bound} (same efficiency and lane scaling), so the two can
    never disagree. *)

val achieved_peak_fraction : Device.t -> Kernel.t -> time:float -> float
