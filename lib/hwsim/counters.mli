(** Nest/uncore memory-bandwidth counters (Sec 4.10.6).

    The Tools activity made the P9 "nest" counters — off-core memory
    traffic counters not bound to any core — readable by ordinary users.
    This is that facility for the simulated machine: sample a cumulative
    traffic counter over time, read back achieved bandwidth against the
    device's sustainable peak. *)

type t

val create : Device.t -> t

val sample : t -> time:float -> bytes:float -> unit
(** Record the cumulative traffic counter at a simulated time. Samples
    must be monotone in both time and bytes. *)

val achieved_gbs : t -> float
(** Mean bandwidth over the whole sampled window, GB/s. *)

val utilization : t -> float
(** Fraction of the device's sustainable bandwidth in use. *)

val bandwidth_bound : t -> bool
(** True when utilization exceeds the usual 60% tuning-guide threshold. *)

val series : t -> (float * float) list
(** Per-interval (mid-time, GB/s) series, oldest first. Zero-width
    intervals (consecutive samples at the same instant) are merged, so
    the series is always finite. *)
