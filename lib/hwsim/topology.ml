(** Hierarchical network topologies: node -> leaf switch -> spine/fabric.

    A topology is a leaf-first stack of switching levels, each priced by
    its own {!Link.t} and derated by a contention factor when the level
    is oversubscribed (fat-tree tapered cores, dragonfly global optics).
    A transfer's cost depends on how many levels it crosses, which in
    turn depends on the gang's *placement*: a contiguous block stays low
    in the tree, a randomly spread allocation pays the top level on
    every message.

    Bit-identity contract: a degenerate one-level topology ({!flat})
    prices every transfer as exactly [Link.transfer_time] of its single
    link — same floats, same operations — so every pre-topology cost
    model is recovered unchanged by wrapping its old fabric in
    [Topology.flat]. All existing machines do exactly that. *)

type placement =
  | Contiguous  (** one block of consecutive node ids *)
  | Rank_reordered
      (** fragmented allocation with ranks reordered for locality:
          recovers most of the contiguous crossing, pays one extra
          level *)
  | Random_spread  (** scattered allocation: every message crosses the top *)

let placement_name = function
  | Contiguous -> "contiguous"
  | Rank_reordered -> "rank-reordered"
  | Random_spread -> "random"

type level = {
  name : string;
  link : Link.t;
  radix : int;
      (** fan-out of a level-[i] subtree in level-[i-1] subtrees; the
          number of endpoints under one level-[i] switch is the product
          of radixes up to [i] *)
  contention : float;
      (** >= 1: bandwidth divisor when the level's uplinks are
          oversubscribed (1.0 = full bisection) *)
}

type t = { name : string; levels : level array }

let depth t = Array.length t.levels
let is_flat t = depth t = 1
let leaf_link t = t.levels.(0).link

let make ~name levels =
  if levels = [] then invalid_arg ("Topology.make " ^ name ^ ": no levels");
  List.iter
    (fun l ->
      if l.radix < 2 then
        invalid_arg
          (Fmt.str "Topology.make %s: level %s radix %d (must be >= 2)" name
             l.name l.radix);
      if not (Float.is_finite l.contention) || l.contention < 1.0 then
        invalid_arg
          (Fmt.str "Topology.make %s: level %s contention %.17g (must be >= 1)"
             name l.name l.contention);
      (* re-validate the link so a hand-built record fails here too *)
      ignore
        (Link.make ~name:l.link.Link.name ~latency_s:l.link.Link.latency_s
           ~bw_gbs:l.link.Link.bw_gbs))
    levels;
  { name; levels = Array.of_list levels }

(** The degenerate one-level topology: the whole machine behind a single
    flat link, as every pre-topology machine model assumed. *)
let flat ?name link =
  let name = match name with Some n -> n | None -> "flat/" ^ link.Link.name in
  make ~name
    [ { name = "fabric"; link; radix = max_int; contention = 1.0 } ]

(** Three-level fat tree: nodes under leaf switches, leaves under pods,
    pods under a (possibly tapered) core. *)
let fat_tree ~name ~leaf ~spine ~leaf_radix ~pod_radix
    ?(core_contention = 2.0) () =
  make ~name
    [
      { name = "leaf"; link = leaf; radix = leaf_radix; contention = 1.0 };
      { name = "pod"; link = spine; radix = pod_radix; contention = 1.0 };
      { name = "core"; link = spine; radix = max_int;
        contention = core_contention };
    ]

(** Two-level dragonfly: electrical all-to-all groups joined by tapered
    global optical links. *)
let dragonfly ~name ~local ~global ~group_radix ?(global_contention = 2.0) ()
    =
  make ~name
    [
      { name = "group"; link = local; radix = group_radix; contention = 1.0 };
      { name = "global"; link = global; radix = max_int;
        contention = global_contention };
    ]

(** Endpoints under one level-[lvl] subtree (saturating product of
    radixes 0..lvl). *)
let reach t lvl =
  let r = ref 1 in
  for i = 0 to lvl do
    let rad = t.levels.(i).radix in
    if !r > max_int / rad then r := max_int else r := !r * rad
  done;
  !r

(** Highest level a gang of [nodes] endpoints crosses under a placement:
    a contiguous block crosses only up to the smallest subtree that
    contains it; a random spread crosses the top on every message;
    rank reordering recovers the contiguous crossing plus one level of
    fragmentation spill. A single endpoint crosses nothing (level 0 by
    convention — costs still apply only if a transfer is priced). *)
let crossing t ~nodes placement =
  let top = depth t - 1 in
  if nodes <= 1 then 0
  else
    let contiguous =
      let rec go i = if i >= top || reach t i >= nodes then i else go (i + 1) in
      go 0
    in
    match placement with
    | Contiguous -> contiguous
    | Rank_reordered -> min top (contiguous + 1)
    | Random_spread -> top

(** Highest level actually crossed by a concrete id set (lowest common
    ancestor over the placement's node ids). *)
let crossing_of_ids t ids =
  match ids with
  | [] | [ _ ] -> 0
  | id0 :: rest ->
      let top = depth t - 1 in
      let rec go i =
        if i >= top then top
        else
          let r = reach t i in
          if List.for_all (fun id -> id / r = id0 / r) rest then i
          else go (i + 1)
      in
      go 0

(** Number of link traversals of a path crossing levels 0..lvl: up and
    back down through each level's switches. Flat topologies are a
    single wire, as the old model priced them. *)
let hops t ~level = if is_flat t then 1 else 2 * (level + 1)

(** Point-to-point transfer crossing levels 0..[level]: each level pays
    its two hop latencies and its (contention-derated) wire time. One
    level degenerates to exactly [Link.transfer_time] — the bit-identity
    contract every flat-default cost model relies on. *)
let path_time t ~level ~bytes =
  assert (bytes >= 0.0);
  if is_flat t then Link.transfer_time (leaf_link t) ~bytes
  else if bytes = 0.0 then 0.0
  else begin
    let s = ref 0.0 in
    for i = 0 to level do
      let l = t.levels.(i) in
      s :=
        !s
        +. (2.0 *. l.link.Link.latency_s)
        +. (bytes *. l.contention /. (l.link.Link.bw_gbs *. 1e9))
    done;
    !s
  end

(** Transfer cost of a [bytes]-sized message within a gang of [nodes]
    endpoints under a placement. *)
let gang_transfer_time t ~nodes ~placement ~bytes =
  path_time t ~level:(crossing t ~nodes placement) ~bytes

(** Effective per-node all-to-all bandwidth (GB/s) of a gang: the most
    contended level it crosses throttles the collective. Flat is the
    fabric itself. *)
let alltoall_gbs t ~nodes =
  if is_flat t then (leaf_link t).Link.bw_gbs
  else begin
    let lvl = crossing t ~nodes Contiguous in
    let bw = ref infinity in
    for i = 0 to lvl do
      let l = t.levels.(i) in
      bw := Float.min !bw (l.link.Link.bw_gbs /. l.contention)
    done;
    !bw
  end

let allreduce_rounds nodes =
  Float.ceil (Float.log2 (float_of_int (max 2 nodes)))

(** Recursive-doubling allreduce of [bytes] across [nodes] endpoints:
    round [r] pairs partners [2^r] ranks apart, so under a contiguous
    block the early rounds stay inside leaf subtrees and only the last
    ones climb to the spine; a random spread pays the top level every
    round. Flat topologies recover the old
    [rounds *. transfer_time fabric] exactly. *)
let allreduce_time t ~nodes ~placement ~bytes =
  let rounds = allreduce_rounds nodes in
  if is_flat t then rounds *. Link.transfer_time (leaf_link t) ~bytes
  else begin
    let s = ref 0.0 in
    for r = 0 to int_of_float rounds - 1 do
      let span = min nodes (1 lsl min 62 (r + 1)) in
      let lvl = crossing t ~nodes:span placement in
      s := !s +. path_time t ~level:lvl ~bytes
    done;
    !s
  end

(** Service-time inflation of a gang whose placement crossed [level]
    instead of the contiguous-best level for its size: the ratio of a
    reference 1 MB gang transfer at the two crossings. 1.0 when the
    placement is no worse than a contiguous block (and always on flat
    topologies, where placement is invisible). *)
let placement_penalty t ~nodes ~level =
  if is_flat t then 1.0
  else
    let best = crossing t ~nodes Contiguous in
    if level <= best then 1.0
    else
      let bytes = 1.0e6 in
      path_time t ~level ~bytes /. path_time t ~level:best ~bytes

let pp_level ppf (l : level) =
  Fmt.pf ppf "%s(%a%s%s)" l.name Link.pp l.link
    (if l.radix = max_int then "" else Fmt.str ", radix %d" l.radix)
    (if l.contention = 1.0 then "" else Fmt.str ", %.1f:1" l.contention)

let pp ppf t =
  if is_flat t then Fmt.pf ppf "flat %a" Link.pp (leaf_link t)
  else
    Fmt.pf ppf "%s: %a" t.name
      (Fmt.array ~sep:(Fmt.any " -> ") pp_level)
      t.levels
