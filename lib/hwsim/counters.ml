(** Nest/uncore memory-bandwidth counters (Sec 4.10.6).

    The Tools activity's deliverable was making the P9 "nest" counters —
    off-core memory-traffic counters not bound to any core — readable by
    regular users, because "many HPC applications are memory-bandwidth
    bound [and] understanding the bandwidth that an application uses is
    crucial to performance tuning". This module is that facility for the
    simulated machine: it samples a clock + traffic source and reports
    achieved bandwidth against the device's sustainable peak, exactly what
    Performance Co-Pilot exposed on the real system. *)

type sample = { t : float; bytes : float }

type t = {
  device : Device.t;
  mutable samples : sample list;  (** newest first *)
}

let create device = { device; samples = [] }

(** Record the (cumulative) traffic counter at simulated time [t]. *)
let sample t ~time ~bytes =
  (match t.samples with
  | { t = t0; bytes = b0 } :: _ ->
      assert (time >= t0 && bytes >= b0 (* counters are monotone *))
  | [] -> ());
  t.samples <- { t = time; bytes } :: t.samples

(** Achieved bandwidth (GB/s) over the whole sampled window. *)
let achieved_gbs t =
  match (t.samples, List.rev t.samples) with
  | last :: _, first :: _ when last.t > first.t ->
      (last.bytes -. first.bytes) /. (last.t -. first.t) /. 1e9
  | _ -> 0.0

(** Fraction of the device's sustainable bandwidth in use. *)
let utilization t = achieved_gbs t /. t.device.Device.mem_bw_gbs

(** Is the sampled workload memory-bandwidth bound? (>60% of sustainable
    bandwidth is the usual rule of thumb the tuning guides use) *)
let bandwidth_bound t = utilization t > 0.6

(** Per-interval bandwidth series, oldest first: (t_mid, GB/s).

    [sample] accepts equal timestamps (the monotonicity assert is [>=]),
    so zero-width intervals are merged before dividing: consecutive
    samples at the same instant collapse to the newest one — the counter
    is cumulative, so no traffic is lost — and the series never contains
    nan/inf entries from a 0/0 or x/0 division. *)
let series t =
  let rec dedup = function
    | a :: b :: rest when a.t = b.t -> dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  let rec pair = function
    | a :: (b :: _ as rest) ->
        ((a.t +. b.t) /. 2.0, (a.bytes -. b.bytes) /. (a.t -. b.t) /. 1e9)
        :: pair rest
    | _ -> []
  in
  List.rev (pair (dedup t.samples))
