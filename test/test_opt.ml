(* Tests for the Opt activity: job-scheduler policies (Sec 4.7 results)
   and SIMP topology optimization with the texture-cache lever. *)

open Opt

let rng () = Icoe_util.Rng.create 121

(* --- scheduler --- *)

let test_batch_all_complete () =
  let jobs = Scheduler.batch_workload ~rng:(rng ()) ~n:200 () in
  List.iter
    (fun pol ->
      let m = Scheduler.simulate ~gpus:10 pol jobs in
      Alcotest.(check int)
        (Scheduler.policy_name pol ^ " completes all")
        200 m.Scheduler.completed;
      Alcotest.(check bool) "utilization sane" true
        (m.Scheduler.utilization > 0.0 && m.Scheduler.utilization <= 1.0 +. 1e-9))
    [ Scheduler.Fcfs; Scheduler.Sjf; Scheduler.Sjf_quota 0.5 ]

let test_sjf_quota_beats_fcfs_utilization () =
  (* the batch-arrival conclusion: SJF with quota raises GPU utilization *)
  let jobs = Scheduler.batch_workload ~rng:(rng ()) ~n:400 () in
  let fcfs = Scheduler.simulate ~gpus:16 Scheduler.Fcfs jobs in
  let sjfq = Scheduler.simulate ~gpus:16 (Scheduler.Sjf_quota 0.5) jobs in
  Alcotest.(check bool)
    (Fmt.str "SJF+quota %.3f > FCFS %.3f" sjfq.Scheduler.utilization
       fcfs.Scheduler.utilization)
    true
    (sjfq.Scheduler.utilization > fcfs.Scheduler.utilization);
  Alcotest.(check bool) "and a shorter makespan" true
    (sjfq.Scheduler.makespan < fcfs.Scheduler.makespan)

let test_sjf_quota_bounds_starvation () =
  (* pure SJF can starve long jobs; the quota reserves capacity *)
  let jobs = Scheduler.batch_workload ~rng:(rng ()) ~n:400 () in
  let sjf = Scheduler.simulate ~gpus:16 Scheduler.Sjf jobs in
  let sjfq = Scheduler.simulate ~gpus:16 (Scheduler.Sjf_quota 0.5) jobs in
  Alcotest.(check bool) "quota costs little utilization" true
    (sjfq.Scheduler.utilization > 0.9 *. sjf.Scheduler.utilization)

let test_throttling_conclusion () =
  (* Poisson arrivals: above capacity the queue (mean wait) blows up;
     throttled below capacity it stays modest *)
  let gpus = 8 in
  let mean_duration = exp (1.0 +. (0.6 *. 0.6 /. 2.0)) in
  let cap = Scheduler.capacity ~gpus ~mean_duration in
  let run rate =
    let jobs = Scheduler.poisson_workload ~rng:(rng ()) ~rate ~horizon:2000.0 () in
    Scheduler.simulate ~gpus Scheduler.Sjf jobs
  in
  let over = run (1.3 *. cap) in
  let under = run (0.8 *. cap) in
  Alcotest.(check bool)
    (Fmt.str "overloaded wait %.1f >> throttled %.1f" over.Scheduler.mean_wait
       under.Scheduler.mean_wait)
    true
    (over.Scheduler.mean_wait > 10.0 *. max 0.1 under.Scheduler.mean_wait);
  Alcotest.(check bool) "throttled wait small" true (under.Scheduler.mean_wait < 5.0)

let test_backfill_beats_fcfs () =
  (* EASY backfill fills the holes FCFS leaves while never delaying the
     blocked head *)
  let jobs = Scheduler.batch_workload ~rng:(rng ()) ~n:400 () in
  let fcfs = Scheduler.simulate ~gpus:16 Scheduler.Fcfs jobs in
  let bf = Scheduler.simulate ~gpus:16 Scheduler.Fcfs_backfill jobs in
  Alcotest.(check int) "all complete" 400 bf.Scheduler.completed;
  Alcotest.(check bool)
    (Fmt.str "backfill util %.3f > fcfs %.3f" bf.Scheduler.utilization
       fcfs.Scheduler.utilization)
    true
    (bf.Scheduler.utilization > fcfs.Scheduler.utilization);
  Alcotest.(check bool) "mean wait improves" true
    (bf.Scheduler.mean_wait < fcfs.Scheduler.mean_wait)

let test_backfill_simultaneous_finishes () =
  (* regression: two running jobs sharing a finish time used to be
     double-counted in the shadow walk (duplicate finish entries each
     re-summed every job at that time), landing the shadow too early.
     Here j0 and j1 both finish at t=2; the correct shadow for the 5-GPU
     head is t=6, and the 3 s candidate must backfill at t=0. *)
  let jobs =
    [
      { Scheduler.id = 0; arrival = 0.0; duration = 2.0; gpus = 2 };
      { Scheduler.id = 1; arrival = 0.0; duration = 2.0; gpus = 1 };
      { Scheduler.id = 2; arrival = 0.0; duration = 6.0; gpus = 1 };
      { Scheduler.id = 3; arrival = 0.0; duration = 1.0; gpus = 5 };
      { Scheduler.id = 4; arrival = 0.0; duration = 3.0; gpus = 1 };
    ]
  in
  let m, sched =
    Scheduler.simulate_schedule ~gpus:5 ~check:true Scheduler.Fcfs_backfill jobs
  in
  let start id =
    match List.find_opt (fun (i, _, _) -> i = id) sched with
    | Some (_, s, _) -> s
    | None -> Alcotest.failf "job %d never started" id
  in
  Alcotest.(check (float 1e-9)) "candidate backfills immediately" 0.0 (start 4);
  Alcotest.(check (float 1e-9)) "head starts at its true shadow" 6.0 (start 3);
  Alcotest.(check (float 1e-9)) "makespan" 7.0 m.Scheduler.makespan;
  Alcotest.(check int) "all complete" 5 m.Scheduler.completed

let test_backfill_spare_capacity () =
  (* the spare disjunct was dead code (free-now minus head, always
     negative when the head is blocked). With spare = free-at-shadow
     minus head GPUs, a job running past the shadow may use genuinely
     spare capacity without delaying the head... *)
  let jobs gpus2 =
    [
      { Scheduler.id = 0; arrival = 0.0; duration = 4.0; gpus = 3 };
      { Scheduler.id = 1; arrival = 0.0; duration = 1.0; gpus = 4 };
      { Scheduler.id = 2; arrival = 0.0; duration = 10.0; gpus = gpus2 };
    ]
  in
  let start sched id =
    match List.find_opt (fun (i, _, _) -> i = id) sched with
    | Some (_, s, _) -> s
    | None -> Alcotest.failf "job %d never started" id
  in
  let m, sched =
    Scheduler.simulate_schedule ~gpus:5 ~check:true Scheduler.Fcfs_backfill
      (jobs 1)
  in
  Alcotest.(check (float 1e-9)) "1-GPU job uses the spare GPU" 0.0 (start sched 2);
  Alcotest.(check (float 1e-9)) "head not delayed" 4.0 (start sched 1);
  Alcotest.(check (float 1e-9)) "makespan" 10.0 m.Scheduler.makespan;
  (* ...but a 2-GPU job exceeds the spare and must wait for the head *)
  let _, sched2 =
    Scheduler.simulate_schedule ~gpus:5 ~check:true Scheduler.Fcfs_backfill
      (jobs 2)
  in
  Alcotest.(check (float 1e-9)) "2-GPU job must not backfill" 5.0 (start sched2 2);
  Alcotest.(check (float 1e-9)) "head still at its shadow" 4.0 (start sched2 1)

let test_backfill_agrees_with_fcfs_when_impossible () =
  (* every job needs the whole pool, so nothing can ever backfill: the
     fixed EASY schedule must match FCFS exactly *)
  let jobs =
    List.init 30 (fun i ->
        {
          Scheduler.id = i;
          arrival = float_of_int i *. 0.7;
          duration = 1.0 +. float_of_int (i * 7 mod 5);
          gpus = 6;
        })
  in
  let mf, sf = Scheduler.simulate_schedule ~gpus:6 Scheduler.Fcfs jobs in
  let mb, sb =
    Scheduler.simulate_schedule ~gpus:6 ~check:true Scheduler.Fcfs_backfill jobs
  in
  Alcotest.(check bool) "identical schedules" true (sf = sb);
  Alcotest.(check bool) "identical metrics" true (mf = mb)

let test_fcfs_order_respected () =
  (* with 1 GPU and 1-GPU jobs, FCFS runs in arrival order: max wait equals
     sum of earlier durations *)
  let jobs =
    [
      { Scheduler.id = 0; arrival = 0.0; duration = 2.0; gpus = 1 };
      { Scheduler.id = 1; arrival = 0.0; duration = 1.0; gpus = 1 };
      { Scheduler.id = 2; arrival = 0.0; duration = 1.0; gpus = 1 };
    ]
  in
  let m = Scheduler.simulate ~gpus:1 Scheduler.Fcfs jobs in
  Alcotest.(check (float 1e-9)) "makespan" 4.0 m.Scheduler.makespan;
  Alcotest.(check (float 1e-9)) "max wait = 3" 3.0 m.Scheduler.max_wait

(* --- topopt --- *)

let test_topopt_volume_constraint () =
  let t = Topopt.create ~volfrac:0.4 ~nx:20 ~ny:16 () in
  ignore (Topopt.optimize ~iters:10 t);
  Alcotest.(check bool)
    (Fmt.str "volume %.3f ~ 0.4" (Topopt.volume t))
    true
    (Float.abs (Topopt.volume t -. 0.4) < 0.02)

let compliance_at_full_penalization nx ny rho =
  (* evaluate any design at the target penalization so designs are
     comparable (the continuation ramp makes the in-run history mixed) *)
  let t = Topopt.create ~nx ~ny () in
  Array.blit rho 0 t.Topopt.rho 0 (nx * ny);
  let u, _ = Topopt.solve_state t in
  Linalg.Vec.dot u
    (Array.init (nx * ny) (fun k -> if k / nx = ny - 1 then 1.0 else 0.0))

let test_topopt_compliance_decreases () =
  let nx = 20 and ny = 16 in
  let t = Topopt.create ~nx ~ny () in
  let uniform = compliance_at_full_penalization nx ny t.Topopt.rho in
  let hist = Topopt.optimize ~iters:40 t in
  let final = compliance_at_full_penalization nx ny t.Topopt.rho in
  Alcotest.(check bool)
    (Fmt.str "optimized %.0f << uniform %.0f" final uniform)
    true
    (final < uniform /. 3.0);
  Alcotest.(check bool) "all finite" true (Array.for_all Float.is_finite hist)

let test_topopt_forms_structure () =
  (* the design polarizes into a funnel: mostly solid-or-void cells, with
     solid material over the sink and void in the far corners *)
  let t = Topopt.create ~nx:20 ~ny:16 () in
  ignore (Topopt.optimize ~iters:40 t);
  let extreme =
    Array.fold_left
      (fun acc r -> if r > 0.8 || r < 0.1 then acc + 1 else acc)
      0 t.Topopt.rho
  in
  Alcotest.(check bool)
    (Fmt.str "%d/320 cells polarized" extreme)
    true
    (extreme > 200);
  Alcotest.(check bool) "solid above the sink" true
    (t.Topopt.rho.(Topopt.idx t 10 1) > 0.8);
  Alcotest.(check bool) "void in the bottom corner" true
    (t.Topopt.rho.(Topopt.idx t 0 1) < 0.1)

let test_texture_cache_story () =
  (* Sec 4.7: texture path matters on the EA system (P100), not on Volta *)
  let cells = 1_000_000 in
  let p100_tex = Topopt.apply_time ~cells Hwsim.Device.p100 ~textures:true in
  let p100_plain = Topopt.apply_time ~cells Hwsim.Device.p100 ~textures:false in
  let v100_tex = Topopt.apply_time ~cells Hwsim.Device.v100 ~textures:true in
  let v100_plain = Topopt.apply_time ~cells Hwsim.Device.v100 ~textures:false in
  Alcotest.(check bool) "texture wins big on P100" true
    (p100_tex < 0.7 *. p100_plain);
  Alcotest.(check bool) "texture irrelevant on V100" true
    (Float.abs (v100_tex -. v100_plain) /. v100_plain < 0.05)

(* --- paradyn (Fig 6) --- *)

let paradyn_inputs n =
  let r = Icoe_util.Rng.create 7 in
  List.map
    (fun a -> (a, Array.init n (fun _ -> Icoe_util.Rng.uniform r (-1.0) 1.0)))
    [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]

let test_passes_preserve_semantics () =
  let inputs = paradyn_inputs 500 in
  let base = Paradyn.Ir.paradyn_kernel in
  let slnsp = Paradyn.Passes.slnsp base in
  let dse = Paradyn.Passes.dse slnsp in
  let env0, _ = Paradyn.Interp.run base ~inputs in
  List.iter
    (fun p ->
      let env, _ = Paradyn.Interp.run p ~inputs in
      List.iter
        (fun out ->
          Alcotest.(check bool)
            (out ^ " identical")
            true
            (Icoe_util.Stats.max_abs_diff (Hashtbl.find env out)
               (Hashtbl.find env0 out)
            = 0.0))
        base.Paradyn.Ir.outputs)
    [ slnsp; dse ]

let test_fig6_shape () =
  let inputs = paradyn_inputs 100 in
  let base = Paradyn.Ir.paradyn_kernel in
  let slnsp = Paradyn.Passes.slnsp base in
  let dse = Paradyn.Passes.dse slnsp in
  let _, c0 = Paradyn.Interp.run base ~inputs in
  let _, c1 = Paradyn.Interp.run slnsp ~inputs in
  let _, c2 = Paradyn.Interp.run dse ~inputs in
  (* SLNSP halves global loads *)
  Alcotest.(check bool)
    (Fmt.str "loads %d -> %d" c0.Paradyn.Interp.loads c1.Paradyn.Interp.loads)
    true
    (c1.Paradyn.Interp.loads * 2 <= c0.Paradyn.Interp.loads);
  (* one launch after fusion *)
  Alcotest.(check int) "fused to one launch" 1 c1.Paradyn.Interp.launches;
  (* time: ~2x from SLNSP, then ~20% more from DSE *)
  let n = 4_000_000 in
  let t0 = Paradyn.Interp.gpu_time ~n c0 in
  let t1 = Paradyn.Interp.gpu_time ~n c1 in
  let t2 = Paradyn.Interp.gpu_time ~n c2 in
  let s1 = t0 /. t1 and s2 = t1 /. t2 in
  Alcotest.(check bool) (Fmt.str "SLNSP speedup %.2f in 1.5-2.2" s1) true
    (s1 > 1.5 && s1 < 2.2);
  Alcotest.(check bool) (Fmt.str "DSE bonus %.2f in 1.1-1.35" s2) true
    (s2 > 1.1 && s2 < 1.35);
  (* DSE removes stores *)
  Alcotest.(check bool) "fewer stores after DSE" true
    (c2.Paradyn.Interp.stores < c1.Paradyn.Interp.stores)

let test_dse_keeps_outputs () =
  let dse = Paradyn.Passes.dse (Paradyn.Passes.slnsp Paradyn.Ir.paradyn_kernel) in
  (* every output still has a store *)
  let stored =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun st -> Paradyn.Ir.stmt_writes st)
          l.Paradyn.Ir.body)
      dse.Paradyn.Ir.loops
  in
  List.iter
    (fun out ->
      Alcotest.(check bool) (out ^ " still stored") true (List.mem out stored))
    dse.Paradyn.Ir.outputs

let test_cpu_fusion_regression () =
  (* Sec 4.8's dual lesson: on the GPU, fusion wins (launch overhead +
     traffic); on the CPU, hand-fused source LOSES vs the original small
     loops — which is why the SLNSP compiler path was needed *)
  let inputs = paradyn_inputs 100 in
  let base = Paradyn.Ir.paradyn_kernel in
  let fused = Paradyn.Passes.fuse base in
  let _, c_base = Paradyn.Interp.run base ~inputs in
  let _, c_fused = Paradyn.Interp.run fused ~inputs in
  let n = 4_000_000 in
  (* GPU: fused faster *)
  Alcotest.(check bool) "gpu: fused wins" true
    (Paradyn.Interp.gpu_time ~n c_fused < Paradyn.Interp.gpu_time ~n c_base);
  (* CPU: fused source slower *)
  let t_cpu_base = Paradyn.Interp.cpu_time ~n ~fused_source:false c_base in
  let t_cpu_fused = Paradyn.Interp.cpu_time ~n ~fused_source:true c_fused in
  Alcotest.(check bool) "cpu: small loops win" true (t_cpu_base < t_cpu_fused);
  (* SLNSP (compiler-internal) keeps the unfused source: CPU unharmed,
     and its GPU time beats the baseline *)
  let slnsp = Paradyn.Passes.dse (Paradyn.Passes.slnsp base) in
  let _, c_slnsp = Paradyn.Interp.run slnsp ~inputs in
  Alcotest.(check bool) "slnsp gpu beats baseline" true
    (Paradyn.Interp.gpu_time ~n c_slnsp < Paradyn.Interp.gpu_time ~n c_base)

let prop_scheduler_conservation =
  QCheck.Test.make ~name:"every policy completes every job" ~count:20
    QCheck.(pair (int_range 1 3000) (int_range 1 4))
    (fun (seed, pol_idx) ->
      let r = Icoe_util.Rng.create seed in
      let jobs = Scheduler.batch_workload ~rng:r ~n:80 () in
      let pol =
        match pol_idx with
        | 1 -> Scheduler.Fcfs
        | 2 -> Scheduler.Sjf
        | 3 -> Scheduler.Fcfs_backfill
        | _ -> Scheduler.Sjf_quota 0.5
      in
      let m = Scheduler.simulate ~gpus:10 pol jobs in
      m.Scheduler.completed = 80)

(* staggered arrivals with mixed widths: the adversarial input for
   backfill (heads block mid-stream, not just at t=0) *)
let staggered_jobs r n =
  List.init n (fun id ->
      let duration = exp (Icoe_util.Rng.normal r ~mu:0.8 ~sigma:0.9) in
      let gpus = 1 + Icoe_util.Rng.int r 8 in
      let arrival = Icoe_util.Rng.float r *. 30.0 in
      { Scheduler.id; arrival; duration; gpus })

let prop_backfill_never_delays_head =
  (* [~check:true] recomputes the head's shadow with each candidate
     hypothetically running and raises if it ever moved later *)
  QCheck.Test.make ~name:"backfill never delays the head past its shadow"
    ~count:40
    QCheck.(pair (int_range 1 10_000) (int_range 9 16))
    (fun (seed, gpus) ->
      let r = Icoe_util.Rng.create seed in
      let jobs = staggered_jobs r 70 in
      let m, _ =
        Scheduler.simulate_schedule ~gpus ~check:true Scheduler.Fcfs_backfill
          jobs
      in
      m.Scheduler.completed = 70)

let prop_quota_share_bounded =
  (* reconstruct from the schedule: whenever a long job is started while
     some short job is waiting, the long jobs then running stay within
     the quota (one oversized long may run alone — the no-starvation
     escape hatch) *)
  QCheck.Test.make ~name:"sjf+quota bounds the long-job share" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let r = Icoe_util.Rng.create seed in
      let jobs = staggered_jobs r 60 in
      let gpus = 12 and q = 0.5 in
      let _, sched =
        Scheduler.simulate_schedule ~gpus (Scheduler.Sjf_quota q) jobs
      in
      let med =
        Icoe_util.Stats.median
          (Array.of_list (List.map (fun j -> j.Scheduler.duration) jobs))
      in
      let by_id = Hashtbl.create 64 in
      List.iter (fun j -> Hashtbl.replace by_id j.Scheduler.id j) jobs;
      let entries =
        List.map (fun (id, s, f) -> (Hashtbl.find by_id id, s, f)) sched
      in
      List.for_all
        (fun (j, s, _) ->
          j.Scheduler.duration <= med
          ||
          let shorts_waiting =
            List.exists
              (fun (k, sk, _) ->
                k.Scheduler.duration <= med && k.Scheduler.arrival <= s && sk > s)
              entries
          in
          (not shorts_waiting)
          ||
          let running_longs =
            List.filter
              (fun (k, sk, fk) -> k.Scheduler.duration > med && sk <= s && fk > s)
              entries
          in
          let usage =
            List.fold_left (fun a (k, _, _) -> a + k.Scheduler.gpus) 0
              running_longs
          in
          List.length running_longs <= 1
          || float_of_int usage <= (q *. float_of_int gpus) +. 1e-9)
        entries)

(* --- autotune --- *)

let comm_str c = Hwsim.Split.comm_name c

(* A deterministic synthetic objective: one splitmix64 draw keyed on the
   candidate's bits gives an arbitrary-looking but exactly reproducible
   landscape, so search properties can be checked without the cost of
   the real step models. *)
let synth_obj seed (c : Autotune.candidate) =
  let comm_bit =
    match c.Autotune.comm with Hwsim.Split.Dedicated -> 0 | Inline -> 1
  in
  let key =
    seed
    lxor Int64.to_int (Int64.bits_of_float c.Autotune.split)
    lxor (comm_bit * 0x9E3779B9)
  in
  1.0 +. Icoe_util.Rng.float (Icoe_util.Rng.create key)

let test_autotune_exhaustive_minimum () =
  (* a quasi-convex landscape whose optimum sits on a lattice point *)
  let obj (c : Autotune.candidate) =
    Float.abs (c.Autotune.split -. 0.35)
    +.
    match c.Autotune.comm with
    | Hwsim.Split.Dedicated -> 0.01
    | Inline -> 0.0
  in
  let r = Autotune.exhaustive obj in
  Alcotest.(check (float 0.0)) "optimal split" 0.35
    r.Autotune.best.Autotune.cand.Autotune.split;
  Alcotest.(check string) "optimal placement" "inline"
    (comm_str r.Autotune.best.Autotune.cand.Autotune.comm);
  Alcotest.(check int) "whole space priced (memoized)" r.Autotune.space
    r.Autotune.evaluations;
  Alcotest.(check int) "space = 21 points x 2 placements" 42 r.Autotune.space;
  Alcotest.(check (float 0.0)) "default is all-GPU" 1.0
    r.Autotune.default.Autotune.cand.Autotune.split;
  Alcotest.(check string) "default is dedicated" "dedicated"
    (comm_str r.Autotune.default.Autotune.cand.Autotune.comm)

let test_autotune_ties_keep_default () =
  (* a flat landscape: nothing strictly beats the paper default, so the
     tuner must return it unchanged *)
  let r = Autotune.exhaustive (fun _ -> 7.0) in
  Alcotest.(check (float 0.0)) "split stays 1.0" 1.0
    r.Autotune.best.Autotune.cand.Autotune.split;
  Alcotest.(check string) "comm stays dedicated" "dedicated"
    (comm_str r.Autotune.best.Autotune.cand.Autotune.comm);
  Alcotest.(check (float 0.0)) "makespan reported" 7.0
    r.Autotune.best.Autotune.makespan

let test_autotune_rejects_bad_input () =
  let raises f =
    match f () with
    | (_ : Autotune.result) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty lattice" true
    (raises (fun () -> Autotune.exhaustive ~splits:[||] (fun _ -> 1.0)));
  Alcotest.(check bool) "empty placement list" true
    (raises (fun () -> Autotune.exhaustive ~comms:[] (fun _ -> 1.0)));
  Alcotest.(check bool) "out-of-range split" true
    (raises (fun () -> Autotune.exhaustive ~splits:[| 1.5 |] (fun _ -> 1.0)));
  Alcotest.(check bool) "NaN objective" true
    (raises (fun () -> Autotune.exhaustive (fun _ -> Float.nan)));
  Alcotest.(check bool) "negative budget" true
    (raises (fun () -> Autotune.anneal ~iters:(-1) (fun _ -> 1.0)))

let prop_autotune_modes_agree =
  (* when the whole space fits in the budget, annealing falls back to
     the exhaustive sweep and the two modes agree exactly *)
  QCheck.Test.make ~count:60
    ~name:"autotune: annealing with budget >= space equals exhaustive"
    QCheck.(pair (int_bound 10_000) (list_of_size Gen.(1 -- 6) (int_bound 10)))
    (fun (seed, idxs) ->
      let splits =
        Array.of_list (List.map (fun i -> float_of_int i /. 10.0) idxs)
      in
      let obj = synth_obj seed in
      let ex = Autotune.exhaustive ~splits obj in
      let an = Autotune.anneal ~seed ~iters:100 ~splits obj in
      Float.equal ex.Autotune.best.Autotune.makespan
        an.Autotune.best.Autotune.makespan
      && Float.equal ex.Autotune.best.Autotune.cand.Autotune.split
           an.Autotune.best.Autotune.cand.Autotune.split
      && String.equal
           (comm_str ex.Autotune.best.Autotune.cand.Autotune.comm)
           (comm_str an.Autotune.best.Autotune.cand.Autotune.comm)
      && ex.Autotune.evaluations = an.Autotune.evaluations
      && Astring.String.is_suffix ~affix:"exhaustive" an.Autotune.mode)

let prop_autotune_never_worse_and_deterministic =
  (* the real annealing path (space > budget): the tuned makespan never
     loses to the paper default, and a fixed seed pins the whole result *)
  QCheck.Test.make ~count:40
    ~name:"autotune: anneal <= default and deterministic under a seed"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let splits = Hwsim.Split.lattice ~steps:60 () in
      let obj = synth_obj seed in
      let r1 = Autotune.anneal ~seed ~iters:40 ~splits obj in
      let r2 = Autotune.anneal ~seed ~iters:40 ~splits obj in
      r1.Autotune.best.Autotune.makespan
      <= r1.Autotune.default.Autotune.makespan
      && Float.equal r1.Autotune.default.Autotune.makespan
           (obj Autotune.default_candidate)
      && Float.equal r1.Autotune.best.Autotune.makespan
           r2.Autotune.best.Autotune.makespan
      && Float.equal r1.Autotune.best.Autotune.cand.Autotune.split
           r2.Autotune.best.Autotune.cand.Autotune.split
      && String.equal
           (comm_str r1.Autotune.best.Autotune.cand.Autotune.comm)
           (comm_str r2.Autotune.best.Autotune.cand.Autotune.comm)
      && r1.Autotune.evaluations = r2.Autotune.evaluations
      && r1.Autotune.evaluations <= r1.Autotune.space)

let prop_autotune_exhaustive_bounds_anneal =
  (* exhaustive search is the ground truth: annealing on the same
     lattice can match it but never beat it, and never loses to the
     default either *)
  QCheck.Test.make ~count:40
    ~name:"autotune: exhaustive is a lower bound for annealing"
    QCheck.(pair (int_bound 100_000) (int_bound 50))
    (fun (seed, iters) ->
      let splits = Hwsim.Split.lattice ~steps:40 () in
      let obj = synth_obj seed in
      let ex = Autotune.exhaustive ~splits obj in
      let an = Autotune.anneal ~seed:(seed + 1) ~iters ~splits obj in
      ex.Autotune.best.Autotune.makespan
      <= an.Autotune.best.Autotune.makespan
      && an.Autotune.best.Autotune.makespan
         <= an.Autotune.default.Autotune.makespan)

let () =
  Alcotest.run "opt"
    [
      ( "scheduler",
        [
          Alcotest.test_case "all complete" `Quick test_batch_all_complete;
          Alcotest.test_case "sjf+quota utilization" `Quick test_sjf_quota_beats_fcfs_utilization;
          Alcotest.test_case "quota cost bounded" `Quick test_sjf_quota_bounds_starvation;
          Alcotest.test_case "throttling" `Quick test_throttling_conclusion;
          Alcotest.test_case "fcfs order" `Quick test_fcfs_order_respected;
          Alcotest.test_case "easy backfill" `Quick test_backfill_beats_fcfs;
          Alcotest.test_case "simultaneous finishes" `Quick
            test_backfill_simultaneous_finishes;
          Alcotest.test_case "spare capacity" `Quick
            test_backfill_spare_capacity;
          Alcotest.test_case "backfill = fcfs when impossible" `Quick
            test_backfill_agrees_with_fcfs_when_impossible;
          QCheck_alcotest.to_alcotest prop_scheduler_conservation;
          QCheck_alcotest.to_alcotest prop_backfill_never_delays_head;
          QCheck_alcotest.to_alcotest prop_quota_share_bounded;
        ] );
      ( "topopt",
        [
          Alcotest.test_case "volume constraint" `Quick test_topopt_volume_constraint;
          Alcotest.test_case "compliance decreases" `Quick test_topopt_compliance_decreases;
          Alcotest.test_case "forms structure" `Quick test_topopt_forms_structure;
          Alcotest.test_case "texture cache" `Quick test_texture_cache_story;
        ] );
      ( "paradyn",
        [
          Alcotest.test_case "semantics preserved" `Quick test_passes_preserve_semantics;
          Alcotest.test_case "fig6 shape" `Quick test_fig6_shape;
          Alcotest.test_case "dse keeps outputs" `Quick test_dse_keeps_outputs;
          Alcotest.test_case "cpu fusion regression" `Quick test_cpu_fusion_regression;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "exhaustive minimum" `Quick
            test_autotune_exhaustive_minimum;
          Alcotest.test_case "ties keep default" `Quick
            test_autotune_ties_keep_default;
          Alcotest.test_case "rejects bad input" `Quick
            test_autotune_rejects_bad_input;
          QCheck_alcotest.to_alcotest prop_autotune_modes_agree;
          QCheck_alcotest.to_alcotest prop_autotune_never_worse_and_deterministic;
          QCheck_alcotest.to_alcotest prop_autotune_exhaustive_bounds_anneal;
        ] );
    ]
