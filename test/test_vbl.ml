(* Tests for the FFT library and the VBL split-step laser propagation. *)

let check_float = Alcotest.(check (float 1e-9))

(* --- fft --- *)

let test_fft_roundtrip () =
  let rng = Icoe_util.Rng.create 81 in
  let n = 64 in
  let a = Array.init (2 * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let b = Fftlib.Fft.dft a in
  let c = Fftlib.Fft.dft ~inverse:true b in
  Alcotest.(check bool) "ifft(fft(x)) = x" true
    (Icoe_util.Stats.max_abs_diff a c < 1e-10)

let test_fft_delta_is_flat () =
  let n = 32 in
  let a = Array.make (2 * n) 0.0 in
  a.(0) <- 1.0;
  let b = Fftlib.Fft.dft a in
  for k = 0 to n - 1 do
    Alcotest.(check (float 1e-12)) "re = 1" 1.0 b.(2 * k);
    Alcotest.(check (float 1e-12)) "im = 0" 0.0 b.((2 * k) + 1)
  done

let test_fft_single_tone () =
  (* pure frequency m: spectrum concentrated in bin m *)
  let n = 64 and m = 5 in
  let a =
    Array.init (2 * n) (fun k ->
        let i = k / 2 in
        let ph = 2.0 *. Float.pi *. float_of_int (m * i) /. float_of_int n in
        if k mod 2 = 0 then cos ph else sin ph)
  in
  let b = Fftlib.Fft.dft a in
  check_float "bin m magnitude" (float_of_int n)
    (sqrt ((b.(2 * m) ** 2.0) +. (b.((2 * m) + 1) ** 2.0)));
  (* all other bins tiny *)
  for k = 0 to n - 1 do
    if k <> m then
      Alcotest.(check bool) "other bins ~0" true
        (sqrt ((b.(2 * k) ** 2.0) +. (b.((2 * k) + 1) ** 2.0)) < 1e-9)
  done

let test_parseval () =
  let rng = Icoe_util.Rng.create 82 in
  let n = 128 in
  let a = Array.init (2 * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let e_time = Array.fold_left (fun s v -> s +. (v *. v)) 0.0 a in
  let b = Fftlib.Fft.dft a in
  let e_freq = Array.fold_left (fun s v -> s +. (v *. v)) 0.0 b /. float_of_int n in
  Alcotest.(check (float 1e-8)) "parseval" e_time e_freq

let test_transpose_variants_agree () =
  let rng = Icoe_util.Rng.create 83 in
  let n = 33 in
  (* non-multiple of tile *)
  let src = Array.init (2 * n * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let d1 = Array.make (2 * n * n) 0.0 in
  let d2 = Array.make (2 * n * n) 0.0 in
  Fftlib.Fft.transpose_naive ~n src d1;
  Fftlib.Fft.transpose_tiled ~tile:8 ~n src d2;
  Alcotest.(check bool) "identical" true (Icoe_util.Stats.max_abs_diff d1 d2 = 0.0)

let test_fft2d_roundtrip () =
  let rng = Icoe_util.Rng.create 84 in
  let n = 16 in
  let a = Array.init (2 * n * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let b = Array.copy a in
  Fftlib.Fft.transform_2d ~n b;
  Fftlib.Fft.transform_2d ~inverse:true ~n b;
  Alcotest.(check bool) "2d roundtrip" true (Icoe_util.Stats.max_abs_diff a b < 1e-10)

let test_tiled_transpose_faster_model () =
  let t_naive = Fftlib.Fft.transpose_time ~n:2048 ~device:Hwsim.Device.v100 `Naive in
  let t_tiled = Fftlib.Fft.transpose_time ~n:2048 ~device:Hwsim.Device.v100 `Tiled in
  Alcotest.(check bool) "tiled much faster" true (t_tiled *. 3.0 < t_naive)

(* --- vbl --- *)

let test_power_conserved_free_space () =
  let b = Vbl.Beam.create ~n:64 ~width:0.4 () in
  Vbl.Beam.flat_top b;
  let p0 = Vbl.Beam.total_power b in
  Vbl.Propagate.run b ~distance:5.0 ~steps:4;
  let p1 = Vbl.Beam.total_power b in
  Alcotest.(check bool) "unitary propagation" true
    (Float.abs (p1 -. p0) /. p0 < 1e-10)

let test_gaussian_spreads () =
  (* a focused Gaussian diffracts: peak fluence decreases with distance *)
  let b = Vbl.Beam.create ~n:128 ~width:0.02 () in
  Vbl.Beam.gaussian ~w0:0.001 b;
  let f0 = Vbl.Beam.fluence b in
  let peak0 = Array.fold_left max 0.0 f0 in
  Vbl.Propagate.run b ~distance:20.0 ~steps:8;
  let f1 = Vbl.Beam.fluence b in
  let peak1 = Array.fold_left max 0.0 f1 in
  Alcotest.(check bool) "peak decreased" true (peak1 < 0.8 *. peak0)

let test_amplifier_gains_and_saturates () =
  let b = Vbl.Beam.create ~n:32 ~width:0.4 () in
  Vbl.Beam.flat_top b;
  let p0 = Vbl.Beam.total_power b in
  Vbl.Propagate.amplifier_step b ~g0:1.0 ~fsat:10.0 ~dz:1.0;
  let p1 = Vbl.Beam.total_power b in
  Alcotest.(check bool) "gain" true (p1 > p0);
  (* a much hotter beam gains less (saturation) *)
  let hot = Vbl.Beam.create ~n:32 ~width:0.4 () in
  Vbl.Beam.set_field hot (fun ~x:_ ~y:_ -> (100.0, 0.0));
  let h0 = Vbl.Beam.total_power hot in
  Vbl.Propagate.amplifier_step hot ~g0:1.0 ~fsat:10.0 ~dz:1.0;
  let h1 = Vbl.Beam.total_power hot in
  Alcotest.(check bool) "saturated gain smaller" true
    (h1 /. h0 < p1 /. p0)

let test_fig9_defect_ripples () =
  (* Fig 9: two phase defects cause fluence ripples after 10 m *)
  (* aperture scaled so the 150 micron defects are resolved on the grid *)
  let clean = Vbl.Beam.create ~n:256 ~width:0.05 () in
  Vbl.Beam.flat_top clean;
  Vbl.Propagate.run clean ~distance:10.0 ~steps:5;
  let c_clean = Vbl.Beam.center_contrast clean in
  let defective = Vbl.Beam.create ~n:256 ~width:0.05 () in
  Vbl.Beam.flat_top defective;
  Vbl.Propagate.defect_screen ~defect_size:150e-6 ~depth:2.0 defective;
  (* defects are pure phase: fluence unchanged at z = 0 *)
  let c_at0 = Vbl.Beam.center_contrast defective in
  Vbl.Propagate.run defective ~distance:10.0 ~steps:5;
  let c_defect = Vbl.Beam.center_contrast defective in
  Alcotest.(check bool) "phase defects invisible at z=0" true
    (Float.abs (c_at0 -. 0.0) < 0.05);
  Alcotest.(check bool)
    (Fmt.str "ripples appear: %.3f > %.3f" c_defect c_clean)
    true
    (c_defect > (5.0 *. c_clean) && c_defect > 0.05)

let test_center_contrast_window_symmetric () =
  (* the ripple window must be symmetric about the grid centre: a fluence
     feature and its mirror image produce the same contrast. The old
     truncating window edges ([int_of_float] instead of rounding) dropped
    the mirror row, so one side of the aperture was scored and the other
    ignored. *)
  let n = 16 in
  let spike_at s =
    let b = Vbl.Beam.create ~n ~width:1.0 () in
    Vbl.Beam.set_field b (fun ~x:_ ~y:_ -> (1.0, 0.0));
    b.Vbl.Beam.field.(2 * ((s * n) + s)) <- 3.0;
    Vbl.Beam.center_contrast b
  in
  (* mirror of index i is n - 1 - i *)
  Alcotest.(check (float 1e-12)) "edge pair 4/11 agree" (spike_at 4)
    (spike_at 11);
  Alcotest.(check (float 1e-12)) "interior pair 5/10 agree" (spike_at 5)
    (spike_at 10);
  Alcotest.(check bool) "interior spike scored" true (spike_at 5 > 0.0)

let test_step_time_transpose_lever () =
  let t_naive =
    Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100
      ~transpose_variant:`Naive
  in
  let t_tiled =
    Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100
      ~transpose_variant:`Tiled
  in
  Alcotest.(check bool) "tiled transpose speeds the step" true (t_tiled < t_naive)

let prop_fft_linear =
  QCheck.Test.make ~name:"FFT is linear" ~count:50
    QCheck.(pair (int_range 1 1000) (float_range (-3.0) 3.0))
    (fun (seed, alpha) ->
      let rng = Icoe_util.Rng.create seed in
      let n = 32 in
      let a = Array.init (2 * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
      let b = Array.init (2 * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
      let sum = Array.init (2 * n) (fun i -> a.(i) +. (alpha *. b.(i))) in
      let fs = Fftlib.Fft.dft sum in
      let fa = Fftlib.Fft.dft a and fb = Fftlib.Fft.dft b in
      let expected = Array.init (2 * n) (fun i -> fa.(i) +. (alpha *. fb.(i))) in
      Icoe_util.Stats.max_abs_diff fs expected < 1e-9)

let () =
  Alcotest.run "vbl"
    [
      ( "fft",
        [
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "delta" `Quick test_fft_delta_is_flat;
          Alcotest.test_case "single tone" `Quick test_fft_single_tone;
          Alcotest.test_case "parseval" `Quick test_parseval;
          Alcotest.test_case "transpose agree" `Quick test_transpose_variants_agree;
          Alcotest.test_case "2d roundtrip" `Quick test_fft2d_roundtrip;
          Alcotest.test_case "tiled model" `Quick test_tiled_transpose_faster_model;
          QCheck_alcotest.to_alcotest prop_fft_linear;
        ] );
      ( "beam",
        [
          Alcotest.test_case "power conserved" `Quick test_power_conserved_free_space;
          Alcotest.test_case "gaussian spreads" `Quick test_gaussian_spreads;
          Alcotest.test_case "amplifier" `Quick test_amplifier_gains_and_saturates;
          Alcotest.test_case "fig9 ripples" `Quick test_fig9_defect_ripples;
          Alcotest.test_case "contrast window symmetric" `Quick
            test_center_contrast_window_symmetric;
          Alcotest.test_case "transpose lever" `Quick test_step_time_transpose_lever;
        ] );
    ]
