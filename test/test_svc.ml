(* The machine-as-a-service layer: generator determinism, exact capacity
   accounting, policy invariants on model-priced streams, and the
   saturation contract (bounded waits below capacity, unbounded above)
   that the svc harness reports. *)

open Icoe_svc

let machine = Catalog.machine ()
let classes = Catalog.default machine
let nodes = 256
let zipf_s = 1.1
let cap = Workload.capacity ~classes ~zipf_s ~nodes

let stream ~seed ~mult ~horizon =
  Workload.generate
    ~rng:(Icoe_util.Rng.create seed)
    ~classes ~zipf_s
    ~arrivals:(Workload.Poisson (mult *. cap))
    ~horizon ()

let test_catalog_names_are_harness_ids () =
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Workload.name ^ " registered") true
        (Option.is_some (Icoe.Harness_registry.find c.Workload.name)))
    classes;
  Array.iter
    (fun c ->
      Array.iter
        (fun n ->
          let s = c.Workload.service ~nodes:n in
          Alcotest.(check bool)
            (Printf.sprintf "%s@%d finite positive" c.Workload.name n)
            true
            (Float.is_finite s && s > 0.0))
        c.Workload.sizes)
    classes

let test_capacity_sane () =
  Alcotest.(check bool) "capacity positive" true (cap > 0.0);
  Alcotest.(check bool) "capacity finite" true (Float.is_finite cap);
  let load = Workload.offered_load ~classes ~zipf_s ~rate:cap ~nodes in
  Alcotest.(check (float 1e-9)) "offered load at capacity is 1" 1.0 load;
  let w = Workload.zipf ~s:zipf_s (Array.length classes) in
  Array.iteri
    (fun i x -> if i > 0 then
        Alcotest.(check bool) "zipf decreasing" true (x < w.(i - 1)))
    w

let test_generator_deterministic () =
  let a = stream ~seed:5 ~mult:0.9 ~horizon:4000.0 in
  let b = stream ~seed:5 ~mult:0.9 ~horizon:4000.0 in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  Alcotest.(check bool) "non-empty" true (List.length a > 50);
  let rec sorted = function
    | a :: (b :: _ as tl) -> a.Workload.arrival <= b.Workload.arrival && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "arrival order" true (sorted a);
  List.iter
    (fun j ->
      Alcotest.(check bool) "within horizon" true
        (j.Workload.arrival >= 0.0 && j.Workload.arrival <= 4000.0))
    a

let test_bursty_generator () =
  let gen seed =
    Workload.generate
      ~rng:(Icoe_util.Rng.create seed)
      ~classes ~zipf_s
      ~arrivals:
        (Workload.Bursty
           {
             rate_hi = 2.5 *. cap;
             rate_lo = 0.3 *. cap;
             mean_hi_s = 400.0;
             mean_lo_s = 1200.0;
           })
      ~horizon:8000.0 ()
  in
  let a = gen 303 in
  Alcotest.(check bool) "bursty deterministic" true (a = gen 303);
  Alcotest.(check bool) "bursty non-empty" true (List.length a > 50)

let policies =
  [
    Cluster.Fcfs; Cluster.Easy_backfill; Cluster.Sjf_quota 0.5;
    Cluster.Partition 0.5;
  ]

let test_all_policies_conserve_jobs () =
  let jobs = stream ~seed:7 ~mult:0.8 ~horizon:6000.0 in
  let n = List.length jobs in
  List.iter
    (fun pol ->
      let m = Cluster.simulate ~check:true ~nodes ~classes pol jobs in
      let name = Cluster.policy_name pol in
      Alcotest.(check int) (name ^ " submitted") n m.Cluster.submitted;
      (* every catalog size fits the 256-node machine, so nothing drops *)
      Alcotest.(check int) (name ^ " completed") n m.Cluster.completed;
      Alcotest.(check int)
        (name ^ " turnaround per job") n
        (Array.length m.Cluster.turnarounds);
      Alcotest.(check bool)
        (name ^ " utilization in (0,1]")
        true
        (m.Cluster.utilization > 0.0 && m.Cluster.utilization <= 1.0 +. 1e-9);
      Alcotest.(check bool)
        (name ^ " p99 >= p50") true
        (m.Cluster.wait_p99 >= m.Cluster.wait_p50))
    policies

let test_simulate_deterministic () =
  let jobs = stream ~seed:11 ~mult:0.9 ~horizon:5000.0 in
  let m1 = Cluster.simulate ~nodes ~classes Cluster.Easy_backfill jobs in
  let m2 = Cluster.simulate ~nodes ~classes Cluster.Easy_backfill jobs in
  Alcotest.(check bool) "bit-identical metrics" true (m1 = m2)

let test_backfill_beats_fcfs () =
  let jobs = stream ~seed:7 ~mult:0.9 ~horizon:6000.0 in
  let fcfs = Cluster.simulate ~nodes ~classes Cluster.Fcfs jobs in
  let easy =
    Cluster.simulate ~check:true ~nodes ~classes Cluster.Easy_backfill jobs
  in
  Alcotest.(check bool) "backfill cuts mean wait" true
    (easy.Cluster.mean_wait <= fcfs.Cluster.mean_wait +. 1e-9);
  Alcotest.(check bool) "backfill no worse on makespan" true
    (easy.Cluster.makespan <= fcfs.Cluster.makespan +. 1e-9)

let test_saturation_contract () =
  (* the svc harness's acceptance story: below capacity the queue
     drains and waits stay bounded; above it they grow with the horizon *)
  let mean_wait mult =
    let jobs = stream ~seed:909 ~mult ~horizon:8000.0 in
    (Cluster.simulate ~nodes ~classes Cluster.Easy_backfill jobs)
      .Cluster.mean_wait
  in
  let under = mean_wait 0.7 and over = mean_wait 1.3 in
  Alcotest.(check bool) "overload waits dwarf underload waits" true
    (over > 3.0 *. under)

let prop_svc_conservation =
  QCheck.Test.make ~name:"svc policies complete every submitted job"
    ~count:10
    QCheck.(pair (int_range 1 5000) (int_range 1 4))
    (fun (seed, pol_idx) ->
      let jobs = stream ~seed ~mult:0.9 ~horizon:3000.0 in
      let pol = List.nth policies (pol_idx - 1) in
      let m = Cluster.simulate ~nodes ~classes pol jobs in
      m.Cluster.completed = List.length jobs
      && Float.is_finite m.Cluster.wait_p99)

let () =
  Alcotest.run "svc"
    [
      ( "workload",
        [
          Alcotest.test_case "catalog vs registry" `Quick
            test_catalog_names_are_harness_ids;
          Alcotest.test_case "capacity" `Quick test_capacity_sane;
          Alcotest.test_case "generator determinism" `Quick
            test_generator_deterministic;
          Alcotest.test_case "bursty generator" `Quick test_bursty_generator;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "conservation" `Quick
            test_all_policies_conserve_jobs;
          Alcotest.test_case "determinism" `Quick test_simulate_deterministic;
          Alcotest.test_case "backfill beats fcfs" `Quick
            test_backfill_beats_fcfs;
          Alcotest.test_case "saturation" `Quick test_saturation_contract;
          QCheck_alcotest.to_alcotest prop_svc_conservation;
        ] );
    ]
