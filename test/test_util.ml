(* Tests for the shared utility layer: deterministic RNG, statistics,
   table rendering. *)

open Icoe_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  let before = Rng.float parent in
  (* drawing from the child must not perturb a copy of the parent *)
  let parent2 = Rng.create 1 in
  let _child2 = Rng.split parent2 in
  ignore (Rng.float child);
  let before2 = Rng.float parent2 in
  check_float "parent unperturbed by child draws" before before2

let test_rng_uniform_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.uniform r 2.0 5.0 in
    Alcotest.(check bool) "in range" true (x >= 2.0 && x < 5.0)
  done

let test_rng_int_range () =
  let r = Rng.create 4 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let k = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 7);
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all (fun b -> b) seen)

let test_gaussian_moments () =
  let r = Rng.create 5 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r) in
  let m = Stats.mean xs and s = Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs m < 0.02);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (s -. 1.0) < 0.02)

let test_exponential_mean () =
  let r = Rng.create 6 in
  let xs = Array.init 50_000 (fun _ -> Rng.exponential r ~rate:2.0) in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (Stats.mean xs -. 0.5) < 0.02)

let test_categorical () =
  let r = Rng.create 7 in
  let w = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let k = Rng.categorical r w in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check int) "zero-weight category never drawn" 0 counts.(1);
  Alcotest.(check bool) "ratio near 3" true
    (let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
     ratio > 2.5 && ratio < 3.5)

let test_shuffle_permutation () =
  let r = Rng.create 8 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "sum" 10.0 (Stats.sum a);
  check_float "median" 2.5 (Stats.median a);
  let lo, hi = Stats.min_max a in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi;
  check_float "variance" (5.0 /. 3.0) (Stats.variance a)

let test_percentile () =
  let a = Array.init 101 (fun i -> float_of_int i) in
  check_float "p0" 0.0 (Stats.percentile a 0.0);
  check_float "p50" 50.0 (Stats.percentile a 0.5);
  check_float "p100" 100.0 (Stats.percentile a 1.0)

let test_rel_l2 () =
  let a = [| 1.0; 0.0 |] and b = [| 1.0; 0.0 |] in
  check_float "identical" 0.0 (Stats.rel_l2_error a b)

let test_table_render () =
  let t = Table.create ~title:"t" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 4 = "== t")

let test_table_addf_pipe_cells () =
  (* regression: addf used to split the formatted row on '|', so a cell
     value containing a pipe shifted every later column and tripped the
     add_row arity assert; it now splits on the non-printable Table.sep *)
  let t = Table.create ~title:"pipes" [ "expr"; "n" ] in
  Table.addf t ("%s" ^^ "\x1f" ^^ "%d") "a|b" 7;
  Alcotest.(check char) "sep is the unit separator" '\x1f' Table.sep.[0];
  let s = Table.render t in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "pipe cell survives intact" true (contains "a|b");
  Alcotest.(check bool) "second column rendered" true (contains "7")

let prop_rng_float_unit =
  QCheck.Test.make ~name:"rng floats in [0,1)" ~count:200
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = Rng.create seed in
      let x = Rng.float r in
      x >= 0.0 && x < 1.0)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_float_unit;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "rel l2" `Quick test_rel_l2;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "addf pipe cells" `Quick test_table_addf_pipe_cells;
        ] );
    ]
