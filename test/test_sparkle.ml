(* Tests for the mini-Spark substrate and the LDA workload (Fig 2). *)

let mk ?(optimized = false) ?(nodes = 8) () =
  Sparkle.Cluster.create
    (if optimized then Sparkle.Cluster.optimized_config ~nodes ()
     else Sparkle.Cluster.default_config ~nodes ())

(* --- rdd --- *)

let test_rdd_partitioning () =
  let c = mk () in
  let r = Sparkle.Rdd.of_array c (Array.init 100 (fun i -> i)) in
  Alcotest.(check int) "count preserved" 100 (Sparkle.Rdd.count r);
  Alcotest.(check bool) "multiple partitions" true (Sparkle.Rdd.num_partitions r > 1);
  let back = Sparkle.Rdd.collect r in
  Array.sort compare back;
  Alcotest.(check (array int)) "collect roundtrip" (Array.init 100 (fun i -> i)) back

let test_rdd_map_and_charge () =
  let c = mk () in
  let r = Sparkle.Rdd.of_array c (Array.init 50 (fun i -> i)) in
  let r2 = Sparkle.Rdd.map (fun x -> x * 2) r in
  let total = Sparkle.Rdd.reduce ~init:0 ~combine:( + ) r2 in
  Alcotest.(check int) "sum of doubles" (49 * 50) total;
  Alcotest.(check bool) "compute time charged" true
    (Hwsim.Clock.phase c.Sparkle.Cluster.clock "compute" > 0.0);
  Alcotest.(check bool) "aggregate charged" true
    (Hwsim.Clock.phase c.Sparkle.Cluster.clock "aggregate" > 0.0)

let test_rdd_filter () =
  let c = mk () in
  let r = Sparkle.Rdd.of_array c (Array.init 30 (fun i -> i)) in
  let evens = Sparkle.Rdd.filter (fun x -> x mod 2 = 0) r in
  Alcotest.(check int) "filtered count" 15 (Sparkle.Rdd.count evens)

let test_reduce_by_key () =
  let c = mk () in
  let data = Array.init 60 (fun i -> (i mod 5, 1)) in
  let r = Sparkle.Rdd.of_array c data in
  let counted = Sparkle.Rdd.reduce_by_key ~combine:( + ) r in
  let pairs = Sparkle.Rdd.collect counted in
  Alcotest.(check int) "five keys" 5 (Array.length pairs);
  Array.iter (fun (_, v) -> Alcotest.(check int) "12 each" 12 v) pairs;
  Alcotest.(check bool) "shuffle charged" true
    (Hwsim.Clock.phase c.Sparkle.Cluster.clock "shuffle" > 0.0)

let test_shuffle_key_locality () =
  (* after a shuffle, all copies of a key live in one partition *)
  let c = mk () in
  let data = Array.init 200 (fun i -> (i mod 10, i)) in
  let r = Sparkle.Rdd.of_array c data in
  let s = Sparkle.Rdd.shuffle_by_key r in
  let home = Hashtbl.create 16 in
  Array.iteri
    (fun pidx part ->
      Array.iter
        (fun (k, _) ->
          match Hashtbl.find_opt home k with
          | None -> Hashtbl.add home k pidx
          | Some p -> Alcotest.(check int) "key in one partition" p pidx)
        part)
    s.Sparkle.Rdd.partitions;
  Alcotest.(check int) "count preserved" 200 (Sparkle.Rdd.count s)

(* --- cost model (Fig 2 levers) --- *)

let test_adaptive_shuffle_cheaper () =
  let slow = mk () and fast = mk ~optimized:true () in
  Sparkle.Cluster.charge_shuffle slow ~bytes:1e9;
  Sparkle.Cluster.charge_shuffle fast ~bytes:1e9;
  Alcotest.(check bool) "adaptive shuffle faster" true
    (Hwsim.Clock.phase fast.Sparkle.Cluster.clock "shuffle"
    < Hwsim.Clock.phase slow.Sparkle.Cluster.clock "shuffle" /. 2.0)

let test_tree_aggregate_scales () =
  (* flat aggregate cost grows linearly with node count, tree grows as
     log: at 128 nodes the gap is large *)
  let flat = mk ~nodes:128 () and tree = mk ~optimized:true ~nodes:128 () in
  Sparkle.Cluster.charge_aggregate flat ~bytes_per_node:50e6;
  Sparkle.Cluster.charge_aggregate tree ~bytes_per_node:50e6;
  Alcotest.(check bool) "tree much faster at scale" true
    (Hwsim.Clock.phase tree.Sparkle.Cluster.clock "aggregate" *. 4.0
    < Hwsim.Clock.phase flat.Sparkle.Cluster.clock "aggregate")

let test_tree_aggregate_single_node () =
  (* regression: at nodes=1 the tree round count used to be
     ceil(log2 1) = 0, charging zero seconds; the clamp makes one-node
     tree and flat aggregates cost the same positive time *)
  let flat = mk ~nodes:1 () and tree = mk ~optimized:true ~nodes:1 () in
  let flat_s = Sparkle.Cluster.aggregate_seconds flat ~bytes_per_node:50e6 in
  let tree_s = Sparkle.Cluster.aggregate_seconds tree ~bytes_per_node:50e6 in
  Alcotest.(check bool) "tree charges time at nodes=1" true (tree_s > 0.0);
  (* tree pays one combine round; flat pays one node's ingest — the tree
     configuration also has the optimized JVM, so it can only be faster,
     never free *)
  Sparkle.Cluster.charge_aggregate tree ~bytes_per_node:50e6;
  Alcotest.(check (float 1e-12)) "charge matches cost function" tree_s
    (Hwsim.Clock.phase tree.Sparkle.Cluster.clock "aggregate");
  Alcotest.(check bool) "flat positive too" true (flat_s > 0.0)

let test_async_overlap_bounds () =
  (* a compute stage overlapping a shuffle: makespan is the critical
     path, bounded below by the longer stage and above by the sum *)
  let c = mk ~nodes:8 () in
  let s = Sparkle.Cluster.async ~overlap:true c in
  let comp = Sparkle.Cluster.issue_compute c s ~flops:5e12 () in
  let _sh = Sparkle.Cluster.issue_shuffle c s ~bytes:2e9 () in
  let _agg =
    Sparkle.Cluster.issue_aggregate c s ~deps:[ comp ] ~bytes_per_node:10e6 ()
  in
  let makespan = Sparkle.Cluster.wait c s in
  let serial = Hwsim.Sched.serial_sum s in
  Alcotest.(check bool) "overlapped below serial sum" true (makespan < serial);
  Alcotest.(check (float 1e-12)) "clock advanced by makespan" makespan
    (Sparkle.Cluster.elapsed c);
  (* per-phase attribution still lands in the breakdown *)
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " attributed") true
        (Hwsim.Clock.phase c.Sparkle.Cluster.clock phase > 0.0))
    [ "compute"; "shuffle"; "aggregate" ]

let test_async_serial_matches_blocking () =
  (* with overlap off, issue/wait charges exactly what the blocking
     charge_* sequence would *)
  let a = mk ~nodes:8 () and b = mk ~nodes:8 () in
  let s = Sparkle.Cluster.async ~overlap:false a in
  let _ = Sparkle.Cluster.issue_shuffle a s ~bytes:2e9 () in
  let _ = Sparkle.Cluster.issue_aggregate a s ~bytes_per_node:10e6 () in
  let makespan = Sparkle.Cluster.wait a s in
  Sparkle.Cluster.charge_shuffle b ~bytes:2e9;
  Sparkle.Cluster.charge_aggregate b ~bytes_per_node:10e6;
  Alcotest.(check (float 0.0)) "same elapsed" (Sparkle.Cluster.elapsed b)
    (Sparkle.Cluster.elapsed a);
  Alcotest.(check (float 0.0)) "makespan = serial sum"
    (Hwsim.Sched.serial_sum s) makespan;
  List.iter
    (fun phase ->
      Alcotest.(check (float 0.0)) (phase ^ " identical")
        (Hwsim.Clock.phase b.Sparkle.Cluster.clock phase)
        (Hwsim.Clock.phase a.Sparkle.Cluster.clock phase))
    [ "shuffle"; "aggregate" ]

let test_jvm_gc_drag () =
  let slow = mk () and fast = mk ~optimized:true () in
  Sparkle.Cluster.charge_compute slow ~flops:1e12;
  Sparkle.Cluster.charge_compute fast ~flops:1e12;
  Alcotest.(check bool) "optimized JVM computes faster" true
    (Sparkle.Cluster.elapsed fast < Sparkle.Cluster.elapsed slow)

let test_group_by_key () =
  let c = mk () in
  let data = Array.init 40 (fun i -> (i mod 4, i)) in
  let r = Sparkle.Rdd.of_array c data in
  let grouped = Sparkle.Rdd.group_by_key r in
  let pairs = Sparkle.Rdd.collect grouped in
  Alcotest.(check int) "four groups" 4 (Array.length pairs);
  Array.iter
    (fun (k, vs) ->
      Alcotest.(check int) "10 values each" 10 (List.length vs);
      List.iter (fun v -> Alcotest.(check int) "key consistent" k (v mod 4)) vs)
    pairs

let test_join () =
  let c = mk () in
  let left = Sparkle.Rdd.of_array c [| (1, "a"); (2, "b"); (3, "c") |] in
  let right = Sparkle.Rdd.of_array c [| (2, 20); (3, 30); (4, 40); (3, 31) |] in
  let j = Sparkle.Rdd.join left right in
  let rows = Array.to_list (Sparkle.Rdd.collect j) in
  let sorted = List.sort compare rows in
  Alcotest.(check int) "three matches" 3 (List.length rows);
  Alcotest.(check bool) "contents" true
    (sorted = [ (2, ("b", 20)); (3, ("c", 30)); (3, ("c", 31)) ])

(* --- data broker --- *)

let test_databroker_kv () =
  let c = mk () in
  let db = Sparkle.Databroker.create c in
  Sparkle.Databroker.put db ~ns:"topics" ~key:"lambda0" [| 1.0; 2.0 |];
  (match Sparkle.Databroker.get db ~ns:"topics" ~key:"lambda0" with
  | Some v -> Alcotest.(check (array (float 1e-12))) "roundtrip" [| 1.0; 2.0 |] v
  | None -> Alcotest.fail "missing value");
  Alcotest.(check bool) "miss returns None" true
    (Sparkle.Databroker.get db ~ns:"topics" ~key:"nope" = None);
  Sparkle.Databroker.delete_namespace db "topics";
  Alcotest.(check bool) "namespace dropped" true
    (Sparkle.Databroker.get db ~ns:"topics" ~key:"lambda0" = None);
  Alcotest.(check bool) "broker time charged" true
    (Hwsim.Clock.phase c.Sparkle.Cluster.clock "broker" > 0.0)

let test_databroker_beats_default_shuffle () =
  (* the Sec 4.4 exploration: broker-mediated shuffle skips JVM
     serialization, beating the default sort-spill path *)
  let c = mk ~nodes:32 () in
  let db = Sparkle.Databroker.create c in
  let bytes = 50e9 and tuples = 1_000_000 in
  let broker = Sparkle.Databroker.shuffle_cost db ~bytes ~tuples in
  let default_cluster = mk ~nodes:32 () in
  Sparkle.Cluster.charge_shuffle default_cluster ~bytes;
  let default_t = Hwsim.Clock.phase default_cluster.Sparkle.Cluster.clock "shuffle" in
  Alcotest.(check bool)
    (Fmt.str "broker %.2f s < default %.2f s" broker default_t)
    true (broker < default_t)

(* --- lda --- *)

let test_digamma_recurrence () =
  (* digamma(x+1) = digamma(x) + 1/x *)
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-8))
        (Fmt.str "recurrence at %.2f" x)
        (Lda.Vem.digamma x +. (1.0 /. x))
        (Lda.Vem.digamma (x +. 1.0)))
    [ 0.3; 1.0; 2.5; 7.0; 20.0 ];
  (* digamma(1) = -euler_gamma *)
  Alcotest.(check (float 1e-6)) "digamma(1)" (-0.5772156649) (Lda.Vem.digamma 1.0)

let test_corpus_generation () =
  let rng = Icoe_util.Rng.create 101 in
  let c = Lda.Corpus.generate ~ndocs:50 ~rng () in
  Alcotest.(check int) "doc count" 50 (Array.length c.Lda.Corpus.docs);
  Alcotest.(check int) "vocab" 240 c.Lda.Corpus.vocab;
  Alcotest.(check int) "true topics" 6 c.Lda.Corpus.k_true;
  Alcotest.(check bool) "tokens present" true (Lda.Corpus.tokens c > 1000);
  (* topics are normalized *)
  Array.iter
    (fun row ->
      Alcotest.(check (float 1e-9)) "topic row sums 1" 1.0 (Icoe_util.Stats.sum row))
    c.Lda.Corpus.topic_word

let prop_lda_estep_par_bits_exact =
  (* the pooled batch E-step must match the serial reference to the last
     bit — statistics buffer and likelihood — for random corpora, under
     whatever ICOE_DOMAINS the suite runs with *)
  QCheck.Test.make ~name:"pooled E-step bit-identical to serial" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let ndocs = 1 + Icoe_util.Rng.int rng 30 in
      let corpus = Lda.Corpus.generate ~ndocs ~rng () in
      let m =
        Lda.Vem.init ~rng ~k:corpus.Lda.Corpus.k_true
          ~vocab:corpus.Lda.Corpus.vocab ()
      in
      let elogb = Lda.Vem.elog_beta m in
      let kw = corpus.Lda.Corpus.k_true * corpus.Lda.Corpus.vocab in
      let s_par = Icoe_util.Fbuf.create kw in
      let s_seq = Icoe_util.Fbuf.create kw in
      let ll_par = Lda.Vem.e_step_docs m elogb corpus.Lda.Corpus.docs s_par in
      let ll_seq =
        Lda.Vem.e_step_docs_seq m elogb corpus.Lda.Corpus.docs s_seq
      in
      Int64.equal (Int64.bits_of_float ll_par) (Int64.bits_of_float ll_seq)
      && Array.for_all2
           (fun x y ->
             Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
           (Icoe_util.Fbuf.to_array s_par)
           (Icoe_util.Fbuf.to_array s_seq))

let test_lda_likelihood_increases () =
  let rng = Icoe_util.Rng.create 102 in
  let corpus = Lda.Corpus.generate ~ndocs:120 ~rng () in
  let cluster = mk ~nodes:4 () in
  let rdd = Sparkle.Rdd.of_array cluster corpus.Lda.Corpus.docs in
  let m = Lda.Vem.init ~rng ~k:corpus.Lda.Corpus.k_true ~vocab:corpus.Lda.Corpus.vocab () in
  let trace = Lda.Vem.train ~iters:8 m rdd in
  (* likelihood proxy improves over training *)
  Alcotest.(check bool)
    (Fmt.str "ll %f -> %f" trace.(0) trace.(7))
    true
    (trace.(7) > trace.(0));
  Alcotest.(check bool) "all finite" true (Array.for_all Float.is_finite trace)

let test_lda_recovers_topics () =
  let rng = Icoe_util.Rng.create 103 in
  let corpus = Lda.Corpus.generate ~ndocs:240 ~rng () in
  let cluster = mk ~nodes:4 () in
  let rdd = Sparkle.Rdd.of_array cluster corpus.Lda.Corpus.docs in
  let m = Lda.Vem.init ~rng ~k:corpus.Lda.Corpus.k_true ~vocab:corpus.Lda.Corpus.vocab () in
  ignore (Lda.Vem.train ~iters:15 m rdd);
  let score = Lda.Vem.recovery_score m corpus.Lda.Corpus.topic_word in
  Alcotest.(check bool) (Fmt.str "recovery %.3f > 0.8" score) true (score > 0.8)

let test_fig2_shape () =
  (* default vs optimized stack on the Wikipedia-scale LDA workload:
     optimized is > 2x faster overall and every major phase shrinks *)
  let slow = Lda.Fig2.run ~optimized:false Lda.Fig2.wikipedia in
  let fast = Lda.Fig2.run ~optimized:true Lda.Fig2.wikipedia in
  let t_slow = Sparkle.Cluster.elapsed slow in
  let t_fast = Sparkle.Cluster.elapsed fast in
  Alcotest.(check bool)
    (Fmt.str "overall %.2fx > 2x" (t_slow /. t_fast))
    true
    (t_slow /. t_fast > 2.0);
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " shrinks") true
        (Hwsim.Clock.phase fast.Sparkle.Cluster.clock phase
        < Hwsim.Clock.phase slow.Sparkle.Cluster.clock phase))
    [ "compute"; "shuffle"; "aggregate" ];
  (* shuffle dominates the default stack, as profiled in the paper *)
  Alcotest.(check bool) "shuffle dominant in default" true
    (Hwsim.Clock.phase slow.Sparkle.Cluster.clock "shuffle"
    > 0.4 *. t_slow)

let prop_reduce_by_key_totals =
  QCheck.Test.make ~name:"reduce_by_key preserves totals" ~count:30
    QCheck.(int_range 1 5000)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let n = 20 + Icoe_util.Rng.int rng 100 in
      let data = Array.init n (fun _ -> (Icoe_util.Rng.int rng 7, Icoe_util.Rng.int rng 10)) in
      let total = Array.fold_left (fun a (_, v) -> a + v) 0 data in
      let c = mk () in
      let r = Sparkle.Rdd.of_array c data in
      let red = Sparkle.Rdd.reduce_by_key ~combine:( + ) r in
      let total' =
        Array.fold_left (fun a (_, v) -> a + v) 0 (Sparkle.Rdd.collect red)
      in
      total = total')

let () =
  Alcotest.run "sparkle"
    [
      ( "rdd",
        [
          Alcotest.test_case "partitioning" `Quick test_rdd_partitioning;
          Alcotest.test_case "map+charge" `Quick test_rdd_map_and_charge;
          Alcotest.test_case "filter" `Quick test_rdd_filter;
          Alcotest.test_case "reduce_by_key" `Quick test_reduce_by_key;
          Alcotest.test_case "shuffle locality" `Quick test_shuffle_key_locality;
          QCheck_alcotest.to_alcotest prop_reduce_by_key_totals;
          Alcotest.test_case "group_by_key" `Quick test_group_by_key;
          Alcotest.test_case "join" `Quick test_join;
        ] );
      ( "cost",
        [
          Alcotest.test_case "adaptive shuffle" `Quick test_adaptive_shuffle_cheaper;
          Alcotest.test_case "tree aggregate" `Quick test_tree_aggregate_scales;
          Alcotest.test_case "tree aggregate at nodes=1" `Quick
            test_tree_aggregate_single_node;
          Alcotest.test_case "async overlap bounds" `Quick
            test_async_overlap_bounds;
          Alcotest.test_case "async serial matches blocking" `Quick
            test_async_serial_matches_blocking;
          Alcotest.test_case "jvm drag" `Quick test_jvm_gc_drag;
        ] );
      ( "databroker",
        [
          Alcotest.test_case "kv roundtrip" `Quick test_databroker_kv;
          Alcotest.test_case "beats default shuffle" `Quick test_databroker_beats_default_shuffle;
        ] );
      ( "lda",
        [
          Alcotest.test_case "digamma" `Quick test_digamma_recurrence;
          Alcotest.test_case "corpus" `Quick test_corpus_generation;
          QCheck_alcotest.to_alcotest prop_lda_estep_par_bits_exact;
          Alcotest.test_case "likelihood increases" `Slow test_lda_likelihood_increases;
          Alcotest.test_case "topic recovery" `Slow test_lda_recovers_topics;
          Alcotest.test_case "fig2 shape" `Slow test_fig2_shape;
        ] );
    ]
