(* PR 7 observability layer: Icoe_obs.Prof critical-path blame,
   Icoe_obs.Events flight recorder, the Icoe_util.Json reader, and the
   Icoe_obs.Bench_diff regression gate. *)

module Prof = Icoe_obs.Prof
module Events = Icoe_obs.Events
module Json = Icoe_util.Json
module Bench_diff = Icoe_obs.Bench_diff

let close ?(eps = 1e-9) msg a b =
  if Float.abs (a -. b) > eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  then Alcotest.failf "%s: %.17g vs %.17g" msg a b

(* --- Prof on the three production overlap models --- *)

let sw4_model () =
  Sw4.Scenario.production_step_model ~overlap:true Hwsim.Node.sierra ~nodes:256
    ~grid_points:26.0e9

let test_sw4_blame_sums_to_makespan () =
  let m = sw4_model () in
  let a = Prof.analyze ~overlap:true m.Sw4.Scenario.dag in
  close "makespan = overlapped_s" a.Prof.makespan m.Sw4.Scenario.overlapped_s;
  close "phase blame sums to makespan" (Prof.blame_total a) a.Prof.makespan;
  let stream_total =
    List.fold_left (fun acc (b : Prof.blame) -> acc +. b.Prof.seconds) 0.0
      a.Prof.stream_blame
  in
  close "stream blame sums to makespan" stream_total a.Prof.makespan

let test_sw4_blames_stencil_not_halo () =
  (* the paper's narrative: once overlap is on, interior stencil compute
     (not the halo exchange) dominates the step *)
  let m = sw4_model () in
  let a = Prof.analyze ~overlap:true m.Sw4.Scenario.dag in
  (match a.Prof.phase_blame with
  | top :: _ -> Alcotest.(check string) "top blame phase" "interior" top.Prof.key
  | [] -> Alcotest.fail "no blame rows");
  (* the halo is entirely hidden: zeroing it cannot shrink the makespan *)
  let halo =
    List.find (fun (s : Prof.sensitivity) -> s.Prof.s_key = "halo")
      a.Prof.phase_sensitivity
  in
  Alcotest.(check bool) "halo fully hidden" true (halo.Prof.shrink_s = 0.0)

let test_all_models_blame_invariant () =
  let dags =
    [
      ("sw4", (sw4_model ()).Sw4.Scenario.dag);
      ( "ddcmd-4gpu",
        (Ddcmd.Perf.ddcmd_step_model ~overlap:true Ddcmd.Perf.Four_gpu)
          .Ddcmd.Perf.dag );
      ( "kavg",
        (Dlearn.Distributed.kavg_round_model ~overlap:true ~learners:8 ~k:8
           ~batch:16 [| 12; 16; 4 |])
          .Dlearn.Distributed.dag );
    ]
  in
  List.iter
    (fun (id, dag) ->
      let a = Prof.analyze ~overlap:true dag in
      close (id ^ ": blame sums to makespan") (Prof.blame_total a) a.Prof.makespan;
      (* the critical path telescopes: its durations sum to the makespan *)
      let path_sum =
        List.fold_left (fun acc i -> acc +. dag.(i).Prof.dur) 0.0 a.Prof.critical
      in
      close (id ^ ": path telescopes") path_sum a.Prof.makespan;
      (* every critical item has zero slack *)
      List.iter
        (fun i ->
          if a.Prof.slack.(i) <> 0.0 then
            Alcotest.failf "%s: critical item %d has slack %.17g" id i
              a.Prof.slack.(i))
        a.Prof.critical)
    dags

let test_sched_profile_agrees () =
  let sched = Hwsim.Sched.create ~overlap:true () in
  let a = Hwsim.Sched.work sched ~stream:"s1" ~phase:"a" 2.0 in
  let _b = Hwsim.Sched.work sched ~stream:"s2" ~deps:[ a ] ~phase:"b" 3.0 in
  let _c = Hwsim.Sched.work sched ~stream:"s1" ~phase:"c" 1.0 in
  let makespan = Hwsim.Sched.run sched in
  let p = Hwsim.Sched.profile sched in
  close "profile makespan = Sched.run" p.Prof.makespan makespan;
  close "serial sum" p.Prof.serial_s (Hwsim.Sched.serial_sum sched)

(* --- qcheck: random DAGs --- *)

let gen_items =
  QCheck.Gen.(
    let* n = int_range 1 24 in
    let* durs = array_size (return n) (map (fun k -> float_of_int k /. 16.0) (int_range 0 64)) in
    let* streams = array_size (return n) (int_range 0 2) in
    let* phases = array_size (return n) (int_range 0 3) in
    let* dep_flags =
      array_size (return n) (pair (int_range 0 23) bool)
    in
    return
      (Array.init n (fun i ->
           let deps =
             if i > 0 && snd dep_flags.(i) then [ fst dep_flags.(i) mod i ]
             else []
           in
           {
             Prof.idx = i;
             stream = Printf.sprintf "s%d" streams.(i);
             phase = Printf.sprintf "p%d" phases.(i);
             device = "dev";
             dur = durs.(i);
             deps;
           })))

let arb_items = QCheck.make ~print:(fun items ->
    String.concat ";"
      (Array.to_list
         (Array.map
            (fun (it : Prof.item) ->
              Printf.sprintf "%d:%s/%s/%.3f[%s]" it.Prof.idx it.Prof.stream
                it.Prof.phase it.Prof.dur
                (String.concat "," (List.map string_of_int it.Prof.deps)))
            items)))
    gen_items

let prop_blame_sums_to_makespan =
  QCheck.Test.make ~name:"per-phase blame sums to makespan" ~count:300 arb_items
    (fun items ->
      let a = Prof.analyze ~overlap:true items in
      Float.abs (Prof.blame_total a -. a.Prof.makespan)
      <= 1e-9 *. Float.max 1.0 a.Prof.makespan)

let prop_off_path_zeroing_is_noop =
  QCheck.Test.make
    ~name:"zeroing an off-critical-path item never changes the makespan"
    ~count:300 arb_items (fun items ->
      let a = Prof.analyze ~overlap:true items in
      let ok = ref true in
      Array.iteri
        (fun i _ ->
          if a.Prof.slack.(i) > 0.0 then begin
            let shrink =
              Prof.what_if_zero a items (fun it -> it.Prof.idx = i)
            in
            (* bit-exact: the makespan is a max over path sums that do
               not involve the zeroed item *)
            if shrink <> 0.0 then ok := false
          end)
        items;
      !ok)

let prop_serial_blame_is_charge_breakdown =
  QCheck.Test.make
    ~name:"overlap off: blame = serial charge breakdown, bit-identically"
    ~count:300 arb_items (fun items ->
      let a = Prof.analyze ~overlap:false items in
      (* accumulate exactly as serialized charging would: one +. per item
         in enqueue order, grouped by phase *)
      let tbl = Hashtbl.create 8 in
      Array.iter
        (fun (it : Prof.item) ->
          let prev = Option.value (Hashtbl.find_opt tbl it.Prof.phase) ~default:0.0 in
          Hashtbl.replace tbl it.Prof.phase (prev +. it.Prof.dur))
        items;
      List.for_all
        (fun (b : Prof.blame) -> Hashtbl.find tbl b.Prof.key = b.Prof.seconds)
        a.Prof.phase_blame
      && List.length a.Prof.critical = Array.length items
      && Array.for_all (fun s -> s = 0.0) a.Prof.slack)

let prop_makespan_le_serial =
  QCheck.Test.make ~name:"makespan <= serial sum; critical nonempty" ~count:300
    arb_items (fun items ->
      let a = Prof.analyze ~overlap:true items in
      a.Prof.makespan <= a.Prof.serial_s +. 1e-12
      && (a.Prof.makespan <= 0.0 || a.Prof.critical <> []))

(* --- Events --- *)

let test_events_jsonl_schema () =
  let get = Events.memory () in
  Events.reset_seq ();
  Events.emit ~t_s:1.5 ~kind:"span" ~source:"hwsim/trace"
    [ ("phase", Events.S "interior"); ("dur_s", Events.F 0.25) ];
  Events.emit ~kind:"metric" ~source:"harness/sw4"
    [ ("name", Events.S "x"); ("value", Events.I 3); ("up", Events.B true) ];
  Events.close ();
  match get () with
  | [ l1; l2 ] ->
      let j1 = Json.parse_exn l1 and j2 = Json.parse_exn l2 in
      Alcotest.(check (option string)) "kind" (Some "span") (Json.string_member "kind" j1);
      Alcotest.(check (option string)) "source" (Some "hwsim/trace")
        (Json.string_member "source" j1);
      (match (Json.float_member "seq" j1, Json.float_member "seq" j2) with
      | Some s1, Some s2 ->
          Alcotest.(check bool) "seq increases" true (s2 = s1 +. 1.0)
      | _ -> Alcotest.fail "missing seq");
      close "t_s" (Option.get (Json.float_member "t_s" j1)) 1.5;
      close "field" (Option.get (Json.float_member "dur_s" j1)) 0.25;
      Alcotest.(check (option bool)) "bool field" (Some true)
        (Json.member "up" j2 |> Option.map (fun v -> Json.to_bool v = Some true))
  | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines)

let test_events_escape_and_nonfinite () =
  let get = Events.memory () in
  Events.reset_seq ();
  Events.emit ~kind:"span" ~source:"s"
    [ ("name", Events.S "a\"b\\c\nd\x01e"); ("bad", Events.F Float.nan) ];
  Events.close ();
  match get () with
  | [ line ] ->
      let j = Json.parse_exn line in
      Alcotest.(check (option string)) "escaped string round-trips"
        (Some "a\"b\\c\nd\x01e") (Json.string_member "name" j);
      Alcotest.(check bool) "non-finite float is null" true
        (Json.member "bad" j = Some Json.Null)
  | lines -> Alcotest.failf "expected 1 line, got %d" (List.length lines)

let test_events_disabled_noop () =
  Events.close ();
  (* no sink (ICOE_EVENTS unset in tests): emit must be a no-op *)
  Events.emit ~kind:"span" ~source:"s" [ ("k", Events.I 1) ];
  Alcotest.(check bool) "disabled" false (Events.enabled ())

let test_trace_emits_span_events () =
  let get = Events.memory () in
  Events.reset_seq ();
  let clock = Hwsim.Clock.create () in
  let tr = Hwsim.Trace.create clock in
  Hwsim.Trace.charge tr ~device:"gpu" ~phase:"compute" 0.5;
  Hwsim.Trace.charge tr ~phase:"idle" 0.25;
  Events.close ();
  let lines = get () in
  Alcotest.(check int) "one event per charge" 2 (List.length lines);
  let j = Json.parse_exn (List.hd lines) in
  Alcotest.(check (option string)) "phase" (Some "compute")
    (Json.string_member "phase" j);
  Alcotest.(check (option string)) "device" (Some "gpu")
    (Json.string_member "device" j);
  close "dur" (Option.get (Json.float_member "dur_s" j)) 0.5

let test_cluster_lifecycle_events () =
  let get = Events.memory () in
  Events.reset_seq ();
  let classes =
    [|
      {
        Icoe_svc.Workload.name = "k";
        sizes = [| 1 |];
        service = (fun ~nodes:_ -> 10.0);
      };
    |]
  in
  let jobs =
    [
      { Icoe_svc.Workload.id = 0; arrival = 1.0; klass = 0; nodes = 1 };
      { Icoe_svc.Workload.id = 1; arrival = 2.0; klass = 0; nodes = 1 };
    ]
  in
  let m = Icoe_svc.Cluster.simulate ~nodes:2 ~classes Icoe_svc.Cluster.Fcfs jobs in
  Events.close ();
  Alcotest.(check int) "completed" 2 m.Icoe_svc.Cluster.completed;
  let lines = List.map Json.parse_exn (get ()) in
  let count k ev =
    List.length
      (List.filter
         (fun j ->
           Json.string_member "kind" j = Some k
           && (ev = None || Json.string_member "ev" j = ev))
         lines)
  in
  Alcotest.(check int) "submits" 2 (count "job" (Some "submit"));
  Alcotest.(check int) "dispatches" 2 (count "job" (Some "dispatch"));
  Alcotest.(check int) "finishes" 2 (count "job" (Some "finish"));
  Alcotest.(check bool) "queue samples" true (count "queue" None > 0);
  (* lifecycle bookkeeping also lands in the metrics record *)
  Alcotest.(check int) "log" 2 (List.length m.Icoe_svc.Cluster.log);
  List.iter
    (fun (r : Icoe_svc.Cluster.job_record) ->
      Alcotest.(check int) "placement width" r.Icoe_svc.Cluster.job.Icoe_svc.Workload.nodes
        (List.length r.Icoe_svc.Cluster.placed))
    m.Icoe_svc.Cluster.log

let test_occupancy_chrome_valid () =
  let classes =
    [|
      {
        Icoe_svc.Workload.name = "k";
        sizes = [| 2 |];
        service = (fun ~nodes:_ -> 5.0);
      };
    |]
  in
  let jobs =
    [
      { Icoe_svc.Workload.id = 0; arrival = 0.0; klass = 0; nodes = 2 };
      { Icoe_svc.Workload.id = 1; arrival = 0.5; klass = 0; nodes = 2 };
    ]
  in
  let m = Icoe_svc.Cluster.simulate ~nodes:2 ~classes Icoe_svc.Cluster.Fcfs jobs in
  let doc = Json.parse_exn (Icoe_svc.Cluster.occupancy_chrome_json m) in
  let events = Option.get (Json.list_member "traceEvents" doc) in
  let spans =
    List.filter (fun e -> Json.string_member "ph" e = Some "X") events
  in
  (* 2 jobs x 2 nodes each *)
  Alcotest.(check int) "job spans" 4 (List.length spans);
  Alcotest.(check bool) "counter tracks" true
    (List.exists (fun e -> Json.string_member "ph" e = Some "C") events)

(* --- Json reader --- *)

let test_json_parse_roundtrip () =
  let j =
    Json.parse_exn
      {|{"a": [1, 2.5, -3e2], "s": "xA\n", "t": true, "n": null, "o": {"k": "v"}}|}
  in
  Alcotest.(check (option (float 0.0))) "num" (Some 2.5)
    (Option.bind (Json.list_member "a" j) (fun l -> Json.to_float (List.nth l 1)));
  Alcotest.(check (option string)) "escapes" (Some "xA\n") (Json.string_member "s" j);
  Alcotest.(check bool) "null" true (Json.member "n" j = Some Json.Null);
  Alcotest.(check (option string)) "nested" (Some "v")
    (Option.bind (Json.member "o" j) (Json.string_member "k"))

let test_json_surrogate_pair () =
  (* U+1F600 as an escaped surrogate pair must decode to 4-byte UTF-8 *)
  match Json.parse_exn {|"\ud83d\ude00"|} with
  | Json.Str s -> Alcotest.(check string) "emoji utf8" "\xF0\x9F\x98\x80" s
  | _ -> Alcotest.fail "expected string"

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad "tru";
  bad "1 2";
  bad {|"unterminated|};
  bad {|{"a" 1}|}

(* --- Bench_diff --- *)

let bench_doc ?(sim = 1.0) ?(wall = 100.0) ?(jobs_per_s = 2.0) () =
  Json.parse_exn
    (Printf.sprintf
       {|{"harnesses": [{"id": "h", "wall_ns": %.17g, "simulated_s": %.17g}],
          "kernels": [{"name": "k", "ns_per_run": 50.0}, {"name": "skipped", "ns_per_run": null}],
          "service": [{"policy": "FCFS", "jobs_per_s": %.17g, "wait_p99_s": 10.0}]}|}
       wall sim jobs_per_s)

let test_diff_identical_ok () =
  let d = bench_doc () in
  let r = Bench_diff.diff ~base:d ~cur:d () in
  Alcotest.(check int) "no regressions" 0 r.Bench_diff.regressions;
  Alcotest.(check int) "no warnings" 0 r.Bench_diff.warnings;
  Alcotest.(check int) "exit code" 0 (Bench_diff.exit_code r)

let test_diff_sim_inflation_regresses () =
  let r =
    Bench_diff.diff ~base:(bench_doc ()) ~cur:(bench_doc ~sim:1.10 ()) ()
  in
  Alcotest.(check int) "one regression" 1 r.Bench_diff.regressions;
  Alcotest.(check int) "exit code" 3 (Bench_diff.exit_code r)

let test_diff_wall_warns_only () =
  let r =
    Bench_diff.diff ~base:(bench_doc ()) ~cur:(bench_doc ~wall:200.0 ()) ()
  in
  Alcotest.(check int) "no regression" 0 r.Bench_diff.regressions;
  Alcotest.(check int) "one warning" 1 r.Bench_diff.warnings;
  let r' =
    Bench_diff.diff ~fail_wall:true ~base:(bench_doc ())
      ~cur:(bench_doc ~wall:200.0 ()) ()
  in
  Alcotest.(check int) "fail-wall promotes" 1 r'.Bench_diff.regressions

let test_diff_throughput_drop_regresses () =
  (* jobs_per_s is higher-is-better: a drop is the regression *)
  let r =
    Bench_diff.diff ~base:(bench_doc ()) ~cur:(bench_doc ~jobs_per_s:1.0 ()) ()
  in
  Alcotest.(check int) "drop regresses" 1 r.Bench_diff.regressions;
  let r' =
    Bench_diff.diff ~base:(bench_doc ()) ~cur:(bench_doc ~jobs_per_s:3.0 ()) ()
  in
  Alcotest.(check int) "rise does not" 0 r'.Bench_diff.regressions

let test_diff_missing_sections_never_fail () =
  let small = Json.parse_exn {|{"harnesses": [{"id": "h", "simulated_s": 1.0}]}|} in
  let r = Bench_diff.diff ~base:small ~cur:(bench_doc ()) () in
  Alcotest.(check int) "added rows don't fail" 0 r.Bench_diff.regressions;
  let r' = Bench_diff.diff ~base:(bench_doc ()) ~cur:small () in
  Alcotest.(check int) "removed rows don't fail" 0 r'.Bench_diff.regressions

let test_diff_small_drift_within_threshold () =
  let r =
    Bench_diff.diff ~base:(bench_doc ()) ~cur:(bench_doc ~sim:1.04 ()) ()
  in
  Alcotest.(check int) "4% < 5% threshold" 0 r.Bench_diff.regressions;
  let r' =
    Bench_diff.diff ~sim_threshold:0.01 ~base:(bench_doc ())
      ~cur:(bench_doc ~sim:1.04 ()) ()
  in
  Alcotest.(check int) "tighter threshold catches" 1 r'.Bench_diff.regressions

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "prof"
    [
      ( "blame",
        [
          Alcotest.test_case "sw4 sums to makespan" `Quick
            test_sw4_blame_sums_to_makespan;
          Alcotest.test_case "sw4 blames stencil not halo" `Quick
            test_sw4_blames_stencil_not_halo;
          Alcotest.test_case "all models invariant" `Quick
            test_all_models_blame_invariant;
          Alcotest.test_case "Sched.profile agrees" `Quick
            test_sched_profile_agrees;
        ] );
      ( "blame-qcheck",
        qsuite
          [
            prop_blame_sums_to_makespan;
            prop_off_path_zeroing_is_noop;
            prop_serial_blame_is_charge_breakdown;
            prop_makespan_le_serial;
          ] );
      ( "events",
        [
          Alcotest.test_case "jsonl schema" `Quick test_events_jsonl_schema;
          Alcotest.test_case "escape + nonfinite" `Quick
            test_events_escape_and_nonfinite;
          Alcotest.test_case "disabled noop" `Quick test_events_disabled_noop;
          Alcotest.test_case "trace spans" `Quick test_trace_emits_span_events;
          Alcotest.test_case "cluster lifecycle" `Quick
            test_cluster_lifecycle_events;
          Alcotest.test_case "occupancy chrome" `Quick
            test_occupancy_chrome_valid;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "surrogate pair" `Quick test_json_surrogate_pair;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical ok" `Quick test_diff_identical_ok;
          Alcotest.test_case "sim inflation regresses" `Quick
            test_diff_sim_inflation_regresses;
          Alcotest.test_case "wall warns only" `Quick test_diff_wall_warns_only;
          Alcotest.test_case "throughput drop regresses" `Quick
            test_diff_throughput_drop_regresses;
          Alcotest.test_case "missing sections never fail" `Quick
            test_diff_missing_sections_never_fail;
          Alcotest.test_case "threshold" `Quick
            test_diff_small_drift_within_threshold;
        ] );
    ]
