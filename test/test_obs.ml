(* Tests for the Icoe_obs.Metrics registry: counter/gauge/histogram
   semantics, label ordering, snapshot determinism, exposition formats,
   and the exception-safety of the scoped timer. All tests use private
   registries so they neither see nor disturb the engines' default one. *)

module M = Icoe_obs.Metrics

let check_float = Alcotest.(check (float 1e-12))

(* --- counters --- *)

let test_counter_semantics () =
  let r = M.create () in
  let c = M.counter ~registry:r "requests_total" in
  check_float "starts at zero" 0.0 (M.counter_value c);
  M.inc c;
  M.inc c;
  M.inc ~by:2.5 c;
  check_float "accumulates" 4.5 (M.counter_value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.inc: negative increment") (fun () ->
      M.inc ~by:(-1.0) c);
  (* get-or-create returns the same underlying cell *)
  let c' = M.counter ~registry:r "requests_total" in
  M.inc c';
  check_float "same handle" 5.5 (M.counter_value c)

let test_type_clash_rejected () =
  let r = M.create () in
  ignore (M.counter ~registry:r "x_total");
  Alcotest.(check bool) "gauge over counter raises" true
    (match M.gauge ~registry:r "x_total" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- gauges --- *)

let test_gauge_semantics () =
  let r = M.create () in
  let g = M.gauge ~registry:r "residual" in
  M.set g 0.25;
  check_float "set" 0.25 (M.gauge_value g);
  M.set g (-3.0);
  check_float "goes down" (-3.0) (M.gauge_value g);
  Alcotest.(check (option (float 1e-12))) "value by name" (Some (-3.0))
    (M.value ~registry:r "residual")

(* --- histograms --- *)

let test_histogram_semantics () =
  let r = M.create () in
  let h = M.histogram ~registry:r "latency" in
  for i = 1 to 100 do
    M.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (M.histogram_count h);
  check_float "sum" 5050.0 (M.histogram_sum h);
  (* percentiles over the retained window (linear interpolation) *)
  check_float "p50" 50.5 (M.quantile h 0.5);
  check_float "p0" 1.0 (M.quantile h 0.0);
  check_float "p100" 100.0 (M.quantile h 1.0)

let test_histogram_window_bounded () =
  let r = M.create () in
  let h = M.histogram ~registry:r "w" in
  (* overflow the ring: only the most recent window_capacity observations
     feed the quantiles, but count/sum see everything *)
  let n = M.window_capacity + 500 in
  for i = 1 to n do
    M.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count sees all" n (M.histogram_count h);
  Alcotest.(check bool) "quantile window dropped the oldest" true
    (M.quantile h 0.0 >= 500.0)

(* --- labels --- *)

let test_label_order_irrelevant () =
  let r = M.create () in
  let a = M.counter ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "fam" in
  let b = M.counter ~registry:r ~labels:[ ("a", "1"); ("b", "2") ] "fam" in
  M.inc a;
  M.inc b;
  check_float "one family member" 2.0 (M.counter_value a);
  match M.snapshot ~registry:r () with
  | [ s ] ->
      Alcotest.(check (list (pair string string)))
        "labels sorted by key"
        [ ("a", "1"); ("b", "2") ]
        s.M.labels
  | l -> Alcotest.failf "expected one sample, got %d" (List.length l)

let test_family_snapshot_order () =
  (* regression for the typed label comparator in the snapshot sort: a
     family's members come back in lexicographic (key, value) order,
     with a member whose label list is a strict prefix sorting first *)
  let r = M.create () in
  List.iter
    (fun labels -> M.set (M.gauge ~registry:r ~labels "fam") 1.0)
    [
      [ ("host", "b") ];
      [ ("host", "a"); ("rank", "x") ];
      [ ("host", "a") ];
    ];
  Alcotest.(check (list (list (pair string string))))
    "members sorted by labels"
    [
      [ ("host", "a") ];
      [ ("host", "a"); ("rank", "x") ];
      [ ("host", "b") ];
    ]
    (List.map (fun s -> s.M.labels) (M.snapshot ~registry:r ()))

(* --- enable/disable --- *)

let test_disabled_registry_is_noop () =
  let r = M.create () in
  let c = M.counter ~registry:r "c" in
  let h = M.histogram ~registry:r "h" in
  M.set_enabled ~registry:r false;
  Alcotest.(check bool) "reports disabled" false (M.is_enabled ~registry:r ());
  M.inc c;
  M.observe h 1.0;
  let v = M.time ~registry:r "t" (fun () -> 42) in
  Alcotest.(check int) "time still runs f" 42 v;
  check_float "counter frozen" 0.0 (M.counter_value c);
  Alcotest.(check int) "histogram frozen" 0 (M.histogram_count h);
  M.set_enabled ~registry:r true;
  M.inc c;
  check_float "re-enabled" 1.0 (M.counter_value c)

(* --- snapshot determinism --- *)

(* The same final state must snapshot identically no matter the order in
   which metrics were registered or updated; values come from a fixed
   Rng seed, and the observation sequence is replayed in two different
   interleavings. *)
let test_snapshot_deterministic () =
  let build order =
    let rng = Icoe_util.Rng.create 77 in
    let vals = Array.init 40 (fun _ -> Icoe_util.Rng.uniform rng 0.0 10.0) in
    let r = M.create () in
    let register () =
      ( M.counter ~registry:r ~labels:[ ("k", "a") ] "n_total",
        M.gauge ~registry:r "level",
        M.histogram ~registry:r "dist" )
    in
    let c, g, h =
      match order with
      | `Forward -> register ()
      | `Reversed ->
          let h = M.histogram ~registry:r "dist" in
          let g = M.gauge ~registry:r "level" in
          let c = M.counter ~registry:r ~labels:[ ("k", "a") ] "n_total" in
          (c, g, h)
    in
    Array.iter
      (fun v ->
        M.inc ~by:v c;
        M.set g v;
        M.observe h v)
      vals;
    (M.snapshot ~registry:r (), M.to_prometheus ~registry:r (),
     M.to_json ~registry:r ())
  in
  let s1, p1, j1 = build `Forward in
  let s2, p2, j2 = build `Reversed in
  Alcotest.(check bool) "snapshots equal" true (s1 = s2);
  Alcotest.(check string) "prometheus equal" p1 p2;
  Alcotest.(check string) "json equal" j1 j2

let test_reset () =
  let r = M.create () in
  let c = M.counter ~registry:r "c" in
  let h = M.histogram ~registry:r "h" in
  M.inc ~by:7.0 c;
  M.observe h 3.0;
  M.reset ~registry:r ();
  check_float "counter zeroed" 0.0 (M.counter_value c);
  Alcotest.(check int) "histogram emptied" 0 (M.histogram_count h);
  M.inc c;
  check_float "handle survives reset" 1.0 (M.counter_value c)

(* --- exposition --- *)

let contains ~needle hay = Astring.String.is_infix ~affix:needle hay

let test_prometheus_format () =
  let r = M.create () in
  let c =
    M.counter ~registry:r ~help:"how many" ~labels:[ ("m", "cg") ] "it_total"
  in
  M.inc ~by:3.0 c;
  let h = M.histogram ~registry:r "lat" in
  M.observe h 0.5;
  M.observe h 2.0;
  let text = M.to_prometheus ~registry:r () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle text))
    [
      "# HELP it_total how many";
      "# TYPE it_total counter";
      {|it_total{m="cg"} 3|};
      "# TYPE lat histogram";
      {|lat_bucket{le="+Inf"} 2|};
      "lat_count 2";
      "lat_sum 2.5";
    ]

(* Minimal JSON well-formedness scanner: strings with escapes, balanced
   {} / [] outside strings. Enough to catch broken quoting/structure
   without a JSON dependency (CI additionally runs jq over the real
   artifacts). *)
let json_well_formed s =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun ch ->
      if !in_str then
        if !esc then esc := false
        else if ch = '\\' then esc := true
        else if ch = '"' then in_str := false
        else ()
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let test_json_roundtrip () =
  let r = M.create () in
  let c = M.counter ~registry:r ~labels:[ ("q", {|a"b|}) ] "c_total" in
  M.inc ~by:1.0e-17 c;
  let g = M.gauge ~registry:r "g" in
  M.set g (-0.125);
  let h = M.histogram ~registry:r "h" in
  M.observe h 4.0;
  let j = M.to_json ~registry:r () in
  Alcotest.(check bool) "well-formed" true (json_well_formed j);
  Alcotest.(check bool) "escapes label quote" true
    (contains ~needle:{|a\"b|} j);
  (* %.17g float round-trip: the exact counter value must be recoverable *)
  Alcotest.(check bool) "float round-trips" true
    (contains ~needle:(Fmt.str "%.17g" 1.0e-17) j);
  check_float "reread" 1.0e-17
    (float_of_string (Fmt.str "%.17g" (M.counter_value c)))

(* --- scoped timer --- *)

exception Boom

let test_time_exception_safety () =
  let r = M.create () in
  (* deterministic clock: each reading advances 0.25 s *)
  let now = ref 0.0 in
  M.set_clock (fun () ->
      let t = !now in
      now := t +. 0.25;
      t);
  let raised =
    match
      M.time ~registry:r "work_seconds" (fun () -> raise Boom)
    with
    | () -> false
    | exception Boom -> true
  in
  M.set_clock Unix.gettimeofday;
  Alcotest.(check bool) "exception re-raised" true raised;
  let h = M.histogram ~registry:r "work_seconds" in
  Alcotest.(check int) "duration recorded despite raise" 1
    (M.histogram_count h);
  check_float "clock delta" 0.25 (M.histogram_sum h)

let test_time_records_duration () =
  let r = M.create () in
  let now = ref 100.0 in
  M.set_clock (fun () ->
      let t = !now in
      now := t +. 1.5;
      t);
  let v = M.time ~registry:r "ok_seconds" (fun () -> "done") in
  M.set_clock Unix.gettimeofday;
  Alcotest.(check string) "returns f's value" "done" v;
  let h = M.histogram ~registry:r "ok_seconds" in
  check_float "observed delta" 1.5 (M.histogram_sum h)

(* --- bucket boundaries --- *)

let test_bucket_boundaries () =
  (* exact power-of-two boundaries land in the bucket they bound:
     bucket k > 0 covers (lo * 2^(k-1), lo * 2^k], upper-inclusive *)
  for k = 1 to M.n_buckets - 1 do
    let upper = M.bucket_lo *. Float.pow 2.0 (float_of_int k) in
    Alcotest.(check int)
      (Fmt.str "boundary 2^%d lands in its own bucket" k)
      k (M.bucket_index upper);
    Alcotest.(check int)
      (Fmt.str "just above 2^%d spills to the next" k)
      (k + 1)
      (M.bucket_index (Float.succ upper))
  done;
  Alcotest.(check int) "at bucket_lo" 0 (M.bucket_index M.bucket_lo);
  Alcotest.(check int) "below bucket_lo" 0 (M.bucket_index (M.bucket_lo /. 4.0));
  Alcotest.(check int) "zero" 0 (M.bucket_index 0.0);
  Alcotest.(check int) "huge overflows" M.n_buckets (M.bucket_index 1e40)

let test_bucket_index_matches_upper () =
  (* the index function and the bound function agree: every observation
     is <= its bucket's upper bound and > the previous bucket's *)
  let vals = [ 2.3e-12; 1e-9; 0.000244140625; 0.5; 1.0; 3.14; 1e6 ] in
  List.iter
    (fun v ->
      let k = M.bucket_index v in
      Alcotest.(check bool) (Fmt.str "%g <= upper(%d)" v k) true
        (v <= M.bucket_upper k);
      if k > 0 then
        Alcotest.(check bool) (Fmt.str "%g > upper(%d)" v (k - 1)) true
          (v > M.bucket_upper (k - 1)))
    vals

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "semantics" `Quick test_counter_semantics;
          Alcotest.test_case "type clash" `Quick test_type_clash_rejected;
        ] );
      ("gauge", [ Alcotest.test_case "semantics" `Quick test_gauge_semantics ]);
      ( "histogram",
        [
          Alcotest.test_case "semantics" `Quick test_histogram_semantics;
          Alcotest.test_case "window bounded" `Quick
            test_histogram_window_bounded;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "bucket index vs upper" `Quick
            test_bucket_index_matches_upper;
        ] );
      ( "labels",
        [
          Alcotest.test_case "order irrelevant" `Quick test_label_order_irrelevant;
          Alcotest.test_case "family snapshot order" `Quick
            test_family_snapshot_order;
        ] );
      ( "registry",
        [
          Alcotest.test_case "disable" `Quick test_disabled_registry_is_noop;
          Alcotest.test_case "snapshot deterministic" `Quick
            test_snapshot_deterministic;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus" `Quick test_prometheus_format;
          Alcotest.test_case "json" `Quick test_json_roundtrip;
        ] );
      ( "timer",
        [
          Alcotest.test_case "exception safety" `Quick
            test_time_exception_safety;
          Alcotest.test_case "duration" `Quick test_time_records_duration;
        ] );
    ]
