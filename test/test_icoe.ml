(* Tests for the aggregation layer: the activity registry and the
   experiment harness registry behind the bench executable. *)

let test_registry_complete () =
  (* nine completed activities, as in Table 1 *)
  Alcotest.(check int) "nine activities" 9 (List.length Icoe.Registry.activities);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (a.Icoe.Registry.name ^ " has modules")
        true
        (a.Icoe.Registry.modules <> []))
    Icoe.Registry.activities;
  let rendered = Icoe_util.Table.render (Icoe.Registry.table1 ()) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Astring.String.is_infix ~affix:name rendered))
    [ "Cardioid"; "Cretin"; "ParaDyn"; "Seismic (SW4)" ]

let test_experiment_ids_unique () =
  let ids = Icoe.Harness_registry.ids () in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "all tables and figures covered" true
    (List.for_all (fun id -> List.mem id ids)
       [ "fig2"; "table2"; "table3"; "fig3"; "fig6"; "fig8"; "table4";
         "table5"; "fig9" ])

let test_find () =
  Alcotest.(check bool) "finds fig8" true
    (Option.is_some (Icoe.Harness_registry.find "fig8"));
  Alcotest.(check bool) "rejects nonsense" true
    (Option.is_none (Icoe.Harness_registry.find "nope"))

let test_tags () =
  (* every harness carries a kind tag and an activity tag *)
  List.iter
    (fun (h : Icoe.Harness.t) ->
      Alcotest.(check bool)
        (h.id ^ " has a kind tag")
        true
        (List.exists (fun t -> List.mem t h.tags) [ "figure"; "table"; "study" ]);
      Alcotest.(check bool)
        (h.id ^ " has an activity tag")
        true
        (List.exists
           (fun t -> Astring.String.is_prefix ~affix:"activity:" t)
           h.tags))
    Icoe.Harness_registry.all;
  (* the traced set is exactly the span-instrumented harnesses *)
  Alcotest.(check (list string)) "traced set"
    [ "fig2"; "table2"; "fig8"; "table4"; "resilience" ]
    (List.map (fun (h : Icoe.Harness.t) -> h.id) (Icoe.Harness_registry.traced ()))

let test_fast_harnesses_produce_output () =
  (* the cheap harnesses run in milliseconds; check they render *)
  List.iter
    (fun id ->
      match Icoe.Harness_registry.find id with
      | None -> Alcotest.fail ("missing " ^ id)
      | Some h ->
          let o = h.Icoe.Harness.run () in
          Alcotest.(check bool) (id ^ " nonempty") true
            (String.length o.Icoe.Harness.report > 100))
    [ "table1"; "fig3"; "fig6"; "gpudirect"; "table5" ]

let test_traced_harness_outcome () =
  (* a traced harness returns its spans in the outcome, scoped to the
     run (nothing leaks into a following untraced run) *)
  match Icoe.Harness_registry.find "table2" with
  | None -> Alcotest.fail "missing table2"
  | Some h ->
      let o = h.Icoe.Harness.run () in
      Alcotest.(check bool) "table2 recorded a trace" true
        (o.Icoe.Harness.traces <> []);
      Alcotest.(check bool) "simulated seconds > 0" true
        (Icoe.Harness.simulated_seconds o > 0.0);
      let untraced =
        match Icoe.Harness_registry.find "gpudirect" with
        | Some h -> h.Icoe.Harness.run ()
        | None -> Alcotest.fail "missing gpudirect"
      in
      Alcotest.(check int) "untraced harness has no spans" 0
        (List.length untraced.Icoe.Harness.traces)

let test_outcome_metrics_delta () =
  (* the outcome's metrics are a delta: running an engine-backed harness
     surfaces only what that run added *)
  match Icoe.Harness_registry.find "md" with
  | None -> Alcotest.fail "missing md"
  | Some h ->
      let o = h.Icoe.Harness.run () in
      if Icoe_obs.Metrics.is_enabled () then
        Alcotest.(check bool) "md run produced metric deltas" true
          (o.Icoe.Harness.metrics <> [])

let test_tuner_rows () =
  (* the "tuner" bench block: one exhaustive tuning per machine x kernel,
     with the structural never-worse guarantee holding on every cell *)
  let rows = Icoe.Harness_tune.bench_rows () in
  Alcotest.(check int) "3 machines x 3 kernels" 9 (List.length rows);
  List.iter
    (fun (r : Icoe.Harness_tune.row) ->
      let who = r.machine ^ "/" ^ r.kernel in
      Alcotest.(check bool) (who ^ ": tuned <= default") true
        (r.tuned_s <= r.default_s && r.tuned_s > 0.0);
      Alcotest.(check bool) (who ^ ": split in [0,1]") true
        (r.split >= 0.0 && r.split <= 1.0);
      Alcotest.(check bool) (who ^ ": speedup >= 1") true (r.speedup >= 1.0);
      Alcotest.(check string) (who ^ ": exhaustive mode") "exhaustive" r.mode)
    rows;
  (* at least one cell genuinely improves on the paper placement *)
  Alcotest.(check bool) "tuning finds a real win somewhere" true
    (List.exists
       (fun (r : Icoe.Harness_tune.row) -> r.tuned_s < r.default_s)
       rows);
  Alcotest.(check bool) "tune harness registered" true
    (Option.is_some (Icoe.Harness_registry.find "tune"))

let test_run_all_mentions_every_result () =
  let out = Icoe.Harness_registry.run_all () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in report") true
        (Astring.String.is_infix ~affix:needle out))
    [ "Fig 2"; "Table 2"; "Table 3"; "Fig 3"; "Fig 6"; "Fig 8"; "Table 4";
      "Table 5"; "Fig 9"; "Cretin"; "GROMACS"; "SW4"; "KAVG"; "GPUDirect" ]

let () =
  Alcotest.run "icoe"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "ids unique" `Quick test_experiment_ids_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "tags" `Quick test_tags;
          Alcotest.test_case "fast harnesses" `Quick test_fast_harnesses_produce_output;
          Alcotest.test_case "traced outcome" `Quick test_traced_harness_outcome;
          Alcotest.test_case "metrics delta" `Quick test_outcome_metrics_delta;
          Alcotest.test_case "tuner rows" `Quick test_tuner_rows;
          Alcotest.test_case "run all" `Slow test_run_all_mentions_every_result;
        ] );
    ]
