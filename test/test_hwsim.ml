(* Tests for the hardware model: roofline pricing, links, clocks, nodes. *)

open Hwsim

let check_float = Alcotest.(check (float 1e-12))

let test_roofline_bandwidth_bound () =
  (* stream-like kernel: 1 flop per 24 bytes => bandwidth bound everywhere *)
  let k = Kernel.make ~name:"stream" ~flops:1e9 ~bytes:24e9 () in
  Alcotest.(check bool) "bw bound on V100" true
    (Roofline.binding Device.v100 k = Roofline.Bandwidth_bound);
  let eff = Roofline.eff ~compute:1.0 ~bandwidth:1.0 () in
  let t = Roofline.time ~eff Device.v100 k in
  let expected = Device.v100.Device.launch_overhead_s +. (24e9 /. (900.0 *. 1e9)) in
  check_float "time = launch + bytes/bw" expected t

let test_roofline_compute_bound () =
  let k = Kernel.make ~name:"dgemm" ~flops:1e12 ~bytes:1e6 () in
  Alcotest.(check bool) "compute bound" true
    (Roofline.binding Device.v100 k = Roofline.Compute_bound)

let test_roofline_lanes_scale () =
  let k = Kernel.make ~name:"k" ~flops:1e9 ~bytes:0.0 ~launches:0 () in
  let eff = Roofline.eff ~compute:1.0 ~bandwidth:1.0 () in
  let full = Roofline.time ~eff Device.power9 k in
  let half = Roofline.time ~eff ~lanes_used:11 Device.power9 k in
  Alcotest.(check bool) "half lanes = 2x time" true
    (Float.abs ((half /. full) -. 2.0) < 0.01)

let test_gpu_faster_than_cpu_on_stream () =
  let k = Kernel.make ~name:"stream" ~flops:1e9 ~bytes:64e9 () in
  let tg = Roofline.time Device.v100 k and tc = Roofline.time Device.power9 k in
  Alcotest.(check bool) "V100 beats P9 on bandwidth" true (tg < tc)

let test_link_transfer_monotone () =
  let t1 = Link.transfer_time Link.nvlink2 ~bytes:1e3 in
  let t2 = Link.transfer_time Link.nvlink2 ~bytes:1e6 in
  Alcotest.(check bool) "more bytes, more time" true (t2 > t1)

let test_gpudirect_crossover () =
  (* Sec 4.11: for small messages GPUDirect wins (low latency); for a few
     KB or more cudaMemcpy wins (higher bandwidth). *)
  let small = 256.0 and large = 65536.0 in
  let gd_small = Link.transfer_time Link.gpudirect ~bytes:small in
  let cm_small = Link.transfer_time Link.cuda_memcpy ~bytes:small in
  let gd_large = Link.transfer_time Link.gpudirect ~bytes:large in
  let cm_large = Link.transfer_time Link.cuda_memcpy ~bytes:large in
  Alcotest.(check bool) "GPUDirect wins small" true (gd_small < cm_small);
  Alcotest.(check bool) "cudaMemcpy wins large" true (cm_large < gd_large)

let test_unified_memory_pages () =
  (* 1 byte still moves a whole 64 KiB page *)
  let t1 = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:1.0 in
  let t2 = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:65536.0 in
  check_float "sub-page rounds up" t2 t1

let test_zero_byte_transfers () =
  (* no message, no latency: an empty transfer is free on every link *)
  List.iter
    (fun l -> check_float (l.Link.name ^ " empty") 0.0 (Link.transfer_time l ~bytes:0.0))
    [ Link.pcie3; Link.nvlink2; Link.gpudirect; Link.ib_dual_edr ];
  check_float "UM empty" 0.0
    (Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:0.0);
  (* ... and a 1-byte transfer still pays the setup latency *)
  Alcotest.(check bool) "1 byte >= latency" true
    (Link.transfer_time Link.nvlink2 ~bytes:1.0 >= Link.nvlink2.Link.latency_s)

let test_unified_memory_no_link_latency () =
  (* pages pay the fault-service cost, not the link setup latency: the
     UM time must depend only on page count x (fault cost + wire time),
     so doubling the pages exactly doubles the time *)
  let one = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:65536.0 in
  let two = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:131072.0 in
  check_float "no per-transfer constant" (2.0 *. one) two

let test_clock_phases () =
  let c = Clock.create () in
  Clock.tick c ~phase:"a" 1.0;
  Clock.tick c ~phase:"b" 2.0;
  Clock.tick c ~phase:"a" 0.5;
  check_float "total" 3.5 (Clock.total c);
  check_float "phase a" 1.5 (Clock.phase c "a");
  check_float "phase b" 2.0 (Clock.phase c "b");
  Alcotest.(check int) "breakdown order" 2 (List.length (Clock.breakdown c));
  Clock.reset c;
  check_float "reset" 0.0 (Clock.total c)

let test_node_peaks () =
  let open Node in
  let w = witherspoon in
  Alcotest.(check bool) "witherspoon GPU-dominant" true
    (gpu_peak_gflops w > 10.0 *. cpu_peak_gflops w);
  Alcotest.(check bool) "cori has no GPU" true (gpu_peak_gflops cori_ii = 0.0);
  (* Sierra node ~ 31 TF/s DP within a factor *)
  Alcotest.(check bool) "sierra node peak sane" true
    (node_peak_gflops w > 25_000.0 && node_peak_gflops w < 40_000.0)

let test_kernel_algebra () =
  let a = Kernel.make ~name:"a" ~flops:1.0 ~bytes:2.0 () in
  let b = Kernel.make ~name:"b" ~flops:3.0 ~bytes:4.0 ~launches:2 () in
  let c = Kernel.add a b in
  check_float "flops add" 4.0 c.Kernel.flops;
  check_float "bytes add" 6.0 c.Kernel.bytes;
  Alcotest.(check int) "launches add" 3 c.Kernel.launches;
  let s = Kernel.scale 2.0 a in
  check_float "scale flops" 2.0 s.Kernel.flops;
  check_float "intensity invariant under scale" (Kernel.intensity a)
    (Kernel.intensity s)

(* --- nest counters (Sec 4.10.6) --- *)

let test_counters_bandwidth () =
  let c = Hwsim.Counters.create Hwsim.Device.power9 in
  (* 1 GB moved over 0.02 s = 50 GB/s on a 120 GB/s device *)
  Hwsim.Counters.sample c ~time:0.0 ~bytes:0.0;
  Hwsim.Counters.sample c ~time:0.01 ~bytes:0.5e9;
  Hwsim.Counters.sample c ~time:0.02 ~bytes:1.0e9;
  Alcotest.(check (float 1e-9)) "achieved" 50.0 (Hwsim.Counters.achieved_gbs c);
  Alcotest.(check bool) "not yet bandwidth bound" false
    (Hwsim.Counters.bandwidth_bound c);
  Hwsim.Counters.sample c ~time:0.025 ~bytes:1.6e9;
  Alcotest.(check int) "series intervals" 3 (List.length (Hwsim.Counters.series c))

let test_counters_detect_stream () =
  (* a STREAM-like phase must be flagged bandwidth-bound *)
  let c = Hwsim.Counters.create Hwsim.Device.power9 in
  Hwsim.Counters.sample c ~time:0.0 ~bytes:0.0;
  Hwsim.Counters.sample c ~time:0.1 ~bytes:(0.8 *. 120.0e9 *. 0.1);
  Alcotest.(check bool) "bandwidth bound" true (Hwsim.Counters.bandwidth_bound c)

let test_counters_monotonicity_guard () =
  let c = Hwsim.Counters.create Hwsim.Device.power9 in
  Hwsim.Counters.sample c ~time:1.0 ~bytes:100.0;
  Alcotest.(check bool) "rejects rewinding counter" true
    (match Hwsim.Counters.sample c ~time:0.5 ~bytes:200.0 with
    | () -> false
    | exception Assert_failure _ -> true)

let prop_roofline_time_positive =
  QCheck.Test.make ~name:"roofline time positive and monotone in work"
    ~count:200
    QCheck.(pair (float_range 1.0 1e12) (float_range 1.0 1e12))
    (fun (f, b) ->
      let k1 = Kernel.make ~name:"k" ~flops:f ~bytes:b () in
      let k2 = Kernel.make ~name:"k" ~flops:(2.0 *. f) ~bytes:(2.0 *. b) () in
      let t1 = Roofline.time Device.v100 k1 in
      let t2 = Roofline.time Device.v100 k2 in
      t1 > 0.0 && t2 >= t1)

let () =
  Alcotest.run "hwsim"
    [
      ( "roofline",
        [
          Alcotest.test_case "bandwidth bound" `Quick test_roofline_bandwidth_bound;
          Alcotest.test_case "compute bound" `Quick test_roofline_compute_bound;
          Alcotest.test_case "lane scaling" `Quick test_roofline_lanes_scale;
          Alcotest.test_case "gpu beats cpu on stream" `Quick
            test_gpu_faster_than_cpu_on_stream;
          QCheck_alcotest.to_alcotest prop_roofline_time_positive;
        ] );
      ( "links",
        [
          Alcotest.test_case "monotone" `Quick test_link_transfer_monotone;
          Alcotest.test_case "gpudirect crossover" `Quick test_gpudirect_crossover;
          Alcotest.test_case "unified memory pages" `Quick test_unified_memory_pages;
          Alcotest.test_case "zero-byte transfers" `Quick test_zero_byte_transfers;
          Alcotest.test_case "UM latency not double-charged" `Quick
            test_unified_memory_no_link_latency;
        ] );
      ("clock", [ Alcotest.test_case "phases" `Quick test_clock_phases ]);
      ("node", [ Alcotest.test_case "peaks" `Quick test_node_peaks ]);
      ("kernel", [ Alcotest.test_case "algebra" `Quick test_kernel_algebra ]);
      ( "counters",
        [
          Alcotest.test_case "bandwidth" `Quick test_counters_bandwidth;
          Alcotest.test_case "stream detection" `Quick test_counters_detect_stream;
          Alcotest.test_case "monotone guard" `Quick test_counters_monotonicity_guard;
        ] );
    ]
