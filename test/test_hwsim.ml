(* Tests for the hardware model: roofline pricing, links, clocks, nodes. *)

open Hwsim

let check_float = Alcotest.(check (float 1e-12))

let test_roofline_bandwidth_bound () =
  (* stream-like kernel: 1 flop per 24 bytes => bandwidth bound everywhere *)
  let k = Kernel.make ~name:"stream" ~flops:1e9 ~bytes:24e9 () in
  Alcotest.(check bool) "bw bound on V100" true
    (Roofline.binding Device.v100 k = Roofline.Bandwidth_bound);
  let eff = Roofline.eff ~compute:1.0 ~bandwidth:1.0 () in
  let t = Roofline.time ~eff Device.v100 k in
  let expected = Device.v100.Device.launch_overhead_s +. (24e9 /. (900.0 *. 1e9)) in
  check_float "time = launch + bytes/bw" expected t

let test_roofline_compute_bound () =
  let k = Kernel.make ~name:"dgemm" ~flops:1e12 ~bytes:1e6 () in
  Alcotest.(check bool) "compute bound" true
    (Roofline.binding Device.v100 k = Roofline.Compute_bound)

let test_roofline_lanes_scale () =
  let k = Kernel.make ~name:"k" ~flops:1e9 ~bytes:0.0 ~launches:0 () in
  let eff = Roofline.eff ~compute:1.0 ~bandwidth:1.0 () in
  let full = Roofline.time ~eff Device.power9 k in
  let half = Roofline.time ~eff ~lanes_used:11 Device.power9 k in
  Alcotest.(check bool) "half lanes = 2x time" true
    (Float.abs ((half /. full) -. 2.0) < 0.01)

let test_gpu_faster_than_cpu_on_stream () =
  let k = Kernel.make ~name:"stream" ~flops:1e9 ~bytes:64e9 () in
  let tg = Roofline.time Device.v100 k and tc = Roofline.time Device.power9 k in
  Alcotest.(check bool) "V100 beats P9 on bandwidth" true (tg < tc)

let test_link_transfer_monotone () =
  let t1 = Link.transfer_time Link.nvlink2 ~bytes:1e3 in
  let t2 = Link.transfer_time Link.nvlink2 ~bytes:1e6 in
  Alcotest.(check bool) "more bytes, more time" true (t2 > t1)

let test_gpudirect_crossover () =
  (* Sec 4.11: for small messages GPUDirect wins (low latency); for a few
     KB or more cudaMemcpy wins (higher bandwidth). *)
  let small = 256.0 and large = 65536.0 in
  let gd_small = Link.transfer_time Link.gpudirect ~bytes:small in
  let cm_small = Link.transfer_time Link.cuda_memcpy ~bytes:small in
  let gd_large = Link.transfer_time Link.gpudirect ~bytes:large in
  let cm_large = Link.transfer_time Link.cuda_memcpy ~bytes:large in
  Alcotest.(check bool) "GPUDirect wins small" true (gd_small < cm_small);
  Alcotest.(check bool) "cudaMemcpy wins large" true (cm_large < gd_large)

let test_unified_memory_pages () =
  (* 1 byte still moves a whole 64 KiB page *)
  let t1 = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:1.0 in
  let t2 = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:65536.0 in
  check_float "sub-page rounds up" t2 t1

let test_zero_byte_transfers () =
  (* no message, no latency: an empty transfer is free on every link *)
  List.iter
    (fun l -> check_float (l.Link.name ^ " empty") 0.0 (Link.transfer_time l ~bytes:0.0))
    [ Link.pcie3; Link.nvlink2; Link.gpudirect; Link.ib_dual_edr ];
  check_float "UM empty" 0.0
    (Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:0.0);
  (* ... and a 1-byte transfer still pays the setup latency *)
  Alcotest.(check bool) "1 byte >= latency" true
    (Link.transfer_time Link.nvlink2 ~bytes:1.0 >= Link.nvlink2.Link.latency_s)

let test_unified_memory_no_link_latency () =
  (* pages pay the fault-service cost, not the link setup latency: the
     UM time must depend only on page count x (fault cost + wire time),
     so doubling the pages exactly doubles the time *)
  let one = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:65536.0 in
  let two = Link.unified_memory_transfer ~link:Link.nvlink2 ~bytes:131072.0 in
  check_float "no per-transfer constant" (2.0 *. one) two

let test_clock_phases () =
  let c = Clock.create () in
  Clock.tick c ~phase:"a" 1.0;
  Clock.tick c ~phase:"b" 2.0;
  Clock.tick c ~phase:"a" 0.5;
  check_float "total" 3.5 (Clock.total c);
  check_float "phase a" 1.5 (Clock.phase c "a");
  check_float "phase b" 2.0 (Clock.phase c "b");
  Alcotest.(check int) "breakdown order" 2 (List.length (Clock.breakdown c));
  Clock.reset c;
  check_float "reset" 0.0 (Clock.total c)

let test_node_peaks () =
  let open Node in
  let w = witherspoon in
  Alcotest.(check bool) "witherspoon GPU-dominant" true
    (gpu_peak_gflops w > 10.0 *. cpu_peak_gflops w);
  Alcotest.(check bool) "cori has no GPU" true (gpu_peak_gflops cori_ii = 0.0);
  (* Sierra node ~ 31 TF/s DP within a factor *)
  Alcotest.(check bool) "sierra node peak sane" true
    (node_peak_gflops w > 25_000.0 && node_peak_gflops w < 40_000.0)

let test_kernel_algebra () =
  let a = Kernel.make ~name:"a" ~flops:1.0 ~bytes:2.0 () in
  let b = Kernel.make ~name:"b" ~flops:3.0 ~bytes:4.0 ~launches:2 () in
  let c = Kernel.add a b in
  check_float "flops add" 4.0 c.Kernel.flops;
  check_float "bytes add" 6.0 c.Kernel.bytes;
  Alcotest.(check int) "launches add" 3 c.Kernel.launches;
  let s = Kernel.scale 2.0 a in
  check_float "scale flops" 2.0 s.Kernel.flops;
  check_float "intensity invariant under scale" (Kernel.intensity a)
    (Kernel.intensity s)

(* --- nest counters (Sec 4.10.6) --- *)

let test_counters_bandwidth () =
  let c = Hwsim.Counters.create Hwsim.Device.power9 in
  (* 1 GB moved over 0.02 s = 50 GB/s on a 120 GB/s device *)
  Hwsim.Counters.sample c ~time:0.0 ~bytes:0.0;
  Hwsim.Counters.sample c ~time:0.01 ~bytes:0.5e9;
  Hwsim.Counters.sample c ~time:0.02 ~bytes:1.0e9;
  Alcotest.(check (float 1e-9)) "achieved" 50.0 (Hwsim.Counters.achieved_gbs c);
  Alcotest.(check bool) "not yet bandwidth bound" false
    (Hwsim.Counters.bandwidth_bound c);
  Hwsim.Counters.sample c ~time:0.025 ~bytes:1.6e9;
  Alcotest.(check int) "series intervals" 3 (List.length (Hwsim.Counters.series c))

let test_counters_detect_stream () =
  (* a STREAM-like phase must be flagged bandwidth-bound *)
  let c = Hwsim.Counters.create Hwsim.Device.power9 in
  Hwsim.Counters.sample c ~time:0.0 ~bytes:0.0;
  Hwsim.Counters.sample c ~time:0.1 ~bytes:(0.8 *. 120.0e9 *. 0.1);
  Alcotest.(check bool) "bandwidth bound" true (Hwsim.Counters.bandwidth_bound c)

let test_counters_monotonicity_guard () =
  let c = Hwsim.Counters.create Hwsim.Device.power9 in
  Hwsim.Counters.sample c ~time:1.0 ~bytes:100.0;
  Alcotest.(check bool) "rejects rewinding counter" true
    (match Hwsim.Counters.sample c ~time:0.5 ~bytes:200.0 with
    | () -> false
    | exception Assert_failure _ -> true)

(* --- stream scheduler (comm/compute overlap) --- *)

(* A(gpu, 3) and B(nic, 2) start together; C(gpu, 1) needs B but also
   waits for A (same stream). Critical path: max(3, 2) + 1 = 4. *)
let fixed_dag sched =
  ignore (Sched.work sched ~stream:"gpu" ~phase:"a" 3.0);
  let b = Sched.work sched ~stream:"nic" ~phase:"b" 2.0 in
  ignore (Sched.work sched ~stream:"gpu" ~deps:[ b ] ~phase:"c" 1.0)

let test_sched_critical_path () =
  let sched = Sched.create ~overlap:true () in
  fixed_dag sched;
  check_float "overlap = critical path" 4.0 (Sched.run sched);
  check_float "serial sum" 6.0 (Sched.serial_sum sched);
  check_float "efficiency" (4.0 /. 6.0) (Sched.overlap_efficiency sched);
  check_float "memoized" 4.0 (Sched.run sched)

let test_sched_serial_mode () =
  let sched = Sched.create ~overlap:false () in
  fixed_dag sched;
  check_float "serial mode = serial sum" 6.0 (Sched.run sched);
  check_float "efficiency 1.0" 1.0 (Sched.overlap_efficiency sched)

let test_sched_stream_order () =
  (* no explicit deps: same-stream items still serialize *)
  let sched = Sched.create ~overlap:true () in
  ignore (Sched.work sched ~stream:"gpu" ~phase:"a" 1.0);
  ignore (Sched.work sched ~stream:"gpu" ~phase:"b" 1.0);
  check_float "in-order stream" 2.0 (Sched.run sched)

let test_sched_guards () =
  let sched = Sched.create ~overlap:true () in
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Sched: item duration must be finite and nonnegative")
    (fun () -> ignore (Sched.work sched ~stream:"s" ~phase:"p" (-1.0)));
  ignore (Sched.work sched ~stream:"s" ~phase:"p" 1.0);
  ignore (Sched.run sched);
  Alcotest.check_raises "enqueue after run"
    (Invalid_argument "Sched: cannot enqueue after run") (fun () ->
      ignore (Sched.work sched ~stream:"s" ~phase:"p" 1.0))

let test_sched_empty () =
  let sched = Sched.create ~overlap:true () in
  check_float "empty makespan" 0.0 (Sched.run sched);
  check_float "empty efficiency" 1.0 (Sched.overlap_efficiency sched)

let test_sched_trace_overlap_charging () =
  (* overlapped charging: clock total advances by the makespan, while
     the per-phase breakdown keeps full busy seconds — their sum exceeds
     the total by exactly the hidden time *)
  let c = Clock.create () in
  let tr = Trace.create ~root:"t" c in
  let sched = Sched.create ~overlap:true ~trace:tr () in
  fixed_dag sched;
  let makespan = Sched.run sched in
  check_float "clock total = makespan" makespan (Clock.total c);
  check_float "phase a busy" 3.0 (Clock.phase c "a");
  check_float "phase b busy" 2.0 (Clock.phase c "b");
  check_float "phase c busy" 1.0 (Clock.phase c "c");
  let breakdown_sum =
    List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (Clock.breakdown c)
  in
  check_float "hidden time = serial - makespan"
    (Sched.serial_sum sched -. makespan)
    (breakdown_sum -. Clock.total c)

let test_sched_serial_charging_matches_charge () =
  (* the ICOE_OVERLAP=0 fallback must charge exactly like Trace.charge *)
  let c1 = Clock.create () in
  let t1 = Trace.create ~root:"t" c1 in
  let sched = Sched.create ~overlap:false ~trace:t1 () in
  ignore (Sched.work sched ~stream:"gpu" ~device:"gpu" ~phase:"a" 1.5);
  ignore (Sched.work sched ~stream:"nic" ~device:"nic" ~phase:"b" 0.25);
  ignore (Sched.run sched);
  let c2 = Clock.create () in
  let t2 = Trace.create ~root:"t" c2 in
  Trace.charge t2 ~device:"gpu" ~phase:"a" 1.5;
  Trace.charge t2 ~device:"nic" ~phase:"b" 0.25;
  check_float "totals equal" (Clock.total c2) (Clock.total c1);
  check_float "phase a equal" (Clock.phase c2 "a") (Clock.phase c1 "a");
  check_float "phase b equal" (Clock.phase c2 "b") (Clock.phase c1 "b");
  Alcotest.(check int)
    "span counts equal" (Trace.span_count t2) (Trace.span_count t1)

let test_sched_kernel_and_transfer_pricing () =
  (* scheduler items are priced by the same cost model as serialized
     charging *)
  let k = Kernel.make ~name:"k" ~flops:1e9 ~bytes:24e9 () in
  let sched = Sched.create ~overlap:true () in
  let ki = Sched.kernel sched ~stream:"gpu" Device.v100 k in
  let ti = Sched.transfer sched ~stream:"nic" Link.nvlink2 ~bytes:1e6 in
  check_float "kernel priced by roofline" (Roofline.time Device.v100 k)
    (Sched.duration ki);
  check_float "transfer priced by link"
    (Link.transfer_time Link.nvlink2 ~bytes:1e6)
    (Sched.duration ti)

let test_binding_delegates_to_time_and_bound () =
  (* regression: binding used to re-derive the roofs itself and did not
     accept [lanes_used], so it could disagree with the roof that
     actually priced the time. It must equal [snd time_and_bound] under
     every efficiency/lane scaling. *)
  let k = Kernel.make ~name:"k" ~flops:1e9 ~bytes:1e9 () in
  List.iter
    (fun (eff, lanes_used) ->
      Alcotest.(check bool)
        "binding = snd time_and_bound" true
        (Roofline.binding ?eff ?lanes_used Device.power9 k
        = snd (Roofline.time_and_bound ?eff ?lanes_used Device.power9 k)))
    [
      (None, None);
      (Some (Roofline.eff ~compute:0.05 ~bandwidth:1.0 ()), None);
      (None, Some 1);
      (Some (Roofline.eff ~compute:1.0 ~bandwidth:0.05 ()), Some 3);
    ];
  (* the efficiency surface can flip the roof; both views agree on it *)
  Alcotest.(check bool)
    "bandwidth bound at default eff" true
    (Roofline.binding Device.power9 k = Roofline.Bandwidth_bound);
  Alcotest.(check bool)
    "low compute eff flips to compute bound" true
    (Roofline.binding
       ~eff:(Roofline.eff ~compute:0.05 ~bandwidth:1.0 ())
       Device.power9 k
    = Roofline.Compute_bound)

(* Random DAGs: each item gets a stream, a duration, and possibly a
   dependency on an earlier item — exactly the shapes engines build. *)
let sched_case_gen =
  QCheck.(
    small_list (triple (int_bound 2) (float_range 0.0 10.0) small_nat))

let build_sched ~overlap case =
  let sched = Sched.create ~overlap () in
  let items = Array.make (List.length case) None in
  List.iteri
    (fun j (s, d, dep) ->
      let stream = Printf.sprintf "s%d" s in
      let deps =
        if j > 0 && dep mod 2 = 0 then
          match items.(dep mod j) with Some it -> [ it ] | None -> []
        else []
      in
      items.(j) <- Some (Sched.work sched ~stream ~deps ~phase:stream d))
    case;
  sched

let prop_sched_makespan_bounds =
  QCheck.Test.make ~name:"overlap: busy max <= makespan <= serial sum"
    ~count:300 sched_case_gen (fun case ->
      let sched = build_sched ~overlap:true case in
      let makespan = Sched.run sched in
      let serial = Sched.serial_sum sched in
      let busy_max =
        List.fold_left
          (fun acc (_, b) -> Float.max acc b)
          0.0 (Sched.stream_busy sched)
      in
      makespan <= serial +. 1e-9 && makespan >= busy_max -. 1e-9)

let prop_sched_critical_path =
  (* independent recomputation of every finish time: an item starts at
     the max of its dependencies' and stream predecessor's finishes *)
  QCheck.Test.make ~name:"overlap: makespan = recomputed critical path"
    ~count:300 sched_case_gen (fun case ->
      let sched = build_sched ~overlap:true case in
      let makespan = Sched.run sched in
      let expected =
        let stream_last = Hashtbl.create 8 in
        List.fold_left
          (fun acc it ->
            let ready =
              Option.value
                (Hashtbl.find_opt stream_last (Sched.stream_of it))
                ~default:0.0
            in
            let start =
              List.fold_left
                (fun acc d -> Float.max acc (Sched.finish_time d))
                ready (Sched.deps_of it)
            in
            let finish = start +. Sched.duration it in
            Hashtbl.replace stream_last (Sched.stream_of it) finish;
            Float.max acc finish)
          0.0 (Sched.items sched)
      in
      makespan = expected)

let prop_sched_conservation =
  QCheck.Test.make
    ~name:"per-stream busy seconds conserved across scheduling modes"
    ~count:300 sched_case_gen (fun case ->
      let ov = build_sched ~overlap:true case in
      let ser = build_sched ~overlap:false case in
      ignore (Sched.run ov);
      ignore (Sched.run ser);
      Sched.stream_busy ov = Sched.stream_busy ser
      && Sched.run ser = Sched.serial_sum ov)

let prop_sched_determinism =
  QCheck.Test.make ~name:"identical rebuild gives identical makespan"
    ~count:200 sched_case_gen (fun case ->
      let a = build_sched ~overlap:true case in
      let b = build_sched ~overlap:true case in
      Sched.run a = Sched.run b)

let prop_roofline_time_positive =
  QCheck.Test.make ~name:"roofline time positive and monotone in work"
    ~count:200
    QCheck.(pair (float_range 1.0 1e12) (float_range 1.0 1e12))
    (fun (f, b) ->
      let k1 = Kernel.make ~name:"k" ~flops:f ~bytes:b () in
      let k2 = Kernel.make ~name:"k" ~flops:(2.0 *. f) ~bytes:(2.0 *. b) () in
      let t1 = Roofline.time Device.v100 k1 in
      let t2 = Roofline.time Device.v100 k2 in
      t1 > 0.0 && t2 >= t1)

let () =
  Alcotest.run "hwsim"
    [
      ( "roofline",
        [
          Alcotest.test_case "bandwidth bound" `Quick test_roofline_bandwidth_bound;
          Alcotest.test_case "compute bound" `Quick test_roofline_compute_bound;
          Alcotest.test_case "lane scaling" `Quick test_roofline_lanes_scale;
          Alcotest.test_case "gpu beats cpu on stream" `Quick
            test_gpu_faster_than_cpu_on_stream;
          QCheck_alcotest.to_alcotest prop_roofline_time_positive;
        ] );
      ( "links",
        [
          Alcotest.test_case "monotone" `Quick test_link_transfer_monotone;
          Alcotest.test_case "gpudirect crossover" `Quick test_gpudirect_crossover;
          Alcotest.test_case "unified memory pages" `Quick test_unified_memory_pages;
          Alcotest.test_case "zero-byte transfers" `Quick test_zero_byte_transfers;
          Alcotest.test_case "UM latency not double-charged" `Quick
            test_unified_memory_no_link_latency;
        ] );
      ("clock", [ Alcotest.test_case "phases" `Quick test_clock_phases ]);
      ( "sched",
        [
          Alcotest.test_case "critical path" `Quick test_sched_critical_path;
          Alcotest.test_case "serial mode" `Quick test_sched_serial_mode;
          Alcotest.test_case "stream order" `Quick test_sched_stream_order;
          Alcotest.test_case "guards" `Quick test_sched_guards;
          Alcotest.test_case "empty schedule" `Quick test_sched_empty;
          Alcotest.test_case "overlapped trace charging" `Quick
            test_sched_trace_overlap_charging;
          Alcotest.test_case "serial fallback matches Trace.charge" `Quick
            test_sched_serial_charging_matches_charge;
          Alcotest.test_case "cost-model pricing" `Quick
            test_sched_kernel_and_transfer_pricing;
          Alcotest.test_case "binding delegates (lanes_used)" `Quick
            test_binding_delegates_to_time_and_bound;
          QCheck_alcotest.to_alcotest prop_sched_makespan_bounds;
          QCheck_alcotest.to_alcotest prop_sched_critical_path;
          QCheck_alcotest.to_alcotest prop_sched_conservation;
          QCheck_alcotest.to_alcotest prop_sched_determinism;
        ] );
      ("node", [ Alcotest.test_case "peaks" `Quick test_node_peaks ]);
      ("kernel", [ Alcotest.test_case "algebra" `Quick test_kernel_algebra ]);
      ( "counters",
        [
          Alcotest.test_case "bandwidth" `Quick test_counters_bandwidth;
          Alcotest.test_case "stream detection" `Quick test_counters_detect_stream;
          Alcotest.test_case "monotone guard" `Quick test_counters_monotonicity_guard;
        ] );
    ]
