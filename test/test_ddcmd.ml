(* Tests for the ddcMD analog: particles, potentials, linked cells, bonded
   terms, the integrator stack, and the GROMACS comparison model. *)

open Ddcmd
module Fbuf = Icoe_util.Fbuf

let rng () = Icoe_util.Rng.create 71

(* --- particles --- *)

let test_lattice_no_overlap () =
  let p = Particles.create ~n:64 ~box:8.0 in
  Particles.lattice_init p;
  let mind = ref infinity in
  for i = 0 to 62 do
    for j = i + 1 to 63 do
      mind := min !mind (sqrt (Particles.dist2 p i j))
    done
  done;
  Alcotest.(check bool) "min spacing positive" true (!mind > 1.0)

let test_min_image () =
  let p = Particles.create ~n:2 ~box:10.0 in
  Fbuf.set p.Particles.x 0 (0.5);
  Fbuf.set p.Particles.x 1 (9.5);
  Alcotest.(check (float 1e-12)) "wraps across boundary" 1.0
    (sqrt (Particles.dist2 p 0 1))

let test_thermalize_temperature () =
  let p = Particles.create ~n:2000 ~box:20.0 in
  Particles.lattice_init p;
  Particles.thermalize p ~rng:(rng ()) ~temp:1.5;
  let t = Particles.temperature p in
  Alcotest.(check bool) "temperature near target" true (Float.abs (t -. 1.5) < 0.1);
  let mx, my, mz = Particles.total_momentum p in
  Alcotest.(check bool) "zero COM momentum" true
    (Float.abs mx +. Float.abs my +. Float.abs mz < 1e-9)

(* --- potentials --- *)

let test_lj_minimum () =
  let pot = Potential.lennard_jones ~epsilon:1.0 ~sigma:1.0 ~cutoff:3.0 () in
  (* force zero at r = 2^(1/6) sigma *)
  let rmin = 2.0 ** (1.0 /. 6.0) in
  let _, f = Potential.eval pot ~si:0 ~sj:0 ~r2:(rmin *. rmin) in
  Alcotest.(check (float 1e-9)) "zero force at minimum" 0.0 f;
  let _, f_close = Potential.eval pot ~si:0 ~sj:0 ~r2:(0.9 *. 0.9) in
  let _, f_far = Potential.eval pot ~si:0 ~sj:0 ~r2:(1.5 *. 1.5) in
  Alcotest.(check bool) "repulsive inside" true (f_close > 0.0);
  Alcotest.(check bool) "attractive outside" true (f_far < 0.0)

let test_lj_cutoff_continuity () =
  let pot = Potential.lennard_jones ~cutoff:2.5 () in
  let e_in, _ = Potential.eval pot ~si:0 ~sj:0 ~r2:(2.499 *. 2.499) in
  let e_out, _ = Potential.eval pot ~si:0 ~sj:0 ~r2:(2.501 *. 2.501) in
  Alcotest.(check bool) "energy continuous at cutoff" true
    (Float.abs (e_in -. e_out) < 1e-3)

let test_exp6_repulsive_core () =
  let pot = Potential.exp6 () in
  let _, f = Potential.eval pot ~si:0 ~sj:0 ~r2:(0.3 *. 0.3) in
  Alcotest.(check bool) "repulsive at short range" true (f > 0.0)

let test_martini_species_matrix () =
  let eps = [| [| 1.0; 0.5 |]; [| 0.5; 2.0 |] |] in
  let sg = [| [| 0.47; 0.47 |]; [| 0.47; 0.47 |] |] in
  let pot = Potential.martini ~epsilon:eps ~sigma:sg () in
  let e00, _ = Potential.eval pot ~si:0 ~sj:0 ~r2:(0.5 *. 0.5) in
  let e11, _ = Potential.eval pot ~si:1 ~sj:1 ~r2:(0.5 *. 0.5) in
  Alcotest.(check bool) "species-dependent wells" true
    (Float.abs (e11 /. e00 -. 2.0) < 1e-9)

(* --- cells --- *)

let test_cells_match_all_pairs () =
  (* forces via linked cells must equal O(N^2) enumeration *)
  let r = rng () in
  let p = Particles.create ~n:120 ~box:7.0 in
  Particles.lattice_init p;
  (* jitter positions *)
  for i = 0 to 119 do
    Fbuf.set p.Particles.x i (Particles.wrap p ((Fbuf.get p.Particles.x i) +. Icoe_util.Rng.uniform r (-0.2) 0.2));
    Fbuf.set p.Particles.y i (Particles.wrap p ((Fbuf.get p.Particles.y i) +. Icoe_util.Rng.uniform r (-0.2) 0.2));
    Fbuf.set p.Particles.z i (Particles.wrap p ((Fbuf.get p.Particles.z i) +. Icoe_util.Rng.uniform r (-0.2) 0.2))
  done;
  let cutoff = 1.5 in
  let cl = Cells.build p ~cutoff in
  let pairs_cells = ref [] in
  Cells.iter_pairs cl p ~cutoff (fun i j ->
      pairs_cells := (min i j, max i j) :: !pairs_cells);
  let pairs_naive = ref [] in
  for i = 0 to 118 do
    for j = i + 1 to 119 do
      if Particles.dist2 p i j <= cutoff *. cutoff then
        pairs_naive := (i, j) :: !pairs_naive
    done
  done;
  let norm l = List.sort_uniq compare l in
  Alcotest.(check int) "same pair count"
    (List.length (norm !pairs_naive))
    (List.length (norm !pairs_cells));
  Alcotest.(check bool) "same pair set" true (norm !pairs_naive = norm !pairs_cells)

let test_cells_negative_coordinate_clamped () =
  (* regression: a slightly-negative unwrapped coordinate (floating-point
     wrap residue like -1e-16, or integrator drift before rewrapping)
     used to bin to cell -1 and index head out of bounds; cell_coord now
     clamps both ends *)
  Alcotest.(check int) "slightly negative binned to 0" 0
    (Cells.cell_coord ~ncell:4 ~cell_size:1.0 (-1e-16));
  Alcotest.(check int) "below box binned to 0" 0
    (Cells.cell_coord ~ncell:4 ~cell_size:1.0 (-0.3));
  Alcotest.(check int) "above box binned to last" 3
    (Cells.cell_coord ~ncell:4 ~cell_size:1.0 4.2);
  let p = Particles.create ~n:27 ~box:6.0 in
  Particles.lattice_init p;
  (* plant boundary offenders: exact 0.0, -0.0, a negative ulp, and a
     coordinate just past the box edge *)
  Fbuf.set p.Particles.x 0 (-1e-16);
  Fbuf.set p.Particles.y 0 (-0.0);
  Fbuf.set p.Particles.z 0 0.0;
  Fbuf.set p.Particles.x 1 (6.0 +. 1e-12);
  let cutoff = 1.5 in
  let cl = Cells.build p ~cutoff in
  (* enumeration must neither crash nor lose pairs vs O(N^2) *)
  let pairs_cells = ref [] in
  Cells.iter_pairs cl p ~cutoff (fun i j ->
      pairs_cells := (min i j, max i j) :: !pairs_cells);
  let pairs_naive = ref [] in
  for i = 0 to 25 do
    for j = i + 1 to 26 do
      if Particles.dist2 p i j <= cutoff *. cutoff then
        pairs_naive := (i, j) :: !pairs_naive
    done
  done;
  let norm l = List.sort_uniq compare l in
  Alcotest.(check bool) "same pair set with boundary offenders" true
    (norm !pairs_naive = norm !pairs_cells)

(* --- bonded --- *)

let test_bond_force_direction () =
  let p = Particles.create ~n:2 ~box:10.0 in
  Fbuf.set p.Particles.x 0 (4.0);
  Fbuf.set p.Particles.x 1 (6.0);
  Fbuf.set p.Particles.y 0 (5.0);
  Fbuf.set p.Particles.y 1 (5.0);
  Fbuf.set p.Particles.z 0 (5.0);
  Fbuf.set p.Particles.z 1 (5.0);
  (* stretched bond (r=2, r0=1.5): force pulls them together *)
  let e = Bonded.bond_forces p [ { Bonded.bi = 0; bj = 1; k = 10.0; r0 = 1.5 } ] in
  Alcotest.(check bool) "positive energy" true (e > 0.0);
  Alcotest.(check bool) "0 pulled toward 1" true ((Fbuf.get p.Particles.fx 0) > 0.0);
  Alcotest.(check bool) "1 pulled toward 0" true ((Fbuf.get p.Particles.fx 1) < 0.0);
  Alcotest.(check (float 1e-12)) "newton's third law" 0.0
    ((Fbuf.get p.Particles.fx 0) +. (Fbuf.get p.Particles.fx 1))

let test_angle_force_restores () =
  let p = Particles.create ~n:3 ~box:10.0 in
  (* bent configuration: 90 degrees, equilibrium 180 *)
  Fbuf.set p.Particles.x 0 (4.0); Fbuf.set p.Particles.y 0 (5.0); Fbuf.set p.Particles.z 0 (5.0);
  Fbuf.set p.Particles.x 1 (5.0); Fbuf.set p.Particles.y 1 (5.0); Fbuf.set p.Particles.z 1 (5.0);
  Fbuf.set p.Particles.x 2 (5.0); Fbuf.set p.Particles.y 2 (6.0); Fbuf.set p.Particles.z 2 (5.0);
  let e =
    Bonded.angle_forces p
      [ { Bonded.ai = 0; aj = 1; ak = 2; ka = 5.0; theta0 = Float.pi } ]
  in
  Alcotest.(check bool) "positive energy away from equilibrium" true (e > 0.0);
  (* net force zero *)
  let fx = (Fbuf.get p.Particles.fx 0) +. (Fbuf.get p.Particles.fx 1) +. (Fbuf.get p.Particles.fx 2) in
  let fy = (Fbuf.get p.Particles.fy 0) +. (Fbuf.get p.Particles.fy 1) +. (Fbuf.get p.Particles.fy 2) in
  Alcotest.(check (float 1e-10)) "momentum conserved x" 0.0 fx;
  Alcotest.(check (float 1e-10)) "momentum conserved y" 0.0 fy

(* --- engine --- *)

let lj_system ?(n = 125) ?(box = 6.5) ?(temp = 0.7) () =
  let p = Particles.create ~n ~box in
  Particles.lattice_init p;
  Particles.thermalize p ~rng:(rng ()) ~temp;
  Engine.create ~dt:0.004 ~potential:(Potential.lennard_jones ()) p

let test_nve_energy_conservation () =
  let e = lj_system () in
  Engine.run e ~steps:50;
  let e0 = Engine.total_energy e in
  Engine.run e ~steps:400;
  let e1 = Engine.total_energy e in
  let drift = Float.abs (e1 -. e0) /. Float.abs e0 in
  Alcotest.(check bool) (Fmt.str "relative drift %.2e < 1%%" drift) true (drift < 0.01)

let test_nve_momentum_conservation () =
  let e = lj_system () in
  Engine.run e ~steps:300;
  let mx, my, mz = Particles.total_momentum e.Engine.p in
  Alcotest.(check bool) "momentum conserved" true
    (Float.abs mx +. Float.abs my +. Float.abs mz < 1e-8)

let test_langevin_thermostat () =
  let e = lj_system ~temp:0.2 () in
  let r = rng () in
  (* thermostat drives the system toward T = 1.2 *)
  Engine.run ~langevin:(5.0, 1.2, r) e ~steps:1500;
  let samples = Array.init 50 (fun _ ->
      Engine.run ~langevin:(5.0, 1.2, r) e ~steps:10;
      Particles.temperature e.Engine.p)
  in
  let tbar = Icoe_util.Stats.mean samples in
  Alcotest.(check bool) (Fmt.str "T=%.2f near 1.2" tbar) true
    (Float.abs (tbar -. 1.2) < 0.15)

let test_berendsen_compresses () =
  (* a dilute gas below target pressure: barostat shrinks the box *)
  let p = Particles.create ~n:64 ~box:12.0 in
  Particles.lattice_init p;
  Particles.thermalize p ~rng:(rng ()) ~temp:1.0;
  let e = Engine.create ~dt:0.004 ~potential:(Potential.lennard_jones ()) p in
  let box0 = p.Particles.box in
  Engine.run ~berendsen:(0.02, 5.0) e ~steps:400;
  Alcotest.(check bool) "box shrinks toward higher pressure" true
    (p.Particles.box < box0)

let test_shake_maintains_distance () =
  let p = Particles.create ~n:2 ~box:10.0 in
  Fbuf.set p.Particles.x 0 (5.0); Fbuf.set p.Particles.y 0 (5.0); Fbuf.set p.Particles.z 0 (5.0);
  Fbuf.set p.Particles.x 1 (6.0); Fbuf.set p.Particles.y 1 (5.0); Fbuf.set p.Particles.z 1 (5.0);
  (* opposing velocities try to stretch the constrained pair *)
  Fbuf.set p.Particles.vx 0 (-1.0);
  Fbuf.set p.Particles.vx 1 (1.0);
  let e =
    Engine.create ~dt:0.004 ~constraints:[ (0, 1, 1.0) ]
      ~potential:(Potential.soft_sphere ~sigma:0.1 ()) p
  in
  Engine.run e ~steps:200;
  let d = sqrt (Particles.dist2 p 0 1) in
  Alcotest.(check bool) (Fmt.str "constraint held: d=%.4f" d) true
    (Float.abs (d -. 1.0) < 1e-3)

let test_martini_membrane_patch_stable () =
  (* two-species Martini-like fluid: runs stably with bonds, thermostat *)
  let r = rng () in
  let p = Particles.create ~n:96 ~box:5.0 in
  Particles.lattice_init p;
  for i = 0 to 95 do
    p.Particles.species.(i) <- i mod 2
  done;
  Particles.thermalize p ~rng:r ~temp:1.0;
  let eps = [| [| 1.0; 0.6 |]; [| 0.6; 1.2 |] |] in
  let sg = [| [| 0.6; 0.6 |]; [| 0.6; 0.6 |] |] in
  let bonds =
    (* bond every even particle to the next odd one: crude dimer lipids *)
    List.init 48 (fun k -> { Bonded.bi = 2 * k; bj = (2 * k) + 1; k = 50.0; r0 = 0.5 })
  in
  let e =
    Engine.create ~dt:0.002 ~bonds
      ~potential:(Potential.martini ~epsilon:eps ~sigma:sg ~cutoff:1.2 ())
      p
  in
  Engine.run ~langevin:(2.0, 1.0, r) e ~steps:500;
  Alcotest.(check bool) "finite positions" true
    (Array.for_all Float.is_finite (Fbuf.to_array p.Particles.x));
  Alcotest.(check bool) "pairs evaluated" true (e.Engine.pair_count > 0)

let test_rdf_structure () =
  (* an equilibrated LJ fluid: g(r) ~ 0 inside the core, peaks near the
     potential minimum, tends to 1 at long range *)
  let e = lj_system ~n:216 ~box:7.0 ~temp:0.9 () in
  let r = rng () in
  Engine.run ~langevin:(5.0, 0.9, r) e ~steps:800;
  let g = Engine.rdf ~bins:35 ~rmax:3.0 e in
  (* core exclusion: r < 0.8 sigma *)
  Alcotest.(check bool) "core empty" true (g.(5) < 0.05);
  (* first shell near r = 2^(1/6): bins around index 12-13 of 35 over 3.0 *)
  let peak = max g.(12) (max g.(13) g.(14)) in
  Alcotest.(check bool) (Fmt.str "first shell peak %.2f > 1.3" peak) true (peak > 1.3);
  (* long range approaches unity *)
  let tail = Icoe_util.Stats.mean (Array.sub g 28 7) in
  Alcotest.(check bool) (Fmt.str "tail %.2f near 1" tail) true
    (tail > 0.7 && tail < 1.3)

let test_vacf_decays () =
  (* VACF starts at 1 and decays in a dense fluid; the Green-Kubo
     diffusion estimate is positive and finite *)
  let e = lj_system ~n:125 ~box:6.0 ~temp:1.0 () in
  Engine.run e ~steps:200;
  let v = Engine.vacf ~samples:30 ~stride:5 e in
  Alcotest.(check (float 1e-12)) "normalized at 0" 1.0 v.(0);
  Alcotest.(check bool) "decays from unity" true (v.(29) < 0.8);
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite v);
  let c0 = 3.0 *. 1.0 (* 3 T / m *) in
  let d = Engine.diffusion_coefficient ~vacf:v ~c0 ~dt_sample:(5.0 *. 0.004) in
  Alcotest.(check bool) (Fmt.str "D=%.4f finite" d) true (Float.is_finite d)

(* --- verlet lists --- *)

let test_verlet_matches_cells () =
  (* force-relevant pairs from the Verlet list = pairs from the cell grid *)
  let e = lj_system ~n:125 ~box:6.5 () in
  Engine.run e ~steps:20;
  let p = e.Engine.p in
  let cutoff = 2.5 in
  let v = Verlet.build ~skin:0.4 p ~cutoff in
  let collect iter =
    let acc = ref [] in
    iter (fun i j -> acc := (min i j, max i j) :: !acc);
    List.sort_uniq compare !acc
  in
  let from_verlet = collect (fun f -> Verlet.iter_pairs v p f) in
  let cl = Cells.build p ~cutoff in
  let from_cells = collect (fun f -> Cells.iter_pairs cl p ~cutoff f) in
  Alcotest.(check int) "same count" (List.length from_cells) (List.length from_verlet);
  Alcotest.(check bool) "same set" true (from_cells = from_verlet)

let test_verlet_rebuild_criterion () =
  let e = lj_system ~n:64 ~box:6.0 ~temp:0.5 () in
  Engine.run e ~steps:5;
  let p = e.Engine.p in
  let v = Verlet.build ~skin:0.5 p ~cutoff:2.5 in
  Alcotest.(check bool) "fresh list valid" false (Verlet.needs_rebuild v p);
  (* move one particle just under half the skin: still valid *)
  Fbuf.set p.Particles.x 0 (Particles.wrap p ((Fbuf.get p.Particles.x 0) +. 0.24));
  Alcotest.(check bool) "within skin" false (Verlet.needs_rebuild v p);
  (* beyond half the skin: must rebuild *)
  Fbuf.set p.Particles.x 0 (Particles.wrap p ((Fbuf.get p.Particles.x 0) +. 0.05));
  Alcotest.(check bool) "stale" true (Verlet.needs_rebuild v p);
  let v2 = Verlet.refresh v p in
  Alcotest.(check int) "rebuild counted" 2 v2.Verlet.rebuilds;
  Alcotest.(check bool) "fresh again" false (Verlet.needs_rebuild v2 p)

let test_verlet_amortizes_over_steps () =
  (* over an MD trajectory, far fewer rebuilds than steps *)
  let e = lj_system ~n:125 ~box:6.5 ~temp:0.5 () in
  Engine.run e ~steps:10;
  let v = ref (Verlet.build ~skin:0.5 e.Engine.p ~cutoff:2.5) in
  for _ = 1 to 100 do
    Engine.run e ~steps:1;
    v := Verlet.refresh !v e.Engine.p
  done;
  Alcotest.(check bool)
    (Fmt.str "%d rebuilds over 100 steps" !v.Verlet.rebuilds)
    true
    (!v.Verlet.rebuilds < 40 && !v.Verlet.rebuilds >= 1)

(* --- performance model --- *)

let test_gromacs_comparison_shape () =
  (* the paper's Table comparisons were calibrated against serialized
     charging, so pin ~overlap:false (the overlapped pipeline is covered
     by test_overlap_step_model) *)
  let d1, g1 = Perf.step_times ~overlap:false Perf.One_gpu in
  let d4, g4 = Perf.step_times ~overlap:false Perf.Four_gpu in
  let dm, gm = Perf.step_times ~overlap:false Perf.Mummi in
  (* paper: 2.31 vs 2.88 ms; 1.3x at 4 GPUs; 2.3x inside MuMMI *)
  Alcotest.(check bool) "1-gpu ddcMD ~2.3ms" true
    (d1 > 2.0e-3 && d1 < 2.6e-3);
  Alcotest.(check bool) "1-gpu ratio in 1.1-1.4" true
    (g1 /. d1 > 1.1 && g1 /. d1 < 1.4);
  Alcotest.(check bool) "4-gpu ratio in 1.15-1.5" true
    (g4 /. d4 > 1.15 && g4 /. d4 < 1.5);
  Alcotest.(check bool) "mummi ratio in 2.0-2.8" true
    (gm /. dm > 2.0 && gm /. dm < 2.8);
  Alcotest.(check bool) "4 gpus faster than 1" true (d4 < d1);
  Alcotest.(check bool) "peak fraction > 30%" true
    (Perf.ddcmd_peak_fraction () > 0.3)

let test_overlap_step_model () =
  List.iter
    (fun (name, scen) ->
      let on = Perf.ddcmd_step_model ~overlap:true scen in
      let off = Perf.ddcmd_step_model ~overlap:false scen in
      Alcotest.(check (float 0.0)) (name ^ ": modes agree on serial cost")
        off.Perf.serial_s on.Perf.serial_s;
      (* launches hidden under the kernel pipeline (and, at 4 GPUs, the
         halo under compute): strictly lower than back-to-back *)
      Alcotest.(check bool)
        (Fmt.str "%s: overlapped %.3e < serial %.3e" name on.Perf.overlapped_s
           on.Perf.serial_s)
        true
        (on.Perf.overlapped_s < on.Perf.serial_s);
      Alcotest.(check (float 0.0)) (name ^ ": overlap charges overlapped")
        on.Perf.overlapped_s on.Perf.step_s;
      Alcotest.(check (float 0.0)) (name ^ ": serial mode charges serial")
        off.Perf.serial_s off.Perf.step_s;
      (* the serialized side of step_times is what the model calls serial *)
      let d_off, _ = Perf.step_times ~overlap:false scen in
      Alcotest.(check (float 0.0)) (name ^ ": step_times serial parity")
        off.Perf.serial_s d_off)
    [ ("1gpu", Perf.One_gpu); ("4gpu", Perf.Four_gpu); ("mummi", Perf.Mummi) ];
  (* the 4-GPU configuration also hides its halo, so it overlaps deeper
     than the single-GPU pipeline *)
  let e scen =
    let m = Perf.ddcmd_step_model ~overlap:true scen in
    m.Perf.overlapped_s /. m.Perf.serial_s
  in
  Alcotest.(check bool)
    (Fmt.str "4gpu efficiency %.3f < 1gpu %.3f" (e Perf.Four_gpu)
       (e Perf.One_gpu))
    true
    (e Perf.Four_gpu < e Perf.One_gpu)

let test_split_default_bit_identical () =
  (* the tuner contract: gpu_frac = 1.0 with the dedicated halo stream
     reproduces the unsplit kernel pipeline bitwise, in both modes and
     all three scenarios *)
  let bits = Int64.bits_of_float in
  List.iter
    (fun (name, scen) ->
      List.iter
        (fun overlap ->
          let a = Perf.ddcmd_step_model ~overlap scen in
          let b =
            Perf.ddcmd_step_model ~overlap ~gpu_frac:1.0
              ~comm:Hwsim.Split.Dedicated scen
          in
          let who = Fmt.str "%s/%s" name (if overlap then "on" else "off") in
          Alcotest.(check int64) (who ^ ": serial_s bitwise")
            (bits a.Perf.serial_s) (bits b.Perf.serial_s);
          Alcotest.(check int64) (who ^ ": overlapped_s bitwise")
            (bits a.Perf.overlapped_s) (bits b.Perf.overlapped_s);
          Alcotest.(check int64) (who ^ ": step_s bitwise")
            (bits a.Perf.step_s) (bits b.Perf.step_s);
          Alcotest.(check int) (who ^ ": same DAG size")
            (Array.length a.Perf.dag) (Array.length b.Perf.dag))
        [ true; false ])
    [ ("1gpu", Perf.One_gpu); ("4gpu", Perf.Four_gpu); ("mummi", Perf.Mummi) ]

let test_split_partial_co_executes () =
  let d = Perf.ddcmd_step_model ~overlap:true Perf.Four_gpu in
  let m = Perf.ddcmd_step_model ~overlap:true ~gpu_frac:0.5 Perf.Four_gpu in
  (* every kernel gains a host-side sibling *)
  Alcotest.(check int) "one CPU item per kernel"
    (Array.length d.Perf.dag + Perf.kernel_count)
    (Array.length m.Perf.dag);
  Alcotest.(check bool)
    (Fmt.str "half-split serial %.3e > all-GPU %.3e" m.Perf.serial_s
       d.Perf.serial_s)
    true
    (m.Perf.serial_s > d.Perf.serial_s)

let prop_lj_forces_finite =
  QCheck.Test.make ~name:"LJ eval finite for r2 in (0.5, 10)" ~count:200
    QCheck.(float_range 0.5 10.0)
    (fun r2 ->
      let pot = Potential.lennard_jones () in
      let e, f = Potential.eval pot ~si:0 ~sj:0 ~r2 in
      Float.is_finite e && Float.is_finite f)

let prop_forces_par_bits_exact =
  (* the pooled force kernel must match the serial reference to the last
     bit — forces, potential energy and virial — for random thermal
     states, under whatever ICOE_DOMAINS the suite runs with *)
  QCheck.Test.make ~name:"pooled forces bit-identical to serial" ~count:15
    QCheck.(int_range 1 1000)
    (fun seed ->
      let mk () =
        let r = Icoe_util.Rng.create seed in
        let n = 64 + (8 * Icoe_util.Rng.int r 12) in
        let p = Particles.create ~n ~box:(5.0 +. Icoe_util.Rng.float r) in
        Particles.lattice_init p;
        Particles.thermalize p ~rng:r ~temp:(0.3 +. Icoe_util.Rng.float r);
        Engine.create ~dt:0.004 ~potential:(Potential.lennard_jones ()) p
      in
      let e_par = mk () and e_seq = mk () in
      Engine.compute_forces e_par;
      Engine.compute_forces_seq e_seq;
      let bits_eq a b =
        Array.for_all2
          (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
          (Fbuf.to_array a) (Fbuf.to_array b)
      in
      bits_eq e_par.Engine.p.Particles.fx e_seq.Engine.p.Particles.fx
      && bits_eq e_par.Engine.p.Particles.fy e_seq.Engine.p.Particles.fy
      && bits_eq e_par.Engine.p.Particles.fz e_seq.Engine.p.Particles.fz
      && Int64.equal
           (Int64.bits_of_float e_par.Engine.pot_energy)
           (Int64.bits_of_float e_seq.Engine.pot_energy)
      && Int64.equal
           (Int64.bits_of_float e_par.Engine.virial)
           (Int64.bits_of_float e_seq.Engine.virial)
      && e_par.Engine.pair_count = e_seq.Engine.pair_count)

let () =
  Alcotest.run "ddcmd"
    [
      ( "particles",
        [
          Alcotest.test_case "lattice" `Quick test_lattice_no_overlap;
          Alcotest.test_case "min image" `Quick test_min_image;
          Alcotest.test_case "thermalize" `Quick test_thermalize_temperature;
        ] );
      ( "potential",
        [
          Alcotest.test_case "lj minimum" `Quick test_lj_minimum;
          Alcotest.test_case "lj cutoff" `Quick test_lj_cutoff_continuity;
          Alcotest.test_case "exp6 core" `Quick test_exp6_repulsive_core;
          Alcotest.test_case "martini matrix" `Quick test_martini_species_matrix;
          QCheck_alcotest.to_alcotest prop_lj_forces_finite;
        ] );
      ( "cells",
        [
          Alcotest.test_case "matches all-pairs" `Quick test_cells_match_all_pairs;
          Alcotest.test_case "negative coordinate clamped" `Quick
            test_cells_negative_coordinate_clamped;
        ] );
      ( "bonded",
        [
          Alcotest.test_case "bond direction" `Quick test_bond_force_direction;
          Alcotest.test_case "angle restoring" `Quick test_angle_force_restores;
        ] );
      ( "engine",
        [
          Alcotest.test_case "nve energy" `Slow test_nve_energy_conservation;
          Alcotest.test_case "nve momentum" `Quick test_nve_momentum_conservation;
          Alcotest.test_case "langevin" `Slow test_langevin_thermostat;
          Alcotest.test_case "berendsen" `Quick test_berendsen_compresses;
          Alcotest.test_case "shake" `Quick test_shake_maintains_distance;
          Alcotest.test_case "martini patch" `Quick test_martini_membrane_patch_stable;
          QCheck_alcotest.to_alcotest prop_forces_par_bits_exact;
        ] );
      ("rdf", [ Alcotest.test_case "fluid structure" `Slow test_rdf_structure ]);
      ("vacf", [ Alcotest.test_case "decay + green-kubo" `Slow test_vacf_decays ]);
      ( "verlet",
        [
          Alcotest.test_case "matches cells" `Quick test_verlet_matches_cells;
          Alcotest.test_case "rebuild criterion" `Quick test_verlet_rebuild_criterion;
          Alcotest.test_case "amortizes" `Slow test_verlet_amortizes_over_steps;
        ] );
      ( "perf",
        [
          Alcotest.test_case "gromacs comparison" `Quick test_gromacs_comparison_shape;
          Alcotest.test_case "overlap step model" `Quick test_overlap_step_model;
          Alcotest.test_case "split default bit-identical" `Quick
            test_split_default_bit_identical;
          Alcotest.test_case "split co-executes" `Quick
            test_split_partial_co_executes;
        ] );
    ]
