(* Tests for vectors, dense LU, CSR, and Krylov solvers. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))

(* --- Vec --- *)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] in
  let y = [| 4.0; 5.0; 6.0 |] in
  check_float "dot" 32.0 (Vec.dot x y);
  check_float "nrm2" (sqrt 14.0) (Vec.nrm2 x);
  check_float "nrm_inf" 3.0 (Vec.nrm_inf x);
  let z = Vec.sub y x in
  Alcotest.(check (array (float 1e-12))) "sub" [| 3.0; 3.0; 3.0 |] z;
  let y2 = Array.copy y in
  Vec.axpy 2.0 x y2;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.0; 9.0; 12.0 |] y2;
  let y3 = Array.copy y in
  Vec.xpby x 2.0 y3;
  Alcotest.(check (array (float 1e-12))) "xpby" [| 9.0; 12.0; 15.0 |] y3

let test_wrms () =
  let x = [| 3.0; 4.0 |] and w = [| 1.0; 1.0 |] in
  check_float "wrms" (sqrt 12.5) (Vec.wrms x w)

(* --- Dense --- *)

let test_lu_solves_random_system () =
  let rng = Icoe_util.Rng.create 11 in
  let n = 25 in
  let a = Dense.init n n (fun i j ->
      if i = j then 10.0 +. Icoe_util.Rng.float rng
      else Icoe_util.Rng.uniform rng (-1.0) 1.0)
  in
  let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
  let b = Dense.matvec a x_true in
  let x = Dense.solve a b in
  Alcotest.(check bool) "solution accurate" true
    (Icoe_util.Stats.max_abs_diff x x_true < 1e-9)

let test_lu_pivoting () =
  (* system that requires pivoting: zero in the (0,0) position *)
  let a = Dense.init 2 2 (fun i j ->
      match (i, j) with 0, 0 -> 0.0 | 0, 1 -> 1.0 | 1, 0 -> 1.0 | _ -> 1.0)
  in
  let x = Dense.solve a [| 2.0; 3.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lu_singular_raises () =
  let a = Dense.init 3 3 (fun _ _ -> 1.0) in
  Alcotest.check_raises "singular" (Dense.Singular 1) (fun () ->
      ignore (Dense.lu_factor a))

let test_matmul_identity () =
  let rng = Icoe_util.Rng.create 12 in
  let a = Dense.init 6 6 (fun _ _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let i6 = Dense.identity 6 in
  let ai = Dense.matmul a i6 in
  Alcotest.(check bool) "A*I = A" true
    (Icoe_util.Stats.max_abs_diff ai.Dense.a a.Dense.a < 1e-14)

let test_transpose_involution () =
  let a = Dense.init 3 5 (fun i j -> float_of_int ((i * 5) + j)) in
  let att = Dense.transpose (Dense.transpose a) in
  Alcotest.(check bool) "(A^T)^T = A" true (att.Dense.a = a.Dense.a)

(* --- CSR --- *)

let test_csr_spmv_matches_dense () =
  let rng = Icoe_util.Rng.create 13 in
  let d = Dense.init 8 6 (fun _ _ ->
      if Icoe_util.Rng.float rng < 0.4 then Icoe_util.Rng.uniform rng (-2.0) 2.0
      else 0.0)
  in
  let s = Csr.of_dense d in
  let x = Array.init 6 (fun i -> float_of_int i -. 2.5) in
  let yd = Dense.matvec d x and ys = Csr.spmv s x in
  Alcotest.(check bool) "spmv matches dense" true
    (Icoe_util.Stats.max_abs_diff yd ys < 1e-13)

let test_csr_triplets_duplicates_summed () =
  let s = Csr.of_triplets ~m:2 ~n:2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, 5.0) ] in
  let d = Csr.to_dense s in
  check_float "summed" 3.0 (Dense.get d 0 0);
  check_float "single" 5.0 (Dense.get d 1 1);
  Alcotest.(check int) "nnz" 2 (Csr.nnz s)

let test_csr_triplets_column_order () =
  (* regression for the typed column sort in of_triplets: the row comes
     back in column order even when the float payloads would mislead a
     polymorphic tuple compare (NaN, infinities, signed zeros) *)
  let nan = Float.nan in
  let s =
    Csr.of_triplets ~m:1 ~n:5
      [ (0, 3, nan); (0, 1, infinity); (0, 4, -0.0); (0, 0, -1.0); (0, 2, 0.5) ]
  in
  Alcotest.(check (array int)) "columns sorted" [| 0; 1; 2; 3; 4 |] s.Csr.col_idx;
  Alcotest.(check bool) "NaN payload kept at its column" true
    (Float.is_nan (Icoe_util.Fbuf.get s.Csr.values 3));
  check_float "payload follows its column" 0.5 (Icoe_util.Fbuf.get s.Csr.values 2);
  (* duplicates on the same column still collapse into one summed entry *)
  let d =
    Csr.of_triplets ~m:1 ~n:3 [ (0, 2, 4.0); (0, 0, 1.0); (0, 2, -1.5) ]
  in
  Alcotest.(check int) "nnz after collapse" 2 (Csr.nnz d);
  check_float "dup sum" 2.5 (Dense.get (Csr.to_dense d) 0 2)

let test_csr_transpose () =
  let s = Csr.of_triplets ~m:2 ~n:3 [ (0, 1, 2.0); (1, 0, 3.0); (1, 2, 4.0) ] in
  let st = Csr.transpose s in
  let d = Csr.to_dense st in
  check_float "t(0,1)" 3.0 (Dense.get d 0 1);
  check_float "t(1,0)" 2.0 (Dense.get d 1 0);
  check_float "t(2,1)" 4.0 (Dense.get d 2 1)

let test_csr_matmul_matches_dense () =
  let rng = Icoe_util.Rng.create 14 in
  let da = Dense.init 7 5 (fun _ _ ->
      if Icoe_util.Rng.float rng < 0.5 then Icoe_util.Rng.uniform rng (-1.0) 1.0
      else 0.0)
  in
  let db = Dense.init 5 6 (fun _ _ ->
      if Icoe_util.Rng.float rng < 0.5 then Icoe_util.Rng.uniform rng (-1.0) 1.0
      else 0.0)
  in
  let c_dense = Dense.matmul da db in
  let c_sparse = Csr.matmul (Csr.of_dense da) (Csr.of_dense db) in
  Alcotest.(check bool) "sparse matmul matches dense" true
    (Icoe_util.Stats.max_abs_diff (Csr.to_dense c_sparse).Dense.a c_dense.Dense.a
    < 1e-13)

let test_laplacian_row_sums () =
  let l = Csr.laplacian_2d 5 5 in
  (* interior rows sum to 0; boundary rows are positive (Dirichlet) *)
  let x = Array.make 25 1.0 in
  let y = Csr.spmv l x in
  check_float "interior row sum" 0.0 y.(12);
  Alcotest.(check bool) "corner row sum positive" true (y.(0) > 0.0)

let test_csr_diag () =
  let l = Csr.laplacian_3d 3 3 3 in
  let d = Csr.diag l in
  Alcotest.(check bool) "diag all 6" true (Array.for_all (fun v -> v = 6.0) d)

(* --- Krylov --- *)

let metric_value name labels =
  Option.value ~default:0.0 (Icoe_obs.Metrics.value ~labels name)

let laplacian_system n =
  let a = Csr.laplacian_2d n n in
  let rng = Icoe_util.Rng.create 15 in
  let x_true = Array.init (n * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let b = Csr.spmv a x_true in
  (a, b, x_true)

let test_cg_on_laplacian () =
  let a, b, x_true = laplacian_system 12 in
  let it0 = metric_value "krylov_iterations_total" [ ("method", "cg") ] in
  let sv0 = metric_value "krylov_solves_total" [ ("method", "cg") ] in
  let r = Krylov.cg ~tol:1e-12 ~max_iter:2000 ~op:(Csr.spmv a) b
      (Array.make (Array.length b) 0.0)
  in
  Alcotest.(check bool) "converged" true r.Krylov.converged;
  Alcotest.(check bool) "accurate" true
    (Icoe_util.Stats.max_abs_diff r.Krylov.x x_true < 1e-8);
  (* the metrics registry must agree with the returned result *)
  Alcotest.(check (float 1e-9)) "registry counted the iterations"
    (float_of_int r.Krylov.iters)
    (metric_value "krylov_iterations_total" [ ("method", "cg") ] -. it0);
  Alcotest.(check (float 1e-9)) "registry counted the solve" 1.0
    (metric_value "krylov_solves_total" [ ("method", "cg") ] -. sv0)

let test_pcg_jacobi_faster () =
  let a, b, _ = laplacian_system 16 in
  let d = Csr.diag a in
  let x0 = Array.make (Array.length b) 0.0 in
  let plain = Krylov.cg ~tol:1e-10 ~max_iter:5000 ~op:(Csr.spmv a) b x0 in
  let pre =
    Krylov.pcg ~tol:1e-10 ~max_iter:5000 ~op:(Csr.spmv a)
      ~precond:(fun r -> Array.mapi (fun i ri -> ri /. d.(i)) r)
      b x0
  in
  Alcotest.(check bool) "both converge" true
    (plain.Krylov.converged && pre.Krylov.converged);
  (* Jacobi = diagonal scaling doesn't help a constant-diagonal Laplacian,
     but must not hurt by more than rounding *)
  Alcotest.(check bool) "pcg iter count sane" true
    (pre.Krylov.iters <= plain.Krylov.iters + 2)

let test_gmres_nonsymmetric () =
  let rng = Icoe_util.Rng.create 16 in
  let n = 30 in
  let d = Dense.init n n (fun i j ->
      if i = j then 8.0
      else if Icoe_util.Rng.float rng < 0.3 then Icoe_util.Rng.uniform rng (-1.0) 1.0
      else 0.0)
  in
  let a = Csr.of_dense d in
  let x_true = Array.init n (fun i -> sin (float_of_int i)) in
  let b = Csr.spmv a x_true in
  let r = Krylov.gmres ~tol:1e-12 ~max_iter:500 ~restart:20 ~op:(Csr.spmv a) b
      (Array.make n 0.0)
  in
  Alcotest.(check bool) "gmres converged" true r.Krylov.converged;
  Alcotest.(check bool) "gmres accurate" true
    (Icoe_util.Stats.max_abs_diff r.Krylov.x x_true < 1e-8)

let test_bicgstab_nonsymmetric () =
  let rng = Icoe_util.Rng.create 17 in
  let n = 30 in
  let d = Dense.init n n (fun i j ->
      if i = j then 8.0
      else if Icoe_util.Rng.float rng < 0.3 then Icoe_util.Rng.uniform rng (-1.0) 1.0
      else 0.0)
  in
  let a = Csr.of_dense d in
  let x_true = Array.init n (fun i -> cos (float_of_int i)) in
  let b = Csr.spmv a x_true in
  let r = Krylov.bicgstab ~tol:1e-12 ~max_iter:500 ~op:(Csr.spmv a) b
      (Array.make n 0.0)
  in
  Alcotest.(check bool) "bicgstab converged" true r.Krylov.converged;
  Alcotest.(check bool) "bicgstab accurate" true
    (Icoe_util.Stats.max_abs_diff r.Krylov.x x_true < 1e-7)

let test_gmres_with_preconditioner () =
  let a, b, x_true = laplacian_system 10 in
  let d = Csr.diag a in
  let r =
    Krylov.gmres ~tol:1e-12 ~max_iter:2000 ~restart:50 ~op:(Csr.spmv a)
      ~precond:(fun r -> Array.mapi (fun i ri -> ri /. d.(i)) r)
      b
      (Array.make (Array.length b) 0.0)
  in
  Alcotest.(check bool) "converged" true r.Krylov.converged;
  Alcotest.(check bool) "accurate" true
    (Icoe_util.Stats.max_abs_diff r.Krylov.x x_true < 1e-7)

let prop_lu_roundtrip =
  QCheck.Test.make ~name:"LU solve recovers random diag-dominant systems"
    ~count:30
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let n = 3 + Icoe_util.Rng.int rng 12 in
      let a = Dense.init n n (fun i j ->
          if i = j then float_of_int n +. 1.0
          else Icoe_util.Rng.uniform rng (-1.0) 1.0)
      in
      let x_true = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-5.0) 5.0) in
      let b = Dense.matvec a x_true in
      let x = Dense.solve a b in
      Icoe_util.Stats.max_abs_diff x x_true < 1e-8)

let prop_csr_dense_roundtrip =
  QCheck.Test.make ~name:"csr <-> dense roundtrip" ~count:30
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let m = 1 + Icoe_util.Rng.int rng 10 and n = 1 + Icoe_util.Rng.int rng 10 in
      let d = Dense.init m n (fun _ _ ->
          if Icoe_util.Rng.float rng < 0.4 then Icoe_util.Rng.uniform rng (-3.0) 3.0
          else 0.0)
      in
      let d2 = Csr.to_dense (Csr.of_dense d) in
      Icoe_util.Stats.max_abs_diff d2.Dense.a d.Dense.a < 1e-14)

let bits_equal_arrays a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let prop_spmv_par_bits_exact =
  (* the pooled SpMV must agree with the serial reference to the last
     bit (Int64.bits_of_float), for any operator scaling and any
     ICOE_DOMAINS the suite runs under *)
  QCheck.Test.make ~name:"pooled SpMV bit-identical to serial" ~count:25
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let nx = 24 + Icoe_util.Rng.int rng 12 in
      let ny = 24 + Icoe_util.Rng.int rng 12 in
      let a = Csr.laplacian_2d nx ny in
      let n = nx * ny in
      assert (n >= Csr.spmv_par_threshold);
      let d = Array.init n (fun _ -> Icoe_util.Rng.uniform rng 0.1 2.0) in
      let a = Csr.scale_rows a d in
      let x = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-5.0) 5.0) in
      let y_par = Array.make n nan and y_seq = Array.make n nan in
      Csr.spmv_into a x y_par;
      Csr.spmv_seq_into a x y_seq;
      bits_equal_arrays y_par y_seq)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "wrms" `Quick test_wrms;
        ] );
      ( "dense",
        [
          Alcotest.test_case "lu random" `Quick test_lu_solves_random_system;
          Alcotest.test_case "lu pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "lu singular" `Quick test_lu_singular_raises;
          Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
          Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
          QCheck_alcotest.to_alcotest prop_lu_roundtrip;
        ] );
      ( "csr",
        [
          Alcotest.test_case "spmv vs dense" `Quick test_csr_spmv_matches_dense;
          Alcotest.test_case "triplets dedupe" `Quick test_csr_triplets_duplicates_summed;
          Alcotest.test_case "triplets column order" `Quick
            test_csr_triplets_column_order;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "matmul vs dense" `Quick test_csr_matmul_matches_dense;
          Alcotest.test_case "laplacian rows" `Quick test_laplacian_row_sums;
          Alcotest.test_case "diag" `Quick test_csr_diag;
          QCheck_alcotest.to_alcotest prop_csr_dense_roundtrip;
          QCheck_alcotest.to_alcotest prop_spmv_par_bits_exact;
        ] );
      ( "krylov",
        [
          Alcotest.test_case "cg laplacian" `Quick test_cg_on_laplacian;
          Alcotest.test_case "pcg jacobi" `Quick test_pcg_jacobi_faster;
          Alcotest.test_case "gmres" `Quick test_gmres_nonsymmetric;
          Alcotest.test_case "bicgstab" `Quick test_bicgstab_nonsymmetric;
          Alcotest.test_case "gmres precond" `Quick test_gmres_with_preconditioner;
        ] );
    ]
