(* Tests for the Cardioid analog: Melodee DSL transforms, the ionic model,
   and the monodomain tissue solver with its placement study. *)

open Cardioid

let check_float = Alcotest.(check (float 1e-9))

(* --- melodee --- *)

let test_eval_basic () =
  let e = Melodee.(Add (Mul (Var 0, Const 2.0), Exp (Const 0.0))) in
  check_float "2x + e^0" 7.0 (Melodee.eval [| 3.0 |] e)

let test_compile_matches_eval () =
  let rng = Icoe_util.Rng.create 51 in
  let e =
    Melodee.(
      Div
        ( Sub (Exp (Mul (Var 0, Const 0.3)), Const 1.0),
          Add (Const 1.0, Mul (Var 1, Var 1)) ))
  in
  let f = Melodee.compile e in
  for _ = 1 to 50 do
    let env = [| Icoe_util.Rng.uniform rng (-2.0) 2.0; Icoe_util.Rng.uniform rng (-2.0) 2.0 |] in
    check_float "compiled = eval" (Melodee.eval env e) (f env)
  done

let test_constant_fold () =
  let e = Melodee.(Add (Mul (Const 2.0, Const 3.0), Var 0)) in
  (match Melodee.constant_fold e with
  | Melodee.Add (Melodee.Const 6.0, Melodee.Var 0) -> ()
  | _ -> Alcotest.fail "fold failed");
  (* folding reduces op count *)
  let big = Melodee.(Mul (Exp (Const 1.0), Add (Var 0, Mul (Const 0.0, Var 1)))) in
  let folded = Melodee.constant_fold big in
  let c1, e1 = Melodee.op_count big in
  let c2, e2 = Melodee.op_count folded in
  Alcotest.(check bool) "fewer ops after fold" true (c2 + e2 < c1 + e1);
  Alcotest.(check int) "exp eliminated" 0 e2

let test_fold_preserves_semantics () =
  let rng = Icoe_util.Rng.create 52 in
  let e =
    Melodee.(
      Add
        ( Mul (Exp (Const 0.5), Var 0),
          Div (Const 3.0, Add (Const 1.0, Exp (Neg (Var 1)))) ))
  in
  let folded = Melodee.constant_fold e in
  for _ = 1 to 30 do
    let env = [| Icoe_util.Rng.uniform rng (-3.0) 3.0; Icoe_util.Rng.uniform rng (-3.0) 3.0 |] in
    Alcotest.(check (float 1e-12)) "fold preserves value"
      (Melodee.eval env e) (Melodee.eval env folded)
  done

let test_rational_fit_accuracy () =
  (* 4/4 rational approximation of exp on the model's range: relative error
     must be small enough for reaction kernels (the paper found it
     "essential for top performance" and accurate enough for physiology) *)
  let lo, hi = (-5.0, 5.0) in
  let p, q = Melodee.rational_fit ~lo ~hi ~np:4 ~nq:4 exp in
  let e = Melodee.Ratpoly (p, q, Melodee.Var 0) in
  let worst = ref 0.0 in
  for k = 0 to 200 do
    let x = lo +. (float_of_int k /. 200.0 *. (hi -. lo)) in
    let approx = Melodee.eval [| x |] e in
    let rel = Float.abs (approx -. exp x) /. exp x in
    if rel > !worst then worst := rel
  done;
  Alcotest.(check bool) (Fmt.str "worst rel err %.2e < 2%%" !worst) true (!worst < 0.02)

let test_replace_exp_removes_exp () =
  let e = Melodee.(Add (Exp (Var 0), Exp (Neg (Var 0)))) in
  let r = Melodee.replace_exp ~lo:(-3.0) ~hi:3.0 e in
  let _, expensive = Melodee.op_count r in
  Alcotest.(check int) "no exp calls left" 0 expensive

let test_variant_costs_descend () =
  (* rational replacement cuts flops; constant folding cuts loads *)
  let f_libm = Ionic.variant_flops Ionic.Libm in
  let f_rat = Ionic.variant_flops Ionic.Rational in
  Alcotest.(check bool) "rational cheaper than libm" true (f_rat < f_libm);
  let l_rat = Ionic.variant_loads Ionic.Rational in
  let l_fold = Ionic.variant_loads Ionic.Rational_folded in
  Alcotest.(check bool) "compile-time constants cut loads" true
    (l_fold * 3 < l_rat)

(* --- ionic model --- *)

let action_potential_stats trace =
  let peak = Array.fold_left max neg_infinity trace in
  let final = trace.(Array.length trace - 1) in
  (peak, final)

let test_action_potential_libm () =
  let deriv = Ionic.compile_variant Ionic.Libm in
  let trace = Ionic.single_cell_trace deriv in
  let peak, final = action_potential_stats trace in
  Alcotest.(check bool) "upstroke above 0 mV" true (peak > 0.0);
  Alcotest.(check bool) "repolarizes toward rest" true (final < -60.0);
  Alcotest.(check bool) "no blow-up" true (Array.for_all Float.is_finite trace)

let test_no_stimulus_stays_at_rest () =
  let deriv = Ionic.compile_variant Ionic.Libm in
  let trace = Ionic.single_cell_trace ~stim:0.0 deriv in
  Alcotest.(check bool) "stays near rest" true
    (Array.for_all (fun v -> Float.abs (v -. Ionic.v_rest) < 3.0) trace)

let test_rational_variant_matches_libm () =
  (* the DSL's rational replacement must not change the physiology *)
  let t_libm = Ionic.single_cell_trace (Ionic.compile_variant Ionic.Libm) in
  let t_rat = Ionic.single_cell_trace (Ionic.compile_variant Ionic.Rational) in
  let t_fold =
    Ionic.single_cell_trace (Ionic.compile_variant Ionic.Rational_folded)
  in
  let p1, _ = action_potential_stats t_libm in
  let p2, _ = action_potential_stats t_rat in
  let p3, _ = action_potential_stats t_fold in
  Alcotest.(check bool) "rational peak within 2 mV" true (Float.abs (p2 -. p1) < 2.0);
  Alcotest.(check (float 1e-9)) "folded = rational exactly" p2 p3

(* --- monodomain --- *)

let test_wave_propagation () =
  let m = Monodomain.create ~nx:24 ~ny:8 ~variant:Ionic.Libm () in
  Monodomain.stimulate m ~ilo:0 ~ihi:2 ~jlo:0 ~jhi:7 ~amplitude:60.0;
  (* sample densely: record first-activation step for near and far cells *)
  let near_t = ref (-1) and far_t = ref (-1) in
  for s = 1 to 40 do
    Monodomain.run m ~steps:25;
    if s = 6 then Monodomain.clear_stimulus m;
    if !near_t < 0 && Monodomain.activated m ~i:1 ~j:4 then near_t := s * 25;
    if !far_t < 0 && Monodomain.activated m ~i:23 ~j:4 then far_t := s * 25
  done;
  Alcotest.(check bool) "near end activated" true (!near_t >= 0);
  Alcotest.(check bool) "wave reached far end" true (!far_t >= 0);
  Alcotest.(check bool) "finite conduction delay" true (!far_t > !near_t);
  (* tissue returns to rest after the wave passes *)
  Monodomain.run m ~steps:4000;
  Alcotest.(check bool) "repolarized" false (Monodomain.activated m ~i:12 ~j:4)

let test_no_stimulus_no_wave () =
  let m = Monodomain.create ~nx:12 ~ny:12 ~variant:Ionic.Rational () in
  Monodomain.run m ~steps:2000;
  Alcotest.(check bool) "quiescent tissue stays quiet" false
    (Monodomain.activated m ~i:6 ~j:6)

let test_placement_all_gpu_wins () =
  (* Sec 4.1: data transfer costs make the split placement lose; the team
     moved everything to the GPU *)
  let cells = 1_000_000 in
  let t_gpu = Monodomain.time_per_step ~cells Monodomain.All_gpu in
  let t_split = Monodomain.time_per_step ~cells Monodomain.Split_cpu_gpu in
  let t_cpu = Monodomain.time_per_step ~cells Monodomain.All_cpu in
  Alcotest.(check bool) "all-gpu beats split" true (t_gpu < t_split);
  Alcotest.(check bool) "all-gpu beats cpu" true (t_gpu < t_cpu)

let test_rational_speeds_up_gpu_reaction () =
  let cells = 1_000_000 in
  let t_libm = Monodomain.time_per_step ~variant:Ionic.Libm ~cells Monodomain.All_gpu in
  let t_fold =
    Monodomain.time_per_step ~variant:Ionic.Rational_folded ~cells Monodomain.All_gpu
  in
  Alcotest.(check bool) "DSL variant faster end-to-end" true (t_fold < t_libm)

let prop_rational_fit_various_ranges =
  QCheck.Test.make ~name:"rational fit of exp accurate on random subranges"
    ~count:20
    QCheck.(pair (float_range (-8.0) 0.0) (float_range 0.5 6.0))
    (fun (lo, width) ->
      let hi = lo +. width in
      let p, q = Melodee.rational_fit ~lo ~hi ~np:4 ~nq:4 exp in
      let e = Melodee.Ratpoly (p, q, Melodee.Var 0) in
      let ok = ref true in
      for k = 0 to 50 do
        let x = lo +. (float_of_int k /. 50.0 *. (hi -. lo)) in
        let rel = Float.abs (Melodee.eval [| x |] e -. exp x) /. exp x in
        if rel > 0.05 then ok := false
      done;
      !ok)

let prop_reaction_par_bits_exact =
  (* the pooled stack-program reaction kernel must match both the serial
     path and the boxed closure-tree oracle to the last bit, for random
     grids and stimuli, under whatever ICOE_DOMAINS the suite runs with *)
  QCheck.Test.make ~name:"pooled reaction bit-identical to serial and oracle"
    ~count:15
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let nx = 8 + Icoe_util.Rng.int rng 16 in
      let ny = 6 + Icoe_util.Rng.int rng 12 in
      let ihi = Icoe_util.Rng.int rng nx in
      let jhi = Icoe_util.Rng.int rng ny in
      let amplitude = Icoe_util.Rng.uniform rng 20.0 80.0 in
      let steps = 1 + Icoe_util.Rng.int rng 3 in
      let mk () =
        let m = Monodomain.create ~nx ~ny () in
        Monodomain.stimulate m ~ilo:0 ~ihi ~jlo:0 ~jhi ~amplitude;
        m
      in
      let m_par = mk () and m_seq = mk () and m_ref = mk () in
      for _ = 1 to steps do
        Monodomain.reaction_step m_par;
        Monodomain.reaction_step_seq m_seq;
        Monodomain.reaction_step_ref m_ref
      done;
      let bits_eq a b =
        Array.for_all2
          (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
          (Icoe_util.Fbuf.to_array a) (Icoe_util.Fbuf.to_array b)
      in
      bits_eq m_par.Monodomain.state m_seq.Monodomain.state
      && bits_eq m_par.Monodomain.v m_seq.Monodomain.v
      && bits_eq m_par.Monodomain.state m_ref.Monodomain.state
      && bits_eq m_par.Monodomain.v m_ref.Monodomain.v)

let () =
  Alcotest.run "cardioid"
    [
      ( "melodee",
        [
          Alcotest.test_case "eval" `Quick test_eval_basic;
          Alcotest.test_case "compile = eval" `Quick test_compile_matches_eval;
          Alcotest.test_case "constant fold" `Quick test_constant_fold;
          Alcotest.test_case "fold semantics" `Quick test_fold_preserves_semantics;
          Alcotest.test_case "rational fit" `Quick test_rational_fit_accuracy;
          Alcotest.test_case "replace exp" `Quick test_replace_exp_removes_exp;
          Alcotest.test_case "variant costs" `Quick test_variant_costs_descend;
          QCheck_alcotest.to_alcotest prop_rational_fit_various_ranges;
        ] );
      ( "ionic",
        [
          Alcotest.test_case "action potential" `Quick test_action_potential_libm;
          Alcotest.test_case "rest stability" `Quick test_no_stimulus_stays_at_rest;
          Alcotest.test_case "variants agree" `Quick test_rational_variant_matches_libm;
        ] );
      ( "monodomain",
        [
          Alcotest.test_case "wave propagation" `Slow test_wave_propagation;
          Alcotest.test_case "quiescence" `Quick test_no_stimulus_no_wave;
          Alcotest.test_case "placement" `Quick test_placement_all_gpu_wins;
          Alcotest.test_case "DSL speedup" `Quick test_rational_speeds_up_gpu_reaction;
          QCheck_alcotest.to_alcotest prop_reaction_par_bits_exact;
        ] );
    ]
