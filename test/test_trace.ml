(* Tests for the span tracer: nesting, clock agreement, rollups, counter
   annotation, and the Chrome trace-event exporter. *)

open Hwsim

let check_float = Alcotest.(check (float 1e-12))

(* --- span nesting --- *)

let test_nesting () =
  let tr = Trace.create ~root:"exp" (Clock.create ()) in
  Trace.push tr "phase1";
  Trace.charge tr ~phase:"k1" 1.0;
  Trace.charge tr ~phase:"k2" 2.0;
  Trace.pop tr;
  Trace.with_span tr ~device:"V100" "phase2" (fun () ->
      Trace.charge tr ~device:"V100" ~phase:"k3" 3.0);
  let root = Trace.root tr in
  Alcotest.(check int) "two phases under root" 2 (List.length root.Trace.children);
  Alcotest.(check int) "five spans total" 5 (Trace.span_count tr);
  (* children are stored newest first *)
  let phase2 = List.hd root.Trace.children in
  Alcotest.(check string) "second phase" "phase2" phase2.Trace.name;
  Alcotest.(check int) "one kernel inside" 1 (List.length phase2.Trace.children);
  check_float "phase2 covers its charge" 3.0
    (phase2.Trace.stop -. phase2.Trace.start);
  let phase1 = List.nth root.Trace.children 1 in
  check_float "phase1 starts at 0" 0.0 phase1.Trace.start;
  check_float "phase1 covers both charges" 3.0 phase1.Trace.stop

let test_with_span_closes_on_exception () =
  let tr = Trace.create (Clock.create ()) in
  (try Trace.with_span tr "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  (* the span must have been closed: a new push goes under the root *)
  Trace.push tr "after";
  Trace.pop tr;
  Alcotest.(check int) "both spans under root" 2
    (List.length (Trace.root tr).Trace.children)

let test_pop_root_rejected () =
  let tr = Trace.create (Clock.create ()) in
  Alcotest.(check bool) "pop without push rejected" true
    (match Trace.pop tr with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- clock agreement --- *)

let test_rollup_matches_clock () =
  let clock = Clock.create () in
  let tr = Trace.create clock in
  Trace.with_span tr "outer" (fun () ->
      Trace.charge tr ~phase:"compute" 1.5;
      Trace.charge tr ~phase:"shuffle" 0.5;
      Trace.with_span tr "inner" (fun () -> Trace.charge tr ~phase:"compute" 2.0));
  check_float "trace total = clock total" (Clock.total clock) (Trace.total tr);
  List.iter
    (fun r ->
      check_float ("phase " ^ r.Trace.key) (Clock.phase clock r.Trace.key)
        r.Trace.seconds)
    (Trace.by_phase tr);
  Alcotest.(check int) "phases found" 2 (List.length (Trace.by_phase tr));
  (* leaf-only aggregation: phase sums add up to the clock total, i.e.
     nested spans never double-count *)
  let s = List.fold_left (fun a r -> a +. r.Trace.seconds) 0.0 (Trace.by_phase tr) in
  check_float "leaves sum to total" (Clock.total clock) s

let test_fig2_cluster_trace_matches_breakdown () =
  (* the real instrumented path: every Sparkle.Cluster charge must land in
     the trace, phase for phase, matching the clock the harness prints *)
  let cluster = Lda.Fig2.run ~optimized:false Lda.Fig2.wikipedia in
  let tr = Sparkle.Cluster.trace cluster in
  let breakdown = Sparkle.Cluster.breakdown cluster in
  let rollup = Trace.by_phase tr in
  Alcotest.(check int) "same phase count" (List.length breakdown)
    (List.length rollup);
  List.iter
    (fun (phase, secs) ->
      let r = List.find (fun r -> r.Trace.key = phase) rollup in
      Alcotest.(check (float 1e-9)) ("phase " ^ phase) secs r.Trace.seconds)
    breakdown;
  Alcotest.(check (float 1e-9)) "total" (Sparkle.Cluster.elapsed cluster)
    (Trace.total tr)

(* --- kernel charges and rollups --- *)

let test_charge_kernel_attributes () =
  let tr = Trace.create (Clock.create ()) in
  let k = Kernel.make ~name:"stream" ~flops:1e9 ~bytes:24e9 () in
  let dt = Trace.charge_kernel tr Device.v100 k in
  check_float "priced like Roofline.time" (Roofline.time Device.v100 k) dt;
  let sp = List.hd (Trace.root tr).Trace.children in
  Alcotest.(check bool) "bandwidth bound recorded" true
    (sp.Trace.bound = Some Roofline.Bandwidth_bound);
  check_float "flops attribute" 1e9 sp.Trace.flops;
  Alcotest.(check (option string)) "device attribute" (Some "V100")
    sp.Trace.device;
  let dev = Trace.by_device tr in
  Alcotest.(check int) "one device" 1 (List.length dev);
  Alcotest.(check string) "keyed by device name" "V100"
    (List.hd dev).Trace.key

let test_top_spans_sorted () =
  let tr = Trace.create (Clock.create ()) in
  Trace.charge tr ~phase:"short" 1.0;
  Trace.charge tr ~phase:"long" 5.0;
  Trace.charge tr ~phase:"mid" 3.0;
  let top = Trace.top_spans ~n:2 tr in
  Alcotest.(check (list string)) "longest first" [ "long"; "mid" ]
    (List.map (fun s -> s.Trace.name) top)

let test_annotate_counters () =
  let tr = Trace.create (Clock.create ()) in
  let c = Counters.create Device.power9 in
  Counters.sample c ~time:0.0 ~bytes:0.0;
  Counters.sample c ~time:0.1 ~bytes:(0.8 *. 120.0e9 *. 0.1);
  Trace.with_span tr "stream" (fun () ->
      Trace.charge tr ~phase:"triad" 0.1;
      Trace.annotate_counters tr c);
  let sp = List.hd (Trace.root tr).Trace.children in
  match sp.Trace.bw_util with
  | Some u -> Alcotest.(check (float 1e-9)) "utilization recorded" 0.8 u
  | None -> Alcotest.fail "bw_util not recorded"

(* --- rollup tables --- *)

let test_tables_render () =
  let tr = Trace.create (Clock.create ()) in
  ignore (Trace.charge_kernel tr Device.v100
            (Kernel.make ~name:"k" ~flops:1e12 ~bytes:1e6 ()));
  let dev = Icoe_util.Table.render (Trace.device_table tr) in
  let ph = Icoe_util.Table.render (Trace.phase_table tr) in
  let sp = Icoe_util.Table.render (Trace.span_table tr) in
  Alcotest.(check bool) "device table mentions V100" true
    (Astring.String.is_infix ~affix:"V100" dev);
  Alcotest.(check bool) "phase table mentions kernel" true
    (Astring.String.is_infix ~affix:"k" ph);
  Alcotest.(check bool) "span table mentions bound" true
    (Astring.String.is_infix ~affix:"compute" sp)

(* --- Chrome trace-event export --- *)

(* Structural JSON scan: brackets/braces balanced outside string
   literals, and the document is a non-empty array. *)
let json_balanced s =
  let obj = ref 0 and arr = ref 0 and in_str = ref false and esc = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !in_str then
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' -> incr obj
        | '}' -> decr obj; if !obj < 0 then ok := false
        | '[' -> incr arr
        | ']' -> decr arr; if !arr < 0 then ok := false
        | _ -> ())
    s;
  !ok && !obj = 0 && !arr = 0 && not !in_str

let test_chrome_export () =
  let tr = Trace.create ~root:"t" (Clock.create ()) in
  Trace.with_span tr ~device:"V100" "solve \"quoted\"" (fun () ->
      ignore (Trace.charge_kernel tr Device.v100
                (Kernel.make ~name:"spmv" ~flops:1e9 ~bytes:8e9 ())));
  let json = Trace.to_chrome_json tr in
  Alcotest.(check bool) "non-empty" true (String.length json > 2);
  Alcotest.(check bool) "balanced" true (json_balanced json);
  Alcotest.(check bool) "array document" true
    (json.[0] = '[' && Astring.String.is_suffix ~affix:"]\n" json);
  Alcotest.(check bool) "has complete events" true
    (Astring.String.is_infix ~affix:{|"ph":"X"|} json);
  Alcotest.(check bool) "has process metadata" true
    (Astring.String.is_infix ~affix:{|"process_name"|} json);
  Alcotest.(check bool) "quotes escaped" true
    (Astring.String.is_infix ~affix:{|solve \"quoted\"|} json);
  Alcotest.(check bool) "kernel args exported" true
    (Astring.String.is_infix ~affix:{|"bound":"bandwidth"|} json);
  Alcotest.(check bool) "no bare nan/inf" true
    (not (Astring.String.is_infix ~affix:"nan" json)
    && not (Astring.String.is_infix ~affix:"inf" json))

let test_chrome_export_many () =
  let mk name dt =
    let tr = Trace.create ~root:name (Clock.create ()) in
    Trace.charge tr ~phase:"work" dt;
    (name, tr)
  in
  let json = Trace.chrome_json_of_many [ mk "a" 1.0; mk "b" 2.0 ] in
  Alcotest.(check bool) "balanced" true (json_balanced json);
  Alcotest.(check bool) "two processes" true
    (Astring.String.is_infix ~affix:{|"pid":0|} json
    && Astring.String.is_infix ~affix:{|"pid":1|} json)

let test_json_escape_control_chars () =
  (* regression: every control char below 0x20 must be escaped, not
     passed through to break the Chrome trace document *)
  Alcotest.(check string) "named + numeric escapes"
    {|a\nb\tc\u0001\"\\ \r\u0008\u000c|}
    (Trace.json_escape "a\nb\tc\x01\"\\ \r\b\012");
  for c = 0 to 0x1f do
    let escaped = Trace.json_escape (String.make 1 (Char.chr c)) in
    Alcotest.(check bool)
      (Printf.sprintf "control 0x%02x escaped" c)
      true
      (String.length escaped >= 2 && escaped.[0] = '\\')
  done;
  (* the escaped form embeds into a valid JSON string literal *)
  let all = String.init 0x20 Char.chr in
  let doc = {|{"s": "|} ^ Trace.json_escape all ^ {|"}|} in
  Alcotest.(check (option string)) "round-trips through the reader"
    (Some all)
    (Icoe_util.Json.string_member "s" (Icoe_util.Json.parse_exn doc))

let () =
  Alcotest.run "trace"
    [
      ( "nesting",
        [
          Alcotest.test_case "push/pop tree" `Quick test_nesting;
          Alcotest.test_case "with_span exception" `Quick
            test_with_span_closes_on_exception;
          Alcotest.test_case "pop root rejected" `Quick test_pop_root_rejected;
        ] );
      ( "clock",
        [
          Alcotest.test_case "rollup = clock" `Quick test_rollup_matches_clock;
          Alcotest.test_case "fig2 cluster trace" `Quick
            test_fig2_cluster_trace_matches_breakdown;
        ] );
      ( "rollups",
        [
          Alcotest.test_case "kernel attributes" `Quick
            test_charge_kernel_attributes;
          Alcotest.test_case "top spans" `Quick test_top_spans_sorted;
          Alcotest.test_case "counters annotation" `Quick test_annotate_counters;
          Alcotest.test_case "tables render" `Quick test_tables_render;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export" `Quick test_chrome_export;
          Alcotest.test_case "export many" `Quick test_chrome_export_many;
          Alcotest.test_case "json_escape control chars" `Quick
            test_json_escape_control_chars;
        ] );
    ]
