(* Tests for the deep-learning activity: MLP/backprop correctness, the
   distributed-training comparison (KAVG vs ASGD), the Table 3 ensemble
   study, and the Fig 3 LBANN scaling model. *)

open Dlearn

let rng () = Icoe_util.Rng.create 111

(* --- mlp --- *)

let test_forward_shapes () =
  let m = Mlp.create ~rng:(rng ()) [| 4; 8; 3 |] in
  let p = Mlp.predict_proba m [| 0.1; -0.2; 0.3; 0.5 |] in
  Alcotest.(check int) "output size" 3 (Array.length p);
  Alcotest.(check (float 1e-9)) "probs sum to 1" 1.0 (Icoe_util.Stats.sum p)

let test_param_roundtrip () =
  let m = Mlp.create ~rng:(rng ()) [| 3; 5; 2 |] in
  let p = Mlp.get_params m in
  Alcotest.(check int) "param count" ((3 * 5) + 5 + (5 * 2) + 2) (Array.length p);
  let m2 = Mlp.create ~rng:(Icoe_util.Rng.create 999) [| 3; 5; 2 |] in
  Mlp.set_params m2 p;
  let x = [| 0.3; -0.7; 1.1 |] in
  Alcotest.(check bool) "identical predictions after transplant" true
    (Icoe_util.Stats.max_abs_diff (Mlp.predict_proba m x) (Mlp.predict_proba m2 x)
    < 1e-15)

let test_gradient_check () =
  (* finite-difference check of backprop on a tiny network *)
  let m = Mlp.create ~rng:(rng ()) [| 2; 3; 2 |] in
  let x = [| 0.5; -0.3 |] in
  let label = 1 in
  Mlp.zero_grads m;
  ignore (Mlp.backward m x ~label);
  let analytic = ref [] in
  Array.iter
    (fun l ->
      Array.iter (Array.iter (fun g -> analytic := g :: !analytic)) l.Mlp.gw;
      Array.iter (fun g -> analytic := g :: !analytic) l.Mlp.gb)
    m.Mlp.layers;
  let analytic = Array.of_list (List.rev !analytic) in
  Mlp.zero_grads m;
  (* numeric gradient via parameter perturbation, same flattening order as
     the gradient collection above (w rows then b per layer) *)
  let loss_at params =
    let m2 = Mlp.create ~rng:(Icoe_util.Rng.create 1) [| 2; 3; 2 |] in
    Mlp.set_params m2 params;
    let p = Mlp.predict_proba m2 x in
    -.log (max 1e-12 p.(label))
  in
  let p0 = Mlp.get_params m in
  let eps = 1e-6 in
  (* note: get_params flattens in the same layer-major (w then b) order *)
  Array.iteri
    (fun k _ ->
      let pp = Array.copy p0 in
      pp.(k) <- pp.(k) +. eps;
      let pm = Array.copy p0 in
      pm.(k) <- pm.(k) -. eps;
      let numeric = (loss_at pp -. loss_at pm) /. (2.0 *. eps) in
      Alcotest.(check bool)
        (Fmt.str "grad %d: %.6f vs %.6f" k analytic.(k) numeric)
        true
        (Float.abs (analytic.(k) -. numeric) < 1e-4))
    p0

let test_learns_separable_task () =
  let r = rng () in
  let data = Distributed.make_task ~rng:r ~classes:3 ~dim:6 ~n:300 ~spread:0.6 () in
  let m = Mlp.create ~rng:r [| 6; 12; 3 |] in
  for _ = 1 to 300 do
    let xs, ls = Distributed.minibatch ~rng:r ~batch:32 data in
    ignore (Mlp.train_batch ~momentum:0.9 m ~lr:0.05 xs ls)
  done;
  let acc = Mlp.accuracy m data.Distributed.xs data.Distributed.labels in
  Alcotest.(check bool) (Fmt.str "acc %.3f > 0.9" acc) true (acc > 0.9)

(* --- distributed --- *)

let test_sync_sgd_converges () =
  let r = rng () in
  let data = Distributed.make_task ~rng:r () in
  let run =
    Distributed.sync_sgd ~rng:r ~learners:4 ~steps:300 ~batch:16 ~lr:0.05
      [| 12; 16; 4 |] data
  in
  Alcotest.(check bool) "good accuracy" true (run.Distributed.final_accuracy > 0.8);
  Alcotest.(check bool) "time accounted" true (run.Distributed.simulated_seconds > 0.0)

let test_kavg_beats_asgd () =
  (* Sec 4.5 / [34]: at a practical learning rate, ASGD's stale gradients
     degrade the result; KAVG with the same budget does better *)
  let task r = Distributed.make_task ~rng:r ~spread:1.0 () in
  let sizes = [| 12; 16; 4 |] in
  let asgd =
    Distributed.asgd ~rng:(rng ()) ~learners:8 ~steps:800 ~batch:16 ~lr:0.08
      ~staleness:8 sizes (task (rng ()))
  in
  let kavg =
    Distributed.kavg ~rng:(rng ()) ~learners:8 ~rounds:100 ~k:8 ~batch:16
      ~lr:0.08 sizes (task (rng ()))
  in
  Alcotest.(check bool)
    (Fmt.str "kavg loss %.3f <= asgd loss %.3f" kavg.Distributed.final_loss
       asgd.Distributed.final_loss)
    true
    (kavg.Distributed.final_loss <= asgd.Distributed.final_loss);
  (* same number of gradient evaluations *)
  Alcotest.(check int) "same budget" asgd.Distributed.steps kavg.Distributed.steps

let test_kavg_overlap_model () =
  let sizes = [| 12; 16; 4 |] in
  let on = Distributed.kavg_round_model ~overlap:true ~learners:8 ~k:8 ~batch:16 sizes in
  let off = Distributed.kavg_round_model ~overlap:false ~learners:8 ~k:8 ~batch:16 sizes in
  Alcotest.(check (float 0.0)) "modes agree on serial cost"
    off.Distributed.serial_round_s on.Distributed.serial_round_s;
  (* layer-bucketed allreduce under the last local step's backprop:
     strictly lower round time *)
  Alcotest.(check bool)
    (Fmt.str "overlapped %.3e < serial %.3e" on.Distributed.overlapped_round_s
       on.Distributed.serial_round_s)
    true
    (on.Distributed.overlapped_round_s < on.Distributed.serial_round_s);
  Alcotest.(check (float 0.0)) "overlap charges overlapped"
    on.Distributed.overlapped_round_s on.Distributed.round_s;
  Alcotest.(check (float 0.0)) "serial mode charges serial"
    off.Distributed.serial_round_s off.Distributed.round_s;
  Alcotest.(check bool) "efficiency in (0,1)" true
    (on.Distributed.round_efficiency > 0.0
    && on.Distributed.round_efficiency < 1.0);
  Alcotest.(check (float 0.0)) "serial efficiency is 1" 1.0
    off.Distributed.round_efficiency;
  (* a full run wires the round model through: overlapped run clocks
     strictly less simulated time on the same seed and budget *)
  let run overlap =
    Distributed.kavg ~rng:(rng ()) ~learners:8 ~rounds:20 ~k:8 ~batch:16
      ~lr:0.05 ~overlap sizes
      (Distributed.make_task ~rng:(rng ()) ~spread:1.0 ())
  in
  let r_on = run true and r_off = run false in
  Alcotest.(check bool)
    (Fmt.str "run %.4f s < %.4f s" r_on.Distributed.simulated_seconds
       r_off.Distributed.simulated_seconds)
    true
    (r_on.Distributed.simulated_seconds < r_off.Distributed.simulated_seconds);
  Alcotest.(check (float 1e-12)) "run reports the round efficiency"
    on.Distributed.round_efficiency r_on.Distributed.overlap_efficiency;
  Alcotest.(check (float 0.0)) "serial run reports 1.0" 1.0
    r_off.Distributed.overlap_efficiency;
  (* training outcome is identical — overlap only moves the clock *)
  Alcotest.(check (float 0.0)) "same final loss" r_off.Distributed.final_loss
    r_on.Distributed.final_loss

let test_split_default_bit_identical () =
  (* the tuner contract: gpu_frac = 1.0 with the allreduce on its own
     "net" stream reproduces the unsplit round model bitwise *)
  let sizes = [| 12; 16; 4 |] in
  let bits = Int64.bits_of_float in
  List.iter
    (fun overlap ->
      let a =
        Distributed.kavg_round_model ~overlap ~learners:8 ~k:8 ~batch:16 sizes
      in
      let b =
        Distributed.kavg_round_model ~overlap ~gpu_frac:1.0
          ~comm:Hwsim.Split.Dedicated ~learners:8 ~k:8 ~batch:16 sizes
      in
      let who = if overlap then "overlap" else "serial" in
      Alcotest.(check int64) (who ^ ": serial_round_s bitwise")
        (bits a.Distributed.serial_round_s)
        (bits b.Distributed.serial_round_s);
      Alcotest.(check int64) (who ^ ": overlapped_round_s bitwise")
        (bits a.Distributed.overlapped_round_s)
        (bits b.Distributed.overlapped_round_s);
      Alcotest.(check int64) (who ^ ": round_s bitwise")
        (bits a.Distributed.round_s) (bits b.Distributed.round_s);
      Alcotest.(check int64) (who ^ ": efficiency bitwise")
        (bits a.Distributed.round_efficiency)
        (bits b.Distributed.round_efficiency);
      Alcotest.(check int) (who ^ ": same DAG size")
        (Array.length a.Distributed.dag)
        (Array.length b.Distributed.dag))
    [ true; false ]

let test_split_partial_co_executes () =
  let sizes = [| 12; 16; 4 |] in
  let d =
    Distributed.kavg_round_model ~overlap:true ~learners:8 ~k:8 ~batch:16 sizes
  in
  let m =
    Distributed.kavg_round_model ~overlap:true ~gpu_frac:0.5 ~learners:8 ~k:8
      ~batch:16 sizes
  in
  (* host co-execution items join the DAG and, with the host side far
     slower than the V100, the blended serial round costs more *)
  Alcotest.(check bool) "CPU items enqueued" true
    (Array.length m.Distributed.dag > Array.length d.Distributed.dag);
  Alcotest.(check bool)
    (Fmt.str "half-split serial %.3e > all-GPU %.3e"
       m.Distributed.serial_round_s d.Distributed.serial_round_s)
    true
    (m.Distributed.serial_round_s > d.Distributed.serial_round_s)

let test_kavg_optimal_k_exceeds_one () =
  (* "the optimal K for convergence is usually greater than one": with
     communication priced in, loss-at-equal-simulated-time favours K > 1 *)
  let sizes = [| 12; 16; 4 |] in
  let result k rounds =
    Distributed.kavg ~rng:(rng ()) ~learners:8 ~rounds ~k ~batch:16 ~lr:0.05
      sizes
      (Distributed.make_task ~rng:(rng ()) ~spread:1.0 ())
  in
  let r1 = result 1 60 in
  (* k=4 with 4x fewer rounds: similar compute, 4x less communication *)
  let r4 = result 4 15 in
  Alcotest.(check bool) "k=4 spends less simulated time" true
    (r4.Distributed.simulated_seconds < r1.Distributed.simulated_seconds);
  Alcotest.(check bool)
    (Fmt.str "k=4 loss %.3f not much worse than k=1 %.3f"
       r4.Distributed.final_loss r1.Distributed.final_loss)
    true
    (r4.Distributed.final_loss < r1.Distributed.final_loss +. 0.15)

let test_asgd_staleness_hurts () =
  let sizes = [| 12; 16; 4 |] in
  let run staleness =
    Distributed.asgd ~rng:(rng ()) ~learners:8 ~steps:500 ~batch:16 ~lr:0.1
      ~staleness sizes
      (Distributed.make_task ~rng:(rng ()) ~spread:1.0 ())
  in
  let fresh = run 0 and stale = run 16 in
  Alcotest.(check bool)
    (Fmt.str "stale %.3f >= fresh %.3f" stale.Distributed.final_loss
       fresh.Distributed.final_loss)
    true
    (stale.Distributed.final_loss >= fresh.Distributed.final_loss -. 0.02)

(* --- model parallel (real execution) --- *)

let test_model_parallel_identical () =
  (* the sharded network must compute bit-identical probabilities *)
  let r = rng () in
  let m = Mlp.create ~rng:r [| 10; 24; 5 |] in
  let x = Array.init 10 (fun i -> sin (float_of_int i)) in
  let reference = Mlp.predict_proba m x in
  List.iter
    (fun shards ->
      let mp = Modelparallel.create ~shards m in
      let p = Modelparallel.predict_proba mp x in
      Alcotest.(check bool)
        (Fmt.str "%d shards identical" shards)
        true
        (Icoe_util.Stats.max_abs_diff p reference < 1e-15))
    [ 1; 2; 3; 4 ];
  (* communication charged for multi-shard runs *)
  let mp = Modelparallel.create ~shards:4 m in
  ignore (Modelparallel.predict_proba mp x);
  Alcotest.(check bool) "allgather charged" true
    (Hwsim.Clock.total mp.Modelparallel.clock > 0.0)

let test_model_parallel_scaling_shape () =
  (* real parameter counts: speedup grows with shards but sub-linearly
     (all-gather cost), echoing Fig 3's strong-scaling curvature *)
  let r = rng () in
  (* activation-heavy configuration (LBANN's semantic-segmentation regime:
     large spatial activations, hence the large batch here) *)
  let big = Mlp.create ~rng:r [| 512; 1024; 1024; 128 |] in
  let s2 = Modelparallel.strong_scaling ~link:Hwsim.Link.nvlink2 big ~batch:512 ~shards:2 in
  let s4 = Modelparallel.strong_scaling ~link:Hwsim.Link.nvlink2 big ~batch:512 ~shards:4 in
  let s8 = Modelparallel.strong_scaling ~link:Hwsim.Link.nvlink2 big ~batch:512 ~shards:8 in
  Alcotest.(check bool) (Fmt.str "s2=%.2f in (1,2]" s2) true (s2 > 1.0 && s2 <= 2.0);
  Alcotest.(check bool) "monotone" true (s4 > s2 && s8 > s4);
  Alcotest.(check bool) (Fmt.str "s8=%.2f sublinear" s8) true (s8 < 8.0)

let test_easgd_converges () =
  let run =
    Distributed.easgd ~rng:(rng ()) ~learners:8 ~rounds:80 ~k:8 ~batch:16
      ~lr:0.08 [| 12; 16; 4 |]
      (Distributed.make_task ~rng:(rng ()) ~spread:1.0 ())
  in
  Alcotest.(check bool)
    (Fmt.str "easgd acc %.3f > 0.85" run.Distributed.final_accuracy)
    true
    (run.Distributed.final_accuracy > 0.85)

(* --- table 3 --- *)

let test_table3_easy_shape () =
  let rows = Videonet.table3 ~rng:(rng ()) Videonet.Easy in
  let acc c = List.assoc c rows in
  let singles = [ acc (Videonet.Single 0); acc (Videonet.Single 1); acc (Videonet.Single 2) ] in
  let best_single = List.fold_left max 0.0 singles in
  List.iter
    (fun comb ->
      Alcotest.(check bool)
        (Videonet.combiner_name comb ^ " beats singles")
        true
        (acc comb > best_single))
    [ Videonet.Simple_average; Videonet.Weighted_average;
      Videonet.Logistic_regression; Videonet.Shallow_nn ];
  Alcotest.(check bool) "singles in the 75-90% band" true
    (List.for_all (fun a -> a > 0.72 && a < 0.92) singles);
  Alcotest.(check bool) "ensembles above 90%" true
    (acc Videonet.Simple_average > 0.9)

let test_table3_hard_shape () =
  let rows = Videonet.table3 ~rng:(rng ()) Videonet.Hard in
  let acc c = List.assoc c rows in
  let best_single =
    List.fold_left max 0.0
      [ acc (Videonet.Single 0); acc (Videonet.Single 1); acc (Videonet.Single 2) ]
  in
  Alcotest.(check bool) "fusion beats singles" true
    (acc Videonet.Simple_average > best_single +. 0.1);
  (* the I3D-style end-to-end model: competitive on easy, clearly below
     the learned ensembles on hard (the paper's comparison row) *)
  Alcotest.(check bool) "end-to-end below stacked LR on hard" true
    (acc Videonet.End_to_end < acc Videonet.Logistic_regression);
  (* the HMDB51 column's signature: the learned combiner clearly beats
     plain averaging on the hard set *)
  Alcotest.(check bool)
    (Fmt.str "LR %.3f > avg %.3f + 0.03" (acc Videonet.Logistic_regression)
       (acc Videonet.Simple_average))
    true
    (acc Videonet.Logistic_regression > acc Videonet.Simple_average +. 0.03);
  Alcotest.(check bool) "hard is harder than easy" true
    (acc Videonet.Simple_average
    < List.assoc Videonet.Simple_average (Videonet.table3 ~rng:(rng ()) Videonet.Easy))

(* --- lbann / fig 3 --- *)

let test_lbann_memory_constraint () =
  Alcotest.(check int) "needs at least 2 GPUs per sample" 2
    Lbann.min_gpus_per_sample

let test_lbann_strong_scaling_points () =
  let s4 = Lbann.strong_scaling_speedup 4 in
  let s8 = Lbann.strong_scaling_speedup 8 in
  let s16 = Lbann.strong_scaling_speedup 16 in
  Alcotest.(check bool) (Fmt.str "S(4)=%.2f near-perfect" s4) true
    (s4 > 1.7 && s4 <= 2.0);
  Alcotest.(check bool) (Fmt.str "S(8)=%.2f ~ 2.8" s8) true (s8 > 2.6 && s8 < 3.0);
  Alcotest.(check bool) (Fmt.str "S(16)=%.2f ~ 3.4" s16) true (s16 > 3.2 && s16 < 3.7)

let test_lbann_weak_scaling () =
  (* weak scaling to 2048 GPUs stays efficient *)
  List.iter
    (fun g ->
      let eff = Lbann.weak_scaling_efficiency ~g ~total0:(g * 4) ~total1:2048 in
      Alcotest.(check bool)
        (Fmt.str "g=%d eff %.2f > 0.85" g eff)
        true (eff > 0.85))
    [ 2; 4; 8; 16 ];
  (* more GPUs always give more aggregate throughput *)
  let t1 = Lbann.weak_scaling_throughput ~total_gpus:256 ~g:4 in
  let t2 = Lbann.weak_scaling_throughput ~total_gpus:2048 ~g:4 in
  Alcotest.(check bool) "throughput grows" true (t2 > 4.0 *. t1)

let prop_mlp_probs_normalized =
  QCheck.Test.make ~name:"softmax outputs normalized" ~count:50
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let r = Icoe_util.Rng.create seed in
      let m = Mlp.create ~rng:r [| 3; 4; 3 |] in
      let x = Array.init 3 (fun _ -> Icoe_util.Rng.uniform r (-2.0) 2.0) in
      let p = Mlp.predict_proba m x in
      Float.abs (Icoe_util.Stats.sum p -. 1.0) < 1e-9
      && Array.for_all (fun v -> v >= 0.0) p)

let () =
  Alcotest.run "dlearn"
    [
      ( "mlp",
        [
          Alcotest.test_case "forward" `Quick test_forward_shapes;
          Alcotest.test_case "param roundtrip" `Quick test_param_roundtrip;
          Alcotest.test_case "gradient check" `Quick test_gradient_check;
          Alcotest.test_case "learns" `Quick test_learns_separable_task;
          QCheck_alcotest.to_alcotest prop_mlp_probs_normalized;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "sync sgd" `Quick test_sync_sgd_converges;
          Alcotest.test_case "kavg beats asgd" `Slow test_kavg_beats_asgd;
          Alcotest.test_case "optimal k > 1" `Slow test_kavg_optimal_k_exceeds_one;
          Alcotest.test_case "kavg overlap model" `Quick test_kavg_overlap_model;
          Alcotest.test_case "split default bit-identical" `Quick
            test_split_default_bit_identical;
          Alcotest.test_case "split co-executes" `Quick
            test_split_partial_co_executes;
          Alcotest.test_case "staleness hurts" `Slow test_asgd_staleness_hurts;
        ] );
      ( "modelparallel",
        [
          Alcotest.test_case "identical results" `Quick test_model_parallel_identical;
          Alcotest.test_case "scaling shape" `Quick test_model_parallel_scaling_shape;
          Alcotest.test_case "easgd" `Slow test_easgd_converges;
        ] );
      ( "videonet",
        [
          Alcotest.test_case "table3 easy" `Slow test_table3_easy_shape;
          Alcotest.test_case "table3 hard" `Slow test_table3_hard_shape;
        ] );
      ( "lbann",
        [
          Alcotest.test_case "memory constraint" `Quick test_lbann_memory_constraint;
          Alcotest.test_case "strong scaling" `Quick test_lbann_strong_scaling_points;
          Alcotest.test_case "weak scaling" `Quick test_lbann_weak_scaling;
        ] );
    ]
