(* The domain pool and the parallel-equals-serial contract.

   Two layers of evidence:
   - qcheck properties that Icoe_par.Pool.parallel_for / map_reduce
     match the serial loop / chunk-ordered fold bitwise for arbitrary
     range sizes (including empty), chunkings and pool sizes; and
   - exact-agreement tests for every engine kernel routed through the
     pool (spmv, SW4 acceleration, Cardioid reaction, ddcMD forces, LDA
     E-step): the parallel path must equal its serial reference
     float-for-float, whatever ICOE_DOMAINS says. *)

module Pool = Icoe_par.Pool

(* the reference map_reduce: same chunk layout, ascending, in one domain *)
let serial_map_reduce ~chunk ~lo ~hi ~combine ~init map =
  let acc = ref init in
  let clo = ref lo in
  while !clo < hi do
    let chi = min hi (!clo + chunk) in
    acc := combine !acc (map !clo chi);
    clo := chi
  done;
  !acc

let prop_parallel_for =
  QCheck.Test.make ~name:"parallel_for matches the serial loop" ~count:80
    QCheck.(triple (int_bound 400) (int_range 1 60) (int_range 1 4))
    (fun (n, chunk, domains) ->
      let expect = Array.init (max n 1) (fun i -> if i < n then i * i else 0) in
      let got = Array.make (max n 1) 0 in
      Pool.with_pool ~domains (fun pool ->
          Pool.parallel_for ~pool ~chunk ~lo:0 ~hi:n (fun i ->
              got.(i) <- i * i));
      (if n = 0 then expect.(0) <- 0);
      got = expect)

let prop_parallel_for_chunks_partition =
  QCheck.Test.make ~name:"parallel_for_chunks partitions the range" ~count:80
    QCheck.(triple (int_bound 400) (int_range 1 60) (int_range 1 4))
    (fun (n, chunk, domains) ->
      let hits = Array.make (max n 1) 0 in
      Pool.with_pool ~domains (fun pool ->
          Pool.parallel_for_chunks ~pool ~chunk ~lo:0 ~hi:n (fun clo chi ->
              for i = clo to chi - 1 do
                hits.(i) <- hits.(i) + 1
              done));
      Array.for_all (fun c -> c = 1) (Array.sub hits 0 n))

let prop_map_reduce =
  QCheck.Test.make
    ~name:"map_reduce equals the chunk-ordered fold bitwise" ~count:80
    QCheck.(triple (int_bound 400) (int_range 1 60) (int_range 1 4))
    (fun (n, chunk, domains) ->
      (* a sum where float rounding makes the combine order observable *)
      let map lo hi =
        let s = ref 0.0 in
        for i = lo to hi - 1 do
          s := !s +. (1.0 /. (float_of_int i +. 1.0))
        done;
        !s
      in
      let expect =
        serial_map_reduce ~chunk ~lo:0 ~hi:n ~combine:( +. ) ~init:0.0 map
      in
      let got =
        Pool.with_pool ~domains (fun pool ->
            Pool.map_reduce ~pool ~chunk ~lo:0 ~hi:n ~combine:( +. ) ~init:0.0
              map)
      in
      Float.equal got expect)

let prop_map_reduce_default_chunk =
  QCheck.Test.make
    ~name:"map_reduce default chunking is pool-size independent" ~count:40
    QCheck.(pair (int_bound 2000) (int_range 2 4))
    (fun (n, domains) ->
      let map lo hi =
        let s = ref 0.0 in
        for i = lo to hi - 1 do
          s := !s +. sin (float_of_int i)
        done;
        !s
      in
      let serial =
        Pool.with_pool ~domains:1 (fun pool ->
            Pool.map_reduce ~pool ~lo:0 ~hi:n ~combine:( +. ) ~init:0.0 map)
      in
      let par =
        Pool.with_pool ~domains (fun pool ->
            Pool.map_reduce ~pool ~lo:0 ~hi:n ~combine:( +. ) ~init:0.0 map)
      in
      Float.equal serial par)

let test_empty_ranges () =
  Pool.with_pool ~domains:3 (fun pool ->
      Pool.parallel_for ~pool ~lo:0 ~hi:0 (fun _ -> Alcotest.fail "ran on empty");
      Pool.parallel_for ~pool ~lo:7 ~hi:3 (fun _ -> Alcotest.fail "ran on inverted");
      Alcotest.(check (float 0.0)) "empty map_reduce returns init" 42.0
        (Pool.map_reduce ~pool ~lo:5 ~hi:5 ~combine:( +. ) ~init:42.0
           (fun _ _ -> Alcotest.fail "mapped on empty")))

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "worker exception reraised in caller"
        (Failure "chunk 57")
        (fun () ->
          Pool.parallel_for ~pool ~chunk:1 ~lo:0 ~hi:100 (fun i ->
              if i = 57 then failwith "chunk 57"));
      (* the pool survives a failed job *)
      let s = ref 0 in
      Pool.parallel_for ~pool ~lo:0 ~hi:10 (fun _ -> ignore s);
      Alcotest.(check int) "pool still works" 10
        (Pool.map_reduce ~pool ~chunk:3 ~lo:0 ~hi:10 ~combine:( + ) ~init:0
           (fun lo hi -> hi - lo)))

let test_nested_calls () =
  Pool.with_pool ~domains:4 (fun pool ->
      let grid = Array.make_matrix 8 64 0 in
      Pool.parallel_for ~pool ~chunk:1 ~lo:0 ~hi:8 (fun r ->
          (* inner call from a worker chunk: degrades to serial, same result *)
          Pool.parallel_for ~pool ~chunk:8 ~lo:0 ~hi:64 (fun c ->
              grid.(r).(c) <- (r * 64) + c));
      Alcotest.(check bool) "nested writes all landed" true
        (Array.for_all Fun.id
           (Array.mapi
              (fun r row -> Array.for_all Fun.id (Array.mapi (fun c v -> v = (r * 64) + c) row))
              grid)))

let test_pool_sizing () =
  Pool.with_pool ~domains:1 (fun p -> Alcotest.(check int) "size 1" 1 (Pool.size p));
  Pool.with_pool ~domains:3 (fun p -> Alcotest.(check int) "size 3" 3 (Pool.size p));
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Alcotest.(check int) "shut-down pool is serial" 1 (Pool.size p);
  (* still usable, serially *)
  Alcotest.(check int) "serial fallback works" 45
    (Pool.map_reduce ~pool:p ~chunk:4 ~lo:0 ~hi:10 ~combine:( + ) ~init:0
       (fun lo hi ->
         let s = ref 0 in
         for i = lo to hi - 1 do s := !s + i done;
         !s))

let test_default_chunk () =
  Alcotest.(check int) "small ranges one big chunk" 16 (Pool.default_chunk 10);
  Alcotest.(check int) "64-way split beyond 1024" 32 (Pool.default_chunk 2048);
  Alcotest.(check bool) "at most 64 chunks" true
    (let n = 100_000 in
     (n + Pool.default_chunk n - 1) / Pool.default_chunk n <= 64)

(* --- parallel kernels equal their serial references, bitwise --- *)

let check_float_array name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Float.equal x b.(i)) then
        Alcotest.failf "%s differs at %d: %.17g vs %.17g" name i x b.(i))
    a

let test_spmv_agreement () =
  let a = Linalg.Csr.laplacian_2d 32 32 in
  let n = 32 * 32 in
  Alcotest.(check bool) "above the parallel threshold" true
    (n >= Linalg.Csr.spmv_par_threshold);
  let rng = Icoe_util.Rng.create 17 in
  let x = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let y_par = Array.make n nan in
  let y_seq = Array.make n nan in
  Linalg.Csr.spmv_into a x y_par;
  Linalg.Csr.spmv_seq_into a x y_seq;
  check_float_array "spmv" y_par y_seq

let test_sw4_acceleration_agreement () =
  let g = Sw4.Grid.create ~nx:48 ~ny:40 ~h:100.0 in
  Sw4.Grid.homogeneous g ~rho:2500.0 ~vp:5000.0 ~vs:2500.0;
  let n = 48 * 40 in
  let rng = Icoe_util.Rng.create 23 in
  let module Fbuf = Icoe_util.Fbuf in
  let ux = Fbuf.init n (fun _ -> Icoe_util.Rng.uniform rng (-1e-3) 1e-3) in
  let uy = Fbuf.init n (fun _ -> Icoe_util.Rng.uniform rng (-1e-3) 1e-3) in
  let ax_p = Fbuf.create n and ay_p = Fbuf.create n in
  let ax_s = Fbuf.create n and ay_s = Fbuf.create n in
  Sw4.Elastic.acceleration g (Sw4.Elastic.make_scratch g) ~ux ~uy ~ax:ax_p ~ay:ay_p;
  Sw4.Elastic.acceleration_seq g (Sw4.Elastic.make_scratch g) ~ux ~uy ~ax:ax_s ~ay:ay_s;
  check_float_array "sw4 ax" (Fbuf.to_array ax_p) (Fbuf.to_array ax_s);
  check_float_array "sw4 ay" (Fbuf.to_array ay_p) (Fbuf.to_array ay_s)

let test_cardioid_reaction_agreement () =
  let module Fbuf = Icoe_util.Fbuf in
  let mk () =
    let m = Cardioid.Monodomain.create ~nx:20 ~ny:12 () in
    Cardioid.Monodomain.stimulate m ~ilo:0 ~ihi:2 ~jlo:0 ~jhi:11 ~amplitude:60.0;
    m
  in
  let m_par = mk () and m_seq = mk () and m_ref = mk () in
  for _ = 1 to 3 do
    Cardioid.Monodomain.reaction_step m_par;
    Cardioid.Monodomain.reaction_step_seq m_seq;
    Cardioid.Monodomain.reaction_step_ref m_ref
  done;
  check_float_array "cardioid v" (Fbuf.to_array m_par.Cardioid.Monodomain.v)
    (Fbuf.to_array m_seq.Cardioid.Monodomain.v);
  check_float_array "cardioid state"
    (Fbuf.to_array m_par.Cardioid.Monodomain.state)
    (Fbuf.to_array m_seq.Cardioid.Monodomain.state);
  (* the stack-program kernel must also match the boxed closure tree *)
  check_float_array "cardioid v vs ref"
    (Fbuf.to_array m_par.Cardioid.Monodomain.v)
    (Fbuf.to_array m_ref.Cardioid.Monodomain.v);
  check_float_array "cardioid state vs ref"
    (Fbuf.to_array m_par.Cardioid.Monodomain.state)
    (Fbuf.to_array m_ref.Cardioid.Monodomain.state)

let test_md_forces_agreement () =
  let mk () =
    let rng = Icoe_util.Rng.create 31 in
    let p = Ddcmd.Particles.create ~n:216 ~box:7.5 in
    Ddcmd.Particles.lattice_init p;
    Ddcmd.Particles.thermalize p ~rng ~temp:0.7;
    Ddcmd.Engine.create ~dt:0.004 ~potential:(Ddcmd.Potential.lennard_jones ()) p
  in
  let e_par = mk () and e_seq = mk () in
  Ddcmd.Engine.compute_forces e_par;
  Ddcmd.Engine.compute_forces_seq e_seq;
  let fb = Icoe_util.Fbuf.to_array in
  check_float_array "md fx" (fb e_par.Ddcmd.Engine.p.Ddcmd.Particles.fx)
    (fb e_seq.Ddcmd.Engine.p.Ddcmd.Particles.fx);
  check_float_array "md fy" (fb e_par.Ddcmd.Engine.p.Ddcmd.Particles.fy)
    (fb e_seq.Ddcmd.Engine.p.Ddcmd.Particles.fy);
  check_float_array "md fz" (fb e_par.Ddcmd.Engine.p.Ddcmd.Particles.fz)
    (fb e_seq.Ddcmd.Engine.p.Ddcmd.Particles.fz);
  Alcotest.(check bool) "md epot equal" true
    (Float.equal e_par.Ddcmd.Engine.pot_energy e_seq.Ddcmd.Engine.pot_energy);
  Alcotest.(check bool) "md virial equal" true
    (Float.equal e_par.Ddcmd.Engine.virial e_seq.Ddcmd.Engine.virial);
  Alcotest.(check int) "md pair count equal" e_par.Ddcmd.Engine.pair_count
    e_seq.Ddcmd.Engine.pair_count

let test_lda_estep_agreement () =
  let rng = Icoe_util.Rng.create 41 in
  let corpus = Lda.Corpus.generate ~ndocs:24 ~rng () in
  let m = Lda.Vem.init ~rng ~k:corpus.Lda.Corpus.k_true ~vocab:corpus.Lda.Corpus.vocab () in
  let elogb = Lda.Vem.elog_beta m in
  let k = corpus.Lda.Corpus.k_true and vocab = corpus.Lda.Corpus.vocab in
  let s_par = Icoe_util.Fbuf.create (k * vocab) in
  let s_seq = Icoe_util.Fbuf.create (k * vocab) in
  let ll_par = Lda.Vem.e_step_docs m elogb corpus.Lda.Corpus.docs s_par in
  let ll_seq = Lda.Vem.e_step_docs_seq m elogb corpus.Lda.Corpus.docs s_seq in
  Alcotest.(check bool) "lda loglik equal" true (Float.equal ll_par ll_seq);
  check_float_array "lda stats"
    (Icoe_util.Fbuf.to_array s_par)
    (Icoe_util.Fbuf.to_array s_seq)

(* --- the pool/metrics hazard guard --- *)

let test_metrics_rejected_inside_job () =
  (* the metrics registry is not thread-safe; touching it from a worker
     chunk is a data-race hazard the pool now detects on every execution
     path (worker domain, submitter, serial fallback) *)
  let c = Icoe_obs.Metrics.counter "par_guard_probe_total" in
  Icoe_obs.Metrics.inc c;
  (* fine outside a job *)
  Alcotest.(check bool) "not in job outside" false (Pool.in_parallel_job ());
  let in_job = Array.make 8 false in
  let rejected = Array.make 8 false in
  Pool.with_pool ~domains:2 (fun pool ->
      Pool.parallel_for ~pool ~chunk:1 ~lo:0 ~hi:8 (fun i ->
          in_job.(i) <- Pool.in_parallel_job ();
          match Icoe_obs.Metrics.inc c with
          | () -> ()
          | exception Invalid_argument _ -> rejected.(i) <- true));
  Alcotest.(check bool) "flag set in every chunk" true
    (Array.for_all Fun.id in_job);
  Alcotest.(check bool) "every registry access rejected" true
    (Array.for_all Fun.id rejected);
  (* and the guard resets once the job completes *)
  Alcotest.(check bool) "not in job after" false (Pool.in_parallel_job ());
  Icoe_obs.Metrics.inc c

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_parallel_for; prop_parallel_for_chunks_partition; prop_map_reduce;
      prop_map_reduce_default_chunk ]

let () =
  Alcotest.run "par"
    [
      ("properties", qsuite);
      ( "pool",
        [
          Alcotest.test_case "empty ranges" `Quick test_empty_ranges;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "sizing + shutdown" `Quick test_pool_sizing;
          Alcotest.test_case "default chunk" `Quick test_default_chunk;
          Alcotest.test_case "metrics guarded in jobs" `Quick
            test_metrics_rejected_inside_job;
        ] );
      ( "kernels-parallel-equals-serial",
        [
          Alcotest.test_case "spmv" `Quick test_spmv_agreement;
          Alcotest.test_case "sw4 acceleration" `Quick test_sw4_acceleration_agreement;
          Alcotest.test_case "cardioid reaction" `Quick test_cardioid_reaction_agreement;
          Alcotest.test_case "ddcmd forces" `Quick test_md_forces_agreement;
          Alcotest.test_case "lda e-step" `Quick test_lda_estep_agreement;
        ] );
    ]
